// Package achilles is the public API of the Achilles reproduction: a tool
// that finds Trojan messages in distributed systems (Banabic, Candea,
// Guerraoui — ASPLOS 2014).
//
// A Trojan message is a message that correct servers accept but that no
// correct client can generate. Achilles extracts the client predicate PC
// (all messages correct clients send) and the server predicate PS (all
// messages servers accept) by symbolic execution of node models written in
// the NL language, and searches the difference PS ∧ ¬PC incrementally while
// exploring the server.
//
// Quick start:
//
//	server := achilles.MustCompile(serverSrc)
//	client := achilles.MustCompile(clientSrc)
//	run, err := achilles.Run(achilles.Target{
//		Name:    "my-protocol",
//		Server:  server,
//		Clients: []achilles.ClientProgram{{Name: "client", Unit: client}},
//	}, achilles.AnalysisOptions{Parallelism: runtime.NumCPU()})
//	for _, trojan := range run.Analysis.Trojans {
//		fmt.Println(trojan)
//	}
//
// AnalysisOptions.Parallelism fans the whole pipeline — client predicate
// extraction, predicate preprocessing and the server-side frontier — out
// over that many workers; the reported Trojan class set is identical for
// every value (see DESIGN.md, "Where the parallelism sits").
//
// See examples/ for complete programs, LANGUAGE.md for the NL modelling-
// language reference (README.md carries the cheat sheet), DESIGN.md for the
// architecture, and EXPERIMENTS.md for the paper-vs-measured evaluation.
// Fleet-wide audits with persistent, diffable bundles are provided by
// cmd/achilles-audit on top of internal/campaign.
package achilles

import (
	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/symexec"
)

// Re-exported types: the analysis surface.
type (
	// Target bundles a server model, its client models and the message
	// layout for one analysis.
	Target = core.Target
	// ClientProgram names one compiled client model.
	ClientProgram = core.ClientProgram
	// AnalysisOptions configure the server phase (mode, budgets, solver).
	AnalysisOptions = core.AnalysisOptions
	// RunResult carries the client predicate, the analysis result and the
	// per-phase timing split.
	RunResult = core.RunResult
	// TrojanReport describes one discovered Trojan message class.
	TrojanReport = core.TrojanReport
	// ClientPredicate is the extracted PC with its preprocessing artifacts.
	ClientPredicate = core.ClientPredicate
	// Mode selects the optimisation level (full, no-differentFrom,
	// a-posteriori).
	Mode = core.Mode
	// ExecOptions configure a symbolic or concrete engine run (local-state
	// modes, budgets).
	ExecOptions = symexec.Options
	// Unit is a compiled NL node program.
	Unit = lang.Unit
)

// Analysis modes (see §3.3/§6.4 of the paper).
const (
	ModeOptimized       = core.ModeOptimized
	ModeNoDifferentFrom = core.ModeNoDifferentFrom
	ModeAPosteriori     = core.ModeAPosteriori
)

// Compile parses, checks and lowers an NL node program.
func Compile(src string) (*Unit, error) { return lang.Compile(src) }

// MustCompile is Compile for known-good sources; it panics on error.
func MustCompile(src string) *Unit { return lang.MustCompile(src) }

// Run executes both Achilles phases on a target: client predicate
// extraction (with preprocessing) followed by the server-side Trojan
// search.
func Run(t Target, opts AnalysisOptions) (*RunResult, error) {
	return core.Run(t, opts)
}

// ExtractClientPredicate runs only phase 1.
func ExtractClientPredicate(clients []ClientProgram, opts core.ExtractOptions) (*ClientPredicate, error) {
	return core.ExtractClientPredicate(clients, opts)
}

// AnalyzeServer runs only phase 2 against a preprocessed client predicate.
func AnalyzeServer(server *Unit, pc *ClientPredicate, opts AnalysisOptions) (*core.Result, error) {
	return core.AnalyzeServer(server, pc, opts)
}
