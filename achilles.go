// Package achilles is the public API of the Achilles reproduction: a tool
// that finds Trojan messages in distributed systems (Banabic, Candea,
// Guerraoui — ASPLOS 2014).
//
// A Trojan message is a message that correct servers accept but that no
// correct client can generate. Achilles extracts the client predicate PC
// (all messages correct clients send) and the server predicate PS (all
// messages servers accept) by symbolic execution of node models written in
// the NL language, and searches the difference PS ∧ ¬PC incrementally while
// exploring the server.
//
// # API v2: sessions
//
// The v2 surface is the Session API: Start launches a cancellable analysis
// under a context.Context, streams Trojan classes and progress while the
// exploration runs, and Wait returns the result. Functional options replace
// the struct-of-knobs:
//
//	server := achilles.MustCompile(serverSrc)
//	client := achilles.MustCompile(clientSrc)
//	sess, err := achilles.Start(ctx, achilles.Target{
//		Name:    "my-protocol",
//		Server:  server,
//		Clients: []achilles.ClientProgram{{Name: "client", Unit: client}},
//	}, achilles.WithParallelism(runtime.NumCPU()))
//	if err != nil { ... }
//	for ev := range sess.Events() {
//		if ev.Kind == achilles.EventTrojan {
//			fmt.Println(ev.Trojan) // streamed the moment it is confirmed
//		}
//	}
//	run, err := sess.Wait()
//
// Cancelling ctx (or hitting its deadline) aborts the exploration cleanly
// mid-frontier: Wait returns the context error together with the partial
// result, whose Truncated() reports true. WithFirstTrojan stops the whole
// fan-out at the first confirmed class — the fast path for "is this target
// vulnerable at all?" on deep protocols. See DESIGN.md ("API v2") for how
// the context and the events flow through the layers.
//
// WithParallelism fans the whole pipeline — client predicate extraction,
// predicate preprocessing and the server-side frontier — out over that many
// workers; the reported Trojan class set is identical for every value (see
// DESIGN.md, "Where the parallelism sits").
//
// The v1 entry points (Run, AnalyzeServer with AnalysisOptions) still work
// and now delegate to the same context-aware pipeline with a background
// context; new code should use Start.
//
// See examples/ for complete programs, LANGUAGE.md for the NL modelling-
// language reference (README.md carries the cheat sheet), DESIGN.md for the
// architecture, and EXPERIMENTS.md for the paper-vs-measured evaluation.
// Fleet-wide audits with persistent, diffable bundles are provided by
// cmd/achilles-audit on top of internal/campaign.
package achilles

import (
	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/symexec"
)

// Re-exported types: the analysis surface.
type (
	// Target bundles a server model, its client models and the message
	// layout for one analysis.
	Target = core.Target
	// ClientProgram names one compiled client model.
	ClientProgram = core.ClientProgram
	// AnalysisOptions configure the server phase (mode, budgets, solver).
	//
	// Deprecated: new code should configure a Session through Start's
	// functional options (WithMode, WithParallelism, ...). The struct
	// remains the bridge type — WithAnalysisOptions(opts) seeds a session
	// from it — and keeps the v1 Run/AnalyzeServer entry points compiling.
	AnalysisOptions = core.AnalysisOptions
	// RunResult carries the client predicate, the analysis result and the
	// per-phase timing split.
	RunResult = core.RunResult
	// TrojanReport describes one discovered Trojan message class.
	TrojanReport = core.TrojanReport
	// ClientPredicate is the extracted PC with its preprocessing artifacts.
	ClientPredicate = core.ClientPredicate
	// Mode selects the optimisation level (full, no-differentFrom,
	// a-posteriori).
	Mode = core.Mode
	// ExecOptions configure a symbolic or concrete engine run (local-state
	// modes, budgets).
	//
	// Deprecated: sessions override engine budgets through options such as
	// WithMaxStates; ExecOptions remains for Target.ServerExec/ClientExec
	// and the v1 entry points.
	ExecOptions = symexec.Options
	// Unit is a compiled NL node program.
	Unit = lang.Unit
)

// Analysis modes (see §3.3/§6.4 of the paper).
const (
	ModeOptimized       = core.ModeOptimized
	ModeNoDifferentFrom = core.ModeNoDifferentFrom
	ModeAPosteriori     = core.ModeAPosteriori
)

// Compile parses, checks and lowers an NL node program.
func Compile(src string) (*Unit, error) { return lang.Compile(src) }

// MustCompile is Compile for known-good sources; it panics on error.
func MustCompile(src string) *Unit { return lang.MustCompile(src) }

// Run executes both Achilles phases on a target: client predicate
// extraction (with preprocessing) followed by the server-side Trojan
// search. It blocks until the analysis completes.
//
// Deprecated: use Start, which adds cancellation, deadlines, streamed
// results and progress. Run is Start + Wait under a background context.
func Run(t Target, opts AnalysisOptions) (*RunResult, error) {
	return core.Run(t, opts)
}

// ExtractClientPredicate runs only phase 1.
func ExtractClientPredicate(clients []ClientProgram, opts core.ExtractOptions) (*ClientPredicate, error) {
	return core.ExtractClientPredicate(clients, opts)
}

// AnalyzeServer runs only phase 2 against a preprocessed client predicate.
//
// Deprecated: use Start for full runs; direct phase-2 callers should move
// to core-style usage via AnalysisOptions until a session-level split-phase
// API exists.
func AnalyzeServer(server *Unit, pc *ClientPredicate, opts AnalysisOptions) (*core.Result, error) {
	return core.AnalyzeServer(server, pc, opts)
}
