// pbft-audit rediscovers the PBFT MAC attack (§6.2/§6.3) and measures its
// impact on a concrete replica cluster.
//
// Run with: go run ./examples/pbft-audit
package main

import (
	"fmt"
	"log"
	"time"

	"achilles"
	"achilles/internal/protocols/pbft"
)

func main() {
	run, err := achilles.Run(pbft.NewTarget(), achilles.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis finished in %v (the paper: \"a few seconds\")\n",
		run.Total().Round(time.Millisecond))
	fmt.Printf("Trojan classes: %d, one per accepting replica path\n", len(run.Analysis.Trojans))
	for _, tr := range run.Analysis.Trojans {
		fmt.Printf("  example request with corrupted authenticator: %v\n", tr.Concrete)
	}

	// Impact on a live 4-replica cluster: Trojan requests force the
	// expensive recovery protocol and collapse correct-client goodput.
	fmt.Println("\nMAC-attack impact on the concrete cluster (goodput = committed/1000 cost units):")
	for _, every := range []int{0, 20, 10, 5, 2} {
		m := pbft.NewCluster(1, 4).AttackWorkload(3000, every)
		rate := "none"
		if every > 0 {
			rate = fmt.Sprintf("1/%d Trojan", every)
		}
		fmt.Printf("  attack %-12s goodput %7.2f, recoveries %4d\n", rate, m.Goodput(), m.Recoveries)
	}

	// The fix (Clement et al.): signed requests make corruption
	// attributable, so Trojans are dropped cheaply at the primary.
	fixed := pbft.NewCluster(1, 4)
	fixed.UseSignatures = true
	m := fixed.AttackWorkload(3000, 2)
	fmt.Printf("  with the fix:  goodput %7.2f under 1/2 attack (%d dropped, %d recoveries)\n",
		m.Goodput(), m.Dropped, m.Recoveries)
}
