// fsp-audit runs the full FSP evaluation of §6.2/§6.3: the accuracy
// experiment against the 80 known Trojan classes and the glob-aware
// analysis that additionally surfaces the wildcard bug.
//
// Run with: go run ./examples/fsp-audit
package main

import (
	"fmt"
	"log"
	"time"

	"achilles"
	"achilles/internal/protocols/fsp"
)

func main() {
	// Accuracy experiment: clients without glob handling (the paper's
	// annotated setup) — exactly the 80 mismatched-length classes exist.
	run, err := achilles.Run(fsp.NewTarget(false), achilles.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy experiment: %d client paths, %d/%d known Trojan classes, 0 false positives, %v\n",
		len(run.Clients.Paths), len(run.Analysis.Trojans), fsp.KnownTrojanClasses(),
		run.Total().Round(time.Millisecond))
	for _, tr := range run.Analysis.Trojans[:3] {
		cmd, rep, act, _ := fsp.ClassOf(tr.Concrete)
		fmt.Printf("  e.g. cmd=%d bb_len=%d actual-path-len=%d: %v\n", cmd, rep, act, tr.Concrete)
	}

	// Wildcard experiment: glob-aware clients never send a literal '*';
	// the server accepts it — extra Trojan classes appear on the
	// valid-length paths.
	wrun, err := achilles.Run(fsp.NewTarget(true), achilles.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	wildcards := 0
	for _, tr := range wrun.Analysis.Trojans {
		if _, rep, act, _ := fsp.ClassOf(tr.Concrete); act == rep {
			wildcards++
		}
	}
	fmt.Printf("\nwildcard experiment: %d total classes, %d involve a literal '*'\n",
		len(wrun.Analysis.Trojans), wildcards)
	for _, tr := range wrun.Analysis.Trojans {
		if _, rep, act, _ := fsp.ClassOf(tr.Concrete); act == rep {
			fmt.Printf("  e.g. %v (path bytes %q)\n", tr.Concrete, pathOf(tr.Concrete))
			break
		}
	}
}

func pathOf(msg []int64) string {
	var b []byte
	for i := 0; i < fsp.MaxPath; i++ {
		if msg[fsp.FieldBuf+i] == 0 {
			break
		}
		b = append(b, byte(msg[fsp.FieldBuf+i]))
	}
	return string(b)
}
