// Quickstart: find the Trojan message in the paper's §2 working example — a
// toy read/write server whose READ handler forgot the lower bounds check on
// the address field — through the v2 Session API: the analysis streams each
// Trojan class the moment the exploration confirms it, and the whole run is
// cancellable through the context.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"achilles"
)

// The vulnerable server (paper Figure 2), written in NL. Message fields:
// 0 sender, 1 request, 2 address, 3 value, 4 crc.
const serverSrc = `
const DATASIZE = 100;
const READ = 1;
const WRITE = 2;
const NPEERS = 4;
var msg [5]int;

func main() {
	recv(msg);
	if msg[0] < 0 || msg[0] >= NPEERS { reject(); }
	if msg[4] != msg[0] + msg[1] + msg[2] + msg[3] { reject(); }
	if msg[1] == READ {
		if msg[2] >= DATASIZE { reject(); }
		// BUG: forgot to check msg[2] < 0.
		accept();
	}
	if msg[1] == WRITE {
		if msg[2] >= DATASIZE { reject(); }
		if msg[2] < 0 { reject(); }
		accept();
	}
	reject();
}`

// The correct client (paper Figure 3): it validates the address before
// sending, so no correct client ever sends a negative address.
const clientSrc = `
const DATASIZE = 100;
const READ = 1;
const WRITE = 2;
const NPEERS = 4;
var msg [5]int;

func main() {
	var peerID int = input();
	assume(peerID >= 0);
	assume(peerID < NPEERS);
	var operationType int = input();
	var address int = input();
	if address >= DATASIZE { exit(); }
	if address < 0 { exit(); }
	if operationType == READ {
		msg[0] = peerID; msg[1] = READ; msg[2] = address; msg[3] = 0;
		msg[4] = msg[0] + msg[1] + msg[2] + msg[3];
		send(msg);
		exit();
	}
	if operationType == WRITE {
		var value int = input();
		msg[0] = peerID; msg[1] = WRITE; msg[2] = address; msg[3] = value;
		msg[4] = msg[0] + msg[1] + msg[2] + msg[3];
		send(msg);
		exit();
	}
	exit();
}`

func main() {
	// The context bounds the whole analysis: cancel it (or let the deadline
	// pass) and the session aborts mid-exploration with partial results
	// marked truncated. The toy target finishes in milliseconds; the
	// deadline is here to show the shape.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sess, err := achilles.Start(ctx, achilles.Target{
		Name:       "quickstart-kv",
		Server:     achilles.MustCompile(serverSrc),
		Clients:    []achilles.ClientProgram{{Name: "kv-client", Unit: achilles.MustCompile(clientSrc)}},
		FieldNames: []string{"sender", "request", "address", "value", "crc"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Trojan classes stream out while the server exploration is still
	// running — a long-lived service would forward these to its clients
	// instead of waiting for the full walk.
	for ev := range sess.Events() {
		switch ev.Kind {
		case achilles.EventPhase:
			fmt.Printf("[phase] %s\n", ev.Phase)
		case achilles.EventTrojan:
			fmt.Printf("[found] example [sender request address value crc]: %v\n", ev.Trojan.Concrete)
		}
	}

	run, err := sess.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclient path predicates: %d\n", len(run.Clients.Paths))
	fmt.Printf("Trojan classes found:   %d\n\n", len(run.Analysis.Trojans))
	for _, tr := range run.Analysis.Trojans {
		fmt.Printf("Trojan #%d\n", tr.Index)
		fmt.Printf("  example message [sender request address value crc]: %v\n", tr.Concrete)
		fmt.Printf("  verified: server accepts=%v, no client generates=%v\n",
			tr.VerifiedAccept, tr.VerifiedNotClient)
		fmt.Printf("  class: %s\n\n", tr.Witness)
	}
	fmt.Println("The READ path accepts negative addresses (and non-zero value fields)")
	fmt.Println("that no correct client ever sends — the paper's §2 privacy leak.")
}
