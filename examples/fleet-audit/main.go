// Fleet audit: the paper's operational end game — audit every registered
// protocol target as one campaign, persist the result as a diffable audit
// bundle, and prove the regression gate works by diffing a clean re-run
// (zero changes) against a seeded regression (flagged immediately).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"achilles/internal/campaign"
	_ "achilles/internal/protocols"
)

func main() {
	root, err := os.MkdirTemp("", "fleet-audit-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// Audit the whole catalog under one global -j budget: cheap targets run
	// on their own pool workers instead of queueing behind the big ones.
	opts := campaign.Options{Jobs: runtime.NumCPU()}
	bundle, err := campaign.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	dir := filepath.Join(root, "baseline")
	if err := bundle.Write(dir); err != nil {
		log.Fatal(err)
	}
	classes := 0
	for _, rm := range bundle.Manifest.Runs {
		classes += rm.Classes
		fmt.Printf("  %-28s %3d class(es) %6d ms\n", rm.Key(), rm.Classes, rm.WallMS)
	}
	fmt.Printf("fleet audit: %d jobs, %d Trojan classes, %d ms wall (-j %d)\n\n",
		len(bundle.Manifest.Runs), classes, bundle.Manifest.WallMS, opts.Jobs)

	// A re-run against the persisted bundle as baseline is incremental: the
	// fleet is unchanged, so every job's input fingerprint matches and its
	// reports are reused verbatim (marked cached) — the steady state of a
	// continuously running audit. The diff is empty by construction AND by
	// verification.
	loaded, err := campaign.Read(dir)
	if err != nil {
		log.Fatal(err)
	}
	incOpts := opts
	incOpts.Baseline = loaded
	incOpts.BaselineDir = dir
	again, err := campaign.Run(incOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental re-audit: %d/%d job(s) reused from baseline, %d ms wall\n",
		again.Manifest.CachedJobs, len(again.Manifest.Runs), again.Manifest.WallMS)
	fmt.Printf("re-audit vs persisted baseline: %s", campaign.Diff(loaded, again).Render())

	// Seed a regression — pretend the kv Trojan silently vanished from a
	// later audit (a model edit, a solver change, a parallelism bug) — and
	// watch the diff flag it.
	key := "kv/optimized"
	seeded := again.Reports[key]
	again.Reports[key] = nil
	d := campaign.Diff(loaded, again)
	fmt.Printf("\nseeded regression (drop %d kv class): %s", len(seeded), d.Render())
	if d.Empty() {
		log.Fatal("regression not flagged — the audit gate is broken")
	}
}
