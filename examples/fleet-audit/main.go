// Fleet audit: the paper's operational end game — audit every registered
// protocol target as one campaign, persist the result as a diffable audit
// bundle, and prove the regression gate works by diffing a clean re-run
// (zero changes) against a seeded regression (flagged immediately).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"

	"achilles/internal/campaign"
	_ "achilles/internal/protocols"
)

func main() {
	root, err := os.MkdirTemp("", "fleet-audit-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// The campaign runs under a signal-aware context: Ctrl-C aborts the
	// in-flight jobs mid-exploration and the bundle written below would be
	// marked interrupted — refused as a baseline and by the golden gate.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Audit the whole catalog under one global -j budget: cheap targets run
	// on their own pool workers instead of queueing behind the big ones.
	// On interruption RunCtx still returns the partial bundle alongside the
	// ctx error; the demo stops there, because the rest of it (incremental
	// reuse, the regression gate) is only meaningful for a finished audit.
	opts := campaign.Options{Jobs: runtime.NumCPU()}
	bundle, err := campaign.RunCtx(ctx, opts)
	if errors.Is(err, context.Canceled) {
		dir := filepath.Join(root, "interrupted")
		if werr := bundle.Write(dir); werr != nil {
			log.Fatal(werr)
		}
		log.Fatalf("campaign interrupted — partial bundle (marked interrupted, refused as baseline) written to %s", dir)
	}
	if err != nil {
		log.Fatal(err)
	}
	dir := filepath.Join(root, "baseline")
	if err := bundle.Write(dir); err != nil {
		log.Fatal(err)
	}
	classes := 0
	for _, rm := range bundle.Manifest.Runs {
		classes += rm.Classes
		fmt.Printf("  %-28s %3d class(es) %6d ms\n", rm.Key(), rm.Classes, rm.WallMS)
	}
	fmt.Printf("fleet audit: %d jobs, %d Trojan classes, %d ms wall (-j %d)\n\n",
		len(bundle.Manifest.Runs), classes, bundle.Manifest.WallMS, opts.Jobs)

	// A re-run against the persisted bundle as baseline is incremental: the
	// fleet is unchanged, so every job's input fingerprint matches and its
	// reports are reused verbatim (marked cached) — the steady state of a
	// continuously running audit. The diff is empty by construction AND by
	// verification.
	loaded, err := campaign.Read(dir)
	if err != nil {
		log.Fatal(err)
	}
	incOpts := opts
	incOpts.Baseline = loaded
	incOpts.BaselineDir = dir
	again, err := campaign.Run(incOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental re-audit: %d/%d job(s) reused from baseline, %d ms wall\n",
		again.Manifest.CachedJobs, len(again.Manifest.Runs), again.Manifest.WallMS)
	fmt.Printf("re-audit vs persisted baseline: %s", campaign.Diff(loaded, again).Render())

	// Seed a regression — pretend the kv Trojan silently vanished from a
	// later audit (a model edit, a solver change, a parallelism bug) — and
	// watch the diff flag it.
	key := "kv/optimized"
	seeded := again.Reports[key]
	again.Reports[key] = nil
	d := campaign.Diff(loaded, again)
	fmt.Printf("\nseeded regression (drop %d kv class): %s", len(seeded), d.Render())
	if d.Empty() {
		log.Fatal("regression not flagged — the audit gate is broken")
	}
}
