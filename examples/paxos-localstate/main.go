// paxos-localstate demonstrates the three local-state analysis modes of
// §3.4 on a Paxos acceptor in phase 2, then injects the discovered Trojan
// into a concrete Paxos group and breaks agreement.
//
// Run with: go run ./examples/paxos-localstate
package main

import (
	"fmt"
	"log"

	"achilles"
	"achilles/internal/protocols/paxos"
)

func main() {
	// Mode 1 — Concrete Local State: run the system concretely into phase 2
	// with proposed value 7, then analyse. Any Accept with value != 7 is
	// Trojan in that world.
	run, err := achilles.Run(paxos.ConcreteStateTarget(3, 7), achilles.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("concrete local state (ballot=3, value=7):")
	for _, tr := range run.Analysis.Trojans {
		fmt.Printf("  Trojan Accept: %v  [type ballot value]\n", tr.Concrete)
	}

	// Mode 2 — Constructed Symbolic Local State: one analysis with a
	// symbolic proposed value covers every concrete world.
	srun, err := achilles.Run(paxos.SymbolicStateTarget(), achilles.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconstructed symbolic local state (one run, all worlds):")
	for _, tr := range srun.Analysis.Trojans {
		fmt.Printf("  Trojan class: %s\n", tr.Witness)
		fmt.Printf("  instantiated world %v, example %v\n", tr.StateEnv, tr.Concrete)
	}

	// Mode 3 — Over-approximate symbolic state is what the PBFT replica
	// model uses for its duplicate-request table (see pbft.ReplicaSrc and
	// the symbolic() intrinsic).

	// Impact: inject the Trojan into a live group — two learners disagree.
	g := paxos.NewGroup(3)
	if _, err := g.Propose(1, 7); err != nil {
		log.Fatal(err)
	}
	before, _ := g.Learn([]int{0, 1, 2})
	g.InjectAccept(1, 1, 9)
	g.InjectAccept(2, 1, 9)
	after, _ := g.Learn([]int{0, 1, 2})
	fmt.Printf("\nconcrete injection: learner saw %d before the attack, %d after — agreement broken\n",
		before, after)
}
