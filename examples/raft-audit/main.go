// Raft leader-election audit: find the log-invariant Trojan on the
// follower model, then demonstrate its impact concretely — a forged
// RequestVote whose log claim outruns its own term steals an election that
// a legitimate campaign with the same (empty) log loses.
package main

import (
	"fmt"
	"log"

	"achilles/internal/core"
	"achilles/internal/protocols/raft"
)

func main() {
	run, err := core.Run(raft.NewTarget(), core.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raft follower analysis: %d client path predicates, %d Trojan class(es)\n",
		len(run.Clients.Paths), len(run.Analysis.Trojans))
	for _, tr := range run.Analysis.Trojans {
		fmt.Printf("  %v  fields=%v\n", tr.Concrete, raft.FieldNames)
	}

	// The fixed follower has none.
	fixed, err := core.Run(raft.NewFixedTarget(), core.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed follower: %d Trojan class(es)\n", len(fixed.Analysis.Trojans))

	// Impact: inject the forged vote into a live 3-node cluster where the
	// attacker's log is empty and the other nodes hold committed entries.
	legit, forged, quorum := raft.StolenElection()
	fmt.Printf("legitimate campaign (empty log): %d/%d votes — loses\n", legit, quorum)
	fmt.Printf("forged campaign (Trojan log claim): %d/%d votes — steals the election\n", forged, quorum)
}
