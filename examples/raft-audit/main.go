// Raft leader-election audit: find the log-invariant Trojan on the
// follower model, then demonstrate its impact concretely — a forged
// RequestVote whose log claim outruns its own term steals an election that
// a legitimate campaign with the same (empty) log loses.
//
// The vulnerable follower is probed twice through the Session API: once
// with WithFirstTrojan — the fast "is it vulnerable at all?" triage mode
// that stops the whole fan-out at the first confirmed class — and once in
// full to enumerate every class.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"achilles"
	"achilles/internal/protocols/raft"
)

func main() {
	ctx := context.Background()

	// Triage: first confirmed Trojan stops the exploration.
	t0 := time.Now()
	triage, err := achilles.Start(ctx, raft.NewTarget(), achilles.WithFirstTrojan())
	if err != nil {
		log.Fatal(err)
	}
	quick, err := triage.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triage (first-trojan): vulnerable after %v — %d class(es) before the stop landed\n",
		time.Since(t0).Round(time.Millisecond), len(quick.Analysis.Trojans))

	// Full audit: every class, streamed as found.
	sess, err := achilles.Start(ctx, raft.NewTarget())
	if err != nil {
		log.Fatal(err)
	}
	run, err := sess.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raft follower analysis: %d client path predicates, %d Trojan class(es)\n",
		len(run.Clients.Paths), len(run.Analysis.Trojans))
	for _, tr := range run.Analysis.Trojans {
		fmt.Printf("  %v  fields=%v\n", tr.Concrete, raft.FieldNames)
	}

	// The fixed follower has none.
	fixedSess, err := achilles.Start(ctx, raft.NewFixedTarget())
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := fixedSess.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed follower: %d Trojan class(es)\n", len(fixed.Analysis.Trojans))

	// Impact: inject the forged vote into a live 3-node cluster where the
	// attacker's log is empty and the other nodes hold committed entries.
	legit, forged, quorum := raft.StolenElection()
	fmt.Printf("legitimate campaign (empty log): %d/%d votes — loses\n", legit, quorum)
	fmt.Printf("forged campaign (Trojan log claim): %d/%d votes — steals the election\n", forged, quorum)
}
