// fsp-firedrill injects every Trojan message Achilles finds in FSP into a
// live UDP FSP server — the paper's fire-drill fault-injection scenario —
// and then demonstrates the wildcard bug's collateral damage end to end.
//
// Run with: go run ./examples/fsp-firedrill
package main

import (
	"fmt"
	"log"

	"achilles/internal/inject"
	"achilles/internal/protocols/fsp"
)

func main() {
	server := fsp.NewServer()
	us, err := fsp.ListenUDP("127.0.0.1:0", server)
	if err != nil {
		log.Fatal(err)
	}
	defer us.Close()
	fmt.Printf("live FSP server on udp://%s\n", us.Addr())

	client, err := fsp.UDPClient(us.Addr())
	if err != nil {
		log.Fatal(err)
	}
	// A valuable directory, standing in for 'fileWithAllMyBankAccounts'.
	if _, err := client.Run("make_dir", "fil1"); err != nil {
		log.Fatal(err)
	}
	outcomes, err := inject.FSPFireDrill(client.Send)
	if err != nil {
		log.Fatal(err)
	}
	s := inject.Summarize(outcomes)
	fmt.Printf("injected %d Trojans over UDP: %d accepted, %d rejected, %d bytes smuggled\n",
		s.Total, s.Accepted, s.Rejected, server.SmuggledBytes)

	// Wildcard collateral damage: create 'fil*' via a Trojan, then watch a
	// correct client destroy the innocent sibling while removing it.
	trojan := make([]int64, fsp.NumFields)
	trojan[fsp.FieldCmd] = 14 // make_dir
	trojan[fsp.FieldLen] = 4
	for i, ch := range []byte("fil*") {
		trojan[fsp.FieldBuf+i] = int64(ch)
	}
	pkt, err := fsp.EncodeFields(trojan)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.Send(pkt); err != nil {
		log.Fatal("trojan rejected: ", err)
	}
	fmt.Printf("\ntrojan created directory %q on the server\n", "fil*")
	deleted, err := client.Run("del_dir", "fil*")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correct client ran `del_dir 'fil*'`; glob expansion deleted: %v\n", deleted)
	fmt.Println("the valuable sibling directory is gone — the §6.3 wildcard hazard")
}
