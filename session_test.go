package achilles_test

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"achilles"
	"achilles/internal/testutil"
)

// sessionTarget is a target wide enough (2^8 accepting paths, each a Trojan
// class) that cancellation reliably lands mid-exploration.
func sessionTarget(t *testing.T) achilles.Target {
	t.Helper()
	server := achilles.MustCompile(`
var m [8]int;
var acc int;

func main() {
	recv(m);
	var i int = 0;
	acc = 0;
	while i < 8 {
		if m[i] > 0 { acc = acc + 1; }
		i = i + 1;
	}
	accept();
}`)
	client := achilles.MustCompile(`
var m [8]int;

func main() {
	var i int = 0;
	while i < 8 {
		var x int = input();
		assume(x >= 0);
		assume(x < 4);
		m[i] = x;
		i = i + 1;
	}
	send(m);
}`)
	return achilles.Target{
		Name:    "session-deep",
		Server:  server,
		Clients: []achilles.ClientProgram{{Name: "c", Unit: client}},
	}
}

// TestSessionStreamsEvents: a full session emits the three phases in order,
// streams every Trojan class before Wait returns, and ends with a closed
// event channel.
func TestSessionStreamsEvents(t *testing.T) {
	sess, err := achilles.Start(context.Background(), sessionTarget(t),
		achilles.WithParallelism(4),
		achilles.WithProgressInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	trojans, progress := 0, 0
	for ev := range sess.Events() {
		switch ev.Kind {
		case achilles.EventPhase:
			phases = append(phases, ev.Phase)
		case achilles.EventTrojan:
			trojans++
			if ev.Trojan == nil || ev.Trojan.Witness == nil {
				t.Fatal("trojan event without a report")
			}
		case achilles.EventProgress:
			progress++
		}
	}
	run, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{achilles.PhaseExtract, achilles.PhasePreprocess, achilles.PhaseServer}
	if len(phases) != 3 || phases[0] != want[0] || phases[1] != want[1] || phases[2] != want[2] {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	if trojans != len(run.Analysis.Trojans) {
		t.Fatalf("streamed %d trojan events, result has %d classes", trojans, len(run.Analysis.Trojans))
	}
	if progress == 0 {
		t.Fatal("no progress events")
	}
	if sess.Dropped() != 0 {
		t.Fatalf("%d events dropped from a drained stream", sess.Dropped())
	}
}

// TestSessionWaitWithoutEvents: never touching Events must not wedge the
// session.
func TestSessionWaitWithoutEvents(t *testing.T) {
	sess, err := achilles.Start(context.Background(), sessionTarget(t), achilles.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sess.Wait()
	if err != nil || len(run.Analysis.Trojans) == 0 {
		t.Fatalf("Wait = (%v trojans, %v)", run, err)
	}
}

// TestSessionCancelMidFrontier: cancelling a -j 8 session mid-server-phase
// makes Wait return context.Canceled with a partial, Truncated result, and
// leaks no goroutines.
func TestSessionCancelMidFrontier(t *testing.T) {
	tgt := sessionTarget(t)
	testutil.CheckGoroutineLeak(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	sess, err := achilles.Start(ctx, tgt,
		achilles.WithParallelism(8),
		achilles.WithProgressInterval(time.Millisecond),
		// Cancel from the first server-phase progress callback: guaranteed
		// mid-frontier.
		achilles.WithObserver(achilles.Observer{
			OnProgress: func(achilles.Progress) { once.Do(cancel) },
		}))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sess.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	if run == nil {
		t.Fatal("no partial result from a server-phase cancellation")
	}
	if !run.Truncated() {
		t.Fatal("cancelled session result not marked Truncated")
	}
	// The events channel still closes and drains; the goroutine-leak guard
	// registered above verifies the teardown on cleanup.
	for range sess.Events() {
	}
}

// TestSessionDeadline: a context deadline behaves like Cancel and Wait
// reports context.DeadlineExceeded.
func TestSessionDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	sess, err := achilles.Start(ctx, sessionTarget(t), achilles.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSessionFirstTrojan: the early-exit mode returns at least one class,
// marked Truncated, without an error, and faster paths than the full walk.
func TestSessionFirstTrojan(t *testing.T) {
	tgt := sessionTarget(t)
	full, err := achilles.Run(tgt, achilles.AnalysisOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := achilles.Start(context.Background(), tgt,
		achilles.WithParallelism(4), achilles.WithFirstTrojan())
	if err != nil {
		t.Fatal(err)
	}
	run, err := sess.Wait()
	if err != nil {
		t.Fatalf("first-trojan Wait err = %v", err)
	}
	if len(run.Analysis.Trojans) == 0 {
		t.Fatal("first-trojan session found nothing")
	}
	if !run.Truncated() {
		t.Fatal("first-trojan result not marked Truncated")
	}
	if len(run.Analysis.Trojans) >= len(full.Analysis.Trojans) {
		t.Fatalf("first-trojan explored everything (%d vs %d classes)",
			len(run.Analysis.Trojans), len(full.Analysis.Trojans))
	}
}

// TestSessionMaxStates: WithMaxStates truncates the exploration without an
// error.
func TestSessionMaxStates(t *testing.T) {
	sess, err := achilles.Start(context.Background(), sessionTarget(t),
		achilles.WithParallelism(2), achilles.WithMaxStates(16))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !run.Truncated() {
		t.Fatal("MaxStates-capped run not marked Truncated")
	}
}

// TestSessionSolverCache: WithSolverCache persists verdicts that warm the
// next session.
func TestSessionSolverCache(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "verdicts.jsonl")
	tgt := sessionTarget(t)
	s1, err := achilles.Start(context.Background(), tgt,
		achilles.WithParallelism(2), achilles.WithSolverCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := achilles.Start(context.Background(), tgt,
		achilles.WithParallelism(2), achilles.WithSolverCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(warm.Analysis.Trojans), len(cold.Analysis.Trojans); got != want {
		t.Fatalf("warm session found %d classes, cold %d", got, want)
	}
	if warm.Analysis.SolverStats.CacheHits == 0 {
		t.Fatal("second session never hit the persisted cache")
	}
}

// TestStartValidation: structurally broken targets fail at Start, not Wait.
func TestStartValidation(t *testing.T) {
	if _, err := achilles.Start(context.Background(), achilles.Target{}); err == nil {
		t.Fatal("Start accepted a target without a server")
	}
	tgt := sessionTarget(t)
	tgt.Clients = nil
	if _, err := achilles.Start(context.Background(), tgt); err == nil {
		t.Fatal("Start accepted a target without clients")
	}
}

// TestSessionEventOverflowDrops: an undrained session never blocks and
// accounts for anything it had to discard.
func TestSessionEventOverflowDrops(t *testing.T) {
	var emitted atomic.Int64
	sess, err := achilles.Start(context.Background(), sessionTarget(t),
		achilles.WithParallelism(4),
		achilles.WithProgressInterval(time.Microsecond), // flood progress
		achilles.WithObserver(achilles.Observer{
			OnProgress: func(achilles.Progress) { emitted.Add(1) },
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	// Nothing read from Events: the channel holds at most its buffer; the
	// rest must be accounted as dropped, not deadlocked on.
	buffered := len(sess.Events())
	if int64(buffered)+sess.Dropped() < emitted.Load() {
		t.Fatalf("event accounting: %d buffered + %d dropped < %d emitted",
			buffered, sess.Dropped(), emitted.Load())
	}
}

// TestSessionSlowConsumerNeverBlocks: the documented contract of Events is
// that a consumer slower than the analysis observes the drop counter — the
// producer is never blocked waiting for it. With the channel shrunk to a
// handful of slots and the consumer gated until Wait has returned, drops are
// guaranteed (the session emits 3 phases + 256 trojans + progress), so this
// is deterministic: if the producer ever blocked on the full channel, Wait
// would deadlock and the test would time out instead of passing.
func TestSessionSlowConsumerNeverBlocks(t *testing.T) {
	t.Cleanup(achilles.SetEventBufferForTest(8))
	testutil.CheckGoroutineLeak(t)

	sess, err := achilles.Start(context.Background(), sessionTarget(t),
		achilles.WithParallelism(4),
		achilles.WithProgressInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// The slowest possible consumer: one that does not read at all until the
	// whole analysis is over.
	run, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Analysis.Trojans) == 0 {
		t.Fatal("analysis found nothing; the overflow premise is gone")
	}

	// Now drain. The channel must already be closed (Wait returned), hold at
	// most its capacity, and the overflow must be visible in Dropped.
	received := 0
	for range sess.Events() {
		received++
	}
	if received > 8 {
		t.Fatalf("drained %d events from a channel with capacity 8", received)
	}
	if sess.Dropped() == 0 {
		t.Fatal("slow consumer observed no drops despite a flooded 8-slot buffer")
	}
	// The accounting adds up: everything emitted was either received or
	// counted as dropped. Wait's result itself is complete regardless — 256
	// classes, none lost to the event stream.
	if got := len(run.Analysis.Trojans); got != 256 {
		t.Fatalf("dropped events corrupted the result: %d classes, want 256", got)
	}
}
