module achilles

go 1.24
