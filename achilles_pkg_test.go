package achilles_test

import (
	"testing"

	"achilles"
)

// TestFacadeEndToEnd exercises the public API exactly as the package doc
// advertises it.
func TestFacadeEndToEnd(t *testing.T) {
	server, err := achilles.Compile(`
var m [2]int;
func main() {
	recv(m);
	if m[0] != 1 { reject(); }
	accept();
}`)
	if err != nil {
		t.Fatal(err)
	}
	client := achilles.MustCompile(`
var m [2]int;
func main() {
	var x int = input();
	assume(x >= 0);
	assume(x < 10);
	m[0] = 1;
	m[1] = x;
	send(m);
}`)
	run, err := achilles.Run(achilles.Target{
		Name:    "facade",
		Server:  server,
		Clients: []achilles.ClientProgram{{Name: "c", Unit: client}},
	}, achilles.AnalysisOptions{Mode: achilles.ModeOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Analysis.Trojans) != 1 {
		t.Fatalf("trojans = %d, want 1 (m1 outside [0,10))", len(run.Analysis.Trojans))
	}
	tr := run.Analysis.Trojans[0]
	if tr.Concrete[0] != 1 || (tr.Concrete[1] >= 0 && tr.Concrete[1] < 10) {
		t.Fatalf("bad example %v", tr.Concrete)
	}
	if !tr.VerifiedAccept || !tr.VerifiedNotClient {
		t.Fatalf("verification flags: %+v", tr)
	}
}

func TestCompileError(t *testing.T) {
	if _, err := achilles.Compile("not a program"); err == nil {
		t.Fatal("expected a compile error")
	}
}
