package achilles

// SetEventBufferForTest shrinks the Events channel capacity so the overflow
// path can be forced deterministically, and returns a restore func for
// t.Cleanup.
func SetEventBufferForTest(n int) (restore func()) {
	old := eventBuffer
	eventBuffer = n
	return func() { eventBuffer = old }
}
