package achilles_test

import (
	"context"
	"fmt"
	"log"

	"achilles"
)

// ExampleStart runs a streaming analysis session against a toy server whose
// validation forgot the upper bound a correct client always enforces. The
// session streams each Trojan class the moment it is confirmed; Wait returns
// the completed result.
func ExampleStart() {
	server := achilles.MustCompile(`
var m [2]int;
func main() {
	recv(m);
	if m[0] != 1 { reject(); }
	accept();
}`)
	client := achilles.MustCompile(`
var m [2]int;
func main() {
	var x int = input();
	assume(x >= 0);
	assume(x < 10);
	m[0] = 1;
	m[1] = x;
	send(m);
}`)

	sess, err := achilles.Start(context.Background(), achilles.Target{
		Name:    "example",
		Server:  server,
		Clients: []achilles.ClientProgram{{Name: "c", Unit: client}},
	}, achilles.WithParallelism(2))
	if err != nil {
		log.Fatal(err)
	}
	streamed := 0
	for ev := range sess.Events() {
		if ev.Kind == achilles.EventTrojan {
			streamed++
		}
	}
	run, err := sess.Wait()
	if err != nil {
		log.Fatal(err)
	}
	tr := run.Analysis.Trojans[0]
	fmt.Printf("streamed %d trojan class(es)\n", streamed)
	fmt.Printf("verified: accept=%v non-client=%v\n", tr.VerifiedAccept, tr.VerifiedNotClient)
	fmt.Printf("truncated: %v\n", run.Truncated())
	// Output:
	// streamed 1 trojan class(es)
	// verified: accept=true non-client=true
	// truncated: false
}
