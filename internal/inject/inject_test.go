package inject

import (
	"strings"
	"testing"

	"achilles/internal/protocols/fsp"
)

// TestFireDrillAllTrojansAccepted: every Trojan Achilles reports on the FSP
// models must be accepted by the concrete server implementation — the two
// implementations agree on the vulnerability surface.
func TestFireDrillAllTrojansAccepted(t *testing.T) {
	server := fsp.NewServer()
	outcomes, err := FSPFireDrill(fsp.DirectClient(server).Send)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 112 {
		t.Fatalf("outcomes = %d, want 112 Trojan classes", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Accepted {
			t.Errorf("trojan %d rejected by the concrete server: %v (%s)",
				o.Trojan.Index, o.Trojan.Concrete, o.Effect)
		}
	}
	s := Summarize(outcomes)
	if s.Accepted != s.Total || s.Rejected != 0 {
		t.Fatalf("summary %+v", s)
	}
	if server.SmuggledBytes == 0 {
		t.Fatal("no smuggled bytes observed — mismatched-length Trojans had no effect")
	}
}

// fspMsg builds an FSP field vector with the given reported length and path
// bytes (remaining path bytes stay NUL).
func fspMsg(reported int64, path ...int64) []int64 {
	msg := make([]int64, fsp.NumFields)
	msg[fsp.FieldLen] = reported
	copy(msg[fsp.FieldBuf:], path)
	return msg
}

func TestDescribeFSPEffect(t *testing.T) {
	cases := []struct {
		name    string
		msg     []int64
		reply   []byte
		want    []string // substrings that must appear
		wantNot []string // substrings that must not
	}{
		{
			name:    "wildcard reaches fs layer",
			msg:     fspMsg(2, fsp.Wildcard, 'a'),
			want:    []string{"literal '*' reached the filesystem layer"},
			wantNot: []string{"smuggled"},
		},
		{
			name: "smuggled bytes past the parser",
			// reported 3, NUL at buf[1] -> actual 1 -> 1 byte smuggled.
			msg:     fspMsg(3, 'a', 0, 'x'),
			want:    []string{"smuggled 1 byte(s)"},
			wantNot: []string{"'*'"},
		},
		{
			name: "smuggled count scales with the gap",
			msg:  fspMsg(5, 'a', 0, 'x', 'y', 'z'),
			want: []string{"smuggled 3 byte(s)"},
		},
		{
			name: "wildcard and smuggling together",
			msg:  fspMsg(4, fsp.Wildcard, 'b', 0, 'x'),
			want: []string{"smuggled 1 byte(s)", "literal '*'"},
		},
		{
			name: "wildcard beyond the true length is dead payload",
			// The '*' sits after the NUL: it never reaches the fs layer.
			msg:     fspMsg(3, 'a', 0, fsp.Wildcard),
			want:    []string{"smuggled"},
			wantNot: []string{"'*'"},
		},
		{
			name:    "no anomaly",
			msg:     fspMsg(2, 'a', 'b'),
			want:    []string{"accepted"},
			wantNot: []string{"smuggled", "'*'"},
		},
		{
			name:  "reply is quoted",
			msg:   fspMsg(2, 'a', 'b'),
			reply: []byte("ok"),
			want:  []string{`server replied "ok"`},
		},
		{
			name:  "long replies are truncated",
			msg:   fspMsg(2, 'a', 'b'),
			reply: []byte(strings.Repeat("x", 64)),
			want:  []string{strings.Repeat("x", 32) + "..."},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := describeFSPEffect(tc.msg, tc.reply)
			for _, w := range tc.want {
				if !strings.Contains(got, w) {
					t.Errorf("effect %q missing %q", got, w)
				}
			}
			for _, w := range tc.wantNot {
				if strings.Contains(got, w) {
					t.Errorf("effect %q must not contain %q", got, w)
				}
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	acc := Outcome{Accepted: true}
	rej := Outcome{Accepted: false}
	cases := []struct {
		name     string
		outcomes []Outcome
		want     Summary
	}{
		{"empty", nil, Summary{}},
		{"all accepted", []Outcome{acc, acc}, Summary{Total: 2, Accepted: 2}},
		{"all rejected", []Outcome{rej}, Summary{Total: 1, Rejected: 1}},
		{"mixed", []Outcome{acc, rej, acc, rej, rej}, Summary{Total: 5, Accepted: 2, Rejected: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Summarize(tc.outcomes); got != tc.want {
				t.Errorf("Summarize = %+v, want %+v", got, tc.want)
			}
		})
	}
}
