package inject

import (
	"strings"
	"testing"

	"achilles/internal/protocols/fsp"
)

// TestFireDrillAllTrojansAccepted: every Trojan Achilles reports on the FSP
// models must be accepted by the concrete server implementation — the two
// implementations agree on the vulnerability surface.
func TestFireDrillAllTrojansAccepted(t *testing.T) {
	server := fsp.NewServer()
	outcomes, err := FSPFireDrill(fsp.DirectClient(server).Send)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 112 {
		t.Fatalf("outcomes = %d, want 112 Trojan classes", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Accepted {
			t.Errorf("trojan %d rejected by the concrete server: %v (%s)",
				o.Trojan.Index, o.Trojan.Concrete, o.Effect)
		}
	}
	s := Summarize(outcomes)
	if s.Accepted != s.Total || s.Rejected != 0 {
		t.Fatalf("summary %+v", s)
	}
	if server.SmuggledBytes == 0 {
		t.Fatal("no smuggled bytes observed — mismatched-length Trojans had no effect")
	}
}

func TestEffectDescriptions(t *testing.T) {
	// Wildcard effect.
	msg := make([]int64, fsp.NumFields)
	msg[fsp.FieldLen] = 2
	msg[fsp.FieldBuf] = fsp.Wildcard
	msg[fsp.FieldBuf+1] = 'a'
	if got := describeFSPEffect(msg, nil); !strings.Contains(got, "'*'") {
		t.Errorf("wildcard effect missing: %q", got)
	}
	// Smuggling effect.
	msg2 := make([]int64, fsp.NumFields)
	msg2[fsp.FieldLen] = 3
	msg2[fsp.FieldBuf] = 'a'
	msg2[fsp.FieldBuf+2] = 'x'
	if got := describeFSPEffect(msg2, nil); !strings.Contains(got, "smuggled") {
		t.Errorf("smuggling effect missing: %q", got)
	}
}
