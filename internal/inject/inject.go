// Package inject replays the concrete Trojan examples produced by Achilles
// against live concrete servers — the paper's fire-drill scenario (§1,
// §4.1): concretised Trojan messages are injected into a real deployment to
// observe their effect and weed out harmless ones.
package inject

import (
	"errors"
	"fmt"
	"strings"

	"achilles/internal/core"
	"achilles/internal/protocols/fsp"
)

// Outcome records the effect of injecting one Trojan message.
type Outcome struct {
	Trojan   core.TrojanReport
	Accepted bool   // the live server accepted the packet
	Effect   string // human-readable observed effect
}

// FSPFireDrill runs the glob-aware FSP analysis, encodes every discovered
// Trojan example into a real FSP packet (restoring the checksum the
// analysis masked), fires it at the provided packet transport, and reports
// what the server did.
//
// send is typically fsp.DirectClient(server).Send or a UDP client's Send.
func FSPFireDrill(send func(pkt []byte) ([]byte, error)) ([]Outcome, error) {
	run, err := core.Run(fsp.NewTarget(true), core.AnalysisOptions{})
	if err != nil {
		return nil, err
	}
	var out []Outcome
	for _, tr := range run.Analysis.Trojans {
		pkt, err := fsp.EncodeFields(tr.Concrete)
		if err != nil {
			return nil, fmt.Errorf("inject: trojan %d: %w", tr.Index, err)
		}
		o := Outcome{Trojan: tr}
		reply, err := send(pkt)
		switch {
		case err == nil:
			o.Accepted = true
			o.Effect = describeFSPEffect(tr.Concrete, reply)
		case errors.Is(err, fsp.ErrNotFound), errors.Is(err, fsp.ErrExists):
			// The message passed all validation and the server attempted
			// the action — the accept marker in the model — but the action
			// itself failed on the current filesystem state.
			o.Accepted = true
			o.Effect = "accepted; action failed on current FS state (" + err.Error() + ")"
		default:
			o.Effect = "rejected: " + err.Error()
		}
		out = append(out, o)
	}
	return out, nil
}

// describeFSPEffect classifies what the server just did with a Trojan.
func describeFSPEffect(msg []int64, reply []byte) string {
	_, reported, actual, _ := fsp.ClassOf(msg)
	var parts []string
	if actual < reported {
		parts = append(parts, fmt.Sprintf("smuggled %d byte(s) past the parser", reported-actual-1))
	}
	for i := int64(0); i < actual; i++ {
		if msg[fsp.FieldBuf+i] == fsp.Wildcard {
			parts = append(parts, "literal '*' reached the filesystem layer")
			break
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "accepted")
	}
	if len(reply) > 0 {
		parts = append(parts, fmt.Sprintf("server replied %q", truncate(string(reply), 32)))
	}
	return strings.Join(parts, "; ")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Summary aggregates outcomes.
type Summary struct {
	Total    int
	Accepted int
	Rejected int
}

// Summarize counts outcomes.
func Summarize(outcomes []Outcome) Summary {
	s := Summary{Total: len(outcomes)}
	for _, o := range outcomes {
		if o.Accepted {
			s.Accepted++
		} else {
			s.Rejected++
		}
	}
	return s
}
