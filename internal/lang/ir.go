package lang

// This file lowers checked NL programs into a flat, jump-based IR. The
// symbolic execution engine interprets one IR instruction per step; all
// control flow is explicit, so forking a state is just copying a program
// counter plus the slot/global stores.

// OpCode identifies an IR instruction.
type OpCode uint8

// IR instruction set.
const (
	OpAssign OpCode = iota // Dst = eval(X)
	OpNewArr               // Dst = fresh zeroed array of length A
	OpStore                // Dst[eval(Index)] = eval(X)
	OpJmp                  // goto A
	OpCJmp                 // if eval(X) goto A else goto B
	OpCall                 // Dst? = Funcs[F](Args...)
	OpRet                  // return eval(X)?
	OpIntrin               // builtin Bi(Args...), result to Dst?
)

func (op OpCode) String() string {
	switch op {
	case OpAssign:
		return "assign"
	case OpNewArr:
		return "newarr"
	case OpStore:
		return "store"
	case OpJmp:
		return "jmp"
	case OpCJmp:
		return "cjmp"
	case OpCall:
		return "call"
	case OpRet:
		return "ret"
	case OpIntrin:
		return "intrin"
	}
	return "op?"
}

// VarRef names a storage location: a function-local slot or a module global.
type VarRef struct {
	Global bool
	Idx    int
}

// Instr is a single IR instruction. Expression operands reference the
// checked AST; the engine evaluates them against the state's stores.
type Instr struct {
	Op     OpCode
	Dst    VarRef
	HasDst bool
	Index  Expr    // OpStore index
	X      Expr    // value / condition expression
	Args   []Expr  // call or intrinsic arguments
	F      int     // OpCall target function index
	Bi     Builtin // OpIntrin builtin
	A, B   int     // jump targets (OpJmp/OpCJmp), array length (OpNewArr)
	Pos    Pos
}

// GlobalInfo describes one module global in a compiled unit.
type GlobalInfo struct {
	Name string
	Type Type
	Init int64 // initial value for scalars (0 when absent)
}

// IRFunc is one compiled function.
type IRFunc struct {
	Name     string
	Params   []Param
	Ret      Type
	NumSlots int
	Code     []Instr
}

// Unit is a compiled NL module, ready for interpretation.
type Unit struct {
	Funcs   []*IRFunc
	FuncIdx map[string]int
	Globals []GlobalInfo
	Consts  map[string]int64
	Source  *Program // checked AST, retained for tooling
}

// FuncNamed returns the compiled function with the given name, or nil.
func (u *Unit) FuncNamed(name string) *IRFunc {
	if i, ok := u.FuncIdx[name]; ok {
		return u.Funcs[i]
	}
	return nil
}

// GlobalNamed returns the index of a global by name, or -1.
func (u *Unit) GlobalNamed(name string) int {
	for i, g := range u.Globals {
		if g.Name == name {
			return i
		}
	}
	return -1
}

// Compile parses, checks and lowers an NL module.
func Compile(src string) (*Unit, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return Lower(prog)
}

// MustCompile is Compile for known-good embedded sources; it panics on error.
func MustCompile(src string) *Unit {
	u, err := Compile(src)
	if err != nil {
		panic("lang: MustCompile: " + err.Error())
	}
	return u
}

// Lower converts a checked program to IR.
func Lower(prog *Program) (*Unit, error) {
	u := &Unit{
		FuncIdx: map[string]int{},
		Consts:  map[string]int64{},
		Source:  prog,
	}
	for _, d := range prog.Consts {
		u.Consts[d.Name] = d.Val
	}
	c := &checker{consts: u.Consts} // reuse constEval for global inits
	for _, g := range prog.Globals {
		gi := GlobalInfo{Name: g.Name, Type: g.Type}
		if g.Init != nil {
			v, err := c.constEval(g.Init)
			if err != nil {
				return nil, err
			}
			gi.Init = v
		}
		u.Globals = append(u.Globals, gi)
	}
	for i, f := range prog.Funcs {
		u.FuncIdx[f.Name] = i
	}
	for _, f := range prog.Funcs {
		irf, err := lowerFunc(f)
		if err != nil {
			return nil, err
		}
		u.Funcs = append(u.Funcs, irf)
	}
	return u, nil
}

// lowering context for one function.
type lowerer struct {
	code      []Instr
	breaks    [][]int // per-loop patch lists
	continues [][]int
}

func lowerFunc(f *FuncDecl) (*IRFunc, error) {
	lw := &lowerer{}
	// Local arrays declared with `var a [N]int` are allocated when their
	// DeclStmt executes; parameter arrays arrive by reference.
	if err := lw.stmts(f.Body); err != nil {
		return nil, err
	}
	// Implicit return (void functions or fall-through; non-void fall-through
	// returns the zero value).
	lw.emit(Instr{Op: OpRet, Pos: f.Pos})
	return &IRFunc{
		Name:     f.Name,
		Params:   f.Params,
		Ret:      f.Ret,
		NumSlots: f.NumSlots,
		Code:     lw.code,
	}, nil
}

func (lw *lowerer) emit(in Instr) int {
	lw.code = append(lw.code, in)
	return len(lw.code) - 1
}

func (lw *lowerer) stmts(list []Stmt) error {
	for _, s := range list {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s Stmt) error {
	switch s := s.(type) {
	case *DeclStmt:
		dst := VarRef{Global: false, Idx: s.Slot}
		if s.Type.Kind == TypeArray {
			lw.emit(Instr{Op: OpNewArr, Dst: dst, HasDst: true, A: s.Type.Len, Pos: s.Pos_})
			return nil
		}
		if s.Init == nil {
			lw.emit(Instr{Op: OpAssign, Dst: dst, HasDst: true, X: &IntLit{Pos_: s.Pos_}, Pos: s.Pos_})
			return nil
		}
		return lw.assignTo(dst, s.Init, s.Pos_)

	case *AssignStmt:
		dst := VarRef{Global: s.Ref.Kind == RefGlobal, Idx: s.Ref.Idx}
		if s.Index != nil {
			lw.emit(Instr{Op: OpStore, Dst: dst, HasDst: true, Index: s.Index, X: s.Value, Pos: s.Pos_})
			return nil
		}
		return lw.assignTo(dst, s.Value, s.Pos_)

	case *IfStmt:
		cj := lw.emit(Instr{Op: OpCJmp, X: s.Cond, Pos: s.Pos_})
		lw.code[cj].A = len(lw.code)
		if err := lw.stmts(s.Then); err != nil {
			return err
		}
		if s.Else == nil {
			end := lw.emit(Instr{Op: OpJmp, Pos: s.Pos_})
			lw.code[end].A = len(lw.code)
			lw.code[cj].B = len(lw.code)
			return nil
		}
		jmpEnd := lw.emit(Instr{Op: OpJmp, Pos: s.Pos_})
		lw.code[cj].B = len(lw.code)
		if err := lw.stmts(s.Else); err != nil {
			return err
		}
		lw.code[jmpEnd].A = len(lw.code)
		return nil

	case *WhileStmt:
		top := len(lw.code)
		cj := lw.emit(Instr{Op: OpCJmp, X: s.Cond, Pos: s.Pos_})
		lw.code[cj].A = len(lw.code)
		lw.breaks = append(lw.breaks, nil)
		lw.continues = append(lw.continues, nil)
		if err := lw.stmts(s.Body); err != nil {
			return err
		}
		lw.emit(Instr{Op: OpJmp, A: top, Pos: s.Pos_})
		end := len(lw.code)
		lw.code[cj].B = end
		for _, b := range lw.breaks[len(lw.breaks)-1] {
			lw.code[b].A = end
		}
		for _, ct := range lw.continues[len(lw.continues)-1] {
			lw.code[ct].A = top
		}
		lw.breaks = lw.breaks[:len(lw.breaks)-1]
		lw.continues = lw.continues[:len(lw.continues)-1]
		return nil

	case *BreakStmt:
		i := lw.emit(Instr{Op: OpJmp, Pos: s.Pos_})
		lw.breaks[len(lw.breaks)-1] = append(lw.breaks[len(lw.breaks)-1], i)
		return nil

	case *ContinueStmt:
		i := lw.emit(Instr{Op: OpJmp, Pos: s.Pos_})
		lw.continues[len(lw.continues)-1] = append(lw.continues[len(lw.continues)-1], i)
		return nil

	case *ReturnStmt:
		if call, ok := s.Value.(*CallExpr); ok && call.Builtin == BNone {
			// return f(...) lowers to: tmp-less call into the return slot is
			// not available; instead emit call with a dedicated return-value
			// convention: OpCall with HasDst=false leaves the value in the
			// frame's ret register, then OpRet with nil X returns it.
			lw.emit(Instr{Op: OpCall, F: call.FuncIdx, Args: call.Args, Pos: s.Pos_})
			lw.emit(Instr{Op: OpRet, X: retRegister{}, Pos: s.Pos_})
			return nil
		}
		lw.emit(Instr{Op: OpRet, X: s.Value, Pos: s.Pos_})
		return nil

	case *ExprStmt:
		call := s.Call
		if call.Builtin != BNone {
			lw.emit(Instr{Op: OpIntrin, Bi: call.Builtin, Args: call.Args, Pos: s.Pos_})
			return nil
		}
		lw.emit(Instr{Op: OpCall, F: call.FuncIdx, Args: call.Args, Pos: s.Pos_})
		return nil
	}
	return errorf(s.stmtPos(), "unhandled statement in lowering")
}

// retRegister is a pseudo-expression marking "the value left by the most
// recent OpCall in this frame". It only appears as the X of an OpRet emitted
// for `return f(...)`.
type retRegister struct{}

func (retRegister) pos() Pos { return Pos{} }

// IsRetRegister reports whether e is the pseudo-expression produced when
// lowering `return f(...)`; the engine reads the frame's return register
// instead of evaluating it.
func IsRetRegister(e Expr) bool {
	_, ok := e.(retRegister)
	return ok
}

// assignTo emits the instruction(s) for dst = value, where value may be a
// top-level user call or intrinsic call.
func (lw *lowerer) assignTo(dst VarRef, value Expr, pos Pos) error {
	if call, ok := value.(*CallExpr); ok {
		if call.Builtin == BNone {
			lw.emit(Instr{Op: OpCall, Dst: dst, HasDst: true, F: call.FuncIdx, Args: call.Args, Pos: pos})
			return nil
		}
		if !call.Builtin.pure() {
			lw.emit(Instr{Op: OpIntrin, Dst: dst, HasDst: true, Bi: call.Builtin, Args: call.Args, Pos: pos})
			return nil
		}
	}
	lw.emit(Instr{Op: OpAssign, Dst: dst, HasDst: true, X: value, Pos: pos})
	return nil
}
