package lang

// LANGUAGE.md is the NL reference; its worked examples must stay
// compilable. This test extracts every fenced code block that looks like an
// NL module (contains "func main()") from the repository-root LANGUAGE.md
// and compiles it, so documentation drift fails the build.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// nlBlocks extracts fenced code blocks containing "func main()" from
// markdown source.
func nlBlocks(md string) []string {
	var out []string
	parts := strings.Split(md, "```")
	// Odd-indexed parts are inside fences.
	for i := 1; i < len(parts); i += 2 {
		block := parts[i]
		if strings.Contains(block, "func main()") && !strings.Contains(block, "stmt") {
			out = append(out, block)
		}
	}
	return out
}

func TestLanguageReferenceExamplesCompile(t *testing.T) {
	md, err := os.ReadFile(filepath.Join("..", "..", "LANGUAGE.md"))
	if err != nil {
		t.Fatalf("LANGUAGE.md missing: %v", err)
	}
	blocks := nlBlocks(string(md))
	if len(blocks) < 4 {
		t.Fatalf("expected at least 4 NL example blocks in LANGUAGE.md, found %d", len(blocks))
	}
	for i, src := range blocks {
		if _, err := Compile(src); err != nil {
			t.Errorf("LANGUAGE.md example block %d does not compile: %v\n%s", i+1, err, src)
		}
	}
}
