package lang

import (
	"strings"
	"testing"
)

func TestPrintRoundTrip(t *testing.T) {
	prog, err := Parse(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(prog)
	reparsed, err := Parse(printed)
	if err != nil {
		t.Fatalf("printed program does not parse: %v\n%s", err, printed)
	}
	if err := Check(reparsed); err != nil {
		t.Fatalf("printed program does not check: %v\n%s", err, printed)
	}
	// Idempotence: printing the reparsed program is a fixpoint.
	if Print(reparsed) != printed {
		t.Fatalf("print is not a fixpoint:\n--- first\n%s\n--- second\n%s", printed, Print(reparsed))
	}
}

func TestPrintRoundTripPreservesStructure(t *testing.T) {
	const src = `
var msg [3]int;
func main() {
	recv(msg);
	if msg[0] < 0 || msg[0] >= 4 { reject(); }
	var i int = 0;
	while i < 2 {
		if msg[1 + i] == 42 { continue; }
		i = i + 1;
		break;
	}
	if !(msg[1] > msg[2]) { reject(); }
	accept();
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(prog)
	u1, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Compile(printed)
	if err != nil {
		t.Fatalf("%v\n%s", err, printed)
	}
	if len(u1.Funcs) != len(u2.Funcs) || len(u1.Globals) != len(u2.Globals) {
		t.Fatal("round trip changed the program structure")
	}
	// The IR of the round-tripped program has the same opcode sequence.
	c1, c2 := u1.FuncNamed("main").Code, u2.FuncNamed("main").Code
	if len(c1) != len(c2) {
		t.Fatalf("instruction counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i].Op != c2[i].Op {
			t.Fatalf("instr %d: %v vs %v", i, c1[i].Op, c2[i].Op)
		}
	}
}

func TestPrintRendersAllForms(t *testing.T) {
	prog, err := Parse(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(prog)
	for _, want := range []string{"const LIMIT = 100;", "var tbl [8]int;",
		"func helper(a int, b int) int", "arr []int", "while", "return", "else"} {
		if !strings.Contains(printed, want) {
			t.Errorf("printed program missing %q:\n%s", want, printed)
		}
	}
}
