package lang

// checker resolves identifiers, assigns local slots and verifies types.
// It annotates the AST in place (Ref and Slot fields).
type checker struct {
	consts    map[string]int64
	globals   map[string]int
	globalTyp []Type
	funcs     map[string]int
	prog      *Program
}

// Check resolves and type-checks a parsed program. On success the AST is
// annotated and ready for IR compilation.
func Check(prog *Program) error {
	c := &checker{
		consts:  map[string]int64{},
		globals: map[string]int{},
		funcs:   map[string]int{},
		prog:    prog,
	}
	for _, d := range prog.Consts {
		if _, dup := c.consts[d.Name]; dup {
			return errorf(d.Pos, "duplicate const %s", d.Name)
		}
		c.consts[d.Name] = d.Val
	}
	for i, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return errorf(g.Pos, "duplicate global %s", g.Name)
		}
		if _, clash := c.consts[g.Name]; clash {
			return errorf(g.Pos, "global %s shadows a const", g.Name)
		}
		if g.Type.Kind == TypeArray && g.Type.Len <= 0 {
			return errorf(g.Pos, "global array %s needs a positive length", g.Name)
		}
		c.globals[g.Name] = i
		c.globalTyp = append(c.globalTyp, g.Type)
		if g.Init != nil {
			if g.Type.Kind == TypeArray {
				return errorf(g.Pos, "global array %s cannot have an initialiser", g.Name)
			}
			if _, err := c.constEval(g.Init); err != nil {
				return err
			}
		}
	}
	for i, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return errorf(f.Pos, "duplicate function %s", f.Name)
		}
		if _, isB := builtinNames[f.Name]; isB {
			return errorf(f.Pos, "function %s shadows a builtin", f.Name)
		}
		c.funcs[f.Name] = i
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// constEval folds a compile-time constant scalar expression.
func (c *checker) constEval(e Expr) (int64, error) {
	switch e := e.(type) {
	case *IntLit:
		return e.Val, nil
	case *BoolLit:
		if e.Val {
			return 1, nil
		}
		return 0, nil
	case *VarExpr:
		if v, ok := c.consts[e.Name]; ok {
			return v, nil
		}
		return 0, errorf(e.Pos_, "%s is not a constant", e.Name)
	case *UnaryExpr:
		v, err := c.constEval(e.X)
		if err != nil {
			return 0, err
		}
		if e.Op == TMinus {
			return -v, nil
		}
		return 0, errorf(e.Pos_, "operator %s not allowed in constant expression", e.Op)
	case *BinaryExpr:
		x, err := c.constEval(e.X)
		if err != nil {
			return 0, err
		}
		y, err := c.constEval(e.Y)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case TPlus:
			return x + y, nil
		case TMinus:
			return x - y, nil
		case TStar:
			return x * y, nil
		}
		return 0, errorf(e.Pos_, "operator %s not allowed in constant expression", e.Op)
	}
	return 0, errorf(e.pos(), "not a constant expression")
}

// funcScope tracks local declarations during the walk of one function.
type funcScope struct {
	fn     *FuncDecl
	scopes []map[string]localInfo
	nSlots int
}

type localInfo struct {
	slot int
	typ  Type
}

func (fs *funcScope) push() { fs.scopes = append(fs.scopes, map[string]localInfo{}) }
func (fs *funcScope) pop()  { fs.scopes = fs.scopes[:len(fs.scopes)-1] }

func (fs *funcScope) declare(name string, typ Type) (int, bool) {
	top := fs.scopes[len(fs.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, false
	}
	slot := fs.nSlots
	fs.nSlots++
	top[name] = localInfo{slot: slot, typ: typ}
	return slot, true
}

func (fs *funcScope) lookup(name string) (localInfo, bool) {
	for i := len(fs.scopes) - 1; i >= 0; i-- {
		if li, ok := fs.scopes[i][name]; ok {
			return li, true
		}
	}
	return localInfo{}, false
}

func (c *checker) checkFunc(f *FuncDecl) error {
	fs := &funcScope{fn: f}
	fs.push()
	for _, p := range f.Params {
		if p.Type.Kind == TypeArray && p.Type.Len > 0 {
			return errorf(p.Pos, "array parameters must be unsized ([]int)")
		}
		if _, ok := fs.declare(p.Name, p.Type); !ok {
			return errorf(p.Pos, "duplicate parameter %s", p.Name)
		}
	}
	if err := c.checkStmts(fs, f.Body, 0); err != nil {
		return err
	}
	fs.pop()
	f.NumSlots = fs.nSlots
	return nil
}

func (c *checker) checkStmts(fs *funcScope, stmts []Stmt, loopDepth int) error {
	fs.push()
	defer fs.pop()
	for _, s := range stmts {
		if err := c.checkStmt(fs, s, loopDepth); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(fs *funcScope, s Stmt, loopDepth int) error {
	switch s := s.(type) {
	case *DeclStmt:
		if s.Type.Kind == TypeArray {
			if s.Type.Len <= 0 {
				return errorf(s.Pos_, "local array %s needs a positive length", s.Name)
			}
			if s.Init != nil {
				return errorf(s.Pos_, "array %s cannot have an initialiser", s.Name)
			}
		}
		if s.Init != nil {
			t, err := c.checkExpr(fs, s.Init, true)
			if err != nil {
				return err
			}
			if t.Kind != s.Type.Kind {
				return errorf(s.Pos_, "cannot initialise %s %s with %s", s.Type, s.Name, t)
			}
		}
		slot, ok := fs.declare(s.Name, s.Type)
		if !ok {
			return errorf(s.Pos_, "duplicate variable %s", s.Name)
		}
		s.Slot = slot
		return nil

	case *AssignStmt:
		ref, typ, err := c.resolveVar(fs, s.Name, s.Pos_)
		if err != nil {
			return err
		}
		if ref.Kind == RefConst {
			return errorf(s.Pos_, "cannot assign to constant %s", s.Name)
		}
		s.Ref = ref
		if s.Index != nil {
			if typ.Kind != TypeArray {
				return errorf(s.Pos_, "%s is not an array", s.Name)
			}
			it, err := c.checkExpr(fs, s.Index, false)
			if err != nil {
				return err
			}
			if it.Kind != TypeInt {
				return errorf(s.Pos_, "array index must be int")
			}
			vt, err := c.checkExpr(fs, s.Value, false)
			if err != nil {
				return err
			}
			if vt.Kind != TypeInt {
				return errorf(s.Pos_, "array element must be int")
			}
			return nil
		}
		if typ.Kind == TypeArray {
			return errorf(s.Pos_, "cannot assign whole array %s", s.Name)
		}
		vt, err := c.checkExpr(fs, s.Value, true)
		if err != nil {
			return err
		}
		if vt.Kind != typ.Kind {
			return errorf(s.Pos_, "cannot assign %s to %s %s", vt, typ, s.Name)
		}
		return nil

	case *IfStmt:
		t, err := c.checkExpr(fs, s.Cond, false)
		if err != nil {
			return err
		}
		if t.Kind != TypeBool {
			return errorf(s.Pos_, "if condition must be bool, got %s", t)
		}
		if err := c.checkStmts(fs, s.Then, loopDepth); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmts(fs, s.Else, loopDepth)
		}
		return nil

	case *WhileStmt:
		t, err := c.checkExpr(fs, s.Cond, false)
		if err != nil {
			return err
		}
		if t.Kind != TypeBool {
			return errorf(s.Pos_, "while condition must be bool, got %s", t)
		}
		return c.checkStmts(fs, s.Body, loopDepth+1)

	case *ReturnStmt:
		if s.Value == nil {
			if fs.fn.Ret.Kind != TypeVoid {
				return errorf(s.Pos_, "function %s must return %s", fs.fn.Name, fs.fn.Ret)
			}
			return nil
		}
		if fs.fn.Ret.Kind == TypeVoid {
			return errorf(s.Pos_, "function %s returns no value", fs.fn.Name)
		}
		t, err := c.checkExpr(fs, s.Value, true)
		if err != nil {
			return err
		}
		if t.Kind != fs.fn.Ret.Kind {
			return errorf(s.Pos_, "return type mismatch: got %s, want %s", t, fs.fn.Ret)
		}
		return nil

	case *BreakStmt:
		if loopDepth == 0 {
			return errorf(s.Pos_, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if loopDepth == 0 {
			return errorf(s.Pos_, "continue outside loop")
		}
		return nil

	case *ExprStmt:
		_, err := c.checkCall(fs, s.Call, true)
		return err
	}
	return errorf(s.stmtPos(), "unhandled statement")
}

func (c *checker) resolveVar(fs *funcScope, name string, pos Pos) (Ref, Type, error) {
	if li, ok := fs.lookup(name); ok {
		return Ref{Kind: RefLocal, Idx: li.slot}, li.typ, nil
	}
	if gi, ok := c.globals[name]; ok {
		return Ref{Kind: RefGlobal, Idx: gi}, c.globalTyp[gi], nil
	}
	if v, ok := c.consts[name]; ok {
		return Ref{Kind: RefConst, Val: v}, Type{Kind: TypeInt}, nil
	}
	return Ref{}, Type{}, errorf(pos, "undefined: %s", name)
}

// checkExpr verifies and annotates an expression. allowUserCall permits a
// user-function call only when the expression IS the call (statement RHS);
// nested user calls would fork inside expression evaluation and are
// rejected, matching the engine's statement-level forking model.
func (c *checker) checkExpr(fs *funcScope, e Expr, allowUserCall bool) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return Type{Kind: TypeInt}, nil
	case *BoolLit:
		return Type{Kind: TypeBool}, nil
	case *VarExpr:
		ref, typ, err := c.resolveVar(fs, e.Name, e.Pos_)
		if err != nil {
			return Type{}, err
		}
		e.Ref = ref
		return typ, nil
	case *IndexExpr:
		ref, typ, err := c.resolveVar(fs, e.Name, e.Pos_)
		if err != nil {
			return Type{}, err
		}
		if typ.Kind != TypeArray {
			return Type{}, errorf(e.Pos_, "%s is not an array", e.Name)
		}
		e.Ref = ref
		it, err := c.checkExpr(fs, e.Index, false)
		if err != nil {
			return Type{}, err
		}
		if it.Kind != TypeInt {
			return Type{}, errorf(e.Pos_, "array index must be int")
		}
		return Type{Kind: TypeInt}, nil
	case *UnaryExpr:
		t, err := c.checkExpr(fs, e.X, false)
		if err != nil {
			return Type{}, err
		}
		switch e.Op {
		case TMinus:
			if t.Kind != TypeInt {
				return Type{}, errorf(e.Pos_, "unary - needs int")
			}
			return Type{Kind: TypeInt}, nil
		case TNot:
			if t.Kind != TypeBool {
				return Type{}, errorf(e.Pos_, "! needs bool")
			}
			return Type{Kind: TypeBool}, nil
		}
		return Type{}, errorf(e.Pos_, "bad unary operator")
	case *BinaryExpr:
		xt, err := c.checkExpr(fs, e.X, false)
		if err != nil {
			return Type{}, err
		}
		yt, err := c.checkExpr(fs, e.Y, false)
		if err != nil {
			return Type{}, err
		}
		switch e.Op {
		case TPlus, TMinus, TStar, TSlash, TPercent:
			if xt.Kind != TypeInt || yt.Kind != TypeInt {
				return Type{}, errorf(e.Pos_, "%s needs int operands", e.Op)
			}
			return Type{Kind: TypeInt}, nil
		case TEq, TNe, TLt, TLe, TGt, TGe:
			if xt.Kind != TypeInt || yt.Kind != TypeInt {
				return Type{}, errorf(e.Pos_, "%s needs int operands", e.Op)
			}
			return Type{Kind: TypeBool}, nil
		case TAnd, TOr:
			if xt.Kind != TypeBool || yt.Kind != TypeBool {
				return Type{}, errorf(e.Pos_, "%s needs bool operands", e.Op)
			}
			return Type{Kind: TypeBool}, nil
		}
		return Type{}, errorf(e.Pos_, "bad binary operator")
	case *CallExpr:
		return c.checkCall(fs, e, allowUserCall)
	}
	return Type{}, errorf(e.pos(), "unhandled expression")
}

func (c *checker) checkCall(fs *funcScope, call *CallExpr, statementPosition bool) (Type, error) {
	if b, ok := builtinNames[call.Name]; ok {
		call.Builtin = b
		return c.checkBuiltin(fs, call, statementPosition)
	}
	fi, ok := c.funcs[call.Name]
	if !ok {
		return Type{}, errorf(call.Pos_, "undefined function %s", call.Name)
	}
	if !statementPosition {
		return Type{}, errorf(call.Pos_, "user function call %s not allowed inside an expression (assign it to a variable first)", call.Name)
	}
	call.FuncIdx = fi
	fn := c.prog.Funcs[fi]
	if len(call.Args) != len(fn.Params) {
		return Type{}, errorf(call.Pos_, "%s expects %d arguments, got %d", call.Name, len(fn.Params), len(call.Args))
	}
	for i, a := range call.Args {
		at, err := c.checkExpr(fs, a, false)
		if err != nil {
			return Type{}, err
		}
		pt := fn.Params[i].Type
		if pt.Kind == TypeArray {
			if at.Kind != TypeArray {
				return Type{}, errorf(call.Pos_, "argument %d of %s must be an array", i+1, call.Name)
			}
			if _, isVar := a.(*VarExpr); !isVar {
				return Type{}, errorf(call.Pos_, "argument %d of %s must be an array variable", i+1, call.Name)
			}
			continue
		}
		if at.Kind != pt.Kind {
			return Type{}, errorf(call.Pos_, "argument %d of %s: got %s, want %s", i+1, call.Name, at, pt)
		}
	}
	return fn.Ret, nil
}

func (c *checker) checkBuiltin(fs *funcScope, call *CallExpr, statementPosition bool) (Type, error) {
	b := call.Builtin
	if !b.pure() && !statementPosition {
		return Type{}, errorf(call.Pos_, "%s() only allowed in statement position", call.Name)
	}
	needArgs := func(n int) error {
		if len(call.Args) != n {
			return errorf(call.Pos_, "%s expects %d argument(s), got %d", call.Name, n, len(call.Args))
		}
		return nil
	}
	arrayArg := func(i int) error {
		ve, ok := call.Args[i].(*VarExpr)
		if !ok {
			return errorf(call.Pos_, "%s expects an array variable", call.Name)
		}
		t, err := c.checkExpr(fs, ve, false)
		if err != nil {
			return err
		}
		if t.Kind != TypeArray {
			return errorf(call.Pos_, "%s expects an array, got %s", call.Name, t)
		}
		return nil
	}
	switch b {
	case BRecv, BSend:
		if err := needArgs(1); err != nil {
			return Type{}, err
		}
		if err := arrayArg(0); err != nil {
			return Type{}, err
		}
		return Type{Kind: TypeVoid}, nil
	case BInput, BSymbolic:
		if err := needArgs(0); err != nil {
			return Type{}, err
		}
		return Type{Kind: TypeInt}, nil
	case BAssume:
		if err := needArgs(1); err != nil {
			return Type{}, err
		}
		t, err := c.checkExpr(fs, call.Args[0], false)
		if err != nil {
			return Type{}, err
		}
		if t.Kind != TypeBool {
			return Type{}, errorf(call.Pos_, "assume expects a bool")
		}
		return Type{Kind: TypeVoid}, nil
	case BAccept, BReject, BExit:
		if err := needArgs(0); err != nil {
			return Type{}, err
		}
		return Type{Kind: TypeVoid}, nil
	case BLen:
		if err := needArgs(1); err != nil {
			return Type{}, err
		}
		if err := arrayArg(0); err != nil {
			return Type{}, err
		}
		return Type{Kind: TypeInt}, nil
	}
	return Type{}, errorf(call.Pos_, "unknown builtin")
}
