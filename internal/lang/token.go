// Package lang implements NL ("node language"), the small imperative
// language in which the distributed-system node models analysed by Achilles
// are written.
//
// NL plays the role that x86 binaries played in the paper: client and server
// programs are written once in NL and then executed either symbolically (by
// internal/symexec, to extract message grammars) or concretely (by the same
// engine, for fuzzing and Trojan-injection oracles). The language is a
// C-like subset — integers, booleans, fixed-size integer arrays, functions,
// if/while control flow — plus the intrinsics that model a node's
// environment: recv, send, input, symbolic, assume, accept, reject, exit.
//
// The package provides the lexer, parser, type checker and a compiler to a
// flat jump-based IR that the execution engine interprets. LANGUAGE.md at
// the repository root is the complete language reference; its worked
// examples are compiled by this package's tests so the reference cannot
// drift from the implementation.
package lang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TEOF TokKind = iota
	TIdent
	TInt    // integer literal
	TString // string literal (used by char-array initialisers)

	// Keywords
	TKwConst
	TKwVar
	TKwFunc
	TKwIf
	TKwElse
	TKwWhile
	TKwReturn
	TKwBreak
	TKwContinue
	TKwTrue
	TKwFalse
	TKwInt
	TKwBool

	// Punctuation and operators
	TLParen
	TRParen
	TLBrace
	TRBrace
	TLBracket
	TRBracket
	TComma
	TSemi
	TAssign // =
	TPlus
	TMinus
	TStar
	TSlash
	TPercent
	TEq  // ==
	TNe  // !=
	TLt  // <
	TLe  // <=
	TGt  // >
	TGe  // >=
	TAnd // &&
	TOr  // ||
	TNot // !
)

var tokNames = map[TokKind]string{
	TEOF: "EOF", TIdent: "identifier", TInt: "int literal", TString: "string literal",
	TKwConst: "const", TKwVar: "var", TKwFunc: "func", TKwIf: "if", TKwElse: "else",
	TKwWhile: "while", TKwReturn: "return", TKwBreak: "break", TKwContinue: "continue",
	TKwTrue: "true", TKwFalse: "false", TKwInt: "int", TKwBool: "bool",
	TLParen: "(", TRParen: ")", TLBrace: "{", TRBrace: "}", TLBracket: "[", TRBracket: "]",
	TComma: ",", TSemi: ";", TAssign: "=",
	TPlus: "+", TMinus: "-", TStar: "*", TSlash: "/", TPercent: "%",
	TEq: "==", TNe: "!=", TLt: "<", TLe: "<=", TGt: ">", TGe: ">=",
	TAnd: "&&", TOr: "||", TNot: "!",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", k)
}

var keywords = map[string]TokKind{
	"const": TKwConst, "var": TKwVar, "func": TKwFunc, "if": TKwIf, "else": TKwElse,
	"while": TKwWhile, "return": TKwReturn, "break": TKwBreak, "continue": TKwContinue,
	"true": TKwTrue, "false": TKwFalse, "int": TKwInt, "bool": TKwBool,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier text or literal spelling
	Val  int64  // value for TInt
	Pos  Pos
}

// Error is a lexing, parsing or type error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errorf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer converts source text into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) nextByte() byte {
	b := lx.src[lx.off]
	lx.off++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
func isAlpha(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

// next returns the next token.
func (lx *lexer) next() (Token, error) {
	for lx.off < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.nextByte()
		case b == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.nextByte()
			}
		default:
			goto content
		}
	}
content:
	pos := Pos{lx.line, lx.col}
	if lx.off >= len(lx.src) {
		return Token{Kind: TEOF, Pos: pos}, nil
	}
	b := lx.nextByte()
	switch {
	case isDigit(b):
		v := int64(b - '0')
		start := lx.off - 1
		for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
			v = v*10 + int64(lx.nextByte()-'0')
		}
		return Token{Kind: TInt, Val: v, Text: lx.src[start:lx.off], Pos: pos}, nil
	case isAlpha(b):
		start := lx.off - 1
		for lx.off < len(lx.src) && (isAlpha(lx.peekByte()) || isDigit(lx.peekByte())) {
			lx.nextByte()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TIdent, Text: text, Pos: pos}, nil
	case b == '\'':
		// Character literal: evaluates to its ASCII code.
		if lx.off >= len(lx.src) {
			return Token{}, errorf(pos, "unterminated character literal")
		}
		c := lx.nextByte()
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, errorf(pos, "unterminated escape")
			}
			switch e := lx.nextByte(); e {
			case 'n':
				c = '\n'
			case 't':
				c = '\t'
			case '0':
				c = 0
			case '\\':
				c = '\\'
			case '\'':
				c = '\''
			default:
				return Token{}, errorf(pos, "unknown escape \\%c", e)
			}
		}
		if lx.off >= len(lx.src) || lx.nextByte() != '\'' {
			return Token{}, errorf(pos, "unterminated character literal")
		}
		return Token{Kind: TInt, Val: int64(c), Text: string(c), Pos: pos}, nil
	}
	two := func(second byte, yes, no TokKind) (Token, error) {
		if lx.peekByte() == second {
			lx.nextByte()
			return Token{Kind: yes, Pos: pos}, nil
		}
		return Token{Kind: no, Pos: pos}, nil
	}
	switch b {
	case '(':
		return Token{Kind: TLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TSemi, Pos: pos}, nil
	case '+':
		return Token{Kind: TPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TPercent, Pos: pos}, nil
	case '=':
		return two('=', TEq, TAssign)
	case '!':
		return two('=', TNe, TNot)
	case '<':
		return two('=', TLe, TLt)
	case '>':
		return two('=', TGe, TGt)
	case '&':
		if lx.peekByte() == '&' {
			lx.nextByte()
			return Token{Kind: TAnd, Pos: pos}, nil
		}
		return Token{}, errorf(pos, "unexpected '&'")
	case '|':
		if lx.peekByte() == '|' {
			lx.nextByte()
			return Token{Kind: TOr, Pos: pos}, nil
		}
		return Token{}, errorf(pos, "unexpected '|'")
	}
	return Token{}, errorf(pos, "unexpected character %q", b)
}

// Lex tokenises src completely (used by tests).
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TEOF {
			return out, nil
		}
	}
}
