package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a parsed program back to NL source. The output parses to an
// equivalent program (checked by the round-trip property test), which makes
// generated node models inspectable and diffable.
func Print(p *Program) string {
	var b strings.Builder
	for _, c := range p.Consts {
		fmt.Fprintf(&b, "const %s = %d;\n", c.Name, c.Val)
	}
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "var %s %s", g.Name, typeStr(g.Type))
		if g.Init != nil {
			fmt.Fprintf(&b, " = %s", exprStr(g.Init))
		}
		b.WriteString(";\n")
	}
	for _, f := range p.Funcs {
		b.WriteString("\n")
		fmt.Fprintf(&b, "func %s(", f.Name)
		for i, prm := range f.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", prm.Name, typeStr(prm.Type))
		}
		b.WriteString(")")
		if f.Ret.Kind != TypeVoid {
			b.WriteString(" " + typeStr(f.Ret))
		}
		b.WriteString(" {\n")
		printStmts(&b, f.Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func typeStr(t Type) string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	case TypeArray:
		if t.Len < 0 {
			return "[]int"
		}
		return "[" + strconv.Itoa(t.Len) + "]int"
	}
	return "void"
}

func printStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("\t", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *DeclStmt:
			fmt.Fprintf(b, "%svar %s %s", ind, s.Name, typeStr(s.Type))
			if s.Init != nil {
				fmt.Fprintf(b, " = %s", exprStr(s.Init))
			}
			b.WriteString(";\n")
		case *AssignStmt:
			if s.Index != nil {
				fmt.Fprintf(b, "%s%s[%s] = %s;\n", ind, s.Name, exprStr(s.Index), exprStr(s.Value))
			} else {
				fmt.Fprintf(b, "%s%s = %s;\n", ind, s.Name, exprStr(s.Value))
			}
		case *IfStmt:
			fmt.Fprintf(b, "%sif %s {\n", ind, exprStr(s.Cond))
			printStmts(b, s.Then, depth+1)
			if s.Else != nil {
				fmt.Fprintf(b, "%s} else {\n", ind)
				printStmts(b, s.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *WhileStmt:
			fmt.Fprintf(b, "%swhile %s {\n", ind, exprStr(s.Cond))
			printStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *ReturnStmt:
			if s.Value != nil {
				fmt.Fprintf(b, "%sreturn %s;\n", ind, exprStr(s.Value))
			} else {
				fmt.Fprintf(b, "%sreturn;\n", ind)
			}
		case *BreakStmt:
			fmt.Fprintf(b, "%sbreak;\n", ind)
		case *ContinueStmt:
			fmt.Fprintf(b, "%scontinue;\n", ind)
		case *ExprStmt:
			fmt.Fprintf(b, "%s%s;\n", ind, exprStr(s.Call))
		}
	}
}

// ExprString renders one expression in the same canonical form Print uses —
// fully parenthesised binary operations, so the text re-parses to an
// equivalent tree. Tooling (mutation site descriptions, diagnostics) uses it
// to show sub-expressions without printing the whole program.
func ExprString(e Expr) string { return exprStr(e) }

// exprStr renders an expression with explicit parentheses around every
// binary operation, which sidesteps precedence subtleties and guarantees
// re-parse equivalence.
func exprStr(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return strconv.FormatInt(e.Val, 10)
	case *BoolLit:
		if e.Val {
			return "true"
		}
		return "false"
	case *VarExpr:
		return e.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", e.Name, exprStr(e.Index))
	case *UnaryExpr:
		op := "-"
		if e.Op == TNot {
			op = "!"
		}
		return fmt.Sprintf("%s(%s)", op, exprStr(e.X))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", exprStr(e.X), e.Op, exprStr(e.Y))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprStr(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	}
	return "?"
}
