package lang

// TypeKind classifies NL types.
type TypeKind uint8

// NL types: 64-bit integers, booleans, and fixed-size integer arrays.
// Function parameters may use unsized arrays ([]int), which accept any array
// argument by reference.
const (
	TypeInt TypeKind = iota
	TypeBool
	TypeArray
	TypeVoid // function "return type" when absent
)

// Type is an NL type. Len is the array length; -1 for unsized parameter
// arrays.
type Type struct {
	Kind TypeKind
	Len  int
}

func (t Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	case TypeVoid:
		return "void"
	case TypeArray:
		if t.Len < 0 {
			return "[]int"
		}
		return "[n]int"
	}
	return "?"
}

// IsScalar reports whether t is int or bool.
func (t Type) IsScalar() bool { return t.Kind == TypeInt || t.Kind == TypeBool }

// RefKind classifies what an identifier resolved to.
type RefKind uint8

// Identifier resolution targets.
const (
	RefNone   RefKind = iota
	RefLocal          // function local or parameter: slot index
	RefGlobal         // module global: global index
	RefConst          // named constant: folded value
)

// Ref is the resolved target of an identifier, filled by the type checker.
type Ref struct {
	Kind RefKind
	Idx  int   // slot or global index
	Val  int64 // constant value for RefConst
}

// Expr is an NL expression AST node.
type Expr interface{ pos() Pos }

// IntLit is an integer literal.
type IntLit struct {
	Pos_ Pos
	Val  int64
}

// BoolLit is true/false.
type BoolLit struct {
	Pos_ Pos
	Val  bool
}

// VarExpr is an identifier reference.
type VarExpr struct {
	Pos_ Pos
	Name string
	Ref  Ref // filled by the checker
}

// IndexExpr is arr[idx].
type IndexExpr struct {
	Pos_  Pos
	Name  string
	Ref   Ref // the array variable
	Index Expr
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Pos_ Pos
	Op   TokKind // TMinus or TNot
	X    Expr
}

// BinaryExpr is x OP y.
type BinaryExpr struct {
	Pos_ Pos
	Op   TokKind
	X, Y Expr
}

// CallExpr is a user-function or builtin call. User calls are only permitted
// in statement position or as the entire right-hand side of an assignment;
// pure builtins (input, symbolic, len) may appear anywhere in expressions.
type CallExpr struct {
	Pos_    Pos
	Name    string
	Args    []Expr
	Builtin Builtin // BNone for user calls
	FuncIdx int     // resolved user function index
}

func (e *IntLit) pos() Pos     { return e.Pos_ }
func (e *BoolLit) pos() Pos    { return e.Pos_ }
func (e *VarExpr) pos() Pos    { return e.Pos_ }
func (e *IndexExpr) pos() Pos  { return e.Pos_ }
func (e *UnaryExpr) pos() Pos  { return e.Pos_ }
func (e *BinaryExpr) pos() Pos { return e.Pos_ }
func (e *CallExpr) pos() Pos   { return e.Pos_ }

// Builtin identifies NL intrinsic functions.
type Builtin uint8

// The NL intrinsics. They model the node's environment, mirroring the
// paper's system-call interception (§5.1) and annotations (§5.2):
//
//	recv(arr)      fill arr with a fresh unconstrained symbolic message
//	send(arr)      emit arr as a message (client predicate capture point)
//	input()        fresh symbolic "local input" (intercepted read)
//	symbolic()     alias of input(), used for over-approximate local state
//	assume(cond)   constrain the current path (drop_path when infeasible)
//	accept()       mark_accept: terminate the path as accepting
//	reject()       mark_reject: terminate the path as rejecting
//	exit()         terminate the path without a verdict
//	len(arr)       the (constant) array length
const (
	BNone Builtin = iota
	BRecv
	BSend
	BInput
	BSymbolic
	BAssume
	BAccept
	BReject
	BExit
	BLen
)

var builtinNames = map[string]Builtin{
	"recv": BRecv, "send": BSend, "input": BInput, "symbolic": BSymbolic,
	"assume": BAssume, "accept": BAccept, "reject": BReject, "exit": BExit,
	"len": BLen,
}

// pure builtins may be used inside arbitrary expressions.
func (b Builtin) pure() bool { return b == BInput || b == BSymbolic || b == BLen }

// Stmt is an NL statement AST node.
type Stmt interface{ stmtPos() Pos }

// DeclStmt declares a local variable with an optional initialiser.
type DeclStmt struct {
	Pos_ Pos
	Name string
	Type Type
	Init Expr // nil for zero value
	Slot int  // filled by the checker
}

// AssignStmt assigns to a variable or array element.
type AssignStmt struct {
	Pos_  Pos
	Name  string
	Ref   Ref
	Index Expr // nil for scalar assignment
	Value Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos_ Pos
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos_ Pos
	Cond Expr
	Body []Stmt
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	Pos_  Pos
	Value Expr // nil for void
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos_ Pos }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Pos_ Pos }

// ExprStmt is a call in statement position.
type ExprStmt struct {
	Pos_ Pos
	Call *CallExpr
}

func (s *DeclStmt) stmtPos() Pos     { return s.Pos_ }
func (s *AssignStmt) stmtPos() Pos   { return s.Pos_ }
func (s *IfStmt) stmtPos() Pos       { return s.Pos_ }
func (s *WhileStmt) stmtPos() Pos    { return s.Pos_ }
func (s *ReturnStmt) stmtPos() Pos   { return s.Pos_ }
func (s *BreakStmt) stmtPos() Pos    { return s.Pos_ }
func (s *ContinueStmt) stmtPos() Pos { return s.Pos_ }
func (s *ExprStmt) stmtPos() Pos     { return s.Pos_ }

// ConstDecl is a named integer constant.
type ConstDecl struct {
	Pos  Pos
	Name string
	Val  int64
}

// GlobalDecl is a module-level variable.
type GlobalDecl struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr // optional scalar initialiser (constant expression)
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos      Pos
	Name     string
	Params   []Param
	Ret      Type // TypeVoid when absent
	Body     []Stmt
	NumSlots int // local slot count, filled by the checker
}

// Param is one function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type Type
}

// Program is a parsed NL module.
type Program struct {
	Consts  []*ConstDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}
