package lang

import (
	"strings"
	"testing"
)

const walkSrc = `
const N = 3;
var msg [2]int;

func main() {
	recv(msg);
	if msg[0] == N && msg[1] < 4 {
		reject();
	}
	while msg[1] > 0 {
		msg[1] = msg[1] - 1;
	}
	accept();
}`

func TestVisitExprsOrderAndReplace(t *testing.T) {
	prog, err := Parse(walkSrc)
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	VisitExprs(prog, func(slot *Expr) {
		seen = append(seen, ExprString(*slot))
	})
	if len(seen) == 0 {
		t.Fatal("VisitExprs visited nothing")
	}
	// Children before parent: the conjunction's operands precede it.
	conj := indexOf(t, seen, "((msg[0] == N) && (msg[1] < 4))")
	left := indexOf(t, seen, "(msg[0] == N)")
	if left > conj {
		t.Errorf("child visited after parent: %v", seen)
	}
	// Two parses visit identical slots in identical order — the
	// determinism the mutation engine's stable site indices rely on.
	prog2, err := Parse(walkSrc)
	if err != nil {
		t.Fatal(err)
	}
	var seen2 []string
	VisitExprs(prog2, func(slot *Expr) {
		seen2 = append(seen2, ExprString(*slot))
	})
	if strings.Join(seen, "\n") != strings.Join(seen2, "\n") {
		t.Errorf("traversal order not deterministic:\n%v\nvs\n%v", seen, seen2)
	}

	// Replacement through the slot pointer lands in the printed output.
	VisitExprs(prog, func(slot *Expr) {
		if lit, ok := (*slot).(*IntLit); ok && lit.Val == 4 {
			*slot = &IntLit{Pos_: lit.Pos_, Val: 5}
		}
	})
	out := Print(prog)
	if !strings.Contains(out, "5") || strings.Contains(out, "< 4") {
		t.Errorf("slot replacement missing from output:\n%s", out)
	}
	if _, err := Compile(out); err != nil {
		t.Errorf("mutated program does not compile: %v", err)
	}
}

func TestVisitStmtLists(t *testing.T) {
	prog, err := Parse(walkSrc)
	if err != nil {
		t.Fatal(err)
	}
	var lens []int
	VisitStmtLists(prog, func(list *[]Stmt) {
		lens = append(lens, len(*list))
	})
	// main body (4 stmts), if body (1), while body (1).
	if len(lens) != 3 || lens[0] != 4 {
		t.Fatalf("visited %v, want [4 1 1]", lens)
	}

	// Deleting a statement through the list pointer sticks.
	VisitStmtLists(prog, func(list *[]Stmt) {
		for i, s := range *list {
			if ifs, ok := s.(*IfStmt); ok && ifs.Else == nil {
				*list = append((*list)[:i], (*list)[i+1:]...)
				return
			}
		}
	})
	out := Print(prog)
	if strings.Contains(out, "reject") {
		t.Errorf("deleted if statement still printed:\n%s", out)
	}
	if _, err := Compile(out); err != nil {
		t.Errorf("program after deletion does not compile: %v", err)
	}
}

func indexOf(t *testing.T, ss []string, want string) int {
	t.Helper()
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	t.Fatalf("%q not visited; got:\n%s", want, strings.Join(ss, "\n"))
	return -1
}
