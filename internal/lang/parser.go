package lang

// parser implements a recursive-descent parser for NL.
type parser struct {
	lx   *lexer
	tok  Token
	next Token
	err  error
}

// Parse parses an NL module.
func Parse(src string) (*Program, error) {
	p := &parser{lx: newLexer(src)}
	// Prime the two-token lookahead.
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.Kind != TEOF {
		switch p.tok.Kind {
		case TKwConst:
			d, err := p.parseConst()
			if err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, d)
		case TKwVar:
			d, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, d)
		case TKwFunc:
			d, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, d)
		default:
			return nil, errorf(p.tok.Pos, "expected const, var or func, got %s", p.tok.Kind)
		}
	}
	return prog, nil
}

func (p *parser) advance() error {
	p.tok = p.next
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.next = t
	return nil
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errorf(p.tok.Pos, "expected %s, got %s", k, p.tok.Kind)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return Token{}, err
	}
	return t, nil
}

func (p *parser) accept(k TokKind) (bool, error) {
	if p.tok.Kind != k {
		return false, nil
	}
	return true, p.advance()
}

// parseConst parses: const NAME = [-]INT ;
func (p *parser) parseConst() (*ConstDecl, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TAssign); err != nil {
		return nil, err
	}
	neg := false
	if ok, err := p.accept(TMinus); err != nil {
		return nil, err
	} else if ok {
		neg = true
	}
	lit, err := p.expect(TInt)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TSemi); err != nil {
		return nil, err
	}
	v := lit.Val
	if neg {
		v = -v
	}
	return &ConstDecl{Pos: pos, Name: name.Text, Val: v}, nil
}

// parseType parses: int | bool | [INT]int | []int (unsized, params only).
func (p *parser) parseType(allowUnsized bool) (Type, error) {
	switch p.tok.Kind {
	case TKwInt:
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		return Type{Kind: TypeInt}, nil
	case TKwBool:
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		return Type{Kind: TypeBool}, nil
	case TLBracket:
		if err := p.advance(); err != nil {
			return Type{}, err
		}
		length := -1
		if p.tok.Kind == TInt {
			length = int(p.tok.Val)
			if err := p.advance(); err != nil {
				return Type{}, err
			}
		} else if !allowUnsized {
			return Type{}, errorf(p.tok.Pos, "array length required here")
		}
		if _, err := p.expect(TRBracket); err != nil {
			return Type{}, err
		}
		if _, err := p.expect(TKwInt); err != nil {
			return Type{}, err
		}
		return Type{Kind: TypeArray, Len: length}, nil
	}
	return Type{}, errorf(p.tok.Pos, "expected type, got %s", p.tok.Kind)
}

// parseGlobal parses: var NAME TYPE [= EXPR] ;
func (p *parser) parseGlobal() (*GlobalDecl, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	typ, err := p.parseType(false)
	if err != nil {
		return nil, err
	}
	var init Expr
	if ok, err := p.accept(TAssign); err != nil {
		return nil, err
	} else if ok {
		init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TSemi); err != nil {
		return nil, err
	}
	return &GlobalDecl{Pos: pos, Name: name.Text, Type: typ, Init: init}, nil
}

// parseFunc parses: func NAME ( params ) [TYPE] { stmts }
func (p *parser) parseFunc() (*FuncDecl, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TLParen); err != nil {
		return nil, err
	}
	var params []Param
	for p.tok.Kind != TRParen {
		if len(params) > 0 {
			if _, err := p.expect(TComma); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(TIdent)
		if err != nil {
			return nil, err
		}
		pt, err := p.parseType(true)
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Pos: pn.Pos, Name: pn.Text, Type: pt})
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	ret := Type{Kind: TypeVoid}
	if p.tok.Kind == TKwInt || p.tok.Kind == TKwBool {
		ret, err = p.parseType(false)
		if err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Pos: pos, Name: name.Text, Params: params, Ret: ret, Body: body}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.tok.Kind != TRBrace {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if stmts == nil {
		stmts = []Stmt{}
	}
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TKwVar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(TIdent)
		if err != nil {
			return nil, err
		}
		typ, err := p.parseType(false)
		if err != nil {
			return nil, err
		}
		var init Expr
		if ok, err := p.accept(TAssign); err != nil {
			return nil, err
		} else if ok {
			init, err = p.parseExprOrCall()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &DeclStmt{Pos_: pos, Name: name.Text, Type: typ, Init: init}, nil

	case TKwIf:
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if ok, err := p.accept(TKwElse); err != nil {
			return nil, err
		} else if ok {
			if p.tok.Kind == TKwIf {
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{inner}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Pos_: pos, Cond: cond, Then: then, Else: els}, nil

	case TKwWhile:
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos_: pos, Cond: cond, Body: body}, nil

	case TKwReturn:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var val Expr
		if p.tok.Kind != TSemi {
			var err error
			val, err = p.parseExprOrCall()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos_: pos, Value: val}, nil

	case TKwBreak:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos_: pos}, nil

	case TKwContinue:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos_: pos}, nil

	case TIdent:
		// assignment (x = e; / x[i] = e;) or call statement (f(...);)
		if p.next.Kind == TLParen {
			call, err := p.parseCall()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TSemi); err != nil {
				return nil, err
			}
			return &ExprStmt{Pos_: pos, Call: call}, nil
		}
		name, err := p.expect(TIdent)
		if err != nil {
			return nil, err
		}
		var index Expr
		if ok, err := p.accept(TLBracket); err != nil {
			return nil, err
		} else if ok {
			index, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TRBracket); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TAssign); err != nil {
			return nil, err
		}
		val, err := p.parseExprOrCall()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos_: pos, Name: name.Text, Index: index, Value: val}, nil
	}
	return nil, errorf(pos, "unexpected %s at start of statement", p.tok.Kind)
}

// parseExprOrCall parses either a plain expression or a top-level call
// (user calls are only legal at the top level of an assignment RHS).
func (p *parser) parseExprOrCall() (Expr, error) {
	return p.parseExpr()
}

// parseCall parses NAME ( args ).
func (p *parser) parseCall() (*CallExpr, error) {
	name, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TLParen); err != nil {
		return nil, err
	}
	var args []Expr
	for p.tok.Kind != TRParen {
		if len(args) > 0 {
			if _, err := p.expect(TComma); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	return &CallExpr{Pos_: name.Pos, Name: name.Text, Args: args}, nil
}

// Expression parsing with precedence climbing:
//
//	or:  ||
//	and: &&
//	cmp: == != < <= > >=
//	add: + -
//	mul: * / %
//	unary: - !
//	primary: literal, identifier, index, call, ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TOr {
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos_: pos, Op: TOr, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseAnd() (Expr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TAnd {
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos_: pos, Op: TAnd, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseCmp() (Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.tok.Kind {
	case TEq, TNe, TLt, TLe, TGt, TGe:
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Pos_: pos, Op: op, X: x, Y: y}, nil
	}
	return x, nil
}

func (p *parser) parseAdd() (Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TPlus || p.tok.Kind == TMinus {
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos_: pos, Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseMul() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TStar || p.tok.Kind == TSlash || p.tok.Kind == TPercent {
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos_: pos, Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.tok.Kind {
	case TMinus, TNot:
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos_: pos, Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TInt:
		v := p.tok.Val
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &IntLit{Pos_: pos, Val: v}, nil
	case TKwTrue:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &BoolLit{Pos_: pos, Val: true}, nil
	case TKwFalse:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &BoolLit{Pos_: pos, Val: false}, nil
	case TLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TIdent:
		if p.next.Kind == TLParen {
			return p.parseCall()
		}
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TLBracket {
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos_: pos, Name: name, Index: idx}, nil
		}
		return &VarExpr{Pos_: pos, Name: name}, nil
	}
	return nil, errorf(pos, "unexpected %s in expression", p.tok.Kind)
}
