package lang

import (
	"strings"
	"testing"
)

// FuzzParsePrintParse drives the printer/parser round-trip the mutation
// engine depends on: for any source the parser accepts, Print must render a
// program the parser accepts again, and re-printing that program must be a
// fixed point (canonical source re-parses to itself byte for byte). Check
// and Compile must never panic, whatever the input — mutated or malformed
// sources may only fail with errors.
func FuzzParsePrintParse(f *testing.F) {
	seeds := []string{
		// Canonical well-formed model exercising every statement form.
		`
const N = 3;
const NEG = -2;
var msg [4]int;
var state_x int;

func main() {
	recv(msg);
	if msg[0] == N && msg[1] < 4 {
		reject();
	}
	if msg[2] != 0 || msg[3] >= NEG {
		msg[1] = msg[1] + 1;
	} else {
		msg[1] = 0 - 1;
	}
	while msg[1] > 0 {
		msg[1] = msg[1] - 1;
	}
	helper(msg[0]);
	accept();
}

func helper(v int) {
	if v == 17 {
		exit();
	}
}`,
		// Real model sources from the registry corpus shape.
		"var msg [2]int;\nfunc main() { recv(msg); if msg[0] != 1 { reject(); } accept(); }",
		"var msg [1]int;\nfunc main() { accept(); }",
		// Malformed inputs the parser must reject without panicking.
		"func main() {",
		"var msg [0]int; func main() { accept(); }",
		"const = 1;",
		"",
		"\x00\xff",
		"func main() { if { accept(); } }",
		"var msg [2]int; func main() { msg[1 = 3; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input: the only acceptable failure mode
		}
		out1 := Print(prog)
		prog2, err := Parse(out1)
		if err != nil {
			t.Fatalf("printed program does not re-parse: %v\nsource:\n%s\nprinted:\n%s", err, src, out1)
		}
		out2 := Print(prog2)
		if out1 != out2 {
			t.Fatalf("Print is not a fixed point:\nfirst:\n%s\nsecond:\n%s", out1, out2)
		}
		// Checking may reject (undefined names, missing main, …) but must
		// never panic; a checked program must compile, and its canonical
		// print must itself check — the invariant mutant generation leans
		// on when it re-prints a mutated AST.
		if err := Check(prog2); err != nil {
			if !strings.Contains(err.Error(), ":") {
				t.Fatalf("check error without position info: %v", err)
			}
			return
		}
		if _, err := Compile(out2); err != nil {
			t.Fatalf("checked canonical program does not compile: %v\n%s", err, out2)
		}
	})
}
