package lang

// AST walking helpers for tooling that inspects or rewrites parsed
// programs — the mutation engine (internal/mutate) enumerates its candidate
// edit sites with these visitors and applies an edit by assigning through
// the visited slot.
//
// Both visitors traverse in source order, which makes site enumeration
// deterministic: two walks of equal programs visit equal slots in the same
// sequence. Visitors that rewrite must not rely on the replacement being
// re-visited — children are visited before their parent's slot, and a
// replacement subtree is not traversed.

// VisitExprs calls fn with the address of every expression slot in the
// program: global initialisers, declaration initialisers, assignment
// indices and values, if/while conditions, return values, call and
// intrinsic arguments, and every nested sub-expression. Assigning through
// the slot replaces the expression in place. The call expression of an
// expression statement is not itself a slot (a statement-position call
// cannot be replaced by a non-call expression); its arguments are visited.
func VisitExprs(p *Program, fn func(slot *Expr)) {
	for _, g := range p.Globals {
		if g.Init != nil {
			visitExpr(&g.Init, fn)
		}
	}
	for _, f := range p.Funcs {
		visitExprsInStmts(f.Body, fn)
	}
}

func visitExprsInStmts(list []Stmt, fn func(slot *Expr)) {
	for _, s := range list {
		switch s := s.(type) {
		case *DeclStmt:
			if s.Init != nil {
				visitExpr(&s.Init, fn)
			}
		case *AssignStmt:
			if s.Index != nil {
				visitExpr(&s.Index, fn)
			}
			visitExpr(&s.Value, fn)
		case *IfStmt:
			visitExpr(&s.Cond, fn)
			visitExprsInStmts(s.Then, fn)
			visitExprsInStmts(s.Else, fn)
		case *WhileStmt:
			visitExpr(&s.Cond, fn)
			visitExprsInStmts(s.Body, fn)
		case *ReturnStmt:
			if s.Value != nil {
				visitExpr(&s.Value, fn)
			}
		case *ExprStmt:
			for i := range s.Call.Args {
				visitExpr(&s.Call.Args[i], fn)
			}
		}
	}
}

func visitExpr(slot *Expr, fn func(slot *Expr)) {
	switch e := (*slot).(type) {
	case *IndexExpr:
		visitExpr(&e.Index, fn)
	case *UnaryExpr:
		visitExpr(&e.X, fn)
	case *BinaryExpr:
		visitExpr(&e.X, fn)
		visitExpr(&e.Y, fn)
	case *CallExpr:
		for i := range e.Args {
			visitExpr(&e.Args[i], fn)
		}
	}
	fn(slot)
}

// VisitStmtLists calls fn with the address of every statement list in the
// program — function bodies, if/else branches and loop bodies — outermost
// first. Assigning through the slot rewrites the list (e.g. deleting a
// statement); nested lists of the original statements are visited after fn
// returns, so a rewrite that removes a statement also prunes its subtree
// from the walk only if fn runs before the recursion observes it — fn is
// invoked on the list as it stands when visited.
func VisitStmtLists(p *Program, fn func(list *[]Stmt)) {
	for _, f := range p.Funcs {
		visitStmtList(&f.Body, fn)
	}
}

func visitStmtList(list *[]Stmt, fn func(list *[]Stmt)) {
	fn(list)
	for _, s := range *list {
		switch s := s.(type) {
		case *IfStmt:
			visitStmtList(&s.Then, fn)
			if s.Else != nil {
				visitStmtList(&s.Else, fn)
			}
		case *WhileStmt:
			visitStmtList(&s.Body, fn)
		}
	}
}
