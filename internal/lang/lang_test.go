package lang

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`func main() { var x int = 42; // comment
		x = x + 'A'; }`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{
		TKwFunc, TIdent, TLParen, TRParen, TLBrace,
		TKwVar, TIdent, TKwInt, TAssign, TInt, TSemi,
		TIdent, TAssign, TIdent, TPlus, TInt, TSemi, TRBrace, TEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, kinds[i], want[i])
		}
	}
	// 'A' lexes to 65.
	if toks[15].Val != 65 {
		t.Fatalf("char literal value = %d, want 65", toks[15].Val)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`== != <= >= < > && || ! = + - * / %`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TEq, TNe, TLe, TGe, TLt, TGt, TAnd, TOr, TNot, TAssign,
		TPlus, TMinus, TStar, TSlash, TPercent, TEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexEscapes(t *testing.T) {
	toks, err := Lex(`'\0' '\n' '\\' '\''`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 10, 92, 39}
	for i, w := range want {
		if toks[i].Val != w {
			t.Fatalf("escape %d: got %d want %d", i, toks[i].Val, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"&", "|", "@", "'a", `'\q'`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("func\n  main")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("func at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("main at %v", toks[1].Pos)
	}
}

const sampleProgram = `
const LIMIT = 100;
const NEG = -5;
var counter int;
var tbl [8]int;

func helper(a int, b int) int {
	return a * b + LIMIT;
}

func fill(arr []int, v int) {
	var i int = 0;
	while i < len(arr) {
		arr[i] = v;
		i = i + 1;
	}
}

func main() {
	var x int = input();
	if x < 0 || x >= LIMIT {
		exit();
	}
	var y int = helper(x, 2);
	fill(tbl, y);
	counter = counter + 1;
	if counter > 3 {
		accept();
	} else {
		reject();
	}
}
`

func TestParseAndCheckSample(t *testing.T) {
	prog, err := Parse(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Consts) != 2 || len(prog.Globals) != 2 || len(prog.Funcs) != 3 {
		t.Fatalf("decl counts: %d consts, %d globals, %d funcs",
			len(prog.Consts), len(prog.Globals), len(prog.Funcs))
	}
	if prog.Consts[1].Val != -5 {
		t.Fatalf("NEG = %d", prog.Consts[1].Val)
	}
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	if prog.Funcs[2].NumSlots < 2 {
		t.Fatalf("main should have >= 2 slots, got %d", prog.Funcs[2].NumSlots)
	}
}

func TestCompileSample(t *testing.T) {
	u, err := Compile(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if u.FuncNamed("main") == nil || u.FuncNamed("helper") == nil {
		t.Fatal("missing functions")
	}
	if u.FuncNamed("nosuch") != nil {
		t.Fatal("phantom function")
	}
	if u.GlobalNamed("counter") != 0 || u.GlobalNamed("tbl") != 1 || u.GlobalNamed("zzz") != -1 {
		t.Fatal("global lookup broken")
	}
	main := u.FuncNamed("main")
	if len(main.Code) == 0 || main.Code[len(main.Code)-1].Op != OpRet {
		t.Fatal("main must end with an implicit return")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func main( {}`,
		`func main() { var x int }`,         // missing semicolon
		`func main() { if x { } else }`,     // bad else
		`func main() { x = ; }`,             // missing expr
		`const X 3;`,                        // missing =
		`var g;`,                            // missing type
		`func f() { return 1 + ; }`,         // bad expr
		`garbage`,                           // bad toplevel
		`func main() { while { } }`,         // missing cond
		`func main() { var a [0 int; }`,     // bad array type
		`func f(x int, ) int { return x; }`, // trailing comma
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined-var", `func main() { x = 1; }`, "undefined"},
		{"undefined-func", `func main() { nope(); }`, "undefined function"},
		{"dup-const", "const A = 1; const A = 2; func main() {}", "duplicate const"},
		{"dup-global", "var g int; var g int; func main() {}", "duplicate global"},
		{"dup-func", "func f() {} func f() {} func main() {}", "duplicate function"},
		{"dup-param", "func f(a int, a int) {} func main() {}", "duplicate parameter"},
		{"dup-local", "func main() { var x int; var x int; }", "duplicate variable"},
		{"assign-const", "const A = 1; func main() { A = 2; }", "cannot assign to constant"},
		{"bad-cond", `func main() { if 1 { } }`, "must be bool"},
		{"bad-while", `func main() { while 0 { } }`, "must be bool"},
		{"int-plus-bool", `func main() { var x int = 1 + (2 < 3) ; }`, "needs int"},
		{"not-on-int", `func main() { var b bool = !3; }`, "needs bool"},
		{"index-nonarray", `func main() { var x int; x[0] = 1; }`, "not an array"},
		{"bool-index", `var a [3]int; func main() { a[true] = 1; }`, "index must be int"},
		{"whole-array-assign", `var a [3]int; var b [3]int; func main() { a = 1; }`, "cannot assign whole array"},
		{"break-outside", `func main() { break; }`, "break outside loop"},
		{"continue-outside", `func main() { continue; }`, "continue outside loop"},
		{"return-void-value", `func main() { return 3; }`, "returns no value"},
		{"return-missing", `func f() int { return; } func main() {}`, "must return"},
		{"arity", `func f(a int) {} func main() { f(); }`, "expects 1 argument"},
		{"arg-type", `func f(a bool) {} func main() { f(1); }`, "got int, want bool"},
		{"nested-user-call", `func f() int { return 1; } func main() { var x int = 1 + f(); }`, "not allowed inside an expression"},
		{"impure-in-expr", `func main() { var x int = 1; if x > 0 { } accept(); var y bool = true; assume(y); }`, ""},
		{"accept-in-expr", `func main() { var x int = 1 + accept(); }`, "statement position"},
		{"assume-non-bool", `func main() { assume(1); }`, "assume expects a bool"},
		{"recv-non-array", `func main() { var x int; recv(x); }`, "expects an array"},
		{"len-non-array", `func main() { var x int; var y int = len(x); }`, "expects an array"},
		{"sized-param", `func f(a [3]int) {} func main() {}`, "must be unsized"},
		{"global-array-init", `var a [3]int = 5; func main() {}`, "cannot have an initialiser"},
		{"shadow-builtin", `func recv() {} func main() {}`, "shadows a builtin"},
		{"array-init", `func main() { var a [3]int = 1; }`, "cannot have an initialiser"},
		{"global-nonconst-init", `var g int = input(); func main() {}`, "not a constant"},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			prog, err := Parse(cse.src)
			if err != nil {
				t.Fatalf("parse failed: %v", err)
			}
			err = Check(prog)
			if cse.wantSub == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q", cse.wantSub)
			}
			if !strings.Contains(err.Error(), cse.wantSub) {
				t.Fatalf("error %q does not contain %q", err.Error(), cse.wantSub)
			}
		})
	}
}

func TestShadowingInNestedBlocks(t *testing.T) {
	src := `
func main() {
	var x int = 1;
	if x > 0 {
		var x int = 2;
		x = 3;
	}
	x = 4;
}`
	if _, err := Compile(src); err != nil {
		t.Fatalf("shadowing in nested block should be legal: %v", err)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
func main() {
	var x int = input();
	if x == 1 {
		accept();
	} else if x == 2 {
		reject();
	} else {
		exit();
	}
}`
	u, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	nCJmp := 0
	for _, in := range u.FuncNamed("main").Code {
		if in.Op == OpCJmp {
			nCJmp++
		}
	}
	if nCJmp != 2 {
		t.Fatalf("want 2 conditional jumps, got %d", nCJmp)
	}
}

func TestWhileLoweringTargets(t *testing.T) {
	src := `
func main() {
	var i int = 0;
	while i < 10 {
		if i == 5 {
			break;
		}
		if i == 3 {
			continue;
		}
		i = i + 1;
	}
	reject();
}`
	u, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	code := u.FuncNamed("main").Code
	// All jump targets must be within bounds.
	for i, in := range code {
		switch in.Op {
		case OpJmp:
			if in.A < 0 || in.A > len(code) {
				t.Fatalf("instr %d: jmp target %d out of range", i, in.A)
			}
		case OpCJmp:
			if in.A < 0 || in.A > len(code) || in.B < 0 || in.B > len(code) {
				t.Fatalf("instr %d: cjmp targets %d/%d out of range", i, in.A, in.B)
			}
		}
	}
}

func TestReturnCallLowering(t *testing.T) {
	src := `
func g(a int) int { return a + 1; }
func f(x int) int { return g(x); }
func main() { var r int = f(1); r = r + 1; }`
	u, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := u.FuncNamed("f")
	// Expect OpCall followed by OpRet with retRegister.
	foundCall := false
	for i, in := range f.Code {
		if in.Op == OpCall {
			foundCall = true
			if i+1 >= len(f.Code) || f.Code[i+1].Op != OpRet {
				t.Fatal("call not followed by ret")
			}
			if _, ok := f.Code[i+1].X.(retRegister); !ok {
				t.Fatal("ret does not use the ret register")
			}
		}
	}
	if !foundCall {
		t.Fatal("no call emitted")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic on bad source")
		}
	}()
	MustCompile("not a program")
}
