package symexec

import (
	"strings"
	"testing"

	"achilles/internal/expr"
	"achilles/internal/lang"
	"achilles/internal/solver"
)

func compile(t *testing.T, src string) *lang.Unit {
	t.Helper()
	u, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	res, err := Run(compile(t, src), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStraightLineConcrete(t *testing.T) {
	res := run(t, `
var out int;
func double(x int) int { return x + x; }
func main() {
	var a int = 3;
	var b int = double(a);
	out = b * 7;
	exit();
}`, Options{})
	if len(res.States) != 1 {
		t.Fatalf("want 1 state, got %d", len(res.States))
	}
	st := res.States[0]
	if st.Status != StatusExited {
		t.Fatalf("status %v, err %v", st.Status, st.Err)
	}
	if got := st.Globals[0].Sc; !got.IsConst() || got.Val != 42 {
		t.Fatalf("out = %s, want 42", got)
	}
}

func TestReturnCall(t *testing.T) {
	res := run(t, `
var out int;
func g(a int) int { return a + 1; }
func f(x int) int { return g(x * 2); }
func main() { out = f(10); }`, Options{})
	st := res.States[0]
	if st.Status != StatusExited {
		t.Fatalf("status %v err %v", st.Status, st.Err)
	}
	if st.Globals[0].Sc.Val != 21 {
		t.Fatalf("out = %s", st.Globals[0].Sc)
	}
}

func TestWhileLoopConcrete(t *testing.T) {
	res := run(t, `
var sum int;
func main() {
	var i int = 0;
	while i < 5 {
		sum = sum + i;
		i = i + 1;
	}
}`, Options{})
	if v := res.States[0].Globals[0].Sc.Val; v != 10 {
		t.Fatalf("sum = %d, want 10", v)
	}
}

func TestBreakContinue(t *testing.T) {
	res := run(t, `
var sum int;
func main() {
	var i int = 0;
	while i < 100 {
		i = i + 1;
		if i == 3 { continue; }
		if i > 5 { break; }
		sum = sum + i;
	}
}`, Options{})
	// 1 + 2 + 4 + 5 = 12
	if v := res.States[0].Globals[0].Sc.Val; v != 12 {
		t.Fatalf("sum = %d, want 12", v)
	}
}

func TestSymbolicForking(t *testing.T) {
	res := run(t, `
func main() {
	var x int = input();
	if x > 10 {
		accept();
	} else {
		reject();
	}
}`, Options{})
	if len(res.States) != 2 {
		t.Fatalf("want 2 states, got %d", len(res.States))
	}
	var acc, rej *State
	for _, st := range res.States {
		switch st.Status {
		case StatusAccepted:
			acc = st
		case StatusRejected:
			rej = st
		}
	}
	if acc == nil || rej == nil {
		t.Fatalf("missing accept/reject states")
	}
	s := solver.Default()
	// The accepting path must force x > 10.
	if r, _ := s.Check(append(acc.Path, expr.Le(expr.Var("in0"), expr.Const(10)))); r != solver.Unsat {
		t.Errorf("accepting path does not force in0 > 10: %v", acc.Path)
	}
	if r, _ := s.Check(append(rej.Path, expr.Gt(expr.Var("in0"), expr.Const(10)))); r != solver.Unsat {
		t.Errorf("rejecting path does not force in0 <= 10: %v", rej.Path)
	}
	if res.Stats.Forks != 1 {
		t.Errorf("forks = %d, want 1", res.Stats.Forks)
	}
}

func TestNestedForkCount(t *testing.T) {
	res := run(t, `
func main() {
	var a int = input();
	var b int = input();
	if a > 0 { } else { }
	if b > 0 { } else { }
	exit();
}`, Options{})
	if len(res.States) != 4 {
		t.Fatalf("want 4 states, got %d", len(res.States))
	}
}

func TestInfeasibleBranchNotForked(t *testing.T) {
	res := run(t, `
func main() {
	var x int = input();
	assume(x > 100);
	if x > 0 {
		accept();
	} else {
		reject();
	}
}`, Options{})
	// x > 100 implies x > 0: only the accepting path exists.
	if len(res.States) != 1 || res.States[0].Status != StatusAccepted {
		t.Fatalf("states: %d, first status %v", len(res.States), res.States[0].Status)
	}
}

func TestAssumeFalseDropsPath(t *testing.T) {
	res := run(t, `
func main() {
	assume(false);
	accept();
}`, Options{})
	if res.States[0].Status != StatusExited {
		t.Fatalf("status %v", res.States[0].Status)
	}
}

func TestRecvSendSymbolic(t *testing.T) {
	res := run(t, `
var msg [3]int;
func main() {
	recv(msg);
	if msg[0] != 7 { reject(); }
	if msg[1] < 0 { reject(); }
	send(msg);
	accept();
}`, Options{})
	var acc *State
	for _, st := range res.States {
		if st.Status == StatusAccepted {
			acc = st
		}
	}
	if acc == nil {
		t.Fatal("no accepting state")
	}
	if len(acc.Sent) != 1 || len(acc.Sent[0].Fields) != 3 {
		t.Fatalf("sent: %+v", acc.Sent)
	}
	if len(acc.MsgVars) != 3 || acc.MsgVars[0] != "m0" {
		t.Fatalf("msg vars: %v", acc.MsgVars)
	}
	// On the accepting path m0 == 7 is forced.
	s := solver.Default()
	if r, _ := s.Check(append(acc.Path, expr.Ne(expr.Var("m0"), expr.Const(7)))); r != solver.Unsat {
		t.Errorf("accepting path does not force m0 == 7")
	}
}

func TestSymbolicLoopBoundedByConstraint(t *testing.T) {
	// A loop whose bound is a symbolic message field, pre-constrained to
	// <= 3: symbolic execution must terminate with one path per bound.
	res := run(t, `
var msg [1]int;
func main() {
	recv(msg);
	if msg[0] < 0 { reject(); }
	if msg[0] > 3 { reject(); }
	var i int = 0;
	while i < msg[0] {
		i = i + 1;
	}
	accept();
}`, Options{})
	acc := res.ByStatus(StatusAccepted)
	if len(acc) != 4 { // msg[0] in {0,1,2,3}
		t.Fatalf("accepting paths = %d, want 4", len(acc))
	}
}

func TestArrayAliasingThroughCalls(t *testing.T) {
	res := run(t, `
var buf [4]int;
var out int;
func fill(arr []int, v int) {
	var i int = 0;
	while i < len(arr) {
		arr[i] = v;
		i = i + 1;
	}
}
func main() {
	fill(buf, 9);
	out = buf[0] + buf[3];
}`, Options{})
	st := res.States[0]
	if st.Status != StatusExited {
		t.Fatalf("status %v err %v", st.Status, st.Err)
	}
	if st.Globals[1].Sc.Val != 18 {
		t.Fatalf("out = %s", st.Globals[1].Sc)
	}
}

func TestAliasingPreservedAcrossFork(t *testing.T) {
	// A function parameter aliasing a global array must stay aliased in
	// both forked children.
	res := run(t, `
var buf [2]int;
var out int;
func poke(arr []int, x int) {
	if x > 0 {
		arr[0] = 1;
	} else {
		arr[0] = 2;
	}
	buf[1] = 5;
	out = arr[0] + buf[1];
}
func main() {
	var x int = input();
	poke(buf, x);
	exit();
}`, Options{})
	if len(res.States) != 2 {
		t.Fatalf("want 2 states, got %d", len(res.States))
	}
	for _, st := range res.States {
		if st.Status != StatusExited {
			t.Fatalf("status %v err %v", st.Status, st.Err)
		}
		v := st.Globals[1].Sc
		if !v.IsConst() || (v.Val != 6 && v.Val != 7) {
			t.Fatalf("out = %s, want 6 or 7", v)
		}
	}
}

func TestConcreteModeMessage(t *testing.T) {
	src := `
var msg [2]int;
func main() {
	recv(msg);
	if msg[0] == 1 && msg[1] > 10 {
		accept();
	}
	reject();
}`
	res := run(t, src, Options{Concrete: true, Message: []int64{1, 11}})
	if res.States[0].Status != StatusAccepted {
		t.Fatalf("status %v err %v", res.States[0].Status, res.States[0].Err)
	}
	res = run(t, src, Options{Concrete: true, Message: []int64{1, 10}})
	if res.States[0].Status != StatusRejected {
		t.Fatalf("status %v", res.States[0].Status)
	}
	if res.Stats.SolverCalls != 0 {
		t.Fatalf("concrete mode must not call the solver")
	}
}

func TestConcreteInputQueue(t *testing.T) {
	src := `
var out int;
func main() {
	var a int = input();
	var b int = input();
	out = a * 10 + b;
}`
	res := run(t, src, Options{Concrete: true, Inputs: []int64{4, 2}})
	if res.States[0].Globals[0].Sc.Val != 42 {
		t.Fatalf("out = %s", res.States[0].Globals[0].Sc)
	}
	// Exhausted queue is a runtime error.
	res = run(t, src, Options{Concrete: true, Inputs: []int64{4}})
	if res.States[0].Status != StatusError {
		t.Fatalf("want error, got %v", res.States[0].Status)
	}
}

func TestGlobalConcreteState(t *testing.T) {
	src := `
var phase int;
var msg [1]int;
func main() {
	recv(msg);
	if phase == 2 {
		if msg[0] == 7 { accept(); }
	}
	reject();
}`
	res := run(t, src, Options{GlobalConcrete: map[string]int64{"phase": 2}})
	if got := len(res.ByStatus(StatusAccepted)); got != 1 {
		t.Fatalf("accepted paths = %d, want 1", got)
	}
	res = run(t, src, Options{GlobalConcrete: map[string]int64{"phase": 1}})
	if got := len(res.ByStatus(StatusAccepted)); got != 0 {
		t.Fatalf("accepted paths = %d, want 0", got)
	}
}

func TestGlobalSymbolicState(t *testing.T) {
	src := `
var phase int;
var msg [1]int;
func main() {
	recv(msg);
	if phase == 2 {
		if msg[0] == 7 { accept(); }
	}
	reject();
}`
	res := run(t, src, Options{GlobalSymbolic: []string{"phase"}})
	// With symbolic phase both the phase==2 and phase!=2 worlds exist.
	if got := len(res.ByStatus(StatusAccepted)); got != 1 {
		t.Fatalf("accepted paths = %d, want 1", got)
	}
	acc := res.ByStatus(StatusAccepted)[0]
	found := false
	for _, c := range acc.Path {
		if strings.Contains(c.String(), "state_phase") {
			found = true
		}
	}
	if !found {
		t.Fatalf("accepting path does not mention state_phase: %v", acc.Path)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"oob-store", `var a [2]int; func main() { a[5] = 1; }`, "out of range"},
		{"oob-read", `var a [2]int; var o int; func main() { o = a[2]; }`, "out of range"},
		{"symbolic-index", `var a [2]int; var o int; func main() { var i int = input(); o = a[i]; }`, "symbolic array index"},
		{"div-zero", `var o int; func main() { o = 1 / 0; }`, "division by zero"},
		{"mod-zero", `var o int; func main() { o = 1 % 0; }`, "remainder by zero"},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			res := run(t, cse.src, Options{})
			st := res.States[0]
			if st.Status != StatusError {
				t.Fatalf("status = %v, want error", st.Status)
			}
			if !strings.Contains(st.Err.Error(), cse.wantSub) {
				t.Fatalf("err %q does not contain %q", st.Err, cse.wantSub)
			}
		})
	}
}

func TestStepBudget(t *testing.T) {
	res := run(t, `
func main() {
	var i int = 0;
	while i >= 0 { i = i + 1; }
}`, Options{MaxSteps: 1000})
	st := res.States[0]
	if st.Status != StatusError || !strings.Contains(st.Err.Error(), "step budget") {
		t.Fatalf("status %v err %v", st.Status, st.Err)
	}
}

func TestEntryErrors(t *testing.T) {
	u := compile(t, `func main() {}`)
	if _, err := Run(u, Options{Entry: "nosuch"}); err == nil {
		t.Fatal("missing entry should error")
	}
	u2 := compile(t, `func main(x int) {}`)
	if _, err := Run(u2, Options{Entry: "main"}); err == nil {
		t.Fatal("entry with params should error")
	}
}

func TestBranchHookPruning(t *testing.T) {
	pruned := 0
	res := run(t, `
func main() {
	var x int = input();
	if x > 0 {
		accept();
	} else {
		reject();
	}
}`, Options{Hooks: Hooks{
		OnBranch: func(st *State, cond *expr.Expr) bool {
			// Prune every false-side branch.
			if cond.Kind == expr.KLe { // !(x > 0) => x <= 0
				pruned++
				return false
			}
			return true
		},
	}})
	if pruned != 1 {
		t.Fatalf("pruned = %d", pruned)
	}
	if got := len(res.ByStatus(StatusPruned)); got != 1 {
		t.Fatalf("pruned states = %d", got)
	}
	if got := len(res.ByStatus(StatusRejected)); got != 0 {
		t.Fatalf("rejected states = %d, want 0 (pruned before reject)", got)
	}
}

func TestOnSendAndOnAcceptHooks(t *testing.T) {
	sends, accepts := 0, 0
	run(t, `
var msg [1]int;
func main() {
	recv(msg);
	send(msg);
	accept();
}`, Options{Hooks: Hooks{
		OnSend:   func(st *State, m SentMessage) { sends++ },
		OnAccept: func(st *State) { accepts++ },
	}})
	if sends != 1 || accepts != 1 {
		t.Fatalf("sends=%d accepts=%d", sends, accepts)
	}
}

// kvServerSrc is the working example from §2.1 of the paper.
const kvServerSrc = `
const DATASIZE = 100;
const READ = 1;
const WRITE = 2;
const NPEERS = 4;
// fields: 0 sender, 1 request, 2 address, 3 value, 4 crc
var msg [5]int;
func main() {
	recv(msg);
	if msg[0] < 0 || msg[0] >= NPEERS { reject(); }
	if msg[4] != msg[0] + msg[1] + msg[2] + msg[3] { reject(); }
	if msg[1] == READ {
		if msg[2] >= DATASIZE { reject(); }
		// Security vulnerability: forgot to check address < 0.
		accept();
	}
	if msg[1] == WRITE {
		if msg[2] >= DATASIZE { reject(); }
		if msg[2] < 0 { reject(); }
		accept();
	}
	reject();
}`

func TestKVServerPathStructure(t *testing.T) {
	res := run(t, kvServerSrc, Options{})
	acc := res.ByStatus(StatusAccepted)
	if len(acc) != 2 {
		t.Fatalf("accepting paths = %d, want 2 (READ and WRITE)", len(acc))
	}
	// The READ accepting path admits a negative address; WRITE does not.
	s := solver.Default()
	negAddr := expr.Lt(expr.Var("m2"), expr.Const(0))
	readNeg, writeNeg := false, false
	for _, st := range acc {
		r, _ := s.Check(append(st.Path, negAddr))
		isRead, _ := s.Check(append(st.Path, expr.Eq(expr.Var("m1"), expr.Const(1))))
		if isRead == solver.Sat && r == solver.Sat {
			readNeg = true
		}
		if isRead == solver.Unsat && r == solver.Sat {
			writeNeg = true
		}
	}
	if !readNeg {
		t.Error("READ path should admit negative addresses (the planted bug)")
	}
	if writeNeg {
		t.Error("WRITE path must not admit negative addresses")
	}
}
