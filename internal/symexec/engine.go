// Package symexec implements the forking symbolic interpreter for NL
// programs — the role S2E plays in the Achilles paper.
//
// The engine executes the flat IR produced by internal/lang. Execution
// states carry a symbolic store (function frames and module globals mapping
// to expression trees), the accumulated path constraints, and the messages
// sent/received on the path. At every conditional branch whose condition is
// symbolic, the engine queries the constraint solver for the feasibility of
// both sides and forks the state when both are feasible — exactly the
// execution model described in §3.1 of the paper.
//
// The same engine runs programs concretely (Options.Concrete): all inputs
// come from provided queues, no forking occurs, and no solver is consulted.
// The black-box fuzzing baseline and the Trojan-injection oracles reuse the
// concrete mode, which guarantees that analysis and replay agree on the
// program semantics.
//
// With Options.Parallelism > 1 the engine explores independent branches of
// the fork tree on a pool of workers sharing one frontier (see parallel.go).
// The explored tree is identical to the sequential one — feasibility depends
// only on the path, and the solver is deterministic — and terminal states
// are merged in fork-tree order (State.Trail), so results are deterministic
// and independent of worker scheduling.
package symexec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"achilles/internal/expr"
	"achilles/internal/lang"
	"achilles/internal/solver"
)

// Version identifies the exploration semantics of this engine revision.
// It is folded into audit input fingerprints, so bump it whenever a change
// can alter the terminal-state set of a run (forking rules, feasibility
// treatment, truncation policy) — stale campaign baselines then stop being
// reused instead of silently pinning results the current engine would not
// reproduce.
const Version = "symexec/1"

// Status describes how the execution of one path ended.
type Status uint8

// Path terminal statuses.
const (
	StatusRunning  Status = iota // still on the worklist
	StatusAccepted               // reached accept()
	StatusRejected               // reached reject()
	StatusExited                 // exit(), failed assume(), or main returned
	StatusPruned                 // discarded by a hook (no Trojan possible)
	StatusError                  // runtime error (see State.Err)
)

func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusAccepted:
		return "accepted"
	case StatusRejected:
		return "rejected"
	case StatusExited:
		return "exited"
	case StatusPruned:
		return "pruned"
	case StatusError:
		return "error"
	}
	return "status?"
}

// ArrayObj is a mutable array value. States share ArrayObjs internally;
// forking performs an aliasing-preserving deep copy.
type ArrayObj struct {
	Elems []*expr.Expr
}

// Value is a scalar expression or an array reference stored in a slot.
type Value struct {
	Sc  *expr.Expr
	Arr *ArrayObj
}

// Frame is one function activation.
type Frame struct {
	Fn        *lang.IRFunc
	PC        int
	Slots     []Value
	RetDst    lang.VarRef // where the caller wants the return value
	HasRetDst bool
	RetReg    *expr.Expr // value produced by the last completed call
}

// SentMessage is a message captured at a send() call: the snapshot of the
// buffer's field expressions plus the path constraints in force at the send.
type SentMessage struct {
	Fields []*expr.Expr
	Path   []*expr.Expr
}

// StateData is optional analysis-specific state attached to an execution
// state; it is cloned whenever the state forks.
type StateData interface{ CloneData() StateData }

// State is one symbolic (or concrete) execution state.
type State struct {
	ID      int
	Globals []Value
	Frames  []Frame
	Path    []*expr.Expr // path constraints (conjunction)
	Status  Status
	Err     error

	// Trail is the state's position in the fork tree: one byte per forking
	// branch, '0' for the true side and '1' for the false side. Terminal
	// states have unique trails, making lexicographic trail order the
	// canonical, scheduling-independent merge order for parallel runs. In
	// hook-free runs it equals the sequential engine's depth-first
	// completion order exactly; with an OnBranch hook the sequential order
	// differs only in that hook-pruned siblings are recorded at fork time
	// (ahead of their trail position) — accepted states still complete in
	// trail order either way.
	Trail string

	Sent    []SentMessage // messages sent on this path
	MsgVars []string      // names of the symbolic message variables from recv()
	Depth   int           // number of symbolic branch decisions on this path
	Steps   int

	Data StateData // analysis payload (cloned on fork)

	inputCursor int // next index into Options.Inputs (concrete mode)
	varCounter  int // fresh symbolic variable counter
	msgCounter  int // recv() counter

	// prefix mirrors Path as an incremental solver handle: it is extended
	// exactly when Path grows, so feasibility queries reuse the path's
	// flattened form and propagation fixpoint instead of re-solving the
	// shared prefix per branch, and duplicate/complement branch conditions
	// are decided without a solver call (see solver.Prefix). Prefixes are
	// immutable, so forked siblings share the parent handle.
	prefix *solver.Prefix
}

// frame returns the top activation.
func (st *State) frame() *Frame { return &st.Frames[len(st.Frames)-1] }

// SolverPrefix exposes the state's incremental path handle so analysis hooks
// can issue path-plus-suffix solver queries through the prefix fast path
// (solver.CheckPrefixAllCtx) instead of re-submitting the whole path. It is
// nil in concrete mode and always mirrors Path otherwise.
func (st *State) SolverPrefix() *solver.Prefix { return st.prefix }

// PathExpr returns the conjunction of the path constraints.
func (st *State) PathExpr() *expr.Expr { return expr.AndAll(st.Path) }

// Hooks intercept engine events. Any hook may be nil. When the engine runs
// with Parallelism > 1 the hooks are invoked concurrently from the worker
// goroutines and must be safe for concurrent use; the state passed to a hook
// is owned by the calling worker and may be mutated freely.
type Hooks struct {
	// OnBranch runs after a new symbolic branch constraint was appended to
	// st.Path. Returning false prunes the state (StatusPruned).
	OnBranch func(st *State, cond *expr.Expr) bool
	// OnSend runs when a state executes send().
	OnSend func(st *State, msg SentMessage)
	// OnAccept runs when a state reaches accept().
	OnAccept func(st *State)
	// OnReject runs when a state reaches reject().
	OnReject func(st *State)
}

// Options configure a run.
type Options struct {
	// Entry is the function to execute; defaults to "main".
	Entry string
	// MaxStates bounds the number of states explored (default 1 << 20).
	MaxStates int
	// MaxSteps bounds instructions per state (default 1 << 20).
	MaxSteps int
	// Solver decides branch feasibility; defaults to solver.Default().
	Solver *solver.Solver
	// Hooks intercept events.
	Hooks Hooks

	// Parallelism is the number of exploration workers. Values <= 1 select
	// the sequential engine; concrete runs are always sequential (a concrete
	// run is a single path). Terminal states of a parallel run are returned
	// in fork-tree (Trail) order with IDs renumbered to that order, so for
	// runs that complete within MaxStates the result is deterministic for
	// any worker count. A run truncated by MaxStates keeps a scheduling-
	// dependent subset under parallelism (the sequential engine keeps the
	// depth-first prefix); both engines enforce the budget on the recorded
	// terminal count and raise Stats.Truncated, so callers can refuse to
	// treat a partial terminal set as the full fork tree. Size MaxStates as
	// a runaway backstop, not as a sampling mechanism.
	Parallelism int

	// Concrete switches to concrete execution: inputs come from Inputs and
	// Message, branches must evaluate to constants, and no forking happens.
	Concrete bool
	// Inputs feeds input()/symbolic() calls in concrete mode.
	Inputs []int64
	// Message feeds recv() in concrete mode.
	Message []int64

	// MsgPrefix names symbolic message variables (default "m"): recv() of a
	// k-element array yields m0 .. m{k-1}.
	MsgPrefix string
	// InputPrefix names symbolic input variables (default "in").
	InputPrefix string

	// GlobalConcrete pre-sets scalar globals to concrete values before the
	// run (the paper's Concrete Local State mode, §3.4).
	GlobalConcrete map[string]int64
	// GlobalSymbolic pre-sets scalar globals to fresh unconstrained symbolic
	// values (the Over-approximate Symbolic Local State mode, §3.4).
	GlobalSymbolic []string
}

func (o Options) withDefaults() Options {
	if o.Entry == "" {
		o.Entry = "main"
	}
	if o.MaxStates == 0 {
		o.MaxStates = 1 << 20
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 1 << 20
	}
	if o.Solver == nil {
		o.Solver = solver.Default()
	}
	if o.MsgPrefix == "" {
		o.MsgPrefix = "m"
	}
	if o.InputPrefix == "" {
		o.InputPrefix = "in"
	}
	return o
}

// Stats are counters for one run.
type Stats struct {
	States      int // terminal states produced
	Forks       int
	Steps       int
	SolverCalls int

	// Subsumed counts branch feasibility questions answered by the path
	// prefix's interned-atom index — a condition (or its complement) already
	// on the path — without consulting the solver.
	Subsumed int

	// Truncated reports that the exploration stopped before the fork tree
	// was exhausted — either MaxStates tripped while unexplored states
	// remained on the worklist, or the run's context was cancelled. The
	// terminal set (and everything derived from it, e.g. a Trojan class set)
	// is a partial sample, not the full fork tree. Sequential and parallel
	// runs enforce the MaxStates budget on the same counter — terminal
	// states recorded — so the flag trips identically in both modes.
	Truncated bool

	// Cancelled reports that the run's context was cancelled (or its
	// deadline passed) before the exploration finished. A cancelled run is
	// always Truncated too.
	Cancelled bool
}

// Result is the outcome of a run.
type Result struct {
	// Terminal states in completion order.
	States []*State
	Stats  Stats
}

// ByStatus filters terminal states.
func (r *Result) ByStatus(s Status) []*State {
	var out []*State
	for _, st := range r.States {
		if st.Status == s {
			out = append(out, st)
		}
	}
	return out
}

// Engine executes one compiled unit.
type Engine struct {
	unit *lang.Unit
	opts Options
	res  *Result
	next atomic.Int64 // state id counter

	par       bool            // parallel run in progress
	termCount atomic.Int64    // terminal states recorded (MaxStates enforcement)
	front     *frontier       // shared work queue (parallel mode)
	ctx       context.Context // run context (never nil during a run)
	cancelled atomic.Bool     // ctx fired before the exploration finished
}

// stepCheckMask paces cancellation polling inside the interpreter loop:
// ctx.Err() can take a lock, so a running state only consults it every 256
// instructions (and at every state/fork boundary). A few hundred IR steps
// complete in microseconds, keeping abort latency far below any deadline a
// caller would set.
const stepCheckMask = 255

// ctxAborted reports (and records) that the run context is cancelled.
func (e *Engine) ctxAborted() bool {
	if e.ctx.Err() == nil {
		return false
	}
	e.cancelled.Store(true)
	return true
}

// wctx is the per-worker execution context: statistics and terminal states
// accumulate here without synchronisation and are merged after the run.
type wctx struct {
	stats     Stats
	terminals []*State
}

// record books a terminal state into the worker context and bumps the global
// terminal count — the single counter both engines truncate on. In parallel
// mode reaching MaxStates additionally stops the shared frontier.
func (e *Engine) record(ctx *wctx, st *State) {
	ctx.stats.States++
	ctx.terminals = append(ctx.terminals, st)
	if int(e.termCount.Add(1)) >= e.opts.MaxStates && e.par {
		e.front.stop()
	}
}

// New creates an engine for the unit.
func New(unit *lang.Unit, opts Options) *Engine {
	return &Engine{unit: unit, opts: opts.withDefaults()}
}

// Run explores the program from the entry function and returns all terminal
// states.
func Run(unit *lang.Unit, opts Options) (*Result, error) {
	return New(unit, opts).Run()
}

// RunCtx is Run under a context: cancellation (or a deadline) aborts the
// exploration cleanly mid-frontier. The terminal states recorded up to the
// abort are returned with Stats.Truncated and Stats.Cancelled set; like a
// MaxStates truncation, which subset survives is scheduling-dependent under
// parallelism.
func RunCtx(ctx context.Context, unit *lang.Unit, opts Options) (*Result, error) {
	return New(unit, opts).RunCtx(ctx)
}

// ErrEntryMissing is returned when the entry function does not exist.
var ErrEntryMissing = errors.New("symexec: entry function not found")

// Run performs the exploration.
func (e *Engine) Run() (*Result, error) {
	return e.RunCtx(context.Background())
}

// RunCtx performs the exploration under ctx; see the package-level RunCtx.
func (e *Engine) RunCtx(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	entry := e.unit.FuncNamed(e.opts.Entry)
	if entry == nil {
		return nil, fmt.Errorf("%w: %q", ErrEntryMissing, e.opts.Entry)
	}
	if len(entry.Params) != 0 {
		return nil, fmt.Errorf("symexec: entry function %q must take no parameters", e.opts.Entry)
	}
	e.res = &Result{}
	// Run may be called repeatedly on one Engine: the MaxStates terminal
	// counter (and the parallel-run state) is per-run, not per-engine.
	e.termCount.Store(0)
	e.par = false
	e.front = nil
	e.ctx = ctx
	e.cancelled.Store(false)
	init := e.initialState(entry)
	if e.opts.Parallelism > 1 && !e.opts.Concrete {
		e.runParallel(init)
	} else {
		e.runSequential(init)
	}
	if e.res.Stats.Cancelled {
		e.res.Stats.Truncated = true
	}
	return e.res, nil
}

// runSequential is the classic depth-first worklist loop.
func (e *Engine) runSequential(init *State) {
	ctx := &wctx{}
	work := []*State{init}
	for len(work) > 0 {
		if int(e.termCount.Load()) >= e.opts.MaxStates {
			break
		}
		if e.ctxAborted() {
			break
		}
		st := work[len(work)-1]
		work = work[:len(work)-1]
		for st.Status == StatusRunning {
			if st.Steps&stepCheckMask == 0 && e.ctxAborted() {
				break
			}
			child := e.step(ctx, st)
			if child != nil {
				work = append(work, child)
			}
		}
		if st.Status == StatusRunning {
			// Aborted mid-state: the state is incomplete, not terminal.
			break
		}
		e.record(ctx, st)
	}
	ctx.stats.Cancelled = e.cancelled.Load()
	ctx.stats.Truncated = len(work) > 0 || ctx.stats.Cancelled
	e.res.States = ctx.terminals
	e.res.Stats = ctx.stats
}

// initialState builds globals and the entry frame.
func (e *Engine) initialState(entry *lang.IRFunc) *State {
	st := &State{ID: int(e.next.Add(1) - 1)}
	st.Globals = make([]Value, len(e.unit.Globals))
	for i, g := range e.unit.Globals {
		if g.Type.Kind == lang.TypeArray {
			arr := &ArrayObj{Elems: make([]*expr.Expr, g.Type.Len)}
			for j := range arr.Elems {
				arr.Elems[j] = expr.Const(0)
			}
			st.Globals[i] = Value{Arr: arr}
			continue
		}
		st.Globals[i] = Value{Sc: expr.Const(g.Init)}
	}
	for name, v := range e.opts.GlobalConcrete {
		if gi := e.unit.GlobalNamed(name); gi >= 0 {
			st.Globals[gi] = Value{Sc: expr.Const(v)}
		}
	}
	for _, name := range e.opts.GlobalSymbolic {
		if gi := e.unit.GlobalNamed(name); gi >= 0 {
			st.Globals[gi] = Value{Sc: expr.Var(fmt.Sprintf("state_%s", name))}
		}
	}
	st.Frames = []Frame{{Fn: entry, Slots: make([]Value, entry.NumSlots)}}
	if !e.opts.Concrete {
		st.prefix = e.opts.Solver.NewPrefix()
	}
	return st
}

// fork deep-copies a state, preserving array aliasing.
func (e *Engine) fork(ctx *wctx, st *State) *State {
	ns := &State{
		ID:          int(e.next.Add(1) - 1),
		Status:      st.Status,
		Depth:       st.Depth,
		Steps:       st.Steps,
		Trail:       st.Trail,
		inputCursor: st.inputCursor,
		varCounter:  st.varCounter,
		msgCounter:  st.msgCounter,
		prefix:      st.prefix, // immutable; extended per-side after the fork
	}
	seen := map[*ArrayObj]*ArrayObj{}
	cpVal := func(v Value) Value {
		if v.Arr == nil {
			return v
		}
		if dup, ok := seen[v.Arr]; ok {
			return Value{Arr: dup}
		}
		dup := &ArrayObj{Elems: append([]*expr.Expr{}, v.Arr.Elems...)}
		seen[v.Arr] = dup
		return Value{Arr: dup}
	}
	ns.Globals = make([]Value, len(st.Globals))
	for i, v := range st.Globals {
		ns.Globals[i] = cpVal(v)
	}
	ns.Frames = make([]Frame, len(st.Frames))
	for i, fr := range st.Frames {
		nf := fr
		nf.Slots = make([]Value, len(fr.Slots))
		for j, v := range fr.Slots {
			nf.Slots[j] = cpVal(v)
		}
		ns.Frames[i] = nf
	}
	ns.Path = append([]*expr.Expr{}, st.Path...)
	ns.Sent = append([]SentMessage{}, st.Sent...)
	ns.MsgVars = append([]string{}, st.MsgVars...)
	if st.Data != nil {
		ns.Data = st.Data.CloneData()
	}
	ctx.stats.Forks++
	return ns
}

// fail marks the state as errored.
func (e *Engine) fail(st *State, pos lang.Pos, format string, args ...any) {
	st.Status = StatusError
	st.Err = fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

// step executes one instruction. It returns a forked sibling state to
// enqueue, or nil.
func (e *Engine) step(ctx *wctx, st *State) *State {
	st.Steps++
	ctx.stats.Steps++
	if st.Steps > e.opts.MaxSteps {
		e.fail(st, lang.Pos{}, "step budget exhausted (%d); possible unbounded loop", e.opts.MaxSteps)
		return nil
	}
	fr := st.frame()
	if fr.PC >= len(fr.Code()) {
		e.fail(st, lang.Pos{}, "pc out of range in %s", fr.Fn.Name)
		return nil
	}
	in := &fr.Code()[fr.PC]
	switch in.Op {
	case lang.OpAssign:
		v, err := e.eval(st, fr, in.X)
		if err != nil {
			e.fail(st, in.Pos, "%v", err)
			return nil
		}
		e.writeVar(st, fr, in.Dst, Value{Sc: v})
		fr.PC++
		return nil

	case lang.OpNewArr:
		arr := &ArrayObj{Elems: make([]*expr.Expr, in.A)}
		for i := range arr.Elems {
			arr.Elems[i] = expr.Const(0)
		}
		e.writeVar(st, fr, in.Dst, Value{Arr: arr})
		fr.PC++
		return nil

	case lang.OpStore:
		arrV := e.readVar(st, fr, in.Dst)
		if arrV.Arr == nil {
			e.fail(st, in.Pos, "store target is not an array")
			return nil
		}
		idx, err := e.eval(st, fr, in.Index)
		if err != nil {
			e.fail(st, in.Pos, "%v", err)
			return nil
		}
		if !idx.IsConst() {
			e.fail(st, in.Pos, "symbolic array index is not supported (index %s)", idx)
			return nil
		}
		if idx.Val < 0 || idx.Val >= int64(len(arrV.Arr.Elems)) {
			e.fail(st, in.Pos, "array index %d out of range [0,%d)", idx.Val, len(arrV.Arr.Elems))
			return nil
		}
		v, err := e.eval(st, fr, in.X)
		if err != nil {
			e.fail(st, in.Pos, "%v", err)
			return nil
		}
		arrV.Arr.Elems[idx.Val] = v
		fr.PC++
		return nil

	case lang.OpJmp:
		fr.PC = in.A
		return nil

	case lang.OpCJmp:
		cond, err := e.eval(st, fr, in.X)
		if err != nil {
			e.fail(st, in.Pos, "%v", err)
			return nil
		}
		return e.branch(ctx, st, fr, in, cond)

	case lang.OpCall:
		fn := e.unit.Funcs[in.F]
		slots := make([]Value, fn.NumSlots)
		for i, p := range fn.Params {
			if p.Type.Kind == lang.TypeArray {
				ve := in.Args[i].(*lang.VarExpr)
				av := e.readVarRef(st, fr, ve.Ref)
				slots[i] = av
				continue
			}
			v, err := e.eval(st, fr, in.Args[i])
			if err != nil {
				e.fail(st, in.Pos, "%v", err)
				return nil
			}
			slots[i] = Value{Sc: v}
		}
		fr.PC++ // resume after the call
		st.Frames = append(st.Frames, Frame{
			Fn:        fn,
			Slots:     slots,
			RetDst:    in.Dst,
			HasRetDst: in.HasDst,
		})
		return nil

	case lang.OpRet:
		var ret *expr.Expr
		if in.X != nil {
			if lang.IsRetRegister(in.X) {
				ret = fr.RetReg
			} else {
				v, err := e.eval(st, fr, in.X)
				if err != nil {
					e.fail(st, in.Pos, "%v", err)
					return nil
				}
				ret = v
			}
		}
		frame := st.Frames[len(st.Frames)-1]
		st.Frames = st.Frames[:len(st.Frames)-1]
		if len(st.Frames) == 0 {
			st.Status = StatusExited
			return nil
		}
		caller := st.frame()
		if frame.HasRetDst {
			if ret == nil {
				ret = expr.Const(0)
			}
			e.writeVar(st, caller, frame.RetDst, Value{Sc: ret})
		} else if ret != nil {
			caller.RetReg = ret
		}
		return nil

	case lang.OpIntrin:
		return e.intrinsic(ctx, st, fr, in)
	}
	e.fail(st, in.Pos, "unknown opcode %v", in.Op)
	return nil
}

// Code returns the instruction slice of the frame's function.
func (fr *Frame) Code() []lang.Instr { return fr.Fn.Code }

// branch handles OpCJmp. It may fork, returning the sibling state.
func (e *Engine) branch(ctx *wctx, st *State, fr *Frame, in *lang.Instr, cond *expr.Expr) *State {
	if cond.IsBoolLit() {
		if cond.IsTrue() {
			fr.PC = in.A
		} else {
			fr.PC = in.B
		}
		return nil
	}
	if e.opts.Concrete {
		e.fail(st, in.Pos, "symbolic condition %s in concrete mode", cond)
		return nil
	}
	negCond := expr.Not(cond)
	tFeasible := e.feasible(ctx, st, cond)
	fFeasible := e.feasible(ctx, st, negCond)
	switch {
	case tFeasible && fFeasible:
		sibling := e.fork(ctx, st)
		// Parent takes the true side.
		st.Depth++
		st.Trail += "0"
		st.Path = append(st.Path, cond)
		st.prefix = st.prefix.Extend(cond)
		fr.PC = in.A
		if !e.fireBranch(st, cond) {
			st.Status = StatusPruned
		}
		// Sibling takes the false side.
		sibling.Depth++
		sibling.Trail += "1"
		sibling.Path = append(sibling.Path, negCond)
		sibling.prefix = sibling.prefix.Extend(negCond)
		sibling.frame().PC = in.B
		if !e.fireBranch(sibling, negCond) {
			sibling.Status = StatusPruned
			e.record(ctx, sibling)
			return nil
		}
		return sibling
	case tFeasible:
		fr.PC = in.A
		return nil
	case fFeasible:
		fr.PC = in.B
		return nil
	default:
		// Both sides infeasible: the path constraints themselves became
		// unsatisfiable (can happen with Unknown answers); drop the path.
		st.Status = StatusExited
		return nil
	}
}

func (e *Engine) fireBranch(st *State, cond *expr.Expr) bool {
	if e.opts.Hooks.OnBranch == nil {
		return true
	}
	return e.opts.Hooks.OnBranch(st, cond)
}

// feasible asks the solver whether the path plus cond is satisfiable.
// Unknown is treated as feasible (sound for bug finding: accepted paths are
// re-verified before reporting).
//
// Two fast paths answer without a full solve. Frontier subsumption: when
// cond (or its complement) is already a conjunctive atom of the path, the
// prefix's interned-atom index decides the question syntactically with the
// exact answer the solver would give (see solver.Prefix.Implies) — this is
// what collapses the sibling states whose branch condition is implied by an
// already-explored path. Otherwise the query runs through the prefix handle,
// reusing the path's flattened form and propagation fixpoint instead of
// re-solving the shared prefix from scratch.
func (e *Engine) feasible(ctx *wctx, st *State, cond *expr.Expr) bool {
	if cond.IsTrue() {
		return true
	}
	if cond.IsFalse() {
		return false
	}
	if holds, ok := st.prefix.Implies(cond); ok {
		ctx.stats.Subsumed++
		return holds
	}
	ctx.stats.SolverCalls++
	if st.prefix != nil {
		res, _ := e.opts.Solver.CheckPrefixCtx(e.ctx, st.prefix, cond)
		return res != solver.Unsat
	}
	cs := make([]*expr.Expr, 0, len(st.Path)+1)
	cs = append(cs, st.Path...)
	cs = append(cs, cond)
	res, _ := e.opts.Solver.CheckCtx(e.ctx, cs)
	return res != solver.Unsat
}

// intrinsic executes an OpIntrin instruction.
func (e *Engine) intrinsic(ctx *wctx, st *State, fr *Frame, in *lang.Instr) *State {
	switch in.Bi {
	case lang.BRecv:
		ve := in.Args[0].(*lang.VarExpr)
		av := e.readVarRef(st, fr, ve.Ref)
		if av.Arr == nil {
			e.fail(st, in.Pos, "recv target is not an array")
			return nil
		}
		if e.opts.Concrete {
			if len(e.opts.Message) != len(av.Arr.Elems) {
				e.fail(st, in.Pos, "concrete message has %d fields, buffer wants %d",
					len(e.opts.Message), len(av.Arr.Elems))
				return nil
			}
			for i, v := range e.opts.Message {
				av.Arr.Elems[i] = expr.Const(v)
			}
			fr.PC++
			return nil
		}
		base := st.msgCounter
		st.msgCounter++
		for i := range av.Arr.Elems {
			name := fmt.Sprintf("%s%d", e.opts.MsgPrefix, i)
			if base > 0 {
				name = fmt.Sprintf("%s_r%d_%d", e.opts.MsgPrefix, base, i)
			}
			av.Arr.Elems[i] = expr.Var(name)
			st.MsgVars = append(st.MsgVars, name)
		}
		fr.PC++
		return nil

	case lang.BSend:
		ve := in.Args[0].(*lang.VarExpr)
		av := e.readVarRef(st, fr, ve.Ref)
		if av.Arr == nil {
			e.fail(st, in.Pos, "send source is not an array")
			return nil
		}
		msg := SentMessage{
			Fields: append([]*expr.Expr{}, av.Arr.Elems...),
			Path:   append([]*expr.Expr{}, st.Path...),
		}
		st.Sent = append(st.Sent, msg)
		if e.opts.Hooks.OnSend != nil {
			e.opts.Hooks.OnSend(st, msg)
		}
		fr.PC++
		return nil

	case lang.BAssume:
		cond, err := e.eval(st, fr, in.Args[0])
		if err != nil {
			e.fail(st, in.Pos, "%v", err)
			return nil
		}
		if cond.IsBoolLit() {
			if cond.IsFalse() {
				st.Status = StatusExited
				return nil
			}
			fr.PC++
			return nil
		}
		if e.opts.Concrete {
			e.fail(st, in.Pos, "symbolic assume in concrete mode")
			return nil
		}
		if !e.feasible(ctx, st, cond) {
			st.Status = StatusExited
			return nil
		}
		st.Path = append(st.Path, cond)
		st.prefix = st.prefix.Extend(cond)
		// assume() adds a path constraint just like a branch does, so the
		// branch hook fires here too (analyses track every constraint).
		if !e.fireBranch(st, cond) {
			st.Status = StatusPruned
			return nil
		}
		fr.PC++
		return nil

	case lang.BAccept:
		st.Status = StatusAccepted
		if e.opts.Hooks.OnAccept != nil {
			e.opts.Hooks.OnAccept(st)
		}
		return nil

	case lang.BReject:
		st.Status = StatusRejected
		if e.opts.Hooks.OnReject != nil {
			e.opts.Hooks.OnReject(st)
		}
		return nil

	case lang.BExit:
		st.Status = StatusExited
		return nil
	}
	e.fail(st, in.Pos, "unknown intrinsic")
	return nil
}

// readVar reads a storage location relative to the given frame.
func (e *Engine) readVar(st *State, fr *Frame, ref lang.VarRef) Value {
	if ref.Global {
		return st.Globals[ref.Idx]
	}
	return fr.Slots[ref.Idx]
}

// readVarRef reads through a checker Ref (local/global).
func (e *Engine) readVarRef(st *State, fr *Frame, ref lang.Ref) Value {
	switch ref.Kind {
	case lang.RefLocal:
		return fr.Slots[ref.Idx]
	case lang.RefGlobal:
		return st.Globals[ref.Idx]
	}
	return Value{}
}

func (e *Engine) writeVar(st *State, fr *Frame, ref lang.VarRef, v Value) {
	if ref.Global {
		st.Globals[ref.Idx] = v
		return
	}
	fr.Slots[ref.Idx] = v
}
