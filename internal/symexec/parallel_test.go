package symexec_test

// External test package: the FSP model imports internal/core which imports
// symexec, so these equivalence tests live outside the package to avoid an
// import cycle.

import (
	"fmt"
	"testing"

	"achilles/internal/protocols/fsp"
	"achilles/internal/symexec"
)

// stateKey renders one terminal state order-independently of its ID.
func stateKey(s *symexec.State) string {
	return fmt.Sprintf("%v|%s|%s", s.Status, s.Trail, s.PathExpr())
}

// TestParallelFrontierMatchesSequential explores the FSP server model with
// 1, 2, 4 and 8 workers and asserts the terminal state list is identical to
// the sequential engine's — same states, same order (the parallel merge sorts
// by Trail, which equals the sequential depth-first completion order).
func TestParallelFrontierMatchesSequential(t *testing.T) {
	unit := fsp.ServerUnit()
	seq, err := symexec.Run(unit, symexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{1, 2, 4, 8} {
		j := j
		t.Run(fmt.Sprintf("j%d", j), func(t *testing.T) {
			par, err := symexec.Run(unit, symexec.Options{Parallelism: j})
			if err != nil {
				t.Fatal(err)
			}
			if len(par.States) != len(seq.States) {
				t.Fatalf("parallel %d states, sequential %d", len(par.States), len(seq.States))
			}
			for i := range seq.States {
				if sk, pk := stateKey(seq.States[i]), stateKey(par.States[i]); sk != pk {
					t.Fatalf("state %d differs:\n  seq %s\n  par %s", i, sk, pk)
				}
			}
			if par.Stats.States != seq.Stats.States || par.Stats.Forks != seq.Stats.Forks {
				t.Fatalf("stats differ: par %+v, seq %+v", par.Stats, seq.Stats)
			}
		})
	}
}

// TestParallelTrailsUnique asserts every terminal state has a distinct
// fork-tree trail — the property that makes Trail a sound merge key.
func TestParallelTrailsUnique(t *testing.T) {
	res, err := symexec.Run(fsp.ServerUnit(), symexec.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, st := range res.States {
		if seen[st.Trail] {
			t.Fatalf("duplicate trail %q", st.Trail)
		}
		seen[st.Trail] = true
	}
}

// TestParallelIDsAreTrailOrdered asserts parallel runs renumber state IDs in
// merge order, so downstream reports are reproducible run to run.
func TestParallelIDsAreTrailOrdered(t *testing.T) {
	res, err := symexec.Run(fsp.ServerUnit(), symexec.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.States {
		if st.ID != i {
			t.Fatalf("state %d has ID %d after merge", i, st.ID)
		}
	}
}
