package symexec

import (
	"sort"
	"sync"
)

// frontier is the shared exploration queue of a parallel run. It counts
// pending states (queued or currently executing) so that workers can tell
// "momentarily empty" apart from "exploration finished": a running state may
// still fork new work onto the stack.
type frontier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	stack   []*State
	pending int
	stopped bool
}

func newFrontier() *frontier {
	f := &frontier{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// push enqueues a state and wakes one idle worker.
func (f *frontier) push(st *State) {
	f.mu.Lock()
	f.stack = append(f.stack, st)
	f.pending++
	f.mu.Unlock()
	f.cond.Signal()
}

// pop blocks until a state is available; it returns nil when the exploration
// is complete (no queued and no running states) or was stopped.
func (f *frontier) pop() *State {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.stack) == 0 && f.pending > 0 && !f.stopped {
		f.cond.Wait()
	}
	if f.stopped || len(f.stack) == 0 {
		return nil
	}
	st := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return st
}

// done marks one previously pushed state as fully executed.
func (f *frontier) done() {
	f.mu.Lock()
	f.pending--
	finished := f.pending == 0
	f.mu.Unlock()
	if finished {
		f.cond.Broadcast()
	}
}

// stop aborts the exploration (MaxStates reached): waiting workers return.
func (f *frontier) stop() {
	f.mu.Lock()
	f.stopped = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// leftover reports whether unexplored states remained queued when the run
// ended — the truncation signal of a stopped parallel exploration.
func (f *frontier) leftover() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.stack) > 0
}

// runParallel explores the fork tree on Options.Parallelism workers. Each
// worker pops a state, runs it to a terminal status — publishing forked
// siblings to the shared frontier so idle workers pick them up — and records
// terminals into its private context. The merge is deterministic: terminal
// states are sorted by Trail (the canonical fork-tree order; see
// State.Trail for how it relates to the sequential completion order) and
// IDs are renumbered to that order.
//
// Cancellation: a watcher goroutine stops the frontier the moment the run
// context fires, waking blocked workers; running workers additionally poll
// the context at state boundaries and every stepCheckMask instructions, so
// no worker outlives the cancellation by more than a few hundred IR steps.
// A state caught mid-execution is dropped, not recorded — its status is
// still StatusRunning, and a half-executed state must not masquerade as a
// terminal one.
func (e *Engine) runParallel(init *State) {
	e.par = true
	e.front = newFrontier()
	e.front.push(init)

	watchDone := make(chan struct{})
	if e.ctx.Done() != nil {
		go func() {
			select {
			case <-e.ctx.Done():
				e.cancelled.Store(true)
				e.front.stop()
			case <-watchDone:
			}
		}()
	}

	workers := e.opts.Parallelism
	ctxs := make([]*wctx, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ctx := &wctx{}
		ctxs[w] = ctx
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				st := e.front.pop()
				if st == nil {
					return
				}
				for st.Status == StatusRunning {
					if st.Steps&stepCheckMask == 0 && e.ctxAborted() {
						break
					}
					if sibling := e.step(ctx, st); sibling != nil {
						e.front.push(sibling)
					}
				}
				if st.Status != StatusRunning {
					e.record(ctx, st)
				}
				e.front.done()
			}
		}()
	}
	wg.Wait()
	close(watchDone)

	var all []*State
	var stats Stats
	for _, ctx := range ctxs {
		all = append(all, ctx.terminals...)
		stats.States += ctx.stats.States
		stats.Forks += ctx.stats.Forks
		stats.Steps += ctx.stats.Steps
		stats.SolverCalls += ctx.stats.SolverCalls
		stats.Subsumed += ctx.stats.Subsumed
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Trail < all[j].Trail })
	for i, st := range all {
		st.ID = i
	}
	stats.Cancelled = e.cancelled.Load()
	stats.Truncated = e.front.leftover() || stats.Cancelled
	e.res.States = all
	e.res.Stats = stats
}
