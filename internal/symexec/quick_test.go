package symexec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"achilles/internal/expr"
	"achilles/internal/lang"
)

// The partition invariant: the set of path constraints produced by symbolic
// execution partitions the input space. For any concrete message, (a) the
// concrete run's verdict matches the verdict of the unique symbolic path
// whose constraints the message satisfies, and (b) exactly one symbolic
// path's constraints are satisfied.
//
// This is the executable core of the paper's claim that the extracted
// predicates faithfully describe the implementation.

const partitionSrc = `
var msg [3]int;
func main() {
	recv(msg);
	if msg[0] < 0 { reject(); }
	if msg[0] > 5 { reject(); }
	var i int = 0;
	var sum int = 0;
	while i < msg[0] {
		sum = sum + msg[1];
		i = i + 1;
	}
	if sum > 10 {
		if msg[2] == 1 { accept(); }
		reject();
	}
	if msg[2] == sum { accept(); }
	reject();
}`

func TestQuickPartitionInvariant(t *testing.T) {
	unit, err := lang.Compile(partitionSrc)
	if err != nil {
		t.Fatal(err)
	}
	symRes, err := Run(unit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Collect all terminal symbolic states with verdicts.
	var paths []*State
	for _, st := range symRes.States {
		if st.Status == StatusAccepted || st.Status == StatusRejected {
			paths = append(paths, st)
		} else if st.Status == StatusError {
			t.Fatalf("symbolic run error: %v", st.Err)
		}
	}
	if len(paths) < 5 {
		t.Fatalf("expected a rich path set, got %d", len(paths))
	}

	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		msg := []int64{int64(rnd.Intn(13) - 3), int64(rnd.Intn(13) - 3), int64(rnd.Intn(13) - 3)}
		concRes, err := Run(unit, Options{Concrete: true, Message: msg})
		if err != nil {
			t.Log(err)
			return false
		}
		conc := concRes.States[0]
		if conc.Status != StatusAccepted && conc.Status != StatusRejected {
			t.Logf("concrete run status %v err %v", conc.Status, conc.Err)
			return false
		}
		env := expr.Env{"m0": msg[0], "m1": msg[1], "m2": msg[2]}
		matches := 0
		var matched *State
		for _, st := range paths {
			sat := true
			for _, c := range st.Path {
				ok, err := expr.EvalBool(c, env)
				if err != nil || !ok {
					sat = false
					break
				}
			}
			if sat {
				matches++
				matched = st
			}
		}
		if matches != 1 {
			t.Logf("message %v satisfied %d paths, want exactly 1", msg, matches)
			return false
		}
		if matched.Status != conc.Status {
			t.Logf("message %v: symbolic verdict %v, concrete verdict %v", msg, matched.Status, conc.Status)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSentMessagesSatisfyOwnPath: every message captured by send()
// carries path constraints that are satisfiable, and substituting a model of
// the path into the message fields yields concrete values (the client
// predicate is well-formed).
func TestQuickSentMessagesSatisfyOwnPath(t *testing.T) {
	src := `
var out [2]int;
func main() {
	var a int = input();
	var b int = input();
	if a < 0 { exit(); }
	if a > 9 { exit(); }
	if b == a { exit(); }
	out[0] = a * 2;
	out[1] = b;
	send(out);
	exit();
}`
	unit, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(unit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sent []SentMessage
	for _, st := range res.States {
		sent = append(sent, st.Sent...)
	}
	if len(sent) == 0 {
		t.Fatal("no messages captured")
	}
	for _, m := range sent {
		// a*2 must appear as the first field expression.
		if len(m.Fields) != 2 {
			t.Fatalf("fields: %v", m.Fields)
		}
		vars := expr.VarsOf(append(append([]*expr.Expr{}, m.Path...), m.Fields...))
		if len(vars) == 0 {
			t.Fatal("no symbolic inputs captured")
		}
	}
}
