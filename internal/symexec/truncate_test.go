package symexec_test

// Truncation semantics: a run cut off by MaxStates must say so. Both engines
// enforce the budget on the same counter (terminal states recorded), so the
// Truncated flag trips identically for sequential and parallel runs —
// regression tests for the silent-partial-result bug where a MaxStates hit
// yielded a partial Trojan class set flagged as complete.

import (
	"fmt"
	"testing"

	"achilles/internal/protocols/fsp"
	"achilles/internal/symexec"
)

func TestTruncatedFlagSequentialAndParallel(t *testing.T) {
	unit := fsp.ServerUnit()
	full, err := symexec.Run(unit, symexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Truncated {
		t.Fatal("untruncated run reports Truncated")
	}
	if full.Stats.States < 4 {
		t.Fatalf("FSP server model too small for a truncation test: %d terminals", full.Stats.States)
	}
	budget := full.Stats.States / 2
	for _, j := range []int{1, 4} {
		j := j
		t.Run(fmt.Sprintf("j%d", j), func(t *testing.T) {
			res, err := symexec.Run(unit, symexec.Options{MaxStates: budget, Parallelism: j})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Stats.Truncated {
				t.Fatalf("run with MaxStates=%d of %d terminals not flagged as truncated",
					budget, full.Stats.States)
			}
			if res.Stats.States >= full.Stats.States {
				t.Fatalf("truncated run recorded %d terminals, full run %d",
					res.Stats.States, full.Stats.States)
			}
		})
	}
}

// TestEngineReuseResetsTruncation: the MaxStates terminal counter is
// per-run, so a reused Engine explores the same tree every time instead of
// inheriting the previous run's count and truncating instantly.
func TestEngineReuseResetsTruncation(t *testing.T) {
	unit := fsp.ServerUnit()
	full, err := symexec.Run(unit, symexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := symexec.New(unit, symexec.Options{MaxStates: full.Stats.States / 2})
	first, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.States != first.Stats.States || !second.Stats.Truncated {
		t.Fatalf("second run on a reused engine diverged: first %+v, second %+v",
			first.Stats, second.Stats)
	}
}

// TestTruncationBudgetExactFit pins the boundary: a budget equal to the full
// terminal count completes the exploration and is NOT truncated (nothing was
// left on the worklist), for both engines.
func TestTruncationBudgetExactFit(t *testing.T) {
	unit := fsp.ServerUnit()
	full, err := symexec.Run(unit, symexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{1, 4} {
		res, err := symexec.Run(unit, symexec.Options{MaxStates: full.Stats.States, Parallelism: j})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Truncated {
			t.Errorf("j=%d: exact-budget run flagged as truncated", j)
		}
		if res.Stats.States != full.Stats.States {
			t.Errorf("j=%d: exact-budget run recorded %d terminals, want %d",
				j, res.Stats.States, full.Stats.States)
		}
	}
}
