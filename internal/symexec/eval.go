package symexec

import (
	"fmt"

	"achilles/internal/expr"
	"achilles/internal/lang"
)

// eval converts an NL expression into a symbolic expression against the
// state's stores. Pure builtins (input, symbolic, len) are evaluated here;
// in concrete mode input() pops from the provided input queue.
func (e *Engine) eval(st *State, fr *Frame, le lang.Expr) (*expr.Expr, error) {
	switch le := le.(type) {
	case *lang.IntLit:
		return expr.Const(le.Val), nil
	case *lang.BoolLit:
		return expr.Bool(le.Val), nil

	case *lang.VarExpr:
		switch le.Ref.Kind {
		case lang.RefConst:
			return expr.Const(le.Ref.Val), nil
		case lang.RefLocal, lang.RefGlobal:
			v := e.readVarRef(st, fr, le.Ref)
			if v.Sc == nil {
				return nil, fmt.Errorf("%s: %s is not a scalar", le.Pos_, le.Name)
			}
			return v.Sc, nil
		}
		return nil, fmt.Errorf("%s: unresolved identifier %s", le.Pos_, le.Name)

	case *lang.IndexExpr:
		av := e.readVarRef(st, fr, le.Ref)
		if av.Arr == nil {
			return nil, fmt.Errorf("%s: %s is not an array", le.Pos_, le.Name)
		}
		idx, err := e.eval(st, fr, le.Index)
		if err != nil {
			return nil, err
		}
		if !idx.IsConst() {
			return nil, fmt.Errorf("%s: symbolic array index is not supported (index %s)", le.Pos_, idx)
		}
		if idx.Val < 0 || idx.Val >= int64(len(av.Arr.Elems)) {
			return nil, fmt.Errorf("%s: index %d out of range [0,%d)", le.Pos_, idx.Val, len(av.Arr.Elems))
		}
		return av.Arr.Elems[idx.Val], nil

	case *lang.UnaryExpr:
		x, err := e.eval(st, fr, le.X)
		if err != nil {
			return nil, err
		}
		if le.Op == lang.TMinus {
			return expr.Neg(x), nil
		}
		return expr.Not(x), nil

	case *lang.BinaryExpr:
		x, err := e.eval(st, fr, le.X)
		if err != nil {
			return nil, err
		}
		y, err := e.eval(st, fr, le.Y)
		if err != nil {
			return nil, err
		}
		switch le.Op {
		case lang.TPlus:
			return expr.Add(x, y), nil
		case lang.TMinus:
			return expr.Sub(x, y), nil
		case lang.TStar:
			return expr.Mul(x, y), nil
		case lang.TSlash:
			if y.IsConst() && y.Val == 0 {
				return nil, fmt.Errorf("%s: division by zero", le.Pos_)
			}
			return expr.Div(x, y), nil
		case lang.TPercent:
			if y.IsConst() && y.Val == 0 {
				return nil, fmt.Errorf("%s: remainder by zero", le.Pos_)
			}
			return expr.Mod(x, y), nil
		case lang.TEq:
			return expr.Eq(x, y), nil
		case lang.TNe:
			return expr.Ne(x, y), nil
		case lang.TLt:
			return expr.Lt(x, y), nil
		case lang.TLe:
			return expr.Le(x, y), nil
		case lang.TGt:
			return expr.Gt(x, y), nil
		case lang.TGe:
			return expr.Ge(x, y), nil
		case lang.TAnd:
			return expr.And(x, y), nil
		case lang.TOr:
			return expr.Or(x, y), nil
		}
		return nil, fmt.Errorf("%s: bad binary op", le.Pos_)

	case *lang.CallExpr:
		switch le.Builtin {
		case lang.BInput, lang.BSymbolic:
			if e.opts.Concrete {
				if st.inputCursor >= len(e.opts.Inputs) {
					return nil, fmt.Errorf("%s: concrete input queue exhausted (%d consumed)", le.Pos_, st.inputCursor)
				}
				v := e.opts.Inputs[st.inputCursor]
				st.inputCursor++
				return expr.Const(v), nil
			}
			name := fmt.Sprintf("%s%d", e.opts.InputPrefix, st.varCounter)
			st.varCounter++
			return expr.Var(name), nil
		case lang.BLen:
			ve := le.Args[0].(*lang.VarExpr)
			av := e.readVarRef(st, fr, ve.Ref)
			if av.Arr == nil {
				return nil, fmt.Errorf("%s: len of non-array", le.Pos_)
			}
			return expr.Const(int64(len(av.Arr.Elems))), nil
		}
		return nil, fmt.Errorf("%s: call %s not allowed in expression", le.Pos_, le.Name)
	}
	return nil, fmt.Errorf("unhandled expression %T", le)
}
