package symexec

import (
	"context"
	"testing"
	"time"

	"achilles/internal/lang"
	"achilles/internal/testutil"
)

// wideSrc is a program with 2^12 fork-tree leaves: deep enough that a
// cancelled context reliably strikes mid-frontier, small enough that the
// full-run reference stays fast.
const wideSrc = `
var m [12]int;
var acc int;

func main() {
	recv(m);
	var i int = 0;
	acc = 0;
	while i < 12 {
		if m[i] > 0 { acc = acc + 1; }
		i = i + 1;
	}
	accept();
}`

func compileWide(t *testing.T) *lang.Unit {
	t.Helper()
	u, err := lang.Compile(wideSrc)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestRunCtxPreCancelled: a context cancelled before the run returns
// immediately with an empty-or-tiny truncated result, in both engines.
func TestRunCtxPreCancelled(t *testing.T) {
	u := compileWide(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 8} {
		res, err := RunCtx(ctx, u, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if !res.Stats.Cancelled || !res.Stats.Truncated {
			t.Fatalf("par=%d: stats = %+v, want Cancelled+Truncated", par, res.Stats)
		}
		if res.Stats.States > 2 {
			t.Fatalf("par=%d: pre-cancelled run still recorded %d states", par, res.Stats.States)
		}
	}
}

// TestRunCtxCancelMidFrontier cancels a wide exploration partway through and
// checks the abort contract: partial terminal set, Truncated+Cancelled set,
// every recorded state genuinely terminal, and no goroutines left behind.
func TestRunCtxCancelMidFrontier(t *testing.T) {
	u := compileWide(t)
	full, err := Run(u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Truncated {
		t.Fatal("full run unexpectedly truncated")
	}
	// Engine goroutines (workers + cancellation watcher) must all exit by the
	// end of the test.
	testutil.CheckGoroutineLeak(t)
	for _, par := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan *Result, 1)
		go func() {
			res, err := RunCtx(ctx, u, Options{Parallelism: par})
			if err != nil {
				t.Error(err)
			}
			done <- res
		}()
		time.Sleep(5 * time.Millisecond)
		cancel()
		res := <-done
		if !res.Stats.Cancelled || !res.Stats.Truncated {
			t.Fatalf("par=%d: stats = %+v, want Cancelled+Truncated", par, res.Stats)
		}
		if res.Stats.States >= full.Stats.States {
			t.Logf("par=%d: cancellation landed after completion (%d states) — timing, not a bug", par, res.Stats.States)
		}
		for _, st := range res.States {
			if st.Status == StatusRunning {
				t.Fatalf("par=%d: half-executed state recorded as terminal", par)
			}
		}
	}
}

// TestRunCtxDeadline: a deadline behaves like cancellation.
func TestRunCtxDeadline(t *testing.T) {
	u := compileWide(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	res, err := RunCtx(ctx, u, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Truncated {
		t.Fatalf("deadline run not truncated: %+v", res.Stats)
	}
}

// TestRunCtxBackgroundUnchanged: RunCtx with a background context is exactly
// Run — same terminal count, no truncation.
func TestRunCtxBackgroundUnchanged(t *testing.T) {
	u := compileWide(t)
	a, err := Run(u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), u, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.States != b.Stats.States || b.Stats.Cancelled || b.Stats.Truncated {
		t.Fatalf("background RunCtx diverged: seq %+v, par %+v", a.Stats, b.Stats)
	}
}
