package wire

// FuzzCodec is the native fuzz target the CI fuzz smoke runs: Decode must
// never panic on arbitrary bytes, every failure must be a typed
// *DecodeError with a known class, and a frame that decodes cleanly must
// re-encode to exactly itself (the codec's canonical-representation
// property — one byte string per message, which is what makes bundle
// content hashes of byte-level targets deterministic).

import (
	"bytes"
	"errors"
	"testing"
)

func FuzzCodec(f *testing.F) {
	s := testSchema()
	l := NewLift(s)
	if good, err := s.Encode([]int64{2, 2, 7, 6, 16}); err == nil {
		f.Add(good)
		f.Add(good[:len(good)-3])
		f.Add(append(append([]byte(nil), good...), 0x41))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, frame []byte) {
		msg, err := s.Decode(frame)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("Decode error is %T, want *DecodeError: %v", err, err)
			}
			if de.Outcome == OutcomeOK || de.Outcome.ConstName() == "" {
				t.Fatalf("Decode failed with unknown class %d", de.Outcome)
			}
			// The lift layer turns the same failure into a value.
			if lifted := l.LiftFrame(frame); lifted[WireField] != int64(de.Outcome) {
				t.Fatalf("LiftFrame class %d disagrees with Decode class %d",
					lifted[WireField], de.Outcome)
			}
			return
		}
		again, err := s.Encode(msg)
		if err != nil {
			t.Fatalf("decoded message %v does not re-encode: %v", msg, err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("Encode(Decode(frame)) != frame:\n in: % x\nout: % x", frame, again)
		}
	})
}
