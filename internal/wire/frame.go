package wire

// Length-prefixed framing: every frame is a big-endian uint16 payload
// length followed by exactly that many payload bytes. The prefix bounds a
// frame at 65535 payload bytes; schemas typically impose a much smaller
// MaxFrame on top. All parse failures are *DecodeError values so transports
// and tests can branch on the outcome class instead of matching strings.

import (
	"encoding/binary"
	"io"
)

// FrameOverhead is the size of the length prefix.
const FrameOverhead = 2

// MaxFramePayload is the largest payload the u16 prefix can describe.
const MaxFramePayload = 1<<16 - 1

// AppendFrame appends a length-prefixed frame carrying payload to dst and
// returns the extended slice. It fails with an *EncodeError when the
// payload exceeds max (or the prefix's own ceiling).
func AppendFrame(dst, payload []byte, max int) ([]byte, error) {
	if max <= 0 || max > MaxFramePayload {
		max = MaxFramePayload
	}
	if len(payload) > max {
		return nil, encodeErr("", "payload %d bytes exceeds max frame %d", len(payload), max)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(payload)))
	return append(dst, payload...), nil
}

// SplitFrame parses one complete frame from data and returns its payload.
// Failures are typed: a truncated prefix or payload is OutcomeShort, a
// prefix beyond max is OutcomeOversize, and bytes after the declared
// payload are OutcomeTrailing.
func SplitFrame(data []byte, max int) ([]byte, error) {
	if max <= 0 || max > MaxFramePayload {
		max = MaxFramePayload
	}
	if len(data) < FrameOverhead {
		return nil, decodeErr(OutcomeShort, "frame %d bytes, length prefix needs %d", len(data), FrameOverhead)
	}
	n := int(binary.BigEndian.Uint16(data))
	if n > max {
		return nil, decodeErr(OutcomeOversize, "length prefix %d exceeds max frame %d", n, max)
	}
	body := data[FrameOverhead:]
	if len(body) < n {
		return nil, decodeErr(OutcomeShort, "length prefix promises %d payload bytes, %d follow", n, len(body))
	}
	if len(body) > n {
		return nil, decodeErr(OutcomeTrailing, "%d bytes after the declared payload", len(body)-n)
	}
	return body[:n], nil
}

// ReadFrame reads one complete frame from r and returns the full frame
// bytes (prefix included). A clean EOF before the first byte returns
// io.EOF; a connection cut mid-prefix or mid-payload returns an
// OutcomeShort *DecodeError (io.ErrUnexpectedEOF folded into the typed
// error), and a prefix beyond max is OutcomeOversize — the caller can drop
// the connection without reading the oversized payload.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 || max > MaxFramePayload {
		max = MaxFramePayload
	}
	var prefix [FrameOverhead]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, decodeErr(OutcomeShort, "short read inside length prefix: %v", err)
	}
	n := int(binary.BigEndian.Uint16(prefix[:]))
	if n > max {
		return nil, decodeErr(OutcomeOversize, "length prefix %d exceeds max frame %d", n, max)
	}
	frame := make([]byte, FrameOverhead+n)
	copy(frame, prefix[:])
	if _, err := io.ReadFull(r, frame[FrameOverhead:]); err != nil {
		return nil, decodeErr(OutcomeShort, "short read inside payload: %v", err)
	}
	return frame, nil
}
