package wire

// Schema is the declarative building block for binary message layouts: a
// magic-tagged envelope followed by fixed-width big-endian integer fields
// and fixed-size opaque byte arrays, the whole payload carried in one
// length-prefixed frame. A Schema is a Codec: Encode renders a registry
// field vector as concrete frame bytes, Decode parses arbitrary bytes back
// with every failure typed by outcome class.

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// FieldKind classifies a wire field.
type FieldKind uint8

// Wire field kinds: big-endian unsigned integers of fixed width, and
// fixed-size opaque byte arrays (nonce/key material).
const (
	FieldU8 FieldKind = iota
	FieldU16
	FieldU32
	FieldBytes
)

// padXor derives a byte-array field's padding from its value bytes; see
// Field.decodeBytes.
const padXor = 0xA5

// Field is one wire field of a Schema.
type Field struct {
	// Name is the model-visible field name (it appears in FieldNames and in
	// trojan reports).
	Name string
	// Kind selects the wire representation.
	Kind FieldKind
	// Size is the on-wire byte count for FieldBytes (>= 8); derived from
	// Kind otherwise.
	Size int
}

// U8, U16 and U32 declare big-endian unsigned integer fields.
func U8(name string) Field  { return Field{Name: name, Kind: FieldU8} }
func U16(name string) Field { return Field{Name: name, Kind: FieldU16} }
func U32(name string) Field { return Field{Name: name, Kind: FieldU32} }

// Bytes declares a fixed-size opaque byte array of n >= 8 bytes — the
// building block for nonces, cookies and static-key material. The analysis
// sees an int64: the array's first 8 bytes, big-endian. The remaining n-8
// bytes are deterministic padding derived from the value, so the codec's
// representable slice of the 256^n byte space is exactly the int64 domain;
// any other byte content decodes to OutcomePad ("corrupt key material") and
// is explored by the analysis through the wire-status field like every
// other malformed input.
func Bytes(name string, n int) Field { return Field{Name: name, Kind: FieldBytes, Size: n} }

// Width is the field's on-wire byte count.
func (f Field) Width() int {
	switch f.Kind {
	case FieldU8:
		return 1
	case FieldU16:
		return 2
	case FieldU32:
		return 4
	case FieldBytes:
		return f.Size
	}
	return 0
}

// Bounded reports whether the field's decoded domain has a closed [0, Max]
// range (integer fields); Bytes fields decode to the full int64 domain.
func (f Field) Bounded() bool { return f.Kind != FieldBytes }

// Max is the largest value the field can decode to (integer fields only).
func (f Field) Max() int64 {
	switch f.Kind {
	case FieldU8:
		return 1<<8 - 1
	case FieldU16:
		return 1<<16 - 1
	case FieldU32:
		return 1<<32 - 1
	}
	return 0
}

func (f Field) kindString() string {
	switch f.Kind {
	case FieldU8:
		return "u8"
	case FieldU16:
		return "u16"
	case FieldU32:
		return "u32"
	case FieldBytes:
		return fmt.Sprintf("bytes%d", f.Size)
	}
	return "?"
}

// appendTo encodes value into dst, checking representability.
func (f Field) appendTo(dst []byte, v int64) ([]byte, error) {
	switch f.Kind {
	case FieldU8, FieldU16, FieldU32:
		if v < 0 || v > f.Max() {
			return nil, encodeErr(f.Name, "value %d outside %s range [0, %d]", v, f.kindString(), f.Max())
		}
		switch f.Kind {
		case FieldU8:
			return append(dst, byte(v)), nil
		case FieldU16:
			return binary.BigEndian.AppendUint16(dst, uint16(v)), nil
		default:
			return binary.BigEndian.AppendUint32(dst, uint32(v)), nil
		}
	case FieldBytes:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v))
		val := dst[len(dst)-8:]
		for j := 8; j < f.Size; j++ {
			dst = append(dst, val[j%8]^padXor)
		}
		return dst, nil
	}
	return nil, encodeErr(f.Name, "unknown field kind %d", f.Kind)
}

// decode parses exactly Width bytes into the field's value.
func (f Field) decode(b []byte) (int64, error) {
	switch f.Kind {
	case FieldU8:
		return int64(b[0]), nil
	case FieldU16:
		return int64(binary.BigEndian.Uint16(b)), nil
	case FieldU32:
		return int64(binary.BigEndian.Uint32(b)), nil
	case FieldBytes:
		v := int64(binary.BigEndian.Uint64(b[:8]))
		for j := 8; j < f.Size; j++ {
			if b[j] != b[j%8]^padXor {
				return 0, decodeErr(OutcomePad, "field %s: padding byte %d is %#02x, want %#02x",
					f.Name, j, b[j], b[j%8]^padXor)
			}
		}
		return v, nil
	}
	return 0, decodeErr(OutcomeShort, "field %s: unknown kind %d", f.Name, f.Kind)
}

// Schema is a complete wire message layout and the package's canonical
// Codec implementation.
type Schema struct {
	// Name identifies the schema (it seeds the Lift prelude comment and the
	// input-signature rendering).
	Name string
	// Magic is the envelope tag byte opening every payload; a frame whose
	// first payload byte differs decodes to OutcomeBadMagic.
	Magic byte
	// MaxFrame is the largest accepted payload size in bytes. It must be at
	// least PayloadSize; a length prefix beyond it is OutcomeOversize
	// before any payload byte is touched.
	MaxFrame int
	// Fields is the payload layout after the magic byte, in wire order.
	Fields []Field
}

// NewSchema builds and validates a schema. Invalid layouts (no fields,
// duplicate or empty names, Bytes fields under 8 bytes, MaxFrame below the
// payload size) are programming errors and panic.
func NewSchema(name string, magic byte, maxFrame int, fields ...Field) *Schema {
	s := &Schema{Name: name, Magic: magic, MaxFrame: maxFrame, Fields: fields}
	if name == "" {
		panic("wire: schema with empty name")
	}
	if len(fields) == 0 {
		panic("wire: schema " + name + " has no fields")
	}
	seen := map[string]bool{}
	for _, f := range fields {
		if f.Name == "" {
			panic("wire: schema " + name + " has an unnamed field")
		}
		if seen[f.Name] {
			panic("wire: schema " + name + " duplicates field " + f.Name)
		}
		seen[f.Name] = true
		if f.Kind == FieldBytes && f.Size < 8 {
			panic(fmt.Sprintf("wire: schema %s field %s: bytes fields need >= 8 bytes, have %d",
				name, f.Name, f.Size))
		}
		if f.Width() == 0 {
			panic(fmt.Sprintf("wire: schema %s field %s: unknown kind", name, f.Name))
		}
	}
	if s.MaxFrame == 0 {
		s.MaxFrame = s.PayloadSize()
	}
	if s.MaxFrame < s.PayloadSize() {
		panic(fmt.Sprintf("wire: schema %s: MaxFrame %d below payload size %d",
			name, s.MaxFrame, s.PayloadSize()))
	}
	// Strictly below the u16 prefix ceiling so that MaxFrame+1 is always
	// expressible as a length prefix (the OutcomeOversize exemplar).
	if s.MaxFrame >= MaxFramePayload {
		panic(fmt.Sprintf("wire: schema %s: MaxFrame %d must stay below the u16 prefix ceiling %d",
			name, s.MaxFrame, MaxFramePayload))
	}
	return s
}

// PayloadSize is the exact payload byte count of a well-formed message:
// the magic byte plus every field.
func (s *Schema) PayloadSize() int {
	n := 1
	for _, f := range s.Fields {
		n += f.Width()
	}
	return n
}

// NumFields implements Codec.
func (s *Schema) NumFields() int { return len(s.Fields) }

// Encode implements Codec: it renders the field vector as a complete
// length-prefixed frame, failing with an *EncodeError when the vector has
// the wrong arity or a value a field cannot represent.
func (s *Schema) Encode(msg []int64) ([]byte, error) {
	if len(msg) != len(s.Fields) {
		return nil, encodeErr("", "schema %s has %d fields, vector has %d", s.Name, len(s.Fields), len(msg))
	}
	payload := make([]byte, 0, s.PayloadSize())
	payload = append(payload, s.Magic)
	var err error
	for i, f := range s.Fields {
		if payload, err = f.appendTo(payload, msg[i]); err != nil {
			return nil, err
		}
	}
	return AppendFrame(nil, payload, s.MaxFrame)
}

// Decode implements Codec: it parses a complete frame back into the field
// vector. Every failure is a *DecodeError; Decode never panics, whatever
// the input.
func (s *Schema) Decode(frame []byte) ([]int64, error) {
	payload, err := SplitFrame(frame, s.MaxFrame)
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, decodeErr(OutcomeShort, "empty payload, magic byte missing")
	}
	if payload[0] != s.Magic {
		return nil, decodeErr(OutcomeBadMagic, "magic byte %#02x, want %#02x", payload[0], s.Magic)
	}
	rest := payload[1:]
	out := make([]int64, len(s.Fields))
	for i, f := range s.Fields {
		w := f.Width()
		if len(rest) < w {
			return nil, decodeErr(OutcomeShort, "payload ends inside field %s (%d of %d bytes)",
				f.Name, len(rest), w)
		}
		if out[i], err = f.decode(rest[:w]); err != nil {
			return nil, err
		}
		rest = rest[w:]
	}
	if len(rest) != 0 {
		return nil, decodeErr(OutcomeTrailing, "%d bytes after field %s", len(rest), s.Fields[len(s.Fields)-1].Name)
	}
	return out, nil
}

// Signature renders the schema canonically for input fingerprinting: two
// schemas with equal signatures describe byte-identical wire formats.
func (s *Schema) Signature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s magic=%#02x max-frame=%d", s.Name, s.Magic, s.MaxFrame)
	for _, f := range s.Fields {
		fmt.Fprintf(&b, " %s:%s", f.Name, f.kindString())
	}
	return b.String()
}
