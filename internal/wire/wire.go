// Package wire bridges real byte streams and the NL field-vector messages
// the rest of Achilles analyses. Every existing target speaks NL-model
// messages directly; production systems validate bytes — malformed frames,
// replayed handshakes, version-confused packets — so a byte-level target
// needs three things this package provides:
//
//   - a Codec between concrete wire bytes and the flat []int64 message
//     vectors the registry, the fuzzers and the replay oracles exchange;
//   - reusable binary building blocks: length-prefixed framing with a
//     maximum frame size and short-read handling (frame.go), big-endian
//     integer fields and fixed-size nonce/key byte arrays under a
//     magic-tagged, versioned envelope (schema.go);
//   - a Lift layer (lift.go) that maps decode outcomes — including decode
//     *errors* — onto NL-model predicates, so the symbolic engine explores
//     exactly the malformed-input space the codec can produce and nothing
//     else.
//
// The lifting contract is the heart of the package. A lifted message vector
// is
//
//	msg[0]   = wire status (OutcomeOK or a decode-error class)
//	msg[1..] = the schema's fields, in declaration order
//
// Correct clients only ever emit well-formed bytes, so client models pin
// msg[0] to WIRE_OK; a server model must reject every nonzero status (a
// real decoder fails structurally before the handler runs). Field domains
// are pinned by the wire format itself — a u8 field can never decode
// outside [0, 255] — and Lift.Guards renders those bounds as NL reject
// lines so the model and the codec cannot drift apart. Decode errors that
// bytes CAN produce (truncated frames, trailing garbage, a wrong magic,
// corrupt key-array padding) become concrete values of msg[0]: the symbolic
// engine explores them like any other field, and a server path that accepts
// one is a Trojan by construction.
//
// Lowering goes the other way: Lift.Lower turns an analysis vector back
// into concrete frame bytes — a clean encode for status WIRE_OK, and for a
// decode-error status an exemplar frame exhibiting exactly that error — so
// Trojan reports on lifted targets replay through real byte-speaking
// implementations (the §4 soundness guard runs over the wire, not over the
// AST).
package wire

import "fmt"

// Codec converts between concrete wire bytes and registry message vectors.
// Encode renders a field vector as a complete frame; Decode parses a frame
// back. Decode must never panic on arbitrary bytes; failures return a
// *DecodeError carrying the outcome class.
type Codec interface {
	// Encode renders the field vector (schema fields only, no wire-status
	// slot) as a complete length-prefixed frame.
	Encode(msg []int64) ([]byte, error)
	// Decode parses a complete frame back into the field vector. The error,
	// when non-nil, is a *DecodeError.
	Decode(frame []byte) ([]int64, error)
	// NumFields is the schema's field count (without the wire-status slot).
	NumFields() int
}

// Outcome classifies one Decode attempt. OutcomeOK is zero so that lifted
// message vectors read naturally: msg[0] == 0 means the frame decoded
// cleanly.
type Outcome int64

// Decode outcome classes. The values are wire-stable: they appear in NL
// model sources (via Lift.Prelude), in golden class sets and in persisted
// trojan reports, so new classes must be appended, never renumbered.
const (
	// OutcomeOK: the frame decoded cleanly into a field vector.
	OutcomeOK Outcome = 0
	// OutcomeShort: the frame or its payload is truncated — the length
	// prefix is cut off, promises more bytes than follow, or the payload
	// ends inside a field.
	OutcomeShort Outcome = 1
	// OutcomeOversize: the length prefix promises a payload beyond the
	// schema's maximum frame size.
	OutcomeOversize Outcome = 2
	// OutcomeTrailing: bytes follow the last field (or the frame carries
	// more bytes than its length prefix declares).
	OutcomeTrailing Outcome = 3
	// OutcomeBadMagic: the envelope's magic/tag byte is wrong.
	OutcomeBadMagic Outcome = 4
	// OutcomePad: a fixed-size byte-array field (nonce/key material) is not
	// in the codec's representable slice — its deterministic padding bytes
	// are corrupt. See FieldBytes.
	OutcomePad Outcome = 5

	// numOutcomes bounds the class enum (used by Lift.Lower validation).
	numOutcomes = 6
)

// String names the outcome class.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeShort:
		return "short"
	case OutcomeOversize:
		return "oversize"
	case OutcomeTrailing:
		return "trailing"
	case OutcomeBadMagic:
		return "bad-magic"
	case OutcomePad:
		return "bad-pad"
	}
	return fmt.Sprintf("outcome(%d)", int64(o))
}

// ConstName renders the outcome's NL constant name (WIRE_OK, WIRE_SHORT,
// ...), as emitted by Lift.Prelude.
func (o Outcome) ConstName() string {
	switch o {
	case OutcomeOK:
		return "WIRE_OK"
	case OutcomeShort:
		return "WIRE_SHORT"
	case OutcomeOversize:
		return "WIRE_OVERSIZE"
	case OutcomeTrailing:
		return "WIRE_TRAILING"
	case OutcomeBadMagic:
		return "WIRE_BADMAGIC"
	case OutcomePad:
		return "WIRE_BADPAD"
	}
	return ""
}

// Outcomes returns every decode-error class (OutcomeOK excluded), in enum
// order.
func Outcomes() []Outcome {
	return []Outcome{OutcomeShort, OutcomeOversize, OutcomeTrailing, OutcomeBadMagic, OutcomePad}
}

// DecodeError is the typed error every failed Decode returns: the outcome
// class plus a human-readable detail.
type DecodeError struct {
	Outcome Outcome
	Detail  string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: decode failed (%s): %s", e.Outcome, e.Detail)
}

// Is makes errors.Is(err, &DecodeError{Outcome: c}) match on the class
// alone, so callers can test for a specific decode failure without string
// comparison.
func (e *DecodeError) Is(target error) bool {
	t, ok := target.(*DecodeError)
	return ok && t.Outcome == e.Outcome
}

func decodeErr(o Outcome, format string, args ...any) *DecodeError {
	return &DecodeError{Outcome: o, Detail: fmt.Sprintf(format, args...)}
}

// EncodeError is the typed error Encode returns when a field vector is not
// representable on the wire (wrong arity, value outside a field's width).
type EncodeError struct {
	Field  string // field name, "" for vector-level failures
	Detail string
}

func (e *EncodeError) Error() string {
	if e.Field == "" {
		return "wire: encode failed: " + e.Detail
	}
	return fmt.Sprintf("wire: encode failed (field %s): %s", e.Field, e.Detail)
}

func encodeErr(field, format string, args ...any) *EncodeError {
	return &EncodeError{Field: field, Detail: fmt.Sprintf(format, args...)}
}
