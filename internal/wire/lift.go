package wire

// The Lift layer maps decode outcomes onto NL-model predicates. A lifted
// target's message vector carries the schema's fields behind one extra
// leading slot, the wire status: msg[0] is OutcomeOK when the frame
// decoded cleanly and a decode-error class otherwise. The symbolic engine
// then explores the malformed-byte space exactly as the codec partitions
// it — each error class is one concrete value of msg[0] — and any server
// path that accepts a nonzero status, or a field value the wire cannot
// carry, is a Trojan by construction.
//
// Lift also goes the other way: Lower turns an analysis vector back into
// real frame bytes, fabricating for each decode-error class an exemplar
// frame that provably exhibits it (Decode maps it back to the same class),
// so trojan reports replay through concrete byte-speaking implementations.

import (
	"fmt"
	"strings"
)

// WireField is the index of the wire-status slot in a lifted vector.
const WireField = 0

// Lift wraps a Schema with the NL lifting/lowering contract.
type Lift struct {
	S *Schema
}

// NewLift builds the lift layer over a schema.
func NewLift(s *Schema) *Lift { return &Lift{S: s} }

// NumFields is the lifted vector width: the wire-status slot plus every
// schema field.
func (l *Lift) NumFields() int { return 1 + len(l.S.Fields) }

// FieldNames is the lifted message layout for reports: "wire" followed by
// the schema's field names.
func (l *Lift) FieldNames() []string {
	names := make([]string, 0, l.NumFields())
	names = append(names, "wire")
	for _, f := range l.S.Fields {
		names = append(names, f.Name)
	}
	return names
}

// LiftFrame decodes a frame into a lifted vector: status OutcomeOK plus the
// decoded fields on success, the decode-error class with zeroed fields
// otherwise. It never fails — failure IS a value, that is the point.
func (l *Lift) LiftFrame(frame []byte) []int64 {
	out := make([]int64, l.NumFields())
	fields, err := l.S.Decode(frame)
	if err != nil {
		out[WireField] = int64(outcomeOf(err))
		return out
	}
	copy(out[1:], fields)
	return out
}

// outcomeOf extracts the class from a Decode error (OutcomeShort when the
// error is not a *DecodeError — it cannot happen through Schema.Decode).
func outcomeOf(err error) Outcome {
	if de, ok := err.(*DecodeError); ok {
		return de.Outcome
	}
	return OutcomeShort
}

// Lower renders a lifted vector as concrete frame bytes. Status OutcomeOK
// encodes the fields directly. A decode-error status produces an exemplar
// frame exhibiting exactly that class, built by corrupting the encoding of
// the vector's field part (fields that cannot encode fall back to zero
// values, which every schema can represent). Lower fails only on a wrong
// arity or an unknown status class.
func (l *Lift) Lower(msg []int64) ([]byte, error) {
	if len(msg) != l.NumFields() {
		return nil, encodeErr("", "lifted vector has %d slots, schema %s wants %d",
			len(msg), l.S.Name, l.NumFields())
	}
	status := msg[WireField]
	if status == int64(OutcomeOK) {
		return l.S.Encode(msg[1:])
	}
	if status < 0 || status >= numOutcomes {
		return nil, encodeErr("wire", "unknown decode-outcome class %d", status)
	}
	return l.Malform(Outcome(status), msg[1:])
}

// Malform fabricates a frame that decodes to exactly the given error class.
// The frame starts from an encoding of fields (zeroed where
// unrepresentable) and applies the class's canonical corruption. The
// Decode(Malform(c)) == c fixed point is pinned by the package tests for
// every class.
func (l *Lift) Malform(c Outcome, fields []int64) ([]byte, error) {
	base, err := l.S.Encode(fields)
	if err != nil {
		if base, err = l.S.Encode(make([]int64, len(l.S.Fields))); err != nil {
			return nil, err
		}
	}
	switch c {
	case OutcomeShort:
		// Cut the frame inside the last field: the length prefix promises
		// more payload bytes than follow.
		return base[:len(base)-1], nil
	case OutcomeOversize:
		// A length prefix beyond MaxFrame; the payload never matters.
		frame := []byte{byte((l.S.MaxFrame + 1) >> 8), byte(l.S.MaxFrame + 1)}
		return frame, nil
	case OutcomeTrailing:
		// One byte after the declared payload.
		return append(base, 0x00), nil
	case OutcomeBadMagic:
		frame := append([]byte(nil), base...)
		frame[FrameOverhead] ^= 0xFF
		return frame, nil
	case OutcomePad:
		// Corrupt the first padding byte of the first byte-array field.
		off := FrameOverhead + 1
		for _, f := range l.S.Fields {
			if f.Kind == FieldBytes {
				frame := append([]byte(nil), base...)
				frame[off+8] ^= 0xFF
				return frame, nil
			}
			off += f.Width()
		}
		return nil, encodeErr("", "schema %s has no bytes field to corrupt", l.S.Name)
	}
	return nil, encodeErr("", "unknown decode-outcome class %d", int64(c))
}

// Outcomes returns the decode-error classes this schema can actually
// produce (OutcomePad only exists when the schema has a byte-array field).
func (l *Lift) Outcomes() []Outcome {
	out := []Outcome{OutcomeShort, OutcomeOversize, OutcomeTrailing, OutcomeBadMagic}
	for _, f := range l.S.Fields {
		if f.Kind == FieldBytes {
			return append(out, OutcomePad)
		}
	}
	return out
}

// Prelude renders the NL source preamble a lifted model derives from the
// schema: the WIRE_* outcome constants and the lifted message declaration.
// Model sources are assembled as Prelude() + protocol constants + handler
// code, so the message layout in the model can never drift from the codec.
func (l *Lift) Prelude() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Lifted from wire schema %q: %s\n", l.S.Name, l.S.Signature())
	fmt.Fprintf(&b, "// msg[0] is the decode outcome; msg[1..%d] the wire fields.\n", len(l.S.Fields))
	for _, o := range append([]Outcome{OutcomeOK}, l.Outcomes()...) {
		fmt.Fprintf(&b, "const %s = %d;\n", o.ConstName(), int64(o))
	}
	fmt.Fprintf(&b, "var msg [%d]int;\n", l.NumFields())
	return b.String()
}

// Guards renders the NL server-side stanza every lifted model opens with:
// reject any frame that failed to decode, then pin each integer field to
// the domain its wire width permits — a u8 can never decode outside
// [0, 255], so the model must not explore (nor accidentally accept) values
// the codec cannot produce. Byte-array fields decode to the full int64
// domain and get no width guard.
func (l *Lift) Guards() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\t// Wire guards (derived from schema %q): a real decoder fails\n", l.S.Name)
	fmt.Fprintf(&b, "\t// structurally before the handler runs, and field domains are\n")
	fmt.Fprintf(&b, "\t// pinned by their wire widths.\n")
	fmt.Fprintf(&b, "\tif msg[0] != WIRE_OK { reject(); }\n")
	for i, f := range l.S.Fields {
		if !f.Bounded() {
			continue
		}
		fmt.Fprintf(&b, "\tif msg[%d] < 0 { reject(); }\n", i+1)
		fmt.Fprintf(&b, "\tif msg[%d] > %d { reject(); }\n", i+1, f.Max())
	}
	return b.String()
}

// Signature renders the lift layer canonically for input fingerprinting.
func (l *Lift) Signature() string {
	return fmt.Sprintf("lift/1 %s outcomes=%d", l.S.Signature(), numOutcomes)
}
