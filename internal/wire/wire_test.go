package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// testSchema mirrors the noisehs layout shape: envelope + small integers +
// a byte-array key field, with MaxFrame above the payload size so the
// schema-level trailing case is reachable.
func testSchema() *Schema {
	return NewSchema("test", 0xA7, 48,
		U8("version"),
		U8("type"),
		Bytes("keyid", 16),
		U32("nonce"),
		U32("cookie"),
	)
}

func TestSchemaRoundTrip(t *testing.T) {
	s := testSchema()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		msg := []int64{
			int64(r.Intn(256)),
			int64(r.Intn(256)),
			r.Int63() - r.Int63(), // full int64 domain, including negatives
			int64(r.Uint32()),
			int64(r.Uint32()),
		}
		frame, err := s.Encode(msg)
		if err != nil {
			t.Fatalf("Encode(%v): %v", msg, err)
		}
		got, err := s.Decode(frame)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", msg, err)
		}
		for j := range msg {
			if got[j] != msg[j] {
				t.Fatalf("round trip drift at field %d: sent %v, got %v", j, msg, got)
			}
		}
		// Decode→Encode is a fixed point too: a cleanly decoding frame has
		// exactly one byte representation.
		again, err := s.Encode(got)
		if err != nil {
			t.Fatalf("re-Encode(%v): %v", got, err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("Encode(Decode(frame)) != frame for %v", msg)
		}
	}
}

func TestEncodeTypedErrors(t *testing.T) {
	s := testSchema()
	for _, tc := range []struct {
		name string
		msg  []int64
	}{
		{"arity", []int64{1, 2, 3}},
		{"u8 negative", []int64{-1, 1, 0, 0, 0}},
		{"u8 overflow", []int64{256, 1, 0, 0, 0}},
		{"u32 overflow", []int64{1, 1, 0, 1 << 32, 0}},
		{"u32 negative", []int64{1, 1, 0, 0, -5}},
	} {
		if _, err := s.Encode(tc.msg); err == nil {
			t.Errorf("%s: Encode(%v) succeeded, want *EncodeError", tc.name, tc.msg)
		} else if _, ok := err.(*EncodeError); !ok {
			t.Errorf("%s: Encode error is %T, want *EncodeError", tc.name, err)
		}
	}
}

// wantOutcome asserts that Decode fails with exactly the given class.
func wantOutcome(t *testing.T, s *Schema, frame []byte, want Outcome) {
	t.Helper()
	_, err := s.Decode(frame)
	if err == nil {
		t.Fatalf("Decode(% x) succeeded, want outcome %s", frame, want)
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("Decode error is %T, want *DecodeError", err)
	}
	if de.Outcome != want {
		t.Fatalf("Decode(% x) outcome %s, want %s (%v)", frame, de.Outcome, want, err)
	}
	if !errors.Is(err, &DecodeError{Outcome: want}) {
		t.Fatalf("errors.Is on class %s failed", want)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	s := testSchema()
	good, err := s.Encode([]int64{2, 1, 7, 6, 16})
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at every possible cut point are all OutcomeShort.
	for cut := 0; cut < len(good); cut++ {
		// Cutting only the trailing part of the *frame* below the declared
		// length is short; cutting nothing is the clean decode.
		wantOutcome(t, s, good[:cut], OutcomeShort)
	}
	wantOutcome(t, s, nil, OutcomeShort)
	wantOutcome(t, s, []byte{0x00}, OutcomeShort)

	// Oversize: length prefix beyond MaxFrame.
	wantOutcome(t, s, []byte{0xFF, 0xFF}, OutcomeOversize)

	// Trailing, both flavours: bytes beyond the declared payload, and a
	// declared payload longer than the field structure (MaxFrame allows it).
	wantOutcome(t, s, append(append([]byte(nil), good...), 0xEE), OutcomeTrailing)
	long := append(append([]byte(nil), good[FrameOverhead:]...), 0xEE)
	framed, err := AppendFrame(nil, long, s.MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	wantOutcome(t, s, framed, OutcomeTrailing)

	// Wrong magic.
	bad := append([]byte(nil), good...)
	bad[FrameOverhead] ^= 0x01
	wantOutcome(t, s, bad, OutcomeBadMagic)

	// Corrupt key-array padding.
	pad := append([]byte(nil), good...)
	pad[FrameOverhead+1+2+8] ^= 0x01 // magic + version + type, 9th key byte
	wantOutcome(t, s, pad, OutcomePad)
}

func TestDecodeNeverPanicsOnArbitraryBytes(t *testing.T) {
	s := testSchema()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		frame := make([]byte, r.Intn(64))
		r.Read(frame)
		// Either outcome is fine; panicking is not.
		if msg, err := s.Decode(frame); err == nil {
			if again, err := s.Encode(msg); err != nil || !bytes.Equal(frame, again) {
				t.Fatalf("clean decode of % x does not re-encode to itself", frame)
			}
		}
	}
}

func TestReadFrame(t *testing.T) {
	s := testSchema()
	good, err := s.Encode([]int64{1, 1, 0, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Two back-to-back frames stream out intact.
	stream := append(append([]byte(nil), good...), good...)
	r := bytes.NewReader(stream)
	for i := 0; i < 2; i++ {
		frame, err := ReadFrame(r, s.MaxFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(frame, good) {
			t.Fatalf("frame %d drifted", i)
		}
	}
	if _, err := ReadFrame(r, s.MaxFrame); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}

	// A connection cut mid-payload is a typed short read, not io.EOF.
	if _, err := ReadFrame(bytes.NewReader(good[:5]), s.MaxFrame); !errors.Is(err, &DecodeError{Outcome: OutcomeShort}) {
		t.Fatalf("mid-payload cut: got %v, want OutcomeShort", err)
	}
	if _, err := ReadFrame(bytes.NewReader(good[:1]), s.MaxFrame); !errors.Is(err, &DecodeError{Outcome: OutcomeShort}) {
		t.Fatalf("mid-prefix cut: got %v, want OutcomeShort", err)
	}
	// An oversize prefix is refused before the payload is read.
	if _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 1, 2, 3}), s.MaxFrame); !errors.Is(err, &DecodeError{Outcome: OutcomeOversize}) {
		t.Fatalf("oversize prefix: got %v, want OutcomeOversize", err)
	}
}

func TestLiftFrameAndLower(t *testing.T) {
	l := NewLift(testSchema())
	msg := []int64{0, 2, 2, -44, 7, 16}
	frame, err := l.Lower(msg)
	if err != nil {
		t.Fatal(err)
	}
	got := l.LiftFrame(frame)
	if len(got) != l.NumFields() {
		t.Fatalf("lifted vector has %d slots, want %d", len(got), l.NumFields())
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("lift round trip drift: sent %v, got %v", msg, got)
		}
	}
	if names := l.FieldNames(); names[WireField] != "wire" || len(names) != 6 {
		t.Fatalf("FieldNames = %v", names)
	}
}

// TestMalformExemplarsDecodeToTheirClass pins the Lower/Malform contract:
// for every decode-error class the schema can produce, the fabricated
// exemplar frame decodes to exactly that class — so replaying a trojan
// vector with a nonzero wire status exercises the real decoder's matching
// failure path.
func TestMalformExemplarsDecodeToTheirClass(t *testing.T) {
	l := NewLift(testSchema())
	fields := []int64{1, 2, 5, 6, 14}
	for _, c := range l.Outcomes() {
		vec := append([]int64{int64(c)}, fields...)
		frame, err := l.Lower(vec)
		if err != nil {
			t.Fatalf("Lower(%s): %v", c, err)
		}
		got := l.LiftFrame(frame)
		if got[WireField] != int64(c) {
			t.Errorf("exemplar for %s decodes to class %d", c, got[WireField])
		}
	}
	// Unknown classes are refused, not fabricated.
	if _, err := l.Lower(append([]int64{99}, fields...)); err == nil {
		t.Error("Lower accepted an unknown outcome class")
	}
	// Unrepresentable field parts fall back to the zero vector instead of
	// failing the lowering: the class is what matters for replay.
	vec := append([]int64{int64(OutcomeShort)}, []int64{-1, 999, 0, -3, 0}...)
	frame, err := l.Lower(vec)
	if err != nil {
		t.Fatalf("Lower with unrepresentable fields: %v", err)
	}
	if got := l.LiftFrame(frame); got[WireField] != int64(OutcomeShort) {
		t.Errorf("fallback exemplar decodes to class %d, want %d", got[WireField], OutcomeShort)
	}
}

func TestPreludeAndGuards(t *testing.T) {
	l := NewLift(testSchema())
	pre := l.Prelude()
	for _, want := range []string{
		"const WIRE_OK = 0;",
		"const WIRE_SHORT = 1;",
		"const WIRE_OVERSIZE = 2;",
		"const WIRE_TRAILING = 3;",
		"const WIRE_BADMAGIC = 4;",
		"const WIRE_BADPAD = 5;",
		"var msg [6]int;",
	} {
		if !strings.Contains(pre, want) {
			t.Errorf("Prelude missing %q:\n%s", want, pre)
		}
	}
	g := l.Guards()
	for _, want := range []string{
		"if msg[0] != WIRE_OK { reject(); }",
		"if msg[1] > 255 { reject(); }",
		"if msg[4] > 4294967295 { reject(); }",
	} {
		if !strings.Contains(g, want) {
			t.Errorf("Guards missing %q:\n%s", want, g)
		}
	}
	// The byte-array field decodes to the full int64 domain: no width guard.
	if strings.Contains(g, "msg[3] >") {
		t.Errorf("Guards bound the bytes field:\n%s", g)
	}
}

// TestSchemaValidation pins that invalid layouts fail fast at construction.
func TestSchemaValidation(t *testing.T) {
	for name, build := range map[string]func(){
		"empty name":      func() { NewSchema("", 1, 0, U8("a")) },
		"no fields":       func() { NewSchema("s", 1, 0) },
		"dup field":       func() { NewSchema("s", 1, 0, U8("a"), U8("a")) },
		"short bytes":     func() { NewSchema("s", 1, 0, Bytes("k", 4)) },
		"tiny max frame":  func() { NewSchema("s", 1, 2, U32("a")) },
		"huge max frame":  func() { NewSchema("s", 1, MaxFramePayload, U8("a")) },
		"anonymous field": func() { NewSchema("s", 1, 0, U8("")) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("invalid schema did not panic")
				}
			}()
			build()
		})
	}
}
