package fuzz

// Random constraint-formula generation for the solver's differential test
// suite. The distribution is tuned to the shapes Achilles actually feeds the
// solver: conjunctions of linear comparisons over a small shared vocabulary
// (so complement pairs, repeated combinations and tight bands arise often),
// with occasional boolean structure (And/Or/Not) and, when enabled, atoms
// outside the linear fragment (variable products, division) that exercise
// the non-linear fallback.

import (
	"math/rand"

	"achilles/internal/expr"
)

// FormulaOptions bound the generated constraint systems.
type FormulaOptions struct {
	// Vars is the size of the variable vocabulary (x0..x{Vars-1}).
	Vars int
	// MaxConstraints caps the number of top-level conjuncts (at least 1).
	MaxConstraints int
	// ConstRange bounds the magnitude of generated constants; small ranges
	// keep enumeration exhaustive so verdicts are decisive.
	ConstRange int64
	// Nonlinear admits variable products and divisions at low frequency.
	Nonlinear bool
}

// DefaultFormulaOptions are the differential suite's settings.
func DefaultFormulaOptions() FormulaOptions {
	return FormulaOptions{Vars: 4, MaxConstraints: 6, ConstRange: 8}
}

// Formula generates one random constraint slice (a conjunction).
func Formula(r *rand.Rand, opts FormulaOptions) []*expr.Expr {
	if opts.Vars <= 0 {
		opts.Vars = 4
	}
	if opts.Vars > 10 {
		opts.Vars = 10 // single-digit names only
	}
	if opts.MaxConstraints <= 0 {
		opts.MaxConstraints = 6
	}
	if opts.ConstRange <= 0 {
		opts.ConstRange = 8
	}
	n := 1 + r.Intn(opts.MaxConstraints)
	out := make([]*expr.Expr, n)
	for i := range out {
		out[i] = boolExpr(r, opts, 2)
	}
	return out
}

// boolExpr generates a boolean-valued expression with bounded nesting.
func boolExpr(r *rand.Rand, opts FormulaOptions, depth int) *expr.Expr {
	if depth <= 0 {
		return atom(r, opts)
	}
	switch r.Intn(10) {
	case 0:
		return expr.And(boolExpr(r, opts, depth-1), boolExpr(r, opts, depth-1))
	case 1, 2:
		return expr.Or(boolExpr(r, opts, depth-1), boolExpr(r, opts, depth-1))
	case 3:
		return expr.Not(boolExpr(r, opts, depth-1))
	default:
		return atom(r, opts)
	}
}

// atom generates one comparison. Operands reuse a small set of linear
// combinations so that structurally related atoms (same combination,
// different constants/operators) dominate — the regime where clause
// learning, pairwise conflict detection and interning have to agree with
// the naive reference.
func atom(r *rand.Rand, opts FormulaOptions) *expr.Expr {
	lhs := linExpr(r, opts)
	rhs := expr.Const(r.Int63n(2*opts.ConstRange+1) - opts.ConstRange)
	switch r.Intn(6) {
	case 0:
		return expr.Eq(lhs, rhs)
	case 1:
		return expr.Ne(lhs, rhs)
	case 2:
		return expr.Lt(lhs, rhs)
	case 3:
		return expr.Le(lhs, rhs)
	case 4:
		return expr.Gt(lhs, rhs)
	default:
		return expr.Ge(lhs, rhs)
	}
}

// linExpr generates an arithmetic operand: a variable, a small linear
// combination, or (when enabled, rarely) a non-linear term.
func linExpr(r *rand.Rand, opts FormulaOptions) *expr.Expr {
	v := func() *expr.Expr { return expr.Var(varName(r.Intn(opts.Vars))) }
	if opts.Nonlinear && r.Intn(12) == 0 {
		switch r.Intn(3) {
		case 0:
			return expr.Mul(v(), v())
		case 1:
			return expr.Div(v(), expr.Const(1+r.Int63n(3)))
		default:
			return expr.Mod(v(), expr.Const(1+r.Int63n(5)))
		}
	}
	switch r.Intn(5) {
	case 0:
		return v()
	case 1:
		return expr.Add(v(), v())
	case 2:
		return expr.Sub(v(), v())
	case 3:
		c := 1 + r.Int63n(3)
		if r.Intn(2) == 0 {
			c = -c
		}
		return expr.Mul(expr.Const(c), v())
	default:
		return expr.Add(v(), expr.Const(r.Int63n(2*opts.ConstRange+1)-opts.ConstRange))
	}
}

func varName(i int) string {
	return "x" + string(rune('0'+i))
}
