// Package fuzz implements the black-box fuzzing baseline of §6.2.
//
// The fuzzer feeds random messages to the concrete interpretation of the
// server model — the same semantics the symbolic analysis explored — and
// counts how many are accepted and, with a ground-truth oracle, how many
// are Trojan. As in the paper, only the fields Achilles analyses are
// fuzzed; the annotated checksum fields are held at their expected
// constants (fuzzing them too only makes the baseline astronomically
// worse).
package fuzz

import (
	"math/rand"
	"time"

	"achilles/internal/lang"
	"achilles/internal/symexec"
)

// Generator produces one random message.
type Generator func(r *rand.Rand) []int64

// Oracle labels a message (ground truth for TP/FP accounting).
type Oracle func(msg []int64) bool

// Options configure a campaign.
type Options struct {
	// Tests is the number of messages to try.
	Tests int
	// Seed makes the campaign reproducible.
	Seed int64
	// Entry overrides the server entry point.
	Entry string
	// Inputs feeds any symbolic() local state in the server concretely.
	Inputs []int64
	// GlobalConcrete pins server globals.
	GlobalConcrete map[string]int64
}

// Result summarises a campaign.
type Result struct {
	Tests       int
	Accepted    int           // messages the server accepted
	Trojans     int           // accepted messages that are Trojan (oracle)
	Distinct    int           // distinct Trojan classes hit (if ClassKey set)
	Elapsed     time.Duration // wall time for the campaign
	TestsPerMin float64
}

// Campaign runs random messages against the concrete server model.
// classKey optionally maps a Trojan message to a coverage class; pass nil
// to skip class accounting.
func Campaign(server *lang.Unit, gen Generator, isTrojan Oracle,
	classKey func(msg []int64) string, opts Options) (*Result, error) {

	rnd := rand.New(rand.NewSource(opts.Seed))
	res := &Result{}
	classes := map[string]bool{}
	start := time.Now()
	for i := 0; i < opts.Tests; i++ {
		msg := gen(rnd)
		run, err := symexec.Run(server, symexec.Options{
			Entry:          opts.Entry,
			Concrete:       true,
			Message:        msg,
			Inputs:         opts.Inputs,
			GlobalConcrete: opts.GlobalConcrete,
		})
		if err != nil {
			return nil, err
		}
		res.Tests++
		if run.States[0].Status != symexec.StatusAccepted {
			continue
		}
		res.Accepted++
		if isTrojan != nil && isTrojan(msg) {
			res.Trojans++
			if classKey != nil {
				classes[classKey(msg)] = true
			}
		}
	}
	res.Elapsed = time.Since(start)
	res.Distinct = len(classes)
	if res.Elapsed > 0 {
		res.TestsPerMin = float64(res.Tests) / res.Elapsed.Minutes()
	}
	return res, nil
}

// ExpectedTrojansPerHour is the paper's analytic comparison (§6.2): given a
// measured throughput, the density of Trojan messages in the fuzzed space
// determines the expected number of Trojan discoveries per hour.
func ExpectedTrojansPerHour(testsPerMin float64, trojanDensity float64) float64 {
	return testsPerMin * 60 * trojanDensity
}
