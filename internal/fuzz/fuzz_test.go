package fuzz

import (
	"math/rand"
	"testing"

	"achilles/internal/lang"
)

const tinyServer = `
var msg [2]int;
func main() {
	recv(msg);
	if msg[0] != 1 { reject(); }
	if msg[1] < 0 { reject(); }
	if msg[1] > 9 { reject(); }
	accept();
}`

func TestCampaignCounts(t *testing.T) {
	unit := lang.MustCompile(tinyServer)
	gen := func(r *rand.Rand) []int64 {
		return []int64{int64(r.Intn(3)), int64(r.Intn(20) - 5)}
	}
	// Oracle: accepted messages with msg[1] == 7 are "Trojan" for the test.
	res, err := Campaign(unit, gen,
		func(m []int64) bool { return m[0] == 1 && m[1] == 7 },
		func(m []int64) string { return "c7" },
		Options{Tests: 2000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tests != 2000 {
		t.Fatalf("tests = %d", res.Tests)
	}
	if res.Accepted == 0 || res.Accepted == res.Tests {
		t.Fatalf("accepted = %d, expected a strict subset", res.Accepted)
	}
	if res.Trojans == 0 || res.Distinct != 1 {
		t.Fatalf("trojans = %d distinct = %d", res.Trojans, res.Distinct)
	}
	if res.TestsPerMin <= 0 {
		t.Fatalf("throughput not measured")
	}
}

func TestCampaignDeterministicBySeed(t *testing.T) {
	unit := lang.MustCompile(tinyServer)
	gen := func(r *rand.Rand) []int64 {
		return []int64{int64(r.Intn(3)), int64(r.Intn(20) - 5)}
	}
	run := func() int {
		res, err := Campaign(unit, gen, nil, nil, Options{Tests: 500, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res.Accepted
	}
	if run() != run() {
		t.Fatal("same seed must accept the same count")
	}
}

func TestExpectedTrojansPerHour(t *testing.T) {
	// 75,000 tests/min at density 66e6/1.8e19 — the paper's §6.2 numbers —
	// gives ~1.65e-5 expected Trojans per hour... the paper rounds to 1e-5.
	got := ExpectedTrojansPerHour(75000, 66e6/1.8e19)
	if got < 1e-6 || got > 1e-4 {
		t.Fatalf("expected/hour = %g, outside the paper's magnitude", got)
	}
}
