package fuzz

import (
	"math/rand"
	"testing"

	"achilles/internal/expr"
)

// TestFormulaDeterministic pins the generator: the differential suite keys
// on reproducible corpora, so identical seeds must yield identical formulas.
func TestFormulaDeterministic(t *testing.T) {
	opts := DefaultFormulaOptions()
	opts.Nonlinear = true
	a := rand.New(rand.NewSource(99))
	b := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		fa := Formula(a, opts)
		fb := Formula(b, opts)
		if len(fa) != len(fb) {
			t.Fatalf("iteration %d: lengths differ (%d vs %d)", i, len(fa), len(fb))
		}
		for j := range fa {
			if !expr.Equal(fa[j], fb[j]) {
				t.Fatalf("iteration %d, constraint %d: %v vs %v", i, j, fa[j], fb[j])
			}
		}
	}
}

// TestFormulaBounds checks the generator respects its vocabulary and size
// bounds (the differential budgets assume them).
func TestFormulaBounds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	opts := FormulaOptions{Vars: 3, MaxConstraints: 4, ConstRange: 5}
	for i := 0; i < 500; i++ {
		f := Formula(r, opts)
		if len(f) < 1 || len(f) > opts.MaxConstraints {
			t.Fatalf("formula size %d outside [1, %d]", len(f), opts.MaxConstraints)
		}
		for _, c := range f {
			for _, v := range expr.Vars(c) {
				if v != "x0" && v != "x1" && v != "x2" {
					t.Fatalf("variable %q outside the 3-var vocabulary in %v", v, c)
				}
			}
		}
	}
}

// TestFormulaZeroOptions checks the defaulting path.
func TestFormulaZeroOptions(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := Formula(r, FormulaOptions{})
	if len(f) == 0 {
		t.Fatal("zero options produced an empty formula")
	}
}
