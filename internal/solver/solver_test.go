package solver

import (
	"testing"

	"achilles/internal/expr"
)

func v(n string) *expr.Expr { return expr.Var(n) }
func c(x int64) *expr.Expr  { return expr.Const(x) }
func checkSat(t *testing.T, cs []*expr.Expr) expr.Env {
	t.Helper()
	s := Default()
	res, m := s.Check(cs)
	if res != Sat {
		t.Fatalf("expected sat, got %v for %v", res, cs)
	}
	for _, e := range cs {
		ok, err := expr.EvalBool(e, m)
		if err != nil || !ok {
			t.Fatalf("model %v does not satisfy %s (err=%v)", m, e, err)
		}
	}
	return m
}

func checkUnsat(t *testing.T, cs []*expr.Expr) {
	t.Helper()
	s := Default()
	res, _ := s.Check(cs)
	if res != Unsat {
		t.Fatalf("expected unsat, got %v for %v", res, cs)
	}
}

func TestTrivial(t *testing.T) {
	checkSat(t, nil)
	checkSat(t, []*expr.Expr{expr.True()})
	checkUnsat(t, []*expr.Expr{expr.False()})
}

func TestPaperExample(t *testing.T) {
	// From §3.2 of the paper: λ > 0 ∧ λ < -5 is unsat; λ > 0 ∧ λ < 5 is sat.
	lam := v("lambda")
	checkUnsat(t, []*expr.Expr{expr.Gt(lam, c(0)), expr.Lt(lam, c(-5))})
	m := checkSat(t, []*expr.Expr{expr.Gt(lam, c(0)), expr.Lt(lam, c(5))})
	if m["lambda"] <= 0 || m["lambda"] >= 5 {
		t.Fatalf("model out of range: %v", m)
	}
}

func TestIntervalConjunction(t *testing.T) {
	x := v("x")
	checkSat(t, []*expr.Expr{expr.Ge(x, c(10)), expr.Le(x, c(10))})
	checkUnsat(t, []*expr.Expr{expr.Ge(x, c(11)), expr.Le(x, c(10))})
	m := checkSat(t, []*expr.Expr{expr.Gt(x, c(-3)), expr.Lt(x, c(-1))})
	if m["x"] != -2 {
		t.Fatalf("only -2 possible, got %v", m)
	}
}

func TestEqualityChain(t *testing.T) {
	x, y, z := v("x"), v("y"), v("z")
	m := checkSat(t, []*expr.Expr{
		expr.Eq(x, expr.Add(y, c(1))),
		expr.Eq(y, expr.Add(z, c(1))),
		expr.Eq(z, c(5)),
	})
	if m["x"] != 7 || m["y"] != 6 {
		t.Fatalf("chain solved wrong: %v", m)
	}
}

func TestChecksumBackSubstitution(t *testing.T) {
	// crc = a + b + cc with a,b,cc bounded: the shape of the KV/FSP
	// checksum constraints.
	a, b, cc, crc := v("a"), v("b"), v("c"), v("crc")
	bounds := []*expr.Expr{
		expr.Ge(a, c(0)), expr.Lt(a, c(256)),
		expr.Ge(b, c(0)), expr.Lt(b, c(256)),
		expr.Ge(cc, c(0)), expr.Lt(cc, c(256)),
	}
	cs := append(bounds,
		expr.Eq(crc, expr.Add(a, expr.Add(b, cc))),
		expr.Eq(a, c(10)), expr.Eq(b, c(20)), expr.Eq(cc, c(30)))
	m := checkSat(t, cs)
	if m["crc"] != 60 {
		t.Fatalf("crc should be forced to 60, got %v", m)
	}
	// Inconsistent checksum must be unsat.
	cs = append(bounds,
		expr.Eq(crc, expr.Add(a, expr.Add(b, cc))),
		expr.Eq(a, c(10)), expr.Eq(b, c(20)), expr.Eq(cc, c(30)),
		expr.Eq(crc, c(61)))
	checkUnsat(t, cs)
}

func TestCoefficients(t *testing.T) {
	x, y := v("x"), v("y")
	// 2x + 3y == 12, 0<=x<=10, 0<=y<=10
	m := checkSat(t, []*expr.Expr{
		expr.Eq(expr.Add(expr.Mul(c(2), x), expr.Mul(c(3), y)), c(12)),
		expr.Ge(x, c(0)), expr.Le(x, c(10)),
		expr.Ge(y, c(0)), expr.Le(y, c(10)),
	})
	if 2*m["x"]+3*m["y"] != 12 {
		t.Fatalf("bad model %v", m)
	}
	// 2x == 7 has no integer solution.
	checkUnsat(t, []*expr.Expr{
		expr.Eq(expr.Mul(c(2), x), c(7)),
		expr.Ge(x, c(-100)), expr.Le(x, c(100)),
	})
}

func TestDisequalityBoundaries(t *testing.T) {
	x := v("x")
	// x in [5,6], x != 5, x != 6 => unsat
	checkUnsat(t, []*expr.Expr{
		expr.Ge(x, c(5)), expr.Le(x, c(6)),
		expr.Ne(x, c(5)), expr.Ne(x, c(6)),
	})
	// x in [5,7], x != 5, x != 7 => x = 6
	m := checkSat(t, []*expr.Expr{
		expr.Ge(x, c(5)), expr.Le(x, c(7)),
		expr.Ne(x, c(5)), expr.Ne(x, c(7)),
	})
	if m["x"] != 6 {
		t.Fatalf("want 6, got %v", m)
	}
}

func TestDisjunction(t *testing.T) {
	x := v("x")
	// (x < 0 || x > 100) && 0 <= x <= 100 => unsat
	checkUnsat(t, []*expr.Expr{
		expr.Or(expr.Lt(x, c(0)), expr.Gt(x, c(100))),
		expr.Ge(x, c(0)), expr.Le(x, c(100)),
	})
	// (x < 0 || x > 100) && x <= 100 => x < 0
	m := checkSat(t, []*expr.Expr{
		expr.Or(expr.Lt(x, c(0)), expr.Gt(x, c(100))),
		expr.Le(x, c(100)),
	})
	if m["x"] >= 0 {
		t.Fatalf("want negative, got %v", m)
	}
}

func TestNestedDisjunctions(t *testing.T) {
	x, y := v("x"), v("y")
	// (x=1 || x=2) && (y=3 || y=4) && x+y=6 => x=2,y=4
	m := checkSat(t, []*expr.Expr{
		expr.Or(expr.Eq(x, c(1)), expr.Eq(x, c(2))),
		expr.Or(expr.Eq(y, c(3)), expr.Eq(y, c(4))),
		expr.Eq(expr.Add(x, y), c(6)),
	})
	if m["x"]+m["y"] != 6 {
		t.Fatalf("bad model %v", m)
	}
	checkUnsat(t, []*expr.Expr{
		expr.Or(expr.Eq(x, c(1)), expr.Eq(x, c(2))),
		expr.Or(expr.Eq(y, c(3)), expr.Eq(y, c(4))),
		expr.Eq(expr.Add(x, y), c(100)),
	})
}

func TestKVTrojanQueryShape(t *testing.T) {
	// The §2.1 working example: the server accepts READ with address < 100
	// (signed, no lower check); the client only generates 0 <= address < 100.
	// Trojan query: server path ∧ negation of the client's address range.
	addr := v("m_address")
	serverPath := []*expr.Expr{expr.Lt(addr, c(100))}
	negClient := expr.Or(expr.Lt(addr, c(0)), expr.Ge(addr, c(100)))
	m := checkSat(t, append(serverPath, negClient))
	if m["m_address"] >= 0 {
		t.Fatalf("trojan address must be negative, got %v", m)
	}
	// With the fixed server (address >= 0 checked) there is no Trojan.
	fixed := []*expr.Expr{expr.Lt(addr, c(100)), expr.Ge(addr, c(0))}
	checkUnsat(t, append(fixed, negClient))
}

func TestUnboundedSat(t *testing.T) {
	// A single unbounded variable: boundary heuristics must still find a
	// model.
	x := v("x")
	m := checkSat(t, []*expr.Expr{expr.Gt(x, c(1000))})
	if m["x"] <= 1000 {
		t.Fatalf("bad model %v", m)
	}
}

func TestNonLinear(t *testing.T) {
	x, y := v("x"), v("y")
	// x*y == 12 with small bounds: solved by enumeration + verification.
	m := checkSat(t, []*expr.Expr{
		expr.Eq(expr.Mul(x, y), c(12)),
		expr.Ge(x, c(1)), expr.Le(x, c(12)),
		expr.Ge(y, c(1)), expr.Le(y, c(12)),
	})
	if m["x"]*m["y"] != 12 {
		t.Fatalf("bad model %v", m)
	}
	// x % 10 == 3 with x in [20, 29] => x = 23.
	m = checkSat(t, []*expr.Expr{
		expr.Eq(expr.Mod(x, c(10)), c(3)),
		expr.Ge(x, c(20)), expr.Le(x, c(29)),
	})
	if m["x"] != 23 {
		t.Fatalf("want 23, got %v", m)
	}
	checkUnsat(t, []*expr.Expr{
		expr.Eq(expr.Mod(x, c(10)), c(3)),
		expr.Ge(x, c(24)), expr.Le(x, c(29)),
		expr.Ne(x, c(24)), // kill nothing relevant; 33 not in range anyway
		expr.Lt(x, c(33)),
	})
}

func TestBudgetUnknown(t *testing.T) {
	// Force Unknown: equality over two huge-domain vars where boundary
	// heuristics fail and enumeration is impossible.
	s := New(Options{MaxDecisions: 10, MaxEnumDomain: 4})
	x, y := v("x"), v("y")
	res, _ := s.Check([]*expr.Expr{
		expr.Eq(expr.Mul(x, x), expr.Add(expr.Mul(y, y), c(123456789))),
		expr.Gt(x, c(1_000_000)), expr.Gt(y, c(1_000_000)),
	})
	if res == Sat {
		t.Fatalf("should not find a model with budget 10")
	}
	if s.Stats().Unknowns == 0 && res == Unknown {
		t.Fatalf("unknown counter not bumped")
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := Default()
	x := v("x")
	s.Check([]*expr.Expr{expr.Eq(x, c(5))})
	s.Check([]*expr.Expr{expr.Eq(x, c(6))})
	if s.Stats().Queries != 2 {
		t.Fatalf("queries = %d", s.Stats().Queries)
	}
	s.ResetStats()
	if s.Stats().Queries != 0 {
		t.Fatal("reset failed")
	}
}

func TestModelCoversAllVars(t *testing.T) {
	m := checkSat(t, []*expr.Expr{
		expr.Lt(v("a"), v("b")),
		expr.Lt(v("b"), v("c")),
		expr.Ge(v("a"), c(0)), expr.Le(v("c"), c(3)),
	})
	for _, name := range []string{"a", "b", "c"} {
		if _, ok := m[name]; !ok {
			t.Fatalf("model missing %s: %v", name, m)
		}
	}
}

func TestLineariseForms(t *testing.T) {
	x, y := v("x"), v("y")
	// (2x - 3y + 4) >= (y - 1)  =>  -2x + 4y - 5 <= 0
	e := expr.Ge(expr.Add(expr.Sub(expr.Mul(c(2), x), expr.Mul(c(3), y)), c(4)), expr.Sub(y, c(1)))
	la, ok := linearise(e)
	if !ok {
		t.Fatal("should linearise")
	}
	if la.op != opLe {
		t.Fatalf("op = %v", la.op)
	}
	coeff := map[string]int64{}
	for i, name := range la.vars {
		coeff[name] = la.coeffs[i]
	}
	if coeff["x"] != -2 || coeff["y"] != 4 || la.c != -5 {
		t.Fatalf("got coeffs %v c=%d", coeff, la.c)
	}
	if _, ok := linearise(expr.Eq(expr.Mul(x, y), c(1))); ok {
		t.Fatal("x*y should not linearise")
	}
	if _, ok := linearise(expr.Eq(expr.Div(x, c(2)), c(1))); ok {
		t.Fatal("x/2 should not linearise")
	}
	if _, ok := linearise(expr.Add(x, y)); ok {
		t.Fatal("non-comparison should not linearise")
	}
}
