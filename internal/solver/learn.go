package solver

// Conflict-set learning. Whenever the propagation layer refutes a
// conjunction — linearConflict on the linearised atoms, or interval
// propagation emptying a domain — the refuted set of interned atom IDs is
// recorded. Before any later conjunction is propagated (at DPLL split nodes
// via feasibleConj and at leaves via solveConj), the learned index is
// consulted first: an exact hit answers Unsat without re-deriving the
// refutation. Sibling split branches and the Trojan negation queries issued
// by the analysis re-build the same conjunctions thousands of times, so the
// exact-match form already removes the bulk of the repeated propagation work
// the PR 2 profile identified.
//
// Soundness and exactness:
//
//   - only refutations proved by the budget-free propagation layer are
//     recorded — never search outcomes (whose Unsat proofs are exhaustive
//     but whose cost is charged against the decision budget) and never
//     verdicts influenced by a cancelled context. A hit therefore replaces a
//     re-derivation that consumes no decision budget, so budget accounting —
//     and with it every budget-sensitive verdict and model — is unchanged;
//   - a hit only ever short-circuits to Unsat, and only for a conjunction
//     whose atom set was itself refuted, so no Sat subtree (and no model) is
//     ever skipped;
//   - keys are sorted, deduplicated ID sets: order-variants of one
//     conjunction alias deliberately, mirroring the sorted renderings the
//     verdict cache has always keyed on.
//
// The index is in-memory only. It is never persisted — IDs are per-solver
// and scheduling-dependent — so solver.Version bumps can never replay a
// stale learned clause from disk (see persist.go for the cache-file gate).

import (
	"encoding/binary"
	"sync"
)

// learnedCap bounds the learned index. Recording stops at the cap (no
// eviction): a full index keeps serving its hits, and correctness never
// depends on an insert landing.
const learnedCap = 1 << 16

// learnedSet is the mutex-guarded index of refuted conjunctions.
type learnedSet struct {
	mu sync.Mutex
	m  map[string]struct{}
}

func newLearnedSet() *learnedSet {
	return &learnedSet{m: make(map[string]struct{})}
}

// conflictKey encodes the sorted, deduplicated interned-ID set of a
// conjunction as a compact byte string.
func conflictKey(entries []*internEntry) string {
	ids := make([]uint64, 0, len(entries))
	for _, en := range entries {
		ids = append(ids, en.id)
	}
	// Insertion sort: conjunctions are small and mostly pre-sorted (prefix
	// atoms intern in path order).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	buf := make([]byte, 0, len(ids)*2)
	var last uint64
	for i, id := range ids {
		if i > 0 && id == last {
			continue
		}
		// Delta-encode against the previous ID: sorted sets varint-pack well.
		buf = binary.AppendUvarint(buf, id-last)
		last = id
	}
	return string(buf)
}

// has reports whether the conjunction key was previously refuted.
func (l *learnedSet) has(key string) bool {
	l.mu.Lock()
	_, ok := l.m[key]
	l.mu.Unlock()
	return ok
}

// add records a refuted conjunction key, dropping it when the index is full.
func (l *learnedSet) add(key string) {
	l.mu.Lock()
	if len(l.m) < learnedCap {
		l.m[key] = struct{}{}
	}
	l.mu.Unlock()
}

// size reports the number of learned conflict sets.
func (l *learnedSet) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}
