package solver

import (
	"fmt"
	"sync"
	"testing"

	"achilles/internal/expr"
)

// trojanShapedQueries builds a batch of queries of the shapes the Achilles
// pipeline issues: feasibility conjunctions, differentFrom membership pairs
// and negation disjunctions, over a few overlapping variables.
func trojanShapedQueries() [][]*expr.Expr {
	m0, m1, m2 := expr.Var("m0"), expr.Var("m1"), expr.Var("m2")
	var qs [][]*expr.Expr
	for k := int64(0); k < 24; k++ {
		qs = append(qs,
			[]*expr.Expr{expr.Ge(m0, expr.Const(k)), expr.Lt(m0, expr.Const(k+10))},
			[]*expr.Expr{expr.Eq(m1, expr.Add(m0, expr.Const(k))), expr.Gt(m0, expr.Const(0)), expr.Le(m1, expr.Const(50))},
			[]*expr.Expr{expr.Or(expr.Lt(m2, expr.Const(0)), expr.Ge(m2, expr.Const(k+1))), expr.Ne(m2, expr.Const(7))},
			[]*expr.Expr{expr.Eq(m0, expr.Const(k)), expr.Ne(m0, expr.Const(k))}, // unsat
		)
	}
	return qs
}

// TestConcurrentCheckMatchesSequential hammers one shared Solver from many
// goroutines and asserts every answer (and every Sat model, which Check
// verifies by evaluation before returning) matches the sequential baseline.
// Under -race this doubles as the data-race check for the stats counters and
// the sharded verdict cache.
func TestConcurrentCheckMatchesSequential(t *testing.T) {
	qs := trojanShapedQueries()
	baseline := New(Options{DisableCache: true})
	want := make([]Result, len(qs))
	for i, q := range qs {
		want[i], _ = baseline.Check(q)
	}

	shared := Default()
	const goroutines = 8
	const rounds = 5
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range qs {
					// Each goroutine walks the batch at a different offset so
					// cache hits and misses interleave.
					idx := (i + g*7) % len(qs)
					res, model := shared.Check(qs[idx])
					if res != want[idx] {
						errs <- fmt.Errorf("goroutine %d: query %d = %v, want %v", g, idx, res, want[idx])
						return
					}
					if res == Sat {
						for _, c := range qs[idx] {
							ok, err := expr.EvalBool(c, model)
							if err != nil || !ok {
								errs <- fmt.Errorf("goroutine %d: query %d: model %v fails %s", g, idx, model, c)
								return
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := shared.Stats()
	if st.CacheHits == 0 {
		t.Fatal("no cache hits across repeated identical queries")
	}
	if st.Queries != goroutines*rounds*len(qs) {
		t.Fatalf("query counter %d, want %d", st.Queries, goroutines*rounds*len(qs))
	}
}

// TestCacheKeyCanonicalisesOrder asserts reordered conjunctions share one
// cache entry.
func TestCacheKeyCanonicalisesOrder(t *testing.T) {
	s := Default()
	a := expr.Lt(expr.Var("x"), expr.Const(10))
	b := expr.Gt(expr.Var("x"), expr.Const(2))
	if res, _ := s.Check([]*expr.Expr{a, b}); res != Sat {
		t.Fatalf("want sat, got %v", res)
	}
	if res, _ := s.Check([]*expr.Expr{b, a}); res != Sat {
		t.Fatalf("want sat, got %v", res)
	}
	if st := s.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

// TestCachedModelIsIsolated asserts a caller mutating a returned model does
// not corrupt the cached copy handed to later callers.
func TestCachedModelIsIsolated(t *testing.T) {
	s := Default()
	q := []*expr.Expr{expr.Eq(expr.Var("y"), expr.Const(5))}
	_, m1 := s.Check(q)
	m1["y"] = 999
	_, m2 := s.Check(q)
	if m2["y"] != 5 {
		t.Fatalf("cached model was corrupted: y=%d", m2["y"])
	}
}

// TestCacheEviction fills one tiny shard far past its cap and checks the
// solver still answers correctly (eviction must never change verdicts).
func TestCacheEviction(t *testing.T) {
	s := New(Options{CacheShards: 1, CacheShardEntries: 8})
	x := expr.Var("x")
	for i := int64(0); i < 100; i++ {
		if res, _ := s.Check([]*expr.Expr{expr.Eq(x, expr.Const(i))}); res != Sat {
			t.Fatalf("query %d: want sat, got %v", i, res)
		}
	}
	// Re-ask the first (long-evicted) query.
	if res, model := s.Check([]*expr.Expr{expr.Eq(x, expr.Const(0))}); res != Sat || model["x"] != 0 {
		t.Fatalf("re-solve after eviction: %v %v", res, model)
	}
}
