package solver

import (
	"fmt"
	"strings"

	"achilles/internal/expr"
)

// linOp is the normalised comparison operator of a linear atom.
type linOp uint8

const (
	opLe linOp = iota // sum + c <= 0
	opEq              // sum + c == 0
	opNe              // sum + c != 0
)

// linAtom is a comparison normalised to  Σ coeffs[i]·vars[i] + c  OP  0.
// vars holds unique names; coeffs are the folded coefficients.
type linAtom struct {
	op     linOp
	vars   []string
	coeffs []int64
	c      int64
	orig   *expr.Expr
}

// linearise converts a comparison expression into a linear atom. It returns
// false when the expression is not a comparison or contains non-linear
// arithmetic (division, remainder, variable products).
func linearise(e *expr.Expr) (*linAtom, bool) {
	switch e.Kind {
	case expr.KEq, expr.KNe, expr.KLt, expr.KLe, expr.KGt, expr.KGe:
	default:
		return nil, false
	}
	acc := map[string]int64{}
	c := int64(0)
	if !collectLinear(e.Args[0], 1, acc, &c) {
		return nil, false
	}
	if !collectLinear(e.Args[1], -1, acc, &c) {
		return nil, false
	}
	la := &linAtom{orig: e}
	switch e.Kind {
	case expr.KEq:
		la.op = opEq
	case expr.KNe:
		la.op = opNe
	case expr.KLe:
		la.op = opLe
	case expr.KLt:
		la.op = opLe
		c = satAdd(c, 1) // a < 0  <=>  a + 1 <= 0 over the integers
	case expr.KGe:
		la.op = opLe
		negateAcc(acc)
		c = satNeg(c)
	case expr.KGt:
		la.op = opLe
		negateAcc(acc)
		c = satAdd(satNeg(c), 1)
	}
	la.c = c
	// Deterministic ordering: the expression's variable order is stable
	// because expr.Vars sorts names.
	for _, v := range expr.Vars(e) {
		if acc[v] != 0 {
			la.vars = append(la.vars, v)
			la.coeffs = append(la.coeffs, acc[v])
		}
	}
	return la, true
}

func negateAcc(acc map[string]int64) {
	for k, v := range acc {
		acc[k] = satNeg(v)
	}
}

// key returns a canonical fingerprint of the atom's linear combination
// (variables and coefficients, excluding the constant and operator), plus
// whether the stored form is negated relative to the canonical orientation.
// Canonical orientation: the first coefficient is positive.
func (la *linAtom) key() (string, bool) {
	if len(la.vars) == 0 {
		return "", false
	}
	negated := la.coeffs[0] < 0
	var b strings.Builder
	for i, v := range la.vars {
		c := la.coeffs[i]
		if negated {
			c = satNeg(c)
		}
		fmt.Fprintf(&b, "%s*%d;", v, c)
	}
	return b.String(), negated
}

// orientedC returns the atom's constant in canonical orientation.
func (la *linAtom) orientedC(negated bool) int64 {
	if negated {
		return satNeg(la.c)
	}
	return la.c
}

// linearConflict detects contradictions between pairs of linear atoms over
// the same combination of variables — cases interval propagation cannot see
// when the variables are individually unbounded, e.g.
//
//	x - y == 0  ∧  x - y != 0          (complement pair)
//	x - y == 1  ∧  x - y == 2          (distinct equalities)
//	x - y <= -1 ∧  y - x <= 0          (empty band)
//
// These shapes dominate Achilles' Trojan queries over shared state.
func linearConflict(atoms []*linAtom) bool {
	type info struct {
		eqSet  map[int64]bool // S + c == 0 seen
		neSet  map[int64]bool // S + c != 0 seen
		leMin  int64          // tightest S <= -c  =>  upper bound of S
		hasLe  bool
		geMax  int64 // from negated-orientation Le: lower bound of S
		hasGe  bool
		eqOnce bool
		eqC    int64
	}
	m := map[string]*info{}
	get := func(k string) *info {
		if v, ok := m[k]; ok {
			return v
		}
		v := &info{eqSet: map[int64]bool{}, neSet: map[int64]bool{}}
		m[k] = v
		return v
	}
	for _, a := range atoms {
		k, neg := a.key()
		if k == "" {
			continue
		}
		in := get(k)
		c := a.orientedC(neg)
		switch a.op {
		case opEq:
			if in.neSet[c] {
				return true
			}
			if in.eqOnce && in.eqC != c {
				return true
			}
			in.eqOnce, in.eqC = true, c
			in.eqSet[c] = true
			if in.hasLe && satNeg(c) > in.leMin {
				return true
			}
			if in.hasGe && satNeg(c) < in.geMax {
				return true
			}
		case opNe:
			if in.eqSet[c] {
				return true
			}
			in.neSet[c] = true
		case opLe:
			// Stored: Σ coeff·x + a.c <= 0. In canonical orientation S:
			// if not negated: S <= -c (upper bound); else -S + |c|... the
			// orientation flip turns it into a lower bound: S >= c'.
			if !neg {
				ub := satNeg(a.c)
				if !in.hasLe || ub < in.leMin {
					in.hasLe, in.leMin = true, ub
				}
			} else {
				// Original: (-S) + a.c <= 0  =>  S >= a.c.
				lb := a.c
				if !in.hasGe || lb > in.geMax {
					in.hasGe, in.geMax = true, lb
				}
			}
			if in.hasLe && in.hasGe && in.geMax > in.leMin {
				return true
			}
			if in.eqOnce && in.hasLe && satNeg(in.eqC) > in.leMin {
				return true
			}
			if in.eqOnce && in.hasGe && satNeg(in.eqC) < in.geMax {
				return true
			}
		}
	}
	return false
}

// collectLinear accumulates sign*e into acc/c, returning false on non-linear
// structure.
func collectLinear(e *expr.Expr, sign int64, acc map[string]int64, c *int64) bool {
	switch e.Kind {
	case expr.KConst:
		*c = satAdd(*c, satMul(sign, e.Val))
		return true
	case expr.KVar:
		acc[e.Name] = satAdd(acc[e.Name], sign)
		return true
	case expr.KNeg:
		return collectLinear(e.Args[0], satNeg(sign), acc, c)
	case expr.KAdd:
		return collectLinear(e.Args[0], sign, acc, c) && collectLinear(e.Args[1], sign, acc, c)
	case expr.KSub:
		return collectLinear(e.Args[0], sign, acc, c) && collectLinear(e.Args[1], satNeg(sign), acc, c)
	case expr.KMul:
		a, b := e.Args[0], e.Args[1]
		if a.IsConst() {
			return collectLinear(b, satMul(sign, a.Val), acc, c)
		}
		if b.IsConst() {
			return collectLinear(a, satMul(sign, b.Val), acc, c)
		}
		return false
	default:
		return false
	}
}
