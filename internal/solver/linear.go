package solver

import (
	"fmt"
	"strings"

	"achilles/internal/expr"
)

// linOp is the normalised comparison operator of a linear atom.
type linOp uint8

const (
	opLe linOp = iota // sum + c <= 0
	opEq              // sum + c == 0
	opNe              // sum + c != 0
)

// linAtom is a comparison normalised to  Σ coeffs[i]·vars[i] + c  OP  0.
// vars holds unique names; coeffs are the folded coefficients.
type linAtom struct {
	op     linOp
	vars   []string
	coeffs []int64
	c      int64
	orig   *expr.Expr

	// ckey/cneg cache key(): atoms are interned and shared across queries
	// (and goroutines), so the canonical fingerprint is rendered once at
	// linearise time instead of per linearConflict scan.
	ckey string
	cneg bool
	// ckeyID is the arena-assigned small integer for ckey (0 = unassigned).
	// Two atoms of one solver share a combination iff their IDs are equal
	// and nonzero, which lets linearConflict detect "no shared combination"
	// with integer compares instead of string-keyed maps.
	ckeyID uint32
}

// linearise converts a comparison expression into a linear atom. It returns
// false when the expression is not a comparison or contains non-linear
// arithmetic (division, remainder, variable products).
func linearise(e *expr.Expr) (*linAtom, bool) {
	switch e.Kind {
	case expr.KEq, expr.KNe, expr.KLt, expr.KLe, expr.KGt, expr.KGe:
	default:
		return nil, false
	}
	acc := map[string]int64{}
	c := int64(0)
	if !collectLinear(e.Args[0], 1, acc, &c) {
		return nil, false
	}
	if !collectLinear(e.Args[1], -1, acc, &c) {
		return nil, false
	}
	la := &linAtom{orig: e}
	switch e.Kind {
	case expr.KEq:
		la.op = opEq
	case expr.KNe:
		la.op = opNe
	case expr.KLe:
		la.op = opLe
	case expr.KLt:
		la.op = opLe
		c = satAdd(c, 1) // a < 0  <=>  a + 1 <= 0 over the integers
	case expr.KGe:
		la.op = opLe
		negateAcc(acc)
		c = satNeg(c)
	case expr.KGt:
		la.op = opLe
		negateAcc(acc)
		c = satAdd(satNeg(c), 1)
	}
	la.c = c
	// Deterministic ordering: the expression's variable order is stable
	// because expr.Vars sorts names.
	for _, v := range expr.Vars(e) {
		if acc[v] != 0 {
			la.vars = append(la.vars, v)
			la.coeffs = append(la.coeffs, acc[v])
		}
	}
	la.ckey, la.cneg = la.key()
	return la, true
}

func negateAcc(acc map[string]int64) {
	for k, v := range acc {
		acc[k] = satNeg(v)
	}
}

// key returns a canonical fingerprint of the atom's linear combination
// (variables and coefficients, excluding the constant and operator), plus
// whether the stored form is negated relative to the canonical orientation.
// Canonical orientation: the first coefficient is positive.
func (la *linAtom) key() (string, bool) {
	if len(la.vars) == 0 {
		return "", false
	}
	negated := la.coeffs[0] < 0
	var b strings.Builder
	for i, v := range la.vars {
		c := la.coeffs[i]
		if negated {
			c = satNeg(c)
		}
		fmt.Fprintf(&b, "%s*%d;", v, c)
	}
	return b.String(), negated
}

// orientedC returns the atom's constant in canonical orientation.
func (la *linAtom) orientedC(negated bool) int64 {
	if negated {
		return satNeg(la.c)
	}
	return la.c
}

// linearConflict detects contradictions between pairs of linear atoms over
// the same combination of variables — cases interval propagation cannot see
// when the variables are individually unbounded, e.g.
//
//	x - y == 0  ∧  x - y != 0          (complement pair)
//	x - y == 1  ∧  x - y == 2          (distinct equalities)
//	x - y <= -1 ∧  y - x <= 0          (empty band)
//
// These shapes dominate Achilles' Trojan queries over shared state.
func linearConflict(atoms []*linAtom) bool {
	// Fast path: a conflict needs at least two atoms over the same canonical
	// combination, and interned atoms carry an integer ID per combination.
	// When all IDs are distinct (the common case for a freshly extended
	// path), no conflict is possible and the string-keyed bookkeeping below
	// — maps allocated per call — is skipped entirely. An unassigned ID
	// (atom built outside the arena) conservatively forces the full scan.
	var idBuf [64]uint32
	seen := idBuf[:0]
	dup := false
scan:
	for _, a := range atoms {
		if a.ckey == "" {
			continue
		}
		if a.ckeyID == 0 {
			dup = true
			break
		}
		for _, id := range seen {
			if id == a.ckeyID {
				dup = true
				break scan
			}
		}
		seen = append(seen, a.ckeyID)
	}
	if !dup {
		return false
	}
	// Slow path: at least two atoms share a combination. Group atoms by
	// combination with pairwise ID compares and run the per-combination
	// bookkeeping on stack-allocated state — groups are tiny, so linear
	// scans over small constant slices replace the string-keyed maps this
	// used to allocate per call.
	n := len(atoms)
	var doneBuf [128]bool
	var done []bool
	if n <= len(doneBuf) {
		done = doneBuf[:n]
	} else {
		done = make([]bool, n)
	}
	sameComb := func(a, b *linAtom) bool {
		if a.ckeyID != 0 && b.ckeyID != 0 {
			return a.ckeyID == b.ckeyID
		}
		return a.ckey == b.ckey
	}
	for i := 0; i < n; i++ {
		if done[i] || atoms[i].ckey == "" {
			continue
		}
		var g combGroup
		if g.add(atoms[i]) {
			return true
		}
		for j := i + 1; j < n; j++ {
			if done[j] || atoms[j].ckey == "" || !sameComb(atoms[i], atoms[j]) {
				continue
			}
			done[j] = true
			if g.add(atoms[j]) {
				return true
			}
		}
	}
	return false
}

// combGroup accumulates the atoms of one canonical combination S and detects
// contradictions among them. The zero value is ready to use.
type combGroup struct {
	eqBuf  [4]int64
	neBuf  [4]int64
	eqs    []int64 // S + c == 0 seen
	nes    []int64 // S + c != 0 seen
	leMin  int64   // tightest S <= -c  =>  upper bound of S
	hasLe  bool
	geMax  int64 // from negated-orientation Le: lower bound of S
	hasGe  bool
	eqOnce bool
	eqC    int64
}

func containsI64(xs []int64, v int64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// add folds one atom into the group, reporting whether it contradicts what
// came before. The transitions mirror the original map-based scan exactly.
func (g *combGroup) add(a *linAtom) bool {
	c := a.orientedC(a.cneg)
	switch a.op {
	case opEq:
		if containsI64(g.nes, c) {
			return true
		}
		if g.eqOnce && g.eqC != c {
			return true
		}
		g.eqOnce, g.eqC = true, c
		if g.eqs == nil {
			g.eqs = g.eqBuf[:0]
		}
		g.eqs = append(g.eqs, c)
		if g.hasLe && satNeg(c) > g.leMin {
			return true
		}
		if g.hasGe && satNeg(c) < g.geMax {
			return true
		}
	case opNe:
		if containsI64(g.eqs, c) {
			return true
		}
		if g.nes == nil {
			g.nes = g.neBuf[:0]
		}
		g.nes = append(g.nes, c)
	case opLe:
		// Stored: Σ coeff·x + a.c <= 0. In canonical orientation S:
		// if not negated: S <= -c (upper bound); else the orientation flip
		// turns it into a lower bound: S >= a.c.
		if !a.cneg {
			ub := satNeg(a.c)
			if !g.hasLe || ub < g.leMin {
				g.hasLe, g.leMin = true, ub
			}
		} else {
			lb := a.c
			if !g.hasGe || lb > g.geMax {
				g.hasGe, g.geMax = true, lb
			}
		}
		if g.hasLe && g.hasGe && g.geMax > g.leMin {
			return true
		}
		if g.eqOnce && g.hasLe && satNeg(g.eqC) > g.leMin {
			return true
		}
		if g.eqOnce && g.hasGe && satNeg(g.eqC) < g.geMax {
			return true
		}
	}
	return false
}

// collectLinear accumulates sign*e into acc/c, returning false on non-linear
// structure.
func collectLinear(e *expr.Expr, sign int64, acc map[string]int64, c *int64) bool {
	switch e.Kind {
	case expr.KConst:
		*c = satAdd(*c, satMul(sign, e.Val))
		return true
	case expr.KVar:
		acc[e.Name] = satAdd(acc[e.Name], sign)
		return true
	case expr.KNeg:
		return collectLinear(e.Args[0], satNeg(sign), acc, c)
	case expr.KAdd:
		return collectLinear(e.Args[0], sign, acc, c) && collectLinear(e.Args[1], sign, acc, c)
	case expr.KSub:
		return collectLinear(e.Args[0], sign, acc, c) && collectLinear(e.Args[1], satNeg(sign), acc, c)
	case expr.KMul:
		a, b := e.Args[0], e.Args[1]
		if a.IsConst() {
			return collectLinear(b, satMul(sign, a.Val), acc, c)
		}
		if b.IsConst() {
			return collectLinear(a, satMul(sign, b.Val), acc, c)
		}
		return false
	default:
		return false
	}
}
