package solver

import (
	"context"
	"testing"

	"achilles/internal/expr"
)

// hardQuery builds a conjunction the solver can only decide by enumerating a
// large cross product: k variables over a wide domain tied together by a
// non-linear atom that blocks propagation from finishing the job.
func hardQuery(k int) []*expr.Expr {
	var cs []*expr.Expr
	prod := expr.Const(1)
	for i := 0; i < k; i++ {
		v := expr.Var("v" + string(rune('a'+i)))
		cs = append(cs, expr.Le(expr.Const(0), v), expr.Le(v, expr.Const(1000)))
		prod = expr.Mul(prod, v)
	}
	// Unsatisfiable in the boxed domain, but the product keeps the atoms
	// non-linear so only search can refute it.
	cs = append(cs, expr.Eq(prod, expr.Const(-7)))
	return cs
}

// TestCheckCtxCancelledAnswersUnknown: a context cancelled before the call
// aborts immediately with Unknown instead of burning the decision budget.
func TestCheckCtxCancelledAnswersUnknown(t *testing.T) {
	s := New(Options{DisableCache: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _ := s.CheckCtx(ctx, hardQuery(3))
	if res != Unknown {
		t.Fatalf("cancelled CheckCtx = %v, want Unknown", res)
	}
	// The abort must be cheap: nowhere near the full decision budget.
	if d := s.Stats().Decisions; d > 1000 {
		t.Fatalf("cancelled query still tried %d decisions", d)
	}
}

// TestCheckCtxCancelledNotCached: an Unknown produced by cancellation must
// not be memoised — the same query on a live context gets a real verdict.
func TestCheckCtxCancelledNotCached(t *testing.T) {
	s := New(Options{})
	q := []*expr.Expr{
		expr.Eq(expr.Var("x"), expr.Const(4)),
		expr.Le(expr.Var("x"), expr.Const(10)),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, _ := s.CheckCtx(ctx, q); res != Unknown {
		t.Fatalf("cancelled CheckCtx = %v, want Unknown", res)
	}
	res, model := s.Check(q)
	if res != Sat {
		t.Fatalf("fresh Check after cancelled one = %v, want Sat", res)
	}
	if model["x"] != 4 {
		t.Fatalf("model = %v, want x=4", model)
	}
}

// TestCheckCtxLiveContextMatchesCheck: with a never-cancelled context the
// verdicts are identical to plain Check — cancellation support must not
// perturb results.
func TestCheckCtxLiveContextMatchesCheck(t *testing.T) {
	a, b := New(Options{}), New(Options{})
	queries := [][]*expr.Expr{
		{expr.Eq(expr.Var("x"), expr.Const(1))},
		{expr.Eq(expr.Var("x"), expr.Const(1)), expr.Ne(expr.Var("x"), expr.Const(1))},
		hardQuery(2),
	}
	for i, q := range queries {
		r1, _ := a.Check(q)
		r2, _ := b.CheckCtx(context.Background(), q)
		if r1 != r2 {
			t.Fatalf("query %d: Check=%v CheckCtx=%v", i, r1, r2)
		}
	}
}
