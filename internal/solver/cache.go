package solver

import (
	"sort"
	"strings"
	"sync"

	"achilles/internal/expr"
)

// verdict is one cached Check outcome. The model is stored as a private copy
// and cloned again on every hit, so callers may freely mutate what they get.
// loaded marks entries restored from a persisted cache file: they are
// re-verified against the live query on first hit (see Solver.Check) before
// being trusted, because the file contents are outside the process's control.
type verdict struct {
	res    Result
	model  expr.Env
	loaded bool
}

// verdictCache is the sharded formula→verdict memo. Striping the mutexes
// keeps concurrent analysis workers from serialising on a single lock; the
// per-shard entry cap bounds memory on long runs.
type verdictCache struct {
	shards  []verdictShard
	maxPerS int
}

type verdictShard struct {
	mu sync.Mutex
	m  map[string]verdict
}

func newVerdictCache(shards, maxPerShard int) *verdictCache {
	c := &verdictCache{
		shards:  make([]verdictShard, shards),
		maxPerS: maxPerShard,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]verdict)
	}
	return c
}

// queryKey canonicalises a conjunction: per-constraint renderings are sorted
// so that reordered but semantically identical queries share one entry. The
// key is the full rendering (not a hash), so a hit can never alias two
// different formulas — cached verdicts stay sound.
func queryKey(constraints []*expr.Expr) string {
	parts := make([]string, len(constraints))
	n := 0
	for i, c := range constraints {
		parts[i] = c.String()
		n += len(parts[i]) + 1
	}
	sort.Strings(parts)
	var b strings.Builder
	b.Grow(n)
	for _, p := range parts {
		b.WriteString(p)
		b.WriteByte(0)
	}
	return b.String()
}

// queryKeyInterned is queryKey assembled from interned entries: the cached
// renderings are sorted and joined exactly as queryKey sorts and joins fresh
// renderings, so the two produce byte-identical keys for the same query —
// in-memory and persisted caches keep their historical key format.
func queryKeyInterned(entries []*internEntry) string {
	parts := make([]string, len(entries))
	n := 0
	for i, en := range entries {
		parts[i] = en.render
		n += len(parts[i]) + 1
	}
	sort.Strings(parts)
	var b strings.Builder
	b.Grow(n)
	for _, p := range parts {
		b.WriteString(p)
		b.WriteByte(0)
	}
	return b.String()
}

// queryKeySortedPlus assembles the same key as queryKeyInterned from an
// already-sorted render list plus one extra render, inserting the extra at
// its sorted position — O(n) assembly instead of a per-query sort. Callers
// (prefix queries) maintain the sorted list incrementally.
func queryKeySortedPlus(sorted []string, extra string) string {
	idx := sort.SearchStrings(sorted, extra)
	n := len(extra) + 1
	for _, p := range sorted {
		n += len(p) + 1
	}
	var b strings.Builder
	b.Grow(n)
	for _, p := range sorted[:idx] {
		b.WriteString(p)
		b.WriteByte(0)
	}
	b.WriteString(extra)
	b.WriteByte(0)
	for _, p := range sorted[idx:] {
		b.WriteString(p)
		b.WriteByte(0)
	}
	return b.String()
}

// queryKeySortedMerge assembles the queryKeyInterned key for the multiset
// union of two individually sorted render lists — a linear merge instead of
// a full re-sort. Both inputs must already be sorted.
func queryKeySortedMerge(a, b []string) string {
	n := 0
	for _, p := range a {
		n += len(p) + 1
	}
	for _, p := range b {
		n += len(p) + 1
	}
	var sb strings.Builder
	sb.Grow(n)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			sb.WriteString(a[i])
			i++
		} else {
			sb.WriteString(b[j])
			j++
		}
		sb.WriteByte(0)
	}
	for ; i < len(a); i++ {
		sb.WriteString(a[i])
		sb.WriteByte(0)
	}
	for ; j < len(b); j++ {
		sb.WriteString(b[j])
		sb.WriteByte(0)
	}
	return sb.String()
}

// fnv1a hashes a key onto a shard index.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func (c *verdictCache) shard(key string) *verdictShard {
	return &c.shards[fnv1a(key)%uint64(len(c.shards))]
}

func (c *verdictCache) get(key string) (verdict, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	return v, ok
}

func (c *verdictCache) put(key string, v verdict) {
	sh := c.shard(key)
	sh.mu.Lock()
	if _, exists := sh.m[key]; !exists && len(sh.m) >= c.maxPerS {
		for k := range sh.m { // evict one arbitrary entry
			delete(sh.m, k)
			break
		}
	}
	sh.m[key] = v
	sh.mu.Unlock()
}

// putIfAbsent inserts a loaded entry without evicting solved ones: persisted
// verdicts must never displace entries the live process has already proven.
// It reports whether the entry was stored.
func (c *verdictCache) putIfAbsent(key string, v verdict) bool {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.m[key]; exists || len(sh.m) >= c.maxPerS {
		return false
	}
	sh.m[key] = v
	return true
}

// snapshot copies every cached entry, sorted by key, for persistence.
func (c *verdictCache) snapshot() (keys []string, verdicts []verdict) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, v := range sh.m {
			keys = append(keys, k)
			verdicts = append(verdicts, v)
		}
		sh.mu.Unlock()
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	sk := make([]string, len(keys))
	sv := make([]verdict, len(keys))
	for i, j := range order {
		sk[i], sv[i] = keys[j], verdicts[j]
	}
	return sk, sv
}
