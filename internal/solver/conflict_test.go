package solver

import (
	"testing"

	"achilles/internal/expr"
)

// Tests for linearConflict: contradictions between multi-variable linear
// atoms that interval propagation cannot see when the variables are
// individually unbounded. These shapes dominate the Trojan queries over
// shared symbolic state (§3.4).

func TestConflictComplementPair(t *testing.T) {
	x, y := v("x"), v("y")
	checkUnsat(t, []*expr.Expr{expr.Eq(x, y), expr.Ne(x, y)})
	checkUnsat(t, []*expr.Expr{expr.Eq(x, y), expr.Ne(y, x)})
	// Same combination, shifted constant: x - y == 0 and x != y + 0.
	checkUnsat(t, []*expr.Expr{expr.Eq(expr.Sub(x, y), c(0)), expr.Ne(x, y)})
}

func TestConflictDistinctEqualities(t *testing.T) {
	x, y := v("x"), v("y")
	checkUnsat(t, []*expr.Expr{
		expr.Eq(expr.Sub(x, y), c(1)),
		expr.Eq(expr.Sub(x, y), c(2)),
	})
	// Negated orientation: y - x == -1 is the same combination.
	m := checkSat(t, []*expr.Expr{
		expr.Eq(expr.Sub(x, y), c(1)),
		expr.Eq(expr.Sub(y, x), c(-1)),
	})
	if m["x"]-m["y"] != 1 {
		t.Fatalf("bad model %v", m)
	}
}

func TestConflictEmptyBand(t *testing.T) {
	x, y := v("x"), v("y")
	// x - y <= -1 and x - y >= 1: empty band.
	checkUnsat(t, []*expr.Expr{
		expr.Le(expr.Sub(x, y), c(-1)),
		expr.Ge(expr.Sub(x, y), c(1)),
	})
	// Touching band is satisfiable: x - y in [0, 0].
	m := checkSat(t, []*expr.Expr{
		expr.Le(expr.Sub(x, y), c(0)),
		expr.Ge(expr.Sub(x, y), c(0)),
	})
	if m["x"] != m["y"] {
		t.Fatalf("bad model %v", m)
	}
}

func TestConflictEqualityOutsideBand(t *testing.T) {
	x, y := v("x"), v("y")
	// x - y == 5 with x - y <= 3.
	checkUnsat(t, []*expr.Expr{
		expr.Eq(expr.Sub(x, y), c(5)),
		expr.Le(expr.Sub(x, y), c(3)),
	})
	// Order independence: bound first, equality second.
	checkUnsat(t, []*expr.Expr{
		expr.Le(expr.Sub(x, y), c(3)),
		expr.Eq(expr.Sub(x, y), c(5)),
	})
	// And below a lower bound.
	checkUnsat(t, []*expr.Expr{
		expr.Ge(expr.Sub(x, y), c(10)),
		expr.Eq(expr.Sub(x, y), c(5)),
	})
}

func TestConflictSharedStateTrojanShape(t *testing.T) {
	// The exact shape from the Paxos constructed-symbolic-state analysis:
	// the server pins the field to the shared state; the negation demands
	// it differ.
	m1, ballot := v("m1"), v("state_ballot")
	checkUnsat(t, []*expr.Expr{
		expr.Eq(m1, ballot),
		expr.Ne(m1, ballot),
	})
	// Whereas a different field stays satisfiable.
	m2, val := v("m2"), v("state_value")
	mdl := checkSat(t, []*expr.Expr{
		expr.Eq(m1, ballot),
		expr.Ne(m2, val),
	})
	if mdl["m2"] == mdl["state_value"] {
		t.Fatalf("bad model %v", mdl)
	}
}

func TestNoFalseConflicts(t *testing.T) {
	x, y, z := v("x"), v("y"), v("z")
	// Different variable combinations must not be conflated.
	checkSat(t, []*expr.Expr{expr.Eq(x, y), expr.Ne(x, z)})
	// Scaled combinations are distinct keys (2x-2y vs x-y): no false
	// conflict, and the solver still decides via search when bounded.
	checkSat(t, []*expr.Expr{
		expr.Eq(expr.Sub(expr.Mul(c(2), x), expr.Mul(c(2), y)), c(0)),
		expr.Ne(expr.Sub(x, y), c(1)),
		expr.Ge(x, c(0)), expr.Le(x, c(3)), expr.Ge(y, c(0)), expr.Le(y, c(3)),
	})
}
