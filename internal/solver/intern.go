package solver

// Hash-consed expression interning. Every expression the solver touches is
// resolved to a per-solver internEntry exactly once; the entry caches the
// three derived forms the hot path used to recompute per query:
//
//   - the canonical rendering (the unit of queryKey — the verdict-cache and
//     persisted-cache key format is unchanged, it is now assembled from
//     cached strings instead of re-rendered trees);
//   - the linearisation (linAtom or "outside the fragment");
//   - the sorted variable list (the unit of conjState.varOrder).
//
// Entries also carry a stable per-solver ID. IDs order by first-intern time,
// which is scheduling-dependent under concurrent analysis workers — they are
// therefore never persisted and never compared across solvers; their only
// uses are set-membership keys (learned conflict sets, prefix subsumption),
// which are order-insensitive.
//
// Unification is structural: a pointer-cache fast path (path-constraint
// slices share expression pointers across sibling states, so this hits
// almost always) backed by hash buckets resolved with expr.Equal, so two
// structurally equal trees always map to one entry and an entry can never
// alias two distinct expressions.

import (
	"sync"

	"achilles/internal/expr"
)

// internEntry is the canonical per-solver record of one structurally
// distinct expression. Immutable after construction.
type internEntry struct {
	id     uint64
	e      *expr.Expr
	render string   // e.String(), computed once
	la     *linAtom // linearisation; nil when e is outside the linear fragment
	vars   []string // sorted variable names of e
}

// internArena unifies expressions for one Solver. Safe for concurrent use:
// the pointer cache is a sync.Map (lock-free hits), creation and structural
// unification run under one mutex.
type internArena struct {
	byPtr  sync.Map // *expr.Expr -> *internEntry
	mu     sync.Mutex
	byHash map[uint64][]*internEntry
	nextID uint64
	// ckeyIDs numbers distinct linear-combination fingerprints from 1 so
	// linearConflict can compare combinations by integer (see linAtom.ckeyID).
	ckeyIDs map[string]uint32
}

func newInternArena() *internArena {
	return &internArena{
		byHash:  make(map[uint64][]*internEntry),
		ckeyIDs: make(map[string]uint32),
	}
}

// intern resolves e to its canonical entry, creating it on first sight.
func (a *internArena) intern(e *expr.Expr) *internEntry {
	if en, ok := a.byPtr.Load(e); ok {
		return en.(*internEntry)
	}
	a.mu.Lock()
	h := e.Hash()
	for _, en := range a.byHash[h] {
		if expr.Equal(en.e, e) {
			a.mu.Unlock()
			// Remember this alias pointer too: the next lookup through the
			// same tree is then lock-free.
			a.byPtr.Store(e, en)
			return en
		}
	}
	en := &internEntry{id: a.nextID, e: e, render: e.String()}
	a.nextID++
	en.la, _ = linearise(e)
	if en.la != nil && en.la.ckey != "" {
		id, ok := a.ckeyIDs[en.la.ckey]
		if !ok {
			id = uint32(len(a.ckeyIDs) + 1)
			a.ckeyIDs[en.la.ckey] = id
		}
		en.la.ckeyID = id
	}
	en.vars = expr.Vars(e)
	a.byHash[h] = append(a.byHash[h], en)
	a.mu.Unlock()
	a.byPtr.Store(e, en)
	return en
}

// size reports the number of distinct interned expressions.
func (a *internArena) size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.nextID)
}

// internAll interns a constraint slice in order.
func (s *Solver) internAll(constraints []*expr.Expr) []*internEntry {
	out := make([]*internEntry, len(constraints))
	for i, c := range constraints {
		out[i] = s.arena.intern(c)
	}
	return out
}

// mergeVars returns the sorted union of the entries' variable names — the
// same list expr.VarsOf computes by walking the trees, assembled from the
// cached per-entry sorted lists instead.
func mergeVars(entries []*internEntry) []string {
	// k-way merge over already-sorted lists; duplicates are dropped as they
	// surface. The lists are tiny (message fields + a few locals), so a
	// linear scan for the minimum beats heap bookkeeping.
	idx := make([]int, len(entries))
	var out []string
	for {
		best := ""
		found := false
		for i, en := range entries {
			for idx[i] < len(en.vars) && len(out) > 0 && en.vars[idx[i]] == out[len(out)-1] {
				idx[i]++
			}
			if idx[i] < len(en.vars) {
				if !found || en.vars[idx[i]] < best {
					best, found = en.vars[idx[i]], true
				}
			}
		}
		if !found {
			return out
		}
		out = append(out, best)
	}
}
