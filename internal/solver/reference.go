package solver

// Pinned naive-DPLL reference for the differential suite.
//
// Reference re-implements the solver's decision procedure with NO cross-query
// state: no verdict cache, no interning arena, no learned conflict sets, no
// propOK memo, no prefix seeding. Per-query behaviour — flattening, split
// order, the budget-free refutation layer (pairwise linear conflicts +
// interval propagation) at split nodes and leaves, budget accounting,
// variable ordering, enumeration order and final model verification — mirrors
// the fast solver exactly. The two must therefore agree on verdicts AND on
// returned models for every query; differential_test.go holds them to that
// over tens of thousands of random formulas and a native fuzz target.
//
// The interval arithmetic (propagate, propagateAtom, search, finish) is
// shared with the fast path deliberately: the differential target is the
// fast-path machinery layered on top of it — interning, clause learning,
// split-gate memoisation, cache keys, prefix seeding — not the arithmetic,
// which the solver's own unit suites pin directly.
//
// This file is frozen on purpose. Performance work belongs in the fast path;
// "improving" the reference in lockstep with the solver would erase the
// differential signal.

import (
	"context"

	"achilles/internal/expr"
)

// Reference is the pinned naive-DPLL checker. Unlike Solver it keeps no
// state between queries (the embedded carrier only supplies budgets and
// stat counters), so every Check solves from scratch.
type Reference struct {
	s *Solver // carrier for opts; propagate/search/finish are its methods
}

// NewReference returns a reference checker with the given budgets. The
// cache-related options are ignored — the reference never memoises.
func NewReference(opts Options) *Reference {
	opts.DisableCache = true
	return &Reference{s: New(opts)}
}

// Check decides the conjunction of the constraints, exactly as
// Solver.Check would, but from scratch.
func (r *Reference) Check(constraints []*expr.Expr) (Result, expr.Env) {
	var conj, disj []*expr.Expr
	for _, c := range constraints {
		if !refFlatten(c, &conj, &disj) {
			return Unsat, nil
		}
	}
	budget := r.s.opts.MaxDecisions
	return r.solve(conj, disj, &budget)
}

// refFlatten splits e into conjunctive atoms and disjunctions, mirroring
// Solver.flattenInto without the arena. False means a literal false.
func refFlatten(e *expr.Expr, conj, disj *[]*expr.Expr) bool {
	switch e.Kind {
	case expr.KBool:
		return e.Val != 0
	case expr.KAnd:
		return refFlatten(e.Args[0], conj, disj) && refFlatten(e.Args[1], conj, disj)
	case expr.KOr:
		*disj = append(*disj, e)
		return true
	default:
		*conj = append(*conj, e)
		return true
	}
}

// refConjState builds the conjunction search state from raw expressions:
// fresh linearisations, fresh variable order — nothing interned.
func refConjState(conj []*expr.Expr) *conjState {
	cs := &conjState{
		domains:  make(map[string]interval, 8),
		assigned: expr.Env{},
		orig:     conj,
		varOrder: expr.VarsOf(conj),
	}
	for _, e := range conj {
		if la, ok := linearise(e); ok {
			cs.atoms = append(cs.atoms, la)
		} else {
			cs.nonlin = append(cs.nonlin, e)
		}
	}
	return cs
}

// solve mirrors Solver.solve: split-node pruning by budget-free refutation,
// then DPLL splitting over the first disjunction.
func (r *Reference) solve(conj, disj []*expr.Expr, budget *int) (Result, expr.Env) {
	if len(disj) == 0 {
		return r.solveConj(conj, budget)
	}
	if cs := refConjState(conj); linearConflict(cs.atoms) || !r.s.propagate(cs) {
		return Unsat, nil
	}
	d := disj[0]
	rest := disj[1:]
	var parts []*expr.Expr
	disjuncts(d, &parts)
	sawUnknown := false
	for _, p := range parts {
		if *budget <= 0 {
			return Unknown, nil
		}
		subConj := append([]*expr.Expr{}, conj...)
		subDisj := append([]*expr.Expr{}, rest...)
		if !refFlatten(p, &subConj, &subDisj) {
			continue
		}
		res, model := r.solve(subConj, subDisj, budget)
		switch res {
		case Sat:
			return Sat, model
		case Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown, nil
	}
	return Unsat, nil
}

// solveConj mirrors Solver.solveConj without the learned index: refutation
// layer first (budget-free), then the shared search.
func (r *Reference) solveConj(conj []*expr.Expr, budget *int) (Result, expr.Env) {
	cs := refConjState(conj)
	if linearConflict(cs.atoms) || !r.s.propagate(cs) {
		return Unsat, nil
	}
	return r.s.search(context.Background(), cs, budget)
}
