package solver

// Persistent-cache coverage: round trip, version gating, corruption
// rejection, and the trust model for loaded verdicts (Sat models are
// re-evaluated on first use, Unsat/Unknown verdicts are sample-re-solved),
// so a stale or poisoned cache file can slow an analysis down but never
// change its answers.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"achilles/internal/expr"
)

// seedQueries issues a mix of sat and unsat queries so the cache holds both
// verdict kinds.
func seedQueries(s *Solver, n int) {
	for i := 0; i < n; i++ {
		x := v(fmt.Sprintf("x%d", i))
		s.Check([]*expr.Expr{expr.Gt(x, c(0)), expr.Lt(x, c(10))})
		s.Check([]*expr.Expr{expr.Gt(x, c(0)), expr.Lt(x, c(-5))})
	}
}

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	warm := Default()
	seedQueries(warm, 4)
	if err := warm.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	cold := Default()
	loaded, err := cold.LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 8 {
		t.Fatalf("loaded %d entries, want 8", loaded)
	}
	// Replay every seeded query: verdicts must match a fresh solver's, and
	// all but the sampled re-solves must be answered from the loaded cache.
	seedQueries(cold, 4)
	st := cold.Stats()
	if st.CacheHits < 7 {
		t.Errorf("only %d of 8 replayed queries hit the loaded cache", st.CacheHits)
	}
	if st.ReverifyFailed != 0 {
		t.Errorf("%d loaded verdicts failed re-verification on a faithful file", st.ReverifyFailed)
	}
	if st.Reverified == 0 {
		t.Error("no loaded verdict was re-verified (Sat hits must verify unconditionally)")
	}
	// Determinism: saving the reloaded cache reproduces the file byte for
	// byte (entries are sorted by key).
	path2 := filepath.Join(t.TempDir(), "cache2.jsonl")
	if err := cold.SaveCache(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Error("save → load → save is not the identity on the cache file")
	}
}

func TestCacheLoadRejectsVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	for name, header := range map[string]cacheHeader{
		"future-format.jsonl": {Format: CacheFileVersion + 1, Solver: Version},
		"other-solver.jsonl":  {Format: CacheFileVersion, Solver: "solver/0-ancient"},
	} {
		path := filepath.Join(dir, name)
		line, _ := json.Marshal(header)
		if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Default().LoadCache(path); !errors.Is(err, ErrCacheVersion) {
			t.Errorf("%s: want ErrCacheVersion, got %v", name, err)
		}
	}
}

func TestCacheLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	hdr, _ := json.Marshal(cacheHeader{Format: CacheFileVersion, Solver: Version})
	cases := map[string]string{
		"empty":       "",
		"junk-header": "not json at all\n",
		"junk-entry":  string(hdr) + "\n{broken\n",
		"bad-verdict": string(hdr) + "\n" + `{"k":"x","r":9}` + "\n",
		"empty-key":   string(hdr) + "\n" + `{"k":"","r":1}` + "\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".jsonl")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Default().LoadCache(path); err == nil || errors.Is(err, ErrCacheVersion) {
			t.Errorf("%s: corruption not rejected (err=%v)", name, err)
		}
	}
	if _, err := Default().LoadCache(filepath.Join(dir, "no-such-file")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: want os.ErrNotExist, got %v", err)
	}
	// All-or-nothing: valid entries ahead of a corrupt line must NOT be
	// merged — "treat the file as cold" has to be literally true.
	x := v("x")
	query := []*expr.Expr{expr.Gt(x, c(0)), expr.Lt(x, c(10))}
	good, _ := json.Marshal(CacheEntry{Key: queryKey(query), Res: int(Unknown)})
	partial := filepath.Join(dir, "partial.jsonl")
	if err := os.WriteFile(partial, []byte(string(hdr)+"\n"+string(good)+"\n{truncat"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := Default()
	if n, err := s.LoadCache(partial); err == nil || n != 0 {
		t.Errorf("partial load: want 0 entries and an error, got %d, %v", n, err)
	}
	if res, _ := s.Check(query); res != Sat {
		t.Error("entry from a corrupt file was served")
	}
	if _, err := New(Options{DisableCache: true}).LoadCache("x"); !errors.Is(err, ErrCacheDisabled) {
		t.Errorf("disabled cache: want ErrCacheDisabled, got %v", err)
	}
	if err := New(Options{DisableCache: true}).SaveCache("x"); !errors.Is(err, ErrCacheDisabled) {
		t.Errorf("disabled cache save: want ErrCacheDisabled, got %v", err)
	}
}

// poisonedFile writes a cache file claiming the given verdict for the query
// (x > 0 ∧ x < 10).
func poisonedFile(t *testing.T, res Result, model expr.Env) (string, []*expr.Expr) {
	t.Helper()
	x := v("x")
	query := []*expr.Expr{expr.Gt(x, c(0)), expr.Lt(x, c(10))}
	hdr, _ := json.Marshal(cacheHeader{Format: CacheFileVersion, Solver: Version})
	ent, _ := json.Marshal(CacheEntry{Key: queryKey(query), Res: int(res), Model: model})
	path := filepath.Join(t.TempDir(), "poisoned.jsonl")
	if err := os.WriteFile(path, []byte(string(hdr)+"\n"+string(ent)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, query
}

// TestLoadedSatModelReverified: a loaded Sat verdict whose model does not
// satisfy the live query is discarded and re-solved — the answer is still a
// correct, verified model.
func TestLoadedSatModelReverified(t *testing.T) {
	path, query := poisonedFile(t, Sat, expr.Env{"x": -42}) // claims sat with a false witness
	s := Default()
	if _, err := s.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	res, m := s.Check(query)
	if res != Sat || m["x"] <= 0 || m["x"] >= 10 {
		t.Fatalf("poisoned Sat model survived: res=%v model=%v", res, m)
	}
	if st := s.Stats(); st.ReverifyFailed != 1 {
		t.Errorf("poisoned model not counted: %+v", st)
	}
}

// TestLoadedUnsatVerdictSampledResolve: the first loaded Unsat hit is
// re-solved (the deterministic sample), so a poisoned Unsat verdict for a
// satisfiable query is corrected, counted, and replaced for later hits.
func TestLoadedUnsatVerdictSampledResolve(t *testing.T) {
	path, query := poisonedFile(t, Unsat, nil) // the query is actually sat
	s := Default()
	if _, err := s.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	res, m := s.Check(query)
	if res != Sat {
		t.Fatalf("poisoned Unsat verdict served: got %v", res)
	}
	if m["x"] <= 0 || m["x"] >= 10 {
		t.Fatalf("re-solved model wrong: %v", m)
	}
	if st := s.Stats(); st.ReverifyFailed != 1 {
		t.Errorf("poisoned verdict not counted: %+v", st)
	}
	// The corrected verdict replaced the loaded one: the next hit is served
	// from cache without further re-verification.
	before := s.Stats()
	if res, _ := s.Check(query); res != Sat {
		t.Fatal("corrected verdict lost")
	}
	after := s.Stats()
	if after.CacheHits != before.CacheHits+1 || after.ReverifyFailed != before.ReverifyFailed {
		t.Errorf("corrected verdict not a plain cache hit: before %+v after %+v", before, after)
	}
}

// TestLoadedEntriesNeverDisplaceLiveVerdicts: LoadCache merges under live
// entries, so a verdict the process already proved wins over the file's.
func TestLoadedEntriesNeverDisplaceLiveVerdicts(t *testing.T) {
	s := Default()
	x := v("x")
	query := []*expr.Expr{expr.Gt(x, c(0)), expr.Lt(x, c(10))}
	if res, _ := s.Check(query); res != Sat {
		t.Fatal("seed query not sat")
	}
	path, _ := poisonedFile(t, Unsat, nil)
	loaded, err := s.LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 0 {
		t.Errorf("loaded %d entries over live verdicts, want 0", loaded)
	}
	if res, _ := s.Check(query); res != Sat {
		t.Error("live verdict displaced by loaded entry")
	}
}

// TestSaveCacheCrashSimulation simulates a worker killed mid-save and pins
// the atomicity contract: the destination path only ever holds a complete
// cache. A crashed save leaves (at worst) an orphaned temp file in the same
// directory — which a later LoadCache of the real path never touches and a
// later SaveCache never mistakes for the destination — while the torn-write
// failure mode the temp+fsync+rename discipline exists to prevent (a
// truncated file AT the destination path) is demonstrably rejected by
// LoadCache, so nothing downstream can mistake it for a valid cache.
func TestSaveCacheCrashSimulation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.jsonl")
	warm := Default()
	seedQueries(warm, 3)
	if err := warm.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window: a save that died after writing part of its
	// temp file but before the rename. The destination must be untouched.
	torn := filepath.Join(dir, ".solver-cache-crashed")
	if err := os.WriteFile(torn, want[:len(want)/2], 0o600); err != nil {
		t.Fatal(err)
	}
	cold := Default()
	loaded, err := cold.LoadCache(path)
	if err != nil {
		t.Fatalf("crash leftovers broke the real cache: %v", err)
	}
	if loaded != 6 {
		t.Fatalf("loaded %d entries next to crash leftovers, want 6", loaded)
	}
	got, _ := os.ReadFile(path)
	if string(got) != string(want) {
		t.Fatal("destination cache changed by a crashed save")
	}

	// A fresh save over the same path succeeds and ignores the orphan.
	if err := warm.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(path); string(got) != string(want) {
		t.Fatal("re-save over crash leftovers corrupted the cache")
	}

	// The counterfactual the discipline prevents: a torn file AT the
	// destination (what a non-atomic writer killed mid-write would leave) is
	// rejected outright — zero entries merged, error returned.
	tornDst := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(tornDst, want[:len(want)-7], 0o600); err != nil {
		t.Fatal(err)
	}
	if n, err := Default().LoadCache(tornDst); err == nil || n != 0 {
		t.Fatalf("torn destination file accepted: %d entries, err=%v", n, err)
	}
}

// TestCacheExportImportRoundTrip: ExportCache/ImportCache (the delta-exchange
// surface) carry exactly what SaveCache/LoadCache persist — verdicts merge
// into a cold solver, imports are marked for first-use re-verification, and
// a malformed batch is rejected all-or-nothing.
func TestCacheExportImportRoundTrip(t *testing.T) {
	warm := Default()
	seedQueries(warm, 4)
	entries, err := warm.ExportCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Fatalf("exported %d entries, want 8", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Key >= entries[i].Key {
			t.Fatal("export not sorted by key")
		}
	}

	cold := Default()
	merged, err := cold.ImportCache(entries)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 8 {
		t.Fatalf("merged %d entries, want 8", merged)
	}
	// Imported verdicts answer the replayed queries from cache, and none of
	// them contradict a fresh solve (faithful transfer).
	seedQueries(cold, 4)
	st := cold.Stats()
	if st.CacheHits < 7 {
		t.Errorf("only %d of 8 replayed queries hit the imported cache", st.CacheHits)
	}
	if st.ReverifyFailed != 0 {
		t.Errorf("%d imported verdicts failed re-verification", st.ReverifyFailed)
	}
	if st.Reverified == 0 {
		t.Error("imported verdicts were trusted without re-verification")
	}

	// Re-import is idempotent: nothing merges twice.
	if merged, err = cold.ImportCache(entries); err != nil || merged != 0 {
		t.Errorf("re-import merged %d entries (err=%v), want 0", merged, err)
	}

	// All-or-nothing validation: one bad entry rejects the whole batch.
	victim := Default()
	bad := append(append([]CacheEntry{}, entries[:2]...), CacheEntry{Key: "", Res: int(Sat)})
	if merged, err = victim.ImportCache(bad); err == nil || merged != 0 {
		t.Errorf("batch with invalid entry merged %d entries (err=%v)", merged, err)
	}
	if got, _ := victim.ExportCache(); len(got) != 0 {
		t.Errorf("invalid batch left %d entries behind", len(got))
	}

	if _, err := New(Options{DisableCache: true}).ExportCache(); !errors.Is(err, ErrCacheDisabled) {
		t.Errorf("disabled cache export: want ErrCacheDisabled, got %v", err)
	}
	if _, err := New(Options{DisableCache: true}).ImportCache(entries); !errors.Is(err, ErrCacheDisabled) {
		t.Errorf("disabled cache import: want ErrCacheDisabled, got %v", err)
	}
}

// TestCacheFileKeysSurviveJSON pins that canonical query keys (which embed
// NUL separators) survive the JSON encoding round trip.
func TestCacheFileKeysSurviveJSON(t *testing.T) {
	key := queryKey([]*expr.Expr{expr.Gt(v("a"), c(1)), expr.Lt(v("b"), c(2))})
	if !strings.Contains(key, "\x00") {
		t.Fatal("canonical key lost its NUL separators")
	}
	raw, err := json.Marshal(CacheEntry{Key: key, Res: int(Unknown)})
	if err != nil {
		t.Fatal(err)
	}
	var back CacheEntry
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key != key {
		t.Fatal("key did not survive the JSON round trip")
	}
}
