package solver_test

// Differential gate for the solver fast path: the CDCL+interning solver and
// the pinned naive-DPLL reference (reference.go) must agree on Sat/Unsat/
// Unknown and on returned models over a large corpus of random formulas.
// The suite runs the shared-state solver deliberately — one Solver instance
// across all queries, and concurrently in the sharded variant — so the
// cross-query machinery (arena, learned sets, propOK memo, verdict cache,
// prefix seeding) is exactly what is being exercised against the stateless
// reference.

import (
	"context"
	"fmt"
	"maps"
	"math/rand"
	"sync"
	"testing"

	"achilles/internal/expr"
	"achilles/internal/fuzz"
	"achilles/internal/solver"
)

// diffOpts keeps individual queries cheap enough for a 10k-formula corpus
// while still reaching the Unknown paths (small enumeration cap). Fast
// solver and reference share the budgets, so verdicts remain comparable.
var diffOpts = solver.Options{MaxDecisions: 4000, MaxEnumDomain: 256}

// diffSeed pins the corpus; the suite is fully deterministic.
const diffSeed = 20140301 // ASPLOS'14

// verifyModel checks that a Sat model satisfies every top-level constraint.
// A model only assigns the variables of the satisfied disjuncts; the other
// variables are unconstrained there, so they are completed with zeros before
// evaluation (any completion of a satisfying partial assignment satisfies
// the formula).
func verifyModel(t *testing.T, f []*expr.Expr, model expr.Env) {
	t.Helper()
	env := model.Clone()
	for _, v := range expr.VarsOf(f) {
		if _, ok := env[v]; !ok {
			env[v] = 0
		}
	}
	for _, c := range f {
		v, err := expr.EvalBool(c, env)
		if err != nil || !v {
			t.Fatalf("model %v does not satisfy %v (err=%v)", model, c, err)
		}
	}
}

// checkAgainstReference solves one formula on both solvers and fails the
// test on any verdict or model divergence.
func checkAgainstReference(t *testing.T, s *solver.Solver, ref *solver.Reference, f []*expr.Expr) {
	t.Helper()
	res, model := s.Check(f)
	refRes, refModel := ref.Check(f)
	if res != refRes {
		t.Fatalf("verdict divergence on %v:\n  fast      = %v\n  reference = %v", f, res, refRes)
	}
	if res == solver.Sat {
		if !maps.Equal(model, refModel) {
			t.Fatalf("model divergence on %v:\n  fast      = %v\n  reference = %v", f, model, refModel)
		}
		verifyModel(t, f, model)
	}
	// Re-ask the fast solver: the verdict cache must reproduce the answer.
	res2, model2 := s.Check(f)
	if res2 != res || (res == solver.Sat && !maps.Equal(model, model2)) {
		t.Fatalf("cache instability on %v: first (%v, %v), second (%v, %v)", f, res, model, res2, model2)
	}
}

// TestSolverDifferential is the standing ~10k-formula differential suite.
func TestSolverDifferential(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 1000
	}
	s := solver.New(diffOpts)
	ref := solver.NewReference(diffOpts)
	r := rand.New(rand.NewSource(diffSeed))
	opts := fuzz.DefaultFormulaOptions()
	for i := 0; i < n; i++ {
		o := opts
		o.Nonlinear = i%4 == 3 // every fourth formula exercises the non-linear fallback
		f := fuzz.Formula(r, o)
		checkAgainstReference(t, s, ref, f)
	}
	st := s.Stats()
	if st.Interned == 0 || st.CacheHits == 0 {
		t.Fatalf("fast path not exercised: stats %+v", st)
	}
}

// TestSolverDifferentialPrefix differentially tests incremental prefix
// solving: a prefix built constraint-by-constraint plus a final condition
// must answer exactly like the reference on the materialised slice, and
// Prefix.Implies may only ever short-circuit to the solver's own verdict.
func TestSolverDifferentialPrefix(t *testing.T) {
	n := 4000
	if testing.Short() {
		n = 500
	}
	s := solver.New(diffOpts)
	ref := solver.NewReference(diffOpts)
	r := rand.New(rand.NewSource(diffSeed + 1))
	opts := fuzz.DefaultFormulaOptions()
	opts.MaxConstraints = 5
	for i := 0; i < n; i++ {
		f := fuzz.Formula(r, opts)
		if len(f) < 2 {
			continue
		}
		p := s.NewPrefix()
		for _, c := range f[:len(f)-1] {
			p = p.Extend(c)
		}
		cond := f[len(f)-1]
		refRes, refModel := ref.Check(f)

		res, model := s.CheckPrefix(p, cond)
		if res != refRes {
			t.Fatalf("prefix verdict divergence on %v:\n  prefix    = %v\n  reference = %v", f, res, refRes)
		}
		if res == solver.Sat && !maps.Equal(model, refModel) {
			t.Fatalf("prefix model divergence on %v:\n  prefix    = %v\n  reference = %v", f, model, refModel)
		}

		// Multi-condition variant: split the suffix at a random point.
		cut := 1 + r.Intn(len(f)-1)
		pp := s.NewPrefix()
		for _, c := range f[:cut] {
			pp = pp.Extend(c)
		}
		allRes, allModel := s.CheckPrefixAllCtx(context.Background(), pp, f[cut:])
		if allRes != refRes {
			t.Fatalf("prefix-all verdict divergence on %v (cut %d): prefix-all = %v, reference = %v", f, cut, allRes, refRes)
		}
		if allRes == solver.Sat && !maps.Equal(allModel, refModel) {
			t.Fatalf("prefix-all model divergence on %v (cut %d): prefix-all = %v, reference = %v", f, cut, allModel, refModel)
		}

		// Implies may only answer when it matches the full solve's verdict.
		if holds, ok := p.Implies(cond); ok {
			wantHolds := refRes != solver.Unsat
			if holds != wantHolds {
				t.Fatalf("Implies(%v) = %v on prefix %v, but reference verdict is %v", cond, holds, f[:len(f)-1], refRes)
			}
		}
	}
}

// TestSolverDifferentialConcurrent shards the corpus over 8 goroutines that
// share ONE fast solver — the configuration the analysis engines run — and
// compares every query against per-goroutine references. Run under -race in
// CI, this is the concurrency gate for the arena/learned-set/propOK state.
func TestSolverDifferentialConcurrent(t *testing.T) {
	const workers = 8
	n := 500 // per worker
	if testing.Short() {
		n = 100
	}
	s := solver.New(diffOpts)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ref := solver.NewReference(diffOpts)
			r := rand.New(rand.NewSource(diffSeed + 100 + int64(w)))
			opts := fuzz.DefaultFormulaOptions()
			for i := 0; i < n; i++ {
				f := fuzz.Formula(r, opts)
				res, model := s.Check(f)
				refRes, refModel := ref.Check(f)
				if res != refRes {
					errc <- fmt.Errorf("worker %d: verdict divergence on %v: fast %v, reference %v", w, f, res, refRes)
					return
				}
				if res == solver.Sat && !maps.Equal(model, refModel) {
					errc <- fmt.Errorf("worker %d: model divergence on %v: fast %v, reference %v", w, f, model, refModel)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// FuzzSolverDifferential is the native fuzz target: the fuzzer explores
// generator seeds, each deriving one formula checked on both solvers.
// Run with: go test -run=^$ -fuzz=FuzzSolverDifferential ./internal/solver
func FuzzSolverDifferential(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(42), uint8(1))
	f.Add(int64(diffSeed), uint8(2))
	f.Add(int64(-7), uint8(3))
	s := solver.New(diffOpts)
	ref := solver.NewReference(diffOpts)
	f.Fuzz(func(t *testing.T, seed int64, shape uint8) {
		r := rand.New(rand.NewSource(seed))
		opts := fuzz.DefaultFormulaOptions()
		opts.Nonlinear = shape&1 != 0
		if shape&2 != 0 {
			opts.Vars = 2
			opts.ConstRange = 3
		}
		formula := fuzz.Formula(r, opts)
		res, model := s.Check(formula)
		refRes, refModel := ref.Check(formula)
		if res != refRes {
			t.Fatalf("verdict divergence on %v: fast %v, reference %v", formula, res, refRes)
		}
		if res == solver.Sat {
			if !maps.Equal(model, refModel) {
				t.Fatalf("model divergence on %v: fast %v, reference %v", formula, model, refModel)
			}
			verifyModel(t, formula, model)
		}
	})
}
