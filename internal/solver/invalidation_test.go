package solver

// Cache-invalidation coverage for the fast path (issue 7, satellite S4).
// The learned-conflict index and the intern arena are keyed by per-solver,
// scheduling-dependent IDs, so they must never travel across a
// solver.Version bump: only verdicts are persisted, an old-version file is
// refused wholesale, and a refused load leaves the live solver's fast-path
// state untouched. persist_test.go covers corruption and poisoning; this
// file pins the version boundary specifically.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"achilles/internal/expr"
)

// staleVersionFile writes a syntactically perfect cache file — valid header,
// valid entry for the query (x > 0 ∧ x < 10) claiming the WRONG verdict —
// stamped with the given layout/solver revision. If version gating ever
// breaks, the stale Unsat verdict is the tripwire.
func staleVersionFile(t *testing.T, format int, solverVersion string) (string, []*expr.Expr) {
	t.Helper()
	x := v("x")
	query := []*expr.Expr{expr.Gt(x, c(0)), expr.Lt(x, c(10))}
	hdr, _ := json.Marshal(cacheHeader{Format: format, Solver: solverVersion})
	ent, _ := json.Marshal(CacheEntry{Key: queryKey(query), Res: int(Unsat)})
	path := filepath.Join(t.TempDir(), "stale.jsonl")
	if err := os.WriteFile(path, []byte(string(hdr)+"\n"+string(ent)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, query
}

// TestCacheRefusedAcrossVersionBumps: every historical or foreign revision
// is refused with ErrCacheVersion, zero entries merge, and the refused load
// leaves the solver's fast-path state (arena, learned index) pristine — a
// version bump can never smuggle state from the previous decision procedure.
func TestCacheRefusedAcrossVersionBumps(t *testing.T) {
	cases := []struct {
		name    string
		format  int
		version string
	}{
		{"previous solver revision", CacheFileVersion, "solver/1"},
		{"ancient solver revision", CacheFileVersion, "solver/0"},
		{"future solver revision", CacheFileVersion, Version + "-next"},
		{"future layout", CacheFileVersion + 1, Version},
		{"both bumped", CacheFileVersion + 1, "solver/1"},
		{"empty version stamp", CacheFileVersion, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, query := staleVersionFile(t, tc.format, tc.version)
			s := Default()
			n, err := s.LoadCache(path)
			if !errors.Is(err, ErrCacheVersion) {
				t.Fatalf("want ErrCacheVersion, got %v", err)
			}
			if n != 0 {
				t.Fatalf("merged %d entries from a refused file", n)
			}
			// No leakage: the refused load must not have interned the stale
			// query's terms or seeded the learned index.
			if st := s.Stats(); st.Interned != 0 || st.LearnedSets != 0 || st.CacheHits != 0 {
				t.Fatalf("refused load left fast-path state behind: %+v", st)
			}
			// The stale Unsat verdict must not be served.
			if res, m := s.Check(query); res != Sat || m["x"] <= 0 || m["x"] >= 10 {
				t.Fatalf("stale verdict leaked across the version bump: res=%v model=%v", res, m)
			}
		})
	}
}

// TestLearnedVerdictRoundTrip: verdicts whose Unsat proof came from the
// learned-conflict index round-trip through SaveCache/LoadCache like any
// other verdict — and ONLY the verdict travels: the fresh solver starts with
// an empty learned index and re-derives (or re-learns) its own refutations.
func TestLearnedVerdictRoundTrip(t *testing.T) {
	warm := Default()
	x, y := v("x"), v("y")
	contraX := expr.And(expr.Gt(x, c(0)), expr.Lt(x, c(-5)))
	contraY := expr.And(expr.Gt(y, c(0)), expr.Lt(y, c(-5)))

	// Seed the learned index: each contradictory conjunction is refuted once
	// by propagation and recorded.
	for _, q := range [][]*expr.Expr{
		{expr.Gt(x, c(0)), expr.Lt(x, c(-5))},
		{expr.Gt(y, c(0)), expr.Lt(y, c(-5))},
	} {
		if res, _ := warm.Check(q); res != Unsat {
			t.Fatalf("seed conjunction not refuted: %v", res)
		}
	}
	if st := warm.Stats(); st.LearnedSets == 0 {
		t.Fatalf("no conflict sets learned from the seed queries: %+v", st)
	}

	// This query's DNF branches are exactly the two recorded conjunctions, so
	// its Unsat verdict is proved via learned hits — the verdict we persist.
	learnedQuery := []*expr.Expr{expr.Or(contraX, contraY)}
	before := warm.Stats()
	if res, _ := warm.Check(learnedQuery); res != Unsat {
		t.Fatal("disjunction of refuted conjunctions not unsat")
	}
	after := warm.Stats()
	if after.LearnedHits <= before.LearnedHits {
		t.Fatalf("verdict was not proved via the learned index: before %+v after %+v", before, after)
	}

	path := filepath.Join(t.TempDir(), "cache.jsonl")
	if err := warm.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	// The file carries verdicts only: no learned-clause or interned-ID
	// material may appear in any entry (IDs are per-solver and would be
	// garbage in the next process).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n")[1:] {
		var fields map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &fields); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		for k := range fields {
			if k != "k" && k != "r" && k != "m" {
				t.Fatalf("entry %d persists field %q beyond key/result/model", i, k)
			}
		}
	}

	cold := Default()
	loaded, err := cold.LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 3 {
		t.Fatalf("loaded %d entries, want 3", loaded)
	}
	// Verdicts travelled; learned state did not.
	if st := cold.Stats(); st.LearnedSets != 0 {
		t.Fatalf("learned clauses leaked through the cache file: %+v", st)
	}
	res, _ := cold.Check(learnedQuery)
	if res != Unsat {
		t.Fatalf("round-tripped learned verdict lost: %v", res)
	}
	// The replay is either a cache hit or the sampled first-use re-solve of a
	// loaded Unsat verdict — both must agree with the warm solver. A fresh
	// re-solve rebuilds learned state from scratch, which is the point: the
	// cold solver trusts the persisted verdict set, never the warm solver's
	// private indexes.
	st := cold.Stats()
	if st.CacheHits == 0 && st.Reverified == 0 {
		t.Fatalf("replay answered by neither the loaded cache nor its re-verification: %+v", st)
	}
	if st.ReverifyFailed != 0 {
		t.Fatalf("faithful round-trip failed re-verification: %+v", st)
	}
}

// TestVersionBumpColdStartMatchesWarm: the end-to-end invalidation story —
// a "new revision" solver that refuses an old cache file must reproduce
// exactly the verdicts the warm solver proved, from a cold start. This is
// the property the golden corpus relies on when solver.Version is bumped.
func TestVersionBumpColdStartMatchesWarm(t *testing.T) {
	warm := Default()
	queries := make([][]*expr.Expr, 0, 8)
	for i := 0; i < 4; i++ {
		x := v(fmt.Sprintf("v%d", i))
		queries = append(queries,
			[]*expr.Expr{expr.Gt(x, c(int64(i))), expr.Lt(x, c(int64(i)+10))}, // sat
			[]*expr.Expr{expr.Gt(x, c(0)), expr.Lt(x, c(int64(-i)-1))},        // unsat, learned
		)
	}
	warmRes := make([]Result, len(queries))
	for i, q := range queries {
		warmRes[i], _ = warm.Check(q)
	}

	// Persist the warm cache, then stamp the file as the previous revision —
	// simulating a bump of solver.Version after the file was written.
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.jsonl")
	if err := warm.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(data), "\n", 2)
	hdr, _ := json.Marshal(cacheHeader{Format: CacheFileVersion, Solver: "solver/1"})
	stale := filepath.Join(dir, "stale.jsonl")
	if err := os.WriteFile(stale, []byte(string(hdr)+"\n"+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}

	cold := Default()
	if _, err := cold.LoadCache(stale); !errors.Is(err, ErrCacheVersion) {
		t.Fatalf("restamped file not refused: %v", err)
	}
	for i, q := range queries {
		if res, _ := cold.Check(q); res != warmRes[i] {
			t.Fatalf("query %d: cold start after refused load gives %v, warm gave %v", i, res, warmRes[i])
		}
	}
	if st := cold.Stats(); st.CacheHits != 0 {
		t.Errorf("cold solver reported cache hits after a refused load: %+v", st)
	}
}
