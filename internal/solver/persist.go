package solver

// Persistence of the verdict cache. A cache file makes even a forced cold
// campaign warm: the canonical query rendering (queryKey) is the entry key,
// so any process that re-issues a structurally identical query — across
// targets, runs and days — replays the verdict instead of re-solving it.
//
// The file is defensive in both directions:
//
//   - writing stamps the layout version AND the solver revision into a
//     header line; LoadCache rejects a file written by either a different
//     layout or a different decision procedure (ErrCacheVersion), because a
//     stale verdict is worse than a cold cache;
//   - loading never trusts blindly: entries are marked "loaded" and
//     re-verified on first use (see Solver.Check — Sat models re-evaluated
//     against the live query, a sampled subset of Unsat/Unknown verdicts
//     re-solved), so a corrupt or hand-edited file cannot inject verdicts
//     into an analysis.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"achilles/internal/expr"
)

// CacheFileVersion is the on-disk layout version of persisted verdict
// caches. Bump it when the header or entry encoding changes.
const CacheFileVersion = 1

// ErrCacheVersion reports a cache file written by a different file layout or
// solver revision. Callers should treat it as a cold cache (and overwrite
// the file on the next save), not as a failure of the analysis.
var ErrCacheVersion = errors.New("solver: cache file version mismatch")

// ErrCacheDisabled reports a persistence call on a solver whose verdict
// cache is disabled.
var ErrCacheDisabled = errors.New("solver: verdict cache is disabled")

// cacheHeader is the first line of a cache file.
type cacheHeader struct {
	Format int    `json:"format"`
	Solver string `json:"solver"`
}

// cacheEntry is one persisted verdict line. The key is the canonical query
// rendering (not a hash), so a loaded entry can never alias a different
// formula — the same soundness argument as the in-memory cache.
type cacheEntry struct {
	Key   string   `json:"k"`
	Res   int      `json:"r"`
	Model expr.Env `json:"m,omitempty"`
}

// SaveCache writes the current verdict cache to path: a JSON header line
// (layout version + solver revision) followed by one JSON entry per verdict,
// sorted by key so identical caches produce identical files. The write goes
// through a temp file + rename, so readers never observe a half-written
// cache.
func (s *Solver) SaveCache(path string) error {
	if s.cache == nil {
		return ErrCacheDisabled
	}
	keys, verdicts := s.cache.snapshot()
	tmp, err := os.CreateTemp(filepath.Dir(path), ".solver-cache-*")
	if err != nil {
		return fmt.Errorf("solver: save cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	writeLine := func(v any) error {
		line, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		return w.WriteByte('\n')
	}
	err = writeLine(cacheHeader{Format: CacheFileVersion, Solver: Version})
	for i := range keys {
		if err != nil {
			break
		}
		err = writeLine(cacheEntry{Key: keys[i], Res: int(verdicts[i].res), Model: verdicts[i].model})
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("solver: save cache %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("solver: save cache: %w", err)
	}
	return nil
}

// LoadCache merges the verdicts persisted at path into the cache, marking
// every entry for first-use re-verification, and returns the number of
// entries loaded. A header written by a different layout or solver revision
// is ErrCacheVersion; a malformed header or entry line is an error carrying
// the line number. The load is all-or-nothing: the whole file is parsed and
// validated before anything is merged, so an error means zero entries were
// loaded and "treat it as a cold cache" is literally true. Loaded entries
// never displace verdicts the live process has already computed, and
// entries beyond a shard's capacity are dropped rather than evicting
// anything.
func (s *Solver) LoadCache(path string) (int, error) {
	if s.cache == nil {
		return 0, ErrCacheDisabled
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("solver: load cache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, fmt.Errorf("solver: load cache %s: %w", path, err)
		}
		return 0, fmt.Errorf("solver: load cache %s: empty file", path)
	}
	var hdr cacheHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return 0, fmt.Errorf("solver: load cache %s:1: corrupt header: %w", path, err)
	}
	if hdr.Format != CacheFileVersion || hdr.Solver != Version {
		return 0, fmt.Errorf("%w: %s was written as format %d / %s, this solver reads format %d / %s",
			ErrCacheVersion, path, hdr.Format, hdr.Solver, CacheFileVersion, Version)
	}
	var entries []cacheEntry
	lineNo := 1
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ent cacheEntry
		if err := json.Unmarshal(sc.Bytes(), &ent); err != nil {
			return 0, fmt.Errorf("solver: load cache %s:%d: corrupt entry: %w", path, lineNo, err)
		}
		if ent.Key == "" || ent.Res < int(Unsat) || ent.Res > int(Unknown) {
			return 0, fmt.Errorf("solver: load cache %s:%d: invalid entry (empty key or verdict %d)",
				path, lineNo, ent.Res)
		}
		entries = append(entries, ent)
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("solver: load cache %s: %w", path, err)
	}
	loaded := 0
	for _, ent := range entries {
		if s.cache.putIfAbsent(ent.Key, verdict{res: Result(ent.Res), model: ent.Model, loaded: true}) {
			loaded++
		}
	}
	return loaded, nil
}
