package solver

// Persistence and exchange of the verdict cache. A cache file makes even a
// forced cold campaign warm: the canonical query rendering (queryKey) is the
// entry key, so any process that re-issues a structurally identical query —
// across targets, runs and days — replays the verdict instead of re-solving
// it. The same CacheEntry encoding travels over the distributed campaign's
// wire protocol (internal/dispatch): workers ship newly learned verdicts
// back to the coordinator as deltas, and the coordinator rebroadcasts them,
// so a verdict proved anywhere in the fleet is reused everywhere.
//
// The file is defensive in both directions:
//
//   - writing stamps the layout version AND the solver revision into a
//     header line; LoadCache rejects a file written by either a different
//     layout or a different decision procedure (ErrCacheVersion), because a
//     stale verdict is worse than a cold cache;
//   - writing goes through a temp file + fsync + atomic rename (the same
//     discipline as the campaign manifest), so a process killed mid-save —
//     a crashed worker, a second SIGINT — can never leave a torn cache file
//     at the destination path: readers observe either the previous complete
//     cache or the new complete cache, nothing in between;
//   - loading never trusts blindly: entries are marked "loaded" and
//     re-verified on first use (see Solver.Check — Sat models re-evaluated
//     against the live query, a sampled subset of Unsat/Unknown verdicts
//     re-solved), so a corrupt or hand-edited file cannot inject verdicts
//     into an analysis. Imported delta entries get the same treatment.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"achilles/internal/expr"
)

// CacheFileVersion is the on-disk layout version of persisted verdict
// caches. Bump it when the header or entry encoding changes.
const CacheFileVersion = 1

// ErrCacheVersion reports a cache file written by a different file layout or
// solver revision. Callers should treat it as a cold cache (and overwrite
// the file on the next save), not as a failure of the analysis.
var ErrCacheVersion = errors.New("solver: cache file version mismatch")

// ErrCacheDisabled reports a persistence call on a solver whose verdict
// cache is disabled.
var ErrCacheDisabled = errors.New("solver: verdict cache is disabled")

// cacheHeader is the first line of a cache file.
type cacheHeader struct {
	Format int    `json:"format"`
	Solver string `json:"solver"`
}

// CacheEntry is one verdict in wire form — the JSONL line layout shared by
// cache files (SaveCache/LoadCache) and the distributed campaign's
// cache-delta exchange (ExportCache/ImportCache over internal/dispatch).
// The key is the canonical query rendering (not a hash), so an entry can
// never alias a different formula — the same soundness argument as the
// in-memory cache.
type CacheEntry struct {
	Key   string   `json:"k"`
	Res   int      `json:"r"`
	Model expr.Env `json:"m,omitempty"`
}

// valid reports whether the entry could have been produced by this solver
// revision: a usable key and a verdict in range.
func (e CacheEntry) valid() bool {
	return e.Key != "" && e.Res >= int(Unsat) && e.Res <= int(Unknown)
}

// ExportCache snapshots every cached verdict as wire entries, sorted by key
// so identical caches export identically. It returns ErrCacheDisabled on a
// cache-less solver.
func (s *Solver) ExportCache() ([]CacheEntry, error) {
	if s.cache == nil {
		return nil, ErrCacheDisabled
	}
	keys, verdicts := s.cache.snapshot()
	out := make([]CacheEntry, len(keys))
	for i := range keys {
		out[i] = CacheEntry{Key: keys[i], Res: int(verdicts[i].res), Model: verdicts[i].model}
	}
	return out, nil
}

// ImportCache merges wire entries into the verdict cache and returns how
// many were stored. The import is all-or-nothing on validation: every entry
// is checked first, and one malformed entry (empty key, out-of-range
// verdict) rejects the whole batch with zero entries merged. Accepted
// entries are marked loaded — re-verified on first use exactly like entries
// from a cache file, because a delta that crossed a process boundary is no
// more trustworthy than one that crossed a filesystem. Imported entries
// never displace verdicts the live process has already computed, and
// entries beyond a shard's capacity are dropped rather than evicting
// anything.
func (s *Solver) ImportCache(entries []CacheEntry) (int, error) {
	if s.cache == nil {
		return 0, ErrCacheDisabled
	}
	for i, ent := range entries {
		if !ent.valid() {
			return 0, fmt.Errorf("solver: import cache entry %d: invalid (empty key or verdict %d)", i, ent.Res)
		}
	}
	merged := 0
	for _, ent := range entries {
		if s.cache.putIfAbsent(ent.Key, verdict{res: Result(ent.Res), model: ent.Model, loaded: true}) {
			merged++
		}
	}
	return merged, nil
}

// SaveCache writes the current verdict cache to path: a JSON header line
// (layout version + solver revision) followed by one JSON entry per verdict,
// sorted by key so identical caches produce identical files. The write goes
// through a temp file + fsync + atomic rename, so a reader never observes a
// half-written cache — not even when the writing process is killed mid-save
// or the machine loses power between the write and the rename.
func (s *Solver) SaveCache(path string) error {
	entries, err := s.ExportCache()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".solver-cache-*")
	if err != nil {
		return fmt.Errorf("solver: save cache: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	writeLine := func(v any) error {
		line, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		return w.WriteByte('\n')
	}
	err = writeLine(cacheHeader{Format: CacheFileVersion, Solver: Version})
	for _, ent := range entries {
		if err != nil {
			break
		}
		err = writeLine(ent)
	}
	if err == nil {
		err = w.Flush()
	}
	// fsync before the rename: the rename must never publish a file whose
	// contents are still sitting in the page cache of a dying machine.
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("solver: save cache %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("solver: save cache: %w", err)
	}
	return nil
}

// LoadCache merges the verdicts persisted at path into the cache, marking
// every entry for first-use re-verification, and returns the number of
// entries loaded. A header written by a different layout or solver revision
// is ErrCacheVersion; a malformed header or entry line is an error carrying
// the line number. The load is all-or-nothing: the whole file is parsed and
// validated before anything is merged, so an error means zero entries were
// loaded and "treat it as a cold cache" is literally true. Loaded entries
// never displace verdicts the live process has already computed, and
// entries beyond a shard's capacity are dropped rather than evicting
// anything.
func (s *Solver) LoadCache(path string) (int, error) {
	if s.cache == nil {
		return 0, ErrCacheDisabled
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("solver: load cache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, fmt.Errorf("solver: load cache %s: %w", path, err)
		}
		return 0, fmt.Errorf("solver: load cache %s: empty file", path)
	}
	var hdr cacheHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return 0, fmt.Errorf("solver: load cache %s:1: corrupt header: %w", path, err)
	}
	if hdr.Format != CacheFileVersion || hdr.Solver != Version {
		return 0, fmt.Errorf("%w: %s was written as format %d / %s, this solver reads format %d / %s",
			ErrCacheVersion, path, hdr.Format, hdr.Solver, CacheFileVersion, Version)
	}
	var entries []CacheEntry
	lineNo := 1
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ent CacheEntry
		if err := json.Unmarshal(sc.Bytes(), &ent); err != nil {
			return 0, fmt.Errorf("solver: load cache %s:%d: corrupt entry: %w", path, lineNo, err)
		}
		if !ent.valid() {
			return 0, fmt.Errorf("solver: load cache %s:%d: invalid entry (empty key or verdict %d)",
				path, lineNo, ent.Res)
		}
		entries = append(entries, ent)
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("solver: load cache %s: %w", path, err)
	}
	return s.ImportCache(entries)
}
