// Package solver implements the SMT-lite decision procedure Achilles uses in
// place of the STP/Z3 solvers from the paper.
//
// The solver decides satisfiability of conjunctions of boolean expressions
// over 64-bit integers. The fragment it targets is the one the Achilles
// pipeline produces: linear (in)equalities and disequalities over message
// fields and client inputs, combined with the small disjunctions produced by
// the negate operator. Non-linear atoms (division, remainder, products of
// variables) are supported through bounded enumeration and final-model
// verification rather than propagation.
//
// The procedure is:
//
//  1. flatten the query into conjunctive atoms and disjunctions,
//  2. DPLL-style splitting over disjunctions,
//  3. for pure conjunctions: interval-domain propagation over the linear
//     atoms (including back-substitution through equalities, which solves
//     checksum chains directly), then
//  4. systematic search that enumerates the smallest domain first, falling
//     back to boundary-value heuristics when a domain is too large to
//     enumerate.
//
// Every Sat answer carries a model that has been re-verified by evaluating
// all original constraints, so Sat results are sound unconditionally. Unsat
// answers are sound because enumeration is exhaustive whenever domains are
// finite and within budget; otherwise the solver answers Unknown, mirroring
// how the paper treats Z3's quantifier-heuristic failures (§3.2).
//
// A Solver is safe for concurrent use: the search state is allocated per
// query, statistics are atomic counters, and verdicts are memoised in a
// sharded (mutex-striped) formula→verdict cache so that repeated queries —
// in particular the differentFrom and Trojan checks issued by concurrent
// analysis workers — hit memory instead of re-solving.
package solver

import (
	"context"
	"fmt"
	"sync/atomic"

	"achilles/internal/expr"
)

// Version identifies the decision-procedure revision. It is stamped into
// persisted verdict caches and folded into audit input fingerprints: bump it
// whenever a change can alter a verdict (fragment semantics, enumeration
// policy, Unknown treatment), so stale on-disk caches are discarded at load
// instead of replaying verdicts this solver would no longer produce.
//
// solver/2: interned expressions, learned conflict sets and incremental
// prefix solving (see intern.go, learn.go, prefix.go). The decision
// procedure is designed to be verdict- and model-preserving, but the fast
// path introduces cross-query state that the solver/1 revision did not
// have, so caches written by solver/1 are refused rather than replayed.
const Version = "solver/2"

// Result is the outcome of a satisfiability check.
type Result int

const (
	// Unsat means no assignment satisfies the constraints.
	Unsat Result = iota
	// Sat means a verified model was found.
	Sat
	// Unknown means the search budget was exhausted or the constraints left
	// a domain too large to enumerate.
	Unknown
)

// String returns "unsat", "sat" or "unknown".
func (r Result) String() string {
	switch r {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	default:
		return "unknown"
	}
}

// Stats accumulates counters across queries; read them for the evaluation
// harness, reset them with ResetStats.
type Stats struct {
	Queries      int // Check calls
	Decisions    int // variable assignments tried
	Propagations int // domain-tightening steps
	Splits       int // disjunction branches explored
	Verified     int // full models verified
	Unknowns     int // queries answered Unknown
	CacheHits    int // queries answered from the verdict cache
	CacheMisses  int // queries that had to be solved

	// Reverified counts loaded (persisted) verdicts confirmed against the
	// live query — Sat models re-evaluated, sampled Unsat/Unknown verdicts
	// re-solved. ReverifyFailed counts loaded verdicts the live check
	// contradicted; they are replaced, never served.
	Reverified     int
	ReverifyFailed int

	// Fast-path counters (see intern.go, learn.go): Interned is the number
	// of structurally distinct expressions in the arena, LearnedSets the
	// number of recorded conflict sets, LearnedHits the number of
	// conjunctions answered Unsat from the learned index without
	// re-propagating, FeasibleHits the number of split-node feasibility
	// gates answered "not refuted" from the complementary memo.
	Interned     int
	LearnedSets  int
	LearnedHits  int
	FeasibleHits int
}

// counters is the internal, concurrency-safe representation of Stats.
type counters struct {
	queries        atomic.Int64
	decisions      atomic.Int64
	propagations   atomic.Int64
	splits         atomic.Int64
	verified       atomic.Int64
	unknowns       atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	reverified     atomic.Int64
	reverifyFailed atomic.Int64
	learnedHits    atomic.Int64
	feasibleHits   atomic.Int64
}

// Options configure a Solver.
type Options struct {
	// MaxDecisions bounds the total assignments tried per query before the
	// solver answers Unknown. Zero means the default (200000).
	MaxDecisions int
	// MaxEnumDomain is the largest domain size that is exhaustively
	// enumerated; larger domains use boundary heuristics only. Zero means
	// the default (1 << 16).
	MaxEnumDomain int64
	// CacheShards is the number of mutex stripes of the verdict cache. Zero
	// means the default (64).
	CacheShards int
	// CacheShardEntries bounds the entries held per shard; one arbitrary
	// entry is evicted on overflow. Zero means the default (4096).
	CacheShardEntries int
	// DisableCache turns the verdict cache off; every Check solves afresh.
	DisableCache bool
}

// Solver decides satisfiability of constraint conjunctions. A Solver may be
// reused across queries and shared between goroutines: the search state is
// per-query, statistics are atomic, and the verdict cache is mutex-striped.
type Solver struct {
	opts        Options
	stats       counters
	cache       *verdictCache // nil when disabled
	loadedProbe atomic.Int64  // loaded Unsat/Unknown hits, for sampling
	arena       *internArena  // hash-consed expressions (intern.go)
	learned     *learnedSet   // refuted conjunction index (learn.go)
	propOK      *learnedSet   // non-refuted split-gate index (learn.go)
}

// New returns a Solver with the given options.
func New(opts Options) *Solver {
	if opts.MaxDecisions == 0 {
		opts.MaxDecisions = 200000
	}
	if opts.MaxEnumDomain == 0 {
		opts.MaxEnumDomain = 1 << 16
	}
	if opts.CacheShards == 0 {
		opts.CacheShards = 64
	}
	if opts.CacheShardEntries == 0 {
		opts.CacheShardEntries = 4096
	}
	s := &Solver{opts: opts, arena: newInternArena(), learned: newLearnedSet(), propOK: newLearnedSet()}
	if !opts.DisableCache {
		s.cache = newVerdictCache(opts.CacheShards, opts.CacheShardEntries)
	}
	return s
}

// Default returns a solver with default options.
func Default() *Solver { return New(Options{}) }

// Stats returns a copy of the accumulated statistics.
func (s *Solver) Stats() Stats {
	return Stats{
		Queries:      int(s.stats.queries.Load()),
		Decisions:    int(s.stats.decisions.Load()),
		Propagations: int(s.stats.propagations.Load()),
		Splits:       int(s.stats.splits.Load()),
		Verified:     int(s.stats.verified.Load()),
		Unknowns:     int(s.stats.unknowns.Load()),
		CacheHits:    int(s.stats.cacheHits.Load()),
		CacheMisses:  int(s.stats.cacheMisses.Load()),

		Reverified:     int(s.stats.reverified.Load()),
		ReverifyFailed: int(s.stats.reverifyFailed.Load()),

		Interned:     s.arena.size(),
		LearnedSets:  s.learned.size(),
		LearnedHits:  int(s.stats.learnedHits.Load()),
		FeasibleHits: int(s.stats.feasibleHits.Load()),
	}
}

// ResetStats zeroes the statistics counters.
func (s *Solver) ResetStats() {
	s.stats.queries.Store(0)
	s.stats.decisions.Store(0)
	s.stats.propagations.Store(0)
	s.stats.splits.Store(0)
	s.stats.verified.Store(0)
	s.stats.unknowns.Store(0)
	s.stats.cacheHits.Store(0)
	s.stats.cacheMisses.Store(0)
	s.stats.reverified.Store(0)
	s.stats.reverifyFailed.Store(0)
	s.stats.learnedHits.Store(0)
	s.stats.feasibleHits.Store(0)
}

// satLimit is the saturation bound for interval arithmetic: all domain
// endpoints are clamped to [-satLimit, satLimit] so bound computation cannot
// overflow int64.
const satLimit = int64(1) << 62

// Check decides the conjunction of the given constraints. On Sat, the
// returned model assigns every variable occurring in the constraints and has
// been verified by evaluation.
//
// Entries restored by LoadCache are not served blindly: a loaded Sat verdict
// is re-verified by evaluating the live query under its stored model, and a
// deterministic 1-in-reverifySample of loaded Unsat/Unknown verdicts is
// re-solved and compared. A loaded verdict the live check contradicts is
// replaced and counted in Stats.ReverifyFailed.
func (s *Solver) Check(constraints []*expr.Expr) (Result, expr.Env) {
	return s.CheckCtx(context.Background(), constraints)
}

// CheckCtx is Check with cancellation: when ctx is cancelled (or its
// deadline passes) mid-search, the query aborts and answers Unknown —
// callers already treat Unknown conservatively, so an aborted query can
// never flip a verdict, only withhold one. A verdict produced under a
// cancelled context is NOT memoised: caching it would poison the verdict
// cache with budget-dependent Unknowns that outlive the cancellation.
func (s *Solver) CheckCtx(ctx context.Context, constraints []*expr.Expr) (Result, expr.Env) {
	entries := s.internAll(constraints)
	keyFn := func() string { return queryKeyInterned(entries) }
	constraintsFn := func() []*expr.Expr { return constraints }
	return s.checkCached(ctx, keyFn, constraintsFn, func(ctx context.Context) (Result, expr.Env) {
		return s.check(ctx, flattenQuery(s, entries), nil)
	})
}

// checkCached runs the shared cache protocol around one solve: stats, key
// lookup, loaded-entry re-verification, the cancellation guard and the final
// memoisation. keyFn produces the cache key (assembled from cached interned
// renderings — byte-identical to the historical queryKey format),
// constraintsFn materialises the original expressions (consulted only when a
// loaded Sat model must be re-evaluated), and solve produces a fresh
// verdict.
func (s *Solver) checkCached(ctx context.Context, keyFn func() string,
	constraintsFn func() []*expr.Expr, solve func(context.Context) (Result, expr.Env)) (Result, expr.Env) {

	if ctx == nil {
		ctx = context.Background()
	}
	s.stats.queries.Add(1)
	var key string
	var loaded *verdict
	if s.cache != nil {
		key = keyFn()
		if ent, ok := s.cache.get(key); ok {
			if !ent.loaded || s.trustLoaded(key, ent, constraintsFn()) {
				s.stats.cacheHits.Add(1)
				return ent.res, ent.model.Clone()
			}
			loaded = &ent // distrusted: re-solve and compare below
		}
		s.stats.cacheMisses.Add(1)
	}
	res, model := solve(ctx)
	if ctx.Err() != nil && res == Unknown {
		// Aborted mid-search: the Unknown reflects the cancellation, not the
		// query. Report it, but neither cache it nor let it indict a loaded
		// verdict under re-verification.
		return res, model
	}
	if loaded != nil {
		// A Sat entry only reaches the re-solve path when its stored model
		// failed evaluation — that is a failure even if the fresh verdict is
		// Sat again. Unsat/Unknown entries reach it as the re-solve sample
		// and fail only on a verdict flip.
		if loaded.res == Sat || loaded.res != res {
			s.stats.reverifyFailed.Add(1)
		} else {
			s.stats.reverified.Add(1)
		}
	}
	if s.cache != nil {
		s.cache.put(key, verdict{res: res, model: model.Clone()})
	}
	return res, model
}

// reverifySample is the sampling period for loaded Unsat/Unknown verdicts:
// the first and every reverifySample-th such hit is re-solved instead of
// trusted, so a poisoned or stale cache file is noticed early without
// re-proving the whole file.
const reverifySample = 16

// trustLoaded decides whether a verdict restored from disk may be served
// as-is. Sat entries are verified unconditionally by evaluating the query
// under the stored model — cheap, and it makes a corrupt model harmless (the
// query just goes back to the solver). Unsat and Unknown entries carry no
// checkable witness, so a sampled subset is sent back to the solver instead;
// Check compares the fresh verdict against the loaded one. Trusted entries
// are promoted to regular entries, paying the verification cost once.
func (s *Solver) trustLoaded(key string, ent verdict, constraints []*expr.Expr) bool {
	switch ent.res {
	case Sat:
		for _, c := range constraints {
			v, err := expr.EvalBool(c, ent.model)
			if err != nil || !v {
				return false
			}
		}
		s.stats.reverified.Add(1)
	default:
		if s.loadedProbe.Add(1)%reverifySample == 1 {
			return false
		}
	}
	s.cache.put(key, verdict{res: ent.res, model: ent.model})
	return true
}

// flatQuery is one query flattened into interned conjunctive atoms and
// disjunctions, plus the optional domain seed of a path prefix.
type flatQuery struct {
	conj    []*internEntry
	disj    []*internEntry
	refuted bool // a literal false constraint was found
}

// flattenQuery flattens the top-level constraint entries of a query.
func flattenQuery(s *Solver, entries []*internEntry) flatQuery {
	var fq flatQuery
	for _, en := range entries {
		if !s.flattenInto(en.e, &fq.conj, &fq.disj) {
			fq.refuted = true
			return fq
		}
	}
	return fq
}

// check solves one flattened query without consulting the cache. seed, when
// non-nil, is a sound domain pre-narrowing for a subset of the conjunction
// (see Prefix) — propagation starts from it instead of full domains.
func (s *Solver) check(ctx context.Context, fq flatQuery, seed map[string]interval) (Result, expr.Env) {
	if fq.refuted {
		return Unsat, nil
	}
	budget := s.opts.MaxDecisions
	res, model := s.solve(ctx, fq.conj, fq.disj, seed, &budget)
	if res == Unknown {
		s.stats.unknowns.Add(1)
	}
	return res, model
}

// CheckExpr decides a single (possibly compound) boolean expression.
func (s *Solver) CheckExpr(e *expr.Expr) (Result, expr.Env) {
	return s.Check([]*expr.Expr{e})
}

// flattenInto splits e into conjunctive atoms (comparisons, non-linear
// leaves) and disjunction atoms, interning each. It returns false if a
// literal false was found.
func (s *Solver) flattenInto(e *expr.Expr, conj, disj *[]*internEntry) bool {
	switch e.Kind {
	case expr.KBool:
		return e.Val != 0
	case expr.KAnd:
		return s.flattenInto(e.Args[0], conj, disj) && s.flattenInto(e.Args[1], conj, disj)
	case expr.KOr:
		*disj = append(*disj, s.arena.intern(e))
		return true
	default:
		*conj = append(*conj, s.arena.intern(e))
		return true
	}
}

// disjuncts expands an Or tree into its top-level disjuncts.
func disjuncts(e *expr.Expr, out *[]*expr.Expr) {
	if e.Kind == expr.KOr {
		disjuncts(e.Args[0], out)
		disjuncts(e.Args[1], out)
		return
	}
	*out = append(*out, e)
}

// solve handles DPLL splitting over the disjunctions, then delegates pure
// conjunctions to solveConj. A cancelled ctx aborts the split tree with
// Unknown at the next node boundary. seed (possibly nil) is a sound domain
// pre-narrowing for a subset of conj; it stays valid down the split tree
// because branches only ever add atoms.
func (s *Solver) solve(ctx context.Context, conj, disj []*internEntry, seed map[string]interval, budget *int) (Result, expr.Env) {
	if ctx.Err() != nil {
		return Unknown, nil
	}
	if len(disj) == 0 {
		return s.solveConj(ctx, conj, seed, budget)
	}
	// Split-node pruning: refute the partial conjunction by propagation
	// before splitting further. Without this, a contradicted disjunct picked
	// near the root (e.g. a client-path negation whose first disjunct
	// contradicts the server path) poisons an entire subtree whose
	// infeasibility would otherwise only surface leaf by leaf — turning a
	// linear walk into an exponential one on conjunction-heavy Trojan
	// queries. Propagation-only refutation is sound (adding the remaining
	// disjuncts can never make an unsat conjunction satisfiable), so
	// verdicts are unchanged; only the visit order of the split tree
	// shrinks.
	if !s.feasibleSeeded(conj, seed) {
		return Unsat, nil
	}
	// Split on the first disjunction; propagation inside solveConj will
	// quickly kill infeasible branches.
	d := disj[0]
	rest := disj[1:]
	var parts []*expr.Expr
	disjuncts(d.e, &parts)
	sawUnknown := false
	for _, p := range parts {
		if *budget <= 0 {
			return Unknown, nil
		}
		s.stats.splits.Add(1)
		subConj := append([]*internEntry{}, conj...)
		subDisj := append([]*internEntry{}, rest...)
		if !s.flattenInto(p, &subConj, &subDisj) {
			continue
		}
		res, model := s.solve(ctx, subConj, subDisj, seed, budget)
		switch res {
		case Sat:
			return Sat, model
		case Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown, nil
	}
	return Unsat, nil
}

// interval is an inclusive integer range.
type interval struct {
	lo, hi int64
}

func (iv interval) empty() bool           { return iv.lo > iv.hi }
func (iv interval) point() bool           { return iv.lo == iv.hi }
func (iv interval) size() int64           { return satAdd(satSub(iv.hi, iv.lo), 1) }
func (iv interval) contains(v int64) bool { return v >= iv.lo && v <= iv.hi }

func satAdd(a, b int64) int64 {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		if b > 0 {
			return satLimit
		}
		return -satLimit
	}
	return clamp(c)
}

func satSub(a, b int64) int64 { return satAdd(a, satNeg(b)) }

func satNeg(a int64) int64 {
	if a == -satLimit || a == satLimit {
		return -a
	}
	return clamp(-a)
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if c/b != a || c > satLimit || c < -satLimit {
		if (a > 0) == (b > 0) {
			return satLimit
		}
		return -satLimit
	}
	return c
}

func clamp(v int64) int64 {
	if v > satLimit {
		return satLimit
	}
	if v < -satLimit {
		return -satLimit
	}
	return v
}

// conjState is the mutable state of a conjunction search. Domain reads are
// layered: the assignment, then the narrowings written this solve (domains),
// then the read-only seed (a prefix fixpoint), then the full interval — so a
// fresh state costs nothing per variable and search clones copy only what
// this solve actually narrowed. All reads must go through domainOf; a direct
// domains[v] lookup would misread an untouched variable as the empty-ish
// zero interval.
type conjState struct {
	entries  []*internEntry      // interned source atoms (for lazy varOrder)
	atoms    []*linAtom          // linearised atoms
	nonlin   []*expr.Expr        // atoms outside the linear fragment
	domains  map[string]interval // narrowings made during this solve
	seed     map[string]interval // read-only pre-narrowing (may be nil)
	assigned expr.Env            // fixed variables
	orig     []*expr.Expr        // original atoms for final verification
	varOrder []string            // deterministic variable ordering, built lazily
}

func (cs *conjState) clone() *conjState {
	nd := make(map[string]interval, len(cs.domains))
	for k, v := range cs.domains {
		nd[k] = v
	}
	na := make(expr.Env, len(cs.assigned))
	for k, v := range cs.assigned {
		na[k] = v
	}
	return &conjState{
		entries:  cs.entries, // immutable after build
		atoms:    cs.atoms,
		nonlin:   cs.nonlin,
		domains:  nd,
		seed:     cs.seed, // read-only, shared
		assigned: na,
		orig:     cs.orig,
		varOrder: cs.varOrder,
	}
}

// newConjState assembles the conjunction search state from interned entries:
// linearisations and variable lists come from the arena instead of being
// recomputed. Domains resolve through the seed (a sound pre-narrowing from a
// path prefix) and default to full — interval propagation is confluent, so
// starting from the prefix fixpoint reaches the same final domains as
// starting from the top (see prefix.go for the argument). varOrder is built
// on demand (ensureVarOrder): the propagation-only callers — feasibleSeeded
// at every split node, Prefix.Extend — never need it.
func (s *Solver) newConjState(entries []*internEntry, seed map[string]interval) *conjState {
	cs := &conjState{
		entries:  entries,
		domains:  make(map[string]interval, 8),
		seed:     seed,
		assigned: expr.Env{},
		orig:     make([]*expr.Expr, len(entries)),
	}
	for i, en := range entries {
		cs.orig[i] = en.e
		if en.la != nil {
			cs.atoms = append(cs.atoms, en.la)
		} else {
			cs.nonlin = append(cs.nonlin, en.e)
		}
	}
	return cs
}

// ensureVarOrder materialises the deterministic variable ordering; search
// and finish need it, propagation does not.
func (cs *conjState) ensureVarOrder() {
	if cs.varOrder == nil {
		cs.varOrder = mergeVars(cs.entries)
	}
}

// feasibleSeeded reports whether the budget-free refutation layer — the
// learned index, linearConflict, interval propagation — fails to refute the
// conjunction: false means provably unsat. It runs no search, which keeps it
// cheap enough for every DPLL split node. Fresh refutations are recorded in
// the learned index so the next conjunction over the same atom set answers
// from memory.
func (s *Solver) feasibleSeeded(conj []*internEntry, seed map[string]interval) bool {
	key := conflictKey(conj)
	if s.learned.has(key) {
		s.stats.learnedHits.Add(1)
		return false
	}
	// The gate is a pure function of the atom set (propagation is confluent;
	// see prefix.go), so the "not refuted" answer is memoised symmetrically:
	// sibling split branches rebuild the same partial conjunctions over and
	// over, and a positive hit skips the whole conjState build + propagation,
	// not just the refuted case. The answer feeds nothing downstream but the
	// split/no-split decision, so replaying it cannot shift verdicts.
	if s.propOK.has(key) {
		s.stats.feasibleHits.Add(1)
		return true
	}
	cs := s.newConjState(conj, seed)
	if linearConflict(cs.atoms) || !s.propagate(cs) {
		s.learned.add(key)
		return false
	}
	s.propOK.add(key)
	return true
}

// solveConj decides a pure conjunction of atoms. The budget-free refutation
// layer runs first (learned index, pairwise conflicts, propagation — all
// recorded/served via the learned index); only then is the decision budget
// spent on search.
func (s *Solver) solveConj(ctx context.Context, conj []*internEntry, seed map[string]interval, budget *int) (Result, expr.Env) {
	key := conflictKey(conj)
	if s.learned.has(key) {
		s.stats.learnedHits.Add(1)
		return Unsat, nil
	}
	cs := s.newConjState(conj, seed)
	if linearConflict(cs.atoms) || !s.propagate(cs) {
		s.learned.add(key)
		return Unsat, nil
	}
	cs.ensureVarOrder()
	return s.search(ctx, cs, budget)
}

// propagate runs domain tightening to a fixpoint (bounded rounds). It
// returns false when a domain became empty (conflict).
func (s *Solver) propagate(cs *conjState) bool {
	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, a := range cs.atoms {
			ok, ch := s.propagateAtom(cs, a)
			if !ok {
				return false
			}
			changed = changed || ch
		}
		// Try to finish non-linear atoms that became concrete.
		for _, nl := range cs.nonlin {
			if v, err := expr.EvalBool(nl, fullEnvFor(nl, cs)); err == nil && !v {
				return false
			}
		}
		if !changed {
			return true
		}
	}
	return true
}

// fullEnvFor returns an environment covering nl's variables if every one of
// them is pinned to a point domain; otherwise nil (EvalBool will error on the
// unbound variable, which callers treat as "not decidable yet").
func fullEnvFor(nl *expr.Expr, cs *conjState) expr.Env {
	env := expr.Env{}
	set := map[string]bool{}
	expr.CollectVars(nl, set)
	for v := range set {
		if x, ok := cs.assigned[v]; ok {
			env[v] = x
			continue
		}
		d := cs.domainOf(v)
		if !d.point() {
			return nil
		}
		env[v] = d.lo
	}
	return env
}

// domainOf returns the current interval of v, treating assignments as point
// domains and resolving untouched variables through the seed layer down to
// the full interval.
func (cs *conjState) domainOf(v string) interval {
	if x, ok := cs.assigned[v]; ok {
		return interval{x, x}
	}
	if iv, ok := cs.domains[v]; ok {
		return iv
	}
	if iv, ok := cs.seed[v]; ok {
		return iv
	}
	return interval{-satLimit, satLimit}
}

// setDomain narrows the domain of v, reporting (ok, changed).
func (cs *conjState) setDomain(v string, iv interval) (bool, bool) {
	cur := cs.domainOf(v)
	nlo, nhi := cur.lo, cur.hi
	if iv.lo > nlo {
		nlo = iv.lo
	}
	if iv.hi < nhi {
		nhi = iv.hi
	}
	if nlo > nhi {
		return false, true
	}
	if nlo == cur.lo && nhi == cur.hi {
		return true, false
	}
	cs.domains[v] = interval{nlo, nhi}
	return true, true
}

// propagateAtom tightens domains using one linear atom.
// Atom form: sum(coeff_i * x_i) + c  OP  0 with OP in {<=, ==, !=}.
func (s *Solver) propagateAtom(cs *conjState, a *linAtom) (ok, changed bool) {
	s.stats.propagations.Add(1)
	// Partition into assigned and free, folding assigned values into c.
	c := a.c
	type term struct {
		v     string
		coeff int64
	}
	var free []term
	for i, v := range a.vars {
		if x, okA := cs.assigned[v]; okA {
			c = satAdd(c, satMul(a.coeffs[i], x))
			continue
		}
		d := cs.domainOf(v)
		if d.point() {
			c = satAdd(c, satMul(a.coeffs[i], d.lo))
			continue
		}
		free = append(free, term{v, a.coeffs[i]})
	}
	if len(free) == 0 {
		switch a.op {
		case opLe:
			return c <= 0, false
		case opEq:
			return c == 0, false
		case opNe:
			return c != 0, false
		}
	}
	// Bounds of the free part. othersBounds(skip) recomputes the bounds of
	// c + Σ_{u≠skip} coeff_u·x_u from scratch: subtracting a term from a
	// *saturated* total would silently widen or corrupt the bound, so per-
	// target bounds are never derived from the totals.
	othersBounds := func(skip int) (lo, hi int64) {
		lo, hi = c, c
		for j, t := range free {
			if j == skip {
				continue
			}
			d := cs.domainOf(t.v)
			p1, p2 := satMul(t.coeff, d.lo), satMul(t.coeff, d.hi)
			if p1 > p2 {
				p1, p2 = p2, p1
			}
			lo = satAdd(lo, p1)
			hi = satAdd(hi, p2)
		}
		return lo, hi
	}
	sumLo, sumHi := othersBounds(-1)
	switch a.op {
	case opNe:
		// Only useful when a single free var with unit coefficient and the
		// excluded value sits on a domain boundary.
		if len(free) == 1 && (free[0].coeff == 1 || free[0].coeff == -1) {
			// coeff*x + c != 0 => x != -c/coeff
			excl := satNeg(c)
			if free[0].coeff == -1 {
				excl = c
			}
			d := cs.domainOf(free[0].v)
			if d.point() && d.lo == excl {
				return false, true
			}
			if d.lo == excl {
				okSet, ch := cs.setDomain(free[0].v, interval{excl + 1, d.hi})
				return okSet, ch
			}
			if d.hi == excl {
				okSet, ch := cs.setDomain(free[0].v, interval{d.lo, excl - 1})
				return okSet, ch
			}
		}
		return true, false
	case opLe:
		if sumLo > 0 {
			return false, true
		}
		// Tighten each free var: coeff*x <= -(c + others)
		for i, t := range free {
			othersLo, _ := othersBounds(i)
			bound := satNeg(othersLo) // coeff*x <= bound
			var iv interval
			if t.coeff > 0 {
				iv = interval{-satLimit, floorDiv(bound, t.coeff)}
			} else {
				iv = interval{ceilDiv(bound, t.coeff), satLimit}
			}
			okSet, ch := cs.setDomain(t.v, iv)
			if !okSet {
				return false, true
			}
			changed = changed || ch
		}
		return true, changed
	case opEq:
		if sumLo > 0 || sumHi < 0 {
			return false, true
		}
		for i, t := range free {
			othersLo, othersHi := othersBounds(i)
			// coeff*x = -(c + others) => bounds from others' range.
			vLo := satNeg(othersHi)
			vHi := satNeg(othersLo)
			var iv interval
			if t.coeff == 1 {
				iv = interval{vLo, vHi}
			} else if t.coeff == -1 {
				iv = interval{satNeg(vHi), satNeg(vLo)}
			} else if t.coeff > 0 {
				iv = interval{ceilDiv(vLo, t.coeff), floorDiv(vHi, t.coeff)}
			} else {
				iv = interval{ceilDiv(vHi, t.coeff), floorDiv(vLo, t.coeff)}
			}
			okSet, ch := cs.setDomain(t.v, iv)
			if !okSet {
				return false, true
			}
			changed = changed || ch
		}
		return true, changed
	}
	return true, false
}

// floorDiv and ceilDiv are division rounding toward -inf / +inf.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return clamp(q)
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return clamp(q)
}

// ctxCheckMask paces cancellation polling inside the enumeration loop:
// ctx.Err() takes a lock on cancellable contexts, so it is consulted every
// 64 decisions rather than on each one. 64 decisions re-propagate domains
// in well under a millisecond, keeping abort latency negligible.
const ctxCheckMask = 63

// search enumerates assignments. It always verifies candidate models against
// the original atoms before reporting Sat.
func (s *Solver) search(ctx context.Context, cs *conjState, budget *int) (Result, expr.Env) {
	if *budget <= 0 {
		return Unknown, nil
	}
	// Choose the unassigned variable with the smallest domain.
	bestVar := ""
	var bestSize int64
	for _, v := range cs.varOrder {
		if _, done := cs.assigned[v]; done {
			continue
		}
		d := cs.domainOf(v)
		if d.point() {
			cs.assigned[v] = d.lo
			continue
		}
		sz := d.size()
		if bestVar == "" || sz < bestSize {
			bestVar, bestSize = v, sz
		}
	}
	if bestVar == "" {
		return s.finish(cs)
	}
	d := cs.domainOf(bestVar)
	var candidates []int64
	exhaustive := false
	if bestSize <= s.opts.MaxEnumDomain {
		exhaustive = true
		for v := d.lo; v <= d.hi; v++ {
			candidates = append(candidates, v)
			if v == d.hi { // guard overflow when hi is MaxInt-ish
				break
			}
		}
	} else {
		candidates = boundaryCandidates(d)
	}
	sawUnknown := !exhaustive
	for _, v := range candidates {
		if *budget <= 0 {
			return Unknown, nil
		}
		if *budget&ctxCheckMask == 0 && ctx.Err() != nil {
			return Unknown, nil
		}
		*budget--
		s.stats.decisions.Add(1)
		child := cs.clone()
		child.assigned[bestVar] = v
		delete(child.domains, bestVar)
		if !s.propagate(child) {
			continue
		}
		res, model := s.search(ctx, child, budget)
		switch res {
		case Sat:
			return Sat, model
		case Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown, nil
	}
	return Unsat, nil
}

// boundaryCandidates picks heuristic values from a domain too large to
// enumerate. Small magnitudes come first so that models (and therefore the
// concrete Trojan examples shown to users) stay human-readable; the domain
// bounds follow for constraints that force large values.
func boundaryCandidates(d interval) []int64 {
	raw := []int64{0, 1, -1, 2, -2, 7, 42, 100, -100, 255,
		d.hi, d.lo, d.hi - 1, d.lo + 1, d.lo/2 + d.hi/2}
	seen := map[int64]bool{}
	var out []int64
	for _, v := range raw {
		if d.contains(v) && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// finish validates a full assignment against all original constraints.
func (s *Solver) finish(cs *conjState) (Result, expr.Env) {
	env := make(expr.Env, len(cs.assigned))
	for k, v := range cs.assigned {
		env[k] = v
	}
	for _, v := range cs.varOrder {
		if _, ok := env[v]; !ok {
			env[v] = cs.domainOf(v).lo
		}
	}
	s.stats.verified.Add(1)
	for _, a := range cs.orig {
		v, err := expr.EvalBool(a, env)
		if err != nil || !v {
			return Unsat, nil
		}
	}
	return Sat, env
}

// MustModel is a test helper: it checks the constraints and panics unless
// they are satisfiable, returning the model.
func (s *Solver) MustModel(constraints []*expr.Expr) expr.Env {
	res, m := s.Check(constraints)
	if res != Sat {
		panic(fmt.Sprintf("solver: expected sat, got %v for %v", res, constraints))
	}
	return m
}
