package solver

// Incremental prefix solving. A symbolic-execution path grows one
// constraint at a time, and every feasibility query the engine issues is
// "the whole path so far, plus one candidate condition". Re-solving the
// shared prefix from scratch on each query is where the analysis used to
// spend most of its time; a Prefix is the push/pop-style assumption handle
// that carries the prefix's solved form forward instead:
//
//   - the flattened, interned form of the path (conjunctive atoms and
//     disjunctions), extended incrementally;
//   - the interval-propagation fixpoint of the conjunctive atoms, used to
//     seed later propagation runs. Seeding is exact, not just sound: the
//     per-atom tighteners are monotone narrowing operators, so chaotic
//     iteration started from the prefix fixpoint (a set between the full
//     fixpoint and the top element) converges to the same fixpoint as
//     iteration started from unconstrained domains — the seeded and
//     unseeded solves agree on final domains, hence on verdicts and models.
//     The one caveat is the bounded round count in propagate: a run that
//     hits the round cap can stop above the fixpoint, and the seeded run
//     may then be strictly tighter. The cap exists only as a termination
//     backstop for adversarial narrowing chains; the golden-corpus,
//     -j equivalence and mutation-recall suites gate that it never binds on
//     real workloads;
//   - the interned-ID set of the conjunctive atoms, which gives the engine
//     an O(1) syntactic subsumption check (Implies) for frontier branching.
//
// A Prefix is immutable: Extend returns a new handle and never mutates the
// receiver, so sibling states forked from one parent — possibly on
// different workers — share the parent handle safely.
//
// Soundness of Implies (the engine-side subsumption shortcut): the engine
// only ever appends a constraint to a path after checking that path+cond is
// not Unsat, so the full current path is always a previously verified
// non-Unsat query. For a branch condition cond that is a linear comparison:
//
//   - cond already a conjunctive atom of the path: path+cond is the same
//     atom multiset as path (a duplicate atom changes neither propagation
//     fixpoints, pairwise conflicts, nor search), so the solver's answer is
//     the already-established "not Unsat" — feasible, no solver call
//     needed;
//   - ¬cond already a conjunctive atom: path+cond contains a complement
//     pair of linear comparisons over the same combination, which
//     linearConflict detects before any search — the solver's answer is
//     Unsat with certainty, again without the call.
//
// Both answers equal what CheckCtx would have returned, so the engine's
// branching decisions are unchanged — only the solver calls disappear. The
// check is gated to linearisable comparisons with at least one variable;
// anything else falls through to the solver.

import (
	"context"
	"sort"

	"achilles/internal/expr"
)

// Prefix is an immutable, incrementally extended path-condition prefix.
// The zero value is not valid; obtain one from Solver.NewPrefix.
type Prefix struct {
	s       *Solver
	raw     []*internEntry  // top-level constraints, in append order
	renders []string        // raw entries' renderings, kept sorted for cache keys
	conj    []*internEntry  // flattened conjunctive atoms
	disj    []*internEntry  // flattened disjunctions
	ids     map[uint64]bool // interned IDs of conj, for Implies
	domains map[string]interval
	// refuted marks a prefix containing a literal false constraint; the
	// domain seed is absent then and every check answers Unsat, exactly as
	// flattening the full constraint slice would.
	refuted bool
}

// NewPrefix returns the empty path prefix.
func (s *Solver) NewPrefix() *Prefix {
	return &Prefix{s: s, ids: map[uint64]bool{}}
}

// Extend returns the prefix with cond appended, carrying the propagation
// fixpoint forward. The receiver is unchanged.
func (p *Prefix) Extend(cond *expr.Expr) *Prefix {
	if p == nil {
		return nil
	}
	s := p.s
	en := s.arena.intern(cond)
	np := &Prefix{
		s:       s,
		raw:     append(append(make([]*internEntry, 0, len(p.raw)+1), p.raw...), en),
		renders: insertSorted(p.renders, en.render),
		conj:    append(make([]*internEntry, 0, len(p.conj)+1), p.conj...),
		disj:    append([]*internEntry{}, p.disj...),
		refuted: p.refuted,
	}
	if !np.refuted && !s.flattenInto(cond, &np.conj, &np.disj) {
		np.refuted = true
	}
	np.ids = make(map[uint64]bool, len(np.conj))
	for _, en := range np.conj {
		np.ids[en.id] = true
	}
	if !np.refuted {
		// Re-propagate from the parent fixpoint: typically one confirming
		// round plus whatever the new atoms narrow. A refuted or conflicted
		// conjunction leaves the seed absent — the per-query solve will
		// rediscover the refutation through the learned index at its usual
		// (budget-free) cost.
		cs := s.newConjState(np.conj, p.domains)
		if !linearConflict(cs.atoms) && s.propagate(cs) {
			// cs.domains holds only this round's narrowings (reads fall
			// through to the seed); the stored fixpoint must be the full
			// overlay so it can seed future solves on its own.
			merged := make(map[string]interval, len(p.domains)+len(cs.domains))
			for k, v := range p.domains {
				merged[k] = v
			}
			for k, v := range cs.domains {
				merged[k] = v
			}
			np.domains = merged
		}
	}
	return np
}

// insertSorted returns a fresh slice with s inserted into sorted at its
// sorted position. The input is never mutated (prefixes are immutable).
func insertSorted(sorted []string, s string) []string {
	idx := sort.SearchStrings(sorted, s)
	out := make([]string, 0, len(sorted)+1)
	out = append(out, sorted[:idx]...)
	out = append(out, s)
	return append(out, sorted[idx:]...)
}

// Len reports the number of constraints in the prefix.
func (p *Prefix) Len() int {
	if p == nil {
		return 0
	}
	return len(p.raw)
}

// Implies reports whether the prefix syntactically decides cond: (true, ok)
// when cond is one of the prefix's conjunctive atoms, (false, ok) when its
// complement is. ok is false when the prefix does not decide cond — callers
// must then ask the solver. See the package comment for why the two decided
// answers coincide with the solver's.
func (p *Prefix) Implies(cond *expr.Expr) (holds, ok bool) {
	if p == nil || p.refuted || len(p.ids) == 0 {
		return false, false
	}
	en := p.s.arena.intern(cond)
	if en.la == nil || len(en.la.vars) == 0 {
		return false, false
	}
	if p.ids[en.id] {
		return true, true
	}
	nen := p.s.arena.intern(expr.Not(cond))
	if nen.la == nil || len(nen.la.vars) == 0 {
		return false, false
	}
	if p.ids[nen.id] {
		return false, true
	}
	return false, false
}

// CheckPrefixAllCtx decides the conjunction of the prefix's constraints and
// every expression in conds. It is equivalent to CheckCtx over the
// materialised slice — same verdicts, models, cache keys and entries — but
// reuses the prefix's flattened form and propagation fixpoint. The analysis
// layer uses it for its path-plus-suffix queries (client-path binds, Trojan
// negation sets) where the suffix has more than one conjunct.
func (s *Solver) CheckPrefixAllCtx(ctx context.Context, p *Prefix, conds []*expr.Expr) (Result, expr.Env) {
	if p == nil {
		return s.CheckCtx(ctx, conds)
	}
	ens := s.internAll(conds)
	keyFn := func() string {
		extras := make([]string, len(ens))
		for i, en := range ens {
			extras[i] = en.render
		}
		sort.Strings(extras)
		return queryKeySortedMerge(p.renders, extras)
	}
	constraintsFn := func() []*expr.Expr {
		exprs := make([]*expr.Expr, 0, len(p.raw)+len(ens))
		for _, pe := range p.raw {
			exprs = append(exprs, pe.e)
		}
		for _, en := range ens {
			exprs = append(exprs, en.e)
		}
		return exprs
	}
	return s.checkCached(ctx, keyFn, constraintsFn, func(ctx context.Context) (Result, expr.Env) {
		fq := flatQuery{
			conj:    append(make([]*internEntry, 0, len(p.conj)+len(ens)), p.conj...),
			disj:    append([]*internEntry{}, p.disj...),
			refuted: p.refuted,
		}
		for _, en := range ens {
			if fq.refuted {
				break
			}
			if !s.flattenInto(en.e, &fq.conj, &fq.disj) {
				fq.refuted = true
			}
		}
		return s.check(ctx, fq, p.domains)
	})
}

// CheckPrefix decides prefix ∧ cond; see CheckPrefixCtx.
func (s *Solver) CheckPrefix(p *Prefix, cond *expr.Expr) (Result, expr.Env) {
	return s.CheckPrefixCtx(context.Background(), p, cond)
}

// CheckPrefixCtx decides the conjunction of the prefix's constraints and
// cond. It is equivalent to CheckCtx over the materialised constraint slice
// — same verdicts, same models, same cache keys and entries, same
// re-verification of loaded entries — but reuses the prefix's flattened form
// and propagation fixpoint instead of rebuilding them per query.
func (s *Solver) CheckPrefixCtx(ctx context.Context, p *Prefix, cond *expr.Expr) (Result, expr.Env) {
	if p == nil {
		return s.CheckCtx(ctx, []*expr.Expr{cond})
	}
	en := s.arena.intern(cond)
	keyFn := func() string { return queryKeySortedPlus(p.renders, en.render) }
	constraintsFn := func() []*expr.Expr {
		exprs := make([]*expr.Expr, 0, len(p.raw)+1)
		for _, pe := range p.raw {
			exprs = append(exprs, pe.e)
		}
		return append(exprs, en.e)
	}
	return s.checkCached(ctx, keyFn, constraintsFn, func(ctx context.Context) (Result, expr.Env) {
		conj := make([]*internEntry, len(p.conj), len(p.conj)+1)
		copy(conj, p.conj)
		fq := flatQuery{
			conj:    conj,
			disj:    append([]*internEntry{}, p.disj...),
			refuted: p.refuted,
		}
		if !fq.refuted && !s.flattenInto(cond, &fq.conj, &fq.disj) {
			fq.refuted = true
		}
		return s.check(ctx, fq, p.domains)
	})
}
