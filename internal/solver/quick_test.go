package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"achilles/internal/expr"
)

// The property tests compare the solver against a brute-force oracle on
// randomly generated constraint systems whose variables are explicitly
// bounded to a small box, so exhaustive enumeration of the box is the ground
// truth.

const quickBound = 4 // variables range over [-4, 4]

var quickVars = []string{"p", "q", "r"}

func genLinExpr(rnd *rand.Rand, depth int) *expr.Expr {
	if depth <= 0 || rnd.Intn(3) == 0 {
		if rnd.Intn(2) == 0 {
			return expr.Const(int64(rnd.Intn(9) - 4))
		}
		return expr.Var(quickVars[rnd.Intn(len(quickVars))])
	}
	switch rnd.Intn(4) {
	case 0:
		return expr.Add(genLinExpr(rnd, depth-1), genLinExpr(rnd, depth-1))
	case 1:
		return expr.Sub(genLinExpr(rnd, depth-1), genLinExpr(rnd, depth-1))
	case 2:
		return expr.Mul(expr.Const(int64(rnd.Intn(5)-2)), genLinExpr(rnd, depth-1))
	default:
		return expr.Neg(genLinExpr(rnd, depth-1))
	}
}

func genAtom(rnd *rand.Rand) *expr.Expr {
	l := genLinExpr(rnd, 2)
	r := genLinExpr(rnd, 2)
	switch rnd.Intn(6) {
	case 0:
		return expr.Eq(l, r)
	case 1:
		return expr.Ne(l, r)
	case 2:
		return expr.Lt(l, r)
	case 3:
		return expr.Le(l, r)
	case 4:
		return expr.Gt(l, r)
	default:
		return expr.Ge(l, r)
	}
}

// genSystem produces a random constraint system including box bounds.
func genSystem(rnd *rand.Rand) []*expr.Expr {
	var cs []*expr.Expr
	for _, name := range quickVars {
		v := expr.Var(name)
		cs = append(cs, expr.Ge(v, expr.Const(-quickBound)), expr.Le(v, expr.Const(quickBound)))
	}
	n := 1 + rnd.Intn(4)
	for i := 0; i < n; i++ {
		a := genAtom(rnd)
		if rnd.Intn(3) == 0 { // sometimes a disjunction
			a = expr.Or(a, genAtom(rnd))
		}
		cs = append(cs, a)
	}
	return cs
}

// bruteForce enumerates the whole box.
func bruteForce(cs []*expr.Expr) bool {
	env := expr.Env{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(quickVars) {
			for _, e := range cs {
				ok, err := expr.EvalBool(e, env)
				if err != nil || !ok {
					return false
				}
			}
			return true
		}
		for v := int64(-quickBound); v <= quickBound; v++ {
			env[quickVars[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// TestQuickAgainstBruteForce: the solver and the oracle agree on random
// bounded systems, and all Sat models verify.
func TestQuickAgainstBruteForce(t *testing.T) {
	s := Default()
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		cs := genSystem(rnd)
		want := bruteForce(cs)
		res, model := s.Check(cs)
		if res == Unknown {
			t.Logf("unexpected unknown on bounded box: %v", cs)
			return false
		}
		got := res == Sat
		if got != want {
			t.Logf("solver=%v oracle=%v for %v", res, want, cs)
			return false
		}
		if got {
			for _, e := range cs {
				ok, err := expr.EvalBool(e, model)
				if err != nil || !ok {
					t.Logf("bad model %v for %v", model, cs)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNegationConsistency: a system and its pointwise negation cannot
// both be unsat when the box is nonempty (at least one of C, ¬C holds at any
// point — weaker check: sat(C) or sat(!C) for single atoms).
func TestQuickNegationConsistency(t *testing.T) {
	s := Default()
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		atom := genAtom(rnd)
		var bounds []*expr.Expr
		for _, name := range quickVars {
			v := expr.Var(name)
			bounds = append(bounds, expr.Ge(v, expr.Const(-quickBound)), expr.Le(v, expr.Const(quickBound)))
		}
		r1, _ := s.Check(append(append([]*expr.Expr{}, bounds...), atom))
		r2, _ := s.Check(append(append([]*expr.Expr{}, bounds...), expr.Not(atom)))
		// Both unsat would be a soundness bug.
		return !(r1 == Unsat && r2 == Unsat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
