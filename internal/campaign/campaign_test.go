package campaign

import (
	"strings"
	"testing"

	"achilles/internal/core"
	"achilles/internal/protocols/registry"

	// Populate the registry: campaign tests run real (cheap) targets.
	_ "achilles/internal/protocols"
)

// cheapOptions is a small fleet that exercises every bundle feature fast:
// a Trojan-carrying target, a clean -fixed variant, and a symbolic-state
// target (paxos) whose reports carry state worlds.
func cheapOptions(jobs int) Options {
	return Options{
		Targets: []string{"kv", "kv-fixed", "paxos"},
		Jobs:    jobs,
	}
}

func mustRun(t *testing.T, opts Options) *Bundle {
	t.Helper()
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rm := range b.Manifest.Runs {
		if rm.Error != "" {
			t.Fatalf("job %s failed: %s", rm.Key(), rm.Error)
		}
	}
	return b
}

func TestPlan(t *testing.T) {
	jobs, err := Plan(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("empty default plan")
	}
	for _, j := range jobs {
		if j.Mode != core.ModeOptimized {
			t.Errorf("default plan contains mode %s", j.Mode)
		}
	}
	// Explicit targets canonicalise aliases and sort.
	jobs, err = Plan(Options{Targets: []string{"paxos", "kv"}, Modes: []core.Mode{core.ModeOptimized, core.ModeAPosteriori}})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("want 4 jobs, got %d", len(jobs))
	}
	if jobs[0].Key() != "kv/optimized" {
		t.Errorf("plan not sorted: first job %s", jobs[0].Key())
	}
	if _, err := Plan(Options{Targets: []string{"no-such-proto"}}); err == nil {
		t.Error("unknown target did not error")
	}
}

func TestBundleRoundTripIdentity(t *testing.T) {
	b := mustRun(t, cheapOptions(2))
	dir := t.TempDir()
	if err := b.Write(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	// write → read → diff is the identity on an unchanged run.
	if d := Diff(b, loaded); !d.Empty() {
		t.Fatalf("round-tripped bundle differs from original:\n%s", d.Render())
	}
	if d := Diff(loaded, loaded); !d.Empty() {
		t.Fatalf("self-diff of loaded bundle not empty:\n%s", d.Render())
	}
	if loaded.Manifest.Tool != Version {
		t.Errorf("manifest tool = %q, want %q", loaded.Manifest.Tool, Version)
	}
	// The paxos job must carry its §3.4 state world through the round trip.
	reps := loaded.Reports["paxos/optimized"]
	if len(reps) == 0 {
		t.Fatal("paxos job lost its reports")
	}
	if len(reps[0].State) == 0 {
		t.Error("paxos report lost its state world")
	}
	if !strings.Contains(reps[0].Class, "state{") {
		t.Errorf("paxos class line lost the state suffix: %q", reps[0].Class)
	}
}

func TestDiffFlagsSeededRemoval(t *testing.T) {
	b := mustRun(t, cheapOptions(2))
	dir := t.TempDir()
	if err := b.Write(dir); err != nil {
		t.Fatal(err)
	}
	mutated, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Seed a regression: drop the kv Trojan class from the new bundle.
	key := "kv/optimized"
	if len(mutated.Reports[key]) != 1 {
		t.Fatalf("want 1 kv report, got %d", len(mutated.Reports[key]))
	}
	removed := mutated.Reports[key][0]
	mutated.Reports[key] = nil

	d := Diff(b, mutated)
	if d.Empty() {
		t.Fatal("diff did not flag the seeded class removal")
	}
	var kv JobDiff
	for _, jd := range d.Jobs {
		if jd.Job == key {
			kv = jd
		}
	}
	if len(kv.Disappeared) != 1 || kv.Disappeared[0].ClassID != removed.ClassID {
		t.Fatalf("want exactly the removed class flagged as disappeared, got %+v", kv)
	}
	// The reverse direction reports it as appeared.
	rd := Diff(mutated, b)
	for _, jd := range rd.Jobs {
		if jd.Job == key && len(jd.Appeared) != 1 {
			t.Fatalf("reverse diff: want 1 appeared class, got %+v", jd)
		}
	}
	if !strings.Contains(d.Render(), "disappeared") {
		t.Errorf("render lacks a disappeared summary:\n%s", d.Render())
	}
}

func TestDiffFlagsChangedClass(t *testing.T) {
	b := mustRun(t, Options{Targets: []string{"kv"}, Jobs: 1})
	dir := t.TempDir()
	if err := b.Write(dir); err != nil {
		t.Fatal(err)
	}
	mutated, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Same symbolic class, different content (a verification verdict flip
	// changes the class line and therefore the fingerprint).
	rep := &mutated.Reports["kv/optimized"][0]
	rep.Verified = !rep.Verified
	rep.Class = strings.Replace(rep.Class, "verified=true", "verified=false", 1)
	rep.Fingerprint = "0000000000000000"

	d := Diff(b, mutated)
	var kv JobDiff
	for _, jd := range d.Jobs {
		if jd.Job == "kv/optimized" {
			kv = jd
		}
	}
	if len(kv.Changed) != 1 || len(kv.Appeared) != 0 || len(kv.Disappeared) != 0 {
		t.Fatalf("want exactly one changed class, got %+v", kv)
	}
}

func TestDiffFlagsJobSetChanges(t *testing.T) {
	both := mustRun(t, Options{Targets: []string{"kv", "kv-fixed"}, Jobs: 1})
	one := mustRun(t, Options{Targets: []string{"kv"}, Jobs: 1})
	d := Diff(both, one)
	if d.Empty() {
		t.Fatal("dropped job not flagged")
	}
	if len(d.JobsOnlyOld) != 1 || d.JobsOnlyOld[0] != "kv-fixed/optimized" {
		t.Fatalf("want kv-fixed/optimized flagged as old-only, got %v", d.JobsOnlyOld)
	}
}

func TestJobBudgetSplitsAcrossPool(t *testing.T) {
	// Identical class sets whatever the budget: the campaign inherits the
	// core determinism contract.
	b1 := mustRun(t, cheapOptions(1))
	b7 := mustRun(t, cheapOptions(7))
	if d := Diff(b1, b7); !d.Empty() {
		t.Fatalf("budget 1 vs 7 campaigns differ:\n%s", d.Render())
	}
	if b7.Manifest.Jobs != 7 {
		t.Errorf("manifest records jobs=%d, want 7", b7.Manifest.Jobs)
	}
}

// TestExtraDescriptors covers campaign-local targets (registry.Descriptor
// values passed via Options.Extra instead of global registration) — the
// surface the mutation engine rides on.
func TestExtraDescriptors(t *testing.T) {
	base := registry.MustLookup("kv")
	variant := base.Derive("kv+swap", "kv with verdicts swapped for the test", nil)

	// Named plans resolve extras exactly like registered targets.
	jobs, err := Plan(Options{Targets: []string{"kv", "kv+swap"}, Extra: []registry.Descriptor{variant}})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[1].Target != "kv+swap" {
		t.Fatalf("plan = %+v, want kv and kv+swap", jobs)
	}
	// Empty-target plans include extras alongside the whole registry.
	jobs, err = Plan(Options{Extra: []registry.Descriptor{variant}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range jobs {
		if j.Target == "kv+swap" {
			found = true
		}
	}
	if !found {
		t.Fatalf("default plan misses the extra target: %+v", jobs)
	}
	// An extra must not shadow nothing: unknown names still fail.
	if _, err := Plan(Options{Targets: []string{"kv+other"}, Extra: []registry.Descriptor{variant}}); err == nil {
		t.Fatal("unknown target accepted")
	}

	// Run both: the no-op derivation reproduces the base class set under
	// its own job key, and its manifest entry carries a fingerprint.
	b := mustRun(t, Options{Targets: []string{"kv", "kv+swap"}, Jobs: 2, Extra: []registry.Descriptor{variant}})
	if len(b.Manifest.Runs) != 2 {
		t.Fatalf("ran %d jobs, want 2", len(b.Manifest.Runs))
	}
	jd := DiffReports("kv-vs-variant", b.Reports["kv/optimized"], b.Reports["kv+swap/optimized"])
	if !jd.Empty() {
		t.Errorf("no-op variant diverged from base: %+v", jd)
	}
	for _, rm := range b.Manifest.Runs {
		if rm.InputFingerprint == "" {
			t.Errorf("job %s has no input fingerprint", rm.Key())
		}
	}
}
