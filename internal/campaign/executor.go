package campaign

// The execution-backend seam. Until the distributed refactor, RunCtx inlined
// its worker pool: plan the job graph, split the -j budget, run every job in
// this process. Executor extracts exactly that contract so the same campaign
// loop — baseline reuse, manifest assembly, interrupt bookkeeping — can feed
// jobs to different backends:
//
//   - LocalExecutor re-homes the historical in-process pool. It is the
//     default (Options.Executor == nil) and produces byte-identical bundles
//     to the pre-seam engine;
//   - internal/dispatch.Coordinator runs jobs on worker subprocesses over a
//     versioned JSONL stdio protocol — the distributed backend behind
//     `achilles-audit run -workers N`.
//
// The seam is deliberately job-granular: Run takes one job and returns its
// manifest entry plus report stream, so scheduling (lane count, budget
// split, work stealing, crash requeue) stays a backend concern while result
// semantics — what a finished, failed, truncated or interrupted job looks
// like — stay defined in one place, here. Whatever the backend, the per-job
// class set is a deterministic function of the job's inputs (the core
// contract pinned since PR 1), which is what keeps bundles ContentHash-equal
// across backends and worker counts.

import (
	"context"

	"achilles/internal/core"
	"achilles/internal/protocols/registry"
	"achilles/internal/solver"
)

// PlannedJob pairs a job with its input fingerprint — the stable shard key
// distributed backends partition the job graph by (the same fingerprint
// that drives incremental baseline reuse).
type PlannedJob struct {
	Job         Job
	Fingerprint string
}

// Executor is a campaign execution backend.
//
// The campaign engine calls Negotiate once per run with the global -j budget
// and the fingerprinted jobs that actually need to execute (after baseline
// reuse), then starts one feeder lane per returned grant; lane i issues
// sequential Run calls with parallelism grants[i]. Run must always return a
// usable manifest entry — backends report failures (a crashed worker pool, a
// vanished target) through RunManifest.Error, never by panicking or blocking
// forever. When the context is cancelled, in-flight Run calls must return
// promptly with an "interrupted: …" error entry, matching the local
// backend's semantics.
//
// Close releases backend resources (worker subprocesses, pipes). The
// campaign engine never closes an executor it was given — the caller that
// created the backend owns its lifetime, because a backend (and its warmed
// caches) may serve several campaigns.
type Executor interface {
	Negotiate(budget int, pending []PlannedJob) []int
	Run(ctx context.Context, j Job, parallelism int) (RunManifest, []Report)
	Close() error
}

// LocalExecutor is the in-process backend: jobs run on this process's
// goroutines against one shared solver, exactly as the pre-seam campaign
// engine ran them. It resolves targets through the campaign options, so
// campaign-local Extra descriptors (the mutation engine's generated
// variants) work here and only here — descriptors carry function values
// that cannot cross a process boundary.
type LocalExecutor struct {
	opts Options
	sol  *solver.Solver
}

// NewLocalExecutor returns the in-process backend for the given options,
// sharing sol's verdict cache across every job it runs. A nil solver gets
// solver.Default().
func NewLocalExecutor(opts Options, sol *solver.Solver) *LocalExecutor {
	if sol == nil {
		sol = solver.Default()
	}
	return &LocalExecutor{opts: opts, sol: sol}
}

// Negotiate reproduces the historical pool sizing: min(budget, pending)
// lanes, with the budget's remainder distributed so no slot is floored away
// (splitBudget).
func (e *LocalExecutor) Negotiate(budget int, pending []PlannedJob) []int {
	lanes := budget
	if lanes > len(pending) {
		lanes = len(pending)
	}
	return splitBudget(budget, lanes)
}

// Run executes one job in-process with the lane's parallelism grant.
func (e *LocalExecutor) Run(ctx context.Context, j Job, parallelism int) (RunManifest, []Report) {
	d, ok := e.opts.lookupTarget(j.Target)
	return runJob(ctx, j, d, ok, parallelism, e.sol, core.Observer{})
}

// Close is a no-op: the local backend holds no resources beyond the solver
// its caller owns.
func (e *LocalExecutor) Close() error { return nil }

// ExecuteJob runs one job against the global registry with the given solver
// — the single-job execution path shared by the local backend and the
// achilles-worker subprocess, so a job computes the same manifest entry and
// report stream whichever process hosts it. The observer streams live
// phase/Trojan/progress events (a worker forwards them as wire progress
// ticks); pass core.Observer{} for none. A nil solver gets
// solver.Default().
func ExecuteJob(ctx context.Context, j Job, parallelism int, sol *solver.Solver, obs core.Observer) (RunManifest, []Report) {
	if sol == nil {
		sol = solver.Default()
	}
	d, ok := registry.Lookup(j.Target)
	return runJob(ctx, j, d, ok, parallelism, sol, obs)
}
