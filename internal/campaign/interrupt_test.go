package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	_ "achilles/internal/protocols"
)

// TestRunCtxPreCancelled: a cancelled context still yields a complete
// artifact — every planned job has an entry, all marked interrupted, the
// manifest flagged — plus the ctx error for the caller's exit code.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := RunCtx(ctx, Options{Targets: []string{"kv", "fsp"}, Jobs: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if b == nil {
		t.Fatal("no bundle from an interrupted campaign")
	}
	if !b.Manifest.Interrupted {
		t.Fatal("manifest not marked Interrupted")
	}
	if len(b.Manifest.Runs) != 2 {
		t.Fatalf("manifest has %d entries, want 2", len(b.Manifest.Runs))
	}
	for _, rm := range b.Manifest.Runs {
		if !strings.HasPrefix(rm.Error, "interrupted: ") {
			t.Fatalf("entry %s not marked interrupted: %+v", rm.Key(), rm)
		}
	}
}

// TestRunCtxDeadlineMidCampaign: a deadline that strikes while jobs run
// leaves an interrupted bundle that round-trips through Write/Read.
func TestRunCtxDeadlineMidCampaign(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	b, err := RunCtx(ctx, Options{Jobs: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !b.Manifest.Interrupted {
		t.Fatal("manifest not marked Interrupted")
	}
	dir := filepath.Join(t.TempDir(), "bundle")
	if err := b.Write(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(dir)
	if err != nil {
		t.Fatalf("interrupted bundle failed to round-trip: %v", err)
	}
	if !loaded.Manifest.Interrupted {
		t.Fatal("Interrupted flag lost in the round trip")
	}
}

// TestInterruptedBaselineRefused: no job may reuse reports from an
// interrupted bundle, even when fingerprints match a clean-looking entry.
func TestInterruptedBaselineRefused(t *testing.T) {
	clean, err := Run(Options{Targets: []string{"kv"}, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Forge the worst case: a bundle whose entries all look clean but whose
	// campaign did not finish.
	interrupted := *clean
	interrupted.Manifest.Interrupted = true
	again, err := Run(Options{Targets: []string{"kv"}, Jobs: 2, Baseline: &interrupted})
	if err != nil {
		t.Fatal(err)
	}
	if again.Manifest.CachedJobs != 0 {
		t.Fatalf("%d job(s) reused from an interrupted baseline", again.Manifest.CachedJobs)
	}
	// Sanity: the same bundle without the flag IS reusable.
	warm, err := Run(Options{Targets: []string{"kv"}, Jobs: 2, Baseline: clean})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Manifest.CachedJobs == 0 {
		t.Fatal("clean baseline unexpectedly refused (reuse machinery broken?)")
	}
}

// TestManifestWrittenAtomically: the bundle directory never holds a manifest
// temp file after a write, and the manifest is valid JSON written last — a
// reader can only ever observe "no manifest" or a complete one.
func TestManifestWrittenAtomically(t *testing.T) {
	b, err := Run(Options{Targets: []string{"kv"}, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "bundle")
	if err := b.Write(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawManifest := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left in bundle dir", e.Name())
		}
		if e.Name() == ManifestName {
			sawManifest = true
		}
	}
	if !sawManifest {
		t.Fatal("manifest missing after Write")
	}
	if _, err := Read(dir); err != nil {
		t.Fatal(err)
	}
}
