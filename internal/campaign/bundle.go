package campaign

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FormatVersion is the on-disk bundle layout version. Read rejects bundles
// written by a newer layout rather than misinterpreting them.
const FormatVersion = 1

// ManifestName is the manifest file inside a bundle directory.
const ManifestName = "manifest.json"

// Counters is the flat counter map persisted in manifests (see
// core.Counters for the producing side).
type Counters map[string]int64

// Manifest is the machine-readable summary of one campaign run — the
// versioned header of an audit bundle.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Tool          string `json:"tool"`       // campaign.Version at write time
	CreatedAt     string `json:"created_at"` // RFC3339 UTC
	Jobs          int    `json:"jobs"`       // the global -j budget
	WallMS        int64  `json:"wall_ms"`    // end-to-end campaign wall time

	// Solver is the shared solver's cumulative statistics for the whole
	// campaign (per-job solver_* counters are snapshots of the same shared
	// solver and therefore cumulative too).
	Solver Counters `json:"solver,omitempty"`

	// Baseline records where reused reports came from (the -baseline dir)
	// and CachedJobs how many manifest entries were reused verbatim; both
	// are provenance only and excluded from diffing.
	Baseline   string `json:"baseline,omitempty"`
	CachedJobs int    `json:"cached_jobs,omitempty"`

	// Interrupted marks a campaign that was cancelled (SIGINT, timeout)
	// before every job ran. Interrupted jobs carry an "interrupted: …"
	// Error in their entries; the whole bundle is refused as an incremental
	// baseline and by the golden gate.
	Interrupted bool `json:"interrupted,omitempty"`

	// Runs has one entry per job, in deterministic (target, mode) order.
	Runs []RunManifest `json:"runs"`
}

// RunManifest is the manifest entry for one target×mode job.
type RunManifest struct {
	Target      string   `json:"target"`
	Mode        string   `json:"mode"`
	ReportFile  string   `json:"report_file"`
	Classes     int      `json:"classes"`
	ClientPaths int      `json:"client_paths,omitempty"`
	WallMS      int64    `json:"wall_ms"`
	Counters    Counters `json:"counters,omitempty"`
	// InputFingerprint is the job's input identity: the hash of the NL
	// model sources, analysis options, mode and engine/solver/campaign
	// revisions (registry.Descriptor.InputFingerprint). An incremental run
	// reuses a baseline entry only when its fingerprint matches exactly.
	InputFingerprint string `json:"input_fingerprint,omitempty"`
	// Cached marks an entry whose reports were reused verbatim from the
	// baseline bundle instead of being recomputed — kept visible so diffs,
	// the golden gate and humans know nothing ran for this job.
	Cached bool `json:"cached,omitempty"`
	// Truncated flags a run cut off by a MaxStates budget: its class set is
	// partial and must not be pinned as the complete corpus or reused as an
	// incremental baseline.
	Truncated bool `json:"truncated,omitempty"`
	// Error records a failed job; its report stream is absent.
	Error string `json:"error,omitempty"`
}

// Key returns the job key of a manifest entry.
func (rm RunManifest) Key() string { return rm.Target + "/" + rm.Mode }

// Report is one Trojan class as persisted in a job's JSONL report stream.
type Report struct {
	// Fingerprint is the stable content hash of Class (diff key).
	Fingerprint string `json:"fingerprint"`
	// ClassID is the symbolic identity (witness + state world); reports
	// sharing a ClassID but differing in Fingerprint are "changed".
	ClassID string `json:"class_id"`
	// Class is the canonical class line — byte-identical to the golden
	// corpus format.
	Class    string           `json:"class"`
	Witness  string           `json:"witness"`
	Concrete []int64          `json:"concrete"`
	Fields   []string         `json:"fields,omitempty"`
	State    map[string]int64 `json:"state,omitempty"`
	Verified bool             `json:"verified"`
	PathLen  int              `json:"path_len"`
}

// Bundle is an audit bundle: the manifest plus the per-job report streams,
// keyed by Job.Key(). It round-trips through Write and Read.
type Bundle struct {
	Manifest Manifest
	Reports  map[string][]Report
}

// ClassLines returns the sorted canonical class lines of one job — the
// golden-corpus representation of that job's result — and whether the job
// exists in the bundle.
func (b *Bundle) ClassLines(jobKey string) ([]string, bool) {
	reps, ok := b.Reports[jobKey]
	if !ok {
		return nil, false
	}
	lines := make([]string, len(reps))
	for i, r := range reps {
		lines[i] = r.Class
	}
	sort.Strings(lines)
	return lines, true
}

// JobKeys returns the sorted job keys present in the bundle.
func (b *Bundle) JobKeys() []string {
	keys := make([]string, 0, len(b.Reports))
	for k := range b.Reports {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ContentHash returns the bundle's content address: a SHA-256 (hex, 128-bit
// truncation) over the stable analysis content — the tool revision, the
// interrupted flag, and per job (in key order) its identity, error,
// truncated flag, input fingerprint and the exact report-stream bytes Write
// would produce. Volatile metadata (CreatedAt, WallMS, the -j budget, solver
// counters, baseline provenance, the Cached marks) is excluded, so two
// campaigns that found exactly the same thing hash identically whatever
// machine, parallelism or cache warmth produced them. The achillesd bundle
// store uses this as the storage key, which makes persistence idempotent:
// re-auditing an unchanged fleet re-derives the same address.
func (b *Bundle) ContentHash() (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%d\n%s\ninterrupted=%v\n", b.Manifest.FormatVersion, b.Manifest.Tool, b.Manifest.Interrupted)
	runs := append([]RunManifest{}, b.Manifest.Runs...)
	sort.Slice(runs, func(i, j int) bool { return runs[i].Key() < runs[j].Key() })
	for _, rm := range runs {
		fmt.Fprintf(h, "job %s error=%q truncated=%v fingerprint=%s classes=%d\n",
			rm.Key(), rm.Error, rm.Truncated, rm.InputFingerprint, rm.Classes)
		if rm.Error != "" {
			continue
		}
		for _, r := range b.Reports[rm.Key()] {
			line, err := json.Marshal(r)
			if err != nil {
				return "", fmt.Errorf("campaign: hash report %s: %w", rm.Key(), err)
			}
			h.Write(line)
			h.Write([]byte{'\n'})
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:32], nil
}

// reportFileName maps a job to its JSONL file inside the bundle directory.
// Mode names are lowercased and slash-free so the layout stays portable.
func reportFileName(j Job) string {
	mode := strings.ToLower(j.Mode.String())
	return j.Target + "." + mode + ".jsonl"
}

// ErrBundleExists reports a Write into a directory that already holds
// files. Writing a new manifest next to another plan's report streams would
// leave stale per-job .jsonl files that look like part of the new bundle;
// callers must opt into replacement explicitly (Overwrite / -force).
var ErrBundleExists = errors.New("campaign: bundle directory is not empty")

// Write persists the bundle under dir (created if needed): manifest.json
// plus one JSONL report file per successful job. Files are written with
// stable ordering so identical runs produce byte-identical bundles. A dir
// that already contains files is refused with ErrBundleExists — use
// Overwrite to replace a previous bundle in place.
func (b *Bundle) Write(dir string) error {
	if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
		return fmt.Errorf("%w: %s holds %d entr(ies)", ErrBundleExists, dir, len(entries))
	}
	return b.write(dir)
}

// Overwrite replaces the bundle at dir: the previous manifest and every
// *.jsonl report stream are removed first, so a stale per-job file from a
// previous (larger) plan can never survive next to the new manifest. Files
// that are not part of a bundle are left alone.
func (b *Bundle) Overwrite(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("campaign: overwrite bundle dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || (name != ManifestName && !strings.HasSuffix(name, ".jsonl")) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("campaign: overwrite bundle dir: %w", err)
		}
	}
	return b.write(dir)
}

// write is the unconditional persistence path shared by Write and Overwrite.
// The manifest is written LAST and atomically (temp file + rename into
// place): a bundle killed mid-write — power loss, a second SIGINT during the
// interrupted-bundle flush — is left without a manifest.json and is
// therefore unreadable, instead of presenting a manifest that references
// report streams which were never flushed. Read validates every referenced
// stream against the manifest, so "no manifest" (refused outright) and
// "complete manifest + complete streams" are the only observable states a
// later -baseline or diff can see.
func (b *Bundle) write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: create bundle dir: %w", err)
	}
	for _, rm := range b.Manifest.Runs {
		if rm.Error != "" {
			continue
		}
		reps := b.Reports[rm.Key()]
		var sb strings.Builder
		for _, r := range reps {
			line, err := json.Marshal(r)
			if err != nil {
				return fmt.Errorf("campaign: marshal report %s: %w", rm.Key(), err)
			}
			sb.Write(line)
			sb.WriteByte('\n')
		}
		path := filepath.Join(dir, rm.ReportFile)
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			return fmt.Errorf("campaign: write reports %s: %w", rm.Key(), err)
		}
	}
	mj, err := json.MarshalIndent(&b.Manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal manifest: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, ManifestName), append(mj, '\n'))
}

// writeFileAtomic writes data to path via a temp file in the same directory
// and an atomic rename, fsyncing the file first so the rename never
// publishes an empty or partial manifest.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("campaign: write manifest: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: write manifest: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fmt.Errorf("campaign: write manifest: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("campaign: write manifest: %w", err)
	}
	return nil
}

// Read loads a bundle from dir, validating the manifest and every report
// stream it references. A missing or malformed manifest, an unsupported
// format version, or a corrupt report line is an error.
func Read(dir string) (*Bundle, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("campaign: read manifest: %w", err)
	}
	b := &Bundle{Reports: map[string][]Report{}}
	if err := json.Unmarshal(raw, &b.Manifest); err != nil {
		return nil, fmt.Errorf("campaign: corrupt manifest in %s: %w", dir, err)
	}
	if b.Manifest.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("campaign: bundle %s has format version %d, this tool reads %d",
			dir, b.Manifest.FormatVersion, FormatVersion)
	}
	for _, rm := range b.Manifest.Runs {
		if rm.Error != "" {
			continue
		}
		if rm.ReportFile != filepath.Base(rm.ReportFile) || rm.ReportFile == "" {
			return nil, fmt.Errorf("campaign: manifest entry %s names invalid report file %q", rm.Key(), rm.ReportFile)
		}
		reps, err := readReports(filepath.Join(dir, rm.ReportFile))
		if err != nil {
			return nil, fmt.Errorf("campaign: job %s: %w", rm.Key(), err)
		}
		if len(reps) != rm.Classes {
			return nil, fmt.Errorf("campaign: job %s: manifest says %d classes, %s holds %d",
				rm.Key(), rm.Classes, rm.ReportFile, len(reps))
		}
		b.Reports[rm.Key()] = reps
	}
	return b, nil
}

// readReports parses one JSONL report stream.
func readReports(path string) ([]Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	reps := []Report{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Report
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("%s:%d: corrupt report line: %w", filepath.Base(path), lineNo, err)
		}
		if r.Fingerprint == "" || r.Class == "" {
			return nil, fmt.Errorf("%s:%d: report missing fingerprint or class", filepath.Base(path), lineNo)
		}
		reps = append(reps, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return reps, nil
}

// List scans root for bundle directories (direct children containing a
// manifest.json) and returns their manifests, sorted by creation time then
// name. Unreadable children are skipped.
func List(root string) ([]ListedBundle, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("campaign: list %s: %w", root, err)
	}
	var out []ListedBundle
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
		if err != nil {
			continue
		}
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			continue
		}
		out = append(out, ListedBundle{Dir: dir, Manifest: m})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Manifest.CreatedAt != out[j].Manifest.CreatedAt {
			return out[i].Manifest.CreatedAt < out[j].Manifest.CreatedAt
		}
		return out[i].Dir < out[j].Dir
	})
	return out, nil
}

// ListedBundle pairs a bundle directory with its manifest.
type ListedBundle struct {
	Dir      string
	Manifest Manifest
}
