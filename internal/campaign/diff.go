package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// Diffing compares two audit bundles class-by-class. The unit of comparison
// is the Trojan class: a class "appeared" when its symbolic identity
// (ClassID) exists only in the new bundle, "disappeared" when only in the
// old one, and "changed" when both bundles carry the identity but the full
// fingerprints differ (the concrete example or a verification verdict
// moved). Jobs present in only one bundle are reported separately so a
// registry addition or removal is visible without drowning in per-class
// noise.

// ClassChange describes one class-level difference within a job.
type ClassChange struct {
	ClassID string
	// Old/New are the class lines on each side; empty when absent.
	Old, New string
}

// JobDiff is the difference of one job key between two bundles.
type JobDiff struct {
	Job         string
	Appeared    []ClassChange // in new only
	Disappeared []ClassChange // in old only
	Changed     []ClassChange // same ClassID, different fingerprint
}

// Empty reports whether the job's class sets are identical.
func (jd JobDiff) Empty() bool {
	return len(jd.Appeared) == 0 && len(jd.Disappeared) == 0 && len(jd.Changed) == 0
}

// BundleDiff is the campaign-level difference between two bundles.
type BundleDiff struct {
	// JobsOnlyOld / JobsOnlyNew list job keys present in one bundle only.
	JobsOnlyOld []string
	JobsOnlyNew []string
	// Jobs holds the per-job class diffs for jobs present in both bundles,
	// sorted by job key; unchanged jobs are included with empty change
	// lists so consumers can verify coverage.
	Jobs []JobDiff
}

// Empty reports whether the two bundles carry identical job sets and
// identical class sets per job.
func (d *BundleDiff) Empty() bool {
	if len(d.JobsOnlyOld) > 0 || len(d.JobsOnlyNew) > 0 {
		return false
	}
	for _, jd := range d.Jobs {
		if !jd.Empty() {
			return false
		}
	}
	return true
}

// Diff compares two bundles.
func Diff(prev, next *Bundle) *BundleDiff {
	d := &BundleDiff{}
	oldKeys := prev.JobKeys()
	newKeys := next.JobKeys()
	newSet := map[string]bool{}
	for _, k := range newKeys {
		newSet[k] = true
	}
	oldSet := map[string]bool{}
	for _, k := range oldKeys {
		oldSet[k] = true
	}
	for _, k := range oldKeys {
		if !newSet[k] {
			d.JobsOnlyOld = append(d.JobsOnlyOld, k)
		}
	}
	for _, k := range newKeys {
		if !oldSet[k] {
			d.JobsOnlyNew = append(d.JobsOnlyNew, k)
		}
	}
	for _, k := range oldKeys {
		if !newSet[k] {
			continue
		}
		d.Jobs = append(d.Jobs, diffJob(k, prev.Reports[k], next.Reports[k]))
	}
	return d
}

// DiffReports compares two report streams of one logical job as a
// class-level diff — the same comparison Diff applies per job key, exposed
// for consumers that pair jobs across *different* keys, such as the
// mutation engine diffing a mutant target's stream against its unmutated
// baseline stream within one bundle.
func DiffReports(jobKey string, prev, next []Report) JobDiff {
	return diffJob(jobKey, prev, next)
}

// diffJob compares the class sets of one job. Within a job a ClassID can in
// principle map to several reports (distinct accepting paths yielding the
// same witness never happen today, but the format does not forbid it), so
// both sides are reduced to ClassID → sorted fingerprint/class-line sets
// before comparison.
func diffJob(key string, prev, next []Report) JobDiff {
	jd := JobDiff{Job: key}
	type classState struct {
		lines []string // sorted class lines
		fps   string   // sorted fingerprints, joined — the comparison key
	}
	collect := func(reps []Report) map[string]classState {
		byID := map[string][]Report{}
		for _, r := range reps {
			byID[r.ClassID] = append(byID[r.ClassID], r)
		}
		out := map[string]classState{}
		for id, rs := range byID {
			lines := make([]string, len(rs))
			fps := make([]string, len(rs))
			for i, r := range rs {
				lines[i] = r.Class
				fps[i] = r.Fingerprint
			}
			sort.Strings(lines)
			sort.Strings(fps)
			out[id] = classState{lines: lines, fps: strings.Join(fps, ",")}
		}
		return out
	}
	o := collect(prev)
	n := collect(next)
	ids := map[string]bool{}
	for id := range o {
		ids[id] = true
	}
	for id := range n {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		os, inOld := o[id]
		ns, inNew := n[id]
		switch {
		case inOld && !inNew:
			jd.Disappeared = append(jd.Disappeared, ClassChange{ClassID: id, Old: strings.Join(os.lines, "; ")})
		case inNew && !inOld:
			jd.Appeared = append(jd.Appeared, ClassChange{ClassID: id, New: strings.Join(ns.lines, "; ")})
		case os.fps != ns.fps:
			jd.Changed = append(jd.Changed, ClassChange{
				ClassID: id,
				Old:     strings.Join(os.lines, "; "),
				New:     strings.Join(ns.lines, "; "),
			})
		}
	}
	return jd
}

// Render prints the diff in a stable human-readable form: a summary line
// followed by one block per job with differences. An empty diff renders as
// a single "no changes" line.
func (d *BundleDiff) Render() string {
	var b strings.Builder
	appeared, disappeared, changed := 0, 0, 0
	for _, jd := range d.Jobs {
		appeared += len(jd.Appeared)
		disappeared += len(jd.Disappeared)
		changed += len(jd.Changed)
	}
	if d.Empty() {
		fmt.Fprintf(&b, "no changes across %d job(s)\n", len(d.Jobs))
		return b.String()
	}
	fmt.Fprintf(&b, "%d appeared, %d disappeared, %d changed Trojan class(es)\n",
		appeared, disappeared, changed)
	for _, k := range d.JobsOnlyOld {
		fmt.Fprintf(&b, "job only in old bundle: %s\n", k)
	}
	for _, k := range d.JobsOnlyNew {
		fmt.Fprintf(&b, "job only in new bundle: %s\n", k)
	}
	for _, jd := range d.Jobs {
		if jd.Empty() {
			continue
		}
		fmt.Fprintf(&b, "%s:\n", jd.Job)
		for _, c := range jd.Appeared {
			fmt.Fprintf(&b, "  + %s\n", c.New)
		}
		for _, c := range jd.Disappeared {
			fmt.Fprintf(&b, "  - %s\n", c.Old)
		}
		for _, c := range jd.Changed {
			fmt.Fprintf(&b, "  ~ %s\n    -> %s\n", c.Old, c.New)
		}
	}
	return b.String()
}
