package campaign

import (
	"testing"
)

// TestCampaignRaceStress is the standing guard for the rare data race once
// reported by CI's race job against a campaign worker goroutine (the trace
// was lost and some forty instrumented re-runs never reproduced it; code
// review found no unsynchronized shared state in the campaign layer). The
// guard re-runs a small multi-target campaign 50 times at -j 8 — worker pool
// contention, shared solver, budget splitting, all under whatever scheduler
// jitter the host provides — so that if the race still exists, the -race CI
// job gets repeated chances to capture a full trace. It also pins
// determinism: every iteration must produce the same class fingerprints.
//
// Skipped under -short: at 50 iterations it is a stress guard for the race
// job, not a unit test.
func TestCampaignRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress guard: skipped under -short (run by the -race CI job)")
	}
	const iterations = 50
	var want map[string][]string
	for i := 0; i < iterations; i++ {
		b, err := Run(Options{Targets: []string{"kv", "kv-fixed", "pbft"}, Jobs: 8})
		if err != nil {
			t.Fatalf("iteration %d: campaign failed: %v", i, err)
		}
		got := map[string][]string{}
		for key, reps := range b.Reports {
			for _, r := range reps {
				got[key] = append(got[key], r.Fingerprint)
			}
		}
		for _, rm := range b.Manifest.Runs {
			if rm.Error != "" {
				t.Fatalf("iteration %d: job %s failed: %s", i, rm.Key(), rm.Error)
			}
			if rm.Truncated {
				t.Fatalf("iteration %d: job %s truncated", i, rm.Key())
			}
		}
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("iteration %d: %d report streams, want %d", i, len(got), len(want))
		}
		for key, fps := range want {
			gfps := got[key]
			if len(gfps) != len(fps) {
				t.Fatalf("iteration %d: job %s has %d classes, want %d", i, key, len(gfps), len(fps))
			}
			for j := range fps {
				if gfps[j] != fps[j] {
					t.Fatalf("iteration %d: job %s class %d fingerprint drift: %s != %s", i, key, j, gfps[j], fps[j])
				}
			}
		}
	}
}
