package campaign

import (
	"math/rand"
	"os"
	"testing"
	"time"
)

// TestCampaignRaceStress is the standing guard for the rare data race once
// reported by CI's race job against a campaign worker goroutine (the trace
// was lost and some forty instrumented re-runs never reproduced it; code
// review found no unsynchronized shared state in the campaign layer). The
// guard re-runs a small multi-target campaign 50 times at -j 8 — worker pool
// contention, shared solver, budget splitting, all under whatever scheduler
// jitter the host provides — so that if the race still exists, the -race CI
// job gets repeated chances to capture a full trace. It also pins
// determinism: every iteration must produce the same class fingerprints.
//
// Each iteration feeds the jobs to the executor lanes in a freshly shuffled
// order (Options.ShuffleSeed), widening the schedule space beyond the fixed
// plan order. The seed and the resulting job feed order are logged on every
// failure path — and visible under -v — so a firing CAN be replayed: rerun
// with that exact seed instead of starting another blind forty-run hunt.
//
// Skipped under -short: at 50 iterations it is a stress guard for the race
// job, not a unit test.
func TestCampaignRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress guard: skipped under -short (run by the -race CI job)")
	}
	const iterations = 50
	targets := []string{"kv", "kv-fixed", "pbft"}
	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(os.Getpid())<<21))

	// feedOrder reproduces RunCtx's shuffled lane-feed order for a seed, so
	// a failure log shows the exact schedule that was in flight.
	jobs, err := Plan(Options{Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	feedOrder := func(seed int64) []string {
		order := make([]int, len(jobs))
		for i := range order {
			order[i] = i
		}
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		keys := make([]string, len(order))
		for k, i := range order {
			keys[k] = jobs[i].Key()
		}
		return keys
	}

	var want map[string][]string
	for i := 0; i < iterations; i++ {
		seed := rng.Int63()
		if seed == 0 {
			seed = 1 // 0 disables the shuffle hook
		}
		// Logged (shown on failure and under -v) so a -race firing names the
		// schedule that produced it.
		t.Logf("iteration %d: shuffle seed %d, job feed order %v", i, seed, feedOrder(seed))
		b, err := Run(Options{Targets: targets, Jobs: 8, ShuffleSeed: seed})
		if err != nil {
			t.Fatalf("iteration %d (seed %d, order %v): campaign failed: %v", i, seed, feedOrder(seed), err)
		}
		got := map[string][]string{}
		for key, reps := range b.Reports {
			for _, r := range reps {
				got[key] = append(got[key], r.Fingerprint)
			}
		}
		for _, rm := range b.Manifest.Runs {
			if rm.Error != "" {
				t.Fatalf("iteration %d (seed %d, order %v): job %s failed: %s", i, seed, feedOrder(seed), rm.Key(), rm.Error)
			}
			if rm.Truncated {
				t.Fatalf("iteration %d (seed %d, order %v): job %s truncated", i, seed, feedOrder(seed), rm.Key())
			}
		}
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("iteration %d (seed %d, order %v): %d report streams, want %d", i, seed, feedOrder(seed), len(got), len(want))
		}
		for key, fps := range want {
			gfps := got[key]
			if len(gfps) != len(fps) {
				t.Fatalf("iteration %d (seed %d, order %v): job %s has %d classes, want %d", i, seed, feedOrder(seed), key, len(gfps), len(fps))
			}
			for j := range fps {
				if gfps[j] != fps[j] {
					t.Fatalf("iteration %d (seed %d, order %v): job %s class %d fingerprint drift: %s != %s",
						i, seed, feedOrder(seed), key, j, gfps[j], fps[j])
				}
			}
		}
	}
}
