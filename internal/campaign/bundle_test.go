package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestBundle persists a real single-target bundle and returns its dir.
func writeTestBundle(t *testing.T) (string, *Bundle) {
	t.Helper()
	b := mustRun(t, Options{Targets: []string{"kv"}, Jobs: 1})
	dir := t.TempDir()
	if err := b.Write(dir); err != nil {
		t.Fatal(err)
	}
	return dir, b
}

func TestReadRejectsCorruptManifest(t *testing.T) {
	dir, _ := writeTestBundle(t)
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil || !strings.Contains(err.Error(), "corrupt manifest") {
		t.Fatalf("corrupt manifest not rejected: %v", err)
	}
}

func TestReadRejectsMissingManifest(t *testing.T) {
	if _, err := Read(t.TempDir()); err == nil {
		t.Fatal("missing manifest not rejected")
	}
}

func TestReadRejectsFutureFormatVersion(t *testing.T) {
	dir, b := writeTestBundle(t)
	b.Manifest.FormatVersion = FormatVersion + 1
	if err := b.Overwrite(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("future format version not rejected: %v", err)
	}
}

func TestWriteRefusesNonEmptyDir(t *testing.T) {
	dir, b := writeTestBundle(t)
	if err := b.Write(dir); !errors.Is(err, ErrBundleExists) {
		t.Fatalf("rewrite into existing bundle dir: want ErrBundleExists, got %v", err)
	}
	// Any pre-existing file blocks the write, not just bundle files.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(dir2); !errors.Is(err, ErrBundleExists) {
		t.Fatalf("write into dir with foreign file: want ErrBundleExists, got %v", err)
	}
	// An existing but empty dir is fine (claimed by claimRunDir-style flows).
	dir3 := t.TempDir()
	if err := b.Write(dir3); err != nil {
		t.Fatalf("write into empty dir: %v", err)
	}
}

// TestOverwriteRemovesStaleReports pins the clobber regression: writing a
// smaller plan over a larger bundle must not leave the removed job's .jsonl
// stream on disk next to the new manifest, while foreign files survive.
func TestOverwriteRemovesStaleReports(t *testing.T) {
	big := mustRun(t, Options{Targets: []string{"kv", "kv-fixed"}, Jobs: 1})
	dir := t.TempDir()
	if err := big.Write(dir); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("ops notes"), 0o644); err != nil {
		t.Fatal(err)
	}
	staleFile := ""
	for _, rm := range big.Manifest.Runs {
		if rm.Target == "kv-fixed" {
			staleFile = rm.ReportFile
		}
	}
	small := mustRun(t, Options{Targets: []string{"kv"}, Jobs: 1})
	if err := small.Overwrite(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, staleFile)); !os.IsNotExist(err) {
		t.Errorf("stale report %s survived Overwrite", staleFile)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("foreign file removed by Overwrite: %v", err)
	}
	loaded, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(small, loaded); !d.Empty() {
		t.Fatalf("overwritten bundle does not round-trip:\n%s", d.Render())
	}
}

func TestReadRejectsCorruptReportLine(t *testing.T) {
	dir, b := writeTestBundle(t)
	file := b.Manifest.Runs[0].ReportFile
	if err := os.WriteFile(filepath.Join(dir, file), []byte("{broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil || !strings.Contains(err.Error(), "corrupt report line") {
		t.Fatalf("corrupt report line not rejected: %v", err)
	}
}

func TestReadRejectsClassCountMismatch(t *testing.T) {
	dir, b := writeTestBundle(t)
	// Truncate the report stream behind the manifest's back: the seeded
	// regression a plain file-level corruption check would miss.
	file := b.Manifest.Runs[0].ReportFile
	if err := os.WriteFile(filepath.Join(dir, file), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil || !strings.Contains(err.Error(), "classes") {
		t.Fatalf("class count mismatch not rejected: %v", err)
	}
}

func TestReadRejectsEscapingReportFile(t *testing.T) {
	dir, b := writeTestBundle(t)
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(raw), b.Manifest.Runs[0].ReportFile, "../outside.jsonl", 1)
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil || !strings.Contains(err.Error(), "invalid report file") {
		t.Fatalf("path-escaping report file not rejected: %v", err)
	}
}

func TestList(t *testing.T) {
	root := t.TempDir()
	b := mustRun(t, Options{Targets: []string{"kv"}, Jobs: 1})
	for _, name := range []string{"run-b", "run-a"} {
		if err := b.Write(filepath.Join(root, name)); err != nil {
			t.Fatal(err)
		}
	}
	// A junk child without a manifest is skipped, not fatal.
	if err := os.MkdirAll(filepath.Join(root, "not-a-bundle"), 0o755); err != nil {
		t.Fatal(err)
	}
	listed, err := List(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 {
		t.Fatalf("want 2 bundles listed, got %d", len(listed))
	}
	// Equal timestamps fall back to directory order.
	if !strings.HasSuffix(listed[0].Dir, "run-a") {
		t.Errorf("list order: got %s first", listed[0].Dir)
	}
}
