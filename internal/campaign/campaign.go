// Package campaign is the fleet-audit engine: it runs every registered
// protocol target × analysis mode combination as one job graph and persists
// the outcome as a versioned, machine-readable audit bundle.
//
// This is the operational layer the paper's end goal implies (§1, §7): run
// Achilles continuously against a fleet of protocol implementations and
// catch Trojan-message regressions before attackers do. A single invocation
// of cmd/achilles audits one target and prints throwaway text; a campaign
// audits the whole registry catalog under one global -j budget and leaves a
// diffable artifact behind:
//
//   - jobs run on a bounded cross-target worker pool, so a cheap KV audit
//     proceeds on its own worker instead of queueing behind the Raft
//     exploration;
//   - all jobs share one concurrency-safe solver, so the sharded
//     formula→verdict cache is warm across targets that emit structurally
//     identical queries;
//   - the result is a Bundle: a manifest (tool version, jobs, wall time,
//     structured counters) plus one JSONL Trojan report stream per job,
//     where every class carries the stable fingerprint used for diffing.
//
// Diff compares two bundles class-by-class (appeared / disappeared /
// changed), which is what the conformance suite and CI consume instead of
// ad-hoc text output.
//
// Campaigns are incremental: every manifest entry records the job's input
// fingerprint (registry.Descriptor.InputFingerprint — NL model sources,
// exec options, mode, engine/solver/campaign revisions), and a run given a
// baseline bundle (Options.Baseline) reuses baseline reports verbatim for
// jobs whose fingerprint matches a clean entry, re-running only changed,
// new, failed or truncated jobs. Reused entries are marked Cached so the
// manifest never overstates what ran. Combined with the solver's persisted
// verdict cache (solver.SaveCache/LoadCache, the -cache flag), repeated
// audits of an unchanged fleet cost fingerprint recomputation instead of
// O(catalog) re-exploration.
package campaign

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"achilles/internal/core"
	"achilles/internal/protocols/registry"
	"achilles/internal/solver"
)

// Version identifies the campaign engine revision recorded in manifests.
// Bump it when the analysis pipeline changes in a way that makes bundles
// incomparable (class line format, negate semantics, solver fragment).
const Version = "achilles-audit/1"

// Job is one unit of the campaign graph: a registered target analysed in
// one mode.
type Job struct {
	Target string    // canonical registry name
	Mode   core.Mode // analysis mode
}

// Key is the job's stable identity in manifests and diffs.
func (j Job) Key() string { return j.Target + "/" + j.Mode.String() }

// ReportFile returns the name of the job's JSONL report stream inside a
// bundle directory.
func (j Job) ReportFile() string { return reportFileName(j) }

// Options configure a campaign run.
type Options struct {
	// Targets lists registry names to audit; empty means every registered
	// target.
	Targets []string
	// Modes lists the analysis modes to run per target; empty means
	// ModeOptimized only.
	Modes []core.Mode
	// Jobs is the global parallelism budget (the -j knob): it bounds the
	// total number of analysis workers across the whole campaign, shared
	// between concurrently running jobs. Values <= 0 mean 1.
	Jobs int
	// Solver is the shared solver; nil creates one solver.Default() whose
	// sharded verdict cache is shared by every job of the campaign.
	Solver *solver.Solver
	// Baseline is a previous bundle (typically Read from disk). A job whose
	// input fingerprint matches a clean baseline entry — same fingerprint,
	// no error, not truncated — reuses the baseline reports verbatim and is
	// marked Cached in the manifest; changed, new, failed and truncated
	// jobs re-run. Nil disables reuse.
	Baseline *Bundle
	// BaselineDir is recorded in the manifest for provenance when Baseline
	// is set (it does not affect reuse decisions).
	BaselineDir string
	// Extra lists campaign-local descriptors resolvable by this run in
	// addition to the global registry — the mutation engine injects its
	// generated mutant targets here without registering them globally.
	// Extras shadow registry entries of the same name and are appended to
	// the default plan when Targets is empty. Aliases are ignored.
	//
	// Extra descriptors carry function values and therefore only execute on
	// the in-process backend; a distributed Executor fails such jobs with a
	// "disappeared from the registry" manifest error.
	Extra []registry.Descriptor
	// Executor selects the execution backend for jobs that actually run.
	// Nil means the in-process LocalExecutor (the historical engine); a
	// dispatch.Coordinator runs jobs on worker subprocesses instead. The
	// campaign never closes the executor — its creator owns its lifetime.
	Executor Executor
	// ShuffleSeed is a scheduling-jitter test hook: when nonzero, the order
	// jobs are fed to the executor lanes is shuffled deterministically from
	// this seed instead of following plan order. Results are unaffected —
	// manifest entries stay in plan order and per-job class sets are
	// order-independent — so this only perturbs which lane picks up which
	// job when; the -race stress guard uses it to widen the schedule space
	// and logs the seed so a failing interleaving can be replayed.
	ShuffleSeed int64
}

// lookupTarget resolves a target name against the campaign-local extras
// first, then the global registry.
func (o Options) lookupTarget(name string) (registry.Descriptor, bool) {
	for i := range o.Extra {
		if o.Extra[i].Name == name {
			return o.Extra[i], true
		}
	}
	return registry.Lookup(name)
}

// Plan expands the options into the concrete job list, in deterministic
// (target, mode) order. Unknown target names are an error.
func Plan(opts Options) ([]Job, error) {
	names := opts.Targets
	if len(names) == 0 {
		names = registry.Names()
		for i := range opts.Extra {
			names = append(names, opts.Extra[i].Name)
		}
		sort.Strings(names)
	} else {
		canon := make([]string, len(names))
		for i, n := range names {
			d, ok := opts.lookupTarget(n)
			if !ok {
				return nil, fmt.Errorf("campaign: unknown target %q (registered: %v)", n, registry.Names())
			}
			canon[i] = d.Name
		}
		sort.Strings(canon)
		names = canon
	}
	modes := opts.Modes
	if len(modes) == 0 {
		modes = []core.Mode{core.ModeOptimized}
	}
	var jobs []Job
	seen := map[string]bool{}
	for _, n := range names {
		for _, m := range modes {
			j := Job{Target: n, Mode: m}
			if seen[j.Key()] {
				continue
			}
			seen[j.Key()] = true
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// Run executes the campaign and returns the in-memory bundle. The job graph
// runs on min(Jobs, jobs-to-run) pool workers; the global budget is split
// across them with the remainder distributed (splitBudget), so the campaign
// runs ~Jobs analysis workers in total and never floors slots away. Because
// the per-job Trojan class set is parallelism-independent (the core
// contract), the bundle's class sets are identical for every Jobs value.
//
// With Options.Baseline set the run is incremental: every job's input
// fingerprint (registry.Descriptor.InputFingerprint, salted with the
// campaign Version) is compared against the baseline manifest, and clean
// matches reuse the baseline reports verbatim — marked Cached so the
// manifest stays honest about what actually ran. Only changed, new,
// previously-failed or truncated jobs execute.
//
// A job that fails is recorded in its manifest entry (Error field) rather
// than aborting the campaign; Run returns an error only when the plan
// itself is invalid.
func Run(opts Options) (*Bundle, error) {
	return RunCtx(context.Background(), opts)
}

// RunCtx is Run under a context: cancellation (SIGINT, a -timeout deadline)
// aborts in-flight jobs mid-exploration and skips unstarted ones. The
// returned bundle is still complete as an artifact — every planned job has
// a manifest entry — but interrupted jobs carry an Error ("interrupted: …")
// and no report stream, and the manifest's Interrupted flag is set. An
// interrupted bundle is refused both as an incremental baseline
// (reuseFromBaseline) and by the golden gate: a campaign that did not
// finish must never be mistaken for the fleet's ground truth. RunCtx
// returns ctx.Err() alongside the bundle so callers can exit distinctly.
func RunCtx(ctx context.Context, opts Options) (*Bundle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	jobs, err := Plan(opts)
	if err != nil {
		return nil, err
	}
	budget := opts.Jobs
	if budget <= 0 {
		budget = 1
	}
	sol := opts.Solver
	if sol == nil {
		sol = solver.Default()
	}

	b := &Bundle{
		Manifest: Manifest{
			FormatVersion: FormatVersion,
			Tool:          Version,
			Jobs:          budget,
			CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		},
		Reports: map[string][]Report{},
	}
	runs := make([]RunManifest, len(jobs))
	reports := make([][]Report, len(jobs))

	// Fingerprint every job up front (campaign-local extras resolve first):
	// fingerprints decide baseline reuse here and are recorded in the
	// manifest either way, so THIS bundle can serve as the next run's
	// baseline — and they are the shard key a distributed executor
	// partitions the job graph by.
	fps := make([]string, len(jobs))
	for i, j := range jobs {
		if d, ok := opts.lookupTarget(j.Target); ok {
			fps[i] = d.InputFingerprint(j.Mode, Version)
		}
	}

	start := time.Now()
	var toRun []int
	for i, j := range jobs {
		if rm, reps, ok := reuseFromBaseline(opts.Baseline, j, fps[i]); ok {
			runs[i], reports[i] = rm, reps
			continue
		}
		toRun = append(toRun, i)
	}

	exec := opts.Executor
	if exec == nil {
		exec = NewLocalExecutor(opts, sol)
	}
	pending := make([]PlannedJob, len(toRun))
	for k, i := range toRun {
		pending[k] = PlannedJob{Job: jobs[i], Fingerprint: fps[i]}
	}
	if opts.ShuffleSeed != 0 {
		rng := rand.New(rand.NewSource(opts.ShuffleSeed))
		rng.Shuffle(len(toRun), func(a, b int) { toRun[a], toRun[b] = toRun[b], toRun[a] })
	}
	grants := exec.Negotiate(budget, pending)
	if len(grants) == 0 && len(toRun) > 0 {
		// Defensive: a backend must never negotiate the fleet to a halt with
		// jobs still pending. Fall back to one full-budget lane.
		grants = []int{budget}
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for _, grant := range grants {
		grant := grant
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					// Unstarted job after the cancel: record it as
					// interrupted instead of silently dropping the entry.
					runs[i] = InterruptedManifest(jobs[i], ctx.Err())
					continue
				}
				runs[i], reports[i] = exec.Run(ctx, jobs[i], grant)
			}
		}()
	}
	for _, i := range toRun {
		next <- i
	}
	close(next)
	wg.Wait()

	b.Manifest.WallMS = time.Since(start).Milliseconds()
	b.Manifest.Interrupted = ctx.Err() != nil
	if opts.Baseline != nil {
		b.Manifest.Baseline = opts.BaselineDir
	}
	for i := range jobs {
		runs[i].InputFingerprint = fps[i]
		if runs[i].Cached {
			b.Manifest.CachedJobs++
		}
		b.Manifest.Runs = append(b.Manifest.Runs, runs[i])
		// Failed jobs have no report stream — leave them out of Reports so
		// an in-memory bundle matches its own write→read round trip (Read
		// skips errored manifest entries too).
		if runs[i].Error == "" {
			b.Reports[jobs[i].Key()] = reports[i]
		}
	}
	st := sol.Stats()
	b.Manifest.Solver = Counters{
		"queries":         int64(st.Queries),
		"cache_hits":      int64(st.CacheHits),
		"cache_misses":    int64(st.CacheMisses),
		"unknowns":        int64(st.Unknowns),
		"reverified":      int64(st.Reverified),
		"reverify_failed": int64(st.ReverifyFailed),
	}
	return b, ctx.Err()
}

// InterruptedManifest records a job that cancellation prevented from running
// (or finishing). The Error marking matters beyond display: errored entries
// carry no report stream and are never reused as a baseline. Execution
// backends use it so an interrupted job looks the same whichever backend ran
// the campaign.
func InterruptedManifest(j Job, cause error) RunManifest {
	return ErrorManifest(j, "interrupted: "+cause.Error())
}

// ErrorManifest records a job that could not run, with the backend's reason —
// e.g. a distributed backend whose entire worker pool died.
func ErrorManifest(j Job, msg string) RunManifest {
	return RunManifest{
		Target:     j.Target,
		Mode:       j.Mode.String(),
		ReportFile: reportFileName(j),
		Error:      msg,
	}
}

// reuseFromBaseline decides whether a job may skip execution: the baseline
// must come from a campaign that ran to completion (an interrupted bundle is
// refused wholesale — it exists to show what a cut-short run saw, not to
// seed future runs), and must hold a manifest entry for the same job key
// that succeeded, was not truncated, carries a fingerprint, matches the
// job's current fingerprint, and has a report stream consistent with its
// class count. The returned manifest entry is the baseline's, marked Cached
// with WallMS zeroed (no work happened in this run).
func reuseFromBaseline(base *Bundle, j Job, fp string) (RunManifest, []Report, bool) {
	if base == nil || base.Manifest.Interrupted || fp == "" {
		return RunManifest{}, nil, false
	}
	for _, rm := range base.Manifest.Runs {
		if rm.Key() != j.Key() {
			continue
		}
		if rm.Error != "" || rm.Truncated || rm.InputFingerprint == "" || rm.InputFingerprint != fp {
			return RunManifest{}, nil, false
		}
		reps, ok := base.Reports[j.Key()]
		if !ok || len(reps) != rm.Classes {
			return RunManifest{}, nil, false
		}
		out := rm
		out.Cached = true
		out.WallMS = 0
		return out, append([]Report{}, reps...), true
	}
	return RunManifest{}, nil, false
}

// splitBudget distributes the global -j budget over the pool workers:
// every worker gets budget/workers, and the remainder lands on the first
// budget%workers workers — so a -j 8 campaign over 5 jobs runs 2+2+2+1+1
// analysis workers instead of flooring every job to 1 and idling 3 slots.
// The returned slice sums to exactly max(budget, workers).
func splitBudget(budget, workers int) []int {
	out := make([]int, workers)
	if workers == 0 {
		return out
	}
	base := budget / workers
	extra := budget % workers
	if base < 1 {
		base, extra = 1, 0
	}
	for w := range out {
		out[w] = base
		if w < extra {
			out[w]++
		}
	}
	return out
}

// runJob executes one target×mode analysis with the shared solver and the
// given intra-job parallelism, and converts the outcome into its manifest
// entry and report stream. A job cancelled mid-exploration is recorded as
// interrupted: its partial class set is discarded — a bundle must never
// present a cut-short job as that target's result.
func runJob(ctx context.Context, j Job, d registry.Descriptor, ok bool, parallelism int, sol *solver.Solver, obs core.Observer) (RunManifest, []Report) {
	rm := RunManifest{
		Target:     j.Target,
		Mode:       j.Mode.String(),
		ReportFile: reportFileName(j),
	}
	if !ok {
		rm.Error = fmt.Sprintf("target %q disappeared from the registry", j.Target)
		return rm, nil
	}
	t0 := time.Now()
	tgt := d.Target()
	aopts := d.Analysis
	aopts.Mode = j.Mode
	aopts.Parallelism = parallelism
	aopts.Solver = sol
	aopts.Observer = obs
	run, err := core.RunCtx(ctx, tgt, aopts)
	rm.WallMS = time.Since(t0).Milliseconds()
	if ctxErr := ctx.Err(); ctxErr != nil {
		rm.Error = "interrupted: " + ctxErr.Error()
		return rm, nil
	}
	if err != nil {
		rm.Error = err.Error()
		return rm, nil
	}
	rm.Classes = len(run.Analysis.Trojans)
	rm.ClientPaths = len(run.Clients.Paths)
	rm.Truncated = run.Truncated()
	rm.Counters = Counters(run.Counters())
	return rm, ReportsFromRun(tgt.FieldNames, run.Analysis.Trojans)
}

// ReportsFromRun converts a completed analysis' Trojan classes into the
// bundle report stream, in canonical class-line order — so a bundle is a
// deterministic function of the class set, independent of discovery order
// and parallelism. Every producer of persisted reports (the campaign engine,
// the achillesd serving layer) must go through this conversion: it is what
// makes daemon-produced bundles byte-identical to CLI-produced ones.
func ReportsFromRun(fields []string, trojans []core.TrojanReport) []Report {
	reports := make([]Report, 0, len(trojans))
	for _, tr := range trojans {
		rep := Report{
			Fingerprint: tr.Fingerprint(),
			ClassID:     tr.ClassID(),
			Class:       tr.ClassLine(),
			Witness:     tr.Witness.String(),
			Concrete:    tr.Concrete,
			Fields:      fields,
			Verified:    tr.VerifiedAccept && tr.VerifiedNotClient,
			PathLen:     tr.PathLen,
		}
		if len(tr.StateEnv) > 0 {
			rep.State = map[string]int64{}
			for k, v := range tr.StateEnv {
				rep.State[k] = v
			}
		}
		reports = append(reports, rep)
	}
	sort.Slice(reports, func(a, b int) bool { return reports[a].Class < reports[b].Class })
	return reports
}
