package campaign

// Executor-seam coverage: the budget-negotiation contract under the new
// backend interface (splitBudget edge cases the distributed refactor made
// load-bearing), the local backend's equivalence with the historical
// in-process engine, and the engine's behavior under a custom backend.

import (
	"context"
	"reflect"
	"slices"
	"testing"

	"achilles/internal/core"
	"achilles/internal/solver"
)

// TestSplitBudgetExecutorEdgeCases pins splitBudget under the executor seam
// for the degenerate shapes a backend can legally negotiate: more lanes than
// budget (every lane still gets one slot — no zero-starved lane), a zero
// budget (clamped up to one slot per lane rather than handing out zeros),
// and the single-lane split (the whole budget lands on the only lane). When
// the budget covers the lanes, the grants sum to exactly the budget; when
// it cannot, they sum to exactly one slot per lane — never zero anywhere.
func TestSplitBudgetExecutorEdgeCases(t *testing.T) {
	cases := []struct {
		name            string
		budget, workers int
		want            []int
	}{
		{"workers-exceed-budget", 2, 5, []int{1, 1, 1, 1, 1}},
		{"workers-far-exceed-budget", 1, 8, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{"zero-budget", 0, 3, []int{1, 1, 1}},
		{"zero-budget-single", 0, 1, []int{1}},
		{"single-worker-degenerate", 9, 1, []int{9}},
		{"single-worker-unit", 1, 1, []int{1}},
		{"exact-division", 6, 3, []int{2, 2, 2}},
		{"remainder-spread", 8, 5, []int{2, 2, 2, 1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := splitBudget(c.budget, c.workers)
			if !slices.Equal(got, c.want) {
				t.Fatalf("splitBudget(%d, %d) = %v, want %v", c.budget, c.workers, got, c.want)
			}
			sum := 0
			for _, g := range got {
				if g < 1 {
					t.Fatalf("splitBudget(%d, %d): zero-starved worker in %v", c.budget, c.workers, got)
				}
				sum += g
			}
			wantSum := c.budget
			if c.workers > wantSum {
				wantSum = c.workers
			}
			if sum != wantSum {
				t.Fatalf("splitBudget(%d, %d) sums to %d, want %d", c.budget, c.workers, sum, wantSum)
			}
		})
	}
}

// TestLocalExecutorNegotiate: the default backend reproduces the historical
// pool sizing — lanes = min(budget, pending jobs), remainder distributed.
func TestLocalExecutorNegotiate(t *testing.T) {
	pend := func(n int) []PlannedJob { return make([]PlannedJob, n) }
	e := NewLocalExecutor(Options{}, nil)
	cases := []struct {
		budget, pending int
		want            []int
	}{
		{8, 5, []int{2, 2, 2, 1, 1}},
		{2, 5, []int{1, 1}},
		{4, 0, []int{}},
		{1, 1, []int{1}},
		{3, 12, []int{1, 1, 1}},
	}
	for _, c := range cases {
		if got := e.Negotiate(c.budget, pend(c.pending)); !slices.Equal(got, c.want) {
			t.Errorf("Negotiate(%d, %d jobs) = %v, want %v", c.budget, c.pending, got, c.want)
		}
	}
}

// countingExecutor wraps the local backend and records every call, proving
// the campaign engine routes all execution through the seam.
type countingExecutor struct {
	inner      *LocalExecutor
	negotiated []PlannedJob
	ran        []string
	grants     []int
	closed     int
}

func (e *countingExecutor) Negotiate(budget int, pending []PlannedJob) []int {
	e.negotiated = append([]PlannedJob{}, pending...)
	return e.inner.Negotiate(budget, pending)
}

func (e *countingExecutor) Run(ctx context.Context, j Job, parallelism int) (RunManifest, []Report) {
	e.ran = append(e.ran, j.Key()) // single-lane campaigns only (no lock)
	e.grants = append(e.grants, parallelism)
	return e.inner.Run(ctx, j, parallelism)
}

func (e *countingExecutor) Close() error { e.closed++; return nil }

// TestCampaignRunsThroughExecutorSeam: with a custom executor installed,
// every non-cached job flows through Run with a fingerprinted pending list
// at Negotiate, the bundle is ContentHash-identical to a default-backend
// run, and the campaign does NOT close an executor it did not create.
func TestCampaignRunsThroughExecutorSeam(t *testing.T) {
	base := mustRun(t, Options{Targets: []string{"kv", "kv-fixed"}, Jobs: 1})

	ce := &countingExecutor{inner: NewLocalExecutor(Options{}, solver.Default())}
	b := mustRun(t, Options{Targets: []string{"kv", "kv-fixed"}, Jobs: 1, Executor: ce})

	if len(ce.ran) != 2 {
		t.Fatalf("executor ran %d jobs (%v), want 2", len(ce.ran), ce.ran)
	}
	if len(ce.negotiated) != 2 || ce.negotiated[0].Fingerprint == "" {
		t.Fatalf("Negotiate saw %v — want 2 fingerprinted pending jobs", ce.negotiated)
	}
	for _, g := range ce.grants {
		if g != 1 {
			t.Fatalf("lane grants %v, want all 1 under -j 1", ce.grants)
		}
	}
	if ce.closed != 0 {
		t.Fatal("campaign closed a caller-owned executor")
	}
	h1, err := base.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := b.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("custom-executor bundle drifted: %s != %s", h2, h1)
	}

	// Baseline reuse happens above the seam: a fully cached re-run must not
	// touch the executor at all.
	ce2 := &countingExecutor{inner: NewLocalExecutor(Options{}, solver.Default())}
	cached := mustRun(t, Options{Targets: []string{"kv", "kv-fixed"}, Jobs: 1, Executor: ce2, Baseline: b})
	if cached.Manifest.CachedJobs != 2 {
		t.Fatalf("expected full reuse, got %d cached jobs", cached.Manifest.CachedJobs)
	}
	if len(ce2.ran) != 0 || len(ce2.negotiated) != 0 {
		t.Fatalf("cached campaign still reached the executor: ran=%v negotiated=%d", ce2.ran, len(ce2.negotiated))
	}
}

// TestShuffleSeedIsResultInvariant: feeding the lanes in shuffled order must
// not change the bundle — manifest order and ContentHash are plan-order
// properties, not schedule properties.
func TestShuffleSeedIsResultInvariant(t *testing.T) {
	plain := mustRun(t, Options{Targets: []string{"kv", "kv-fixed", "pbft"}, Jobs: 2})
	want, err := plain.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 42, -7} {
		b := mustRun(t, Options{Targets: []string{"kv", "kv-fixed", "pbft"}, Jobs: 2, ShuffleSeed: seed})
		got, err := b.ContentHash()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: shuffled campaign drifted: %s != %s", seed, got, want)
		}
		for i, rm := range b.Manifest.Runs {
			if rm.Key() != plain.Manifest.Runs[i].Key() {
				t.Fatalf("seed %d: manifest order drifted at %d: %s != %s", seed, i, rm.Key(), plain.Manifest.Runs[i].Key())
			}
		}
	}
}

// TestExecuteJobMatchesLocalBackend: the exported single-job path (what
// achilles-worker runs) produces the identical manifest entry and report
// stream as the local backend — the per-job half of the distributed
// determinism argument.
func TestExecuteJobMatchesLocalBackend(t *testing.T) {
	j := Job{Target: "kv", Mode: core.ModeOptimized}
	local := NewLocalExecutor(Options{}, solver.Default())
	rmL, repsL := local.Run(context.Background(), j, 1)
	rmW, repsW := ExecuteJob(context.Background(), j, 1, solver.Default(), core.Observer{})
	rmL.WallMS, rmW.WallMS = 0, 0
	rmL.Counters, rmW.Counters = nil, nil
	if !reflect.DeepEqual(rmL, rmW) {
		t.Fatalf("manifest entries diverge:\nlocal:  %+v\nworker: %+v", rmL, rmW)
	}
	if len(repsL) != len(repsW) {
		t.Fatalf("report counts diverge: %d != %d", len(repsL), len(repsW))
	}
	for i := range repsL {
		if repsL[i].Fingerprint != repsW[i].Fingerprint || repsL[i].Class != repsW[i].Class {
			t.Fatalf("report %d diverges: %+v != %+v", i, repsL[i], repsW[i])
		}
	}

	// Unknown targets fail identically through both paths.
	bogus := Job{Target: "no-such-target", Mode: core.ModeOptimized}
	rmL, _ = local.Run(context.Background(), bogus, 1)
	rmW, _ = ExecuteJob(context.Background(), bogus, 1, nil, core.Observer{})
	if rmL.Error == "" || rmL.Error != rmW.Error {
		t.Fatalf("unknown-target errors diverge: %q != %q", rmL.Error, rmW.Error)
	}
}
