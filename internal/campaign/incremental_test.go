package campaign

// Incremental-campaign coverage: baseline reuse must be byte-faithful when
// inputs are unchanged, surgical when one target's inputs move, and refused
// outright for failed, truncated or fingerprint-less baseline entries — the
// reuse rules that keep an incremental audit exactly as trustworthy as a
// cold one.

import (
	"slices"
	"testing"
)

// TestIncrementalAllCached: unchanged fleet → every job reused, class sets
// byte-identical to the baseline, manifest honest about the reuse.
func TestIncrementalAllCached(t *testing.T) {
	base := mustRun(t, cheapOptions(2))
	dir := t.TempDir()
	if err := base.Write(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := cheapOptions(2)
	opts.Baseline = loaded
	opts.BaselineDir = dir
	warm := mustRun(t, opts)

	if warm.Manifest.CachedJobs != len(warm.Manifest.Runs) {
		t.Fatalf("want all %d jobs cached, got %d", len(warm.Manifest.Runs), warm.Manifest.CachedJobs)
	}
	if warm.Manifest.Baseline != dir {
		t.Errorf("manifest baseline = %q, want %q", warm.Manifest.Baseline, dir)
	}
	for _, rm := range warm.Manifest.Runs {
		if !rm.Cached {
			t.Errorf("job %s not marked cached", rm.Key())
		}
		if rm.WallMS != 0 {
			t.Errorf("cached job %s reports %d ms of work", rm.Key(), rm.WallMS)
		}
		if rm.InputFingerprint == "" {
			t.Errorf("job %s lost its input fingerprint", rm.Key())
		}
	}
	if d := Diff(base, warm); !d.Empty() {
		t.Fatalf("incremental bundle differs from baseline:\n%s", d.Render())
	}
	for _, key := range base.JobKeys() {
		bl, _ := base.ClassLines(key)
		wl, ok := warm.ClassLines(key)
		if !ok || !slices.Equal(bl, wl) {
			t.Errorf("%s: cached class lines not byte-identical to baseline", key)
		}
	}
}

// TestIncrementalSeededEditRerunsExactlyTouchedTarget: a model edit changes
// one target's fingerprint (seeded here by perturbing the baseline entry,
// which is indistinguishable from the current model having moved); exactly
// that target re-runs, everything else stays cached — and because the
// analysis is deterministic the re-run reproduces the same class set.
func TestIncrementalSeededEditRerunsExactlyTouchedTarget(t *testing.T) {
	base := mustRun(t, cheapOptions(2))
	touched := "kv/optimized"
	for i := range base.Manifest.Runs {
		if base.Manifest.Runs[i].Key() == touched {
			base.Manifest.Runs[i].InputFingerprint = "model-edit-moved-this-hash"
		}
	}
	opts := cheapOptions(2)
	opts.Baseline = base
	warm := mustRun(t, opts)

	for _, rm := range warm.Manifest.Runs {
		if rm.Key() == touched {
			if rm.Cached {
				t.Errorf("%s: edited target was reused from the baseline", touched)
			}
			continue
		}
		if !rm.Cached {
			t.Errorf("%s: untouched target re-ran", rm.Key())
		}
	}
	if want := len(warm.Manifest.Runs) - 1; warm.Manifest.CachedJobs != want {
		t.Errorf("cached jobs = %d, want %d", warm.Manifest.CachedJobs, want)
	}
	if d := Diff(base, warm); !d.Empty() {
		t.Fatalf("re-run of the touched target changed its class set:\n%s", d.Render())
	}
}

// TestIncrementalNeverReusesDirtyBaselineEntries: failed, truncated and
// fingerprint-less baseline entries (and ones whose report stream is
// inconsistent) must re-run, whatever their fingerprints say.
func TestIncrementalNeverReusesDirtyBaselineEntries(t *testing.T) {
	base := mustRun(t, cheapOptions(2))
	dirty := map[string]func(rm *RunManifest){
		"kv/optimized":       func(rm *RunManifest) { rm.Error = "simulated crash" },
		"kv-fixed/optimized": func(rm *RunManifest) { rm.Truncated = true },
		"paxos/optimized":    func(rm *RunManifest) { rm.InputFingerprint = "" },
	}
	for i := range base.Manifest.Runs {
		if mut, ok := dirty[base.Manifest.Runs[i].Key()]; ok {
			mut(&base.Manifest.Runs[i])
		}
	}
	opts := cheapOptions(2)
	opts.Baseline = base
	warm := mustRun(t, opts)
	for _, rm := range warm.Manifest.Runs {
		if _, isDirty := dirty[rm.Key()]; !isDirty {
			continue
		}
		if rm.Cached {
			t.Errorf("%s: dirty baseline entry was reused", rm.Key())
		}
		if rm.Error != "" || rm.Truncated {
			t.Errorf("%s: fresh run inherited dirty baseline flags: %+v", rm.Key(), rm)
		}
	}
	if warm.Manifest.CachedJobs != 0 {
		t.Errorf("cached jobs = %d, want 0 (every baseline entry was dirty)", warm.Manifest.CachedJobs)
	}

	// A class-count/report-stream mismatch (baseline tampering or bit rot)
	// also blocks reuse.
	base2 := mustRun(t, Options{Targets: []string{"kv"}, Jobs: 1})
	base2.Reports["kv/optimized"] = base2.Reports["kv/optimized"][:0]
	opts2 := Options{Targets: []string{"kv"}, Jobs: 1, Baseline: base2}
	warm2 := mustRun(t, opts2)
	if warm2.Manifest.Runs[0].Cached {
		t.Error("baseline entry with inconsistent report stream was reused")
	}
}

// TestIncrementalBundleChainsAsBaseline: an incremental bundle is itself a
// valid baseline — fingerprints survive the cached path and a third run over
// it is again fully cached (the continuous-audit steady state).
func TestIncrementalBundleChainsAsBaseline(t *testing.T) {
	base := mustRun(t, Options{Targets: []string{"kv"}, Jobs: 1})
	opts := Options{Targets: []string{"kv"}, Jobs: 1, Baseline: base}
	second := mustRun(t, opts)
	opts.Baseline = second
	third := mustRun(t, opts)
	if third.Manifest.CachedJobs != 1 {
		t.Fatalf("third-generation run not cached from second-generation bundle: %+v", third.Manifest.Runs[0])
	}
	if d := Diff(base, third); !d.Empty() {
		t.Fatalf("third-generation bundle drifted:\n%s", d.Render())
	}
}

// TestSplitBudget pins the remainder distribution: the -j 8 / 5 jobs case
// from the floored-budget bug runs 2+2+2+1+1 workers (total exactly 8, no
// idle slots), and the total never exceeds the budget when workers <= budget.
func TestSplitBudget(t *testing.T) {
	cases := []struct {
		budget, workers int
		want            []int
	}{
		{8, 5, []int{2, 2, 2, 1, 1}}, // the reported bug: was 1+1+1+1+1
		{8, 8, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{7, 2, []int{4, 3}},
		{3, 3, []int{1, 1, 1}},
		{5, 1, []int{5}},
		{1, 1, []int{1}},
		{4, 0, []int{}},
	}
	for _, c := range cases {
		got := splitBudget(c.budget, c.workers)
		if !slices.Equal(got, c.want) {
			t.Errorf("splitBudget(%d, %d) = %v, want %v", c.budget, c.workers, got, c.want)
			continue
		}
		sum := 0
		for _, v := range got {
			sum += v
			if v < 1 {
				t.Errorf("splitBudget(%d, %d): worker with %d slots", c.budget, c.workers, v)
			}
		}
		if c.workers > 0 && c.workers <= c.budget && sum != c.budget {
			t.Errorf("splitBudget(%d, %d) sums to %d, want the full budget", c.budget, c.workers, sum)
		}
	}
}
