package classic

import (
	"testing"

	"achilles/internal/lang"
	"achilles/internal/protocols/fsp"
)

func TestEnumerateSimpleServer(t *testing.T) {
	unit := lang.MustCompile(`
var msg [2]int;
func main() {
	recv(msg);
	if msg[0] != 5 { reject(); }
	if msg[1] < 0 { reject(); }
	if msg[1] > 2 { reject(); }
	accept();
}`)
	res, err := Enumerate(unit, Options{NumFields: 2, PerPath: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptingStates != 1 {
		t.Fatalf("accepting states = %d", res.AcceptingStates)
	}
	// Only 3 messages exist: (5,0), (5,1), (5,2).
	if len(res.Messages) != 3 {
		t.Fatalf("enumerated %d messages: %+v", len(res.Messages), res.Messages)
	}
	seen := map[int64]bool{}
	for _, m := range res.Messages {
		if m.Fields[0] != 5 || m.Fields[1] < 0 || m.Fields[1] > 2 {
			t.Fatalf("non-accepted message enumerated: %v", m.Fields)
		}
		if seen[m.Fields[1]] {
			t.Fatalf("duplicate message: %v", m.Fields)
		}
		seen[m.Fields[1]] = true
	}
}

func TestEnumerateRespectsPerPath(t *testing.T) {
	unit := lang.MustCompile(`
var msg [1]int;
func main() {
	recv(msg);
	if msg[0] < 0 { reject(); }
	if msg[0] > 100 { reject(); }
	accept();
}`)
	res, err := Enumerate(unit, Options{NumFields: 1, PerPath: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Messages) != 5 {
		t.Fatalf("messages = %d, want 5", len(res.Messages))
	}
}

// TestFSPEnumerationMixesTrojansAndValid reproduces the Table 1 point: the
// classic baseline's output mixes Trojan and valid messages with no way to
// tell them apart.
func TestFSPEnumerationMixesTrojansAndValid(t *testing.T) {
	res, err := Enumerate(fsp.ServerUnit(), Options{NumFields: fsp.NumFields, PerPath: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptingStates != 112 {
		t.Fatalf("accepting states = %d", res.AcceptingStates)
	}
	trojan, valid := 0, 0
	for _, m := range res.Messages {
		if !fsp.Accepts(m.Fields) {
			t.Fatalf("enumerated message is not accepted: %v", m.Fields)
		}
		if fsp.IsTrojan(m.Fields, false) {
			trojan++
		} else {
			valid++
		}
	}
	if trojan == 0 || valid == 0 {
		t.Fatalf("expected a mix, got %d trojan / %d valid", trojan, valid)
	}
}
