// Package classic implements the "classic symbolic execution" baseline of
// §6.2 / Table 1: vanilla symbolic execution of the server followed by
// message enumeration on every accepting path.
//
// Classic symbolic execution finds all messages the server accepts, but it
// cannot tell Trojan messages apart from valid ones — they share accepting
// paths — so its output drowns the 80 real Trojans in thousands of valid
// messages. The experiment harness labels each enumerated message with the
// ground-truth oracle to count true/false positives exactly as the paper's
// Table 1 does.
package classic

import (
	"time"

	"achilles/internal/expr"
	"achilles/internal/lang"
	"achilles/internal/solver"
	"achilles/internal/symexec"
)

// Message is one enumerated accepted message.
type Message struct {
	Fields  []int64
	StateID int // accepting server state that produced it
	PathLen int
}

// Options configure the baseline.
type Options struct {
	// NumFields is the message width (fields m0..m{n-1}).
	NumFields int
	// PerPath bounds how many distinct messages are enumerated per
	// accepting path (default 16). SMT solvers are poor at enumerating all
	// solutions (§6.2), which is exactly the weakness this baseline shows.
	PerPath int
	// Exec configures the engine; Solver overrides the solver.
	Exec   symexec.Options
	Solver *solver.Solver
	// MsgPrefix matches the engine's message variable naming (default "m").
	MsgPrefix string
}

// Result is the baseline output.
type Result struct {
	Messages        []Message
	AcceptingStates int
	Duration        time.Duration
	EngineStats     symexec.Stats
}

// Enumerate runs vanilla symbolic execution on the server and enumerates
// concrete accepted messages per accepting path using blocking clauses.
func Enumerate(server *lang.Unit, opts Options) (*Result, error) {
	if opts.PerPath == 0 {
		opts.PerPath = 16
	}
	if opts.Solver == nil {
		opts.Solver = solver.Default()
	}
	if opts.MsgPrefix == "" {
		opts.MsgPrefix = "m"
	}
	start := time.Now()
	execOpts := opts.Exec
	execOpts.Solver = opts.Solver
	engRes, err := symexec.Run(server, execOpts)
	if err != nil {
		return nil, err
	}
	out := &Result{EngineStats: engRes.Stats}
	for _, st := range engRes.ByStatus(symexec.StatusAccepted) {
		out.AcceptingStates++
		out.Messages = append(out.Messages, enumeratePath(st, opts)...)
	}
	out.Duration = time.Since(start)
	return out, nil
}

// enumeratePath asks the solver for up to PerPath distinct messages
// satisfying one accepting path. Naive blocking clauses (disjunctions over
// all fields) blow up the solver — the very inefficiency §6.2 ascribes to
// SMT-based enumeration — so the baseline varies one field at a time
// against a base model, which keeps every query a small conjunction.
func enumeratePath(st *symexec.State, opts Options) []Message {
	msgVars := make([]*expr.Expr, opts.NumFields)
	for f := range msgVars {
		msgVars[f] = expr.Var(opts.MsgPrefix + itoa(f))
	}
	res, model := opts.Solver.Check(st.Path)
	if res != solver.Sat {
		return nil
	}
	base := make([]int64, opts.NumFields)
	for f := range base {
		base[f] = model[msgVars[f].Name]
	}
	out := []Message{{Fields: base, StateID: st.ID, PathLen: len(st.Path)}}
	// Pinning constraints for "all fields except f equal the base".
	pin := func(except int) []*expr.Expr {
		q := append([]*expr.Expr{}, st.Path...)
		for g, mv := range msgVars {
			if g != except {
				q = append(q, expr.Eq(mv, expr.Const(base[g])))
			}
		}
		return q
	}
	// Round-robin over fields, one fresh value per field per round.
	exclusions := make([][]*expr.Expr, opts.NumFields)
	for f := range exclusions {
		exclusions[f] = []*expr.Expr{expr.Ne(msgVars[f], expr.Const(base[f]))}
	}
	exhausted := make([]bool, opts.NumFields)
	for len(out) < opts.PerPath {
		progress := false
		for f := 0; f < opts.NumFields && len(out) < opts.PerPath; f++ {
			if exhausted[f] {
				continue
			}
			q := append(pin(f), exclusions[f]...)
			res, model := opts.Solver.Check(q)
			if res != solver.Sat {
				exhausted[f] = true
				continue
			}
			progress = true
			v := model[msgVars[f].Name]
			fields := append([]int64{}, base...)
			fields[f] = v
			out = append(out, Message{Fields: fields, StateID: st.ID, PathLen: len(st.Path)})
			exclusions[f] = append(exclusions[f], expr.Ne(msgVars[f], expr.Const(v)))
		}
		if !progress {
			break
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
