package expr

import (
	"testing"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		name string
		got  *Expr
		want int64
	}{
		{"add", Add(Const(2), Const(3)), 5},
		{"sub", Sub(Const(2), Const(3)), -1},
		{"mul", Mul(Const(4), Const(3)), 12},
		{"div", Div(Const(7), Const(2)), 3},
		{"div-neg", Div(Const(-7), Const(2)), -3},
		{"mod", Mod(Const(7), Const(3)), 1},
		{"mod-neg", Mod(Const(-7), Const(3)), -1},
		{"neg", Neg(Const(5)), -5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !c.got.IsConst() {
				t.Fatalf("not folded to constant: %s", c.got)
			}
			if c.got.Val != c.want {
				t.Fatalf("got %d, want %d", c.got.Val, c.want)
			}
		})
	}
}

func TestIdentitySimplification(t *testing.T) {
	x := Var("x")
	cases := []struct {
		name string
		got  *Expr
		want *Expr
	}{
		{"add-zero-r", Add(x, Const(0)), x},
		{"add-zero-l", Add(Const(0), x), x},
		{"sub-zero", Sub(x, Const(0)), x},
		{"sub-self", Sub(x, x), Const(0)},
		{"mul-one-r", Mul(x, Const(1)), x},
		{"mul-one-l", Mul(Const(1), x), x},
		{"mul-zero", Mul(x, Const(0)), Const(0)},
		{"div-one", Div(x, Const(1)), x},
		{"neg-neg", Neg(Neg(x)), x},
		{"and-true", And(True(), x.lt0()), x.lt0()},
		{"and-false", And(False(), x.lt0()), False()},
		{"or-false", Or(False(), x.lt0()), x.lt0()},
		{"or-true", Or(True(), x.lt0()), True()},
		{"and-dup", And(x.lt0(), x.lt0()), x.lt0()},
		{"or-dup", Or(x.lt0(), x.lt0()), x.lt0()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !Equal(c.got, c.want) {
				t.Fatalf("got %s, want %s", c.got, c.want)
			}
		})
	}
}

// lt0 is a test helper producing a non-literal boolean expression.
func (e *Expr) lt0() *Expr { return newNode(&Expr{Kind: KLt, Args: []*Expr{e, Const(0)}}) }

func TestComparisonFolding(t *testing.T) {
	x := Var("x")
	if !Lt(Const(1), Const(2)).IsTrue() {
		t.Error("1 < 2 should fold to true")
	}
	if !Ge(Const(1), Const(2)).IsFalse() {
		t.Error("1 >= 2 should fold to false")
	}
	if !Eq(x, x).IsTrue() {
		t.Error("x == x should fold to true")
	}
	if !Ne(x, x).IsFalse() {
		t.Error("x != x should fold to false")
	}
	if !Le(x, x).IsTrue() {
		t.Error("x <= x should fold to true")
	}
	if !Lt(x, x).IsFalse() {
		t.Error("x < x should fold to false")
	}
}

func TestNotPushdown(t *testing.T) {
	x, y := Var("x"), Var("y")
	cases := []struct {
		got, want *Expr
	}{
		{Not(Lt(x, y)), Ge(x, y)},
		{Not(Le(x, y)), Gt(x, y)},
		{Not(Gt(x, y)), Le(x, y)},
		{Not(Ge(x, y)), Lt(x, y)},
		{Not(Eq(x, y)), Ne(x, y)},
		{Not(Ne(x, y)), Eq(x, y)},
		{Not(True()), False()},
		{Not(False()), True()},
	}
	for _, c := range cases {
		if !Equal(c.got, c.want) {
			t.Errorf("got %s, want %s", c.got, c.want)
		}
	}
	// Double negation through a non-comparison boolean.
	conj := And(Lt(x, y), Gt(x, Const(0)))
	if !Equal(Not(Not(conj)), conj) {
		t.Errorf("double negation not eliminated: %s", Not(Not(conj)))
	}
}

func TestEval(t *testing.T) {
	x, y := Var("x"), Var("y")
	env := Env{"x": 7, "y": -3}
	e := Add(Mul(x, Const(2)), Neg(y)) // 2x - y = 17
	v, err := Eval(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 17 {
		t.Fatalf("got %d, want 17", v)
	}
	b, err := EvalBool(And(Lt(y, x), Ne(x, Const(0))), env)
	if err != nil {
		t.Fatal(err)
	}
	if !b {
		t.Fatal("expected true")
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(Var("missing"), Env{}); err == nil {
		t.Error("unbound variable should error")
	}
	if _, err := Eval(Div(Var("x"), Var("y")), Env{"x": 1, "y": 0}); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := Eval(Mod(Var("x"), Var("y")), Env{"x": 1, "y": 0}); err == nil {
		t.Error("remainder by zero should error")
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right operand divides by zero; short-circuiting must skip it.
	x := Var("x")
	guarded := And(Ne(x, Const(0)), Gt(Div(Const(10), x), Const(1)))
	b, err := EvalBool(guarded, Env{"x": 0})
	if err != nil {
		t.Fatalf("short-circuit And evaluated rhs: %v", err)
	}
	if b {
		t.Fatal("expected false")
	}
	orG := Or(Eq(x, Const(0)), Gt(Div(Const(10), x), Const(1)))
	b, err = EvalBool(orG, Env{"x": 0})
	if err != nil {
		t.Fatalf("short-circuit Or evaluated rhs: %v", err)
	}
	if !b {
		t.Fatal("expected true")
	}
}

func TestSubstitute(t *testing.T) {
	x, y := Var("x"), Var("y")
	e := Add(x, Mul(y, Const(3)))
	got := Substitute(e, map[string]*Expr{"x": Const(1), "y": Const(2)})
	if !got.IsConst() || got.Val != 7 {
		t.Fatalf("got %s, want 7", got)
	}
	// Partial substitution keeps the other variable.
	got = Substitute(e, map[string]*Expr{"y": Const(0)})
	if !Equal(got, x) {
		t.Fatalf("got %s, want x", got)
	}
	// Substituting a variable by another expression.
	got = Substitute(Lt(x, Const(5)), map[string]*Expr{"x": Add(y, Const(1))})
	want := Lt(Add(y, Const(1)), Const(5))
	if !Equal(got, want) {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestVars(t *testing.T) {
	e := And(Lt(Var("b"), Var("a")), Eq(Var("c"), Add(Var("a"), Const(1))))
	got := Vars(e)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRenameVars(t *testing.T) {
	e := Add(Var("x"), Var("y"))
	got := RenameVars(e, func(n string) string { return "c_" + n })
	want := Add(Var("c_x"), Var("c_y"))
	if !Equal(got, want) {
		t.Fatalf("got %s, want %s", got, want)
	}
	// Identity rename shares the node.
	if RenameVars(e, func(n string) string { return n }) != e {
		t.Fatal("identity rename should return the same node")
	}
}

func TestString(t *testing.T) {
	x, y := Var("x"), Var("y")
	cases := []struct {
		e    *Expr
		want string
	}{
		{Add(x, Mul(y, Const(2))), "x + y * 2"},
		{Mul(Add(x, y), Const(2)), "(x + y) * 2"},
		{Sub(x, Sub(y, Const(1))), "x - (y - 1)"},
		{And(Lt(x, y), Ne(x, Const(0))), "x < y && x != 0"},
		{Or(And(Lt(x, y), Ne(x, Const(0))), Eq(y, Const(2))), "x < y && x != 0 || y == 2"},
		{Neg(x), "-x"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestHashAndEqual(t *testing.T) {
	a := Add(Var("x"), Const(1))
	b := Add(Var("x"), Const(1))
	if a.Hash() != b.Hash() {
		t.Error("structurally equal expressions must hash equal")
	}
	if !Equal(a, b) {
		t.Error("structurally equal expressions must compare equal")
	}
	c := Add(Var("x"), Const(2))
	if Equal(a, c) {
		t.Error("different expressions compare equal")
	}
}

func TestAndAllOrAll(t *testing.T) {
	if !AndAll(nil).IsTrue() {
		t.Error("empty conjunction should be true")
	}
	if !OrAll(nil).IsFalse() {
		t.Error("empty disjunction should be false")
	}
	x := Var("x")
	cs := []*Expr{Gt(x, Const(0)), Lt(x, Const(10))}
	if got := AndAll(cs); got.Kind != KAnd {
		t.Errorf("got %s", got)
	}
}

func TestSize(t *testing.T) {
	if Size(Const(1)) != 1 {
		t.Error("const size")
	}
	if Size(Add(Var("x"), Const(1))) != 3 {
		t.Error("add size")
	}
}
