package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refTree is a reference AST built without any simplification. The property
// tests evaluate it with naive recursive semantics and compare against Eval
// on the tree rebuilt through the simplifying constructors, proving the
// constructors preserve semantics.
type refTree struct {
	kind Kind
	val  int64
	name string
	args []*refTree
}

var intKinds = []Kind{KAdd, KSub, KMul, KDiv, KMod, KNeg}
var cmpKinds = []Kind{KEq, KNe, KLt, KLe, KGt, KGe}
var boolKinds = []Kind{KAnd, KOr, KNot}

var quickVarNames = []string{"a", "b", "c"}

func genIntTree(r *rand.Rand, depth int) *refTree {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return &refTree{kind: KConst, val: int64(r.Intn(21) - 10)}
		}
		return &refTree{kind: KVar, name: quickVarNames[r.Intn(len(quickVarNames))]}
	}
	k := intKinds[r.Intn(len(intKinds))]
	if k == KNeg {
		return &refTree{kind: k, args: []*refTree{genIntTree(r, depth-1)}}
	}
	return &refTree{kind: k, args: []*refTree{genIntTree(r, depth-1), genIntTree(r, depth-1)}}
}

func genBoolTree(r *rand.Rand, depth int) *refTree {
	if depth <= 0 || r.Intn(3) == 0 {
		k := cmpKinds[r.Intn(len(cmpKinds))]
		return &refTree{kind: k, args: []*refTree{genIntTree(r, depth), genIntTree(r, depth)}}
	}
	k := boolKinds[r.Intn(len(boolKinds))]
	if k == KNot {
		return &refTree{kind: k, args: []*refTree{genBoolTree(r, depth-1)}}
	}
	return &refTree{kind: k, args: []*refTree{genBoolTree(r, depth-1), genBoolTree(r, depth-1)}}
}

// refEval gives the oracle semantics. A false second return means the
// evaluation hit a division/remainder by zero and the sample is skipped.
func refEval(t *refTree, env Env) (int64, bool) {
	switch t.kind {
	case KConst:
		return t.val, true
	case KVar:
		return env[t.name], true
	case KNeg:
		v, ok := refEval(t.args[0], env)
		return -v, ok
	case KNot:
		v, ok := refEval(t.args[0], env)
		return 1 - v, ok
	}
	a, ok := refEval(t.args[0], env)
	if !ok {
		return 0, false
	}
	switch t.kind {
	case KAnd:
		if a == 0 {
			return 0, true
		}
		return refEval(t.args[1], env)
	case KOr:
		if a != 0 {
			return 1, true
		}
		return refEval(t.args[1], env)
	}
	b, ok := refEval(t.args[1], env)
	if !ok {
		return 0, false
	}
	switch t.kind {
	case KAdd:
		return a + b, true
	case KSub:
		return a - b, true
	case KMul:
		return a * b, true
	case KDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case KMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case KEq, KNe, KLt, KLe, KGt, KGe:
		if cmpFold(t.kind, a, b) {
			return 1, true
		}
		return 0, true
	}
	panic("unreachable")
}

// build converts a reference tree into an Expr via the constructors.
func (t *refTree) build() *Expr {
	switch t.kind {
	case KConst:
		return Const(t.val)
	case KVar:
		return Var(t.name)
	}
	args := make([]*Expr, len(t.args))
	for i, a := range t.args {
		args[i] = a.build()
	}
	return Rebuild(t.kind, args)
}

func randomEnv(r *rand.Rand) Env {
	env := Env{}
	for _, n := range quickVarNames {
		env[n] = int64(r.Intn(21) - 10)
	}
	return env
}

// TestQuickSimplifierSoundness: for random expression trees and random
// environments, the simplified tree evaluates to the same value as the
// unsimplified reference semantics.
func TestQuickSimplifierSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genBoolTree(r, 4)
		env := randomEnv(r)
		want, ok := refEval(tree, env)
		if !ok {
			return true // division by zero: skip
		}
		e := tree.build()
		got, err := Eval(e, env)
		if err != nil {
			// The simplified tree may still contain the division; an
			// error is only acceptable if the oracle skipped — it did
			// not, so this is a failure.
			t.Logf("eval error on %s: %v", e, err)
			return false
		}
		if got != want {
			t.Logf("tree %s: got %d want %d (env %v)", e, got, want, env)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickNotIsComplement: !e evaluates to the complement of e for random
// boolean trees.
func TestQuickNotIsComplement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genBoolTree(r, 3)
		env := randomEnv(r)
		e := tree.build()
		v, err := EvalBool(e, env)
		if err != nil {
			return true
		}
		nv, err := EvalBool(Not(e), env)
		if err != nil {
			return true
		}
		return v != nv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubstituteMatchesEval: substituting the environment's constants
// into a tree folds it to the same value Eval computes.
func TestQuickSubstituteMatchesEval(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genIntTree(r, 4)
		env := randomEnv(r)
		e := tree.build()
		want, err := Eval(e, env)
		if err != nil {
			return true
		}
		sub := make(map[string]*Expr, len(env))
		for k, v := range env {
			sub[k] = Const(v)
		}
		got := Substitute(e, sub)
		return got.IsConst() && got.Val == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickStringRoundTripStable: printing is deterministic and hashing is
// consistent with structural equality for random trees.
func TestQuickHashConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		a := genBoolTree(r1, 3).build()
		b := genBoolTree(r2, 3).build()
		// Same seed => same tree => equal and same hash.
		return Equal(a, b) && a.Hash() == b.Hash() && a.String() == b.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
