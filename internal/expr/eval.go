package expr

import (
	"fmt"
	"maps"
	"sort"
)

// Env is a concrete assignment of integer values to variable names.
type Env map[string]int64

// Clone returns an independent copy of the environment (nil stays nil).
func (env Env) Clone() Env { return maps.Clone(env) }

// EvalError describes a failed evaluation (unbound variable or division by
// zero).
type EvalError struct {
	Msg  string
	Expr *Expr
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("expr: %s in %s", e.Msg, e.Expr)
}

// Eval evaluates e under env. Boolean expressions evaluate to 0 or 1.
// It returns an error for unbound variables and division/remainder by zero.
func Eval(e *Expr, env Env) (int64, error) {
	switch e.Kind {
	case KConst, KBool:
		return e.Val, nil
	case KVar:
		v, ok := env[e.Name]
		if !ok {
			return 0, &EvalError{Msg: "unbound variable " + e.Name, Expr: e}
		}
		return v, nil
	case KNeg:
		v, err := Eval(e.Args[0], env)
		return -v, err
	case KNot:
		v, err := Eval(e.Args[0], env)
		if err != nil {
			return 0, err
		}
		return 1 - v, nil
	}

	a, err := Eval(e.Args[0], env)
	if err != nil {
		return 0, err
	}
	// && and || short-circuit so that the right operand of a guarded
	// division (e.g. y != 0 && x/y > 2) is never evaluated when the guard
	// fails.
	switch e.Kind {
	case KAnd:
		if a == 0 {
			return 0, nil
		}
		return Eval(e.Args[1], env)
	case KOr:
		if a != 0 {
			return 1, nil
		}
		return Eval(e.Args[1], env)
	}
	b, err := Eval(e.Args[1], env)
	if err != nil {
		return 0, err
	}
	switch e.Kind {
	case KAdd:
		return a + b, nil
	case KSub:
		return a - b, nil
	case KMul:
		return a * b, nil
	case KDiv:
		if b == 0 {
			return 0, &EvalError{Msg: "division by zero", Expr: e}
		}
		return a / b, nil
	case KMod:
		if b == 0 {
			return 0, &EvalError{Msg: "remainder by zero", Expr: e}
		}
		return a % b, nil
	case KEq, KNe, KLt, KLe, KGt, KGe:
		if cmpFold(e.Kind, a, b) {
			return 1, nil
		}
		return 0, nil
	}
	return 0, &EvalError{Msg: "unknown kind " + e.Kind.String(), Expr: e}
}

// EvalBool evaluates a boolean expression under env.
func EvalBool(e *Expr, env Env) (bool, error) {
	v, err := Eval(e, env)
	return v != 0, err
}

// Substitute returns e with every variable that appears in sub replaced by
// its mapped expression. Unmapped variables are left intact. The result is
// rebuilt through the simplifying constructors, so substituting constants
// folds the tree.
func Substitute(e *Expr, sub map[string]*Expr) *Expr {
	switch e.Kind {
	case KConst, KBool:
		return e
	case KVar:
		if r, ok := sub[e.Name]; ok {
			return r
		}
		return e
	}
	args := make([]*Expr, len(e.Args))
	changed := false
	for i, a := range e.Args {
		args[i] = Substitute(a, sub)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return e
	}
	return Rebuild(e.Kind, args)
}

// Rebuild constructs a node of the given kind from already-built operands,
// going through the simplifying constructors.
func Rebuild(k Kind, args []*Expr) *Expr {
	switch k {
	case KAdd:
		return Add(args[0], args[1])
	case KSub:
		return Sub(args[0], args[1])
	case KMul:
		return Mul(args[0], args[1])
	case KDiv:
		return Div(args[0], args[1])
	case KMod:
		return Mod(args[0], args[1])
	case KNeg:
		return Neg(args[0])
	case KEq, KNe, KLt, KLe, KGt, KGe:
		return compare(k, args[0], args[1])
	case KAnd:
		return And(args[0], args[1])
	case KOr:
		return Or(args[0], args[1])
	case KNot:
		return Not(args[0])
	}
	panic("expr: Rebuild of non-operator kind " + k.String())
}

// CollectVars adds the names of all variables occurring in e to set.
func CollectVars(e *Expr, set map[string]bool) {
	if e.Kind == KVar {
		set[e.Name] = true
		return
	}
	for _, a := range e.Args {
		CollectVars(a, set)
	}
}

// Vars returns the sorted list of variable names occurring in e.
func Vars(e *Expr) []string {
	set := make(map[string]bool)
	CollectVars(e, set)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// VarsOf returns the union of variable names across all exprs, sorted.
func VarsOf(exprs []*Expr) []string {
	set := make(map[string]bool)
	for _, e := range exprs {
		CollectVars(e, set)
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RenameVars returns e with every variable renamed through fn. Variables for
// which fn returns the same name are shared, not copied.
func RenameVars(e *Expr, fn func(string) string) *Expr {
	switch e.Kind {
	case KConst, KBool:
		return e
	case KVar:
		if n := fn(e.Name); n != e.Name {
			return Var(n)
		}
		return e
	}
	args := make([]*Expr, len(e.Args))
	changed := false
	for i, a := range e.Args {
		args[i] = RenameVars(a, fn)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return e
	}
	return Rebuild(e.Kind, args)
}

// Size returns the number of nodes in e.
func Size(e *Expr) int {
	n := 1
	for _, a := range e.Args {
		n += Size(a)
	}
	return n
}
