package expr

import (
	"strconv"
	"strings"
)

// Operator precedence levels for the printer, loosely following Go: higher
// binds tighter.
func precedence(k Kind) int {
	switch k {
	case KOr:
		return 1
	case KAnd:
		return 2
	case KEq, KNe, KLt, KLe, KGt, KGe:
		return 3
	case KAdd, KSub:
		return 4
	case KMul, KDiv, KMod:
		return 5
	case KNeg, KNot:
		return 6
	}
	return 7
}

// String renders e with minimal parentheses.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b, 0)
	return b.String()
}

func (e *Expr) write(b *strings.Builder, parent int) {
	switch e.Kind {
	case KConst:
		b.WriteString(strconv.FormatInt(e.Val, 10))
		return
	case KBool:
		if e.Val != 0 {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
		return
	case KVar:
		b.WriteString(e.Name)
		return
	case KNeg:
		b.WriteString("-")
		e.Args[0].write(b, precedence(KNeg))
		return
	case KNot:
		b.WriteString("!")
		e.Args[0].write(b, precedence(KNot))
		return
	}
	p := precedence(e.Kind)
	needParens := p < parent
	if needParens {
		b.WriteByte('(')
	}
	e.Args[0].write(b, p)
	b.WriteByte(' ')
	b.WriteString(e.Kind.String())
	b.WriteByte(' ')
	// Right operand uses p+1 so non-associative chains parenthesise:
	// a - (b - c) keeps its parentheses.
	e.Args[1].write(b, p+1)
	if needParens {
		b.WriteByte(')')
	}
}
