// Package expr implements the immutable symbolic expression trees that the
// Achilles toolchain uses to represent message grammars and path constraints.
//
// There are two sorts: 64-bit signed integers and booleans. All arithmetic is
// exact int64 arithmetic (the node-language models operate on abstract message
// fields, not on machine words; wrap-around is not modelled). Expressions are
// built through constructor functions (Add, Lt, And, ...) that perform local
// simplification — constant folding, identity elimination, and negation
// push-down — so that the solver and the predicate machinery always see
// lightly canonicalised trees.
//
// Expressions are immutable after construction and safe for concurrent use.
// Every node carries a structural hash computed at construction time, making
// equality checks and set-membership cheap.
package expr

import "strconv"

// Kind identifies the operator of an expression node.
type Kind uint8

// Expression node kinds. Comparison operators produce booleans from integer
// operands; And/Or/Not operate on booleans; the remaining binary operators
// operate on integers.
const (
	KConst Kind = iota // integer literal (Val)
	KBool              // boolean literal (Val is 0 or 1)
	KVar               // integer variable (Name)

	KAdd // Args[0] + Args[1]
	KSub // Args[0] - Args[1]
	KMul // Args[0] * Args[1]
	KDiv // Args[0] / Args[1] (Go truncated division)
	KMod // Args[0] % Args[1] (Go truncated remainder)
	KNeg // -Args[0]

	KEq // Args[0] == Args[1]
	KNe // Args[0] != Args[1]
	KLt // Args[0] <  Args[1]
	KLe // Args[0] <= Args[1]
	KGt // Args[0] >  Args[1]
	KGe // Args[0] >= Args[1]

	KAnd // Args[0] && Args[1]
	KOr  // Args[0] || Args[1]
	KNot // !Args[0]
)

// String returns the operator spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KConst:
		return "const"
	case KBool:
		return "bool"
	case KVar:
		return "var"
	case KAdd:
		return "+"
	case KSub:
		return "-"
	case KMul:
		return "*"
	case KDiv:
		return "/"
	case KMod:
		return "%"
	case KNeg:
		return "neg"
	case KEq:
		return "=="
	case KNe:
		return "!="
	case KLt:
		return "<"
	case KLe:
		return "<="
	case KGt:
		return ">"
	case KGe:
		return ">="
	case KAnd:
		return "&&"
	case KOr:
		return "||"
	case KNot:
		return "!"
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Expr is one immutable expression node. Construct values only through the
// package constructors; direct literal construction bypasses simplification
// and hashing and will confuse the solver.
type Expr struct {
	Kind Kind
	Val  int64   // literal value for KConst/KBool
	Name string  // variable name for KVar
	Args []*Expr // operands
	hash uint64
}

// Interned singletons for the boolean literals and small integers.
var (
	trueExpr  = newNode(&Expr{Kind: KBool, Val: 1})
	falseExpr = newNode(&Expr{Kind: KBool, Val: 0})
)

const smallConstCacheSize = 257 // -1 .. 255, the byte-heavy protocol range

var smallConsts [smallConstCacheSize]*Expr

func init() {
	for i := range smallConsts {
		smallConsts[i] = newNode(&Expr{Kind: KConst, Val: int64(i - 1)})
	}
}

// newNode finalises a node by computing its structural hash.
func newNode(e *Expr) *Expr {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(e.Kind))
	mix(uint64(e.Val))
	for i := 0; i < len(e.Name); i++ {
		mix(uint64(e.Name[i]))
	}
	for _, a := range e.Args {
		mix(a.hash)
	}
	e.hash = h
	return e
}

// Const returns the integer literal v.
func Const(v int64) *Expr {
	if v >= -1 && v < smallConstCacheSize-1 {
		return smallConsts[v+1]
	}
	return newNode(&Expr{Kind: KConst, Val: v})
}

// Bool returns the boolean literal b.
func Bool(b bool) *Expr {
	if b {
		return trueExpr
	}
	return falseExpr
}

// True and False return the boolean literals.
func True() *Expr  { return trueExpr }
func False() *Expr { return falseExpr }

// Var returns the integer variable named name.
func Var(name string) *Expr {
	return newNode(&Expr{Kind: KVar, Name: name})
}

// IsConst reports whether e is an integer literal.
func (e *Expr) IsConst() bool { return e.Kind == KConst }

// IsBoolLit reports whether e is a boolean literal.
func (e *Expr) IsBoolLit() bool { return e.Kind == KBool }

// IsTrue reports whether e is the literal true.
func (e *Expr) IsTrue() bool { return e.Kind == KBool && e.Val == 1 }

// IsFalse reports whether e is the literal false.
func (e *Expr) IsFalse() bool { return e.Kind == KBool && e.Val == 0 }

// IsBool reports whether e produces a boolean value.
func (e *Expr) IsBool() bool {
	switch e.Kind {
	case KBool, KEq, KNe, KLt, KLe, KGt, KGe, KAnd, KOr, KNot:
		return true
	}
	return false
}

// Hash returns the structural hash of e.
func (e *Expr) Hash() uint64 { return e.hash }

// Equal reports structural equality of a and b.
func Equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.hash != b.hash || a.Kind != b.Kind || a.Val != b.Val || a.Name != b.Name || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !Equal(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// Add returns a + b, folding constants and eliminating zero operands.
func Add(a, b *Expr) *Expr {
	if a.IsConst() && b.IsConst() {
		return Const(a.Val + b.Val)
	}
	if a.IsConst() && a.Val == 0 {
		return b
	}
	if b.IsConst() && b.Val == 0 {
		return a
	}
	return newNode(&Expr{Kind: KAdd, Args: []*Expr{a, b}})
}

// Sub returns a - b.
func Sub(a, b *Expr) *Expr {
	if a.IsConst() && b.IsConst() {
		return Const(a.Val - b.Val)
	}
	if b.IsConst() && b.Val == 0 {
		return a
	}
	if Equal(a, b) {
		return Const(0)
	}
	return newNode(&Expr{Kind: KSub, Args: []*Expr{a, b}})
}

// Mul returns a * b, folding constants and simplifying multiplication by 0/1.
func Mul(a, b *Expr) *Expr {
	if a.IsConst() && b.IsConst() {
		return Const(a.Val * b.Val)
	}
	if a.IsConst() {
		switch a.Val {
		case 0:
			return Const(0)
		case 1:
			return b
		}
	}
	if b.IsConst() {
		switch b.Val {
		case 0:
			return Const(0)
		case 1:
			return a
		}
	}
	return newNode(&Expr{Kind: KMul, Args: []*Expr{a, b}})
}

// Div returns a / b using Go's truncated division. Division by a constant
// zero is left unfolded; evaluation reports it as an error.
func Div(a, b *Expr) *Expr {
	if a.IsConst() && b.IsConst() && b.Val != 0 {
		return Const(a.Val / b.Val)
	}
	if b.IsConst() && b.Val == 1 {
		return a
	}
	return newNode(&Expr{Kind: KDiv, Args: []*Expr{a, b}})
}

// Mod returns a % b using Go's truncated remainder semantics.
func Mod(a, b *Expr) *Expr {
	if a.IsConst() && b.IsConst() && b.Val != 0 {
		return Const(a.Val % b.Val)
	}
	return newNode(&Expr{Kind: KMod, Args: []*Expr{a, b}})
}

// Neg returns -a.
func Neg(a *Expr) *Expr {
	if a.IsConst() {
		return Const(-a.Val)
	}
	if a.Kind == KNeg {
		return a.Args[0]
	}
	return newNode(&Expr{Kind: KNeg, Args: []*Expr{a}})
}

func cmpFold(k Kind, a, b int64) bool {
	switch k {
	case KEq:
		return a == b
	case KNe:
		return a != b
	case KLt:
		return a < b
	case KLe:
		return a <= b
	case KGt:
		return a > b
	case KGe:
		return a >= b
	}
	panic("expr: cmpFold on non-comparison kind " + k.String())
}

func compare(k Kind, a, b *Expr) *Expr {
	if a.IsConst() && b.IsConst() {
		return Bool(cmpFold(k, a.Val, b.Val))
	}
	if Equal(a, b) {
		switch k {
		case KEq, KLe, KGe:
			return trueExpr
		case KNe, KLt, KGt:
			return falseExpr
		}
	}
	return newNode(&Expr{Kind: k, Args: []*Expr{a, b}})
}

// Eq returns a == b.
func Eq(a, b *Expr) *Expr { return compare(KEq, a, b) }

// Ne returns a != b.
func Ne(a, b *Expr) *Expr { return compare(KNe, a, b) }

// Lt returns a < b.
func Lt(a, b *Expr) *Expr { return compare(KLt, a, b) }

// Le returns a <= b.
func Le(a, b *Expr) *Expr { return compare(KLe, a, b) }

// Gt returns a > b.
func Gt(a, b *Expr) *Expr { return compare(KGt, a, b) }

// Ge returns a >= b.
func Ge(a, b *Expr) *Expr { return compare(KGe, a, b) }

// And returns a && b with boolean-literal short-circuiting.
func And(a, b *Expr) *Expr {
	if a.IsFalse() || b.IsFalse() {
		return falseExpr
	}
	if a.IsTrue() {
		return b
	}
	if b.IsTrue() {
		return a
	}
	if Equal(a, b) {
		return a
	}
	return newNode(&Expr{Kind: KAnd, Args: []*Expr{a, b}})
}

// Or returns a || b with boolean-literal short-circuiting.
func Or(a, b *Expr) *Expr {
	if a.IsTrue() || b.IsTrue() {
		return trueExpr
	}
	if a.IsFalse() {
		return b
	}
	if b.IsFalse() {
		return a
	}
	if Equal(a, b) {
		return a
	}
	return newNode(&Expr{Kind: KOr, Args: []*Expr{a, b}})
}

// negatedCmp maps each comparison kind to its logical negation.
var negatedCmp = map[Kind]Kind{
	KEq: KNe, KNe: KEq,
	KLt: KGe, KGe: KLt,
	KLe: KGt, KGt: KLe,
}

// Not returns !a. Negation is pushed all the way down: through boolean
// literals, double negation, comparisons (!(x < y) becomes x >= y) and, via
// De Morgan, through conjunction and disjunction. The result therefore never
// contains a KNot node, which keeps path constraints inside the
// comparison/and/or fragment the solver propagates.
func Not(a *Expr) *Expr {
	switch a.Kind {
	case KBool:
		return Bool(a.Val == 0)
	case KNot:
		return a.Args[0]
	case KEq, KNe, KLt, KLe, KGt, KGe:
		return compare(negatedCmp[a.Kind], a.Args[0], a.Args[1])
	case KAnd:
		return Or(Not(a.Args[0]), Not(a.Args[1]))
	case KOr:
		return And(Not(a.Args[0]), Not(a.Args[1]))
	}
	return newNode(&Expr{Kind: KNot, Args: []*Expr{a}})
}

// AndAll returns the conjunction of all exprs (true for an empty list).
func AndAll(exprs []*Expr) *Expr {
	out := trueExpr
	for _, e := range exprs {
		out = And(out, e)
	}
	return out
}

// OrAll returns the disjunction of all exprs (false for an empty list).
func OrAll(exprs []*Expr) *Expr {
	out := falseExpr
	for _, e := range exprs {
		out = Or(out, e)
	}
	return out
}
