package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"achilles"
	"achilles/internal/campaign"
	"achilles/internal/core"
)

// Request is the submission body of POST /v1/jobs: which targets to audit,
// in which modes, and the session knobs. Unknown fields are rejected — a
// misspelled option must fail loudly, not silently audit with defaults.
type Request struct {
	// Targets lists registry names to audit; at least one is required.
	Targets []string `json:"targets"`
	// Modes lists analysis modes per target; empty means optimized only.
	Modes []string `json:"modes,omitempty"`
	// Parallelism is the worker count the job asks for; it is clamped to
	// [1, the daemon's global -j budget] and the whole amount is leased from
	// that budget while the job runs.
	Parallelism int `json:"parallelism,omitempty"`
	// MaxStates optionally bounds either engine's exploration (the runaway
	// backstop); truncated units are flagged in the manifest.
	MaxStates int `json:"max_states,omitempty"`
	// FirstTrojan stops each unit at its first confirmed class — the
	// "vulnerable at all?" triage mode.
	FirstTrojan bool `json:"first_trojan,omitempty"`
}

// Job states reported by the status endpoint and the done event.
const (
	stateQueued    = "queued"    // waiting for worker-budget admission
	stateRunning   = "running"   // sessions in flight
	stateDone      = "done"      // all units ran (individual units may have failed)
	stateCancelled = "cancelled" // cancelled by the client or a daemon drain
	stateFailed    = "failed"    // the job itself failed (e.g. bundle store error)
)

// job is one submitted audit: a planned list of target×mode units run as
// sequential achilles.Start sessions under a single worker lease.
type job struct {
	id     string
	client string
	req    Request
	units  []campaign.Job
	par    int // granted parallelism (clamped request)

	ctx    context.Context
	cancel context.CancelFunc
	bcast  *broadcaster
	done   chan struct{} // closed by finishJob, after the last publish

	created time.Time

	mu       sync.Mutex
	state    string
	err      string
	runs     []campaign.RunManifest
	classes  int
	bundle   string // content hash once persisted
	finished time.Time
}

// UnitStatus is the wire shape of one target×mode unit in a job status.
type UnitStatus struct {
	Key       string `json:"key"`
	Classes   int    `json:"classes"`
	Truncated bool   `json:"truncated,omitempty"`
	WallMS    int64  `json:"wall_ms"`
	Error     string `json:"error,omitempty"`
}

// JobStatus is the wire shape of GET /v1/jobs/{id} and the done event.
type JobStatus struct {
	ID          string       `json:"id"`
	Client      string       `json:"client"`
	State       string       `json:"state"`
	Targets     []string     `json:"targets"`
	Modes       []string     `json:"modes"`
	Parallelism int          `json:"parallelism"`
	CreatedAt   string       `json:"created_at"`
	Units       []UnitStatus `json:"units,omitempty"`
	Classes     int          `json:"classes"`
	Bundle      string       `json:"bundle,omitempty"`
	Error       string       `json:"error,omitempty"`
	// EventsURL is the SSE endpoint for this job's event stream — see the
	// events endpoint contract for replay and slow-consumer semantics.
	EventsURL string `json:"events_url"`
}

// planJob validates a request against the daemon's catalog and expands it
// into the deterministic (target, mode) unit list — the same canonical
// order campaign.Plan produces, so a daemon bundle lines up with a CLI
// bundle job for job.
func (s *Server) planJob(req Request) ([]campaign.Job, int, error) {
	if len(req.Targets) == 0 {
		return nil, 0, fmt.Errorf("request selects no target")
	}
	if req.MaxStates < 0 {
		return nil, 0, fmt.Errorf("max_states %d is negative", req.MaxStates)
	}
	names := make([]string, len(req.Targets))
	for i, n := range req.Targets {
		d, ok := s.lookup(n)
		if !ok {
			return nil, 0, fmt.Errorf("unknown target %q", n)
		}
		names[i] = d.Name
	}
	sort.Strings(names)
	modes := []core.Mode{core.ModeOptimized}
	if len(req.Modes) > 0 {
		modes = modes[:0]
		for _, name := range req.Modes {
			if name == "" {
				return nil, 0, fmt.Errorf("empty mode name")
			}
			m, err := core.ParseMode(name)
			if err != nil {
				return nil, 0, err
			}
			modes = append(modes, m)
		}
	}
	var units []campaign.Job
	seen := map[string]bool{}
	for _, n := range names {
		for _, m := range modes {
			u := campaign.Job{Target: n, Mode: m}
			if seen[u.Key()] {
				continue
			}
			seen[u.Key()] = true
			units = append(units, u)
		}
	}
	par := req.Parallelism
	if par < 1 {
		par = 1
	}
	if par > s.cfg.Workers {
		par = s.cfg.Workers
	}
	return units, par, nil
}

// runJob is the job goroutine: lease workers from the global budget, run
// every unit as a session, persist the bundle, publish the terminal state.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	defer s.releaseClient(j.client)

	// Admission: the whole lease is granted atomically and FIFO (see wsem),
	// so a queued job can never deadlock against another partial acquirer
	// and never starves behind a stream of small jobs.
	if err := s.sem.acquire(j.ctx, j.par); err != nil {
		// Cancelled while queued: every planned unit is recorded as
		// interrupted so the artifact stays complete.
		runs := make([]campaign.RunManifest, 0, len(j.units))
		for _, u := range j.units {
			runs = append(runs, interruptedUnit(u, err))
		}
		s.finishJob(j, runs, nil, err)
		return
	}
	defer s.sem.release(j.par)
	s.setJobState(j, stateRunning)

	runs := make([]campaign.RunManifest, 0, len(j.units))
	reports := map[string][]campaign.Report{}
	for _, u := range j.units {
		rm, reps := s.runUnit(j, u)
		runs = append(runs, rm)
		if rm.Error == "" {
			reports[u.Key()] = reps
		}
	}
	s.finishJob(j, runs, reports, j.ctx.Err())
}

// interruptedUnit mirrors the campaign engine's manifest entry for a unit
// the cancellation prevented from running.
func interruptedUnit(u campaign.Job, cause error) campaign.RunManifest {
	return campaign.RunManifest{
		Target:     u.Target,
		Mode:       u.Mode.String(),
		ReportFile: u.ReportFile(),
		Error:      "interrupted: " + cause.Error(),
	}
}

// runUnit executes one target×mode analysis as a cancellable session on the
// daemon's shared solver and converts the outcome into its manifest entry
// and report stream — the exact conversion (campaign.ReportsFromRun) the
// CLI campaign engine uses, which is what makes daemon bundles byte-
// identical to achilles-audit bundles for the same inputs.
func (s *Server) runUnit(j *job, u campaign.Job) (campaign.RunManifest, []campaign.Report) {
	rm := campaign.RunManifest{
		Target:     u.Target,
		Mode:       u.Mode.String(),
		ReportFile: u.ReportFile(),
	}
	d, ok := s.lookup(u.Target)
	if !ok {
		rm.Error = fmt.Sprintf("target %q disappeared from the catalog", u.Target)
		return rm, nil
	}
	rm.InputFingerprint = d.InputFingerprint(u.Mode, campaign.Version)
	if err := j.ctx.Err(); err != nil {
		rm.Error = "interrupted: " + err.Error()
		return rm, nil
	}

	aopts := d.Analysis
	aopts.Mode = u.Mode
	aopts.Parallelism = j.par
	aopts.Solver = s.solver
	opts := []achilles.Option{
		achilles.WithAnalysisOptions(aopts),
		achilles.WithObserver(unitObserver(j, u.Key())),
	}
	if j.req.MaxStates > 0 {
		opts = append(opts, achilles.WithMaxStates(j.req.MaxStates))
	}
	if j.req.FirstTrojan {
		opts = append(opts, achilles.WithFirstTrojan())
	}

	tgt := d.Target()
	t0 := time.Now()
	sess, err := achilles.Start(j.ctx, tgt, opts...)
	if err != nil {
		rm.Error = err.Error()
		return rm, nil
	}
	run, err := sess.Wait()
	rm.WallMS = time.Since(t0).Milliseconds()
	if ctxErr := j.ctx.Err(); ctxErr != nil {
		// A unit cut short mid-exploration is recorded as interrupted and its
		// partial class set discarded — a stored bundle must never present a
		// cut-short unit as that target's result (the campaign invariant).
		s.metrics.sessionsCancelled.Add(1)
		rm.Error = "interrupted: " + ctxErr.Error()
		return rm, nil
	}
	if err != nil {
		rm.Error = err.Error()
		return rm, nil
	}
	rm.Classes = len(run.Analysis.Trojans)
	rm.ClientPaths = len(run.Clients.Paths)
	rm.Truncated = run.Truncated()
	rm.Counters = campaign.Counters(run.Counters())
	return rm, campaign.ReportsFromRun(tgt.FieldNames, run.Analysis.Trojans)
}

// finishJob assembles the bundle, persists it in the content-addressed
// store, records the terminal state and closes done. Every publish happens
// before done closes, so an SSE handler that sees done can drain its channel
// and know the stream is complete.
func (s *Server) finishJob(j *job, runs []campaign.RunManifest, reports map[string][]campaign.Report, ctxErr error) {
	b := &campaign.Bundle{
		Manifest: campaign.Manifest{
			FormatVersion: campaign.FormatVersion,
			Tool:          campaign.Version,
			Jobs:          j.par,
			CreatedAt:     time.Now().UTC().Format(time.RFC3339),
			WallMS:        time.Since(j.created).Milliseconds(),
			Interrupted:   ctxErr != nil,
			Runs:          runs,
		},
		Reports: map[string][]campaign.Report{},
	}
	classes := 0
	for _, rm := range runs {
		if rm.Error == "" {
			classes += rm.Classes
			b.Reports[rm.Key()] = reports[rm.Key()]
		}
	}
	st := s.solver.Stats()
	b.Manifest.Solver = campaign.Counters{
		"queries":      int64(st.Queries),
		"cache_hits":   int64(st.CacheHits),
		"cache_misses": int64(st.CacheMisses),
		"unknowns":     int64(st.Unknowns),
	}

	state := stateDone
	var jobErr string
	if ctxErr != nil {
		state = stateCancelled
	}
	hash, err := s.store.Put(b)
	if err != nil {
		state, jobErr = stateFailed, fmt.Sprintf("persist bundle: %v", err)
	} else {
		s.metrics.bundlesStored.Add(1)
	}

	j.mu.Lock()
	j.state = state
	j.err = jobErr
	j.runs = runs
	j.classes = classes
	j.bundle = hash
	j.finished = time.Now()
	j.mu.Unlock()

	switch state {
	case stateDone:
		s.metrics.jobsDone.Add(1)
	case stateCancelled:
		s.metrics.jobsCancelled.Add(1)
	case stateFailed:
		s.metrics.jobsFailed.Add(1)
	}
	// Retention runs before the done event goes out, so a client that saw a
	// job finish observes the post-eviction job table.
	s.evictTerminalJobs()
	j.bcast.publish(jsonEvent(eventState, stateEventPayload{ID: j.id, State: state}), true)
	close(j.done)
}

// setJobState records a non-terminal transition and publishes it.
func (s *Server) setJobState(j *job, state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
	j.bcast.publish(jsonEvent(eventState, stateEventPayload{ID: j.id, State: state}), true)
}

// jobStatus snapshots a job for the status endpoint and the done event.
func (s *Server) jobStatus(j *job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := JobStatus{
		ID:          j.id,
		Client:      j.client,
		State:       j.state,
		Targets:     append([]string{}, j.req.Targets...),
		Modes:       append([]string{}, j.req.Modes...),
		Parallelism: j.par,
		CreatedAt:   j.created.UTC().Format(time.RFC3339),
		Classes:     j.classes,
		Bundle:      j.bundle,
		Error:       j.err,
		EventsURL:   "/v1/jobs/" + j.id + "/events",
	}
	for _, rm := range j.runs {
		out.Units = append(out.Units, UnitStatus{
			Key:       rm.Key(),
			Classes:   rm.Classes,
			Truncated: rm.Truncated,
			WallMS:    rm.WallMS,
			Error:     rm.Error,
		})
	}
	return out
}

// wsem is a FIFO weighted semaphore over the daemon's global worker budget.
// Leases are granted atomically (all n tokens or none), which rules out the
// partial-acquisition deadlock of counting semaphores, and strictly in
// arrival order, so a wide job is never starved by a stream of narrow ones.
type wsem struct {
	mu      sync.Mutex
	avail   int
	waiters []*wsemWaiter
}

type wsemWaiter struct {
	n     int
	ready chan struct{}
}

func newWsem(capacity int) *wsem { return &wsem{avail: capacity} }

// acquire leases n tokens, blocking FIFO until they are free or ctx ends.
func (s *wsem) acquire(ctx context.Context, n int) error {
	s.mu.Lock()
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		s.mu.Unlock()
		return nil
	}
	w := &wsemWaiter{n: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		granted := true
		for i, q := range s.waiters {
			if q == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				granted = false
				break
			}
		}
		if !granted {
			// Leaving the queue can unblock it: a waiter behind the
			// cancelled one whose demand already fits must be granted now,
			// not when some unrelated holder eventually releases.
			s.grantLocked()
		}
		s.mu.Unlock()
		if granted {
			// The grant raced the cancellation: hand the lease back.
			s.release(n)
		}
		return ctx.Err()
	}
}

// release returns n tokens and grants queued waiters in FIFO order.
func (s *wsem) release(n int) {
	s.mu.Lock()
	s.avail += n
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked grants head waiters in FIFO order while they fit the
// available tokens. Callers hold s.mu.
func (s *wsem) grantLocked() {
	for len(s.waiters) > 0 && s.waiters[0].n <= s.avail {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.avail -= w.n
		close(w.ready)
	}
}
