// White-box tests for the serving layer's concurrency and storage
// primitives: the FIFO weighted semaphore behind the worker budget, the
// drop-counted SSE broadcaster, the content-addressed bundle store, and the
// request planner. The HTTP surface is covered black-box in e2e_test.go.
package serve

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"achilles/internal/campaign"
	"achilles/internal/core"
	"achilles/internal/protocols/registry"
)

// TestWsemAllOrNothingFIFO: grants are atomic and strictly in arrival
// order — a small lease queued behind a large one must not overtake it even
// when it would fit, because that overtaking (granting whatever fits) is
// exactly how wide jobs starve.
func TestWsemAllOrNothingFIFO(t *testing.T) {
	sem := newWsem(4)
	if err := sem.acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	// B wants 3 (does not fit: 1 free), C wants 1 (fits, but is behind B).
	bGranted, cGranted := make(chan struct{}), make(chan struct{})
	go func() {
		sem.acquire(context.Background(), 3)
		close(bGranted)
	}()
	// Let B reach the queue before C, then queue C.
	time.Sleep(20 * time.Millisecond)
	go func() {
		sem.acquire(context.Background(), 1)
		close(cGranted)
	}()
	select {
	case <-cGranted:
		t.Fatal("C (1 token) overtook B (3 tokens) in the queue")
	case <-time.After(50 * time.Millisecond):
	}

	sem.release(3) // A done: 4 free → B (3) granted, then C (1) granted too.
	select {
	case <-bGranted:
	case <-time.After(2 * time.Second):
		t.Fatal("B never granted after release")
	}
	select {
	case <-cGranted:
	case <-time.After(2 * time.Second):
		t.Fatal("C never granted after B fit")
	}
}

// TestWsemCancelWhileQueued: a cancelled waiter leaves the queue without
// leaking tokens or wedging the waiters behind it.
func TestWsemCancelWhileQueued(t *testing.T) {
	sem := newWsem(2)
	if err := sem.acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- sem.acquire(ctx, 1) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	// The full capacity is still accounted for: release and re-acquire it.
	sem.release(2)
	done := make(chan struct{})
	go func() {
		if err := sem.acquire(context.Background(), 2); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("tokens leaked by the cancelled waiter")
	}
}

// TestWsemCancelRegrantsSatisfiableWaiter: when a queued waiter cancels,
// the grant scan re-runs immediately — a waiter behind it whose demand
// already fits the free tokens is admitted right away, not when some
// unrelated holder eventually releases.
func TestWsemCancelRegrantsSatisfiableWaiter(t *testing.T) {
	sem := newWsem(3)
	if err := sem.acquire(context.Background(), 1); err != nil { // 2 free
		t.Fatal(err)
	}
	waitQueue := func(n int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			sem.mu.Lock()
			got := len(sem.waiters)
			sem.mu.Unlock()
			if got == n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("queue length %d, want %d", got, n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// B wants 3 (only 2 free: queued); C wants 2 (would fit, behind B).
	bCtx, cancelB := context.WithCancel(context.Background())
	bErr := make(chan error, 1)
	go func() { bErr <- sem.acquire(bCtx, 3) }()
	waitQueue(1)
	cGranted := make(chan struct{})
	go func() {
		if err := sem.acquire(context.Background(), 2); err != nil {
			t.Error(err)
		}
		close(cGranted)
	}()
	waitQueue(2)

	cancelB()
	if err := <-bErr; err != context.Canceled {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	// No release happens here: C's grant must come from the cancel itself.
	select {
	case <-cGranted:
	case <-time.After(2 * time.Second):
		t.Fatal("C (2 tokens, 2 free) stayed queued after the waiter ahead of it cancelled")
	}
}

// TestBroadcasterDropsNeverBlocks: a subscriber that stops reading loses
// overflow events — counted — while publish returns immediately, and the
// durable history still replays complete to the next subscriber. This is the
// serving-layer mirror of the Session.Events slow-consumer contract.
func TestBroadcasterDropsNeverBlocks(t *testing.T) {
	var drops atomic.Int64
	b := newBroadcaster(2, &drops)
	_, ch, cancel := b.subscribe()
	defer cancel()

	publishDone := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			b.publish(sseEvent{name: "state", data: []byte(`{}`)}, true)
		}
		close(publishDone)
	}()
	select {
	case <-publishDone:
	case <-time.After(2 * time.Second):
		t.Fatal("publish blocked on a full subscriber buffer")
	}
	if got := len(ch); got != 2 {
		t.Fatalf("subscriber holds %d events, want its full buffer of 2", got)
	}
	if got := drops.Load(); got != 8 {
		t.Fatalf("drop counter = %d, want 8", got)
	}

	// Durable history is unaffected by live-path drops.
	replay, ch2, cancel2 := b.subscribe()
	defer cancel2()
	_ = ch2
	if len(replay) != 10 {
		t.Fatalf("history replays %d events, want all 10", len(replay))
	}

	// cancel is idempotent and detaches the subscriber.
	cancel()
	cancel()
	b.publish(sseEvent{name: "state", data: []byte(`{}`)}, false)
	if got := drops.Load(); got != 8 {
		t.Fatalf("detached subscriber still counted a drop: %d", got)
	}
}

// testBundle builds a minimal valid bundle with the given report's class
// line, for store tests.
func testBundle(class string) *campaign.Bundle {
	u := campaign.Job{Target: "t", Mode: core.ModeOptimized}
	return &campaign.Bundle{
		Manifest: campaign.Manifest{
			FormatVersion: campaign.FormatVersion,
			Tool:          campaign.Version,
			Jobs:          1,
			CreatedAt:     "2026-01-01T00:00:00Z",
			Runs: []campaign.RunManifest{{
				Target:     u.Target,
				Mode:       u.Mode.String(),
				ReportFile: u.ReportFile(),
				Classes:    1,
			}},
		},
		Reports: map[string][]campaign.Report{
			u.Key(): {{Fingerprint: "fp", ClassID: "c1", Class: class, Witness: "w", Fields: []string{"m0"}}},
		},
	}
}

// TestStoreContentAddressing: identical content stores once under one hash
// regardless of volatile manifest fields; different content gets a different
// address; reads round-trip.
func TestStoreContentAddressing(t *testing.T) {
	st, err := newStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	b1 := testBundle("m[0] == 7")
	h1, err := st.Put(b1)
	if err != nil {
		t.Fatal(err)
	}
	// Same analysis content, different wall-clock metadata: same address.
	b2 := testBundle("m[0] == 7")
	b2.Manifest.CreatedAt = "2026-02-02T00:00:00Z"
	b2.Manifest.WallMS = 12345
	h2, err := st.Put(b2)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("volatile metadata changed the content hash: %s vs %s", h1, h2)
	}
	// Different content: different address.
	h3, err := st.Put(testBundle("m[0] == 8"))
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("different class sets collided on one content hash")
	}
	got, err := st.Get(h1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Manifest.Runs) != 1 || got.Manifest.Runs[0].Classes != 1 {
		t.Fatalf("round-tripped bundle manifest: %+v", got.Manifest)
	}
	listed, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 {
		t.Fatalf("store lists %d bundles, want 2", len(listed))
	}
}

// TestStoreValidation: wire-supplied hashes and file names are validated
// before they are allowed to form a path.
func TestStoreValidation(t *testing.T) {
	st, err := newStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"", "xyz", "../escape", "ABCDEF00112233445566778899AABBCC"} {
		if _, err := st.Get(h); err == nil {
			t.Errorf("Get(%q) accepted an invalid hash", h)
		}
	}
	good := "00112233445566778899aabbccddeeff"
	for _, name := range []string{"", ".", "..", "../manifest.json", "a/b.jsonl", ".hidden.jsonl", "notes.txt"} {
		if _, err := st.FilePath(good, name); err == nil {
			t.Errorf("FilePath(%q) accepted an invalid member name", name)
		}
	}
	if _, err := st.FilePath(good, campaign.ManifestName); err != nil {
		t.Errorf("FilePath rejected the manifest: %v", err)
	}
	if _, err := st.FilePath(good, "t__optimized.jsonl"); err != nil {
		t.Errorf("FilePath rejected a report stream: %v", err)
	}
}

// fakeCatalog registers two targets under canonical and alias names.
func fakeCatalog(name string) (registry.Descriptor, bool) {
	switch name {
	case "alpha", "a":
		return registry.Descriptor{Name: "alpha"}, true
	case "beta":
		return registry.Descriptor{Name: "beta"}, true
	}
	return registry.Descriptor{}, false
}

// TestPlanJob: requests expand into sorted, deduplicated (target, mode)
// units with clamped parallelism — the same canonical plan the campaign
// engine would produce.
func TestPlanJob(t *testing.T) {
	s, err := New(Config{Workers: 4, StoreDir: filepath.Join(t.TempDir(), "store"), Lookup: fakeCatalog})
	if err != nil {
		t.Fatal(err)
	}
	units, par, err := s.planJob(Request{Targets: []string{"beta", "a", "alpha"}, Parallelism: 99})
	if err != nil {
		t.Fatal(err)
	}
	// "a" is the alias of "alpha": canonicalized and deduplicated; sorted.
	if len(units) != 2 || units[0].Target != "alpha" || units[1].Target != "beta" {
		t.Fatalf("units = %+v", units)
	}
	if units[0].Mode != core.ModeOptimized {
		t.Fatalf("default mode = %v, want optimized", units[0].Mode)
	}
	if par != 4 {
		t.Fatalf("parallelism clamped to %d, want the 4-worker budget", par)
	}

	units, par, err = s.planJob(Request{Targets: []string{"alpha"}, Modes: []string{"optimized", "a-posteriori", "optimized"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("duplicate modes not deduplicated: %+v", units)
	}
	if par != 1 {
		t.Fatalf("default parallelism = %d, want 1", par)
	}

	for _, bad := range []Request{
		{},
		{Targets: []string{"gamma"}},
		{Targets: []string{"alpha"}, Modes: []string{"warp"}},
		{Targets: []string{"alpha"}, MaxStates: -5},
	} {
		if _, _, err := s.planJob(bad); err == nil {
			t.Errorf("planJob(%+v) accepted an invalid request", bad)
		}
	}
}
