package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// metrics are the daemon's operational counters, exposed in Prometheus text
// exposition format on /metrics. Gauges (jobs queued/running) are computed
// from the live job table at scrape time; everything else is a monotonic
// counter. Solver totals come from the shared solver, so they are cumulative
// across every session the daemon ever ran — exactly what a rate() wants.
type metrics struct {
	jobsDone          atomic.Int64
	jobsFailed        atomic.Int64
	jobsCancelled     atomic.Int64
	sessionsCancelled atomic.Int64
	quotaRejections   atomic.Int64
	eventDrops        atomic.Int64
	bundlesStored     atomic.Int64
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, running := 0, 0
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case stateQueued:
			queued++
		case stateRunning:
			running++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	st := s.solver.Stats()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	write := func(name, kind, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, kind, name, v)
	}
	write("achillesd_jobs_queued", "gauge", "Jobs waiting for worker-budget admission.", int64(queued))
	write("achillesd_jobs_running", "gauge", "Jobs with sessions in flight.", int64(running))
	write("achillesd_jobs_done_total", "counter", "Jobs that ran every unit to the end.", s.metrics.jobsDone.Load())
	write("achillesd_jobs_failed_total", "counter", "Jobs that failed outright (e.g. bundle store errors).", s.metrics.jobsFailed.Load())
	write("achillesd_jobs_cancelled_total", "counter", "Jobs cancelled by clients or a daemon drain.", s.metrics.jobsCancelled.Load())
	write("achillesd_sessions_cancelled_total", "counter", "Analysis sessions torn down mid-exploration.", s.metrics.sessionsCancelled.Load())
	write("achillesd_quota_rejections_total", "counter", "Submissions rejected by the per-client quota (HTTP 429).", s.metrics.quotaRejections.Load())
	write("achillesd_event_stream_drops_total", "counter", "Events dropped because a subscriber fell behind its buffer.", s.metrics.eventDrops.Load())
	write("achillesd_bundles_stored_total", "counter", "Bundles persisted to the content-addressed store (deduplicated puts included).", s.metrics.bundlesStored.Load())
	write("achillesd_solver_queries_total", "counter", "Queries issued to the shared solver.", int64(st.Queries))
	write("achillesd_solver_cache_hits_total", "counter", "Solver queries answered from the shared verdict cache.", int64(st.CacheHits))
}
