package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"

	"achilles/internal/campaign"
)

// hashPattern is the shape of a bundle content address (see
// campaign.Bundle.ContentHash): 128 bits of SHA-256, lowercase hex. Every
// hash arriving over the wire is validated against it before touching the
// filesystem.
var hashPattern = regexp.MustCompile(`^[0-9a-f]{32}$`)

// Store is the daemon's content-addressed bundle store: finished runs are
// persisted as ordinary versioned audit bundles (manifest.json + per-job
// JSONL report streams — the same on-disk layout achilles-audit writes)
// under <dir>/<content-hash>/. Content addressing makes persistence
// idempotent and deduplicating: two jobs that found exactly the same thing
// share one bundle, and re-auditing an unchanged fleet stores nothing new.
type Store struct {
	dir string
	// mu serializes writers: two jobs finishing with the same content must
	// not interleave writes into the same directory.
	mu sync.Mutex
}

func newStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: store directory is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: create store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Put persists the bundle under its content address and returns the hash.
// A bundle already present (same address, complete manifest) is reused
// as-is; a partial leftover from a crashed write is replaced.
func (st *Store) Put(b *campaign.Bundle) (string, error) {
	h, err := b.ContentHash()
	if err != nil {
		return "", err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	dir := filepath.Join(st.dir, h)
	if _, err := os.Stat(filepath.Join(dir, campaign.ManifestName)); err == nil {
		return h, nil
	}
	// Overwrite rather than Write: a directory holding report streams but no
	// manifest is a crashed previous attempt (the manifest is written last).
	if err := b.Overwrite(dir); err != nil {
		return "", err
	}
	return h, nil
}

// Get loads and validates the bundle at hash.
func (st *Store) Get(hash string) (*campaign.Bundle, error) {
	dir, err := st.bundleDir(hash)
	if err != nil {
		return nil, err
	}
	return campaign.Read(dir)
}

// FilePath resolves one raw file of a stored bundle (the manifest or a
// report stream) for serving over the wire, refusing anything that is not a
// plain bundle member name.
func (st *Store) FilePath(hash, name string) (string, error) {
	dir, err := st.bundleDir(hash)
	if err != nil {
		return "", err
	}
	if name != filepath.Base(name) || name == "" || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("serve: invalid bundle file name %q", name)
	}
	if name != campaign.ManifestName && !strings.HasSuffix(name, ".jsonl") {
		return "", fmt.Errorf("serve: %q is not a bundle member", name)
	}
	return filepath.Join(dir, name), nil
}

// List returns the manifests of every stored bundle with its content hash.
func (st *Store) List() ([]campaign.ListedBundle, error) {
	return campaign.List(st.dir)
}

// bundleDir validates the hash format before deriving a path from it.
func (st *Store) bundleDir(hash string) (string, error) {
	if !hashPattern.MatchString(hash) {
		return "", fmt.Errorf("serve: invalid bundle hash %q", hash)
	}
	return filepath.Join(st.dir, hash), nil
}
