// Black-box end-to-end suite for the achillesd serving layer: every test
// drives a real HTTP server (httptest over serve.Handler) with real registry
// targets or injected synthetic catalogs, consumes the SSE streams like an
// external client would, and asserts on the wire artifacts — never on
// package internals. The core property under test is that putting the
// pipeline behind a daemon changes nothing about its results: a bundle
// fetched over HTTP is byte-identical to what `achilles-audit run` writes
// for the same targets.
package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"achilles/internal/campaign"
	"achilles/internal/core"
	"achilles/internal/lang"
	_ "achilles/internal/protocols"
	"achilles/internal/protocols/registry"
	"achilles/internal/serve"
	"achilles/internal/solver"
	"achilles/internal/testutil"
)

// daemon spins up a complete achillesd instance for one test: the serving
// layer mounted in an httptest server, drained and torn down on cleanup.
func daemon(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = filepath.Join(t.TempDir(), "store")
	}
	if cfg.Workers == 0 {
		cfg.Workers = 8
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return srv, ts
}

// deepLookup is a synthetic single-target catalog: 2^12 accepting paths, each
// its own Trojan class, progress ticking every millisecond — wide and chatty
// enough that cancellation reliably lands mid-frontier and event streams
// carry real traffic. Injected via Config.Lookup so the HTTP surface stays
// black-box.
func deepLookup(name string) (registry.Descriptor, bool) {
	if name != "deep" {
		return registry.Descriptor{}, false
	}
	server := lang.MustCompile(`
var m [12]int;
var acc int;

func main() {
	recv(m);
	var i int = 0;
	acc = 0;
	while i < 12 {
		if m[i] > 0 { acc = acc + 1; }
		i = i + 1;
	}
	accept();
}`)
	client := lang.MustCompile(`
var m [12]int;

func main() {
	var i int = 0;
	while i < 12 {
		var x int = input();
		assume(x >= 0);
		assume(x < 4);
		m[i] = x;
		i = i + 1;
	}
	send(m);
}`)
	return registry.Descriptor{
		Name: "deep",
		Target: func() core.Target {
			return core.Target{
				Name:    "deep",
				Server:  server,
				Clients: []core.ClientProgram{{Name: "c", Unit: client}},
			}
		},
		Analysis: core.AnalysisOptions{ProgressInterval: time.Millisecond},
	}, true
}

// postJob submits a request body and returns the raw response.
func postJob(t *testing.T, ts *httptest.Server, body string, client string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Achilles-Client", client)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// submit posts a job and decodes the 202 status.
func submit(t *testing.T, ts *httptest.Server, body, client string) serve.JobStatus {
	t.Helper()
	resp := postJob(t, ts, body, client)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var js serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	if js.ID == "" || js.EventsURL == "" {
		t.Fatalf("submit returned incomplete status: %+v", js)
	}
	return js
}

// sse is one decoded server-sent event.
type sse struct {
	Name string
	Data json.RawMessage
}

// streamEvents connects to a job's event stream and forwards every event;
// the channel closes when the stream ends (after the done event) or errs.
// onOpen, when non-nil, runs once the subscription is live (response headers
// received) — the hook cancel tests use to order "subscribed" before "act".
func streamEvents(t *testing.T, ts *httptest.Server, eventsURL string, onOpen func()) <-chan sse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + eventsURL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	if onOpen != nil {
		onOpen()
	}
	out := make(chan sse, 4096)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var cur sse
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.Name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
			case line == "" && cur.Name != "":
				out <- cur
				cur = sse{}
			}
		}
	}()
	return out
}

// collectUntilDone drains an event stream to its terminal done event and
// returns everything seen, failing the test on timeout.
func collectUntilDone(t *testing.T, events <-chan sse, timeout time.Duration) []sse {
	t.Helper()
	var all []sse
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("event stream ended without a done event (saw %d events)", len(all))
			}
			all = append(all, ev)
			if ev.Name == "done" {
				return all
			}
		case <-deadline:
			t.Fatalf("no done event within %v (saw %d events)", timeout, len(all))
		}
	}
}

// terminalStatus decodes the JobStatus payload of the final done event.
func terminalStatus(t *testing.T, all []sse) serve.JobStatus {
	t.Helper()
	last := all[len(all)-1]
	if last.Name != "done" {
		t.Fatalf("last event is %q, not done", last.Name)
	}
	var js serve.JobStatus
	if err := json.Unmarshal(last.Data, &js); err != nil {
		t.Fatal(err)
	}
	return js
}

// getJSON fetches a URL and decodes the JSON body into v, returning the
// status code.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestE2EAuditMatchesCLIBundle is the heart of the suite: a daemon audit of
// real registry targets, followed end to end over SSE, must persist a bundle
// whose report streams are byte-identical to the files achilles-audit run
// writes for the same targets — the determinism invariant, extended to the
// wire.
func TestE2EAuditMatchesCLIBundle(t *testing.T) {
	_, ts := daemon(t, serve.Config{})
	js := submit(t, ts, `{"targets":["kv","kv-fixed"],"parallelism":8}`, "e2e")

	all := collectUntilDone(t, streamEvents(t, ts, js.EventsURL, nil), 60*time.Second)
	final := terminalStatus(t, all)
	if final.State != "done" || final.Error != "" {
		t.Fatalf("terminal status = %+v", final)
	}
	if final.Bundle == "" {
		t.Fatal("finished job has no bundle hash")
	}
	if final.Classes != 1 {
		t.Fatalf("kv+kv-fixed audit found %d classes, want 1 (the seeded kv Trojan)", final.Classes)
	}

	// The stream must have carried the discovery itself: exactly one trojan
	// event, tagged with the kv unit, with a canonical class line.
	var trojans []map[string]any
	phases := 0
	for _, ev := range all {
		switch ev.Name {
		case "trojan":
			var p map[string]any
			if err := json.Unmarshal(ev.Data, &p); err != nil {
				t.Fatal(err)
			}
			trojans = append(trojans, p)
		case "phase":
			phases++
		}
	}
	if len(trojans) != 1 {
		t.Fatalf("streamed %d trojan events, want 1", len(trojans))
	}
	if unit := trojans[0]["unit"]; unit != "kv/optimized" {
		t.Fatalf("trojan event unit = %v, want kv/optimized", unit)
	}
	if cls, _ := trojans[0]["class"].(string); cls == "" {
		t.Fatal("trojan event has no class line")
	}
	// 2 units × 3 pipeline phases each.
	if phases != 6 {
		t.Fatalf("streamed %d phase events, want 6", phases)
	}

	// Reference: the exact campaign-engine path achilles-audit run takes.
	cliDir := filepath.Join(t.TempDir(), "cli-bundle")
	cliBundle, err := campaign.RunCtx(context.Background(), campaign.Options{
		Targets: []string{"kv", "kv-fixed"},
		Modes:   []core.Mode{core.ModeOptimized},
		Jobs:    8,
		Solver:  solver.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cliBundle.Write(cliDir); err != nil {
		t.Fatal(err)
	}

	// Byte-identity, report stream by report stream. (The manifests agree on
	// content but not bytes — they carry wall-clock times and solver
	// counters — which is exactly why the content hash excludes them.)
	var manifest campaign.Manifest
	if code := getJSON(t, ts, "/v1/bundles/"+final.Bundle, &manifest); code != http.StatusOK {
		t.Fatalf("fetch manifest: HTTP %d", code)
	}
	if len(manifest.Runs) != 2 || manifest.Interrupted {
		t.Fatalf("daemon manifest: %+v", manifest)
	}
	for _, rm := range manifest.Runs {
		if rm.Error != "" {
			t.Fatalf("unit %s failed: %s", rm.Key(), rm.Error)
		}
		resp, err := ts.Client().Get(ts.URL + "/v1/bundles/" + final.Bundle + "/files/" + rm.ReportFile)
		if err != nil {
			t.Fatal(err)
		}
		wire, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fetch %s: %s", rm.ReportFile, resp.Status)
		}
		disk, err := os.ReadFile(filepath.Join(cliDir, rm.ReportFile))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, disk) {
			t.Fatalf("report stream %s differs between daemon and achilles-audit:\ndaemon: %q\ncli:    %q",
				rm.ReportFile, wire, disk)
		}
	}

	// And the daemon's own fingerprints line up with the CLI manifest's.
	cliFP := map[string]string{}
	for _, rm := range cliBundle.Manifest.Runs {
		cliFP[rm.Key()] = rm.InputFingerprint
	}
	for _, rm := range manifest.Runs {
		if rm.InputFingerprint != cliFP[rm.Key()] {
			t.Fatalf("unit %s: daemon fingerprint %s != cli %s", rm.Key(), rm.InputFingerprint, cliFP[rm.Key()])
		}
	}
}

// TestE2EContentAddressingDedupes: the same audit submitted twice — at
// different parallelism, which must not matter — produces the same content
// hash, and the store keeps exactly one copy.
func TestE2EContentAddressingDedupes(t *testing.T) {
	cfg := serve.Config{StoreDir: filepath.Join(t.TempDir(), "store")}
	_, ts := daemon(t, cfg)

	hashes := map[string]bool{}
	for _, body := range []string{
		`{"targets":["kv"],"parallelism":1}`,
		`{"targets":["kv"],"parallelism":8}`,
	} {
		js := submit(t, ts, body, "dedupe")
		final := terminalStatus(t, collectUntilDone(t, streamEvents(t, ts, js.EventsURL, nil), 60*time.Second))
		if final.State != "done" {
			t.Fatalf("job %s ended %s: %s", final.ID, final.State, final.Error)
		}
		hashes[final.Bundle] = true
	}
	if len(hashes) != 1 {
		t.Fatalf("same audit produced %d distinct content hashes: %v", len(hashes), hashes)
	}
	entries, err := os.ReadDir(cfg.StoreDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store holds %d bundles after a duplicate audit, want 1", len(entries))
	}

	var listed []serve.BundleInfo
	if code := getJSON(t, ts, "/v1/bundles", &listed); code != http.StatusOK || len(listed) != 1 {
		t.Fatalf("bundle listing: HTTP %d, %d entries", code, len(listed))
	}

	// A self-diff of the stored bundle is empty — the diff endpoint works on
	// store hashes end to end.
	var d serve.DiffResult
	hash := listed[0].Hash
	if code := getJSON(t, ts, "/v1/diff?old="+hash+"&new="+hash, &d); code != http.StatusOK {
		t.Fatalf("diff: HTTP %d", code)
	}
	if !d.Empty {
		t.Fatalf("self-diff not empty: %s", d.Render)
	}
}

// TestE2ECancelMidFrontier: cancelling a running job over HTTP tears the
// session down mid-exploration, streams the cancelled terminal state,
// persists an interrupted bundle (never a partial class set posing as
// complete), and leaks no goroutines.
func TestE2ECancelMidFrontier(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	_, ts := daemon(t, serve.Config{Lookup: deepLookup})
	js := submit(t, ts, `{"targets":["deep"],"parallelism":8}`, "cancel")

	events := streamEvents(t, ts, js.EventsURL, nil)
	// Cancel the moment the exploration proves it is underway: the first
	// progress event (progress is live-only, so seeing one means the unit is
	// mid-frontier right now).
	cancelled := false
	var all []sse
	deadline := time.After(60 * time.Second)
	for !cancelled {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("stream ended before any progress event")
			}
			all = append(all, ev)
			if ev.Name == "progress" {
				resp, err := ts.Client().Post(ts.URL+"/v1/jobs/"+js.ID+"/cancel", "", nil)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("cancel: %s", resp.Status)
				}
				cancelled = true
			}
			if ev.Name == "done" {
				t.Fatal("job finished before the test could cancel it — deep target too shallow")
			}
		case <-deadline:
			t.Fatal("no progress event to cancel on")
		}
	}
	all = append(all, collectUntilDone(t, events, 30*time.Second)...)
	final := terminalStatus(t, all)
	if final.State != "cancelled" {
		t.Fatalf("terminal state = %s, want cancelled", final.State)
	}
	if len(final.Units) != 1 || !strings.HasPrefix(final.Units[0].Error, "interrupted") {
		t.Fatalf("cancelled unit not marked interrupted: %+v", final.Units)
	}

	// The interrupted artifact is still persisted — flagged, so it can never
	// serve as a baseline or golden gate input.
	if final.Bundle == "" {
		t.Fatal("cancelled job persisted no bundle")
	}
	var manifest campaign.Manifest
	if code := getJSON(t, ts, "/v1/bundles/"+final.Bundle, &manifest); code != http.StatusOK {
		t.Fatalf("fetch interrupted manifest: HTTP %d", code)
	}
	if !manifest.Interrupted {
		t.Fatal("interrupted bundle not flagged Interrupted")
	}

	// Cancel is idempotent: a second cancel of a finished job is still 200.
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/"+js.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second cancel: %s", resp.Status)
	}
}

// TestE2EQuotaBackpressure: a client at its in-flight quota gets 429 +
// Retry-After while other clients are unaffected, the rejection is counted
// in /metrics, and finishing a job frees the slot.
func TestE2EQuotaBackpressure(t *testing.T) {
	// One worker and a wide target keep the first job running (and the second
	// queued) while the quota is probed.
	_, ts := daemon(t, serve.Config{Lookup: deepLookup, Workers: 1, ClientQuota: 2})

	j1 := submit(t, ts, `{"targets":["deep"]}`, "tenant-a")
	j2 := submit(t, ts, `{"targets":["deep"]}`, "tenant-a")

	resp := postJob(t, ts, `{"targets":["deep"]}`, "tenant-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "quota") {
		t.Fatalf("429 body: %q, %v", e.Error, err)
	}
	resp.Body.Close()

	// Another tenant is not throttled by tenant-a's backlog.
	j3 := submit(t, ts, `{"targets":["deep"]}`, "tenant-b")

	// The rejection shows up in the metrics.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "achillesd_quota_rejections_total 1") {
		t.Fatalf("metrics missing the quota rejection:\n%s", mbody)
	}

	// Drain everything (cancel is the fast path) and verify the freed slot:
	// tenant-a can submit again.
	for _, j := range []serve.JobStatus{j1, j2, j3} {
		cr, err := ts.Client().Post(ts.URL+"/v1/jobs/"+j.ID+"/cancel", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		cr.Body.Close()
		collectUntilDone(t, streamEvents(t, ts, j.EventsURL, nil), 30*time.Second)
	}
	j4 := submit(t, ts, `{"targets":["deep"]}`, "tenant-a")
	cr, _ := ts.Client().Post(ts.URL+"/v1/jobs/"+j4.ID+"/cancel", "", nil)
	cr.Body.Close()
	collectUntilDone(t, streamEvents(t, ts, j4.EventsURL, nil), 30*time.Second)
}

// TestE2EMalformedRequests: every malformed submission and lookup fails
// loudly with the right status code and a JSON error body — never a silent
// default audit.
func TestE2EMalformedRequests(t *testing.T) {
	_, ts := daemon(t, serve.Config{})

	badSubmits := []struct {
		name, body string
	}{
		{"invalid JSON", `{"targets": [`},
		{"unknown field", `{"targets":["kv"],"paralellism":4}`},
		{"no targets", `{"targets":[]}`},
		{"unknown target", `{"targets":["does-not-exist"]}`},
		{"unknown mode", `{"targets":["kv"],"modes":["turbo"]}`},
		{"empty mode", `{"targets":["kv"],"modes":[""]}`},
		{"negative max_states", `{"targets":["kv"],"max_states":-1}`},
	}
	for _, tc := range badSubmits {
		resp := postJob(t, ts, tc.body, "mal")
		var e struct {
			Error string `json:"error"`
		}
		err := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, resp.StatusCode)
		}
		if err != nil || e.Error == "" {
			t.Errorf("%s: no JSON error body (%v)", tc.name, err)
		}
	}

	if code := getJSON(t, ts, "/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job status: HTTP %d, want 404", code)
	}
	if code := getJSON(t, ts, "/v1/jobs/job-999999/events", nil); code != http.StatusNotFound {
		t.Errorf("unknown job events: HTTP %d, want 404", code)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/job-999999/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job cancel: %s, want 404", resp.Status)
	}
	// Bundle hashes are validated before they touch the filesystem.
	for _, path := range []string{
		"/v1/bundles/../../etc/passwd",
		"/v1/bundles/ZZZZ",
		"/v1/bundles/" + strings.Repeat("a", 32) + "/files/../manifest.json",
		"/v1/bundles/" + strings.Repeat("a", 32) + "/files/notes.txt",
	} {
		if code := getJSON(t, ts, path, nil); code != http.StatusBadRequest && code != http.StatusNotFound {
			t.Errorf("%s: HTTP %d, want 400/404", path, code)
		}
	}
	if code := getJSON(t, ts, "/v1/diff?old=abc", nil); code != http.StatusBadRequest {
		t.Errorf("diff without new=: HTTP %d, want 400", code)
	}
	missing := strings.Repeat("0", 32)
	if code := getJSON(t, ts, "/v1/diff?old="+missing+"&new="+missing, nil); code != http.StatusNotFound {
		t.Errorf("diff of missing bundles: HTTP %d, want 404", code)
	}
}

// TestE2EGracefulShutdown: a drain refuses new work with 503, cancels the
// running session mid-frontier, persists its interrupted bundle, ends the
// event stream with a terminal done event, and unwinds every goroutine.
func TestE2EGracefulShutdown(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	cfg := serve.Config{Lookup: deepLookup, StoreDir: filepath.Join(t.TempDir(), "store")}
	srv, ts := daemon(t, cfg)

	js := submit(t, ts, `{"targets":["deep"],"parallelism":8}`, "drain")
	events := streamEvents(t, ts, js.EventsURL, nil)
	// Wait until the exploration is demonstrably underway, then pull the plug.
	for ev := range events {
		if ev.Name == "progress" {
			break
		}
		if ev.Name == "done" {
			t.Fatal("job finished before the drain started")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Draining is observable: health flips to 503 and submissions bounce.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %s, want 503", hresp.Status)
	}
	sresp := postJob(t, ts, `{"targets":["deep"]}`, "late")
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %s, want 503", sresp.Status)
	}
	if sresp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// The stream the drain cut short still terminates properly, and the
	// interrupted manifest is on disk (checked directly — the artifact must
	// survive the daemon).
	final := terminalStatus(t, collectUntilDone(t, events, 15*time.Second))
	if final.State != "cancelled" {
		t.Fatalf("terminal state after drain = %s, want cancelled", final.State)
	}
	if final.Bundle == "" {
		t.Fatal("drained job persisted no bundle")
	}
	b, err := campaign.Read(filepath.Join(cfg.StoreDir, final.Bundle))
	if err != nil {
		t.Fatalf("read interrupted bundle from the store: %v", err)
	}
	if !b.Manifest.Interrupted {
		t.Fatal("drained bundle not flagged Interrupted")
	}
}

// TestE2EShutdownWithLiveEventStream pins the daemon's shutdown ordering
// (serve.Drain → http.Server.Shutdown → serve.Shutdown) with an SSE stream
// open on a mid-frontier job — the achillesd SIGTERM path. Drain must end
// the stream with its terminal done event so the HTTP shutdown's idle-wait
// returns well inside the drain deadline; shutting the HTTP server down
// first would block on the live connection for the whole window and leave
// the job drain an expired context.
func TestE2EShutdownWithLiveEventStream(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	cfg := serve.Config{Lookup: deepLookup, StoreDir: filepath.Join(t.TempDir(), "store")}
	srv, ts := daemon(t, cfg)

	js := submit(t, ts, `{"targets":["deep"],"parallelism":8}`, "live")
	events := streamEvents(t, ts, js.EventsURL, nil)
	for ev := range events {
		if ev.Name == "progress" {
			break
		}
		if ev.Name == "done" {
			t.Fatal("job finished before the shutdown started")
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	srv.Drain()
	if err := ts.Config.Shutdown(ctx); err != nil {
		t.Fatalf("HTTP shutdown with a live event stream: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("job drain after HTTP shutdown: %v", err)
	}

	// The cut-short stream still terminated properly and the interrupted
	// bundle was persisted before the connections went idle.
	final := terminalStatus(t, collectUntilDone(t, events, 15*time.Second))
	if final.State != "cancelled" {
		t.Fatalf("terminal state = %s, want cancelled", final.State)
	}
	if final.Bundle == "" {
		t.Fatal("drained job persisted no bundle")
	}
	if _, err := campaign.Read(filepath.Join(cfg.StoreDir, final.Bundle)); err != nil {
		t.Fatalf("read drained bundle from the store: %v", err)
	}
}

// TestE2ETerminalJobRetention: the job table is bounded — once more
// terminal jobs than MaxTerminalJobs accumulate, the oldest are evicted
// (status becomes 404, the listing shrinks) while their bundles survive in
// the content-addressed store.
func TestE2ETerminalJobRetention(t *testing.T) {
	_, ts := daemon(t, serve.Config{MaxTerminalJobs: 1})

	var finals []serve.JobStatus
	for i := 0; i < 3; i++ {
		js := submit(t, ts, `{"targets":["kv"]}`, "retain")
		finals = append(finals, terminalStatus(t,
			collectUntilDone(t, streamEvents(t, ts, js.EventsURL, nil), 60*time.Second)))
	}

	var jobs []serve.JobStatus
	if code := getJSON(t, ts, "/v1/jobs", &jobs); code != http.StatusOK {
		t.Fatalf("list jobs: HTTP %d", code)
	}
	if len(jobs) != 1 || jobs[0].ID != finals[2].ID {
		t.Fatalf("job table after 3 audits with MaxTerminalJobs=1: %+v", jobs)
	}
	for _, old := range finals[:2] {
		if code := getJSON(t, ts, "/v1/jobs/"+old.ID, nil); code != http.StatusNotFound {
			t.Errorf("evicted job %s status: HTTP %d, want 404", old.ID, code)
		}
	}
	// Eviction drops bookkeeping, never artifacts: the evicted jobs' bundle
	// is still served from the store.
	if code := getJSON(t, ts, "/v1/bundles/"+finals[0].Bundle, nil); code != http.StatusOK {
		t.Fatalf("evicted job's bundle: HTTP %d, want 200", code)
	}
}

// TestE2ELateSubscriberReplay: an event stream opened after the job has
// already finished replays the full durable history — every state
// transition, phase and trojan discovery — before its done event. Discovery
// events are never lost to timing.
func TestE2ELateSubscriberReplay(t *testing.T) {
	_, ts := daemon(t, serve.Config{})
	js := submit(t, ts, `{"targets":["kv"]}`, "late")

	// First consumer drives the job to completion.
	live := collectUntilDone(t, streamEvents(t, ts, js.EventsURL, nil), 60*time.Second)

	// Second consumer attaches after the fact.
	replay := collectUntilDone(t, streamEvents(t, ts, js.EventsURL, nil), 10*time.Second)

	count := func(evs []sse, name string) int {
		n := 0
		for _, ev := range evs {
			if ev.Name == name {
				n++
			}
		}
		return n
	}
	for _, durable := range []string{"state", "phase", "trojan"} {
		if l, r := count(live, durable), count(replay, durable); l != r {
			t.Errorf("late subscriber saw %d %s events, live saw %d", r, durable, l)
		}
	}
	if count(replay, "trojan") != 1 {
		t.Fatalf("replay lost the trojan discovery: %d trojan events", count(replay, "trojan"))
	}
	if fs := terminalStatus(t, replay); fs.State != "done" {
		t.Fatalf("replayed terminal state = %s", fs.State)
	}
}

// TestE2EJobListing: the job table lists every submission with its current
// state.
func TestE2EJobListing(t *testing.T) {
	_, ts := daemon(t, serve.Config{})
	j1 := submit(t, ts, `{"targets":["kv"]}`, "ls")
	collectUntilDone(t, streamEvents(t, ts, j1.EventsURL, nil), 60*time.Second)

	var jobs []serve.JobStatus
	if code := getJSON(t, ts, "/v1/jobs", &jobs); code != http.StatusOK {
		t.Fatalf("list jobs: HTTP %d", code)
	}
	if len(jobs) != 1 || jobs[0].ID != j1.ID || jobs[0].State != "done" {
		t.Fatalf("job listing = %+v", jobs)
	}
}
