package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"achilles/internal/core"
)

// SSE event names emitted on a job's event stream, in the order a client
// sees them: job state transitions, per-unit pipeline phases, Trojan classes
// the moment they are confirmed, periodic progress, and one final done
// event carrying the job's terminal status.
const (
	eventState    = "state"
	eventPhase    = "phase"
	eventTrojan   = "trojan"
	eventProgress = "progress"
	eventDone     = "done"
)

// sseEvent is one rendered server-sent event: a name and a single-line JSON
// payload. Events are rendered once at publish time and shared by every
// subscriber.
type sseEvent struct {
	name string
	data []byte
}

// broadcaster fans a job's events out to any number of SSE subscribers with
// the same never-block contract as achilles.Session.Events: a subscriber
// whose buffer is full loses the event (counted in drops), the analysis is
// never stalled by a slow client. Durable events (state, phase, trojan) are
// kept in a replay history so a subscriber that attaches after submission —
// or after completion — still sees every discovery; progress events are
// ephemeral and go to live subscribers only.
type broadcaster struct {
	buf   int
	drops *atomic.Int64 // shared server-wide event-drop counter

	mu      sync.Mutex
	history []sseEvent
	subs    map[chan sseEvent]struct{}
}

func newBroadcaster(buf int, drops *atomic.Int64) *broadcaster {
	if buf < 1 {
		buf = 1
	}
	return &broadcaster{buf: buf, drops: drops, subs: map[chan sseEvent]struct{}{}}
}

// publish renders nothing itself — the caller passes the finished event.
// Durable events join the replay history before live delivery, under the
// same lock as subscribe, so every subscriber sees each durable event
// exactly once (replayed or live, never both, never neither).
func (b *broadcaster) publish(ev sseEvent, durable bool) {
	b.mu.Lock()
	if durable {
		b.history = append(b.history, ev)
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
			b.drops.Add(1)
		}
	}
	b.mu.Unlock()
}

// subscribe registers a live channel and returns the durable history to
// replay first. The returned cancel is idempotent and must be called when
// the subscriber disconnects.
func (b *broadcaster) subscribe() (replay []sseEvent, ch chan sseEvent, cancel func()) {
	ch = make(chan sseEvent, b.buf)
	b.mu.Lock()
	replay = append([]sseEvent{}, b.history...)
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	var once sync.Once
	return replay, ch, func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, ch)
			b.mu.Unlock()
		})
	}
}

// jsonEvent marshals v into an sseEvent; marshal failures are programming
// errors (all payloads are plain structs) and panic loudly in tests.
func jsonEvent(name string, v any) sseEvent {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: marshal %s event: %v", name, err))
	}
	return sseEvent{name: name, data: data}
}

// stateEventPayload is the payload of a job-level state transition.
type stateEventPayload struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// phaseEventPayload marks one unit entering a pipeline phase.
type phaseEventPayload struct {
	Unit  string `json:"unit"`
	Phase string `json:"phase"`
}

// trojanEventPayload carries one confirmed Trojan class, tagged with the
// unit (target/mode) that produced it. Class is the canonical class line —
// byte-identical to the bundle and golden-corpus format.
type trojanEventPayload struct {
	Unit        string  `json:"unit"`
	Class       string  `json:"class"`
	ClassID     string  `json:"class_id"`
	Fingerprint string  `json:"fingerprint"`
	Witness     string  `json:"witness"`
	Concrete    []int64 `json:"concrete"`
	Verified    bool    `json:"verified"`
}

// progressEventPayload is a periodic snapshot of a running unit.
type progressEventPayload struct {
	Unit          string  `json:"unit"`
	Phase         string  `json:"phase"`
	ElapsedMS     int64   `json:"elapsed_ms"`
	States        int     `json:"states"`
	FrontierDepth int     `json:"frontier_depth"`
	Trojans       int     `json:"trojans"`
	SolverQueries int     `json:"solver_queries"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
}

// unitObserver bridges the session Observer callbacks of one unit onto the
// job's broadcaster. Callbacks fire synchronously from analysis workers, so
// everything here must be non-blocking — publish is (drop-counted sends).
func unitObserver(j *job, unitKey string) core.Observer {
	return core.Observer{
		OnPhase: func(phase string) {
			j.bcast.publish(jsonEvent(eventPhase, phaseEventPayload{Unit: unitKey, Phase: phase}), true)
		},
		OnTrojan: func(tr core.TrojanReport) {
			j.bcast.publish(jsonEvent(eventTrojan, trojanEventPayload{
				Unit:        unitKey,
				Class:       tr.ClassLine(),
				ClassID:     tr.ClassID(),
				Fingerprint: tr.Fingerprint(),
				Witness:     tr.Witness.String(),
				Concrete:    tr.Concrete,
				Verified:    tr.VerifiedAccept && tr.VerifiedNotClient,
			}), true)
		},
		OnProgress: func(p core.Progress) {
			j.bcast.publish(jsonEvent(eventProgress, progressEventPayload{
				Unit:          unitKey,
				Phase:         p.Phase,
				ElapsedMS:     p.Elapsed.Milliseconds(),
				States:        p.StatesExplored,
				FrontierDepth: p.FrontierDepth,
				Trojans:       p.Trojans,
				SolverQueries: p.SolverQueries,
				CacheHitRate:  p.CacheHitRate,
			}), false)
		},
	}
}

// handleEvents is GET /v1/jobs/{id}/events: the job's event stream as
// server-sent events. The handler replays the durable history (so attaching
// late or re-attaching never misses a discovery), then streams live events
// until the job ends, and closes the stream after one final "done" event
// carrying the terminal job status. A consumer that falls more than the
// configured buffer behind loses progress/overflow events — counted in the
// achillesd_event_stream_drops_total metric — but never stalls the analysis,
// and the done event and persisted bundle are always complete.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, ch, cancel := j.bcast.subscribe()
	defer cancel()
	write := func(ev sseEvent) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
	}
	for _, ev := range replay {
		write(ev)
	}
	fl.Flush()

	finish := func() {
		// The job is over and finishJob published everything before closing
		// done, so the channel holds a bounded remainder: drain it, then end
		// the stream with the terminal status.
		for {
			select {
			case ev := <-ch:
				write(ev)
			default:
				write(jsonEvent(eventDone, s.jobStatus(j)))
				fl.Flush()
				return
			}
		}
	}
	for {
		select {
		case ev := <-ch:
			write(ev)
			fl.Flush()
		case <-j.done:
			finish()
			return
		case <-r.Context().Done():
			return
		}
	}
}
