// Package serve is the audit-as-a-service layer behind cmd/achillesd: an
// HTTP daemon that turns the one-shot Achilles pipeline into a long-running,
// multi-tenant service.
//
// Clients submit audit jobs (targets, modes, session options as JSON) and
// get back a job ID; the daemon multiplexes many concurrent achilles.Start
// sessions under one global worker budget (a FIFO all-or-nothing lease over
// the -j knob, so jobs queue instead of oversubscribing and a wide job is
// never starved), streams phase/trojan/progress events to any number of
// clients as server-sent events (the Session Observer plumbing maps 1:1
// onto SSE), enforces per-client concurrent-job quotas with backpressure
// (429 + Retry-After), and persists every finished run as an ordinary
// versioned audit bundle in a content-addressed store — byte-identical to
// what achilles-audit run writes for the same inputs, which extends the
// standing determinism invariant to the wire. /healthz and Prometheus-style
// /metrics make it operable behind a load balancer.
//
// Endpoints:
//
//	POST /v1/jobs                          submit (202 + job status)
//	GET  /v1/jobs                          list jobs
//	GET  /v1/jobs/{id}                     job status
//	GET  /v1/jobs/{id}/events              SSE stream (replay + live + done)
//	POST /v1/jobs/{id}/cancel              cancel (idempotent)
//	GET  /v1/bundles                       list stored bundles
//	GET  /v1/bundles/{hash}                bundle manifest
//	GET  /v1/bundles/{hash}/files/{name}   raw bundle member (manifest/JSONL)
//	GET  /v1/diff?old=H1&new=H2            class-level bundle diff
//	GET  /healthz                          200 ok / 503 draining
//	GET  /metrics                          Prometheus text format
//
// Shutdown drains gracefully: new submissions are refused with 503, every
// in-flight session is cancelled mid-frontier, interrupted bundles are
// still persisted (flagged Interrupted, refused as baselines — the campaign
// invariant), event streams end with a terminal done event, and Shutdown
// returns once every job goroutine has unwound. See DESIGN.md, "The serving
// layer".
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"achilles/internal/campaign"
	"achilles/internal/protocols/registry"
	"achilles/internal/solver"

	"context"
)

// Config configures a Server.
type Config struct {
	// Workers is the global analysis worker budget (the -j knob) shared by
	// every concurrent session; values < 1 mean 1.
	Workers int
	// ClientQuota is the maximum number of in-flight (queued or running)
	// jobs per client; submissions beyond it get 429 + Retry-After. Values
	// < 1 mean 4.
	ClientQuota int
	// StoreDir is the content-addressed bundle store root (required).
	StoreDir string
	// Solver is the shared solver kept warm across all sessions; nil means
	// solver.Default().
	Solver *solver.Solver
	// Lookup resolves target names; nil means the global protocol registry.
	// Tests inject synthetic catalogs here.
	Lookup func(name string) (registry.Descriptor, bool)
	// EventBuffer is the per-subscriber SSE buffer; a consumer further
	// behind loses events (drop-counted). Values < 1 mean 1024.
	EventBuffer int
	// MaxTerminalJobs caps how many terminal (done/cancelled/failed) jobs
	// the daemon keeps in its job table for status queries and event
	// replay. Beyond the cap the oldest terminal jobs are evicted — along
	// with their event histories — so a long-running daemon does not grow
	// without bound under sustained submissions; the bundles in the store
	// remain the durable record. Values < 1 mean 512.
	MaxTerminalJobs int
}

// Server is one achillesd instance. Create with New, mount Handler, drain
// with Shutdown.
type Server struct {
	cfg     Config
	lookup  func(string) (registry.Descriptor, bool)
	solver  *solver.Solver
	sem     *wsem
	store   *Store
	metrics metrics
	mux     *http.ServeMux

	mu        sync.Mutex
	draining  bool
	nextID    int
	jobs      map[string]*job
	order     []string // submission order, for stable listings
	perClient map[string]int
	wg        sync.WaitGroup
}

// New builds a Server; the store directory is created if needed.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.ClientQuota < 1 {
		cfg.ClientQuota = 4
	}
	if cfg.EventBuffer < 1 {
		cfg.EventBuffer = 1024
	}
	if cfg.MaxTerminalJobs < 1 {
		cfg.MaxTerminalJobs = 512
	}
	store, err := newStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		lookup:    cfg.Lookup,
		solver:    cfg.Solver,
		sem:       newWsem(cfg.Workers),
		store:     store,
		jobs:      map[string]*job{},
		perClient: map[string]int{},
	}
	if s.lookup == nil {
		s.lookup = registry.Lookup
	}
	if s.solver == nil {
		s.solver = solver.Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/bundles", s.handleListBundles)
	mux.HandleFunc("GET /v1/bundles/{hash}", s.handleBundleManifest)
	mux.HandleFunc("GET /v1/bundles/{hash}/files/{name}", s.handleBundleFile)
	mux.HandleFunc("GET /v1/diff", s.handleDiff)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain starts a graceful shutdown without waiting for it: new submissions
// are refused (503, and /healthz flips to 503) and every non-terminal job
// is cancelled, so running sessions unwind mid-frontier, interrupted
// bundles get persisted, and open event streams end with their terminal
// done event on their own. Callers that front the Server with an
// http.Server must Drain before http.Server.Shutdown — SSE connections
// only go idle once their job is terminal, so the reverse order blocks the
// HTTP shutdown on live streams for its whole deadline. Safe to call more
// than once.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	js := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	for _, j := range js {
		j.cancel()
	}
}

// Shutdown drains the daemon (see Drain) and blocks until all job
// goroutines have finished or ctx expires. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}

// errorBody is the uniform JSON error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clientKey identifies the submitting client for quota accounting: the
// X-Achilles-Client header when present (how real deployments pass a tenant
// ID through a proxy), else the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Achilles-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleSubmit is POST /v1/jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	units, par, err := s.planJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	client := clientKey(r)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	if s.perClient[client] >= s.cfg.ClientQuota {
		s.mu.Unlock()
		s.metrics.quotaRejections.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("client %q has %d job(s) in flight (quota %d)", client, s.cfg.ClientQuota, s.cfg.ClientQuota))
		return
	}
	s.perClient[client]++
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      id,
		client:  client,
		req:     req,
		units:   units,
		par:     par,
		ctx:     ctx,
		cancel:  cancel,
		bcast:   newBroadcaster(s.cfg.EventBuffer, &s.metrics.eventDrops),
		done:    make(chan struct{}),
		created: time.Now(),
		state:   stateQueued,
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.wg.Add(1)
	s.mu.Unlock()

	j.bcast.publish(jsonEvent(eventState, stateEventPayload{ID: id, State: stateQueued}), true)
	go s.runJob(j)
	writeJSON(w, http.StatusAccepted, s.jobStatus(j))
}

// releaseClient returns one quota slot when a job reaches a terminal state.
func (s *Server) releaseClient(client string) {
	s.mu.Lock()
	if s.perClient[client] > 1 {
		s.perClient[client]--
	} else {
		delete(s.perClient, client)
	}
	s.mu.Unlock()
}

// getJob resolves a job ID; nil when unknown.
func (s *Server) getJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// evictTerminalJobs enforces Config.MaxTerminalJobs: once more terminal
// jobs than the cap sit in the job table, the oldest are dropped from the
// table and the submission order — their broadcaster histories with them —
// so the daemon's memory stays bounded under sustained traffic. Evicted
// jobs answer 404 afterwards; their bundles in the content-addressed store
// are the durable record. Queued and running jobs are never evicted.
func (s *Server) evictTerminalJobs() {
	s.mu.Lock()
	defer s.mu.Unlock()
	terminal := make([]string, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		if st == stateDone || st == stateCancelled || st == stateFailed {
			terminal = append(terminal, id)
		}
	}
	excess := len(terminal) - s.cfg.MaxTerminalJobs
	if excess <= 0 {
		return
	}
	drop := make(map[string]bool, excess)
	for _, id := range terminal[:excess] {
		drop[id] = true
		delete(s.jobs, id)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if !drop[id] {
			kept = append(kept, id)
		}
	}
	s.order = kept
}

// handleJobStatus is GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.jobStatus(j))
}

// handleListJobs is GET /v1/jobs.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string{}, s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j := s.getJob(id); j != nil {
			out = append(out, s.jobStatus(j))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCancel is POST /v1/jobs/{id}/cancel: idempotent, returns the status
// snapshot taken right after the cancel landed (the job may still be
// unwinding — poll status or consume the event stream for the terminal
// state).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, s.jobStatus(j))
}

// BundleInfo is one stored bundle in the listing.
type BundleInfo struct {
	Hash        string `json:"hash"`
	CreatedAt   string `json:"created_at"`
	Jobs        int    `json:"jobs"`
	Classes     int    `json:"classes"`
	Interrupted bool   `json:"interrupted,omitempty"`
}

// handleListBundles is GET /v1/bundles.
func (s *Server) handleListBundles(w http.ResponseWriter, r *http.Request) {
	listed, err := s.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := make([]BundleInfo, 0, len(listed))
	for _, lb := range listed {
		classes := 0
		for _, rm := range lb.Manifest.Runs {
			classes += rm.Classes
		}
		out = append(out, BundleInfo{
			Hash:        lastPathElement(lb.Dir),
			CreatedAt:   lb.Manifest.CreatedAt,
			Jobs:        len(lb.Manifest.Runs),
			Classes:     classes,
			Interrupted: lb.Manifest.Interrupted,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	writeJSON(w, http.StatusOK, out)
}

// handleBundleManifest is GET /v1/bundles/{hash}: the raw manifest.json.
func (s *Server) handleBundleManifest(w http.ResponseWriter, r *http.Request) {
	s.serveBundleFile(w, r.PathValue("hash"), campaign.ManifestName)
}

// handleBundleFile is GET /v1/bundles/{hash}/files/{name}: a raw bundle
// member, byte-identical to the file achilles-audit would have written.
func (s *Server) handleBundleFile(w http.ResponseWriter, r *http.Request) {
	s.serveBundleFile(w, r.PathValue("hash"), r.PathValue("name"))
}

func (s *Server) serveBundleFile(w http.ResponseWriter, hash, name string) {
	path, err := s.store.FilePath(hash, name)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusNotFound, "no such bundle file")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// DiffResult is the wire shape of GET /v1/diff.
type DiffResult struct {
	Old    string `json:"old"`
	New    string `json:"new"`
	Empty  bool   `json:"empty"`
	Render string `json:"render"`
}

// handleDiff is GET /v1/diff?old=H1&new=H2: the class-level diff of two
// stored bundles (appeared / disappeared / changed), the same comparison
// achilles-audit diff performs.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	oldH, newH := r.URL.Query().Get("old"), r.URL.Query().Get("new")
	if oldH == "" || newH == "" {
		writeError(w, http.StatusBadRequest, "need old= and new= bundle hashes")
		return
	}
	load := func(h string) (*campaign.Bundle, int, error) {
		b, err := s.store.Get(h)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, http.StatusNotFound, fmt.Errorf("no such bundle %q", h)
			}
			return nil, http.StatusBadRequest, err
		}
		return b, 0, nil
	}
	oldB, code, err := load(oldH)
	if err != nil {
		writeError(w, code, err.Error())
		return
	}
	newB, code, err := load(newH)
	if err != nil {
		writeError(w, code, err.Error())
		return
	}
	d := campaign.Diff(oldB, newB)
	writeJSON(w, http.StatusOK, DiffResult{Old: oldH, New: newH, Empty: d.Empty(), Render: d.Render()})
}

// handleHealthz is GET /healthz: 200 while serving, 503 while draining (so
// a load balancer stops routing to an instance being rolled).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// lastPathElement is filepath.Base without importing path/filepath here.
func lastPathElement(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == os.PathSeparator {
			return p[i+1:]
		}
	}
	return p
}
