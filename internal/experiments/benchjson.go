package experiments

// Machine-readable experiment results: the bench-regression trajectory.
//
// benchtab -json serialises selected experiments as BENCH_<exp>.json and
// cmd/benchguard compares a fresh report against the committed baseline,
// failing CI when a guarded metric regresses. Two kinds of metric coexist:
//
//   - guarded metrics are deterministic functions of the analysis at -j 1 —
//     class counts, solver queries, decisions, splits. They are
//     machine-independent, so a committed baseline from one host guards runs
//     on any other. Search-space metrics (decisions, splits, queries) are
//     the real regression signal for the solver fast path: wall-clock
//     improvements that buy search-space explosions are caught here;
//   - informational metrics (wall-clock, speedup factors) chart the
//     trajectory but are host-dependent, so benchguard ignores them.
//
// Exact metrics (class counts, target counts) must match the baseline
// bit-for-bit: a class-set change is never a "regression percentage", it is
// a soundness event that the golden corpus pins separately.

import (
	"encoding/json"
	"fmt"
	"time"

	"achilles/internal/solver"
)

// Metric is one measured value of an experiment.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// HigherIsBetter orients regression checks (speedups vs wall-clock).
	HigherIsBetter bool `json:"higher_is_better"`
	// Guard marks metrics benchguard enforces against the baseline.
	Guard bool `json:"guard"`
	// Exact marks guarded metrics that must equal the baseline exactly
	// (class counts); tolerance does not apply to them.
	Exact bool `json:"exact,omitempty"`
}

// BenchReport is the serialised form of one experiment run.
type BenchReport struct {
	// Experiment names the benchtab experiment that produced the report.
	Experiment string `json:"experiment"`
	// SolverVersion records the decision-procedure revision; guarded solver
	// counters are only comparable within one revision's semantics, so
	// benchguard reports a version change instead of diffing across it.
	SolverVersion string   `json:"solver_version"`
	Metrics       []Metric `json:"metrics"`
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r BenchReport) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Metric looks a metric up by name.
func (r BenchReport) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

func ms(d time.Duration) float64 { return float64(d.Milliseconds()) }

// Report serialises the speedup experiment. Guarded metrics come from the
// -j 1 row — the sequential pipeline is deterministic, so its solver
// counters are exact regression signals; the multi-worker rows contribute
// informational wall-clock only.
func (s *Speedup) Report() (BenchReport, error) {
	r := BenchReport{Experiment: "speedup", SolverVersion: solver.Version}
	var seq *SpeedupRow
	for i := range s.Rows {
		if s.Rows[i].Jobs == 1 {
			seq = &s.Rows[i]
			break
		}
	}
	if seq == nil {
		return r, fmt.Errorf("experiments: speedup report needs a -j 1 row")
	}
	st := seq.Solver
	r.Metrics = []Metric{
		{Name: "classes", Value: float64(seq.Classes), Unit: "classes", Guard: true, Exact: true},
		{Name: "solver_queries", Value: float64(st.Queries), Unit: "queries", Guard: true},
		{Name: "solver_decisions", Value: float64(st.Decisions), Unit: "decisions", Guard: true},
		{Name: "solver_splits", Value: float64(st.Splits), Unit: "splits", Guard: true},
		{Name: "solver_unknowns", Value: float64(st.Unknowns), Unit: "queries", Guard: true},
		{Name: "solver_propagations", Value: float64(st.Propagations), Unit: "steps", Guard: true},
		{Name: "learned_sets", Value: float64(st.LearnedSets), Unit: "sets"},
		{Name: "learned_hits", Value: float64(st.LearnedHits), Unit: "hits"},
		{Name: "interned_terms", Value: float64(st.Interned), Unit: "terms"},
		{Name: "total_ms", Value: ms(seq.Total), Unit: "ms"},
		{Name: "server_ms", Value: ms(seq.Server), Unit: "ms"},
	}
	for _, row := range s.Rows {
		if row.Jobs == 1 {
			continue
		}
		r.Metrics = append(r.Metrics,
			Metric{Name: fmt.Sprintf("total_ms_j%d", row.Jobs), Value: ms(row.Total), Unit: "ms"})
	}
	return r, nil
}

// Report serialises the fleet-campaign experiment. Guarded metrics come
// from the budget-1 bundle's manifest counters.
func (c *CampaignScaling) Report() (BenchReport, error) {
	r := BenchReport{Experiment: "campaign", SolverVersion: solver.Version}
	if len(c.Rows) == 0 || c.Rows[0].Jobs != 1 {
		return r, fmt.Errorf("experiments: campaign report needs a budget-1 row first")
	}
	seq := c.Rows[0]
	r.Metrics = []Metric{
		{Name: "targets", Value: float64(c.Targets), Unit: "targets", Guard: true, Exact: true},
		{Name: "classes", Value: float64(seq.Classes), Unit: "classes", Guard: true, Exact: true},
		{Name: "solver_queries", Value: float64(c.Solver["queries"]), Unit: "queries", Guard: true},
		{Name: "solver_cache_misses", Value: float64(c.Solver["cache_misses"]), Unit: "queries", Guard: true},
		{Name: "solver_unknowns", Value: float64(c.Solver["unknowns"]), Unit: "queries", Guard: true},
		{Name: "solver_cache_hits", Value: float64(c.Solver["cache_hits"]), Unit: "queries"},
		{Name: "wall_ms", Value: ms(seq.Wall), Unit: "ms"},
	}
	for _, row := range c.Rows {
		if row.Jobs == 1 {
			continue
		}
		r.Metrics = append(r.Metrics,
			Metric{Name: fmt.Sprintf("wall_ms_j%d", row.Jobs), Value: ms(row.Wall), Unit: "ms"})
	}
	return r, nil
}
