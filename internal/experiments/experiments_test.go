package experiments

import (
	"strings"
	"testing"

	"achilles/internal/protocols/fsp"
)

func TestTable1Shape(t *testing.T) {
	tab, err := RunTable1(8)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's shape: Achilles finds all 80 classes with zero false
	// positives; classic finds (at most) the same classes but buried in
	// false positives.
	if tab.AchillesTP != 80 || tab.AchillesFP != 0 {
		t.Fatalf("Achilles TP=%d FP=%d, want 80/0", tab.AchillesTP, tab.AchillesFP)
	}
	if tab.ClassicFP == 0 {
		t.Fatalf("classic baseline produced no false positives — the signal/noise point is lost")
	}
	if tab.ClassicFP < tab.ClassicTP {
		t.Fatalf("classic FP (%d) should dominate TP (%d)", tab.ClassicFP, tab.ClassicTP)
	}
	if !strings.Contains(tab.Render(), "True Positives") {
		t.Fatal("render broken")
	}
}

func TestFigure10Shape(t *testing.T) {
	fig, err := RunFigure10()
	if err != nil {
		t.Fatal(err)
	}
	if fig.Total != fig.Known {
		t.Fatalf("found %d of %d known classes", fig.Total, fig.Known)
	}
	// Monotone non-decreasing, ends at 100%.
	last := -1.0
	for _, p := range fig.Points {
		if p.Percent < last {
			t.Fatalf("discovery curve not monotone: %v", fig.Points)
		}
		last = p.Percent
	}
	if last != 100 {
		t.Fatalf("final percentage %.1f, want 100", last)
	}
	if !strings.Contains(fig.Render(), "%") {
		t.Fatal("render broken")
	}
}

func TestFigure11Shape(t *testing.T) {
	fig, err := RunFigure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Lens) < 3 {
		t.Fatalf("too few path lengths: %v", fig.Lens)
	}
	// The paper's shape: long paths match far fewer client predicates than
	// short ones.
	first := fig.MeanLive[0]
	lastMean := fig.MeanLive[len(fig.MeanLive)-1]
	if lastMean >= first {
		t.Fatalf("live counts do not fall with path length: first %.1f last %.1f", first, lastMean)
	}
	if fig.MaxLive[0] > fig.Clients {
		t.Fatalf("max live %d exceeds client paths %d", fig.MaxLive[0], fig.Clients)
	}
	_ = fig.Render()
}

func TestTrojanDensityFormula(t *testing.T) {
	d := TrojanDensity()
	if d <= 0 || d > 1e-3 {
		t.Fatalf("density out of expected range: %g", d)
	}
	// Cross-check against direct enumeration over a reduced space: use the
	// formula's own structure with 94 printable chars.
	count := 0.0
	for _, l := range []int{1, 2, 3, 4} {
		for tt := 0; tt < l; tt++ {
			c := 8.0
			for i := 0; i < tt; i++ {
				c *= 94
			}
			for i := tt + 1; i < l; i++ {
				c *= 256
			}
			count += c
		}
	}
	total := 1.0
	for i := 0; i < 7; i++ {
		total *= 256
	}
	if diff := d - count/total; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("density mismatch: %g vs %g", d, count/total)
	}
}

func TestFuzzComparisonShape(t *testing.T) {
	fc, err := RunFuzzComparison(3000)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Tests != 3000 {
		t.Fatalf("tests = %d", fc.Tests)
	}
	// Random fuzzing over the analysed fields should essentially never hit
	// a Trojan (density ~1e-7), while Achilles finds all 80.
	if fc.DistinctClasses >= 80 {
		t.Fatalf("fuzzing covered %d classes in 3000 tests — generator is not random enough", fc.DistinctClasses)
	}
	if fc.AchillesTrojans != 80 {
		t.Fatalf("Achilles found %d", fc.AchillesTrojans)
	}
	if fc.ExpectedPerHour < 0 {
		t.Fatal("negative expectation")
	}
	_ = fc.Render()
}

func TestPhaseSplit(t *testing.T) {
	ps, err := RunPhaseSplit()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's shape: gathering the client predicate is the cheapest
	// phase; the server analysis dominates.
	if ps.ClientExtract >= ps.Server {
		t.Fatalf("client extraction (%v) should be cheaper than server analysis (%v)",
			ps.ClientExtract, ps.Server)
	}
	_ = ps.Render()
}

func TestAblationShape(t *testing.T) {
	ab, err := RunAblation()
	if err != nil {
		t.Fatal(err)
	}
	// All modes must find the same 80 Trojans.
	for i, n := range ab.TrojansPerMode {
		if n != 80 {
			t.Fatalf("mode %d found %d Trojans", i, n)
		}
	}
	// The optimisations must reduce solver work: full Achilles issues fewer
	// queries than the no-differentFrom variant.
	if ab.SolverQueries[0] >= ab.SolverQueries[1] {
		t.Fatalf("differentFrom did not reduce solver queries: %d vs %d",
			ab.SolverQueries[0], ab.SolverQueries[1])
	}
	_ = ab.Render()
}

func TestPBFTAnalysisShape(t *testing.T) {
	pa, err := RunPBFTAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if pa.Trojans == 0 || !pa.SingleClass {
		t.Fatalf("PBFT: trojans=%d single=%v", pa.Trojans, pa.SingleClass)
	}
	if pa.Trojans != pa.AcceptingPaths {
		t.Fatalf("MAC trojan must appear on every accepting path: %d vs %d", pa.Trojans, pa.AcceptingPaths)
	}
	if pa.Total.Seconds() > 5 {
		t.Fatalf("PBFT analysis too slow: %v", pa.Total)
	}
	_ = pa.Render()
}

func TestMACImpactShape(t *testing.T) {
	mi := RunMACImpact(2000)
	// Goodput must fall monotonically as the attack intensifies (rates are
	// ordered none, 1/100, 1/20, 1/10, 1/5, 1/2).
	for i := 1; i < len(mi.Goodput); i++ {
		if mi.Goodput[i] > mi.Goodput[i-1] {
			t.Fatalf("goodput not decreasing: %v", mi.Goodput)
		}
	}
	if mi.Recoveries[0] != 0 {
		t.Fatalf("baseline triggered recoveries: %d", mi.Recoveries[0])
	}
	if mi.Goodput[len(mi.Goodput)-1] > mi.Goodput[0]/2 {
		t.Fatalf("heavy attack did not halve goodput: %v", mi.Goodput)
	}
	_ = mi.Render()
}

func TestWildcardSummary(t *testing.T) {
	w, err := RunWildcard()
	if err != nil {
		t.Fatal(err)
	}
	if w.LengthClasses != fsp.KnownTrojanClasses() {
		t.Fatalf("length classes = %d", w.LengthClasses)
	}
	if w.WildcardClasses != 32 {
		t.Fatalf("wildcard classes = %d, want 32", w.WildcardClasses)
	}
	_ = w.Render()
}

func TestIncrementalCampaign(t *testing.T) {
	// Cheap targets keep the three-run study affordable; the whole-catalog
	// numbers live in EXPERIMENTS.md (benchtab -exp incremental).
	ic, err := RunIncrementalCampaign([]string{"kv", "kv-fixed", "paxos"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ic.TotalJobs != 3 {
		t.Fatalf("want 3 jobs, got %d", ic.TotalJobs)
	}
	if ic.CachedJobs != ic.TotalJobs {
		t.Fatalf("unchanged fleet reused %d/%d jobs", ic.CachedJobs, ic.TotalJobs)
	}
	if ic.CacheEntries == 0 {
		t.Fatal("no solver verdicts survived the persistence round trip")
	}
	// RunIncrementalCampaign itself fails on any bundle divergence, so the
	// rows here are guaranteed comparable; the incremental run must not cost
	// more than the cold one (it only computes fingerprints). Wall clocks
	// are noisy in CI, so assert ordering rather than the <20% headline
	// ratio, which EXPERIMENTS.md records from a quiet machine.
	if ic.IncrementalWall > ic.ColdWall {
		t.Errorf("incremental wall %v exceeds cold wall %v", ic.IncrementalWall, ic.ColdWall)
	}
	if !strings.Contains(ic.Render(), "incremental (-baseline)") {
		t.Fatalf("render missing incremental row:\n%s", ic.Render())
	}
}

func TestCampaignScaling(t *testing.T) {
	// Two budgets keep the test affordable while still exercising the
	// identical-bundle cross-check between levels.
	c, err := RunCampaignScaling([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(c.Rows))
	}
	if c.Targets == 0 {
		t.Fatal("campaign audited no targets")
	}
	if c.Rows[0].Classes != c.Rows[1].Classes {
		t.Fatalf("class totals differ across budgets: %d vs %d", c.Rows[0].Classes, c.Rows[1].Classes)
	}
	if !strings.Contains(c.Render(), "identical bundle") {
		t.Fatalf("render missing determinism banner:\n%s", c.Render())
	}
}

func TestRecallShape(t *testing.T) {
	// Two mutants per target keep the test affordable; the full-catalog
	// numbers live in EXPERIMENTS.md.
	r, err := RunRecall(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Targets) != 3 {
		t.Fatalf("want 3 targets (fsp, kv, raft), got %d", len(r.Targets))
	}
	for _, tr := range r.Targets {
		if tr.Tally.Generated != 2 {
			t.Errorf("%s generated %d mutants, want 2", tr.Target, tr.Tally.Generated)
		}
		if !tr.SeededTrojans || !tr.SeededDetected {
			t.Errorf("%s: seeded ground truth not detected", tr.Target)
		}
		if tr.Precision == nil || tr.Precision.Score != 1 {
			t.Errorf("%s: precision on ground truth not 1.00: %+v", tr.Target, tr.Precision)
		}
	}
	if fn := r.FalseNegatives(); len(fn) != 0 {
		t.Errorf("false negatives: %v", fn)
	}
	if !strings.Contains(r.Render(), "mutation recall") {
		t.Fatalf("render missing header:\n%s", r.Render())
	}
}
