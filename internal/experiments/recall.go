package experiments

import (
	"achilles/internal/mutate"
)

// RunRecall is the standing mutation-recall experiment behind the
// EXPERIMENTS.md table: mutate the seeded registry targets with the full
// operator catalog (maxPerTarget 0 = every site), audit originals and
// mutants as one campaign at the given parallelism, and measure which
// injected bugs the detector catches (recall) alongside how its baseline
// findings hold up against the ground-truth oracles (precision).
func RunRecall(jobs, maxPerTarget int) (*mutate.RecallReport, error) {
	res, err := mutate.Run(mutate.CampaignOptions{
		Jobs:         jobs,
		MaxPerTarget: maxPerTarget,
	})
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}
