// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment returns a typed result plus a text
// rendering with the same rows/series the paper reports; bench_test.go and
// cmd/benchtab are thin wrappers around these functions.
//
// Absolute times differ from the paper (interpreted NL models on commodity
// hardware vs x86 binaries under S2E on a 16-core Xeon); the reproduction
// target is the shape: who wins, by what rough factor, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured for each row.
package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strings"
	"time"

	"achilles/internal/campaign"
	"achilles/internal/classic"
	"achilles/internal/core"
	"achilles/internal/fuzz"
	"achilles/internal/protocols/fsp"
	"achilles/internal/protocols/pbft"
	"achilles/internal/protocols/registry"
	"achilles/internal/solver"

	// Populate the protocol registry: every experiment resolves its targets,
	// oracles and fuzz generators from there.
	_ "achilles/internal/protocols"
)

// Table1 is the §6.2 accuracy comparison on FSP.
type Table1 struct {
	AchillesTP, AchillesFP int
	ClassicTP, ClassicFP   int
	AchillesTime           time.Duration
	ClassicTime            time.Duration
	ClassicMessages        int
}

// RunTable1 reproduces Table 1: Achilles vs classic symbolic execution on
// the bounded FSP setup with 80 known Trojan classes. perPath bounds the
// classic baseline's per-path enumeration (16 by default). The target, its
// ground-truth oracle and the class bucketing all come from the registry
// descriptor.
func RunTable1(perPath int) (*Table1, error) {
	out := &Table1{}
	d := registry.MustLookup("fsp")
	tgt := d.Target()

	// Achilles.
	run, err := d.Run(core.ModeOptimized, 0)
	if err != nil {
		return nil, err
	}
	out.AchillesTime = run.Total()
	classes := map[string]bool{}
	for _, tr := range run.Analysis.Trojans {
		if d.Trojan(tr.Concrete, nil) {
			classes[d.Class(tr.Concrete)] = true
		} else {
			out.AchillesFP++
		}
	}
	out.AchillesTP = len(classes)

	// Classic symbolic execution + enumeration.
	cres, err := classic.Enumerate(tgt.Server, classic.Options{
		NumFields: len(tgt.FieldNames),
		PerPath:   perPath,
	})
	if err != nil {
		return nil, err
	}
	out.ClassicTime = cres.Duration
	out.ClassicMessages = len(cres.Messages)
	cclasses := map[string]bool{}
	for _, m := range cres.Messages {
		if d.Trojan(m.Fields, nil) {
			cclasses[d.Class(m.Fields)] = true
		} else {
			out.ClassicFP++
		}
	}
	out.ClassicTP = len(cclasses)
	return out, nil
}

// Render prints the table in the paper's layout.
func (t *Table1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Achilles vs classic symbolic execution (FSP, bound 5)\n")
	fmt.Fprintf(&b, "%-18s %12s %12s\n", "", "Achilles", "Classic")
	fmt.Fprintf(&b, "%-18s %12d %12d\n", "True Positives", t.AchillesTP, t.ClassicTP)
	fmt.Fprintf(&b, "%-18s %12d %12d\n", "False Positives", t.AchillesFP, t.ClassicFP)
	fmt.Fprintf(&b, "%-18s %12s %12s\n", "Time", t.AchillesTime.Round(time.Millisecond), t.ClassicTime.Round(time.Millisecond))
	return b.String()
}

// Figure10Point is one point of the discovery curve.
type Figure10Point struct {
	Elapsed time.Duration
	Percent float64
}

// Figure10 is the §6.2 discovery-over-time curve.
type Figure10 struct {
	Points    []Figure10Point
	Total     int
	Known     int
	ServerDur time.Duration
}

// RunFigure10 reproduces Figure 10: the percentage of the 80 known FSP
// Trojans discovered as a function of server-analysis time.
func RunFigure10() (*Figure10, error) {
	run, err := registry.MustLookup("fsp").Run(core.ModeOptimized, 0)
	if err != nil {
		return nil, err
	}
	out := &Figure10{
		Total:     len(run.Analysis.Trojans),
		Known:     fsp.KnownTrojanClasses(),
		ServerDur: run.ServerTime,
	}
	for _, p := range run.Analysis.Timeline {
		out.Points = append(out.Points, Figure10Point{
			Elapsed: p.Elapsed,
			Percent: 100 * float64(p.Found) / float64(out.Known),
		})
	}
	return out, nil
}

// Render prints a sampled curve.
func (f *Figure10) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: %% of known FSP Trojans discovered vs analysis time (total %d / known %d)\n", f.Total, f.Known)
	step := len(f.Points) / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(f.Points); i += step {
		p := f.Points[i]
		fmt.Fprintf(&b, "  %10s  %6.1f%%\n", p.Elapsed.Round(time.Millisecond), p.Percent)
	}
	last := f.Points[len(f.Points)-1]
	fmt.Fprintf(&b, "  %10s  %6.1f%%  (final)\n", last.Elapsed.Round(time.Millisecond), last.Percent)
	return b.String()
}

// Figure11 aggregates the live client-path counts per server path length.
type Figure11 struct {
	// MeanLive[len] is the mean number of matching client path predicates
	// across all states observed at that path length.
	Lens     []int
	MeanLive []float64
	MaxLive  []int
	Clients  int
}

// RunFigure11 reproduces Figure 11: the number of client path predicates
// that can trigger each server execution path, as a function of path
// length. The count must fall as paths grow more specialised. The rich FSP
// client corpus (flags + path normalisation, 256 client path predicates) is
// used here because Figure 11 studies exactly the large-predicate regime.
func RunFigure11() (*Figure11, error) {
	run, err := core.Run(fsp.NewRichTarget(false), core.AnalysisOptions{})
	if err != nil {
		return nil, err
	}
	byLen := map[int][]int{}
	for _, p := range run.Analysis.LiveTrace {
		byLen[p.PathLen] = append(byLen[p.PathLen], p.Live)
	}
	out := &Figure11{Clients: len(run.Clients.Paths)}
	for l := range byLen {
		out.Lens = append(out.Lens, l)
	}
	sort.Ints(out.Lens)
	for _, l := range out.Lens {
		sum, max := 0, 0
		for _, v := range byLen[l] {
			sum += v
			if v > max {
				max = v
			}
		}
		out.MeanLive = append(out.MeanLive, float64(sum)/float64(len(byLen[l])))
		out.MaxLive = append(out.MaxLive, max)
	}
	return out, nil
}

// Render prints the series.
func (f *Figure11) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: matching client path predicates vs server path length (%d client paths)\n", f.Clients)
	fmt.Fprintf(&b, "  %8s %10s %8s\n", "pathLen", "meanLive", "maxLive")
	for i, l := range f.Lens {
		fmt.Fprintf(&b, "  %8d %10.1f %8d\n", l, f.MeanLive[i], f.MaxLive[i])
	}
	return b.String()
}

// FuzzComparison is the §6.2 fuzzing baseline.
type FuzzComparison struct {
	Tests            int
	Accepted         int
	Trojans          int
	DistinctClasses  int
	TestsPerMin      float64
	TrojanDensity    float64 // analytic fraction of the fuzzed space that is Trojan
	ExpectedPerHour  float64 // analytic expected Trojan discoveries per hour
	AchillesTotal    time.Duration
	AchillesTrojans  int
	FuzzFalsePosRate float64 // accepted-but-not-Trojan per test
}

// TrojanDensity computes, in closed form, the fraction of the fuzzed space
// (cmd, bb_len, 5 path bytes uniform over 256 values each) that is a
// mismatched-length Trojan — the analogue of the paper's 66M / 1.8e19.
func TrojanDensity() float64 {
	const charset = float64(fsp.CharMax - fsp.CharMin + 1) // 94
	total := math.Pow(256, 7)
	count := 0.0
	for _, l := range []int{1, 2, 3, 4} {
		for t := 0; t < l; t++ {
			// chars before the NUL: 94^t; the NUL: 1; smuggled payload
			// bytes between t+1 and l-1: 256^(l-1-t); bytes beyond l: 0.
			count += 8 * math.Pow(charset, float64(t)) * math.Pow(256, float64(l-1-t))
		}
	}
	return count / total
}

// RunFuzzComparison measures fuzzing throughput and Trojan yield on the FSP
// server model and contrasts it with Achilles; generator, oracle and class
// bucketing come from the registry descriptor.
func RunFuzzComparison(tests int) (*FuzzComparison, error) {
	d := registry.MustLookup("fsp")
	res, err := d.FuzzCampaign(tests, 1)
	if err != nil {
		return nil, err
	}
	run, err := d.Run(core.ModeOptimized, 0)
	if err != nil {
		return nil, err
	}
	density := TrojanDensity()
	return &FuzzComparison{
		Tests:            res.Tests,
		Accepted:         res.Accepted,
		Trojans:          res.Trojans,
		DistinctClasses:  res.Distinct,
		TestsPerMin:      res.TestsPerMin,
		TrojanDensity:    density,
		ExpectedPerHour:  fuzz.ExpectedTrojansPerHour(res.TestsPerMin, density),
		AchillesTotal:    run.Total(),
		AchillesTrojans:  len(run.Analysis.Trojans),
		FuzzFalsePosRate: float64(res.Accepted-res.Trojans) / float64(res.Tests),
	}, nil
}

// Render prints the comparison.
func (f *FuzzComparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fuzzing comparison (FSP, %d random tests over the analysed fields)\n", f.Tests)
	fmt.Fprintf(&b, "  fuzz throughput:        %.0f tests/min\n", f.TestsPerMin)
	fmt.Fprintf(&b, "  fuzz accepted:          %d (%d non-Trojan)\n", f.Accepted, f.Accepted-f.Trojans)
	fmt.Fprintf(&b, "  fuzz Trojans hit:       %d (%d distinct classes of 80)\n", f.Trojans, f.DistinctClasses)
	fmt.Fprintf(&b, "  Trojan density:         %.3g\n", f.TrojanDensity)
	fmt.Fprintf(&b, "  expected Trojans/hour:  %.4f\n", f.ExpectedPerHour)
	fmt.Fprintf(&b, "  Achilles: all %d classes in %s\n", f.AchillesTrojans, f.AchillesTotal.Round(time.Millisecond))
	return b.String()
}

// PhaseSplit is the §6.2 timing decomposition.
type PhaseSplit struct {
	ClientExtract time.Duration
	Preprocess    time.Duration
	Server        time.Duration
}

// RunPhaseSplit measures the three Achilles phases on FSP (the paper: 3 min
// gathering, 15 min preprocessing, 45 min server analysis — shape: client
// extraction is the cheap phase, server analysis dominates).
func RunPhaseSplit() (*PhaseSplit, error) {
	run, err := registry.MustLookup("fsp").Run(core.ModeOptimized, 0)
	if err != nil {
		return nil, err
	}
	return &PhaseSplit{
		ClientExtract: run.ClientExtractTime,
		Preprocess:    run.PreprocessTime,
		Server:        run.ServerTime,
	}, nil
}

// Render prints the split.
func (p *PhaseSplit) Render() string {
	var b strings.Builder
	total := p.ClientExtract + p.Preprocess + p.Server
	fmt.Fprintf(&b, "Phase split (FSP analysis, total %s)\n", total.Round(time.Millisecond))
	fmt.Fprintf(&b, "  gather client predicate: %10s (%4.1f%%)\n", p.ClientExtract.Round(time.Millisecond), pct(p.ClientExtract, total))
	fmt.Fprintf(&b, "  preprocess predicate:    %10s (%4.1f%%)\n", p.Preprocess.Round(time.Millisecond), pct(p.Preprocess, total))
	fmt.Fprintf(&b, "  analyze server:          %10s (%4.1f%%)\n", p.Server.Round(time.Millisecond), pct(p.Server, total))
	return b.String()
}

func pct(d, total time.Duration) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(d) / float64(total)
}

// Ablation is the §6.4 optimisation study.
type Ablation struct {
	Optimized       time.Duration
	NoDifferentFrom time.Duration
	APosteriori     time.Duration
	TrojansPerMode  [3]int
	SolverQueries   [3]int
}

// RunAblation compares full Achilles against the variant without the
// differentFrom bulk drop and against a-posteriori constraint differencing
// (the paper's 1h03 vs 2h15 comparison).
func RunAblation() (*Ablation, error) {
	out := &Ablation{}
	modes := []core.Mode{core.ModeOptimized, core.ModeNoDifferentFrom, core.ModeAPosteriori}
	for i, mode := range modes {
		run, err := registry.MustLookup("fsp").Run(mode, 0)
		if err != nil {
			return nil, err
		}
		d := run.Total()
		switch mode {
		case core.ModeOptimized:
			out.Optimized = d
		case core.ModeNoDifferentFrom:
			out.NoDifferentFrom = d
		case core.ModeAPosteriori:
			out.APosteriori = d
		}
		out.TrojansPerMode[i] = len(run.Analysis.Trojans)
		out.SolverQueries[i] = run.Analysis.SolverStats.Queries
	}
	return out, nil
}

// Render prints the ablation rows.
func (a *Ablation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (§6.4): optimisation impact on the FSP analysis\n")
	fmt.Fprintf(&b, "  %-22s %12s %10s %14s\n", "mode", "time", "trojans", "solver queries")
	fmt.Fprintf(&b, "  %-22s %12s %10d %14d\n", "optimized", a.Optimized.Round(time.Millisecond), a.TrojansPerMode[0], a.SolverQueries[0])
	fmt.Fprintf(&b, "  %-22s %12s %10d %14d\n", "no differentFrom", a.NoDifferentFrom.Round(time.Millisecond), a.TrojansPerMode[1], a.SolverQueries[1])
	fmt.Fprintf(&b, "  %-22s %12s %10d %14d\n", "a-posteriori", a.APosteriori.Round(time.Millisecond), a.TrojansPerMode[2], a.SolverQueries[2])
	return b.String()
}

// PBFTAnalysis is the §6.2 PBFT experiment.
type PBFTAnalysis struct {
	Trojans        int
	AcceptingPaths int
	Total          time.Duration
	SingleClass    bool
}

// RunPBFTAnalysis reproduces the PBFT result: a single Trojan type (the MAC
// attack), discovered in seconds, bundled with valid messages on every
// accepting path.
func RunPBFTAnalysis() (*PBFTAnalysis, error) {
	run, err := registry.MustLookup("pbft").Run(core.ModeOptimized, 0)
	if err != nil {
		return nil, err
	}
	out := &PBFTAnalysis{
		Trojans:        len(run.Analysis.Trojans),
		AcceptingPaths: run.Analysis.AcceptingStates,
		Total:          run.Total(),
	}
	out.SingleClass = true
	for _, tr := range run.Analysis.Trojans {
		if tr.Concrete[pbft.FieldMAC] == pbft.AuthConst {
			out.SingleClass = false
		}
	}
	return out, nil
}

// Render prints the summary.
func (p *PBFTAnalysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PBFT analysis (§6.2): %d Trojan report(s) on %d accepting paths in %s\n",
		p.Trojans, p.AcceptingPaths, p.Total.Round(time.Millisecond))
	fmt.Fprintf(&b, "  single Trojan type (corrupted authenticator): %v\n", p.SingleClass)
	return b.String()
}

// MACImpact is the §6.3 impact experiment.
type MACImpact struct {
	Rates      []int // attack period: every Nth request is Trojan (0 = none)
	Goodput    []float64
	Recoveries []int
}

// RunMACImpact measures correct-client goodput under increasing MAC-attack
// intensity on the concrete PBFT cluster.
func RunMACImpact(total int) *MACImpact {
	out := &MACImpact{}
	for _, every := range []int{0, 100, 20, 10, 5, 2} {
		m := pbft.NewCluster(1, 4).AttackWorkload(total, every)
		out.Rates = append(out.Rates, every)
		out.Goodput = append(out.Goodput, m.Goodput())
		out.Recoveries = append(out.Recoveries, m.Recoveries)
	}
	return out
}

// Render prints the series.
func (m *MACImpact) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PBFT MAC-attack impact (§6.3): goodput vs Trojan injection rate\n")
	fmt.Fprintf(&b, "  %-14s %12s %12s\n", "attack rate", "goodput", "recoveries")
	for i, every := range m.Rates {
		rate := "none"
		if every > 0 {
			rate = fmt.Sprintf("1/%d", every)
		}
		fmt.Fprintf(&b, "  %-14s %12.2f %12d\n", rate, m.Goodput[i], m.Recoveries[i])
	}
	return b.String()
}

// WildcardSummary is the §6.3 FSP wildcard experiment.
type WildcardSummary struct {
	TotalTrojans    int
	LengthClasses   int
	WildcardClasses int
	Total           time.Duration
}

// RunWildcard runs the glob-aware FSP analysis.
func RunWildcard() (*WildcardSummary, error) {
	run, err := registry.MustLookup("fsp-glob").Run(core.ModeOptimized, 0)
	if err != nil {
		return nil, err
	}
	out := &WildcardSummary{TotalTrojans: len(run.Analysis.Trojans), Total: run.Total()}
	for _, tr := range run.Analysis.Trojans {
		if _, rep, act, _ := fsp.ClassOf(tr.Concrete); act < rep {
			out.LengthClasses++
		} else {
			out.WildcardClasses++
		}
	}
	return out, nil
}

// Render prints the summary.
func (w *WildcardSummary) Render() string {
	return fmt.Sprintf("FSP wildcard experiment (§6.3): %d Trojan classes (%d mismatched-length, %d wildcard) in %s\n",
		w.TotalTrojans, w.LengthClasses, w.WildcardClasses, w.Total.Round(time.Millisecond))
}

// SpeedupRow is one parallelism level of the scaling experiment.
type SpeedupRow struct {
	Jobs    int
	Total   time.Duration
	Server  time.Duration
	Classes int
	Speedup float64 // sequential total / this total
	// Solver holds the run's solver counters. At -j 1 the pipeline is
	// sequential and the counters are deterministic, which makes them the
	// guarded search-space metrics of the bench trajectory (benchjson.go).
	Solver solver.Stats
}

// Speedup is the parallel-vs-sequential scaling study. It goes beyond the
// paper: the original Achilles ran single-threaded under S2E, whereas this
// reproduction's pipeline — client extraction, predicate preprocessing and
// the server frontier — fans out over -j workers with a shared solver cache.
type Speedup struct {
	Rows []SpeedupRow
	CPUs int
}

// RunSpeedup measures the rich-corpus FSP analysis (256 client path
// predicates, the heaviest bundled workload) at each parallelism level and
// verifies that every level reports the identical Trojan class set. On a
// single-core host the rows degenerate to "no slower"; on multicore the
// server phase scales with the frontier workers.
func RunSpeedup(jobs []int) (*Speedup, error) {
	out := &Speedup{CPUs: runtime.NumCPU()}
	var baseline *core.RunResult
	var baselineClasses []string
	for _, j := range jobs {
		run, err := core.Run(fsp.NewRichTarget(false), core.AnalysisOptions{Parallelism: j})
		if err != nil {
			return nil, err
		}
		classes := make([]string, len(run.Analysis.Trojans))
		for i, tr := range run.Analysis.Trojans {
			classes[i] = fmt.Sprintf("%s@%v", tr.Witness, tr.Concrete)
		}
		sort.Strings(classes)
		if baseline == nil {
			baseline = run
			baselineClasses = classes
		} else if !slices.Equal(classes, baselineClasses) {
			return nil, fmt.Errorf("speedup: -j %d reported a different Trojan class set than -j %d", j, jobs[0])
		}
		row := SpeedupRow{
			Jobs:    j,
			Total:   run.Total(),
			Server:  run.ServerTime,
			Classes: len(run.Analysis.Trojans),
			Solver:  run.Analysis.SolverStats,
		}
		if run.Total() > 0 {
			row.Speedup = float64(baseline.Total()) / float64(run.Total())
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the scaling table.
func (s *Speedup) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel scaling (rich FSP corpus, %d CPUs): identical class set at every -j\n", s.CPUs)
	fmt.Fprintf(&b, "  %4s %12s %12s %8s %8s\n", "-j", "total", "server", "classes", "speedup")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "  %4d %12s %12s %8d %7.2fx\n",
			r.Jobs, r.Total.Round(time.Millisecond), r.Server.Round(time.Millisecond), r.Classes, r.Speedup)
	}
	return b.String()
}

// CampaignRow is one parallelism level of the fleet-campaign scaling table.
type CampaignRow struct {
	Jobs    int
	Wall    time.Duration
	Classes int
	Speedup float64 // budget-1 wall / this wall
}

// CampaignScaling is the fleet-audit wall-clock study: the whole registry
// catalog audited as one campaign (internal/campaign) at increasing global
// -j budgets. Unlike the per-target speedup table, the campaign overlaps
// cheap and expensive targets on the cross-target worker pool, so the fleet
// wall-clock tracks the most expensive job rather than the sum of all jobs.
type CampaignScaling struct {
	Rows    []CampaignRow
	Targets int
	CPUs    int
	// Solver holds the budget-1 campaign's manifest solver counters —
	// deterministic at budget 1, guarded by the bench trajectory.
	Solver campaign.Counters
}

// RunCampaignScaling audits every registered target at each budget and
// verifies that every level produces the identical diffable bundle (the
// campaign inherits the core determinism contract; it errors out
// otherwise).
func RunCampaignScaling(budgets []int) (*CampaignScaling, error) {
	out := &CampaignScaling{CPUs: runtime.NumCPU()}
	var baseline *campaign.Bundle
	var baseWall time.Duration
	for _, j := range budgets {
		b, err := campaign.Run(campaign.Options{Jobs: j})
		if err != nil {
			return nil, err
		}
		for _, rm := range b.Manifest.Runs {
			if rm.Error != "" {
				return nil, fmt.Errorf("experiments: campaign job %s: %s", rm.Key(), rm.Error)
			}
		}
		if baseline == nil {
			baseline = b
			out.Targets = len(b.Manifest.Runs)
			out.Solver = b.Manifest.Solver
		} else if d := campaign.Diff(baseline, b); !d.Empty() {
			return nil, fmt.Errorf("experiments: campaign at -j %d produced a different bundle than -j %d:\n%s",
				j, budgets[0], d.Render())
		}
		classes := 0
		for _, rm := range b.Manifest.Runs {
			classes += rm.Classes
		}
		row := CampaignRow{
			Jobs:    j,
			Wall:    time.Duration(b.Manifest.WallMS) * time.Millisecond,
			Classes: classes,
		}
		if baseWall == 0 {
			baseWall = row.Wall
		}
		if row.Wall > 0 {
			row.Speedup = float64(baseWall) / float64(row.Wall)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the fleet scaling table.
func (c *CampaignScaling) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet campaign scaling (%d targets, %d CPUs): identical bundle at every -j\n", c.Targets, c.CPUs)
	fmt.Fprintf(&b, "  %4s %12s %8s %8s\n", "-j", "wall", "classes", "speedup")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "  %4d %12s %8d %7.2fx\n", r.Jobs, r.Wall.Round(time.Millisecond), r.Classes, r.Speedup)
	}
	return b.String()
}

// IncrementalCampaign is the cold-vs-warm fleet audit study: the whole
// catalog audited three times — cold (fresh solver, no baseline), with only
// the persisted solver cache warm (a forced full re-run), and fully
// incremental (baseline reuse + warm cache). The incremental row is the
// paper's continuous-audit steady state: an unchanged fleet re-audits for
// the price of recomputing input fingerprints.
type IncrementalCampaign struct {
	Targets      int
	TotalJobs    int
	Jobs         int // the -j budget used for every run
	CacheEntries int // solver verdicts persisted between the runs

	ColdWall        time.Duration
	WarmCacheWall   time.Duration // full re-run, persisted solver cache loaded
	IncrementalWall time.Duration // baseline reuse + warm cache
	CachedJobs      int           // jobs reused verbatim in the incremental run
}

// RunIncrementalCampaign measures the three runs over targets (nil = whole
// catalog) and verifies every bundle is identical to the cold one — reuse
// must never change an answer. The solver cache round-trips through a real
// file, exactly as `achilles-audit run -cache` does.
func RunIncrementalCampaign(targets []string, jobs int) (*IncrementalCampaign, error) {
	opts := func(sol *solver.Solver) campaign.Options {
		return campaign.Options{Targets: targets, Jobs: jobs, Solver: sol}
	}
	coldSol := solver.Default()
	cold, err := campaign.Run(opts(coldSol))
	if err != nil {
		return nil, err
	}
	for _, rm := range cold.Manifest.Runs {
		if rm.Error != "" {
			return nil, fmt.Errorf("experiments: cold campaign job %s: %s", rm.Key(), rm.Error)
		}
	}
	dir, err := os.MkdirTemp("", "achilles-incremental-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cacheFile := filepath.Join(dir, "solver-cache.jsonl")
	if err := coldSol.SaveCache(cacheFile); err != nil {
		return nil, err
	}

	out := &IncrementalCampaign{
		Targets:   len(targets),
		TotalJobs: len(cold.Manifest.Runs),
		Jobs:      jobs,
		ColdWall:  time.Duration(cold.Manifest.WallMS) * time.Millisecond,
	}
	if targets == nil {
		out.Targets = len(cold.Manifest.Runs)
	}

	// Forced full re-run with only the solver cache warm.
	warmSol := solver.Default()
	if out.CacheEntries, err = warmSol.LoadCache(cacheFile); err != nil {
		return nil, err
	}
	warm, err := campaign.Run(opts(warmSol))
	if err != nil {
		return nil, err
	}
	if d := campaign.Diff(cold, warm); !d.Empty() {
		return nil, fmt.Errorf("experiments: warm-cache campaign changed the bundle:\n%s", d.Render())
	}
	out.WarmCacheWall = time.Duration(warm.Manifest.WallMS) * time.Millisecond

	// Fully incremental: baseline reuse + warm cache.
	incSol := solver.Default()
	if _, err := incSol.LoadCache(cacheFile); err != nil {
		return nil, err
	}
	incOpts := opts(incSol)
	incOpts.Baseline = cold
	inc, err := campaign.Run(incOpts)
	if err != nil {
		return nil, err
	}
	if d := campaign.Diff(cold, inc); !d.Empty() {
		return nil, fmt.Errorf("experiments: incremental campaign changed the bundle:\n%s", d.Render())
	}
	out.IncrementalWall = time.Duration(inc.Manifest.WallMS) * time.Millisecond
	out.CachedJobs = inc.Manifest.CachedJobs
	return out, nil
}

// Render prints the cold/warm table.
func (ic *IncrementalCampaign) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Incremental fleet audit (%d jobs, -j %d): identical bundle on every row\n",
		ic.TotalJobs, ic.Jobs)
	fmt.Fprintf(&b, "  %-28s %12s %10s %10s\n", "run", "wall", "jobs run", "of cold")
	row := func(name string, wall time.Duration, jobsRun int) {
		pctCold := 100.0
		if ic.ColdWall > 0 {
			pctCold = 100 * float64(wall) / float64(ic.ColdWall)
		}
		fmt.Fprintf(&b, "  %-28s %12s %10d %9.1f%%\n", name, wall.Round(time.Millisecond), jobsRun, pctCold)
	}
	row("cold", ic.ColdWall, ic.TotalJobs)
	row("warm solver cache", ic.WarmCacheWall, ic.TotalJobs)
	row("incremental (-baseline)", ic.IncrementalWall, ic.TotalJobs-ic.CachedJobs)
	fmt.Fprintf(&b, "  persisted solver verdicts: %d; jobs reused verbatim: %d/%d\n",
		ic.CacheEntries, ic.CachedJobs, ic.TotalJobs)
	return b.String()
}

// FuzzBaselineRow is the black-box fuzzing baseline for one registry target.
type FuzzBaselineRow struct {
	Target   string
	Tests    int
	Accepted int
	Trojans  int
	Distinct int
}

// FuzzBaselines is the registry-driven §6.2 fuzzing baseline.
type FuzzBaselines struct {
	Rows []FuzzBaselineRow
}

// RunFuzzBaselines runs each fuzzable registry target's black-box campaign
// (every target when name is "" or "all"). The per-target generator, oracle
// and pinned local state come from the descriptor.
func RunFuzzBaselines(name string, tests int) (*FuzzBaselines, error) {
	var descs []registry.Descriptor
	if name == "" || name == "all" {
		descs = registry.All()
	} else {
		d, ok := registry.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown target %q (registered: %s)",
				name, strings.Join(registry.Names(), ", "))
		}
		descs = []registry.Descriptor{d}
	}
	out := &FuzzBaselines{}
	for _, d := range descs {
		if d.Fuzz == nil {
			continue
		}
		res, err := d.FuzzCampaign(tests, 1)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, FuzzBaselineRow{
			Target:   d.Name,
			Tests:    res.Tests,
			Accepted: res.Accepted,
			Trojans:  res.Trojans,
			Distinct: res.Distinct,
		})
	}
	if len(out.Rows) == 0 {
		return nil, fmt.Errorf("experiments: target %q is not fuzzable", name)
	}
	return out, nil
}

// Render prints the baseline rows.
func (f *FuzzBaselines) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fuzzing baseline per registry target\n")
	fmt.Fprintf(&b, "  %-16s %10s %10s %10s %10s\n", "target", "tests", "accepted", "trojans", "classes")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "  %-16s %10d %10d %10d %10d\n", r.Target, r.Tests, r.Accepted, r.Trojans, r.Distinct)
	}
	return b.String()
}

// RegistrySweepRow is one target of the whole-registry analysis sweep.
type RegistrySweepRow struct {
	Name        string
	ClientPaths int
	Trojans     int
	Verified    int // reports passing both §4 verification checks
	Expected    bool
	OK          bool // Trojan presence matches the descriptor's expectation
	Total       time.Duration
}

// RegistrySweep runs the full analysis on every registered target — the
// "as many scenarios as you can imagine" table: one row per workload, all
// resolved from the registry, no per-protocol wiring.
type RegistrySweep struct {
	Rows        []RegistrySweepRow
	Parallelism int
}

// RunRegistrySweep analyses every registry target at the given parallelism.
func RunRegistrySweep(parallelism int) (*RegistrySweep, error) {
	out := &RegistrySweep{Parallelism: parallelism}
	for _, d := range registry.All() {
		run, err := d.Run(core.ModeOptimized, parallelism)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		row := RegistrySweepRow{
			Name:        d.Name,
			ClientPaths: len(run.Clients.Paths),
			Trojans:     len(run.Analysis.Trojans),
			Expected:    d.ExpectTrojans,
			Total:       run.Total(),
		}
		for _, tr := range run.Analysis.Trojans {
			if tr.VerifiedAccept && tr.VerifiedNotClient {
				row.Verified++
			}
		}
		row.OK = (row.Trojans > 0) == d.ExpectTrojans
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the sweep table.
func (s *RegistrySweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Registry sweep (-j %d): full analysis of every registered target\n", s.Parallelism)
	fmt.Fprintf(&b, "  %-16s %8s %8s %9s %9s %12s %4s\n",
		"target", "clients", "trojans", "verified", "expected", "total", "ok")
	for _, r := range s.Rows {
		expect := "none"
		if r.Expected {
			expect = "some"
		}
		fmt.Fprintf(&b, "  %-16s %8d %8d %9d %9s %12s %4v\n",
			r.Name, r.ClientPaths, r.Trojans, r.Verified, expect,
			r.Total.Round(time.Millisecond), r.OK)
	}
	return b.String()
}
