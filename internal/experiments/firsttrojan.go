package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"achilles"
	"achilles/internal/core"
	"achilles/internal/protocols/fsp"
	"achilles/internal/protocols/registry"
)

// FirstTrojanRow compares the full exploration of one vulnerable target
// against the WithFirstTrojan early exit.
type FirstTrojanRow struct {
	Target      string
	FullWall    time.Duration // complete analysis (all classes)
	FullClasses int
	FirstWall   time.Duration // session with WithFirstTrojan
	FirstFound  int           // classes the early exit still reported (>= 1)
	Speedup     float64       // FullWall / FirstWall
}

// FirstTrojan is the API v2 early-exit study: how much wall clock the
// first-trojan mode saves when the question is "is this target vulnerable at
// all?" rather than "what is the complete class set?". The win scales with
// how much fork tree remains beyond the first confirmed class, so deep
// targets (the rich FSP corpus) gain the most.
type FirstTrojan struct {
	Rows []FirstTrojanRow
	Jobs int
}

// RunFirstTrojan measures every vulnerable registry target plus the rich
// FSP corpus through the public Session API — the same code path embedders
// use — at the given parallelism.
func RunFirstTrojan(jobs int) (*FirstTrojan, error) {
	out := &FirstTrojan{Jobs: jobs}
	type workload struct {
		name string
		tgt  core.Target
		opts core.AnalysisOptions
	}
	var loads []workload
	for _, d := range registry.All() {
		if !d.ExpectTrojans {
			continue
		}
		loads = append(loads, workload{name: d.Name, tgt: d.Target(), opts: d.Analysis})
	}
	// The deep workload: 256 client path predicates over the full FSP
	// server, where the complete walk dwarfs the time to the first class.
	loads = append(loads, workload{name: "fsp-rich", tgt: fsp.NewRichTarget(false)})

	for _, w := range loads {
		row := FirstTrojanRow{Target: w.name}
		full, err := runSession(w.tgt, w.opts, jobs, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: first-trojan %s (full): %w", w.name, err)
		}
		row.FullWall = full.Total()
		row.FullClasses = len(full.Analysis.Trojans)
		if row.FullClasses == 0 {
			return nil, fmt.Errorf("experiments: first-trojan %s: no classes to find", w.name)
		}
		first, err := runSession(w.tgt, w.opts, jobs, true)
		if err != nil {
			return nil, fmt.Errorf("experiments: first-trojan %s (early exit): %w", w.name, err)
		}
		row.FirstWall = first.Total()
		row.FirstFound = len(first.Analysis.Trojans)
		if row.FirstFound == 0 {
			return nil, fmt.Errorf("experiments: first-trojan %s: early exit found nothing", w.name)
		}
		if !first.Truncated() {
			return nil, fmt.Errorf("experiments: first-trojan %s: early exit not marked truncated", w.name)
		}
		if row.FirstWall > 0 {
			row.Speedup = float64(row.FullWall) / float64(row.FirstWall)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// runSession drives one analysis through achilles.Start/Wait — the v2 API.
func runSession(tgt core.Target, base core.AnalysisOptions, jobs int, firstTrojan bool) (*core.RunResult, error) {
	opts := []achilles.Option{
		achilles.WithAnalysisOptions(base),
		achilles.WithParallelism(jobs),
	}
	if firstTrojan {
		opts = append(opts, achilles.WithFirstTrojan())
	}
	sess, err := achilles.Start(context.Background(), tgt, opts...)
	if err != nil {
		return nil, err
	}
	return sess.Wait()
}

// Render prints the early-exit table.
func (ft *FirstTrojan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "First-trojan early exit (-j %d): Session(WithFirstTrojan) vs full walk\n", ft.Jobs)
	fmt.Fprintf(&b, "  %-16s %12s %8s %12s %8s %8s\n", "target", "full", "classes", "first", "found", "speedup")
	for _, r := range ft.Rows {
		fmt.Fprintf(&b, "  %-16s %12s %8d %12s %8d %7.2fx\n",
			r.Target, r.FullWall.Round(time.Millisecond), r.FullClasses,
			r.FirstWall.Round(time.Millisecond), r.FirstFound, r.Speedup)
	}
	return b.String()
}
