// Package testutil holds small helpers shared by the repo's test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutineLeak snapshots the current goroutine count and registers a
// cleanup that fails the test if the count has not returned to the baseline
// by the time the test ends (polling for up to two seconds first, because
// cancelled workers unwind asynchronously).
//
// Call it before starting the work under test:
//
//	func TestCancelSomething(t *testing.T) {
//		testutil.CheckGoroutineLeak(t)
//		... start, cancel, assert ...
//	}
//
// It is the standing guard of every cancellation suite — session, engine,
// core and serve — that tearing down mid-flight analyses leaves no workers,
// watchers or event pumps behind.
func CheckGoroutineLeak(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if now := runtime.NumGoroutine(); now > before {
			t.Errorf("goroutine leak: %d before, %d after", before, now)
		}
	})
}
