// Package mutate generates buggy variants ("mutants") of NL protocol models
// and measures how many of them the Achilles analysis detects — mutation
// testing applied to the detector itself.
//
// The paper validates Achilles by planting known Trojan vulnerabilities and
// checking they are found (§4); that pins recall to a handful of hand-seeded
// bugs per target. The mutation engine turns recall into a measured,
// standing quantity: it takes a registered target's checked NL server model
// (lang.Unit.Source), applies a catalog of semantic mutation operators on
// the AST — weakened guards, dropped conjuncts, off-by-one bounds, dropped
// validation clauses, swapped accept/reject verdicts, negated guards,
// constant perturbation — and re-prints/re-compiles every candidate via the
// existing Print/parser round trip. Candidates that fail the type checker or
// whose canonical source is fingerprint-identical to the original (or to an
// earlier mutant) are skipped; every survivor is a type-checked, distinct
// buggy variant of the protocol.
//
// Each mutant becomes a campaign-local registry descriptor (Descriptor.
// Derive) and all mutants of all targets run as ONE incremental campaign
// (internal/campaign) so the input-fingerprint machinery makes repeated runs
// cheap and resumable. A mutant is then classified against the unmutated
// baseline job of the same campaign:
//
//   - detected: at least one new Trojan class appeared in the diff,
//   - equivalent: the class set is byte-identical (same IDs, fingerprints),
//   - escaped: the class set differs but no new class appeared — the
//     injected bug changed behaviour without surfacing as a Trojan,
//   - failed: the mutant's analysis errored (e.g. an out-of-range index the
//     mutation introduced).
//
// Recall is detected / (detected + escaped); every escaped mutation class is
// reported by operator — each one names a detector gap to work on.
package mutate

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"achilles/internal/lang"
)

// Version identifies the mutation engine revision recorded in recall
// reports. Bump it when the operator catalog or classification semantics
// change in a way that makes reports incomparable.
const Version = "achilles-mutate/1"

// Mutant is one generated buggy variant of an NL server model. Source is
// the canonical (lang.Print) mutated program; it compiles — Generate
// discards candidates the type checker rejects.
type Mutant struct {
	// ID is the stable mutant identity: operator name plus the site index
	// in the operator's deterministic enumeration order (e.g.
	// "swap-verdict-004"). IDs are stable across runs for an unchanged
	// original source, which is what makes mutant campaign jobs
	// fingerprint-reusable.
	ID       string
	Operator string
	// Site describes the edit, e.g. "(msg[1] != 0) -> !((msg[1] != 0))".
	Site string
	// Pos is the source position of the mutated node in the canonical
	// original source.
	Pos lang.Pos
	// Source is the canonical mutated NL source.
	Source string
	// Fingerprint is a short content hash of Source, used to deduplicate
	// mutants and to skip edits that round-trip to the original program.
	Fingerprint string
}

// Options configure mutant generation.
type Options struct {
	// Operators restricts generation to the named operators; nil or empty
	// means the full catalog. Unknown names are an error.
	Operators []string
	// Max caps the number of returned mutants; 0 means every surviving
	// site. The cap is applied round-robin across operators so a small
	// budget still samples the whole catalog instead of exhausting the
	// first operator's sites.
	Max int
}

// Stats counts what happened to the candidate edits of one generation.
type Stats struct {
	// Sites is the number of candidate edits enumerated across operators.
	Sites int
	// CompileFailed counts candidates the type checker rejected.
	CompileFailed int
	// Identical counts candidates whose canonical source equals the
	// original program — equivalent by construction.
	Identical int
	// Duplicate counts candidates that collided with an earlier mutant's
	// fingerprint (two operators producing the same edit).
	Duplicate int
	// Kept is the number of mutants returned (before the Max cap:
	// Kept - Capped are dropped by the round-robin selection).
	Kept int
	// Capped counts mutants dropped by Options.Max.
	Capped int
}

// OperatorNames returns the catalog's operator names in catalog order.
func OperatorNames() []string {
	out := make([]string, len(catalog))
	for i, op := range catalog {
		out[i] = op.name
	}
	return out
}

// Generate enumerates the mutation catalog over a checked unit's source and
// returns every type-checked, non-equivalent, deduplicated mutant, in
// deterministic order. The unit must retain its checked AST (Unit.Source);
// compiled units built by lang.Compile always do.
func Generate(u *lang.Unit, opts Options) ([]Mutant, Stats, error) {
	if u == nil || u.Source == nil {
		return nil, Stats{}, fmt.Errorf("mutate: unit has no retained source AST")
	}
	ops, err := selectOperators(opts.Operators)
	if err != nil {
		return nil, Stats{}, err
	}
	// Canonicalise first: all site enumeration happens on fresh parses of
	// the canonical text, so positions and site order are independent of
	// the original literal's formatting.
	canonical := lang.Print(u.Source)
	origFP := fingerprint(canonical)

	var stats Stats
	seen := map[string]bool{origFP: true}
	perOp := make([][]Mutant, len(ops))
	for oi, op := range ops {
		sites := collectSites(canonical, op)
		stats.Sites += len(sites)
		for si := range sites {
			// Re-parse per mutant: sites hold apply closures bound to one
			// AST, and each edit must start from a pristine tree.
			prog, err := lang.Parse(canonical)
			if err != nil {
				return nil, stats, fmt.Errorf("mutate: canonical source does not re-parse: %w", err)
			}
			fresh := op.collect(prog)
			if len(fresh) != len(sites) {
				return nil, stats, fmt.Errorf("mutate: %s enumerated %d sites, then %d — non-deterministic walk",
					op.name, len(sites), len(fresh))
			}
			fresh[si].apply()
			mutSrc := lang.Print(prog)
			fp := fingerprint(mutSrc)
			if fp == origFP {
				stats.Identical++
				continue
			}
			if seen[fp] {
				stats.Duplicate++
				continue
			}
			if _, err := lang.Compile(mutSrc); err != nil {
				stats.CompileFailed++
				continue
			}
			seen[fp] = true
			perOp[oi] = append(perOp[oi], Mutant{
				ID:          fmt.Sprintf("%s-%03d", op.name, si),
				Operator:    op.name,
				Site:        fresh[si].desc,
				Pos:         fresh[si].pos,
				Source:      mutSrc,
				Fingerprint: fp,
			})
		}
	}
	for _, ms := range perOp {
		stats.Kept += len(ms)
	}
	out := interleave(perOp, opts.Max)
	stats.Capped = stats.Kept - len(out)
	return out, stats, nil
}

// collectSites enumerates one operator's candidate edits on a fresh parse.
func collectSites(canonical string, op operator) []site {
	prog, err := lang.Parse(canonical)
	if err != nil {
		return nil
	}
	return op.collect(prog)
}

// interleave applies the Max cap round-robin across operators, preserving
// each operator's site order.
func interleave(perOp [][]Mutant, max int) []Mutant {
	total := 0
	for _, ms := range perOp {
		total += len(ms)
	}
	if max <= 0 || max > total {
		max = total
	}
	out := make([]Mutant, 0, max)
	for i := 0; len(out) < max; i++ {
		took := false
		for _, ms := range perOp {
			if i < len(ms) {
				out = append(out, ms[i])
				took = true
				if len(out) == max {
					break
				}
			}
		}
		if !took {
			break
		}
	}
	return out
}

// selectOperators resolves an operator-name filter against the catalog.
func selectOperators(names []string) ([]operator, error) {
	if len(names) == 0 {
		return catalog, nil
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []operator
	for _, op := range catalog {
		if want[op.name] {
			out = append(out, op)
			delete(want, op.name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("mutate: unknown operator(s) %v (catalog: %v)", unknown, OperatorNames())
	}
	return out, nil
}

// fingerprint is the short content hash identifying one canonical source.
func fingerprint(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:8])
}
