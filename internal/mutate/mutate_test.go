package mutate

import (
	"strings"
	"testing"

	"achilles/internal/lang"
	"achilles/internal/protocols/registry"

	_ "achilles/internal/protocols" // register targets
)

func serverUnit(t *testing.T, name string) *lang.Unit {
	t.Helper()
	d, ok := registry.Lookup(name)
	if !ok {
		t.Fatalf("target %q not registered", name)
	}
	return d.Target().Server
}

func TestGenerateProducesCheckedMutants(t *testing.T) {
	for _, target := range []string{"fsp", "kv", "raft"} {
		t.Run(target, func(t *testing.T) {
			u := serverUnit(t, target)
			muts, stats, err := Generate(u, Options{})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if len(muts) == 0 {
				t.Fatalf("no mutants generated (stats %+v)", stats)
			}
			if stats.Kept != len(muts) {
				t.Errorf("stats.Kept = %d, want %d", stats.Kept, len(muts))
			}
			orig := fingerprint(lang.Print(u.Source))
			seenFP := map[string]string{}
			seenID := map[string]bool{}
			for _, m := range muts {
				if m.Fingerprint == orig {
					t.Errorf("%s: mutant identical to original", m.ID)
				}
				if prev, dup := seenFP[m.Fingerprint]; dup {
					t.Errorf("%s: fingerprint collides with %s", m.ID, prev)
				}
				seenFP[m.Fingerprint] = m.ID
				if seenID[m.ID] {
					t.Errorf("duplicate mutant ID %s", m.ID)
				}
				seenID[m.ID] = true
				// Every kept mutant must compile: the engine's contract.
				if _, err := lang.Compile(m.Source); err != nil {
					t.Errorf("%s does not compile: %v", m.ID, err)
				}
			}
			t.Logf("%s: %d mutants from %d sites (%d identical, %d duplicate, %d compile-failed)",
				target, stats.Kept, stats.Sites, stats.Identical, stats.Duplicate, stats.CompileFailed)
		})
	}
}

// TestGenerateDeterministic pins the incremental-campaign prerequisite: the
// same unit yields the same mutants, in the same order, with the same IDs.
func TestGenerateDeterministic(t *testing.T) {
	u := serverUnit(t, "fsp")
	a, _, err := Generate(u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(serverUnit(t, "fsp"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Fingerprint != b[i].Fingerprint || a[i].Source != b[i].Source {
			t.Fatalf("mutant %d differs across runs: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
}

func TestGenerateMaxInterleavesOperators(t *testing.T) {
	u := serverUnit(t, "fsp")
	muts, stats, err := Generate(u, Options{Max: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) != 6 {
		t.Fatalf("got %d mutants, want 6", len(muts))
	}
	if stats.Capped <= 0 {
		t.Errorf("stats.Capped = %d, want > 0", stats.Capped)
	}
	ops := map[string]bool{}
	for _, m := range muts {
		ops[m.Operator] = true
	}
	// Round-robin sampling must keep operator diversity under a tight cap.
	if len(ops) < 3 {
		t.Errorf("cap 6 sampled only %d operator(s): %v", len(ops), ops)
	}
}

func TestGenerateOperatorFilter(t *testing.T) {
	u := serverUnit(t, "fsp")
	muts, _, err := Generate(u, Options{Operators: []string{"swap-verdict"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		if m.Operator != "swap-verdict" {
			t.Fatalf("operator filter leaked %s (%s)", m.Operator, m.ID)
		}
	}
	if len(muts) == 0 {
		t.Fatal("swap-verdict produced no mutants on fsp")
	}
}

func TestGenerateUnknownOperator(t *testing.T) {
	u := serverUnit(t, "fsp")
	_, _, err := Generate(u, Options{Operators: []string{"no-such-op"}})
	if err == nil || !strings.Contains(err.Error(), "no-such-op") {
		t.Fatalf("err = %v, want unknown-operator error naming no-such-op", err)
	}
}

func TestOperatorNames(t *testing.T) {
	names := OperatorNames()
	if len(names) < 7 {
		t.Fatalf("catalog has %d operators, want >= 7: %v", len(names), names)
	}
	for _, want := range []string{"weaken-eq", "drop-conjunct", "off-by-one", "negate-guard", "drop-validation", "swap-verdict", "const-perturb"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("catalog missing operator %q (have %v)", want, names)
		}
	}
}
