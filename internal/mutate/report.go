package mutate

import (
	"fmt"
	"sort"
	"strings"
)

// Outcome classifies what the detector did with one mutant.
type Outcome string

// Mutant classifications. Detected means at least one new Trojan class
// appeared relative to the unmutated baseline job; Equivalent means the
// class set is byte-identical; Escaped means the class set changed (classes
// disappeared or their examples moved) without any new class appearing —
// the injected bug did not surface as a Trojan; Failed means the mutant's
// analysis errored.
const (
	Detected   Outcome = "detected"
	Equivalent Outcome = "equivalent"
	Escaped    Outcome = "escaped"
	Failed     Outcome = "failed"
)

// Tally counts mutant outcomes. Recall is detected / (detected + escaped):
// equivalent mutants cannot be detected by any behavioural test and failed
// mutants yielded no verdict, so both are excluded from the denominator
// (standard mutation-score accounting).
type Tally struct {
	Generated  int     `json:"generated"`
	Detected   int     `json:"detected"`
	Equivalent int     `json:"equivalent"`
	Escaped    int     `json:"escaped"`
	Failed     int     `json:"failed"`
	Recall     float64 `json:"recall"`
}

func (t *Tally) add(o Outcome) {
	t.Generated++
	switch o {
	case Detected:
		t.Detected++
	case Equivalent:
		t.Equivalent++
	case Escaped:
		t.Escaped++
	case Failed:
		t.Failed++
	}
}

func (t *Tally) finish() {
	if n := t.Detected + t.Escaped; n > 0 {
		t.Recall = float64(t.Detected) / float64(n)
	} else {
		t.Recall = 1
	}
}

// OperatorTally is one operator's outcome counts.
type OperatorTally struct {
	Operator string `json:"operator"`
	Tally
}

// MutantOutcome is the per-mutant triage record: the classification plus
// the evidence behind it (diff counts, truncation, error), in the style of
// a findings report where every verdict carries its justification.
type MutantOutcome struct {
	ID       string  `json:"id"`
	Operator string  `json:"operator"`
	Site     string  `json:"site"`
	Outcome  Outcome `json:"outcome"`
	// Appeared / Disappeared / Changed are the class-level diff counts
	// against the unmutated baseline job.
	Appeared    int `json:"appeared,omitempty"`
	Disappeared int `json:"disappeared,omitempty"`
	Changed     int `json:"changed,omitempty"`
	// Truncated flags a mutant whose exploration hit the mutant budget
	// clamps; its classification is a lower bound (a new class may exist
	// beyond the cut).
	Truncated bool   `json:"truncated,omitempty"`
	Error     string `json:"error,omitempty"`
	WallMS    int64  `json:"wall_ms"`
}

// PrecisionReport triages the detector's findings on the UNMUTATED baseline
// target against the registry's ground-truth oracle: a finding is valid
// when the oracle confirms the concrete example is a Trojan in the job's
// state world. Score is valid/reported — the detector's precision on known
// ground truth.
type PrecisionReport struct {
	Reported int     `json:"reported"`
	Valid    int     `json:"valid"`
	Invalid  int     `json:"invalid"`
	Score    float64 `json:"score"`
	// InvalidClasses lists the class lines the oracle rejected — the
	// evidence for every invalid verdict (empty on a precise detector).
	InvalidClasses []string `json:"invalid_classes,omitempty"`
}

// TargetReport is the recall/precision result for one base target.
type TargetReport struct {
	Target string `json:"target"`
	// BaselineClasses is the unmutated target's Trojan class count.
	BaselineClasses int `json:"baseline_classes"`
	// SeededTrojans records whether the registry descriptor promises
	// hand-seeded vulnerabilities; SeededDetected whether the baseline run
	// actually found (oracle-validated) Trojans. SeededTrojans &&
	// !SeededDetected is a false negative on a known bug.
	SeededTrojans  bool             `json:"seeded_trojans"`
	SeededDetected bool             `json:"seeded_detected"`
	Precision      *PrecisionReport `json:"precision,omitempty"`
	Tally          Tally            `json:"tally"`
	Operators      []OperatorTally  `json:"operators"`
	Mutants        []MutantOutcome  `json:"mutants"`
}

// RecallReport is the machine-readable result of one mutation campaign —
// the standing recall/precision experiment.
type RecallReport struct {
	Version string         `json:"version"` // mutate.Version
	Mode    string         `json:"mode"`
	Jobs    int            `json:"jobs"`
	Targets []TargetReport `json:"targets"`
	Total   Tally          `json:"total"`
	// EscapedByOperator aggregates escaped mutants across targets — every
	// entry names a mutation class the detector misses today.
	EscapedByOperator []OperatorTally `json:"escaped_by_operator,omitempty"`
	// CachedJobs counts campaign jobs reused verbatim from the incremental
	// baseline bundle (provenance; 0 on a cold run).
	CachedJobs int   `json:"cached_jobs,omitempty"`
	WallMS     int64 `json:"wall_ms"`
}

// finish recomputes every aggregate from the per-mutant outcomes.
func (r *RecallReport) finish() {
	r.Total = Tally{}
	escaped := map[string]*OperatorTally{}
	for ti := range r.Targets {
		tr := &r.Targets[ti]
		tr.Tally = Tally{}
		ops := map[string]*OperatorTally{}
		var opOrder []string
		for _, m := range tr.Mutants {
			tr.Tally.add(m.Outcome)
			r.Total.add(m.Outcome)
			ot, ok := ops[m.Operator]
			if !ok {
				ot = &OperatorTally{Operator: m.Operator}
				ops[m.Operator] = ot
				opOrder = append(opOrder, m.Operator)
			}
			ot.add(m.Outcome)
			if m.Outcome == Escaped {
				et, ok := escaped[m.Operator]
				if !ok {
					et = &OperatorTally{Operator: m.Operator}
					escaped[m.Operator] = et
				}
				et.add(m.Outcome)
			}
		}
		tr.Tally.finish()
		tr.Operators = tr.Operators[:0]
		for _, name := range opOrder {
			ops[name].finish()
			tr.Operators = append(tr.Operators, *ops[name])
		}
	}
	r.Total.finish()
	r.EscapedByOperator = r.EscapedByOperator[:0]
	names := make([]string, 0, len(escaped))
	for n := range escaped {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		escaped[n].finish()
		r.EscapedByOperator = append(r.EscapedByOperator, *escaped[n])
	}
}

// FalseNegatives lists base targets whose hand-seeded ground-truth Trojans
// were NOT detected — empty on a healthy detector, and the condition CI
// gates on.
func (r *RecallReport) FalseNegatives() []string {
	var out []string
	for _, t := range r.Targets {
		if t.SeededTrojans && !t.SeededDetected {
			out = append(out, t.Target)
		}
	}
	return out
}

// Render prints the report as the standing experiment table plus the
// escaped-mutant detail — the rows EXPERIMENTS.md pins.
func (r *RecallReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mutation recall (mode %s, -j %d", r.Mode, r.Jobs)
	if r.CachedJobs > 0 {
		fmt.Fprintf(&b, ", %d job(s) cached", r.CachedJobs)
	}
	fmt.Fprintf(&b, ", %d ms)\n", r.WallMS)
	fmt.Fprintf(&b, "%-10s %9s %8s %10s %7s %6s %6s %9s %6s\n",
		"target", "generated", "detected", "equivalent", "escaped", "failed", "recall", "precision", "seeded")
	row := func(name string, t Tally, prec string, seeded string) {
		fmt.Fprintf(&b, "%-10s %9d %8d %10d %7d %6d %6.2f %9s %6s\n",
			name, t.Generated, t.Detected, t.Equivalent, t.Escaped, t.Failed, t.Recall, prec, seeded)
	}
	for _, t := range r.Targets {
		prec, seeded := "-", "-"
		if t.Precision != nil {
			prec = fmt.Sprintf("%.2f", t.Precision.Score)
		}
		if t.SeededTrojans {
			if t.SeededDetected {
				seeded = "found"
			} else {
				seeded = "MISSED"
			}
		}
		row(t.Target, t.Tally, prec, seeded)
	}
	row("total", r.Total, "-", "-")
	if len(r.EscapedByOperator) > 0 {
		b.WriteString("escaped mutation classes by operator:\n")
		for _, ot := range r.EscapedByOperator {
			fmt.Fprintf(&b, "  %-16s %d escaped\n", ot.Operator, ot.Escaped)
		}
		for _, t := range r.Targets {
			for _, m := range t.Mutants {
				if m.Outcome == Escaped {
					fmt.Fprintf(&b, "  %s/%s: %s (classes: +%d -%d ~%d)\n",
						t.Target, m.ID, m.Site, m.Appeared, m.Disappeared, m.Changed)
				}
			}
		}
	}
	return b.String()
}
