package mutate

import (
	"encoding/json"
	"strings"
	"testing"

	"achilles/internal/core"

	_ "achilles/internal/protocols" // register targets
)

// TestCampaignFSP runs a small real campaign (fsp + a handful of mutants)
// end to end and checks the classification invariants.
func TestCampaignFSP(t *testing.T) {
	res, err := Run(CampaignOptions{
		Targets:      []string{"fsp"},
		Mode:         core.ModeOptimized,
		Jobs:         2,
		MaxPerTarget: 6,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := res.Report
	if len(rep.Targets) != 1 || rep.Targets[0].Target != "fsp" {
		t.Fatalf("targets = %+v, want exactly fsp", rep.Targets)
	}
	tr := rep.Targets[0]
	if tr.Tally.Generated != 6 {
		t.Errorf("generated = %d, want 6", tr.Tally.Generated)
	}
	if !tr.SeededTrojans || !tr.SeededDetected {
		t.Errorf("fsp seeded trojans must be detected: seeded=%v detected=%v (baseline classes %d)",
			tr.SeededTrojans, tr.SeededDetected, tr.BaselineClasses)
	}
	if tr.BaselineClasses == 0 {
		t.Error("baseline run found no Trojan classes on seeded fsp")
	}
	if tr.Precision == nil {
		t.Fatal("fsp has an oracle; precision report missing")
	}
	if tr.Precision.Score != 1 {
		t.Errorf("precision on ground truth = %.2f, want 1.00 (invalid: %v)",
			tr.Precision.Score, tr.Precision.InvalidClasses)
	}
	for _, m := range tr.Mutants {
		switch m.Outcome {
		case Detected:
			if m.Appeared == 0 {
				t.Errorf("%s detected with no appeared classes", m.ID)
			}
		case Equivalent:
			if m.Appeared+m.Disappeared+m.Changed != 0 {
				t.Errorf("%s equivalent with diff counts +%d -%d ~%d", m.ID, m.Appeared, m.Disappeared, m.Changed)
			}
		case Escaped:
			if m.Appeared != 0 || m.Disappeared+m.Changed == 0 {
				t.Errorf("%s escaped with diff counts +%d -%d ~%d", m.ID, m.Appeared, m.Disappeared, m.Changed)
			}
		case Failed:
			if m.Error == "" {
				t.Errorf("%s failed without an error", m.ID)
			}
		default:
			t.Errorf("%s has unknown outcome %q", m.ID, m.Outcome)
		}
	}
	if rep.Total.Generated != 6 {
		t.Errorf("total generated = %d, want 6", rep.Total.Generated)
	}
	if fn := rep.FalseNegatives(); len(fn) != 0 {
		t.Errorf("false negatives on seeded targets: %v", fn)
	}
	// 1 base job + 6 mutant jobs, all in one bundle.
	if got := len(res.Bundle.Manifest.Runs); got != 7 {
		t.Errorf("campaign ran %d jobs, want 7", got)
	}
	if rep.Jobs != 2 {
		t.Errorf("report pins -j %d, want 2", rep.Jobs)
	}
	if !json.Valid(mustJSON(t, rep)) {
		t.Error("report does not marshal to valid JSON")
	}
	if out := rep.Render(); !strings.Contains(out, "fsp") || !strings.Contains(out, "recall") {
		t.Errorf("Render missing expected content:\n%s", out)
	}

	// Incremental re-run against the bundle we just produced: identical
	// inputs mean every job is reused verbatim and the verdicts stand.
	res2, err := Run(CampaignOptions{
		Targets:      []string{"fsp"},
		Mode:         core.ModeOptimized,
		Jobs:         2,
		MaxPerTarget: 6,
		Baseline:     res.Bundle,
		BaselineDir:  "test-baseline",
	})
	if err != nil {
		t.Fatalf("incremental Run: %v", err)
	}
	if res2.Report.CachedJobs != 7 {
		t.Errorf("incremental run cached %d/7 jobs", res2.Report.CachedJobs)
	}
	if got, want := res2.Report.Total, rep.Total; got != want {
		t.Errorf("incremental totals drifted: %+v vs %+v", got, want)
	}
}

func TestCampaignUnknownTarget(t *testing.T) {
	_, err := Run(CampaignOptions{Targets: []string{"no-such-target"}})
	if err == nil || !strings.Contains(err.Error(), "no-such-target") {
		t.Fatalf("err = %v, want unknown-target error", err)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}
