package mutate

import (
	"context"
	"fmt"
	"sort"

	"achilles/internal/campaign"
	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/protocols/registry"
	"achilles/internal/solver"
)

// DefaultTargets are the base registry targets a mutation campaign audits
// when none are named: the three seeded-vulnerability workloads spanning
// the catalog's protocol families.
var DefaultTargets = []string{"fsp", "kv", "raft"}

// Budget clamps applied to every mutant job's server exploration. A
// mutation can manufacture an unbounded loop or a state-space blow-up the
// original model never had; the clamps turn those into truncated or failed
// paths instead of a hung campaign. Values are far above what the unmutated
// seed targets need, so a clamp firing is itself evidence the mutant
// changed behaviour.
const (
	DefaultMaxStates = 1 << 15
	DefaultMaxSteps  = 1 << 13
)

// CampaignOptions configure one mutation-recall campaign.
type CampaignOptions struct {
	// Targets are base registry names (default DefaultTargets). Every
	// target must be registered.
	Targets []string
	// Mode is the analysis mode for every job (default ModeOptimized).
	Mode core.Mode
	// Jobs is the global parallelism budget across the whole campaign.
	Jobs int
	// MaxPerTarget caps generated mutants per target (0 = every site).
	MaxPerTarget int
	// Operators restricts the mutation catalog (nil = all).
	Operators []string
	// Baseline enables incremental reuse: campaign jobs (base and mutant
	// alike) whose input fingerprint matches a clean baseline entry are
	// reused verbatim. BaselineDir is recorded for provenance.
	Baseline    *campaign.Bundle
	BaselineDir string
	// MaxStates / MaxSteps override the mutant exploration clamps
	// (defaults DefaultMaxStates / DefaultMaxSteps).
	MaxStates int
	MaxSteps  int
	// Solver is the shared solver for every job; nil creates a default one
	// (see campaign.Options.Solver). Passing one lets drivers wire the
	// persistent verdict cache through a mutation campaign.
	Solver *solver.Solver
}

// Result is the outcome of one mutation-recall campaign: the audit bundle
// (base + mutant jobs, writable/diffable like any campaign bundle) and the
// classified recall report.
type Result struct {
	Bundle *campaign.Bundle
	Report *RecallReport
	// GenStats maps base target name to its mutant-generation statistics.
	GenStats map[string]Stats
}

// Run executes the mutation campaign; see RunCtx.
func Run(opts CampaignOptions) (*Result, error) {
	return RunCtx(context.Background(), opts)
}

// RunCtx generates mutants for every base target, runs base and mutant
// targets as ONE incremental campaign under a shared solver and the global
// Jobs budget, and classifies every mutant against its base job's class
// set. Cancellation aborts the underlying campaign; the error is returned
// after the partial bundle, mirroring campaign.RunCtx.
func RunCtx(ctx context.Context, opts CampaignOptions) (*Result, error) {
	bases := opts.Targets
	if len(bases) == 0 {
		bases = DefaultTargets
	}
	mode := opts.Mode
	maxStates, maxSteps := opts.MaxStates, opts.MaxSteps
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	type targetPlan struct {
		desc    registry.Descriptor
		mutants []Mutant
	}
	plans := make([]targetPlan, 0, len(bases))
	genStats := map[string]Stats{}
	var extra []registry.Descriptor
	names := make([]string, 0, len(bases))
	seen := map[string]bool{}
	for _, name := range bases {
		d, ok := registry.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("mutate: unknown target %q (registered: %v)", name, registry.Names())
		}
		if seen[d.Name] {
			continue
		}
		seen[d.Name] = true
		muts, stats, err := Generate(d.Target().Server, Options{
			Operators: opts.Operators,
			Max:       opts.MaxPerTarget,
		})
		if err != nil {
			return nil, fmt.Errorf("mutate: %s: %w", d.Name, err)
		}
		genStats[d.Name] = stats
		plans = append(plans, targetPlan{desc: d, mutants: muts})
		names = append(names, d.Name)
		for _, m := range muts {
			extra = append(extra, mutantDescriptor(d, m, maxStates, maxSteps))
			names = append(names, mutantName(d.Name, m))
		}
	}

	bundle, err := campaign.RunCtx(ctx, campaign.Options{
		Targets:     names,
		Modes:       []core.Mode{mode},
		Jobs:        opts.Jobs,
		Baseline:    opts.Baseline,
		BaselineDir: opts.BaselineDir,
		Solver:      opts.Solver,
		Extra:       extra,
	})
	if bundle == nil {
		return nil, err
	}

	rep := &RecallReport{
		Version:    Version,
		Mode:       mode.String(),
		Jobs:       bundle.Manifest.Jobs,
		CachedJobs: bundle.Manifest.CachedJobs,
		WallMS:     bundle.Manifest.WallMS,
	}
	entries := map[string]campaign.RunManifest{}
	for _, rm := range bundle.Manifest.Runs {
		entries[rm.Key()] = rm
	}
	for _, p := range plans {
		baseKey := p.desc.Name + "/" + mode.String()
		baseReports := bundle.Reports[baseKey]
		tr := TargetReport{
			Target:          p.desc.Name,
			BaselineClasses: len(baseReports),
			SeededTrojans:   p.desc.ExpectTrojans,
		}
		tr.Precision = triageBaseline(p.desc, baseReports)
		tr.SeededDetected = len(baseReports) > 0 &&
			(tr.Precision == nil || tr.Precision.Valid > 0)
		for _, m := range p.mutants {
			key := mutantName(p.desc.Name, m) + "/" + mode.String()
			tr.Mutants = append(tr.Mutants, classify(m, entries[key], baseReports, bundle.Reports[key]))
		}
		rep.Targets = append(rep.Targets, tr)
	}
	sort.Slice(rep.Targets, func(i, j int) bool { return rep.Targets[i].Target < rep.Targets[j].Target })
	rep.finish()
	return &Result{Bundle: bundle, Report: rep, GenStats: genStats}, err
}

// mutantName is the campaign-local target name of one mutant: base name
// plus mutant ID, stable across runs of an unchanged base model.
func mutantName(base string, m Mutant) string { return base + "+" + m.ID }

// mutantDescriptor derives the campaign-local descriptor analysing the
// mutated server in place of the original, with the exploration budget
// clamped (a mutation can unbound a loop the original model kept finite).
func mutantDescriptor(d registry.Descriptor, m Mutant, maxStates, maxSteps int) registry.Descriptor {
	name := mutantName(d.Name, m)
	summary := fmt.Sprintf("mutant of %s: %s at %s (%s)", d.Name, m.Site, m.Pos, m.Operator)
	src := m.Source
	return d.Derive(name, summary, func(t core.Target) core.Target {
		// Compile per call: Target() promises a fresh unit so concurrent
		// fingerprinting and analysis never share mutable state.
		t.Server = lang.MustCompile(src)
		if t.ServerExec.MaxStates == 0 || t.ServerExec.MaxStates > maxStates {
			t.ServerExec.MaxStates = maxStates
		}
		if t.ServerExec.MaxSteps == 0 || t.ServerExec.MaxSteps > maxSteps {
			t.ServerExec.MaxSteps = maxSteps
		}
		return t
	})
}

// classify turns one mutant's campaign job into its triage record.
func classify(m Mutant, rm campaign.RunManifest, base, mut []campaign.Report) MutantOutcome {
	out := MutantOutcome{
		ID:        m.ID,
		Operator:  m.Operator,
		Site:      m.Site,
		Truncated: rm.Truncated,
		WallMS:    rm.WallMS,
	}
	if rm.Error != "" {
		out.Outcome = Failed
		out.Error = rm.Error
		return out
	}
	jd := campaign.DiffReports(rm.Key(), base, mut)
	out.Appeared = len(jd.Appeared)
	out.Disappeared = len(jd.Disappeared)
	out.Changed = len(jd.Changed)
	switch {
	case out.Appeared > 0:
		out.Outcome = Detected
	case jd.Empty():
		out.Outcome = Equivalent
	default:
		out.Outcome = Escaped
	}
	return out
}

// triageBaseline validates every baseline finding against the descriptor's
// ground-truth oracle (nil when the target has none): the precision side of
// the standing experiment. State worlds recorded in the report take
// precedence over the descriptor default, so local-state findings are
// judged in the world they were found in.
func triageBaseline(d registry.Descriptor, reports []campaign.Report) *PrecisionReport {
	if d.IsTrojan == nil {
		return nil
	}
	pr := &PrecisionReport{Reported: len(reports)}
	for _, r := range reports {
		var st registry.State
		if len(r.State) > 0 {
			st = registry.State(r.State)
		}
		if d.Trojan(r.Concrete, st) {
			pr.Valid++
		} else {
			pr.Invalid++
			pr.InvalidClasses = append(pr.InvalidClasses, r.Class)
		}
	}
	if pr.Reported > 0 {
		pr.Score = float64(pr.Valid) / float64(pr.Reported)
	} else {
		pr.Score = 1
	}
	return pr
}
