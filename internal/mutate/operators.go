package mutate

import (
	"fmt"

	"achilles/internal/lang"
)

// A site is one applicable edit of one operator: a description for reports
// and an apply closure bound to the AST it was enumerated on.
type site struct {
	desc  string
	pos   lang.Pos
	apply func()
}

// An operator enumerates every candidate edit of one semantic mutation
// class over a parsed program. collect must be deterministic: two calls on
// equal programs return the same sites in the same order (the engine
// re-enumerates on a fresh parse per mutant and applies the i-th site).
type operator struct {
	name    string
	summary string
	collect func(p *lang.Program) []site
}

// The mutation catalog. Order matters: it fixes operator precedence in the
// round-robin cap and the catalog listing in reports and docs.
var catalog = []operator{
	{
		name:    "weaken-eq",
		summary: "equality guards relaxed to one-sided bounds (== to >= / <=)",
		collect: weakenEq,
	},
	{
		name:    "drop-conjunct",
		summary: "one operand of a && / || condition deleted",
		collect: dropConjunct,
	},
	{
		name:    "off-by-one",
		summary: "comparison strictness toggled (< to <=, >= to >, ...)",
		collect: offByOne,
	},
	{
		name:    "negate-guard",
		summary: "an if condition negated",
		collect: negateGuard,
	},
	{
		name:    "drop-validation",
		summary: "an if statement guarding only reject()/exit() deleted",
		collect: dropValidation,
	},
	{
		name:    "swap-verdict",
		summary: "accept() and reject() calls exchanged",
		collect: swapVerdict,
	},
	{
		name:    "const-perturb",
		summary: "an integer constant or literal shifted by +-1",
		collect: constPerturb,
	},
}

// weakenEq relaxes every == comparison to >= and to <= — the classic
// weakened-guard bug where a handler checks one side of an equality.
func weakenEq(p *lang.Program) []site {
	var sites []site
	lang.VisitExprs(p, func(slot *lang.Expr) {
		b, ok := (*slot).(*lang.BinaryExpr)
		if !ok || b.Op != lang.TEq {
			return
		}
		for _, to := range []lang.TokKind{lang.TGe, lang.TLe} {
			b, to := b, to
			sites = append(sites, site{
				desc:  fmt.Sprintf("%s -> (%s %s %s)", lang.ExprString(b), lang.ExprString(b.X), to, lang.ExprString(b.Y)),
				pos:   b.Pos_,
				apply: func() { b.Op = to },
			})
		}
	})
	return sites
}

// dropConjunct deletes one operand of every && and || — a validation
// condition that forgot half of what it must check.
func dropConjunct(p *lang.Program) []site {
	var sites []site
	lang.VisitExprs(p, func(slot *lang.Expr) {
		b, ok := (*slot).(*lang.BinaryExpr)
		if !ok || (b.Op != lang.TAnd && b.Op != lang.TOr) {
			return
		}
		for _, keep := range []struct {
			side string
			expr lang.Expr
		}{{"left", b.X}, {"right", b.Y}} {
			slot, keep := slot, keep
			sites = append(sites, site{
				desc:  fmt.Sprintf("%s -> %s (%s kept)", lang.ExprString(b), lang.ExprString(keep.expr), keep.side),
				pos:   b.Pos_,
				apply: func() { *slot = keep.expr },
			})
		}
	})
	return sites
}

// offByOne toggles the strictness of every ordering comparison: < <-> <=
// and > <-> >= — boundary checks off by exactly one.
func offByOne(p *lang.Program) []site {
	toggle := map[lang.TokKind]lang.TokKind{
		lang.TLt: lang.TLe, lang.TLe: lang.TLt,
		lang.TGt: lang.TGe, lang.TGe: lang.TGt,
	}
	var sites []site
	lang.VisitExprs(p, func(slot *lang.Expr) {
		b, ok := (*slot).(*lang.BinaryExpr)
		if !ok {
			return
		}
		to, ok := toggle[b.Op]
		if !ok {
			return
		}
		b, from := b, b.Op
		sites = append(sites, site{
			desc:  fmt.Sprintf("%s: %s -> %s", lang.ExprString(b), from, to),
			pos:   b.Pos_,
			apply: func() { b.Op = to },
		})
	})
	return sites
}

// negateGuard inverts every if condition — the guard that fires exactly
// when it should not.
func negateGuard(p *lang.Program) []site {
	var sites []site
	lang.VisitStmtLists(p, func(list *[]lang.Stmt) {
		for _, s := range *list {
			ifs, ok := s.(*lang.IfStmt)
			if !ok {
				continue
			}
			sites = append(sites, site{
				desc:  fmt.Sprintf("if %s -> if !(%s)", lang.ExprString(ifs.Cond), lang.ExprString(ifs.Cond)),
				pos:   ifs.Pos_,
				apply: func() { ifs.Cond = &lang.UnaryExpr{Pos_: ifs.Pos_, Op: lang.TNot, X: ifs.Cond} },
			})
		}
	})
	return sites
}

// dropValidation deletes every if statement (without else) whose body only
// rejects or exits — a validation clause that was never written.
func dropValidation(p *lang.Program) []site {
	var sites []site
	lang.VisitStmtLists(p, func(list *[]lang.Stmt) {
		for i, s := range *list {
			ifs, ok := s.(*lang.IfStmt)
			if !ok || ifs.Else != nil || len(ifs.Then) == 0 || !allTerminalRejects(ifs.Then) {
				continue
			}
			list, i := list, i
			sites = append(sites, site{
				desc: fmt.Sprintf("drop validation: if %s { ... }", lang.ExprString(ifs.Cond)),
				pos:  ifs.Pos_,
				apply: func() {
					rest := append([]lang.Stmt{}, (*list)[:i]...)
					*list = append(rest, (*list)[i+1:]...)
				},
			})
		}
	})
	return sites
}

// allTerminalRejects reports whether every statement is a reject() or
// exit() call — the body shape of a pure validation guard.
func allTerminalRejects(list []lang.Stmt) bool {
	for _, s := range list {
		es, ok := s.(*lang.ExprStmt)
		if !ok || (es.Call.Name != "reject" && es.Call.Name != "exit") {
			return false
		}
	}
	return true
}

// swapVerdict exchanges accept() and reject() calls — the branch that
// admits what it must refuse (and vice versa).
func swapVerdict(p *lang.Program) []site {
	var sites []site
	lang.VisitStmtLists(p, func(list *[]lang.Stmt) {
		for _, s := range *list {
			es, ok := s.(*lang.ExprStmt)
			if !ok {
				continue
			}
			var to string
			switch es.Call.Name {
			case "accept":
				to = "reject"
			case "reject":
				to = "accept"
			default:
				continue
			}
			call, from := es.Call, es.Call.Name
			sites = append(sites, site{
				desc:  fmt.Sprintf("%s() -> %s()", from, to),
				pos:   call.Pos_,
				apply: func() { call.Name = to },
			})
		}
	})
	return sites
}

// constPerturb shifts every named constant and integer literal by +-1 —
// wrong lengths, wrong command codes, wrong bounds.
func constPerturb(p *lang.Program) []site {
	var sites []site
	for _, c := range p.Consts {
		for _, d := range []int64{1, -1} {
			c, d := c, d
			sites = append(sites, site{
				desc:  fmt.Sprintf("const %s = %d -> %d", c.Name, c.Val, c.Val+d),
				pos:   c.Pos,
				apply: func() { c.Val += d },
			})
		}
	}
	lang.VisitExprs(p, func(slot *lang.Expr) {
		lit, ok := (*slot).(*lang.IntLit)
		if !ok {
			return
		}
		for _, d := range []int64{1, -1} {
			lit, d := lit, d
			sites = append(sites, site{
				desc:  fmt.Sprintf("literal %d -> %d", lit.Val, lit.Val+d),
				pos:   lit.Pos_,
				apply: func() { lit.Val += d },
			})
		}
	})
	return sites
}
