package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"achilles/internal/lang"
	"achilles/internal/testutil"
)

// deepTarget returns a target whose server phase explores 2^8 accepting
// paths, each yielding a Trojan class — wide enough that cancellation and
// first-trojan stops reliably strike mid-exploration.
func deepTarget(t *testing.T) Target {
	t.Helper()
	server := lang.MustCompile(`
var m [8]int;
var acc int;

func main() {
	recv(m);
	var i int = 0;
	acc = 0;
	while i < 8 {
		if m[i] > 0 { acc = acc + 1; }
		i = i + 1;
	}
	accept();
}`)
	client := lang.MustCompile(`
var m [8]int;

func main() {
	var i int = 0;
	while i < 8 {
		var x int = input();
		assume(x >= 0);
		assume(x < 4);
		m[i] = x;
		i = i + 1;
	}
	send(m);
}`)
	return Target{
		Name:    "deep",
		Server:  server,
		Clients: []ClientProgram{{Name: "c", Unit: client}},
	}
}

// classSet renders a run's Trojan classes as a set of canonical lines.
func classSet(run *RunResult) map[string]bool {
	out := map[string]bool{}
	for _, tr := range run.Analysis.Trojans {
		out[tr.ClassLine()] = true
	}
	return out
}

// TestRunCtxCancelMidFrontier cancels a -j 8 run from inside the server
// phase (the first progress tick) and checks the partial-result contract:
// RunCtx returns the partial result together with context.Canceled, the
// result is marked Truncated, every reported class belongs to the full run's
// class set, indices are contiguous, and no goroutines leak.
func TestRunCtxCancelMidFrontier(t *testing.T) {
	tgt := deepTarget(t)
	full, err := Run(tgt, AnalysisOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated() {
		t.Fatal("full run unexpectedly truncated")
	}
	if len(full.Analysis.Trojans) == 0 {
		t.Fatal("deep target found no trojans — test needs a vulnerable target")
	}
	fullClasses := classSet(full)

	testutil.CheckGoroutineLeak(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opts := AnalysisOptions{
		Parallelism:      8,
		ProgressInterval: time.Millisecond,
		Observer: Observer{
			// Cancel from inside the server phase, guaranteed mid-frontier.
			OnProgress: func(Progress) { once.Do(cancel) },
		},
	}
	partial, err := RunCtx(ctx, tgt, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("no partial result from a server-phase cancellation")
	}
	if !partial.Truncated() {
		t.Fatal("cancelled run not marked Truncated")
	}
	if !partial.Analysis.EngineStats.Cancelled {
		t.Fatalf("engine stats not marked Cancelled: %+v", partial.Analysis.EngineStats)
	}
	for i, tr := range partial.Analysis.Trojans {
		if tr.Index != i {
			t.Fatalf("partial indices not contiguous: report %d has Index %d", i, tr.Index)
		}
		if !fullClasses[tr.ClassLine()] {
			t.Fatalf("partial run reported class outside the full set: %s", tr.ClassLine())
		}
		if !tr.VerifiedNotClient {
			t.Fatalf("partial run kept an unverified report: %+v", tr)
		}
	}
}

// TestRunCtxCancelBeforeStart: a pre-cancelled context fails in phase 1 with
// (nil, ctx.Err()) — there is no usable partial predicate.
func TestRunCtxCancelBeforeStart(t *testing.T) {
	tgt := deepTarget(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run, err := RunCtx(ctx, tgt, AnalysisOptions{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if run != nil {
		t.Fatalf("got a result from a pre-cancelled run: %+v", run)
	}
}

// TestFirstTrojanEarlyExit: FirstTrojan stops the fan-out after the first
// confirmed report — truncated, no error, and every report is from the full
// class set.
func TestFirstTrojanEarlyExit(t *testing.T) {
	tgt := deepTarget(t)
	full, err := Run(tgt, AnalysisOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	fullClasses := classSet(full)

	run, err := RunCtx(context.Background(), tgt, AnalysisOptions{Parallelism: 8, FirstTrojan: true})
	if err != nil {
		t.Fatalf("first-trojan run errored: %v", err)
	}
	if got := len(run.Analysis.Trojans); got == 0 {
		t.Fatal("first-trojan run found nothing")
	}
	if !run.Truncated() {
		t.Fatal("first-trojan run not marked Truncated")
	}
	if len(run.Analysis.Trojans) >= len(full.Analysis.Trojans) {
		t.Fatalf("first-trojan run explored everything: %d reports vs %d full",
			len(run.Analysis.Trojans), len(full.Analysis.Trojans))
	}
	for _, tr := range run.Analysis.Trojans {
		if !fullClasses[tr.ClassLine()] {
			t.Fatalf("first-trojan report outside the full class set: %s", tr.ClassLine())
		}
	}
}

// TestObserverStreaming: phases arrive in pipeline order, OnTrojan fires
// once per final report, and the final progress snapshot carries the
// completed counters.
func TestObserverStreaming(t *testing.T) {
	tgt := deepTarget(t)
	var mu sync.Mutex
	var phases []string
	var streamed []TrojanReport
	var lastProgress atomic.Pointer[Progress]
	opts := AnalysisOptions{
		Parallelism:      4,
		ProgressInterval: time.Millisecond,
		Observer: Observer{
			OnPhase: func(p string) { mu.Lock(); phases = append(phases, p); mu.Unlock() },
			OnTrojan: func(tr TrojanReport) {
				mu.Lock()
				streamed = append(streamed, tr)
				mu.Unlock()
			},
			OnProgress: func(p Progress) { lastProgress.Store(&p) },
		},
	}
	run, err := RunCtx(context.Background(), tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantPhases := []string{PhaseExtract, PhasePreprocess, PhaseServer}
	if len(phases) != len(wantPhases) {
		t.Fatalf("phases = %v, want %v", phases, wantPhases)
	}
	for i, p := range wantPhases {
		if phases[i] != p {
			t.Fatalf("phases = %v, want %v", phases, wantPhases)
		}
	}
	if len(streamed) != len(run.Analysis.Trojans) {
		t.Fatalf("streamed %d trojans, final result has %d", len(streamed), len(run.Analysis.Trojans))
	}
	finalClasses := classSet(run)
	for _, tr := range streamed {
		if !finalClasses[tr.ClassLine()] {
			t.Fatalf("streamed class missing from final result: %s", tr.ClassLine())
		}
	}
	p := lastProgress.Load()
	if p == nil {
		t.Fatal("no progress emitted")
	}
	if p.Trojans != len(run.Analysis.Trojans) {
		t.Fatalf("final progress counts %d trojans, result has %d", p.Trojans, len(run.Analysis.Trojans))
	}
	if p.StatesExplored == 0 || p.FrontierDepth == 0 {
		t.Fatalf("final progress has empty counters: %+v", *p)
	}
}
