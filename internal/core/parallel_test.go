package core_test

import (
	"fmt"
	"sort"
	"testing"

	"achilles/internal/core"
	"achilles/internal/protocols/fsp"
	"achilles/internal/protocols/pbft"
)

// classSet renders the discovered Trojan classes in a canonical, order- and
// ID-independent form: sorted witness plus concrete example strings.
func classSet(t *testing.T, res *core.Result) []string {
	t.Helper()
	out := make([]string, 0, len(res.Trojans))
	for _, tr := range res.Trojans {
		out = append(out, fmt.Sprintf("%s @ %v", tr.Witness, tr.Concrete))
	}
	sort.Strings(out)
	return out
}

// TestParallelMatchesSequential asserts the ISSUE acceptance criterion: the
// parallel pipeline at -j 1, 2 and 8 reports exactly the Trojan class set of
// the sequential pipeline on the FSP and PBFT targets. Run under -race this
// also exercises the engine frontier, the analysis hooks and the shared
// solver cache for data races.
func TestParallelMatchesSequential(t *testing.T) {
	targets := []struct {
		name string
		mk   func() core.Target
	}{
		{"fsp", func() core.Target { return fsp.NewTarget(false) }},
		{"pbft", pbft.NewTarget},
	}
	for _, tgt := range targets {
		t.Run(tgt.name, func(t *testing.T) {
			seq, err := core.Run(tgt.mk(), core.AnalysisOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want := classSet(t, seq.Analysis)
			if len(want) == 0 {
				t.Fatal("sequential run found no Trojans; the comparison is vacuous")
			}
			for _, j := range []int{1, 2, 8} {
				j := j
				t.Run(fmt.Sprintf("j%d", j), func(t *testing.T) {
					par, err := core.Run(tgt.mk(), core.AnalysisOptions{Parallelism: j})
					if err != nil {
						t.Fatal(err)
					}
					got := classSet(t, par.Analysis)
					if len(got) != len(want) {
						t.Fatalf("j=%d found %d Trojan classes, sequential found %d", j, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("j=%d class %d:\n  got  %s\n  want %s", j, i, got[i], want[i])
						}
					}
					if par.Analysis.AcceptingStates != seq.Analysis.AcceptingStates {
						t.Fatalf("j=%d accepting states %d, sequential %d",
							j, par.Analysis.AcceptingStates, seq.Analysis.AcceptingStates)
					}
					// Every report must still carry the paper's §4 soundness
					// verdicts.
					for _, tr := range par.Analysis.Trojans {
						if !tr.VerifiedNotClient {
							t.Fatalf("j=%d trojan %d lost its non-client verification", j, tr.Index)
						}
					}
				})
			}
		})
	}
}

// TestParallelRunIsDeterministic asserts that two parallel runs at the same
// -j produce identical report sequences (order included), i.e. the trail
// merge is scheduling-independent.
func TestParallelRunIsDeterministic(t *testing.T) {
	render := func(res *core.Result) []string {
		var out []string
		for _, tr := range res.Trojans {
			out = append(out, fmt.Sprintf("#%d state=%d len=%d %v",
				tr.Index, tr.ServerStateID, tr.PathLen, tr.Concrete))
		}
		return out
	}
	a, err := core.Run(fsp.NewTarget(false), core.AnalysisOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(fsp.NewTarget(false), core.AnalysisOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := render(a.Analysis), render(b.Analysis)
	if len(ra) != len(rb) {
		t.Fatalf("report counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("report %d differs between identical parallel runs:\n  %s\n  %s", i, ra[i], rb[i])
		}
	}
}

// TestParallelAblationModes runs the parallel pipeline through the §6.4
// ablation modes and checks each one against its sequential twin.
func TestParallelAblationModes(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeOptimized, core.ModeNoDifferentFrom, core.ModeAPosteriori} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			seq, err := core.Run(fsp.NewTarget(false), core.AnalysisOptions{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			par, err := core.Run(fsp.NewTarget(false), core.AnalysisOptions{Mode: mode, Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			want, got := classSet(t, seq.Analysis), classSet(t, par.Analysis)
			if len(want) != len(got) {
				t.Fatalf("mode %v: parallel found %d classes, sequential %d", mode, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("mode %v: class %d differs:\n  got  %s\n  want %s", mode, i, got[i], want[i])
				}
			}
		})
	}
}

// TestParallelExtractionDeterministic asserts that concurrent client
// extraction merges paths in client order: IDs, origins and bind keys match
// the sequential extraction exactly.
func TestParallelExtractionDeterministic(t *testing.T) {
	tgt := fsp.NewRichTarget(false)
	mk := func(j int) *core.ClientPredicate {
		pc, err := core.ExtractClientPredicate(tgt.Clients, core.ExtractOptions{
			Exec:        tgt.ClientExec,
			FieldNames:  tgt.FieldNames,
			Mask:        tgt.Mask,
			SharedState: tgt.SharedState,
			Parallelism: j,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pc
	}
	seq := mk(1)
	par := mk(8)
	if len(seq.Paths) != len(par.Paths) {
		t.Fatalf("path counts differ: %d vs %d", len(seq.Paths), len(par.Paths))
	}
	for i := range seq.Paths {
		s, p := seq.Paths[i], par.Paths[i]
		if s.ID != p.ID || s.Origin != p.Origin || s.BindKey() != p.BindKey() {
			t.Fatalf("path %d differs: (%d %s) vs (%d %s)", i, s.ID, s.Origin, p.ID, p.Origin)
		}
		if s.Negation().String() != p.Negation().String() {
			t.Fatalf("path %d negation differs:\n  %s\n  %s", i, s.Negation(), p.Negation())
		}
	}
	if seq.PreprocessStats.Disjuncts != par.PreprocessStats.Disjuncts ||
		seq.PreprocessStats.OverlapDropped != par.PreprocessStats.OverlapDropped {
		t.Fatalf("preprocess stats differ: %+v vs %+v", seq.PreprocessStats, par.PreprocessStats)
	}
}
