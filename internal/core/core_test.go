package core_test

import (
	"testing"

	"achilles/internal/core"
	"achilles/internal/expr"
	"achilles/internal/lang"
	"achilles/internal/protocols/kv"
	"achilles/internal/solver"
	"achilles/internal/symexec"
)

func extractKV(t *testing.T) *core.ClientPredicate {
	t.Helper()
	tgt := kv.NewTarget()
	pc, err := core.ExtractClientPredicate(tgt.Clients, core.ExtractOptions{
		FieldNames: tgt.FieldNames,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func TestExtractKVClientPredicate(t *testing.T) {
	pc := extractKV(t)
	if len(pc.Paths) != 2 {
		t.Fatalf("client paths = %d, want 2 (READ and WRITE)", len(pc.Paths))
	}
	if pc.NumFields != kv.NumFields {
		t.Fatalf("fields = %d", pc.NumFields)
	}
	// Identify the READ path: request field is the constant 1.
	var read, write *core.ClientPath
	for _, p := range pc.Paths {
		if p.Fields[kv.FieldRequest].IsConst() && p.Fields[kv.FieldRequest].Val == kv.OpRead {
			read = p
		} else {
			write = p
		}
	}
	if read == nil || write == nil {
		t.Fatal("missing READ/WRITE client paths")
	}
	// The READ path zeroes the value field; the WRITE path sends symbolic
	// data there.
	if !read.Fields[kv.FieldValue].IsConst() || read.Fields[kv.FieldValue].Val != 0 {
		t.Errorf("READ value field = %s", read.Fields[kv.FieldValue])
	}
	if write.Fields[kv.FieldValue].IsConst() {
		t.Errorf("WRITE value field should be symbolic")
	}
	// Negations exist and exclude client-generatable messages: for each
	// path, bind ∧ negation must be unsat (the §4.1 invariant).
	s := solver.Default()
	for _, p := range pc.Paths {
		neg := p.Negation()
		if neg.IsFalse() {
			t.Fatalf("path %d: negation fully abandoned", p.ID)
		}
		q := append(append([]*expr.Expr{}, p.Bind()...), neg)
		if res, _ := s.Check(q); res != solver.Unsat {
			t.Errorf("path %d: negation overlaps its own predicate (%v)", p.ID, res)
		}
	}
}

func TestDifferentFromMatrixKV(t *testing.T) {
	pc := extractKV(t)
	var read, write int
	for i, p := range pc.Paths {
		if p.Fields[kv.FieldRequest].IsConst() && p.Fields[kv.FieldRequest].Val == kv.OpRead {
			read = i
		} else {
			write = i
		}
	}
	// The paper's example (§3.3): differentFrom[READ][WRITE][request] is
	// TRUE (READ's request value 1 is not WRITE's 2)...
	if got := pc.DifferentFrom(read, write, kv.FieldRequest); got != core.TriYes {
		t.Errorf("differentFrom[read][write][request] = %v, want Yes", got)
	}
	// ...while the address field admits the same values on both paths. In
	// this model the address feeds the CRC, so the field is not "simple"
	// and the matrix must stay Unknown (never a wrong No/Yes).
	if got := pc.DifferentFrom(read, write, kv.FieldAddress); got == core.TriYes {
		t.Errorf("differentFrom[read][write][address] = Yes, but value sets are equal")
	}
	// Reflexive entries are No by definition.
	if got := pc.DifferentFrom(read, read, kv.FieldRequest); got != core.TriNo {
		t.Errorf("differentFrom[i][i][f] = %v, want No", got)
	}
}

func TestAnalyzeKVFindsNegativeAddressTrojan(t *testing.T) {
	tgt := kv.NewTarget()
	run, err := core.Run(tgt, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := run.Analysis
	if len(res.Trojans) == 0 {
		t.Fatal("no Trojans found in the vulnerable KV server")
	}
	// The Trojan class must admit a negative address (the paper's bug).
	s := solver.Default()
	foundNegative := false
	for _, tr := range res.Trojans {
		if !tr.VerifiedAccept {
			t.Errorf("trojan %d: concrete example not accepted by the server", tr.Index)
		}
		if !tr.VerifiedNotClient {
			t.Errorf("trojan %d: concrete example generatable by a client", tr.Index)
		}
		q := []*expr.Expr{tr.Witness, expr.Lt(expr.Var("m2"), expr.Const(0))}
		if r, _ := s.Check(q); r == solver.Sat {
			foundNegative = true
		}
	}
	if !foundNegative {
		t.Error("no Trojan class admits a negative READ address")
	}
	// The WRITE accepting path must not be reported: its only
	// non-overlapping negation disjuncts are all excluded by the server
	// checks.
	for _, tr := range res.Trojans {
		isWrite := expr.Eq(expr.Var("m1"), expr.Const(kv.OpWrite))
		onlyWrite := append([]*expr.Expr{}, tr.ServerPath...)
		onlyWrite = append(onlyWrite, expr.Not(isWrite))
		if r, _ := s.Check(onlyWrite); r == solver.Unsat {
			t.Errorf("trojan %d reported on the WRITE-only path", tr.Index)
		}
	}
	// Timeline grows monotonically.
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Found != res.Timeline[i-1].Found+1 {
			t.Errorf("timeline not incremental: %+v", res.Timeline)
		}
	}
}

func TestAnalyzeFixedKVFindsNothing(t *testing.T) {
	tgt := kv.NewFixedTarget()
	run, err := core.Run(tgt, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(run.Analysis.Trojans); n != 0 {
		t.Fatalf("patched server reported %d Trojans: %+v", n, run.Analysis.Trojans)
	}
}

func TestModesAgreeOnKV(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeOptimized, core.ModeNoDifferentFrom, core.ModeAPosteriori} {
		t.Run(mode.String(), func(t *testing.T) {
			run, err := core.Run(kv.NewTarget(), core.AnalysisOptions{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if len(run.Analysis.Trojans) == 0 {
				t.Fatalf("mode %v found no Trojans", mode)
			}
			runF, err := core.Run(kv.NewFixedTarget(), core.AnalysisOptions{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if len(runF.Analysis.Trojans) != 0 {
				t.Fatalf("mode %v reported Trojans on the fixed server", mode)
			}
		})
	}
}

func TestMaskHidesField(t *testing.T) {
	// Masking the address field must suppress the negative-address Trojan
	// report (value and crc are the remaining candidates; value's negation
	// on READ is m3 != 0, which the server does not constrain, so Trojans
	// can still exist — mask value too to get a clean suppression).
	tgt := kv.NewTarget()
	tgt.Mask = []int{kv.FieldAddress, kv.FieldValue}
	run, err := core.Run(tgt, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := solver.Default()
	for _, tr := range run.Analysis.Trojans {
		// No remaining class may force a negative address.
		q := []*expr.Expr{tr.Witness, expr.Ge(expr.Var("m2"), expr.Const(0))}
		if r, _ := s.Check(q); r != solver.Sat {
			t.Errorf("masked analysis still reports an address-based Trojan")
		}
	}
}

func TestPruningReducesWork(t *testing.T) {
	optRun, err := core.Run(kv.NewFixedTarget(), core.AnalysisOptions{Mode: core.ModeOptimized})
	if err != nil {
		t.Fatal(err)
	}
	// On the fixed server every state should eventually be pruned (no
	// Trojans anywhere), so accepting states are never even reached.
	if optRun.Analysis.AcceptingStates != 0 {
		t.Errorf("optimized mode reached %d accepting states on the fixed server, want 0 (pruned earlier)",
			optRun.Analysis.AcceptingStates)
	}
	if optRun.Analysis.PrunedStates == 0 {
		t.Errorf("optimized mode pruned no states")
	}
}

func TestLiveTraceDecreases(t *testing.T) {
	run, err := core.Run(kv.NewTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trace := run.Analysis.LiveTrace
	if len(trace) == 0 {
		t.Fatal("no live trace recorded")
	}
	// Longer paths can never have more live client predicates than the
	// total, and the per-path live count is bounded by the client count.
	for _, p := range trace {
		if p.Live < 0 || p.Live > len(run.Clients.Paths) {
			t.Fatalf("bad live point %+v", p)
		}
	}
}

func TestPhaseTimingSplit(t *testing.T) {
	run, err := core.Run(kv.NewTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.ClientExtractTime <= 0 || run.PreprocessTime <= 0 || run.ServerTime <= 0 {
		t.Fatalf("phase timings not recorded: %+v", run)
	}
	if run.Total() < run.ServerTime {
		t.Fatal("total must include all phases")
	}
}

func TestNoClientMessagesError(t *testing.T) {
	u := lang.MustCompile(`func main() { exit(); }`)
	_, err := core.ExtractClientPredicate(
		[]core.ClientProgram{{Name: "silent", Unit: u}}, core.ExtractOptions{})
	if err == nil {
		t.Fatal("expected error for a client that sends nothing")
	}
}

func TestMismatchedFieldCounts(t *testing.T) {
	a := lang.MustCompile(`var m [2]int; func main() { send(m); }`)
	b := lang.MustCompile(`var m [3]int; func main() { send(m); }`)
	_, err := core.ExtractClientPredicate([]core.ClientProgram{
		{Name: "a", Unit: a}, {Name: "b", Unit: b},
	}, core.ExtractOptions{})
	if err == nil {
		t.Fatal("expected error for mismatched field counts")
	}
}

func TestDeduplication(t *testing.T) {
	// Two clients that send the identical constant message produce one path.
	src := `var m [2]int; func main() { m[0] = 1; m[1] = 2; send(m); }`
	pc, err := core.ExtractClientPredicate([]core.ClientProgram{
		{Name: "a", Unit: lang.MustCompile(src)},
		{Name: "b", Unit: lang.MustCompile(src)},
	}, core.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Paths) != 1 {
		t.Fatalf("paths = %d, want 1 after dedup", len(pc.Paths))
	}
	if pc.PreprocessStats.DedupedPaths != 1 {
		t.Fatalf("deduped = %d", pc.PreprocessStats.DedupedPaths)
	}
}

func TestFullyAbandonedNegationMeansNoTrojans(t *testing.T) {
	// A client that can send literally anything: no Trojans can exist.
	client := lang.MustCompile(`
var m [1]int;
func main() {
	m[0] = input();
	send(m);
}`)
	server := lang.MustCompile(`
var m [1]int;
func main() {
	recv(m);
	accept();
}`)
	run, err := core.Run(core.Target{
		Name:    "free",
		Server:  server,
		Clients: []core.ClientProgram{{Name: "free", Unit: client}},
	}, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Analysis.Trojans) != 0 {
		t.Fatalf("unconstrained client cannot leave room for Trojans, got %d", len(run.Analysis.Trojans))
	}
}

func TestWholePathTrojanWhenNoClientMatches(t *testing.T) {
	// The server accepts a message type no client ever sends: the whole
	// accepting path is Trojan (live set empty).
	client := lang.MustCompile(`
var m [2]int;
func main() {
	var x int = input();
	assume(x >= 0);
	assume(x < 10);
	m[0] = 1;
	m[1] = x;
	send(m);
}`)
	server := lang.MustCompile(`
var m [2]int;
func main() {
	recv(m);
	if m[0] == 1 {
		if m[1] < 0 { reject(); }
		if m[1] >= 10 { reject(); }
		accept();
	}
	if m[0] == 2 {
		// No client sends type 2: everything here is Trojan.
		accept();
	}
	reject();
}`)
	run, err := core.Run(core.Target{
		Name:    "ghost-type",
		Server:  server,
		Clients: []core.ClientProgram{{Name: "c", Unit: client}},
	}, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Analysis.Trojans) != 1 {
		t.Fatalf("trojans = %d, want exactly 1 (the type-2 path)", len(run.Analysis.Trojans))
	}
	tr := run.Analysis.Trojans[0]
	if tr.Concrete[0] != 2 {
		t.Fatalf("trojan example %v should have type 2", tr.Concrete)
	}
	if len(tr.LiveClients) != 0 {
		t.Fatalf("live clients on the ghost path: %v", tr.LiveClients)
	}
	if !tr.VerifiedAccept || !tr.VerifiedNotClient {
		t.Fatalf("verification flags: %+v", tr)
	}
}

func TestConcreteLocalStateMode(t *testing.T) {
	// §3.4: a Paxos-like acceptor in phase 2 with proposed value 7 must
	// treat any Accept message with value != 7 as Trojan. Concrete local
	// state is injected through GlobalConcrete.
	client := lang.MustCompile(`
var m [2]int;
var proposed int;
func main() {
	// The correct proposer sends Accept(value=proposed).
	m[0] = 2;
	m[1] = proposed;
	send(m);
}`)
	server := lang.MustCompile(`
var m [2]int;
var proposed int;
func main() {
	recv(m);
	if m[0] != 2 { reject(); }
	// Vulnerability: accepts any value, not just the proposed one.
	accept();
}`)
	tgt := core.Target{
		Name:       "paxos-phase2",
		Server:     server,
		Clients:    []core.ClientProgram{{Name: "proposer", Unit: client}},
		ServerExec: symexec.Options{GlobalConcrete: map[string]int64{"proposed": 7}},
		ClientExec: symexec.Options{GlobalConcrete: map[string]int64{"proposed": 7}},
	}
	run, err := core.Run(tgt, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Analysis.Trojans) != 1 {
		t.Fatalf("trojans = %d, want 1", len(run.Analysis.Trojans))
	}
	tr := run.Analysis.Trojans[0]
	if tr.Concrete[1] == 7 {
		t.Fatalf("trojan example %v must differ from the proposed value", tr.Concrete)
	}
}
