package core

import (
	"testing"

	"achilles/internal/expr"
)

func testReport() TrojanReport {
	return TrojanReport{
		Witness:           expr.Gt(expr.Var("m0"), expr.Const(4)),
		Concrete:          []int64{5, 0},
		StateEnv:          expr.Env{"state_round": 2, "state_ballot": 1},
		VerifiedAccept:    true,
		VerifiedNotClient: true,
	}
}

func TestClassLineFormat(t *testing.T) {
	r := testReport()
	want := "m0 > 4 @ [5 0] state{state_ballot=1 state_round=2} verified=true"
	if got := r.ClassLine(); got != want {
		t.Errorf("ClassLine = %q, want %q", got, want)
	}
	r.StateEnv = nil
	r.VerifiedAccept = false
	want = "m0 > 4 @ [5 0] verified=false"
	if got := r.ClassLine(); got != want {
		t.Errorf("ClassLine = %q, want %q", got, want)
	}
}

func TestClassIDIgnoresConcreteExample(t *testing.T) {
	a := testReport()
	b := testReport()
	b.Concrete = []int64{7, 0} // different solver model, same class
	if a.ClassID() != b.ClassID() {
		t.Errorf("ClassID differs across concrete examples: %q vs %q", a.ClassID(), b.ClassID())
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("Fingerprint did not change with the concrete example")
	}
}

func TestFingerprintStability(t *testing.T) {
	a := testReport()
	if a.Fingerprint() != testReport().Fingerprint() {
		t.Error("Fingerprint not deterministic")
	}
	if len(a.Fingerprint()) != 16 {
		t.Errorf("Fingerprint length %d, want 16 hex chars", len(a.Fingerprint()))
	}
	// Scheduling-derived fields must not influence the fingerprint.
	b := testReport()
	b.Index = 42
	b.ServerStateID = 99
	b.Elapsed = 1 << 30
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("Fingerprint depends on scheduling-derived fields")
	}
	// A verification flip must.
	b.VerifiedAccept = false
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("Fingerprint ignores the verification verdict")
	}
}

func TestCountersKeys(t *testing.T) {
	res := &Result{AcceptingStates: 3, BulkDrops: 7}
	res.Trojans = []TrojanReport{testReport()}
	c := res.Counters()
	for _, key := range []string{"accepting_states", "bulk_drops", "trojan_classes", "solver_queries", "engine_states"} {
		if _, ok := c[key]; !ok {
			t.Errorf("Counters missing key %q", key)
		}
	}
	if c["accepting_states"] != 3 || c["bulk_drops"] != 7 || c["trojan_classes"] != 1 {
		t.Errorf("Counters values wrong: %v", c)
	}
}

func TestParseMode(t *testing.T) {
	cases := map[string]Mode{
		"":                 ModeOptimized,
		"optimized":        ModeOptimized,
		"no-differentfrom": ModeNoDifferentFrom,
		"no-differentFrom": ModeNoDifferentFrom,
		"a-posteriori":     ModeAPosteriori,
	}
	for name, want := range cases {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
	// Round trip: every mode's String parses back to itself.
	for _, m := range []Mode{ModeOptimized, ModeNoDifferentFrom, ModeAPosteriori} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
}
