// Package core implements the Achilles algorithm from "Finding Trojan
// Message Vulnerabilities in Distributed Systems" (ASPLOS 2014).
//
// Phase 1 extracts the client predicate PC — the disjunction of client path
// predicates, one per execution path of a client that sends a message — by
// running the client models symbolically and capturing every send() together
// with its path constraints (§3.1).
//
// Phase 2 explores the server symbolically while incrementally searching for
// Trojan messages (§3.2, §3.3): every server state tracks the set of client
// path predicates that can still trigger it; branches drop dead client
// paths (helped by the precomputed differentFrom matrix); a state is pruned
// as soon as no Trojan message can reach it; states that reach accept()
// therefore contain Trojan messages by construction.
//
// The negate operator is the paper's under-approximation (§3.2): per-field
// negation with overlap elimination (§4.1), so reported Trojan classes never
// intersect the client predicate.
package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"achilles/internal/expr"
	"achilles/internal/lang"
	"achilles/internal/solver"
	"achilles/internal/symexec"
)

// FieldKind classifies a message field expression within one client path.
type FieldKind uint8

// Field classifications used by the negate operator (§3.2).
const (
	FieldConst FieldKind = iota // concrete value: negation is m_f != c (exact)
	FieldVar                    // pure symbolic input with own constraints
	FieldExpr                   // expression over symbolic inputs
	FieldFree                   // unconstrained: negation abandoned
	FieldState                  // shared symbolic local state: negation is m_f != state (exact)
)

// ClientPath is one client path predicate pathC_i: the message field
// expressions and the path constraints captured at a send().
type ClientPath struct {
	ID          int
	Origin      string       // which client program produced it
	Fields      []*expr.Expr // E_f(λ): field expressions over input vars
	Constraints []*expr.Expr // K(λ): path constraints

	// Precomputed artifacts (built by the predicate preprocessor):
	fieldKind []FieldKind
	// bind: m_f == E'_f for every field plus K', with input vars renamed
	// c{ID}_*; satisfiable together with a server path iff a message on that
	// server path is generatable by this client path.
	bind []*expr.Expr
	// negDisjuncts[f] is the negation disjunct for field f over the server
	// message vars (nil when abandoned). Their disjunction is negate(pathC).
	negDisjuncts []*expr.Expr
	// simpleField[f] reports that field f is "independent" in the paper's
	// sense: a constant or a pure input var whose constraints mention only
	// that var, enabling differentFrom reasoning.
	simpleField []bool
	// bindKey is a canonical signature of the path's *message-relevant*
	// predicate: the field expressions plus the constraints transitively
	// connected to them, with input variables renamed in encounter order.
	// Paths with equal bindKeys admit exactly the same messages (they
	// differ only in local-only behaviour such as flag handling), so one
	// satisfiability verdict against a server path serves the whole group.
	bindKey string
}

// BindKey exposes the canonical message-relevant signature.
func (cp *ClientPath) BindKey() string { return cp.bindKey }

// Bind returns the cached binding constraints (message equality plus client
// path constraints, alpha-renamed). The slice must not be modified.
func (cp *ClientPath) Bind() []*expr.Expr { return cp.bind }

// Negation returns negate(pathC) as a single disjunction over the server
// message variables, skipping abandoned fields (nil disjuncts). An empty
// disjunction (false) means the negation was abandoned for every field: no
// message can be proven non-generatable.
func (cp *ClientPath) Negation() *expr.Expr {
	out := expr.False()
	for _, d := range cp.negDisjuncts {
		if d != nil {
			out = expr.Or(out, d)
		}
	}
	return out
}

// Tri is a three-valued truth value used by the differentFrom matrix.
type Tri uint8

// Tri values.
const (
	TriUnknown Tri = iota
	TriYes
	TriNo
)

// ClientPredicate is PC: all client path predicates plus the precomputed
// structures from §3.3.
type ClientPredicate struct {
	Paths     []*ClientPath
	NumFields int
	// FieldNames optionally names message fields for reports.
	FieldNames []string
	// MsgPrefix is the server message variable prefix ("m": fields are
	// m0, m1, ...).
	MsgPrefix string
	// differentFrom[i][j][f] = TriYes when path i can place a value in
	// field f that path j cannot; TriNo when provably not (field-f values
	// of i are a subset of j's); TriUnknown otherwise.
	differentFrom [][][]Tri

	// Masked fields are hidden from the analysis (§5.2): no negation
	// disjuncts are built for them.
	masked []bool

	// sharedVars are symbolic variables shared between client and server
	// runs (the Constructed Symbolic Local State mode, §3.4): they are
	// exempt from alpha-renaming so that both sides refer to the same
	// world. The engine names symbolic globals "state_*", which are shared
	// by default.
	sharedVars map[string]bool

	// PreprocessStats records the work done by Preprocess.
	PreprocessStats PreprocessStats

	// Truncated reports that at least one client exploration hit its
	// MaxStates budget: the predicate under-approximates what clients can
	// send, so "no client generates it" verdicts built on it are suspect.
	Truncated bool
}

// PreprocessStats summarises predicate preprocessing.
type PreprocessStats struct {
	RawPaths       int // paths captured before deduplication
	DedupedPaths   int // paths dropped as duplicates
	Disjuncts      int // negation disjuncts kept
	OverlapDropped int // disjuncts discarded by the §4.1 overlap check
	DiffFromYes    int
	DiffFromNo     int
	DiffFromUnk    int
	SolverQueries  int
}

// DifferentFrom exposes the matrix for tests and tooling.
func (pc *ClientPredicate) DifferentFrom(i, j, f int) Tri {
	return pc.differentFrom[i][j][f]
}

// Masked reports whether field f is hidden from the analysis.
func (pc *ClientPredicate) Masked(f int) bool {
	return f < len(pc.masked) && pc.masked[f]
}

// ExtractOptions configure client predicate extraction.
type ExtractOptions struct {
	// Exec is passed to the symbolic engine for each client run.
	Exec symexec.Options
	// FieldNames names the message fields (optional, for reports).
	FieldNames []string
	// Mask lists field indices to hide from the analysis (§5.2).
	Mask []int
	// SkipPreprocess leaves bind/negation/differentFrom uncomputed; used by
	// tooling that only wants the raw paths.
	SkipPreprocess bool
	// SharedState lists extra variable names shared between client and
	// server runs (§3.4). Variables prefixed "state_" are always shared.
	SharedState []string
	// Solver used during preprocessing; defaults to solver.Default().
	Solver *solver.Solver
	// Parallelism is the number of extraction workers: client programs run
	// concurrently (one goroutine per client, results merged in client
	// order, so path IDs are deterministic) and preprocessing fans the
	// per-path work out over the same number of workers. Values <= 1 keep
	// the sequential pipeline.
	Parallelism int
}

// ClientProgram pairs a compiled client with a name for reports.
type ClientProgram struct {
	Name string
	Unit *lang.Unit
}

// ExtractClientPredicate runs every client program symbolically, captures
// all sent messages as client path predicates, deduplicates them and runs
// the §3.3 preprocessing.
func ExtractClientPredicate(clients []ClientProgram, opts ExtractOptions) (*ClientPredicate, error) {
	return ExtractClientPredicateCtx(context.Background(), clients, opts)
}

// ExtractClientPredicateCtx is ExtractClientPredicate under a context. A
// cancelled extraction returns (nil, ctx.Err()): a partially-captured client
// predicate under-approximates PC in a way no downstream consumer can
// compensate for, so there is no useful partial result to hand back.
func ExtractClientPredicateCtx(ctx context.Context, clients []ClientProgram, opts ExtractOptions) (*ClientPredicate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pc := &ClientPredicate{
		FieldNames: opts.FieldNames,
		MsgPrefix:  "m",
		sharedVars: map[string]bool{},
	}
	for _, v := range opts.SharedState {
		pc.sharedVars[v] = true
	}
	if opts.Solver == nil {
		opts.Solver = solver.Default()
	}
	// Run every client model symbolically — concurrently when Parallelism
	// allows. Results land in a per-client slot and are merged below in
	// client order, so path IDs (and everything derived from them) are
	// identical whatever the worker count. The -j budget is split between
	// concurrently running clients and their engines' frontiers so a -j N
	// extraction runs ~N solver-bound goroutines rather than clients×N
	// (per-run results do not depend on the engine's worker count, so the
	// split is determinism-neutral).
	results := make([]*symexec.Result, len(clients))
	errs := make([]error, len(clients))
	concurrent := opts.Parallelism > 1 && len(clients) > 1
	execOpts := opts.Exec
	slots := opts.Parallelism
	if slots > len(clients) {
		slots = len(clients)
	}
	if execOpts.Parallelism == 0 {
		execOpts.Parallelism = opts.Parallelism
		if concurrent {
			execOpts.Parallelism = opts.Parallelism / slots
		}
	}
	parallelFor(slots, len(clients), func(i int) {
		results[i], errs[i] = symexec.RunCtx(ctx, clients[i].Unit, execOpts)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	raw := 0
	for ci, cl := range clients {
		if errs[ci] != nil {
			return nil, fmt.Errorf("core: client %s: %w", cl.Name, errs[ci])
		}
		res := results[ci]
		if res.Stats.Truncated {
			pc.Truncated = true
		}
		for _, st := range res.States {
			if st.Status == symexec.StatusError {
				return nil, fmt.Errorf("core: client %s: path error: %v", cl.Name, st.Err)
			}
			for _, sent := range st.Sent {
				raw++
				key := sentKey(sent)
				if seen[key] {
					continue
				}
				seen[key] = true
				cp := &ClientPath{
					ID:          len(pc.Paths),
					Origin:      cl.Name,
					Fields:      sent.Fields,
					Constraints: sent.Path,
				}
				if pc.NumFields == 0 {
					pc.NumFields = len(sent.Fields)
				} else if pc.NumFields != len(sent.Fields) {
					return nil, fmt.Errorf("core: client %s sends %d fields, others send %d",
						cl.Name, len(sent.Fields), pc.NumFields)
				}
				pc.Paths = append(pc.Paths, cp)
			}
		}
	}
	if len(pc.Paths) == 0 {
		return nil, fmt.Errorf("core: no client messages captured")
	}
	pc.PreprocessStats.RawPaths = raw
	pc.PreprocessStats.DedupedPaths = raw - len(pc.Paths)
	pc.masked = make([]bool, pc.NumFields)
	for _, f := range opts.Mask {
		if f >= 0 && f < pc.NumFields {
			pc.masked[f] = true
		}
	}
	if !opts.SkipPreprocess {
		pc.PreprocessParallelCtx(ctx, opts.Solver, opts.Parallelism)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return pc, nil
}

// sentKey is a structural fingerprint used for deduplication.
func sentKey(m symexec.SentMessage) string {
	var b strings.Builder
	for _, f := range m.Fields {
		b.WriteString(f.String())
		b.WriteByte('|')
	}
	b.WriteByte('#')
	// Constraint order is deterministic (program order), but sort anyway so
	// semantically identical paths with reordered conjuncts dedupe.
	cs := make([]string, len(m.Path))
	for i, c := range m.Path {
		cs[i] = c.String()
	}
	sort.Strings(cs)
	for _, c := range cs {
		b.WriteString(c)
		b.WriteByte('&')
	}
	return b.String()
}

// msgVar returns the server-side message variable for field f.
func (pc *ClientPredicate) msgVar(f int) *expr.Expr {
	return expr.Var(pc.MsgPrefix + strconv.Itoa(f))
}

// MsgVarName returns the server-side message variable name for field f.
func (pc *ClientPredicate) MsgVarName(f int) string {
	return pc.MsgPrefix + strconv.Itoa(f)
}

// FieldIndexOfVar parses a message variable name back to its field index,
// returning -1 for non-message variables.
func (pc *ClientPredicate) FieldIndexOfVar(name string) int {
	if !strings.HasPrefix(name, pc.MsgPrefix) {
		return -1
	}
	n, err := strconv.Atoi(name[len(pc.MsgPrefix):])
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// Preprocess builds, for every client path, the binding constraints, the
// field classification, the negation disjuncts (with the §4.1 overlap
// check), and the differentFrom matrix (§3.3).
func (pc *ClientPredicate) Preprocess(s *solver.Solver) {
	pc.PreprocessParallel(s, 1)
}

// PreprocessParallel is Preprocess with the per-path work (binding, field
// classification, negation with its overlap solver queries, bind keys)
// fanned out over the given number of workers. Paths are independent, so
// the produced artifacts are identical to the sequential run; per-path
// counters are summed in path order, keeping PreprocessStats
// deterministic. The differentFrom matrix stays sequential: its memo
// already collapses the quadratic query load, and the remaining solver
// calls hit the verdict cache.
func (pc *ClientPredicate) PreprocessParallel(s *solver.Solver, workers int) {
	pc.PreprocessParallelCtx(context.Background(), s, workers)
}

// PreprocessParallelCtx is PreprocessParallel under a context: cancellation
// skips the remaining per-path work and leaves the rest of the differentFrom
// matrix at TriUnknown (the conservative don't-know). A cancelled
// preprocessing run leaves the predicate HALF-BUILT — missing negation
// disjuncts read as "abandoned" and silently suppress Trojan classes — so
// callers must check ctx.Err() afterwards and refuse to analyse with it
// (RunCtx and ExtractClientPredicateCtx both do).
func (pc *ClientPredicate) PreprocessParallelCtx(ctx context.Context, s *solver.Solver, workers int) {
	if ctx == nil {
		ctx = context.Background()
	}
	stats := make([]PreprocessStats, len(pc.Paths))
	parallelFor(workers, len(pc.Paths), func(i int) {
		if ctx.Err() != nil {
			return
		}
		cp := pc.Paths[i]
		pc.buildBind(cp)
		pc.classifyFields(cp)
		pc.buildNegation(ctx, cp, s, &stats[i])
		pc.buildBindKey(cp)
	})
	for _, st := range stats {
		pc.PreprocessStats.Disjuncts += st.Disjuncts
		pc.PreprocessStats.OverlapDropped += st.OverlapDropped
		pc.PreprocessStats.SolverQueries += st.SolverQueries
	}
	pc.buildDifferentFrom(ctx, s)
}

// buildBindKey computes the canonical message-relevant signature. The
// relevant constraint set is the transitive closure of the constraints
// sharing variables with the field expressions; constraints on local-only
// inputs (flags, normalisation choices) are excluded, because they are
// independently satisfiable and cannot affect sat(pathS ∧ bind).
func (pc *ClientPredicate) buildBindKey(cp *ClientPath) {
	relevant := map[string]bool{}
	for _, e := range cp.Fields {
		expr.CollectVars(e, relevant)
	}
	// Transitive closure over constraints that share variables.
	for changed := true; changed; {
		changed = false
		for _, k := range cp.Constraints {
			vs := map[string]bool{}
			expr.CollectVars(k, vs)
			touches := false
			for v := range vs {
				if relevant[v] {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			for v := range vs {
				if !relevant[v] {
					relevant[v] = true
					changed = true
				}
			}
		}
	}
	// Canonical renaming in encounter order (shared state keeps names).
	canon := map[string]string{}
	next := 0
	ren := func(n string) string {
		if pc.isShared(n) {
			return n
		}
		if c, ok := canon[n]; ok {
			return c
		}
		c := "k" + strconv.Itoa(next)
		next++
		canon[n] = c
		return c
	}
	var b strings.Builder
	for _, e := range cp.Fields {
		b.WriteString(expr.RenameVars(e, ren).String())
		b.WriteByte('|')
	}
	var ks []string
	for _, k := range cp.Constraints {
		vs := map[string]bool{}
		expr.CollectVars(k, vs)
		keep := len(vs) == 0
		for v := range vs {
			if relevant[v] {
				keep = true
				break
			}
		}
		if keep {
			ks = append(ks, expr.RenameVars(k, ren).String())
		}
	}
	sort.Strings(ks)
	for _, k := range ks {
		b.WriteString(k)
		b.WriteByte('&')
	}
	cp.bindKey = b.String()
}

// isShared reports whether a variable is shared world state (not renamed).
func (pc *ClientPredicate) isShared(name string) bool {
	return strings.HasPrefix(name, "state_") || pc.sharedVars[name]
}

// buildBind caches bind_i = { m_f == E'_f } ∪ K' with inputs renamed c{i}_
// (shared state variables keep their names).
func (pc *ClientPredicate) buildBind(cp *ClientPath) {
	prefix := "c" + strconv.Itoa(cp.ID) + "_"
	ren := func(n string) string {
		if pc.isShared(n) {
			return n
		}
		return prefix + n
	}
	cp.bind = make([]*expr.Expr, 0, len(cp.Fields)+len(cp.Constraints))
	for f, e := range cp.Fields {
		cp.bind = append(cp.bind, expr.Eq(pc.msgVar(f), expr.RenameVars(e, ren)))
	}
	for _, k := range cp.Constraints {
		cp.bind = append(cp.bind, expr.RenameVars(k, ren))
	}
}

// classifyFields fills fieldKind and simpleField.
func (cp *ClientPath) constraintsMentioning(vars map[string]bool) []*expr.Expr {
	var out []*expr.Expr
	for _, k := range cp.Constraints {
		ks := map[string]bool{}
		expr.CollectVars(k, ks)
		for v := range ks {
			if vars[v] {
				out = append(out, k)
				break
			}
		}
	}
	return out
}

func (pc *ClientPredicate) classifyFields(cp *ClientPath) {
	cp.fieldKind = make([]FieldKind, len(cp.Fields))
	cp.simpleField = make([]bool, len(cp.Fields))
	// Map each input var to the set of fields using it.
	varFields := map[string]map[int]bool{}
	for f, e := range cp.Fields {
		vs := map[string]bool{}
		expr.CollectVars(e, vs)
		for v := range vs {
			if varFields[v] == nil {
				varFields[v] = map[int]bool{}
			}
			varFields[v][f] = true
		}
	}
	for f, e := range cp.Fields {
		switch {
		case e.IsConst():
			cp.fieldKind[f] = FieldConst
			cp.simpleField[f] = true
			continue
		case e.Kind == expr.KVar && pc.isShared(e.Name):
			cp.fieldKind[f] = FieldState
			continue
		case e.Kind == expr.KVar:
			cp.fieldKind[f] = FieldVar
		default:
			cp.fieldKind[f] = FieldExpr
		}
		vs := map[string]bool{}
		expr.CollectVars(e, vs)
		ks := cp.constraintsMentioning(vs)
		if len(ks) == 0 {
			cp.fieldKind[f] = FieldFree
			continue
		}
		// simple: pure var, used only in this field, and all its constraints
		// mention only this var.
		if e.Kind == expr.KVar && len(varFields[e.Name]) == 1 {
			simple := true
			for _, k := range ks {
				kvars := expr.Vars(k)
				if len(kvars) != 1 || kvars[0] != e.Name {
					simple = false
					break
				}
			}
			cp.simpleField[f] = simple
		}
	}
}

// buildNegation constructs the negate(pathC) disjuncts per §3.2 and applies
// the §4.1 overlap check: any disjunct sharing a solution with the original
// path predicate is discarded, keeping the negation a strict
// under-approximation.
func (pc *ClientPredicate) buildNegation(ctx context.Context, cp *ClientPath, s *solver.Solver, stats *PreprocessStats) {
	cp.negDisjuncts = make([]*expr.Expr, len(cp.Fields))
	for f, e := range cp.Fields {
		if pc.masked[f] {
			continue
		}
		m := pc.msgVar(f)
		var d *expr.Expr
		switch cp.fieldKind[f] {
		case FieldConst:
			d = expr.Ne(m, e)
		case FieldState:
			// Shared symbolic local state (§3.4): within the analysed
			// world the field must equal the shared value, so differing
			// from it is an exact negation.
			d = expr.Ne(m, e)
		case FieldFree:
			continue // abandoned: unconstrained symbolic data
		case FieldVar:
			vs := map[string]bool{e.Name: true}
			ks := cp.constraintsMentioning(vs)
			if cp.simpleField[f] {
				// Exact: substitute m_f for the var in ¬K.
				neg := expr.Not(expr.AndAll(ks))
				d = expr.Substitute(neg, map[string]*expr.Expr{e.Name: m})
			} else {
				d = pc.exprFieldNegation(cp, f, e, ks)
			}
		case FieldExpr:
			vs := map[string]bool{}
			expr.CollectVars(e, vs)
			ks := cp.constraintsMentioning(vs)
			if len(ks) == 0 {
				continue // abandoned
			}
			d = pc.exprFieldNegation(cp, f, e, ks)
		}
		if d == nil || d.IsFalse() {
			continue
		}
		// §4.1 overlap check: discard the disjunct if a message generatable
		// by this client path also satisfies it. Exact negations (constants,
		// shared state, simple vars) cannot overlap and skip the query.
		if cp.fieldKind[f] != FieldConst && cp.fieldKind[f] != FieldState &&
			!(cp.fieldKind[f] == FieldVar && cp.simpleField[f]) {
			stats.SolverQueries++
			q := append(append([]*expr.Expr{}, cp.bind...), d)
			if res, _ := s.CheckCtx(ctx, q); res != solver.Unsat {
				stats.OverlapDropped++
				continue
			}
		}
		cp.negDisjuncts[f] = d
		stats.Disjuncts++
	}
}

// exprFieldNegation builds m_f == E(λ̃) ∧ ¬K(λ̃) with λ̃ fresh (n{i}_{f}_
// prefix), the §3.2 rule for expression fields such as checksums.
func (pc *ClientPredicate) exprFieldNegation(cp *ClientPath, f int, e *expr.Expr, ks []*expr.Expr) *expr.Expr {
	prefix := "n" + strconv.Itoa(cp.ID) + "_" + strconv.Itoa(f) + "_"
	ren := func(n string) string {
		if pc.isShared(n) {
			return n
		}
		return prefix + n
	}
	eq := expr.Eq(pc.msgVar(f), expr.RenameVars(e, ren))
	neg := expr.Not(expr.AndAll(ks))
	return expr.And(eq, expr.RenameVars(neg, ren))
}

// fieldValueMember returns a membership predicate for "v is a possible value
// of field f in path cp", valid only for simple fields.
func (cp *ClientPath) fieldValueMember(f int, v *expr.Expr) *expr.Expr {
	e := cp.Fields[f]
	if e.IsConst() {
		return expr.Eq(v, e)
	}
	// simple var: substitute v into its constraints.
	vs := map[string]bool{e.Name: true}
	ks := cp.constraintsMentioning(vs)
	return expr.Substitute(expr.AndAll(ks), map[string]*expr.Expr{e.Name: v})
}

// buildDifferentFrom computes the §3.3 matrix for simple fields. The
// computation is exactly the one in the paper: apply the (field-level)
// negate operator between every pair of client path predicates. Because
// large client corpora contain many paths with identical per-field value
// sets (e.g. every flag combination of the same utility), queries are
// memoised by the canonical member-predicate pair, which collapses the
// O(n²·fields) solver work to the number of distinct value-set pairs.
func (pc *ClientPredicate) buildDifferentFrom(ctx context.Context, s *solver.Solver) {
	n := len(pc.Paths)
	pc.differentFrom = make([][][]Tri, n)
	for i := range pc.differentFrom {
		pc.differentFrom[i] = make([][]Tri, n)
		for j := range pc.differentFrom[i] {
			pc.differentFrom[i][j] = make([]Tri, pc.NumFields)
		}
	}
	v := expr.Var("df_v")
	// Canonical member predicates per (path, field), nil when not simple.
	members := make([][]*expr.Expr, n)
	keys := make([][]string, n)
	for i, p := range pc.Paths {
		members[i] = make([]*expr.Expr, pc.NumFields)
		keys[i] = make([]string, pc.NumFields)
		for f := 0; f < pc.NumFields; f++ {
			if pc.masked[f] || !p.simpleField[f] {
				continue
			}
			m := p.fieldValueMember(f, v)
			members[i][f] = m
			keys[i][f] = m.String()
		}
	}
	memo := map[[2]string]Tri{}
	for i := range pc.Paths {
		if ctx.Err() != nil {
			// Remaining entries stay TriUnknown — the conservative verdict
			// that disables the bulk drop but never flips a result.
			return
		}
		for j := range pc.Paths {
			if i == j {
				for f := 0; f < pc.NumFields; f++ {
					pc.differentFrom[i][j][f] = TriNo
					pc.PreprocessStats.DiffFromNo++
				}
				continue
			}
			for f := 0; f < pc.NumFields; f++ {
				if members[i][f] == nil || members[j][f] == nil {
					pc.differentFrom[i][j][f] = TriUnknown
					pc.PreprocessStats.DiffFromUnk++
					continue
				}
				key := [2]string{keys[i][f], keys[j][f]}
				tri, ok := memo[key]
				if !ok {
					// ∃v: member_i(v) ∧ ¬member_j(v)?
					q := []*expr.Expr{members[i][f], expr.Not(members[j][f])}
					pc.PreprocessStats.SolverQueries++
					switch res, _ := s.CheckCtx(ctx, q); res {
					case solver.Sat:
						tri = TriYes
					case solver.Unsat:
						tri = TriNo
					default:
						tri = TriUnknown
					}
					memo[key] = tri
				}
				pc.differentFrom[i][j][f] = tri
				switch tri {
				case TriYes:
					pc.PreprocessStats.DiffFromYes++
				case TriNo:
					pc.PreprocessStats.DiffFromNo++
				default:
					pc.PreprocessStats.DiffFromUnk++
				}
			}
		}
	}
}
