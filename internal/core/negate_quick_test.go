package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"achilles/internal/core"
	"achilles/internal/expr"
	"achilles/internal/lang"
	"achilles/internal/solver"
)

// The central soundness invariant of the negate operator (§3.2/§4.1): for
// every client path predicate, bind(pathC) ∧ negate(pathC) is unsatisfiable
// — no message a client path can generate ever satisfies its own negation.
// The property test generates random small client programs (random field
// shapes: constants, bounded inputs, free inputs, sums with checksums) and
// checks the invariant on every extracted path.

// genClientSrc builds a random NL client over nFields message fields.
func genClientSrc(rnd *rand.Rand, nFields int) string {
	src := fmt.Sprintf("var msg [%d]int;\nfunc main() {\n", nFields)
	var sumTerms []string
	for f := 0; f < nFields-1; f++ {
		switch rnd.Intn(4) {
		case 0: // constant field
			src += fmt.Sprintf("\tmsg[%d] = %d;\n", f, rnd.Intn(9)-4)
		case 1: // bounded symbolic input
			lo := rnd.Intn(10) - 5
			hi := lo + 1 + rnd.Intn(10)
			src += fmt.Sprintf("\tvar v%d int = input();\n", f)
			src += fmt.Sprintf("\tassume(v%d >= %d);\n\tassume(v%d <= %d);\n", f, lo, f, hi)
			src += fmt.Sprintf("\tmsg[%d] = v%d;\n", f, f)
			sumTerms = append(sumTerms, fmt.Sprintf("v%d", f))
		case 2: // free symbolic input
			src += fmt.Sprintf("\tmsg[%d] = input();\n", f)
		default: // branching on an input (two client paths)
			src += fmt.Sprintf("\tvar w%d int = input();\n", f)
			src += fmt.Sprintf("\tif w%d > 0 { msg[%d] = 1; } else { msg[%d] = 2; }\n", f, f, f)
		}
	}
	// Last field: a checksum-like expression over the bounded inputs.
	sum := "0"
	for _, t := range sumTerms {
		sum += " + " + t
	}
	src += fmt.Sprintf("\tmsg[%d] = %s;\n", nFields-1, sum)
	src += "\tsend(msg);\n\texit();\n}\n"
	return src
}

func TestQuickNegateNeverOverlapsOwnPredicate(t *testing.T) {
	s := solver.Default()
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		nFields := 3 + rnd.Intn(3)
		src := genClientSrc(rnd, nFields)
		unit, err := lang.Compile(src)
		if err != nil {
			t.Logf("generated program does not compile: %v\n%s", err, src)
			return false
		}
		pc, err := core.ExtractClientPredicate(
			[]core.ClientProgram{{Name: "gen", Unit: unit}}, core.ExtractOptions{})
		if err != nil {
			t.Logf("extraction failed: %v\n%s", err, src)
			return false
		}
		for _, p := range pc.Paths {
			neg := p.Negation()
			if neg.IsFalse() {
				continue // fully abandoned: trivially non-overlapping
			}
			q := append(append([]*expr.Expr{}, p.Bind()...), neg)
			if res, _ := s.Check(q); res == solver.Sat {
				t.Logf("negation overlaps its own predicate on path %d\nsource:\n%s", p.ID, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickNegationExcludesGeneratedMessages: concretely generated client
// messages never satisfy the negation — the reverse direction, checked by
// evaluation rather than the solver.
func TestQuickNegationExcludesGeneratedMessages(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		src := genClientSrc(rnd, 4)
		unit, err := lang.Compile(src)
		if err != nil {
			return false
		}
		pc, err := core.ExtractClientPredicate(
			[]core.ClientProgram{{Name: "gen", Unit: unit}}, core.ExtractOptions{})
		if err != nil {
			return false
		}
		s := solver.Default()
		for _, p := range pc.Paths {
			neg := p.Negation()
			if neg.IsFalse() {
				continue
			}
			// Concretise one message from the path via its bind.
			res, model := s.Check(p.Bind())
			if res != solver.Sat {
				t.Logf("client path %d has no model", p.ID)
				return false
			}
			// Evaluate the negation on the message variables only.
			env := expr.Env{}
			for f := 0; f < pc.NumFields; f++ {
				env[pc.MsgVarName(f)] = model[pc.MsgVarName(f)]
			}
			// Fresh negation variables get their model values too (they
			// are existential witnesses).
			for _, v := range expr.Vars(neg) {
				if _, ok := env[v]; !ok {
					env[v] = model[v]
				}
			}
			sat, err := expr.EvalBool(neg, env)
			if err == nil && sat {
				t.Logf("generated message satisfies its own negation on path %d\n%s", p.ID, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
