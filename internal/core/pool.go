package core

import (
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(0), ..., fn(n-1) on at most workers goroutines,
// claiming indices from a shared atomic counter. An effective worker count
// of one (workers <= 1 or n <= 1) runs inline. Callers rely on every index
// running exactly once; completion order is unspecified.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
