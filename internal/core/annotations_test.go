package core_test

import (
	"testing"

	"achilles/internal/core"
	"achilles/internal/lang"
)

// TestFigure9StyleOverApproximation mirrors the paper's Figure 9: a
// function (getPeerID) whose real implementation is bypassed with an
// annotation returning a symbolic value constrained to [0, 10]. In NL the
// annotation is written with symbolic() + assume, which play the roles of
// return_symbolic and drop_path.
func TestFigure9StyleOverApproximation(t *testing.T) {
	client := lang.MustCompile(`
var msg [2]int;

func getPeerID() int {
	// function_start/return_symbolic/drop_path annotation block:
	var toRet int = symbolic();
	assume(toRet >= 0);
	assume(toRet <= 10);
	return toRet;
	// (actual code of getPeerID would follow and is never reached)
}

func main() {
	var id int = getPeerID();
	msg[0] = id;
	msg[1] = 7;
	send(msg);
	exit();
}`)
	server := lang.MustCompile(`
var msg [2]int;
func main() {
	recv(msg);
	// The server accepts a wider peer range than the annotation allows.
	if msg[0] < 0 { reject(); }
	if msg[0] > 50 { reject(); }
	if msg[1] != 7 { reject(); }
	accept();
}`)
	run, err := core.Run(core.Target{
		Name:    "figure9",
		Server:  server,
		Clients: []core.ClientProgram{{Name: "annotated", Unit: client}},
	}, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Analysis.Trojans) != 1 {
		t.Fatalf("trojans = %d, want 1 (peer ids 11..50)", len(run.Analysis.Trojans))
	}
	tr := run.Analysis.Trojans[0]
	if tr.Concrete[0] <= 10 || tr.Concrete[0] > 50 {
		t.Fatalf("example peer id %d outside the Trojan band (10, 50]", tr.Concrete[0])
	}
	if !tr.VerifiedAccept || !tr.VerifiedNotClient {
		t.Fatalf("verification: %+v", tr)
	}
}
