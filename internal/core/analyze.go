package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"achilles/internal/expr"
	"achilles/internal/lang"
	"achilles/internal/solver"
	"achilles/internal/symexec"
)

// Mode selects which of the §3.3 optimisations are active; the §6.4 ablation
// compares them.
type Mode int

// Analysis modes.
const (
	// ModeOptimized is full Achilles: per-state live client sets,
	// differentFrom bulk dropping, and incremental Trojan checks that prune
	// server states which no Trojan message can reach.
	ModeOptimized Mode = iota
	// ModeNoDifferentFrom disables the differentFrom bulk drop; every live
	// client path is re-checked with the solver individually.
	ModeNoDifferentFrom
	// ModeAPosteriori mirrors the paper's non-optimised baseline: plain
	// symbolic execution of the server first, then symbolic constraint
	// differencing over the accepting paths afterwards.
	ModeAPosteriori
)

func (m Mode) String() string {
	switch m {
	case ModeOptimized:
		return "optimized"
	case ModeNoDifferentFrom:
		return "no-differentFrom"
	case ModeAPosteriori:
		return "a-posteriori"
	}
	return "mode?"
}

// AnalysisOptions configure the server phase.
type AnalysisOptions struct {
	Mode Mode
	// Exec configures the symbolic engine for the server run.
	Exec symexec.Options
	// Solver is shared by the engine and the Trojan checks; defaults to
	// solver.Default().
	Solver *solver.Solver
	// SkipConcreteVerification disables the concrete replay of each Trojan
	// example against the server model. It is forced on when the server
	// runs with symbolic local state, which cannot be replayed concretely.
	SkipConcreteVerification bool
	// Parallelism is the number of analysis workers (the -j knob): it drives
	// the engine's frontier workers, the concurrent Trojan checks and — via
	// Run — client predicate extraction and preprocessing. Values <= 1 run
	// the classic sequential pipeline. The reported Trojan class set is
	// identical for every value, and reports are merged in fork-tree order
	// so the report list is deterministic for a fixed Parallelism. Two
	// caveats: the *order* of LiveTrace entries (not their multiset) is
	// scheduling-dependent at Parallelism > 1, and a run truncated by
	// Exec.MaxStates explores a scheduling-dependent subset under
	// parallelism — see symexec.Options.Parallelism.
	Parallelism int

	// Observer streams phase transitions, Trojan reports (as they are
	// confirmed) and periodic progress to the caller; see Observer. The
	// zero value observes nothing.
	Observer Observer

	// FirstTrojan stops the entire fan-out — engine frontier, in-flight
	// solver queries, concurrent Trojan checks — as soon as the first
	// Trojan report is confirmed. The result then carries at least one
	// report (more can slip in from concurrent workers before the stop
	// lands) and is marked Truncated, because the exploration did not
	// finish. A real speedup on deep targets where the full walk is
	// expensive but the first vulnerability surfaces early.
	FirstTrojan bool

	// ProgressInterval paces Observer.OnProgress during the server phase;
	// zero means 200ms. Ignored when OnProgress is nil.
	ProgressInterval time.Duration
}

// TrojanReport describes one discovered Trojan message class: an accepting
// server path that admits messages no client path can generate.
type TrojanReport struct {
	Index         int
	ServerStateID int
	PathLen       int           // branch decisions on the accepting path
	ServerPath    []*expr.Expr  // the accepting path constraints
	Witness       *expr.Expr    // symbolic Trojan class (pathS ∧ ⋀ negate(pathC))
	Concrete      []int64       // example Trojan message
	StateEnv      expr.Env      // concrete world for symbolic local state (§3.4)
	LiveClients   []int         // client paths still triggering the state
	Elapsed       time.Duration // since analysis start

	// VerifiedAccept: the concrete example was replayed against the server
	// model and accepted. VerifiedNotClient: no client path predicate is
	// satisfiable with the concrete example (the §4 soundness guard).
	VerifiedAccept    bool
	VerifiedNotClient bool
}

// TimelinePoint records cumulative discovery over time (Figure 10).
type TimelinePoint struct {
	Elapsed time.Duration
	Found   int
}

// LivePoint records the live client-path count per server path length
// (Figure 11).
type LivePoint struct {
	PathLen int
	Live    int
}

// Result is the outcome of a server analysis.
type Result struct {
	Trojans   []TrojanReport
	Timeline  []TimelinePoint
	LiveTrace []LivePoint

	AcceptingStates int // accepting states reached during exploration
	PrunedStates    int // states pruned because no Trojan could reach them
	FilteredReports int // accepting states whose Trojan query was unsat/unknown
	BulkDrops       int // client paths dropped via differentFrom (no solver call)
	BindKeyHits     int // triggerability verdicts shared via canonical bind keys
	Duration        time.Duration
	EngineStats     symexec.Stats
	SolverStats     solver.Stats
}

// Truncated reports whether the server exploration hit Exec.MaxStates with
// states left unexplored. A truncated analysis yields a *partial* Trojan
// class set: consumers (campaign manifests, the golden gate) must flag the
// run rather than pin its corpus as the complete result.
func (r *Result) Truncated() bool { return r.EngineStats.Truncated }

// liveData is the per-state analysis payload: the IDs of client path
// predicates that can still trigger the state.
type liveData struct {
	live []int
}

// CloneData implements symexec.StateData.
func (d *liveData) CloneData() symexec.StateData {
	return &liveData{live: append([]int{}, d.live...)}
}

// pendingReport is a Trojan report gathered during (possibly concurrent)
// exploration: everything is computed at accept time except the final Index
// and ServerStateID, which are assigned by finalize once the merge order of
// the run is known.
type pendingReport struct {
	st                *symexec.State
	witness           *expr.Expr
	concrete          []int64
	stateEnv          expr.Env
	live              []int
	elapsed           time.Duration
	verifiedAccept    bool
	verifiedNotClient bool
}

// analysis carries the run context. With opts.Parallelism > 1 the engine
// hooks run concurrently: mu guards the shared result fields (counters, live
// trace, pending reports); everything else the hooks touch is either
// per-state (liveData) or concurrency-safe (the solver).
type analysis struct {
	server *lang.Unit
	pc     *ClientPredicate
	opts   AnalysisOptions
	sol    *solver.Solver
	res    *Result
	start  time.Time

	// runCtx is the exploration's working context: the caller's ctx plus
	// the internal first-trojan stop. Every solver query and the engine
	// frontier run under it, so one cancel aborts the whole fan-out.
	runCtx context.Context
	stop   context.CancelFunc

	// observing gates the live-counter and streamed-report bookkeeping so
	// observer-less runs (campaign jobs, v1 Run, benchmarks) pay nothing
	// for it on the hot branch path.
	observing bool
	// Live counters for progress reporting (atomic: hooks run concurrently).
	branches atomic.Int64 // branch constraints processed
	maxDepth atomic.Int64 // deepest branch decision seen
	found    atomic.Int64 // Trojan reports confirmed

	mu      sync.Mutex
	pending []pendingReport
}

// AnalyzeServer runs the Achilles server phase against a compiled server
// model and a preprocessed client predicate.
func AnalyzeServer(server *lang.Unit, pc *ClientPredicate, opts AnalysisOptions) (*Result, error) {
	return AnalyzeServerCtx(context.Background(), server, pc, opts)
}

// AnalyzeServerCtx is AnalyzeServer under a context. Cancellation (or a
// deadline) aborts the exploration cleanly mid-frontier: the engine stops
// forking, in-flight solver queries return Unknown, reports whose
// verification the cancellation degraded are dropped rather than emitted,
// and the partial result — marked Truncated — is returned together with
// ctx.Err(). An opts.FirstTrojan early exit uses the same stop path but is
// not an error: the result is Truncated and err is nil.
func AnalyzeServerCtx(ctx context.Context, server *lang.Unit, pc *ClientPredicate, opts AnalysisOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Solver == nil {
		opts.Solver = solver.Default()
	}
	runCtx, stop := context.WithCancel(ctx)
	defer stop()
	a := &analysis{
		server:    server,
		pc:        pc,
		opts:      opts,
		sol:       opts.Solver,
		res:       &Result{},
		start:     time.Now(),
		runCtx:    runCtx,
		stop:      stop,
		observing: opts.Observer.OnProgress != nil || opts.Observer.OnTrojan != nil,
	}
	if opts.Observer.OnProgress != nil {
		progDone := make(chan struct{})
		progExited := make(chan struct{})
		go func() {
			defer close(progExited)
			a.progressLoop(progDone)
		}()
		// Synchronous shutdown: no OnProgress callback may outlive this
		// function — callers (sessions) close their event sinks right after.
		defer func() {
			close(progDone)
			<-progExited
		}()
	}
	execOpts := opts.Exec
	execOpts.Solver = a.sol
	if execOpts.Parallelism == 0 {
		execOpts.Parallelism = opts.Parallelism
	}
	switch opts.Mode {
	case ModeAPosteriori:
		// Phase A: plain symbolic execution (classic S2E run).
		engRes, err := symexec.RunCtx(runCtx, server, execOpts)
		if err != nil {
			return nil, err
		}
		a.res.EngineStats = engRes.Stats
		// Phase B: symbolic constraint differencing over accepting paths,
		// fanned out over the analysis workers (each path is independent).
		accepted := engRes.ByStatus(symexec.StatusAccepted)
		parallelFor(opts.Parallelism, len(accepted), func(i int) {
			if runCtx.Err() != nil {
				return
			}
			st := accepted[i]
			a.mu.Lock()
			a.res.AcceptingStates++
			a.mu.Unlock()
			live := a.liveFromScratch(st.SolverPrefix(), st.Path)
			a.reportIfTrojan(st, live)
		})
		// A first-trojan stop (or a cancel) during phase B leaves accepting
		// paths undifferenced: the class set is partial even though the
		// engine walk itself completed.
		if runCtx.Err() != nil {
			a.res.EngineStats.Truncated = true
		}
	default:
		execOpts.Hooks = symexec.Hooks{
			OnBranch: a.onBranch,
			OnAccept: a.onAccept,
		}
		engRes, err := symexec.RunCtx(runCtx, server, execOpts)
		if err != nil {
			return nil, err
		}
		a.res.EngineStats = engRes.Stats
		a.res.PrunedStates = len(engRes.ByStatus(symexec.StatusPruned))
		// A stop that lands as the engine drains its last state can leave the
		// walk looking complete; the result of a stopped run is partial by
		// contract (FirstTrojan in particular promises Truncated), so force
		// the flag whenever the working context fired.
		if runCtx.Err() != nil {
			a.res.EngineStats.Truncated = true
		}
	}
	a.finalize()
	a.res.Duration = time.Since(a.start)
	a.res.SolverStats = a.sol.Stats()
	if opts.Observer.OnProgress != nil {
		a.emitProgress() // final snapshot with the completed counters
	}
	// Only the caller's cancellation is an error; the internal first-trojan
	// stop is a successful early exit (the Truncated flag still records that
	// the exploration was cut short).
	return a.res, ctx.Err()
}

// progressLoop emits periodic Progress snapshots until the analysis ends.
func (a *analysis) progressLoop(done <-chan struct{}) {
	interval := a.opts.ProgressInterval
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			a.emitProgress()
		}
	}
}

// emitProgress snapshots the live counters into one Progress callback.
func (a *analysis) emitProgress() {
	st := a.sol.Stats()
	rate := 0.0
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		rate = float64(st.CacheHits) / float64(lookups)
	}
	a.opts.Observer.OnProgress(Progress{
		Phase:          PhaseServer,
		Elapsed:        time.Since(a.start),
		StatesExplored: int(a.branches.Load()),
		FrontierDepth:  int(a.maxDepth.Load()),
		Trojans:        int(a.found.Load()),
		SolverQueries:  st.Queries,
		CacheHitRate:   rate,
	})
}

// finalize turns the pending reports into the public report list. Reports
// are ordered by the accepting state's fork-tree trail — for sequential runs
// this equals the discovery order, for parallel runs it is the scheduling-
// independent canonical order — and the discovery timeline is ordered by
// elapsed time.
func (a *analysis) finalize() {
	sort.SliceStable(a.pending, func(i, j int) bool {
		return a.pending[i].st.Trail < a.pending[j].st.Trail
	})
	for i, p := range a.pending {
		a.res.Trojans = append(a.res.Trojans, TrojanReport{
			Index:             i,
			ServerStateID:     p.st.ID,
			PathLen:           len(p.st.Path),
			ServerPath:        append([]*expr.Expr{}, p.st.Path...),
			Witness:           p.witness,
			Concrete:          p.concrete,
			StateEnv:          p.stateEnv,
			LiveClients:       p.live,
			Elapsed:           p.elapsed,
			VerifiedAccept:    p.verifiedAccept,
			VerifiedNotClient: p.verifiedNotClient,
		})
	}
	elapsed := make([]time.Duration, len(a.pending))
	for i, p := range a.pending {
		elapsed[i] = p.elapsed
	}
	sort.Slice(elapsed, func(i, j int) bool { return elapsed[i] < elapsed[j] })
	for i, d := range elapsed {
		a.res.Timeline = append(a.res.Timeline, TimelinePoint{Elapsed: d, Found: i + 1})
	}
	a.pending = nil
}

// ensureData lazily attaches the live set (all client paths) to a state.
func (a *analysis) ensureData(st *symexec.State) *liveData {
	if d, ok := st.Data.(*liveData); ok {
		return d
	}
	d := &liveData{live: make([]int, len(a.pc.Paths))}
	for i := range a.pc.Paths {
		d.live[i] = i
	}
	st.Data = d
	return d
}

// triggerable asks whether client path i can still trigger the server path.
// pfx, when non-nil, is the server path's incremental solver handle — the
// query then goes through the prefix fast path, which reuses the path's
// flattened form and propagation fixpoint (verdicts, models and cache keys
// are identical to the materialised query; see solver.CheckPrefixAllCtx).
func (a *analysis) triggerable(pfx *solver.Prefix, serverPath []*expr.Expr, i int) bool {
	cp := a.pc.Paths[i]
	if pfx != nil {
		res, _ := a.sol.CheckPrefixAllCtx(a.runCtx, pfx, cp.bind)
		return res != solver.Unsat
	}
	q := make([]*expr.Expr, 0, len(serverPath)+len(cp.bind))
	q = append(q, serverPath...)
	q = append(q, cp.bind...)
	res, _ := a.sol.CheckCtx(a.runCtx, q)
	return res != solver.Unsat
}

// liveFromScratch computes the live set for a path with no incremental
// state (a-posteriori mode).
func (a *analysis) liveFromScratch(pfx *solver.Prefix, serverPath []*expr.Expr) []int {
	var live []int
	byKey := map[string]bool{}
	for i := range a.pc.Paths {
		key := a.pc.Paths[i].bindKey
		ok, seen := byKey[key]
		if !seen {
			ok = a.triggerable(pfx, serverPath, i)
			byKey[key] = ok
		}
		if ok {
			live = append(live, i)
		}
	}
	return live
}

// singleFieldOf returns the message field index when every variable of cond
// belongs to exactly one message field, else -1. Used to gate the
// differentFrom bulk drop.
func (a *analysis) singleFieldOf(cond *expr.Expr) int {
	field := -1
	for _, v := range expr.Vars(cond) {
		f := a.pc.FieldIndexOfVar(v)
		if f < 0 {
			return -1 // touches non-message state
		}
		if field == -1 {
			field = f
		} else if field != f {
			return -1
		}
	}
	return field
}

// onBranch updates the live set and prunes states that no Trojan can reach.
// It runs concurrently when the engine explores in parallel: all solver work
// happens on the caller's state, and the shared counters and trace are
// updated under the analysis lock in one batch at the end.
func (a *analysis) onBranch(st *symexec.State, cond *expr.Expr) bool {
	if a.observing {
		a.branches.Add(1)
		depth := int64(len(st.Path))
		for {
			cur := a.maxDepth.Load()
			if depth <= cur || a.maxDepth.CompareAndSwap(cur, depth) {
				break
			}
		}
	}
	d := a.ensureData(st)
	// differentFrom bulk drop (§3.3): when the new constraint touches a
	// single independent field f and pathC_i was already dropped by it,
	// every pathC_j with no extra values on field f (differentFrom = No)
	// must die with it — without consulting the solver.
	bulkField := -1
	if a.opts.Mode == ModeOptimized {
		bulkField = a.singleFieldOf(cond)
	}
	// Drop client paths that can no longer trigger this server path. Paths
	// with the same canonical message-relevant signature share one solver
	// verdict (flag-style variants admit exactly the same messages).
	var kept, dropped []int
	var bulkDrops, bindKeyHits int
	byKey := map[string]bool{}
	for _, j := range d.live {
		bulk := false
		if bulkField >= 0 {
			for _, i := range dropped {
				if a.pc.differentFrom[j][i][bulkField] == TriNo {
					bulk = true
					break
				}
			}
		}
		if bulk {
			bulkDrops++
			dropped = append(dropped, j)
			continue
		}
		key := a.pc.Paths[j].bindKey
		ok, seen := byKey[key]
		if !seen {
			ok = a.triggerable(st.SolverPrefix(), st.Path, j)
			byKey[key] = ok
		} else {
			bindKeyHits++
		}
		if ok {
			kept = append(kept, j)
		} else {
			dropped = append(dropped, j)
		}
	}
	d.live = kept
	a.mu.Lock()
	a.res.BulkDrops += bulkDrops
	a.res.BindKeyHits += bindKeyHits
	a.res.LiveTrace = append(a.res.LiveTrace, LivePoint{PathLen: len(st.Path), Live: len(kept)})
	a.mu.Unlock()
	// Incremental Trojan check: discard the state as soon as no Trojan
	// message can trigger it (Figure 7).
	return a.trojanPossible(st.SolverPrefix(), st.Path, kept)
}

// trojanPossible checks sat(pathS ∧ ⋀ negate(pathC_i)) for the live set.
// Unknown answers keep the state alive (conservative). Duplicate negations
// (paths that admit identical message sets) collapse to one conjunct, which
// keeps the DPLL split count proportional to the number of *distinct*
// client predicates rather than the raw path count.
func (a *analysis) trojanPossible(pfx *solver.Prefix, serverPath []*expr.Expr, live []int) bool {
	negs := make([]*expr.Expr, 0, len(live))
	seen := map[uint64][]*expr.Expr{}
	for _, i := range live {
		neg := a.pc.Paths[i].Negation()
		if neg.IsFalse() {
			// Negation fully abandoned: this client path can generate any
			// message on this server path; no Trojan is provable here.
			return false
		}
		if dupSeen(seen, neg) {
			continue
		}
		negs = append(negs, neg)
	}
	if pfx != nil {
		res, _ := a.sol.CheckPrefixAllCtx(a.runCtx, pfx, negs)
		return res != solver.Unsat
	}
	q := make([]*expr.Expr, 0, len(serverPath)+len(negs))
	q = append(q, serverPath...)
	q = append(q, negs...)
	res, _ := a.sol.CheckCtx(a.runCtx, q)
	return res != solver.Unsat
}

// dupSeen records neg in the hash-bucketed set, reporting prior presence.
func dupSeen(seen map[uint64][]*expr.Expr, neg *expr.Expr) bool {
	for _, e := range seen[neg.Hash()] {
		if expr.Equal(e, neg) {
			return true
		}
	}
	seen[neg.Hash()] = append(seen[neg.Hash()], neg)
	return false
}

// onAccept emits a Trojan report for an accepting state.
func (a *analysis) onAccept(st *symexec.State) {
	a.mu.Lock()
	a.res.AcceptingStates++
	a.mu.Unlock()
	d := a.ensureData(st)
	a.reportIfTrojan(st, d.live)
}

// filtered counts one accepting state whose Trojan query did not survive.
func (a *analysis) filtered() {
	a.mu.Lock()
	a.res.FilteredReports++
	a.mu.Unlock()
}

// reportIfTrojan solves the final Trojan query for an accepting state and,
// when satisfiable, records a pending report with a verified concrete
// example, streaming it to the observer. Index and ServerStateID assignment
// is deferred to finalize so concurrent discoveries merge deterministically.
func (a *analysis) reportIfTrojan(st *symexec.State, live []int) {
	negs := make([]*expr.Expr, 0, len(live))
	witness := expr.AndAll(st.Path)
	seen := map[uint64][]*expr.Expr{}
	for _, i := range live {
		neg := a.pc.Paths[i].Negation()
		if neg.IsFalse() {
			a.filtered()
			return
		}
		if dupSeen(seen, neg) {
			continue
		}
		negs = append(negs, neg)
		witness = expr.And(witness, neg)
	}
	var res solver.Result
	var model expr.Env
	if pfx := st.SolverPrefix(); pfx != nil {
		res, model = a.sol.CheckPrefixAllCtx(a.runCtx, pfx, negs)
	} else {
		q := make([]*expr.Expr, 0, len(st.Path)+len(negs))
		q = append(q, st.Path...)
		q = append(q, negs...)
		res, model = a.sol.CheckCtx(a.runCtx, q)
	}
	if res != solver.Sat {
		a.filtered()
		return
	}
	concrete := a.concreteMessage(model)
	stateEnv := a.stateWorld(model)
	rep := pendingReport{
		st:       st,
		witness:  witness,
		concrete: concrete,
		stateEnv: stateEnv,
		live:     append([]int{}, live...),
		elapsed:  time.Since(a.start),
	}
	rep.verifiedNotClient = a.verifyNotClient(concrete, stateEnv)
	if !a.opts.SkipConcreteVerification {
		rep.verifiedAccept = a.verifyAccept(concrete, stateEnv)
	}
	if !rep.verifiedNotClient {
		// The example is generatable by some client path: a false positive
		// (§4.1); drop it rather than report.
		a.filtered()
		return
	}
	if a.runCtx.Err() != nil {
		// Cancellation degrades the verification queries above to Unknown,
		// which verifyNotClient treats as "no client found" — sound in a
		// healthy run, unsound mid-abort. A report finalised under a
		// cancelled context is therefore dropped: every report in a partial
		// result was fully verified before the stop landed.
		a.filtered()
		return
	}
	a.mu.Lock()
	a.pending = append(a.pending, rep)
	discovery := len(a.pending) - 1
	a.mu.Unlock()
	if a.observing {
		a.found.Add(1)
		a.opts.Observer.trojan(TrojanReport{
			Index:             discovery,
			ServerStateID:     rep.st.ID,
			PathLen:           len(rep.st.Path),
			ServerPath:        append([]*expr.Expr{}, rep.st.Path...),
			Witness:           rep.witness,
			Concrete:          rep.concrete,
			StateEnv:          rep.stateEnv,
			LiveClients:       append([]int{}, rep.live...),
			Elapsed:           rep.elapsed,
			VerifiedAccept:    rep.verifiedAccept,
			VerifiedNotClient: rep.verifiedNotClient,
		})
	}
	if a.opts.FirstTrojan {
		// Confirmed Trojan in hand: tear down the whole fan-out. Concurrent
		// workers may append a few more fully-verified reports before the
		// stop reaches them; anything after the stop is dropped above.
		a.stop()
	}
}

// concreteMessage materialises the message fields from a model (absent
// fields default to zero).
func (a *analysis) concreteMessage(model expr.Env) []int64 {
	msg := make([]int64, a.pc.NumFields)
	for f := 0; f < a.pc.NumFields; f++ {
		if v, ok := model[a.pc.MsgVarName(f)]; ok {
			msg[f] = v
		}
	}
	return msg
}

// stateWorld extracts the concrete values of shared symbolic local state
// (variables the engine named "state_*") from a model.
func (a *analysis) stateWorld(model expr.Env) expr.Env {
	env := expr.Env{}
	for _, g := range a.opts.Exec.GlobalSymbolic {
		name := "state_" + g
		env[name] = model[name] // zero when unconstrained
	}
	return env
}

// verifyNotClient checks that no client path predicate admits the concrete
// message within the concrete state world.
func (a *analysis) verifyNotClient(msg []int64, stateEnv expr.Env) bool {
	var eqs []*expr.Expr
	for f := range msg {
		eqs = append(eqs, expr.Eq(a.pc.msgVar(f), expr.Const(msg[f])))
	}
	for name, v := range stateEnv {
		eqs = append(eqs, expr.Eq(expr.Var(name), expr.Const(v)))
	}
	for _, cp := range a.pc.Paths {
		q := make([]*expr.Expr, 0, len(cp.bind)+len(eqs))
		q = append(q, cp.bind...)
		q = append(q, eqs...)
		if res, _ := a.sol.CheckCtx(a.runCtx, q); res == solver.Sat {
			return false
		}
	}
	return true
}

// verifyAccept replays the concrete message against the server model, with
// symbolic local state pinned to the discovered world.
func (a *analysis) verifyAccept(msg []int64, stateEnv expr.Env) bool {
	gc := map[string]int64{}
	for k, v := range a.opts.Exec.GlobalConcrete {
		gc[k] = v
	}
	for _, g := range a.opts.Exec.GlobalSymbolic {
		gc[g] = stateEnv["state_"+g]
	}
	opts := symexec.Options{
		Entry:          a.opts.Exec.Entry,
		Concrete:       true,
		Message:        msg,
		Inputs:         a.opts.Exec.Inputs,
		GlobalConcrete: gc,
	}
	res, err := symexec.Run(a.server, opts)
	if err != nil || len(res.States) == 0 {
		return false
	}
	return res.States[0].Status == symexec.StatusAccepted
}

// String renders a short human-readable summary of a report.
func (r TrojanReport) String() string {
	return fmt.Sprintf("trojan #%d: state %d, path len %d, example %v (accept=%v, non-client=%v)",
		r.Index, r.ServerStateID, r.PathLen, r.Concrete, r.VerifiedAccept, r.VerifiedNotClient)
}
