package core

import (
	"fmt"
	"time"

	"achilles/internal/expr"
	"achilles/internal/lang"
	"achilles/internal/solver"
	"achilles/internal/symexec"
)

// Mode selects which of the §3.3 optimisations are active; the §6.4 ablation
// compares them.
type Mode int

// Analysis modes.
const (
	// ModeOptimized is full Achilles: per-state live client sets,
	// differentFrom bulk dropping, and incremental Trojan checks that prune
	// server states which no Trojan message can reach.
	ModeOptimized Mode = iota
	// ModeNoDifferentFrom disables the differentFrom bulk drop; every live
	// client path is re-checked with the solver individually.
	ModeNoDifferentFrom
	// ModeAPosteriori mirrors the paper's non-optimised baseline: plain
	// symbolic execution of the server first, then symbolic constraint
	// differencing over the accepting paths afterwards.
	ModeAPosteriori
)

func (m Mode) String() string {
	switch m {
	case ModeOptimized:
		return "optimized"
	case ModeNoDifferentFrom:
		return "no-differentFrom"
	case ModeAPosteriori:
		return "a-posteriori"
	}
	return "mode?"
}

// AnalysisOptions configure the server phase.
type AnalysisOptions struct {
	Mode Mode
	// Exec configures the symbolic engine for the server run.
	Exec symexec.Options
	// Solver is shared by the engine and the Trojan checks; defaults to
	// solver.Default().
	Solver *solver.Solver
	// SkipConcreteVerification disables the concrete replay of each Trojan
	// example against the server model. It is forced on when the server
	// runs with symbolic local state, which cannot be replayed concretely.
	SkipConcreteVerification bool
}

// TrojanReport describes one discovered Trojan message class: an accepting
// server path that admits messages no client path can generate.
type TrojanReport struct {
	Index         int
	ServerStateID int
	PathLen       int           // branch decisions on the accepting path
	ServerPath    []*expr.Expr  // the accepting path constraints
	Witness       *expr.Expr    // symbolic Trojan class (pathS ∧ ⋀ negate(pathC))
	Concrete      []int64       // example Trojan message
	StateEnv      expr.Env      // concrete world for symbolic local state (§3.4)
	LiveClients   []int         // client paths still triggering the state
	Elapsed       time.Duration // since analysis start

	// VerifiedAccept: the concrete example was replayed against the server
	// model and accepted. VerifiedNotClient: no client path predicate is
	// satisfiable with the concrete example (the §4 soundness guard).
	VerifiedAccept    bool
	VerifiedNotClient bool
}

// TimelinePoint records cumulative discovery over time (Figure 10).
type TimelinePoint struct {
	Elapsed time.Duration
	Found   int
}

// LivePoint records the live client-path count per server path length
// (Figure 11).
type LivePoint struct {
	PathLen int
	Live    int
}

// Result is the outcome of a server analysis.
type Result struct {
	Trojans   []TrojanReport
	Timeline  []TimelinePoint
	LiveTrace []LivePoint

	AcceptingStates int // accepting states reached during exploration
	PrunedStates    int // states pruned because no Trojan could reach them
	FilteredReports int // accepting states whose Trojan query was unsat/unknown
	BulkDrops       int // client paths dropped via differentFrom (no solver call)
	BindKeyHits     int // triggerability verdicts shared via canonical bind keys
	Duration        time.Duration
	EngineStats     symexec.Stats
	SolverStats     solver.Stats
}

// liveData is the per-state analysis payload: the IDs of client path
// predicates that can still trigger the state.
type liveData struct {
	live []int
}

// CloneData implements symexec.StateData.
func (d *liveData) CloneData() symexec.StateData {
	return &liveData{live: append([]int{}, d.live...)}
}

// analysis carries the run context.
type analysis struct {
	server *lang.Unit
	pc     *ClientPredicate
	opts   AnalysisOptions
	sol    *solver.Solver
	res    *Result
	start  time.Time
}

// AnalyzeServer runs the Achilles server phase against a compiled server
// model and a preprocessed client predicate.
func AnalyzeServer(server *lang.Unit, pc *ClientPredicate, opts AnalysisOptions) (*Result, error) {
	if opts.Solver == nil {
		opts.Solver = solver.Default()
	}
	a := &analysis{
		server: server,
		pc:     pc,
		opts:   opts,
		sol:    opts.Solver,
		res:    &Result{},
		start:  time.Now(),
	}
	execOpts := opts.Exec
	execOpts.Solver = a.sol
	switch opts.Mode {
	case ModeAPosteriori:
		// Phase A: plain symbolic execution (classic S2E run).
		engRes, err := symexec.Run(server, execOpts)
		if err != nil {
			return nil, err
		}
		a.res.EngineStats = engRes.Stats
		// Phase B: symbolic constraint differencing over accepting paths.
		for _, st := range engRes.ByStatus(symexec.StatusAccepted) {
			a.res.AcceptingStates++
			live := a.liveFromScratch(st.Path)
			a.reportIfTrojan(st, live)
		}
	default:
		execOpts.Hooks = symexec.Hooks{
			OnBranch: a.onBranch,
			OnAccept: a.onAccept,
		}
		engRes, err := symexec.Run(server, execOpts)
		if err != nil {
			return nil, err
		}
		a.res.EngineStats = engRes.Stats
		a.res.PrunedStates = len(engRes.ByStatus(symexec.StatusPruned))
	}
	a.res.Duration = time.Since(a.start)
	a.res.SolverStats = a.sol.Stats()
	return a.res, nil
}

// ensureData lazily attaches the live set (all client paths) to a state.
func (a *analysis) ensureData(st *symexec.State) *liveData {
	if d, ok := st.Data.(*liveData); ok {
		return d
	}
	d := &liveData{live: make([]int, len(a.pc.Paths))}
	for i := range a.pc.Paths {
		d.live[i] = i
	}
	st.Data = d
	return d
}

// triggerable asks whether client path i can still trigger the server path.
func (a *analysis) triggerable(serverPath []*expr.Expr, i int) bool {
	cp := a.pc.Paths[i]
	q := make([]*expr.Expr, 0, len(serverPath)+len(cp.bind))
	q = append(q, serverPath...)
	q = append(q, cp.bind...)
	res, _ := a.sol.Check(q)
	return res != solver.Unsat
}

// liveFromScratch computes the live set for a path with no incremental
// state (a-posteriori mode).
func (a *analysis) liveFromScratch(serverPath []*expr.Expr) []int {
	var live []int
	byKey := map[string]bool{}
	for i := range a.pc.Paths {
		key := a.pc.Paths[i].bindKey
		ok, seen := byKey[key]
		if !seen {
			ok = a.triggerable(serverPath, i)
			byKey[key] = ok
		}
		if ok {
			live = append(live, i)
		}
	}
	return live
}

// singleFieldOf returns the message field index when every variable of cond
// belongs to exactly one message field, else -1. Used to gate the
// differentFrom bulk drop.
func (a *analysis) singleFieldOf(cond *expr.Expr) int {
	field := -1
	for _, v := range expr.Vars(cond) {
		f := a.pc.FieldIndexOfVar(v)
		if f < 0 {
			return -1 // touches non-message state
		}
		if field == -1 {
			field = f
		} else if field != f {
			return -1
		}
	}
	return field
}

// onBranch updates the live set and prunes states that no Trojan can reach.
func (a *analysis) onBranch(st *symexec.State, cond *expr.Expr) bool {
	d := a.ensureData(st)
	// differentFrom bulk drop (§3.3): when the new constraint touches a
	// single independent field f and pathC_i was already dropped by it,
	// every pathC_j with no extra values on field f (differentFrom = No)
	// must die with it — without consulting the solver.
	bulkField := -1
	if a.opts.Mode == ModeOptimized {
		bulkField = a.singleFieldOf(cond)
	}
	// Drop client paths that can no longer trigger this server path. Paths
	// with the same canonical message-relevant signature share one solver
	// verdict (flag-style variants admit exactly the same messages).
	var kept, dropped []int
	byKey := map[string]bool{}
	for _, j := range d.live {
		bulk := false
		if bulkField >= 0 {
			for _, i := range dropped {
				if a.pc.differentFrom[j][i][bulkField] == TriNo {
					bulk = true
					break
				}
			}
		}
		if bulk {
			a.res.BulkDrops++
			dropped = append(dropped, j)
			continue
		}
		key := a.pc.Paths[j].bindKey
		ok, seen := byKey[key]
		if !seen {
			ok = a.triggerable(st.Path, j)
			byKey[key] = ok
		} else {
			a.res.BindKeyHits++
		}
		if ok {
			kept = append(kept, j)
		} else {
			dropped = append(dropped, j)
		}
	}
	d.live = kept
	a.res.LiveTrace = append(a.res.LiveTrace, LivePoint{PathLen: len(st.Path), Live: len(kept)})
	// Incremental Trojan check: discard the state as soon as no Trojan
	// message can trigger it (Figure 7).
	return a.trojanPossible(st.Path, kept)
}

// trojanPossible checks sat(pathS ∧ ⋀ negate(pathC_i)) for the live set.
// Unknown answers keep the state alive (conservative). Duplicate negations
// (paths that admit identical message sets) collapse to one conjunct, which
// keeps the DPLL split count proportional to the number of *distinct*
// client predicates rather than the raw path count.
func (a *analysis) trojanPossible(serverPath []*expr.Expr, live []int) bool {
	q := make([]*expr.Expr, 0, len(serverPath)+len(live))
	q = append(q, serverPath...)
	seen := map[uint64][]*expr.Expr{}
	for _, i := range live {
		neg := a.pc.Paths[i].Negation()
		if neg.IsFalse() {
			// Negation fully abandoned: this client path can generate any
			// message on this server path; no Trojan is provable here.
			return false
		}
		if dupSeen(seen, neg) {
			continue
		}
		q = append(q, neg)
	}
	res, _ := a.sol.Check(q)
	return res != solver.Unsat
}

// dupSeen records neg in the hash-bucketed set, reporting prior presence.
func dupSeen(seen map[uint64][]*expr.Expr, neg *expr.Expr) bool {
	for _, e := range seen[neg.Hash()] {
		if expr.Equal(e, neg) {
			return true
		}
	}
	seen[neg.Hash()] = append(seen[neg.Hash()], neg)
	return false
}

// onAccept emits a Trojan report for an accepting state.
func (a *analysis) onAccept(st *symexec.State) {
	a.res.AcceptingStates++
	d := a.ensureData(st)
	a.reportIfTrojan(st, d.live)
}

// reportIfTrojan solves the final Trojan query for an accepting state and,
// when satisfiable, records a report with a verified concrete example.
func (a *analysis) reportIfTrojan(st *symexec.State, live []int) {
	q := make([]*expr.Expr, 0, len(st.Path)+len(live))
	q = append(q, st.Path...)
	witness := expr.AndAll(st.Path)
	seen := map[uint64][]*expr.Expr{}
	for _, i := range live {
		neg := a.pc.Paths[i].Negation()
		if neg.IsFalse() {
			a.res.FilteredReports++
			return
		}
		if dupSeen(seen, neg) {
			continue
		}
		q = append(q, neg)
		witness = expr.And(witness, neg)
	}
	res, model := a.sol.Check(q)
	if res != solver.Sat {
		a.res.FilteredReports++
		return
	}
	concrete := a.concreteMessage(model)
	stateEnv := a.stateWorld(model)
	rep := TrojanReport{
		Index:         len(a.res.Trojans),
		ServerStateID: st.ID,
		PathLen:       len(st.Path),
		ServerPath:    append([]*expr.Expr{}, st.Path...),
		Witness:       witness,
		Concrete:      concrete,
		StateEnv:      stateEnv,
		LiveClients:   append([]int{}, live...),
		Elapsed:       time.Since(a.start),
	}
	rep.VerifiedNotClient = a.verifyNotClient(concrete, stateEnv)
	if !a.opts.SkipConcreteVerification {
		rep.VerifiedAccept = a.verifyAccept(concrete, stateEnv)
	}
	if !rep.VerifiedNotClient {
		// The example is generatable by some client path: a false positive
		// (§4.1); drop it rather than report.
		a.res.FilteredReports++
		return
	}
	a.res.Trojans = append(a.res.Trojans, rep)
	a.res.Timeline = append(a.res.Timeline, TimelinePoint{
		Elapsed: rep.Elapsed,
		Found:   len(a.res.Trojans),
	})
}

// concreteMessage materialises the message fields from a model (absent
// fields default to zero).
func (a *analysis) concreteMessage(model expr.Env) []int64 {
	msg := make([]int64, a.pc.NumFields)
	for f := 0; f < a.pc.NumFields; f++ {
		if v, ok := model[a.pc.MsgVarName(f)]; ok {
			msg[f] = v
		}
	}
	return msg
}

// stateWorld extracts the concrete values of shared symbolic local state
// (variables the engine named "state_*") from a model.
func (a *analysis) stateWorld(model expr.Env) expr.Env {
	env := expr.Env{}
	for _, g := range a.opts.Exec.GlobalSymbolic {
		name := "state_" + g
		env[name] = model[name] // zero when unconstrained
	}
	return env
}

// verifyNotClient checks that no client path predicate admits the concrete
// message within the concrete state world.
func (a *analysis) verifyNotClient(msg []int64, stateEnv expr.Env) bool {
	var eqs []*expr.Expr
	for f := range msg {
		eqs = append(eqs, expr.Eq(a.pc.msgVar(f), expr.Const(msg[f])))
	}
	for name, v := range stateEnv {
		eqs = append(eqs, expr.Eq(expr.Var(name), expr.Const(v)))
	}
	for _, cp := range a.pc.Paths {
		q := make([]*expr.Expr, 0, len(cp.bind)+len(eqs))
		q = append(q, cp.bind...)
		q = append(q, eqs...)
		if res, _ := a.sol.Check(q); res == solver.Sat {
			return false
		}
	}
	return true
}

// verifyAccept replays the concrete message against the server model, with
// symbolic local state pinned to the discovered world.
func (a *analysis) verifyAccept(msg []int64, stateEnv expr.Env) bool {
	gc := map[string]int64{}
	for k, v := range a.opts.Exec.GlobalConcrete {
		gc[k] = v
	}
	for _, g := range a.opts.Exec.GlobalSymbolic {
		gc[g] = stateEnv["state_"+g]
	}
	opts := symexec.Options{
		Entry:          a.opts.Exec.Entry,
		Concrete:       true,
		Message:        msg,
		Inputs:         a.opts.Exec.Inputs,
		GlobalConcrete: gc,
	}
	res, err := symexec.Run(a.server, opts)
	if err != nil || len(res.States) == 0 {
		return false
	}
	return res.States[0].Status == symexec.StatusAccepted
}

// String renders a short human-readable summary of a report.
func (r TrojanReport) String() string {
	return fmt.Sprintf("trojan #%d: state %d, path len %d, example %v (accept=%v, non-client=%v)",
		r.Index, r.ServerStateID, r.PathLen, r.Concrete, r.VerifiedAccept, r.VerifiedNotClient)
}
