package core

import (
	"context"
	"time"

	"achilles/internal/lang"
	"achilles/internal/solver"
	"achilles/internal/symexec"
)

// Target bundles everything Achilles needs to analyse one system: the
// server model, the client models, and the message layout.
type Target struct {
	Name       string
	Server     *lang.Unit
	Clients    []ClientProgram
	FieldNames []string
	// Mask lists message field indices hidden from the analysis (§5.2).
	Mask []int
	// SharedState lists extra variable names shared between the client and
	// server runs (§3.4); "state_*" variables are always shared.
	SharedState []string
	// ServerExec / ClientExec configure the respective engine runs
	// (local-state modes, budgets...).
	ServerExec symexec.Options
	ClientExec symexec.Options
}

// RunResult is the outcome of a full two-phase Achilles run, with the phase
// timing split reported in §6.2 of the paper.
type RunResult struct {
	Clients  *ClientPredicate
	Analysis *Result

	ClientExtractTime time.Duration // phase 1: gathering PC
	PreprocessTime    time.Duration // predicate preprocessing (§3.3)
	ServerTime        time.Duration // phase 2: server analysis + Trojan search
}

// Total returns the end-to-end duration.
func (r *RunResult) Total() time.Duration {
	return r.ClientExtractTime + r.PreprocessTime + r.ServerTime
}

// Truncated reports whether either phase hit a MaxStates budget: a truncated
// server exploration yields a partial Trojan class set, and a truncated
// client extraction yields an under-approximated client predicate. Either
// way the run's class set must not be pinned as the complete corpus.
func (r *RunResult) Truncated() bool {
	return r.Clients.Truncated || r.Analysis.Truncated()
}

// Run executes both Achilles phases on a target. opts.Parallelism drives
// every phase: concurrent client extraction, parallel predicate
// preprocessing, and the worker-pool server exploration.
func Run(t Target, opts AnalysisOptions) (*RunResult, error) {
	return RunCtx(context.Background(), t, opts)
}

// RunCtx is Run under a context; cancellation (or a deadline) aborts
// whichever phase is in flight. The error contract follows the phase the
// cancellation struck:
//
//   - during client extraction or preprocessing there is no usable result
//     yet — RunCtx returns (nil, ctx.Err());
//   - during the server phase the partial analysis is real — RunCtx returns
//     the RunResult (Truncated() reports true) together with ctx.Err(), so
//     callers can both show what was found and know the run was cut short.
//
// An opts.FirstTrojan early exit is not a cancellation: the result is
// Truncated but err is nil.
func RunCtx(ctx context.Context, t Target, opts AnalysisOptions) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Solver == nil {
		opts.Solver = solver.Default()
	}
	out := &RunResult{}

	opts.Observer.phase(PhaseExtract)
	t0 := time.Now()
	pc, err := ExtractClientPredicateCtx(ctx, t.Clients, ExtractOptions{
		Exec:           t.ClientExec,
		FieldNames:     t.FieldNames,
		Mask:           t.Mask,
		SharedState:    t.SharedState,
		Solver:         opts.Solver,
		SkipPreprocess: true,
		Parallelism:    opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	out.ClientExtractTime = time.Since(t0)

	opts.Observer.phase(PhasePreprocess)
	t1 := time.Now()
	pc.PreprocessParallelCtx(ctx, opts.Solver, opts.Parallelism)
	out.PreprocessTime = time.Since(t1)
	out.Clients = pc
	if err := ctx.Err(); err != nil {
		// A half-preprocessed predicate silently suppresses Trojans (missing
		// negation disjuncts read as "abandoned"); never analyse with one.
		return nil, err
	}

	opts.Observer.phase(PhaseServer)
	t2 := time.Now()
	opts.Exec = t.ServerExec
	res, err := AnalyzeServerCtx(ctx, t.Server, pc, opts)
	if res == nil {
		return nil, err
	}
	out.ServerTime = time.Since(t2)
	out.Analysis = res
	return out, err
}
