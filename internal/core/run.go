package core

import (
	"time"

	"achilles/internal/lang"
	"achilles/internal/solver"
	"achilles/internal/symexec"
)

// Target bundles everything Achilles needs to analyse one system: the
// server model, the client models, and the message layout.
type Target struct {
	Name       string
	Server     *lang.Unit
	Clients    []ClientProgram
	FieldNames []string
	// Mask lists message field indices hidden from the analysis (§5.2).
	Mask []int
	// SharedState lists extra variable names shared between the client and
	// server runs (§3.4); "state_*" variables are always shared.
	SharedState []string
	// ServerExec / ClientExec configure the respective engine runs
	// (local-state modes, budgets...).
	ServerExec symexec.Options
	ClientExec symexec.Options
}

// RunResult is the outcome of a full two-phase Achilles run, with the phase
// timing split reported in §6.2 of the paper.
type RunResult struct {
	Clients  *ClientPredicate
	Analysis *Result

	ClientExtractTime time.Duration // phase 1: gathering PC
	PreprocessTime    time.Duration // predicate preprocessing (§3.3)
	ServerTime        time.Duration // phase 2: server analysis + Trojan search
}

// Total returns the end-to-end duration.
func (r *RunResult) Total() time.Duration {
	return r.ClientExtractTime + r.PreprocessTime + r.ServerTime
}

// Truncated reports whether either phase hit a MaxStates budget: a truncated
// server exploration yields a partial Trojan class set, and a truncated
// client extraction yields an under-approximated client predicate. Either
// way the run's class set must not be pinned as the complete corpus.
func (r *RunResult) Truncated() bool {
	return r.Clients.Truncated || r.Analysis.Truncated()
}

// Run executes both Achilles phases on a target. opts.Parallelism drives
// every phase: concurrent client extraction, parallel predicate
// preprocessing, and the worker-pool server exploration.
func Run(t Target, opts AnalysisOptions) (*RunResult, error) {
	if opts.Solver == nil {
		opts.Solver = solver.Default()
	}
	out := &RunResult{}

	t0 := time.Now()
	pc, err := ExtractClientPredicate(t.Clients, ExtractOptions{
		Exec:           t.ClientExec,
		FieldNames:     t.FieldNames,
		Mask:           t.Mask,
		SharedState:    t.SharedState,
		Solver:         opts.Solver,
		SkipPreprocess: true,
		Parallelism:    opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	out.ClientExtractTime = time.Since(t0)

	t1 := time.Now()
	pc.PreprocessParallel(opts.Solver, opts.Parallelism)
	out.PreprocessTime = time.Since(t1)
	out.Clients = pc

	t2 := time.Now()
	opts.Exec = t.ServerExec
	res, err := AnalyzeServer(t.Server, pc, opts)
	if err != nil {
		return nil, err
	}
	out.ServerTime = time.Since(t2)
	out.Analysis = res
	return out, nil
}
