package core

import "time"

// Analysis phases reported to observers, in pipeline order.
const (
	PhaseExtract    = "extract"    // phase 1: gathering PC from the clients
	PhasePreprocess = "preprocess" // predicate preprocessing (§3.3)
	PhaseServer     = "server"     // phase 2: server exploration + Trojan search
)

// Observer streams analysis events to the caller while a run is in flight.
// Any callback may be nil. Callbacks are invoked synchronously from analysis
// goroutines — OnTrojan possibly from several workers at once — so they must
// be safe for concurrent use and must not block: a slow consumer stalls the
// exploration itself. Callers that need buffering (e.g. a channel-based
// event stream) should do it on their side of the callback.
type Observer struct {
	// OnPhase fires when the pipeline enters a new phase (PhaseExtract,
	// PhasePreprocess, PhaseServer).
	OnPhase func(phase string)
	// OnTrojan fires for every Trojan report the moment it is confirmed,
	// during the exploration — not after it. The report is provisional in
	// exactly one way: Index is the discovery order at emission time, while
	// the final result list is re-indexed in canonical fork-tree order (see
	// Result.Trojans). Everything else — witness, concrete example, state
	// world, verification flags — is final.
	OnTrojan func(TrojanReport)
	// OnProgress fires periodically (see AnalysisOptions.ProgressInterval)
	// during the server phase, and once more when the phase completes.
	OnProgress func(Progress)
}

// phase invokes OnPhase if set.
func (o Observer) phase(name string) {
	if o.OnPhase != nil {
		o.OnPhase(name)
	}
}

// trojan invokes OnTrojan if set.
func (o Observer) trojan(tr TrojanReport) {
	if o.OnTrojan != nil {
		o.OnTrojan(tr)
	}
}

// Progress is a periodic snapshot of a running server analysis.
type Progress struct {
	// Phase is the pipeline phase the snapshot describes (PhaseServer for
	// periodic ticks).
	Phase string
	// Elapsed is the time since the server analysis started.
	Elapsed time.Duration
	// StatesExplored counts branch constraints processed so far — the live
	// proxy for exploration volume (terminal-state counts are only merged
	// when the run ends).
	StatesExplored int
	// FrontierDepth is the deepest branch decision seen so far.
	FrontierDepth int
	// Trojans is the number of Trojan reports confirmed so far.
	Trojans int
	// SolverQueries and CacheHitRate snapshot the shared solver: queries
	// issued in total and the fraction answered from the verdict cache.
	// When the solver is shared beyond this run (campaigns), both are
	// cumulative across everything it has seen.
	SolverQueries int
	CacheHitRate  float64
}
