package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// This file defines the stable, machine-readable identity of analysis
// results: canonical class lines (the golden-corpus format), content
// fingerprints for diffing persisted audit bundles, and the flat counter
// view consumed by campaign manifests.

// stateSuffix renders the §3.4 state world of a report as a canonical
// " state{k=v ...}" suffix (empty for concrete-state targets).
func (r TrojanReport) stateSuffix() string {
	if len(r.StateEnv) == 0 {
		return ""
	}
	keys := make([]string, 0, len(r.StateEnv))
	for k := range r.StateEnv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, r.StateEnv[k])
	}
	return " state{" + strings.Join(parts, " ") + "}"
}

// ClassID is the symbolic identity of a Trojan class: the witness formula
// plus the state world it lives in. Two reports with the same ClassID
// describe the same vulnerability class even if the solver picked a
// different concrete example or a verification verdict flipped.
func (r TrojanReport) ClassID() string {
	return r.Witness.String() + r.stateSuffix()
}

// ClassLine is the canonical one-line rendering of a Trojan class: the
// symbolic witness, the concrete example, the state world and the combined
// verification verdict. Elapsed times, state IDs and report indices are
// deliberately excluded — they are timing- or scheduling-derived. This is
// the exact format of the golden corpus files and of the class lines stored
// in audit bundles, so the two can be compared byte for byte.
func (r TrojanReport) ClassLine() string {
	return fmt.Sprintf("%s @ %v%s verified=%v",
		r.Witness, r.Concrete, r.stateSuffix(), r.VerifiedAccept && r.VerifiedNotClient)
}

// Fingerprint is a stable content hash of the class line, suitable as a
// compact key for bundle diffing: it changes exactly when the class line
// changes (witness, example, state world or verification verdict).
func (r TrojanReport) Fingerprint() string {
	sum := sha256.Sum256([]byte(r.ClassLine()))
	return hex.EncodeToString(sum[:8])
}

// ClassLines renders the run's full Trojan class set as sorted canonical
// lines — the golden-corpus representation of a run.
func ClassLines(run *RunResult) []string {
	lines := make([]string, 0, len(run.Analysis.Trojans))
	for _, tr := range run.Analysis.Trojans {
		lines = append(lines, tr.ClassLine())
	}
	sort.Strings(lines)
	return lines
}

// Counters is a flat, stable-keyed view of the integer counters a run
// produces. The map form (rather than a struct) keeps persisted manifests
// forward-compatible: consumers diff and render whatever keys are present.
type Counters map[string]int64

// Counters flattens the analysis result's counters, the engine statistics
// and a snapshot of the solver statistics. Note that when a solver is shared
// across runs (as in a campaign) the solver_* values are cumulative across
// everything the solver has seen, not per-run.
func (r *Result) Counters() Counters {
	c := Counters{
		"accepting_states":    int64(r.AcceptingStates),
		"pruned_states":       int64(r.PrunedStates),
		"filtered_reports":    int64(r.FilteredReports),
		"bulk_drops":          int64(r.BulkDrops),
		"bindkey_hits":        int64(r.BindKeyHits),
		"trojan_classes":      int64(len(r.Trojans)),
		"engine_states":       int64(r.EngineStats.States),
		"engine_forks":        int64(r.EngineStats.Forks),
		"engine_steps":        int64(r.EngineStats.Steps),
		"engine_solver_calls": int64(r.EngineStats.SolverCalls),
		"engine_truncated":    boolCounter(r.EngineStats.Truncated),
		"solver_queries":      int64(r.SolverStats.Queries),
		"solver_cache_hits":   int64(r.SolverStats.CacheHits),
		"solver_cache_misses": int64(r.SolverStats.CacheMisses),
		"solver_unknowns":     int64(r.SolverStats.Unknowns),
	}
	return c
}

// boolCounter renders a flag into the flat counter map (0 or 1).
func boolCounter(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Counters flattens the counters of a full two-phase run: the analysis
// counters plus the client-predicate shape and preprocessing work.
func (r *RunResult) Counters() Counters {
	c := r.Analysis.Counters()
	c["truncated"] = boolCounter(r.Truncated())
	c["client_paths"] = int64(len(r.Clients.Paths))
	ps := r.Clients.PreprocessStats
	c["preprocess_raw_paths"] = int64(ps.RawPaths)
	c["preprocess_deduped_paths"] = int64(ps.DedupedPaths)
	c["preprocess_disjuncts"] = int64(ps.Disjuncts)
	c["preprocess_overlap_dropped"] = int64(ps.OverlapDropped)
	return c
}

// ParseMode resolves a mode name from the command line or a manifest.
// It accepts the canonical Mode.String() spellings plus the all-lowercase
// CLI forms; the empty string selects ModeOptimized.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "optimized", "":
		return ModeOptimized, nil
	case "no-differentfrom", "no-differentFrom":
		return ModeNoDifferentFrom, nil
	case "a-posteriori":
		return ModeAPosteriori, nil
	}
	return 0, fmt.Errorf("unknown mode %q (valid: optimized, no-differentfrom, a-posteriori)", name)
}
