package dispatch

// Protocol-level Serve coverage: drive the worker side of the wire by hand
// and assert on the exact message traffic — the half of the contract a
// coordinator (this repo's or a reimplementation's) depends on.

import (
	"encoding/json"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"

	"achilles/internal/campaign"
	"achilles/internal/core"
	"achilles/internal/solver"
	"achilles/internal/testutil"

	// Populate the registry: dispatch tests run real (cheap) targets.
	_ "achilles/internal/protocols"
)

// handDrivenWorker runs Serve over pipes and hands back the coordinator-side
// wire plus Serve's eventual return value.
func handDrivenWorker(t *testing.T, cfg WorkerConfig) (*wire, io.Closer, <-chan error) {
	t.Helper()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		defer outW.Close()
		errc <- Serve(inR, outW, cfg)
	}()
	t.Cleanup(func() { inW.Close() })
	return newWire(outR, inW), inW, errc
}

func mustRead(t *testing.T, w *wire) message {
	t.Helper()
	m, err := w.read()
	if err != nil {
		t.Fatalf("reading from worker: %v", err)
	}
	return m
}

// TestServeProtocolExchange walks one full conversation: hello, a job
// assignment streaming back cache/report/done, a bad-mode assignment failing
// softly, and a clean shutdown.
func TestServeProtocolExchange(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	w, _, errc := handDrivenWorker(t, WorkerConfig{Solver: solver.Default()})

	if err := checkHello(mustRead(t, w)); err != nil {
		t.Fatal(err)
	}
	if err := w.write(message{Type: msgJob, ID: 7, Target: "kv", Mode: "optimized", Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	var reports int
	var done message
	var sawCache bool
	for done.Type == "" {
		switch m := mustRead(t, w); m.Type {
		case msgReport:
			if m.ID != 7 || m.Report == nil {
				t.Fatalf("malformed report message: %+v", m)
			}
			reports++
		case msgDone:
			if m.ID != 7 {
				t.Fatalf("done for wrong assignment: %+v", m)
			}
			done = m
		case msgCache:
			if len(m.Entries) == 0 {
				t.Fatal("empty cache delta")
			}
			sawCache = true
		case msgProgress:
			// Optional ticks; frequency is the engine's business.
		default:
			t.Fatalf("unexpected message type %q", m.Type)
		}
	}
	if done.Run == nil || done.Run.Error != "" {
		t.Fatalf("job failed on the worker: %+v", done.Run)
	}
	if done.Run.Classes != reports {
		t.Fatalf("manifest says %d classes, worker streamed %d reports", done.Run.Classes, reports)
	}
	if !sawCache {
		t.Fatal("worker learned verdicts but shipped no delta")
	}

	// An unknown mode must fail the assignment, not the worker.
	if err := w.write(message{Type: msgJob, ID: 8, Target: "kv", Mode: "no-such-mode"}); err != nil {
		t.Fatal(err)
	}
	m := mustRead(t, w)
	if m.Type != msgDone || m.ID != 8 || m.Run == nil || !strings.Contains(m.Run.Error, "bad mode") {
		t.Fatalf("want bad-mode done message, got %+v", m)
	}

	// Unknown downlink types are ignored for forward compatibility.
	if err := w.write(message{Type: "future-extension"}); err != nil {
		t.Fatal(err)
	}
	if err := w.write(message{Type: msgShutdown}); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("clean shutdown returned %v", err)
	}
}

// TestServeReportsMatchLocalRun: the report stream on the wire is the exact
// canonical stream the local engine produces — the per-job byte-level half
// of the distributed determinism argument.
func TestServeReportsMatchLocalRun(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	j := campaign.Job{Target: "kv", Mode: core.ModeOptimized}
	_, wantReports := campaign.ExecuteJob(t.Context(), j, 1, solver.Default(), core.Observer{})

	w, _, errc := handDrivenWorker(t, WorkerConfig{Solver: solver.Default()})
	if err := checkHello(mustRead(t, w)); err != nil {
		t.Fatal(err)
	}
	if err := w.write(message{Type: msgJob, ID: 1, Target: j.Target, Mode: j.Mode.String(), Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	var got []campaign.Report
	for {
		m := mustRead(t, w)
		if m.Type == msgDone {
			break
		}
		if m.Type == msgReport {
			got = append(got, *m.Report)
		}
	}
	if len(got) != len(wantReports) {
		t.Fatalf("wire carried %d reports, local run produced %d", len(got), len(wantReports))
	}
	for i := range got {
		a, _ := json.Marshal(got[i])
		b, _ := json.Marshal(wantReports[i])
		if string(a) != string(b) {
			t.Fatalf("report %d drifted over the wire:\n%s\n%s", i, a, b)
		}
	}
	w.write(message{Type: msgShutdown})
	<-errc
}

// TestServeMalformedStream: a typeless message is a protocol error and
// Serve says so; EOF mid-stream is a normal coordinator hangup and is not.
func TestServeMalformedStream(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	w, _, errc := handDrivenWorker(t, WorkerConfig{Solver: solver.Default()})
	checkHello(mustRead(t, w))
	if err := w.write(message{}); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "without a type") {
		t.Fatalf("want typeless-message error, got %v", err)
	}

	w2, closer, errc2 := handDrivenWorker(t, WorkerConfig{Solver: solver.Default()})
	checkHello(mustRead(t, w2))
	closer.Close()
	if err := <-errc2; err != nil {
		t.Fatalf("plain EOF must be a clean exit, got %v", err)
	}
}

// TestServeCrashHook: the fault-injection hook fires on exactly the
// configured job key and claims the sentinel exclusively — the second
// worker assigned the same job runs it to completion.
func TestServeCrashHook(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	sentinel := t.TempDir() + "/claimed"
	cfg := func() WorkerConfig {
		return WorkerConfig{
			Solver:    solver.Default(),
			CrashJob:  "kv/optimized",
			CrashOnce: sentinel,
			exit:      func(int) { runtime.Goexit() },
		}
	}

	w, _, errc := handDrivenWorker(t, cfg())
	checkHello(mustRead(t, w))
	// A non-matching job runs normally even with the hook armed.
	w.write(message{Type: msgJob, ID: 1, Target: "kv-fixed", Mode: "optimized", Parallelism: 1})
	for m := mustRead(t, w); m.Type != msgDone; m = mustRead(t, w) {
	}
	// The matching job kills the worker mid-protocol: no done, just EOF.
	w.write(message{Type: msgJob, ID: 2, Target: "kv", Mode: "optimized", Parallelism: 1})
	if _, err := w.read(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF from crashed worker, got %v", err)
	}
	select {
	case <-errc:
		t.Fatal("Serve returned normally from a simulated crash")
	case <-time.After(50 * time.Millisecond):
	}

	// The sentinel is spent: a replacement worker runs the same job fine.
	w2, _, errc2 := handDrivenWorker(t, cfg())
	checkHello(mustRead(t, w2))
	w2.write(message{Type: msgJob, ID: 3, Target: "kv", Mode: "optimized", Parallelism: 1})
	var done message
	for done = mustRead(t, w2); done.Type != msgDone; done = mustRead(t, w2) {
	}
	if done.Run == nil || done.Run.Error != "" {
		t.Fatalf("requeued job failed on the second worker: %+v", done.Run)
	}
	w2.write(message{Type: msgShutdown})
	<-errc2
}
