// Package dispatch is the distributed execution backend for campaigns: a
// coordinator that shards a campaign's job graph across worker subprocesses
// and merges their results into one bundle that is ContentHash-identical to
// a single-process run.
//
// The shape follows the distributed-detection literature (autonomous
// analyzers over local shards, a coordinator aggregating evidence) mapped
// onto Achilles' job graph:
//
//   - the coordinator partitions jobs by input fingerprint — the stable
//     shard key introduced for incremental audits — so every job has a
//     deterministic "home" worker, and lets any idle worker steal a job
//     homed elsewhere rather than idling behind a straggler;
//   - coordinator and workers speak a versioned JSONL protocol over the
//     worker's stdin/stdout: job assignments and cache deltas flow down,
//     report streams, progress ticks, learned cache deltas and completion
//     manifests flow up. stderr is passed through for human eyes;
//   - a worker that crashes or closes its pipes mid-job has that job
//     requeued on another live worker; only when every worker is gone does
//     a job fail, with the pool's demise recorded in its manifest entry;
//   - verdict deltas learned by one worker are rebroadcast to all others
//     (and merged into the coordinator's solver, so -cache persists them):
//     a verdict proved anywhere is reused everywhere.
//
// Determinism: a job's manifest entry and report stream are a pure function
// of its inputs (the core contract pinned since PR 1 — class sets are
// parallelism-independent, report order is canonical). Which process runs a
// job, in which order, with which cache warmth therefore cannot change the
// bundle's stable content, so campaigns at -workers 1, 2 and N hash
// identically to the in-process engine. The wire carries the same
// structures the bundle persists (campaign.RunManifest, campaign.Report,
// solver.CacheEntry), re-marshalled by the coordinator into the bundle's
// canonical layout — bytes on disk never depend on a worker's encoder.
package dispatch

import (
	"encoding/json"
	"fmt"
	"io"

	"achilles/internal/campaign"
	"achilles/internal/solver"
)

// ProtoVersion is the wire-protocol revision. A coordinator refuses a
// worker that greets with a different revision — mixing protocol dialects
// mid-campaign could drop or misroute results, which is strictly worse than
// failing fast at spawn time.
const ProtoVersion = 1

// Message types, in the order they typically flow.
const (
	// msgHello is the worker's first line: protocol + engine revisions.
	msgHello = "hello"
	// msgJob assigns one job to a worker (coordinator → worker).
	msgJob = "job"
	// msgProgress is a live tick for the job in flight (worker → coordinator).
	msgProgress = "progress"
	// msgReport carries one Trojan report of the completed job, in canonical
	// order (worker → coordinator).
	msgReport = "report"
	// msgDone completes a job with its manifest entry (worker → coordinator).
	msgDone = "done"
	// msgCache carries verdict-cache deltas (both directions).
	msgCache = "cache"
	// msgShutdown asks the worker to exit cleanly (coordinator → worker).
	msgShutdown = "shutdown"
)

// message is the single JSONL envelope both directions share. One struct
// instead of a type hierarchy: the field set is small, encoding/json elides
// empty fields, and a worker built from a different tree fails the hello
// handshake before any sparse decoding could misroute a field.
type message struct {
	Type string `json:"t"`

	// hello
	Proto    int    `json:"proto,omitempty"`
	Campaign string `json:"campaign,omitempty"` // campaign.Version
	Solver   string `json:"solver,omitempty"`   // solver.Version

	// job / report / progress / done routing. IDs start at 1 so a zero ID
	// always means "malformed".
	ID int `json:"id,omitempty"`

	// job assignment
	Target      string `json:"target,omitempty"`
	Mode        string `json:"mode,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`

	// progress
	Classes int `json:"classes,omitempty"`
	States  int `json:"states,omitempty"`

	// report / done payloads
	Report *campaign.Report      `json:"report,omitempty"`
	Run    *campaign.RunManifest `json:"run,omitempty"`

	// cache delta
	Entries []solver.CacheEntry `json:"entries,omitempty"`
}

// wire wraps one side of a JSONL pipe pair. Writes are line-atomic under a
// caller-held mutex (see sender); reads are single-owner (the reader
// goroutine).
type wire struct {
	dec *json.Decoder
	enc *json.Encoder
}

func newWire(r io.Reader, w io.Writer) *wire {
	return &wire{dec: json.NewDecoder(r), enc: json.NewEncoder(w)}
}

func (w *wire) read() (message, error) {
	var m message
	if err := w.dec.Decode(&m); err != nil {
		return message{}, err
	}
	if m.Type == "" {
		return message{}, fmt.Errorf("dispatch: message without a type")
	}
	return m, nil
}

func (w *wire) write(m message) error {
	return w.enc.Encode(m)
}

// helloMessage is the greeting every worker opens with.
func helloMessage() message {
	return message{Type: msgHello, Proto: ProtoVersion, Campaign: campaign.Version, Solver: solver.Version}
}

// checkHello validates a worker greeting against this process's revisions.
func checkHello(m message) error {
	if m.Type != msgHello {
		return fmt.Errorf("dispatch: worker opened with %q, want %q", m.Type, msgHello)
	}
	if m.Proto != ProtoVersion || m.Campaign != campaign.Version || m.Solver != solver.Version {
		return fmt.Errorf("dispatch: version mismatch: worker speaks proto %d / %s / %s, coordinator speaks proto %d / %s / %s",
			m.Proto, m.Campaign, m.Solver, ProtoVersion, campaign.Version, solver.Version)
	}
	return nil
}
