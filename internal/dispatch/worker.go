package dispatch

// The worker half of the protocol: a loop over stdin/stdout that executes
// assigned jobs with this process's own solver and streams results back.
// cmd/achilles-worker wraps Serve around os.Stdin/os.Stdout; tests run it
// in-process over pipes.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"achilles/internal/campaign"
	"achilles/internal/core"
	"achilles/internal/solver"
)

// WorkerConfig configures one Serve loop.
type WorkerConfig struct {
	// Solver is the worker's verdict-cache-bearing solver; nil means
	// solver.Default(). Deltas received from the coordinator merge into it
	// (marked for first-use re-verification), and verdicts it learns are
	// shipped back after every job.
	Solver *solver.Solver

	// CrashJob and CrashOnce are the crash-recovery fault injection used by
	// the requeue tests and the CI distributed-smoke job: when a job whose
	// Key() equals CrashJob is assigned AND the CrashOnce sentinel file can
	// be created exclusively (O_EXCL — so exactly one worker across the
	// fleet crashes, and a requeue of the same job elsewhere proceeds), the
	// worker terminates the whole process mid-protocol via exit(1),
	// simulating an abrupt kill. Empty means disabled. Test hook only:
	// wired from ACHILLES_WORKER_CRASH_JOB / ACHILLES_WORKER_CRASH_ONCE by
	// cmd/achilles-worker, never set in production.
	CrashJob  string
	CrashOnce string

	// exit overrides os.Exit for the crash hook (tests).
	exit func(int)
}

// Serve speaks the worker side of the dispatch protocol over in/out until
// the coordinator sends shutdown or closes the pipe. It returns nil on a
// clean shutdown or EOF and an error on a malformed stream. Jobs execute
// one at a time — the coordinator's per-worker parallelism grant governs
// intra-job concurrency — while the pipe is drained concurrently, so cache
// broadcasts are merged (and a dead coordinator noticed) mid-job.
func Serve(in io.Reader, out io.Writer, cfg WorkerConfig) error {
	sol := cfg.Solver
	if sol == nil {
		sol = solver.Default()
	}
	exit := cfg.exit
	if exit == nil {
		exit = os.Exit
	}
	w := &workerState{
		wire: newWire(in, out),
		sol:  sol,
		sent: map[string]bool{},
	}
	if err := w.send(helloMessage()); err != nil {
		return fmt.Errorf("dispatch: worker hello: %w", err)
	}

	// The reader goroutine owns stdin: jobs flow to the execution loop,
	// cache deltas merge immediately (the solver is concurrency-safe), and
	// EOF/shutdown cancels the context so an in-flight exploration stops
	// instead of orphaning a full-speed analysis under a dead coordinator.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make(chan message)
	var readErr error
	go func() {
		defer cancel()
		defer close(jobs)
		for {
			m, err := w.wire.read()
			if err != nil {
				if !errors.Is(err, io.EOF) && ctx.Err() == nil {
					readErr = err
				}
				return
			}
			switch m.Type {
			case msgJob:
				select {
				case jobs <- m:
				case <-ctx.Done():
					return
				}
			case msgCache:
				w.mergeDelta(m.Entries)
			case msgShutdown:
				return
			default:
				// Unknown message types are ignored for forward
				// compatibility — the hello handshake already pinned the
				// revisions that matter.
			}
		}
	}()

	for m := range jobs {
		mode, err := core.ParseMode(m.Mode)
		if err != nil {
			w.send(message{Type: msgDone, ID: m.ID, Run: &campaign.RunManifest{
				Target: m.Target, Mode: m.Mode, Error: fmt.Sprintf("worker: bad mode %q: %v", m.Mode, err),
			}})
			continue
		}
		j := campaign.Job{Target: m.Target, Mode: mode}
		if cfg.CrashJob != "" && j.Key() == cfg.CrashJob && claimCrashOnce(cfg.CrashOnce) {
			exit(1)
		}
		w.runJob(ctx, m.ID, j, m.Parallelism)
	}
	return readErr
}

// claimCrashOnce atomically claims the crash sentinel; only the claimant
// crashes, so a requeued job survives on the next worker.
func claimCrashOnce(path string) bool {
	if path == "" {
		return true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// workerState is the mutable half a Serve loop threads through its
// goroutines.
type workerState struct {
	wire *wire
	sol  *solver.Solver

	wmu sync.Mutex // serialises writes: job results vs progress callbacks

	smu  sync.Mutex      // guards sent
	sent map[string]bool // cache keys already shipped or received
}

func (w *workerState) send(m message) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.wire.write(m)
}

// mergeDelta folds a coordinator broadcast into the local solver. Received
// keys count as "sent": echoing them back would cost bandwidth for entries
// the coordinator already has.
func (w *workerState) mergeDelta(entries []solver.CacheEntry) {
	if len(entries) == 0 {
		return
	}
	w.smu.Lock()
	for _, e := range entries {
		w.sent[e.Key] = true
	}
	w.smu.Unlock()
	// Invalid entries reject the batch; a coordinator speaking this proto
	// never produces them, and a worker must not die over a bad delta.
	w.sol.ImportCache(entries)
}

// delta returns the verdicts learned since the last call.
func (w *workerState) delta() []solver.CacheEntry {
	all, err := w.sol.ExportCache()
	if err != nil {
		return nil
	}
	w.smu.Lock()
	defer w.smu.Unlock()
	var fresh []solver.CacheEntry
	for _, e := range all {
		if !w.sent[e.Key] {
			w.sent[e.Key] = true
			fresh = append(fresh, e)
		}
	}
	return fresh
}

// runJob executes one assignment and streams the outcome: progress ticks
// while exploring, then the learned cache delta, the canonical report
// stream, and the completion manifest. The delta goes first so the
// coordinator can warm the rest of the fleet before it even finishes
// persisting this job's reports.
func (w *workerState) runJob(ctx context.Context, id int, j campaign.Job, parallelism int) {
	var classes atomic.Int64
	obs := core.Observer{
		OnTrojan: func(core.TrojanReport) { classes.Add(1) },
		OnProgress: func(p core.Progress) {
			// Best-effort: a lost progress tick must not fail the job.
			w.send(message{Type: msgProgress, ID: id, States: p.StatesExplored, Classes: int(classes.Load())})
		},
	}
	rm, reports := campaign.ExecuteJob(ctx, j, parallelism, w.sol, obs)
	if d := w.delta(); len(d) > 0 {
		w.send(message{Type: msgCache, Entries: d})
	}
	for i := range reports {
		if err := w.send(message{Type: msgReport, ID: id, Report: &reports[i]}); err != nil {
			return // pipe gone; the coordinator has already requeued us
		}
	}
	w.send(message{Type: msgDone, ID: id, Run: &rm})
}
