package dispatch

// The coordinator half of the protocol: spawn N workers, validate their
// hellos, shard the job graph by fingerprint, and merge results + verdict
// deltas back into one campaign. It implements campaign.Executor, so the
// campaign engine drives it exactly like the in-process pool.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"context"

	"achilles/internal/campaign"
	"achilles/internal/solver"
)

// Config configures a worker fleet.
type Config struct {
	// Workers is the number of worker subprocesses to spawn (>= 1).
	Workers int

	// Command is the argv used to spawn each worker — typically
	// {"achilles-worker"}. Each worker speaks the dispatch protocol on its
	// stdin/stdout; stderr passes through to Stderr.
	Command []string

	// Solver is the coordinator-side solver. Its verdict cache seeds every
	// worker at spawn (so `-cache` warm-starts the fleet), and deltas the
	// workers learn merge back into it (so `-cache` persists fleet-learned
	// verdicts). Nil means solver.Default().
	Solver *solver.Solver

	// Stderr receives the workers' stderr; nil means os.Stderr.
	Stderr io.Writer

	// OnProgress, when non-nil, receives live progress ticks relayed from
	// workers: the running job's key plus its cumulative explored-state and
	// Trojan-class counts. Called from reader goroutines — must be
	// concurrency-safe and quick.
	OnProgress func(job string, states, classes int)

	// spawn overrides subprocess creation (tests run Serve in-process over
	// pipes).
	spawn func(i int) (workerIO, error)
}

// workerIO is one spawned worker from the coordinator's side: a pipe pair
// plus lifecycle hooks. The process form closes over exec.Cmd; tests provide
// in-process equivalents.
type workerIO struct {
	in   io.WriteCloser // worker's stdin (coordinator writes)
	out  io.Reader      // worker's stdout (coordinator reads)
	wait func() error   // reap the worker; called exactly once, by its reader
	kill func()         // force termination when shutdown is ignored
}

func spawnProc(cfg Config) func(int) (workerIO, error) {
	return func(int) (workerIO, error) {
		cmd := exec.Command(cfg.Command[0], cfg.Command[1:]...)
		cmd.Stderr = cfg.Stderr
		if cmd.Stderr == nil {
			cmd.Stderr = os.Stderr
		}
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return workerIO{}, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return workerIO{}, err
		}
		if err := cmd.Start(); err != nil {
			return workerIO{}, err
		}
		return workerIO{
			in:   stdin,
			out:  stdout,
			wait: cmd.Wait,
			kill: func() { cmd.Process.Kill() },
		}, nil
	}
}

// workerProc is the coordinator's view of one worker.
type workerProc struct {
	id   int
	io   workerIO
	wire *wire

	wmu sync.Mutex // serialises writes to the worker's stdin

	mu       sync.Mutex
	inflight map[int]*inflightJob

	exited chan struct{} // closed by the reader once the worker is reaped
}

func (w *workerProc) send(m message) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.wire.write(m)
}

// inflightJob accumulates one assignment's result stream until msgDone (or
// the worker's death) closes done.
type inflightJob struct {
	key     string
	done    chan struct{}
	rm      campaign.RunManifest
	reports []campaign.Report
	died    bool
}

var (
	errAllDead    = errors.New("dispatch: every worker has exited")
	errWorkerDied = errors.New("dispatch: worker died mid-job")
)

// Coordinator is the distributed campaign.Executor: jobs negotiated through
// it run on worker subprocesses, sharded by input fingerprint with
// work stealing, crash requeue and verdict-delta exchange.
type Coordinator struct {
	cfg     Config
	sol     *solver.Solver
	workers []*workerProc

	mu     sync.Mutex
	cond   *sync.Cond
	busy   []bool // worker i has an assignment in flight
	dead   []bool // worker i has exited
	home   map[string]int
	nextID int
	closed bool

	smu  sync.Mutex
	seen map[string]bool // cache keys already held or broadcast
}

// Start spawns the worker fleet and validates every worker's hello
// handshake; any spawn or handshake failure tears the whole fleet down and
// reports the error — a campaign must not silently run on a partial or
// version-skewed pool. The coordinator's solver cache (if any) is pushed to
// every worker before the first job.
func Start(cfg Config) (*Coordinator, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dispatch: need at least 1 worker, got %d", cfg.Workers)
	}
	spawn := cfg.spawn
	if spawn == nil {
		if len(cfg.Command) == 0 {
			return nil, errors.New("dispatch: no worker command")
		}
		spawn = spawnProc(cfg)
	}
	sol := cfg.Solver
	if sol == nil {
		sol = solver.Default()
	}
	c := &Coordinator{
		cfg:  cfg,
		sol:  sol,
		busy: make([]bool, cfg.Workers),
		dead: make([]bool, cfg.Workers),
		home: map[string]int{},
		seen: map[string]bool{},
	}
	c.cond = sync.NewCond(&c.mu)

	fail := func(err error) (*Coordinator, error) {
		for _, w := range c.workers {
			w.io.in.Close()
			w.io.kill()
			w.io.wait()
		}
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		wio, err := spawn(i)
		if err != nil {
			return fail(fmt.Errorf("dispatch: spawning worker %d: %w", i, err))
		}
		w := &workerProc{
			id:       i,
			io:       wio,
			wire:     newWire(wio.out, wio.in),
			inflight: map[int]*inflightJob{},
			exited:   make(chan struct{}),
		}
		c.workers = append(c.workers, w)
		// The handshake read is synchronous: the reader goroutine only takes
		// over the pipe once the worker has proven it speaks our dialect.
		m, err := w.wire.read()
		if err != nil {
			return fail(fmt.Errorf("dispatch: worker %d exited before hello: %w", i, err))
		}
		if err := checkHello(m); err != nil {
			return fail(fmt.Errorf("dispatch: worker %d: %w", i, err))
		}
	}

	// Seed every worker with the coordinator's warm cache (the -cache file a
	// campaign loaded before starting the fleet). Workers mark seeded keys as
	// already-exchanged, so none of this comes echoing back.
	if entries, err := sol.ExportCache(); err == nil && len(entries) > 0 {
		for _, e := range entries {
			c.seen[e.Key] = true
		}
		for _, w := range c.workers {
			if err := w.send(message{Type: msgCache, Entries: entries}); err != nil {
				return fail(fmt.Errorf("dispatch: seeding worker %d cache: %w", w.id, err))
			}
		}
	}

	for _, w := range c.workers {
		go c.readLoop(w)
	}
	return c, nil
}

// Negotiate implements campaign.Executor: it records every pending job's
// home worker — fnv32a(fingerprint) mod fleet size, so the shard assignment
// is stable across runs and worker counts divide the graph the same way —
// and grants one campaign lane per worker (capped at the pending job count),
// splitting the global -j budget across lanes with no lane floored to zero.
func (c *Coordinator) Negotiate(budget int, pending []campaign.PlannedJob) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.workers)
	for _, p := range pending {
		h := fnv.New32a()
		io.WriteString(h, p.Fingerprint)
		c.home[p.Job.Key()] = int(h.Sum32() % uint32(n))
	}
	lanes := n
	if lanes > len(pending) {
		lanes = len(pending)
	}
	return splitGrants(budget, lanes)
}

// splitGrants mirrors the campaign engine's splitBudget: budget/lanes each,
// remainder on the first lanes, floor of one slot per lane.
func splitGrants(budget, lanes int) []int {
	out := make([]int, lanes)
	if lanes == 0 {
		return out
	}
	base := budget / lanes
	extra := budget % lanes
	if base < 1 {
		base, extra = 1, 0
	}
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}

// Run implements campaign.Executor: ship the job to a free worker —
// preferring its fingerprint home, stealing any other free worker when the
// home is busy or gone — and stream the result back. A worker dying mid-job
// requeues the job on the next free worker; only a fully dead fleet fails
// it. Cancellation returns the same "interrupted: …" manifest entry the
// local backend produces.
func (c *Coordinator) Run(ctx context.Context, j campaign.Job, parallelism int) (campaign.RunManifest, []campaign.Report) {
	for {
		w, err := c.acquire(ctx, j.Key())
		if errors.Is(err, errAllDead) {
			return campaign.ErrorManifest(j, fmt.Sprintf("dispatch: all %d workers exited before %s could run", len(c.workers), j.Key())), nil
		}
		if err != nil {
			return campaign.InterruptedManifest(j, err), nil
		}
		rm, reports, err := c.runOn(ctx, w, j, parallelism)
		c.release(w)
		if errors.Is(err, errWorkerDied) {
			continue // requeue on whoever is still alive
		}
		return rm, reports
	}
}

// acquire blocks until a worker is free, preferring the job's home worker
// when it is among the free ones. It fails fast when the whole fleet is dead
// or the context is cancelled.
func (c *Coordinator) acquire(ctx context.Context, key string) (*workerProc, error) {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		homeID, hasHome := c.home[key]
		alive := 0
		pick := -1
		for i := range c.workers {
			if c.dead[i] {
				continue
			}
			alive++
			if c.busy[i] {
				continue
			}
			// Home affinity first; otherwise steal the lowest free worker.
			if pick == -1 || (hasHome && i == homeID) {
				pick = i
			}
		}
		if alive == 0 {
			return nil, errAllDead
		}
		if pick >= 0 {
			c.busy[pick] = true
			return c.workers[pick], nil
		}
		c.cond.Wait()
	}
}

func (c *Coordinator) release(w *workerProc) {
	c.mu.Lock()
	c.busy[w.id] = false
	c.cond.Broadcast()
	c.mu.Unlock()
}

// runOn ships one assignment to w and waits for its completion, the
// worker's death, or cancellation.
func (c *Coordinator) runOn(ctx context.Context, w *workerProc, j campaign.Job, parallelism int) (campaign.RunManifest, []campaign.Report, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	p := &inflightJob{key: j.Key(), done: make(chan struct{})}
	w.mu.Lock()
	w.inflight[id] = p
	w.mu.Unlock()

	if err := w.send(message{Type: msgJob, ID: id, Target: j.Target, Mode: j.Mode.String(), Parallelism: parallelism}); err != nil {
		// The pipe is gone; the reader goroutine is about to mark the worker
		// dead. Requeue without waiting for it.
		w.mu.Lock()
		delete(w.inflight, id)
		w.mu.Unlock()
		return campaign.RunManifest{}, nil, errWorkerDied
	}

	select {
	case <-p.done:
		w.mu.Lock()
		rm, reports, died := p.rm, p.reports, p.died
		w.mu.Unlock()
		if died {
			return campaign.RunManifest{}, nil, errWorkerDied
		}
		return rm, reports, nil
	case <-ctx.Done():
		// The worker keeps running until Close tears it down, but the
		// campaign contract wants a prompt interrupted entry — partial
		// results are discarded, same as the local backend.
		w.mu.Lock()
		delete(w.inflight, id)
		w.mu.Unlock()
		return campaign.InterruptedManifest(j, ctx.Err()), nil, nil
	}
}

// readLoop owns a worker's stdout: it routes report/done messages to their
// in-flight assignment, relays progress, and absorbs + rebroadcasts verdict
// deltas. When the pipe breaks it reaps the worker, fails its in-flight
// assignment (triggering the requeue) and wakes every acquire waiter.
func (c *Coordinator) readLoop(w *workerProc) {
	for {
		m, err := w.wire.read()
		if err != nil {
			break
		}
		switch m.Type {
		case msgReport:
			w.mu.Lock()
			if p := w.inflight[m.ID]; p != nil && m.Report != nil {
				p.reports = append(p.reports, *m.Report)
			}
			w.mu.Unlock()
		case msgDone:
			w.mu.Lock()
			if p := w.inflight[m.ID]; p != nil {
				if m.Run != nil {
					p.rm = *m.Run
				}
				delete(w.inflight, m.ID)
				close(p.done)
			}
			w.mu.Unlock()
		case msgCache:
			c.absorbDelta(w, m.Entries)
		case msgProgress:
			if c.cfg.OnProgress != nil {
				w.mu.Lock()
				p := w.inflight[m.ID]
				w.mu.Unlock()
				if p != nil {
					c.cfg.OnProgress(p.key, m.States, m.Classes)
				}
			}
		default:
			// Forward compatibility: ignore unknown uplink types.
		}
	}
	w.io.wait()
	c.mu.Lock()
	c.dead[w.id] = true
	c.cond.Broadcast()
	c.mu.Unlock()
	w.mu.Lock()
	for id, p := range w.inflight {
		p.died = true
		delete(w.inflight, id)
		close(p.done)
	}
	w.mu.Unlock()
	close(w.exited)
}

// absorbDelta merges a worker's learned verdicts into the coordinator's
// solver (so a -cache save persists fleet learning) and rebroadcasts the
// genuinely new entries to every other live worker.
func (c *Coordinator) absorbDelta(from *workerProc, entries []solver.CacheEntry) {
	if len(entries) == 0 {
		return
	}
	c.smu.Lock()
	fresh := make([]solver.CacheEntry, 0, len(entries))
	for _, e := range entries {
		if !c.seen[e.Key] {
			c.seen[e.Key] = true
			fresh = append(fresh, e)
		}
	}
	c.smu.Unlock()
	if len(fresh) == 0 {
		return
	}
	// A malformed delta is the worker's bug, not campaign-fatal: ImportCache
	// is all-or-nothing and the error only costs cache warmth.
	c.sol.ImportCache(fresh)
	c.mu.Lock()
	var targets []*workerProc
	for i, w := range c.workers {
		if w != from && !c.dead[i] {
			targets = append(targets, w)
		}
	}
	c.mu.Unlock()
	for _, w := range targets {
		w.send(message{Type: msgCache, Entries: fresh})
	}
}

// Close tears the fleet down leak-free: a clean shutdown message and stdin
// close first, then a kill for any worker that has not exited within the
// grace period, and finally a join on every reader goroutine. Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	for _, w := range c.workers {
		w.send(message{Type: msgShutdown})
		w.io.in.Close()
	}
	for _, w := range c.workers {
		select {
		case <-w.exited:
		case <-time.After(10 * time.Second):
			w.io.kill()
			<-w.exited
		}
	}
	return nil
}
