package dispatch

// Coordinator coverage: the distributed determinism invariant (bundles hash
// identically to the in-process engine at every worker count), the hello
// handshake's fail-fast on version skew, crash requeue up to a fully dead
// fleet, verdict-delta exchange, cancellation, and leak-free teardown. The
// fleet runs in-process over pipes here — the subprocess plumbing is covered
// by cmd/achilles-worker's re-exec tests.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"achilles/internal/campaign"
	"achilles/internal/core"
	"achilles/internal/solver"
	"achilles/internal/testutil"

	// Populate the registry: dispatch tests run real (cheap) targets.
	_ "achilles/internal/protocols"
)

// inprocFleet spawns workers as goroutines running Serve over pipe pairs —
// the same protocol traffic as subprocesses, without fork/exec cost. The
// crash hook becomes runtime.Goexit, whose deferred pipe closes look to the
// coordinator exactly like an abruptly dead process.
func inprocFleet(wc func(i int) WorkerConfig) func(int) (workerIO, error) {
	return func(i int) (workerIO, error) {
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		served := make(chan struct{})
		cfg := wc(i)
		if cfg.exit == nil {
			cfg.exit = func(int) { runtime.Goexit() }
		}
		go func() {
			defer close(served)
			defer outW.Close()
			defer inR.Close()
			Serve(inR, outW, cfg)
		}()
		return workerIO{
			in:  inW,
			out: outR,
			wait: func() error {
				<-served
				return nil
			},
			kill: func() {
				inW.Close()
				outR.Close()
			},
		}, nil
	}
}

// freshWorkers gives every worker its own solver, like separate processes.
func freshWorkers(i int) WorkerConfig { return WorkerConfig{Solver: solver.Default()} }

var parityTargets = []string{"kv", "kv-fixed", "pbft"}

// TestDistributedContentHashParity is the tentpole invariant: a campaign
// dispatched over 1, 2 and 4 workers produces a bundle ContentHash-identical
// to the in-process engine's.
func TestDistributedContentHashParity(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	local, err := campaign.Run(campaign.Options{Targets: parityTargets, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			c, err := Start(Config{Workers: workers, spawn: inprocFleet(freshWorkers)})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			b, err := campaign.Run(campaign.Options{Targets: parityTargets, Jobs: 2, Executor: c})
			if err != nil {
				t.Fatal(err)
			}
			for _, rm := range b.Manifest.Runs {
				if rm.Error != "" {
					t.Fatalf("job %s failed on the fleet: %s", rm.Key(), rm.Error)
				}
			}
			got, err := b.ContentHash()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%d-worker bundle drifted from single-process run: %s != %s", workers, got, want)
			}
		})
	}
}

// TestWorkerCrashRequeues: a worker killed mid-job (abrupt exit, no
// farewell) has that job requeued on a surviving worker, and the finished
// bundle still matches the single-process hash — a crash costs time, never
// results.
func TestWorkerCrashRequeues(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	local, err := campaign.Run(campaign.Options{Targets: parityTargets, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := local.ContentHash()

	sentinel := filepath.Join(t.TempDir(), "crash-once")
	c, err := Start(Config{Workers: 2, spawn: inprocFleet(func(i int) WorkerConfig {
		return WorkerConfig{Solver: solver.Default(), CrashJob: "kv/optimized", CrashOnce: sentinel}
	})})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b, err := campaign.Run(campaign.Options{Targets: parityTargets, Jobs: 2, Executor: c})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sentinel); err != nil {
		t.Fatalf("crash sentinel missing — the fault was never injected: %v", err)
	}
	for _, rm := range b.Manifest.Runs {
		if rm.Error != "" {
			t.Fatalf("job %s failed despite a surviving worker: %s", rm.Key(), rm.Error)
		}
	}
	got, err := b.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-crash bundle drifted: %s != %s", got, want)
	}
}

// TestAllWorkersDeadFailsJobs: when the whole fleet is gone the campaign
// still completes as an artifact — every unfinished job carries a pool-death
// error in its manifest entry instead of hanging the run.
func TestAllWorkersDeadFailsJobs(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	// One worker, unconditional crash on its first assignment (no sentinel).
	c, err := Start(Config{Workers: 1, spawn: inprocFleet(func(i int) WorkerConfig {
		return WorkerConfig{Solver: solver.Default(), CrashJob: "kv/optimized"}
	})})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b, err := campaign.Run(campaign.Options{Targets: []string{"kv", "kv-fixed"}, Jobs: 1, Executor: c})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Manifest.Runs) != 2 {
		t.Fatalf("want 2 manifest entries, got %d", len(b.Manifest.Runs))
	}
	for _, rm := range b.Manifest.Runs {
		if !strings.Contains(rm.Error, "workers exited") {
			t.Fatalf("job %s: want pool-death error, got %q", rm.Key(), rm.Error)
		}
		if len(b.Reports[rm.Key()]) != 0 {
			t.Fatalf("job %s: errored entry must carry no reports", rm.Key())
		}
	}
}

// TestCacheDeltaExchange: verdicts learned by workers flow back into the
// coordinator's solver (so -cache persists fleet learning), and a warm
// coordinator cache seeds freshly spawned workers.
func TestCacheDeltaExchange(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	coord := solver.Default()
	wsol := make([]*solver.Solver, 2)
	c, err := Start(Config{Workers: 2, Solver: coord, spawn: inprocFleet(func(i int) WorkerConfig {
		wsol[i] = solver.Default()
		return WorkerConfig{Solver: wsol[i]}
	})})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := campaign.Run(campaign.Options{Targets: parityTargets, Jobs: 2, Executor: c}); err != nil {
		t.Fatal(err)
	}
	learned, err := coord.ExportCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(learned) == 0 {
		t.Fatal("coordinator solver learned nothing — delta uplink is dead")
	}

	// Rebroadcast: with two workers splitting the graph, each worker should
	// also hold verdicts it could only have received from its peer — its
	// cache must be a superset of what it computed alone. Weak but
	// sufficient proxy: both workers ended up with entries, and their union
	// equals the coordinator's view.
	seen := map[string]bool{}
	for i, s := range wsol {
		entries, err := s.ExportCache()
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			t.Fatalf("worker %d holds no verdicts", i)
		}
		for _, e := range entries {
			seen[e.Key] = true
		}
	}
	for _, e := range learned {
		if !seen[e.Key] {
			t.Fatalf("coordinator verdict %q reached no worker", e.Key)
		}
	}

	// Seeding: a new fleet started from the now-warm coordinator solver
	// receives every verdict before its first job.
	wsol2 := make([]*solver.Solver, 1)
	c2, err := Start(Config{Workers: 1, Solver: coord, spawn: inprocFleet(func(i int) WorkerConfig {
		wsol2[i] = solver.Default()
		return WorkerConfig{Solver: wsol2[i]}
	})})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		entries, err := wsol2[0].ExportCache()
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) >= len(learned) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed never arrived: worker holds %d of %d verdicts", len(entries), len(learned))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelInterruptsFleet: cancelling a distributed campaign yields the
// same interrupted bundle shape as the local engine and tears down without
// leaking goroutines.
func TestCancelInterruptsFleet(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	c, err := Start(Config{Workers: 2, spawn: inprocFleet(freshWorkers)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first job is even fed
	b, err := campaign.RunCtx(ctx, campaign.Options{Targets: parityTargets, Jobs: 2, Executor: c})
	if err == nil {
		t.Fatal("want context error from a cancelled campaign")
	}
	if !b.Manifest.Interrupted {
		t.Fatal("bundle not marked interrupted")
	}
	for _, rm := range b.Manifest.Runs {
		if !strings.HasPrefix(rm.Error, "interrupted: ") {
			t.Fatalf("job %s: want interrupted entry, got %q", rm.Key(), rm.Error)
		}
	}

	// The backend's own Run honours the same contract when asked directly.
	rm, reports := c.Run(ctx, campaign.Job{Target: "kv", Mode: core.ModeOptimized}, 1)
	if rm.Error != "interrupted: "+context.Canceled.Error() || len(reports) != 0 {
		t.Fatalf("direct cancelled Run: got %+v with %d reports", rm, len(reports))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStartRejectsVersionSkew: a worker greeting with a different protocol
// revision kills the whole spawn — no campaign runs on a mixed-dialect
// fleet.
func TestStartRejectsVersionSkew(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	skewed := func(i int) (workerIO, error) {
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		go func() {
			defer outW.Close()
			json.NewEncoder(outW).Encode(message{Type: msgHello, Proto: ProtoVersion + 1, Campaign: campaign.Version, Solver: solver.Version})
			io.Copy(io.Discard, inR) // park until the coordinator hangs up
		}()
		return workerIO{in: inW, out: outR, wait: func() error { return nil }, kill: func() { inR.Close(); outR.Close() }}, nil
	}
	if _, err := Start(Config{Workers: 1, spawn: skewed}); err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("want version-mismatch error, got %v", err)
	}

	// A worker dying before its hello is the same fail-fast path.
	stillborn := func(i int) (workerIO, error) {
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		outW.Close()
		go io.Copy(io.Discard, inR)
		return workerIO{in: inW, out: outR, wait: func() error { return nil }, kill: func() { inR.Close() }}, nil
	}
	if _, err := Start(Config{Workers: 1, spawn: stillborn}); err == nil || !strings.Contains(err.Error(), "before hello") {
		t.Fatalf("want exited-before-hello error, got %v", err)
	}
}

// TestHomeAffinityIsStable: Negotiate derives each job's home worker from
// its fingerprint alone, so the shard assignment is identical across
// repeated negotiations and independent of pending-list order.
func TestHomeAffinityIsStable(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	c, err := Start(Config{Workers: 4, spawn: inprocFleet(freshWorkers)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pending := []campaign.PlannedJob{
		{Job: campaign.Job{Target: "kv", Mode: core.ModeOptimized}, Fingerprint: "fp-kv"},
		{Job: campaign.Job{Target: "pbft", Mode: core.ModeOptimized}, Fingerprint: "fp-pbft"},
		{Job: campaign.Job{Target: "raft", Mode: core.ModeOptimized}, Fingerprint: "fp-raft"},
	}
	grants := c.Negotiate(8, pending)
	if len(grants) != 3 { // lanes capped at pending jobs
		t.Fatalf("want 3 lanes for 3 pending jobs, got %v", grants)
	}
	sum := 0
	for _, g := range grants {
		if g < 1 {
			t.Fatalf("zero-starved lane in %v", grants)
		}
		sum += g
	}
	if sum != 8 {
		t.Fatalf("grants %v sum to %d, want the full budget 8", grants, sum)
	}
	first := map[string]int{}
	for k, v := range c.home {
		first[k] = v
	}
	// Reverse the pending order; homes must not move.
	c.Negotiate(8, []campaign.PlannedJob{pending[2], pending[1], pending[0]})
	for k, v := range c.home {
		if first[k] != v {
			t.Fatalf("home of %s moved %d -> %d across negotiations", k, first[k], v)
		}
	}
}
