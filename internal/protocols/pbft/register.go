package pbft

import (
	"math/rand"

	"achilles/internal/protocols/registry"
)

// Generator fuzzes the request fields with the annotated digest held at its
// constant; the MAC field — the one the replica fails to verify — is fuzzed
// over {0, 1} so the baseline can hit the Trojan at all.
func Generator(r *rand.Rand) []int64 {
	return []int64{
		int64(1 + r.Intn(2)),  // tag: REQUEST or garbage
		int64(r.Intn(3)),      // extra: read-only flag or garbage
		int64(40 + r.Intn(8)), // size: straddles MSGSIZE
		0,                     // od: annotated constant
		int64(r.Intn(2)),      // replier
		int64(r.Intn(4)),      // command_size: straddles CMDLEN
		int64(r.Intn(6)) - 1,  // cid: straddles [0, NCLIENTS)
		int64(r.Intn(3)),      // rid
		int64(r.Intn(3)),      // command bytes
		int64(r.Intn(3)),
		int64(r.Intn(2)), // mac: valid or corrupted
	}
}

// ClassKey: PBFT has a single Trojan type — the corrupted authenticator.
func ClassKey(msg []int64) string { return "corrupted-mac" }

func init() {
	registry.Register(registry.Descriptor{
		Name:          "pbft",
		Summary:       "PBFT primary replica: MAC never verified before Pre_prepare (§6.2)",
		Target:        NewTarget,
		ExpectTrojans: true,
		IsTrojan:      func(msg []int64, _ registry.State) bool { return IsTrojan(msg) },
		ClassKey:      ClassKey,
		ImplAccepts:   func(msg []int64, _ registry.State) bool { return ImplAccepts(msg) },
		Fuzz:          &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
	registry.Register(registry.Descriptor{
		Name:     "pbft-fixed",
		Summary:  "PBFT replica verifying the authenticator first: no Trojans",
		Target:   NewFixedTarget,
		IsTrojan: func(msg []int64, _ registry.State) bool { return IsTrojan(msg) },
		ClassKey: ClassKey,
		Fuzz:     &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
}
