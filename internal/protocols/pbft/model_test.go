package pbft

import (
	"testing"

	"achilles/internal/core"
	"achilles/internal/expr"
	"achilles/internal/solver"
)

// TestMACAttackRediscovered reproduces the §6.2/§6.3 PBFT result: Achilles
// finds a single type of Trojan message — requests with corrupted
// authenticators — and it appears on every accepting replica path, bundled
// with valid messages.
func TestMACAttackRediscovered(t *testing.T) {
	run, err := core.Run(NewTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := run.Analysis
	if len(res.Trojans) == 0 {
		t.Fatal("MAC attack not rediscovered")
	}
	// Every accepting path must report the Trojan (the paper: "the Trojan
	// message appears on all execution paths in the server").
	if res.AcceptingStates != len(res.Trojans) {
		t.Fatalf("accepting paths = %d, trojan reports = %d: MAC trojan must be on every path",
			res.AcceptingStates, len(res.Trojans))
	}
	s := solver.Default()
	mac := expr.Var(run.Clients.MsgVarName(FieldMAC))
	for _, tr := range res.Trojans {
		// The single Trojan type: the class must FORCE a corrupted MAC
		// (witness ∧ mac == AuthConst is unsat).
		q := []*expr.Expr{tr.Witness, expr.Eq(mac, expr.Const(AuthConst))}
		if r, _ := s.Check(q); r != solver.Unsat {
			t.Errorf("trojan %d admits a correct authenticator — not the MAC class", tr.Index)
		}
		if tr.Concrete[FieldMAC] == AuthConst {
			t.Errorf("trojan %d example has a valid MAC: %v", tr.Index, tr.Concrete)
		}
		if !IsTrojan(tr.Concrete) {
			t.Errorf("trojan %d example fails the oracle: %v", tr.Index, tr.Concrete)
		}
		if !tr.VerifiedAccept {
			t.Errorf("trojan %d example not accepted on concrete replay", tr.Index)
		}
		if !tr.VerifiedNotClient {
			t.Errorf("trojan %d example generatable by the client", tr.Index)
		}
		// Bundled with valid messages: the same server path also accepts
		// client-generatable messages (live set non-empty).
		if len(tr.LiveClients) == 0 {
			t.Errorf("trojan %d: no valid messages share the path — should be bundled", tr.Index)
		}
	}
}

// TestFixedReplicaClean: verifying the authenticator closes the only hole.
func TestFixedReplicaClean(t *testing.T) {
	run, err := core.Run(NewFixedTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(run.Analysis.Trojans); n != 0 {
		t.Fatalf("fixed replica reported %d Trojans: %v", n, run.Analysis.Trojans)
	}
}

// TestAnalysisIsFast: the paper notes the PBFT analysis completes in
// seconds due to the simplicity of the replica's checks; here it must be
// well under a second.
func TestAnalysisIsFast(t *testing.T) {
	run, err := core.Run(NewTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Total().Seconds() > 5 {
		t.Fatalf("PBFT analysis took %v; expected seconds at most", run.Total())
	}
}

func TestClientPredicateShape(t *testing.T) {
	tgt := NewTarget()
	pc, err := core.ExtractClientPredicate(tgt.Clients, core.ExtractOptions{FieldNames: FieldNames})
	if err != nil {
		t.Fatal(err)
	}
	// Two client paths: read-only and regular.
	if len(pc.Paths) != 2 {
		t.Fatalf("client paths = %d, want 2", len(pc.Paths))
	}
	for _, p := range pc.Paths {
		if !p.Fields[FieldMAC].IsConst() || p.Fields[FieldMAC].Val != AuthConst {
			t.Errorf("client MAC field must be the annotated constant, got %s", p.Fields[FieldMAC])
		}
		if !p.Fields[FieldTag].IsConst() || p.Fields[FieldTag].Val != TagRequest {
			t.Errorf("tag field = %s", p.Fields[FieldTag])
		}
	}
}

func TestOracles(t *testing.T) {
	valid := ValidRequest(2, 9, false, 5, 6)
	if !AcceptsAssumingFreshRID(valid) {
		t.Fatal("valid request rejected")
	}
	if IsTrojan(valid) {
		t.Fatal("valid request misclassified")
	}
	bad := append([]int64{}, valid...)
	bad[FieldMAC] = 99
	if !IsTrojan(bad) {
		t.Fatal("corrupted-MAC request must be Trojan")
	}
	unknown := append([]int64{}, valid...)
	unknown[FieldCID] = 77
	unknown[FieldMAC] = 99
	if IsTrojan(unknown) {
		t.Fatal("rejected request cannot be Trojan")
	}
}
