// Package pbft models the PBFT (Castro-Liskov) client/replica pair analysed
// in §6.1–§6.3 of the Achilles paper, and provides a concrete Go replica
// cluster used to measure the impact of the MAC attack.
//
// The analysed message is the PBFT client request:
//
//	tag(2B) extra(2B) size(4B) od(16B) replier(2B) command_size(2B)
//	cid(2B) rid(2B) command(...) MAC(authenticators)
//
// As in the paper's setup, the digest (od) and the MAC authenticator are
// annotated to predefined constants in both client and replica, the command
// length is fixed, and the replica's duplicate-request bookkeeping is
// over-approximated with unconstrained symbolic local state (§3.4's third
// mode, via the symbolic() intrinsic).
//
// The replica faithfully reproduces the checks the paper observed: request
// ids must be recent, the client id must be known, the read-only flag is
// honoured — and the authenticator is never verified before the primary
// generates a Pre_prepare. That omission is the known MAC-attack
// vulnerability [Clement et al., NSDI'09], which Achilles rediscovers as a
// single Trojan class present on every accepting path.
package pbft

import (
	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/symexec"
)

// Message field indices.
const (
	FieldTag     = 0
	FieldExtra   = 1 // flags: bit 0 = read-only
	FieldSize    = 2
	FieldOD      = 3 // message digest (annotated constant)
	FieldReplier = 4
	FieldCmdSize = 5
	FieldCID     = 6
	FieldRID     = 7
	FieldCmd0    = 8
	FieldCmd1    = 9
	FieldMAC     = 10 // authenticator list (annotated constant)
	NumFields    = 11
)

// Protocol constants mirrored in the models.
const (
	TagRequest = 1
	MsgSize    = 44
	CmdLen     = 2
	NumClients = 4
	AuthConst  = 0 // the annotated authenticator value correct clients write
)

// FieldNames names the message layout for reports.
var FieldNames = []string{
	"tag", "extra", "size", "od", "replier", "command_size",
	"cid", "rid", "command0", "command1", "mac",
}

// ReplicaSrc is the NL model of a PBFT primary replica handling a client
// request up to the generation of a Pre_prepare (the §6.1 accept marker).
const ReplicaSrc = `
const REQUEST = 1;
const MSGSIZE = 44;
const CMDLEN = 2;
const NCLIENTS = 4;
var msg [11]int;

func main() {
	recv(msg);
	if msg[0] != REQUEST { reject(); }
	if msg[2] != MSGSIZE { reject(); }
	if msg[3] != 0 { reject(); }
	if msg[5] != CMDLEN { reject(); }
	if msg[6] < 0 { reject(); }
	if msg[6] >= NCLIENTS { reject(); }
	// Duplicate/ordering bookkeeping, over-approximated with symbolic
	// local state: the last request id seen from this client.
	var last int = symbolic();
	if msg[7] <= last { reject(); }
	// Read-only requests are executed tentatively right away.
	if msg[1] == 1 { accept(); }
	if msg[1] != 0 { reject(); }
	// VULNERABILITY: the authenticator (msg[10]) is never verified before
	// the Pre_prepare is generated - the PBFT MAC attack.
	accept();
}`

// ClientSrc is the NL model of a correct PBFT client issuing one request.
const ClientSrc = `
const REQUEST = 1;
const MSGSIZE = 44;
const CMDLEN = 2;
const NCLIENTS = 4;
var msg [11]int;

func main() {
	var cid int = input();
	assume(cid >= 0);
	assume(cid < NCLIENTS);
	var readonly int = input();
	var replier int = input();
	var rid int = symbolic();
	var c0 int = input();
	var c1 int = input();
	msg[0] = REQUEST;
	if readonly == 0 {
		msg[1] = 0;
	} else {
		msg[1] = 1;
	}
	msg[2] = MSGSIZE;
	msg[3] = 0;
	msg[4] = replier;
	msg[5] = CMDLEN;
	msg[6] = cid;
	msg[7] = rid;
	msg[8] = c0;
	msg[9] = c1;
	msg[10] = 0;
	send(msg);
	exit();
}`

// FixedReplicaSrc verifies the authenticator before accepting, closing the
// MAC attack.
const FixedReplicaSrc = `
const REQUEST = 1;
const MSGSIZE = 44;
const CMDLEN = 2;
const NCLIENTS = 4;
var msg [11]int;

func main() {
	recv(msg);
	if msg[0] != REQUEST { reject(); }
	if msg[2] != MSGSIZE { reject(); }
	if msg[3] != 0 { reject(); }
	if msg[5] != CMDLEN { reject(); }
	if msg[6] < 0 { reject(); }
	if msg[6] >= NCLIENTS { reject(); }
	var last int = symbolic();
	if msg[7] <= last { reject(); }
	// Fixed: verify the (annotated) authenticator first.
	if msg[10] != 0 { reject(); }
	if msg[1] == 1 { accept(); }
	if msg[1] != 0 { reject(); }
	accept();
}`

// ReplicaUnit compiles the vulnerable replica model.
func ReplicaUnit() *lang.Unit { return lang.MustCompile(ReplicaSrc) }

// NewTarget builds the Achilles target for the vulnerable replica. The
// server's symbolic() local state is replayed concretely with last = -1
// ("no previous request") during Trojan example verification.
func NewTarget() core.Target {
	return core.Target{
		Name:       "pbft",
		Server:     ReplicaUnit(),
		Clients:    []core.ClientProgram{{Name: "pbft-client", Unit: lang.MustCompile(ClientSrc)}},
		FieldNames: FieldNames,
		ServerExec: symexec.Options{Inputs: []int64{-1}},
	}
}

// NewFixedTarget builds the target for the patched replica.
func NewFixedTarget() core.Target {
	return core.Target{
		Name:       "pbft-fixed",
		Server:     lang.MustCompile(FixedReplicaSrc),
		Clients:    []core.ClientProgram{{Name: "pbft-client", Unit: lang.MustCompile(ClientSrc)}},
		FieldNames: FieldNames,
		ServerExec: symexec.Options{Inputs: []int64{-1}},
	}
}

// ValidRequest builds a correct client request.
func ValidRequest(cid, rid int64, readonly bool, cmd0, cmd1 int64) []int64 {
	extra := int64(0)
	if readonly {
		extra = 1
	}
	return []int64{TagRequest, extra, MsgSize, 0, 0, CmdLen, cid, rid, cmd0, cmd1, AuthConst}
}

// IsTrojan is the ground-truth oracle: an accepted request with a corrupted
// authenticator (the only field the replica fails to validate).
func IsTrojan(msg []int64) bool {
	return AcceptsAssumingFreshRID(msg) && msg[FieldMAC] != AuthConst
}

// AcceptsAssumingFreshRID mirrors the replica model's accept condition with
// the local state fixed to "no previous request from this client".
func AcceptsAssumingFreshRID(msg []int64) bool {
	if len(msg) != NumFields {
		return false
	}
	if msg[FieldTag] != TagRequest || msg[FieldSize] != MsgSize ||
		msg[FieldOD] != 0 || msg[FieldCmdSize] != CmdLen {
		return false
	}
	if msg[FieldCID] < 0 || msg[FieldCID] >= NumClients {
		return false
	}
	if msg[FieldRID] <= -1 {
		return false
	}
	return msg[FieldExtra] == 0 || msg[FieldExtra] == 1
}
