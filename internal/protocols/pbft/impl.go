package pbft

import (
	"fmt"
	"hash/fnv"
)

// This file is a concrete, deterministic PBFT-style cluster simulation used
// by the §6.3 impact experiment: it measures how Trojan requests with
// corrupted authenticators (the MAC attack) collapse the throughput of
// correct clients by driving the cluster through its expensive recovery
// path.
//
// The simulation runs the normal-case three-phase protocol (pre-prepare,
// prepare, commit) over an in-process message bus with per-pair MAC keys.
// Time is modelled in abstract cost units charged per message and per
// protocol action, which keeps the experiment reproducible on any machine:
// the *ratios* between normal-case cost and recovery cost are what the
// paper's claim is about.

// Cost model (abstract units).
const (
	CostMessage  = 1   // sending one protocol message
	CostExec     = 2   // executing a committed request
	CostRecovery = 250 // view-change/recovery round triggered by a bad MAC
)

// ClusterRequest is a client request as it travels through the concrete
// cluster. MACs holds one authenticator per replica, keyed pairwise; Sig is
// a digital signature all replicas can verify (used only by the fixed
// protocol — MAC authenticators are the vulnerable fast path).
type ClusterRequest struct {
	CID  int64
	RID  int64
	Cmd  []byte
	MACs []uint64
	Sig  uint64
}

// Replica is one PBFT replica in the simulation.
type Replica struct {
	ID       int
	keys     []uint64 // pairwise keys with clients: keys[cid]
	executed int
	lastRID  map[int64]int64
}

// Cluster is a 3f+1 replica group plus its bookkeeping.
type Cluster struct {
	F        int
	Replicas []*Replica
	// UseSignatures switches on the fix from Clement et al.: clients sign
	// requests with a signature every replica can verify, so corruption is
	// attributable and the primary drops bad requests cheaply instead of
	// letting backups discover unverifiable MACs mid-protocol.
	UseSignatures bool

	Metrics Metrics
}

// Metrics accumulates simulation results.
type Metrics struct {
	Committed  int   // requests executed by the cluster
	Dropped    int   // requests rejected cheaply (fix enabled)
	Recoveries int   // expensive recovery rounds triggered
	Cost       int64 // total simulated time units
}

// Goodput is committed requests per 1000 cost units.
func (m Metrics) Goodput() float64 {
	if m.Cost == 0 {
		return 0
	}
	return float64(m.Committed) * 1000 / float64(m.Cost)
}

// NewCluster builds a cluster with n = 3f+1 replicas and nClients client
// key pairs.
func NewCluster(f int, nClients int) *Cluster {
	n := 3*f + 1
	c := &Cluster{F: f}
	for i := 0; i < n; i++ {
		r := &Replica{ID: i, keys: make([]uint64, nClients), lastRID: map[int64]int64{}}
		for cid := 0; cid < nClients; cid++ {
			r.keys[cid] = pairKey(int64(cid), i)
		}
		c.Replicas = append(c.Replicas, r)
	}
	return c
}

// pairKey derives the shared key between client cid and replica r.
func pairKey(cid int64, replica int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "key-%d-%d", cid, replica)
	return h.Sum64()
}

// mac computes the authenticator of a request digest under a pairwise key.
func mac(key uint64, cid, rid int64, cmd []byte) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|", key, cid, rid)
	h.Write(cmd)
	return h.Sum64()
}

// sigKey is the per-client signing key (its verification side is known to
// every replica).
func sigKey(cid int64) uint64 { return pairKey(cid, 1<<20) }

// NewRequest builds a correctly authenticated request for the cluster.
func (c *Cluster) NewRequest(cid, rid int64, cmd []byte) ClusterRequest {
	req := ClusterRequest{CID: cid, RID: rid, Cmd: cmd}
	for _, r := range c.Replicas {
		req.MACs = append(req.MACs, mac(r.keys[cid], cid, rid, cmd))
	}
	req.Sig = mac(sigKey(cid), cid, rid, cmd)
	return req
}

// CorruptMACs returns a copy of req with every backup authenticator (and
// the signature) corrupted — the Trojan shape Achilles discovers: the
// primary's own MAC still verifies, so the vulnerable protocol cannot
// reject the request before ordering it.
func CorruptMACs(req ClusterRequest) ClusterRequest {
	out := req
	out.MACs = append([]uint64{}, req.MACs...)
	for i := 1; i < len(out.MACs); i++ {
		out.MACs[i] ^= 0xdeadbeef
	}
	out.Sig ^= 0xdeadbeef
	return out
}

// verify checks replica r's own authenticator on the request.
func (r *Replica) verify(req ClusterRequest) bool {
	if int(req.CID) < 0 || int(req.CID) >= len(r.keys) {
		return false
	}
	return req.MACs[r.ID] == mac(r.keys[req.CID], req.CID, req.RID, req.Cmd)
}

// Submit runs one request through the normal-case protocol, charging costs
// and triggering recovery when a backup detects a bad authenticator.
// It returns true when the request committed.
func (c *Cluster) Submit(req ClusterRequest) bool {
	n := len(c.Replicas)

	if c.UseSignatures {
		// The fix: a signature every replica can verify makes corruption
		// attributable; the primary drops Trojan requests at the cost of a
		// single check.
		c.Metrics.Cost += CostMessage
		if int(req.CID) < 0 || int(req.CID) >= len(c.Replicas[0].keys) ||
			req.Sig != mac(sigKey(req.CID), req.CID, req.RID, req.Cmd) {
			c.Metrics.Dropped++
			return false
		}
	}

	// Pre-prepare: primary assigns an order and forwards to all backups.
	c.Metrics.Cost += int64(CostMessage * (n - 1))

	// Backups validate their authenticator share. In the vulnerable
	// protocol this is the first point where corruption is noticed — too
	// late to attribute it: the client or the primary could be lying, so
	// the replicas must run the expensive recovery protocol to make
	// progress (Clement et al.'s MAC attack). With signatures the request
	// was already authenticated above.
	if !c.UseSignatures {
		for _, r := range c.Replicas[1:] {
			if !r.verify(req) {
				c.Metrics.Recoveries++
				c.Metrics.Cost += CostRecovery
				return false
			}
		}
	}

	// Prepare and commit rounds: all-to-all.
	c.Metrics.Cost += int64(2 * CostMessage * n * (n - 1))

	// Execution.
	c.Metrics.Cost += CostExec
	for _, r := range c.Replicas {
		r.executed++
		if req.RID > r.lastRID[req.CID] {
			r.lastRID[req.CID] = req.RID
		}
	}
	c.Metrics.Committed++
	return true
}

// Executed returns how many requests a replica has executed.
func (r *Replica) Executed() int { return r.executed }

// ImplAccepts replays an analysis field-vector message through a fresh
// concrete cluster. The wire framing the decoder enforces (tag, size,
// digest, command size) must sit at its constants; the MAC field selects
// correct authenticators (AuthConst) or corrupted ones (the Trojan shape).
// Accepted means the primary ordered the request — it either committed, or
// a backup detected the corrupted authenticator mid-protocol and forced a
// recovery round, which is exactly the MAC attack succeeding.
func ImplAccepts(msg []int64) bool {
	if len(msg) != NumFields {
		return false
	}
	if msg[FieldTag] != TagRequest || msg[FieldSize] != MsgSize ||
		msg[FieldOD] != 0 || msg[FieldCmdSize] != CmdLen {
		return false
	}
	if msg[FieldCID] < 0 || msg[FieldCID] >= NumClients {
		return false
	}
	if msg[FieldRID] < 0 { // fresh cluster: no previous request id
		return false
	}
	if msg[FieldExtra] != 0 && msg[FieldExtra] != 1 {
		return false
	}
	c := NewCluster(1, NumClients)
	req := c.NewRequest(msg[FieldCID], msg[FieldRID],
		[]byte{byte(msg[FieldCmd0]), byte(msg[FieldCmd1])})
	if msg[FieldMAC] != AuthConst {
		req = CorruptMACs(req)
	}
	committed := c.Submit(req)
	return committed || c.Metrics.Recoveries > 0
}

// AttackWorkload runs total requests of which every attackEvery-th carries
// corrupted authenticators (attackEvery <= 0 disables the attack), and
// returns the metrics.
func (c *Cluster) AttackWorkload(total int, attackEvery int) Metrics {
	c.Metrics = Metrics{}
	rid := int64(1)
	for i := 0; i < total; i++ {
		req := c.NewRequest(int64(i%len(c.Replicas[0].keys)), rid, []byte{byte(i), byte(i >> 8)})
		rid++
		if attackEvery > 0 && i%attackEvery == 0 {
			req = CorruptMACs(req)
		}
		c.Submit(req)
	}
	return c.Metrics
}
