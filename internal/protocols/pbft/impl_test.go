package pbft

import "testing"

func TestClusterNormalCase(t *testing.T) {
	c := NewCluster(1, 4)
	if len(c.Replicas) != 4 {
		t.Fatalf("replicas = %d", len(c.Replicas))
	}
	req := c.NewRequest(0, 1, []byte("op"))
	if !c.Submit(req) {
		t.Fatal("valid request did not commit")
	}
	for _, r := range c.Replicas {
		if r.Executed() != 1 {
			t.Fatalf("replica %d executed %d", r.ID, r.Executed())
		}
	}
	if c.Metrics.Recoveries != 0 {
		t.Fatal("recovery triggered on a valid request")
	}
}

func TestCorruptedMACTriggersRecovery(t *testing.T) {
	c := NewCluster(1, 4)
	req := CorruptMACs(c.NewRequest(0, 1, []byte("op")))
	if c.Submit(req) {
		t.Fatal("corrupted request committed")
	}
	if c.Metrics.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", c.Metrics.Recoveries)
	}
	if c.Metrics.Cost < CostRecovery {
		t.Fatalf("recovery cost not charged: %d", c.Metrics.Cost)
	}
}

func TestFixDropsTrojansCheaply(t *testing.T) {
	c := NewCluster(1, 4)
	c.UseSignatures = true
	req := CorruptMACs(c.NewRequest(0, 1, []byte("op")))
	if c.Submit(req) {
		t.Fatal("corrupted request committed")
	}
	if c.Metrics.Recoveries != 0 {
		t.Fatalf("fix should avoid recovery, got %d", c.Metrics.Recoveries)
	}
	if c.Metrics.Dropped != 1 {
		t.Fatalf("dropped = %d", c.Metrics.Dropped)
	}
}

// TestMACAttackImpact reproduces the §6.3 impact claim: a small fraction of
// Trojan requests collapses the goodput of correct clients.
func TestMACAttackImpact(t *testing.T) {
	baseline := NewCluster(1, 4).AttackWorkload(2000, 0)
	attacked := NewCluster(1, 4).AttackWorkload(2000, 10) // 10% Trojans

	if baseline.Committed != 2000 {
		t.Fatalf("baseline committed %d", baseline.Committed)
	}
	if attacked.Recoveries != 200 {
		t.Fatalf("attacked recoveries = %d, want 200", attacked.Recoveries)
	}
	if attacked.Goodput() >= baseline.Goodput() {
		t.Fatalf("attack did not hurt goodput: %v vs %v", attacked.Goodput(), baseline.Goodput())
	}
	degradation := attacked.Goodput() / baseline.Goodput()
	if degradation > 0.75 {
		t.Fatalf("attack degradation too mild: %.2f", degradation)
	}
}

func TestReplayOrderingBookkeeping(t *testing.T) {
	c := NewCluster(1, 4)
	c.Submit(c.NewRequest(2, 7, []byte("a")))
	if c.Replicas[0].lastRID[2] != 7 {
		t.Fatalf("lastRID = %d", c.Replicas[0].lastRID[2])
	}
}

func TestUnknownClientRejected(t *testing.T) {
	c := NewCluster(1, 4)
	req := c.NewRequest(0, 1, []byte("x"))
	req.CID = 99 // out of the key table
	if c.Submit(req) {
		t.Fatal("unknown client committed")
	}
}
