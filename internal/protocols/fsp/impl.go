package fsp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file is the concrete Go FSP implementation: an in-memory filesystem
// served over the FSP wire format, plus the glob-expanding client utilities.
// It exists so that the Trojan messages Achilles discovers on the NL models
// can be injected into a "real deployment" (paper §4.1: concrete examples
// feed fire-drill fault injection) and their §6.3 impact demonstrated:
//
//   - a Trojan MAKE_DIR/INSTALL with a literal '*' creates an entry that
//     correct clients cannot remove without collateral damage, and
//   - a Trojan with an early NUL smuggles arbitrary payload bytes past the
//     parser.

// Wire layout (bytes): cmd(1) sum(1) key(2) seq(2) len(2) pos(4) buf(len).
const wireHeader = 12

// Errors returned by the server.
var (
	ErrNotFound   = errors.New("fsp: not found")
	ErrExists     = errors.New("fsp: already exists")
	ErrBadPacket  = errors.New("fsp: malformed packet")
	ErrBadCommand = errors.New("fsp: unknown command")
)

// FS is the server's in-memory filesystem. Names are flat (FSP paths are
// normalised to a single directory for this reproduction); '*' is a regular
// character to the server, exactly as in FSP.
type FS struct {
	mu    sync.Mutex
	files map[string][]byte
	dirs  map[string]bool
}

// NewFS creates an empty filesystem.
func NewFS() *FS {
	return &FS{files: map[string][]byte{}, dirs: map[string]bool{}}
}

// Put creates or replaces a file.
func (fs *FS) Put(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = append([]byte{}, data...)
}

// Get reads a file.
func (fs *FS) Get(name string) ([]byte, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[name]
	return d, ok
}

// List returns all file and directory names, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for n := range fs.files {
		out = append(out, n)
	}
	for n := range fs.dirs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats.
func (fs *FS) NumFiles() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.files)
}

// Server is the concrete FSP server.
type Server struct {
	FS *FS
	// SmuggledBytes counts payload bytes that arrived beyond the first NUL
	// of a path — data the parser silently ignores (the mismatched-length
	// bug's smuggling channel).
	SmuggledBytes int
	// Log records the actions performed, for the injection harness.
	Log []string
}

// NewServer creates a server over a fresh filesystem.
func NewServer() *Server { return &Server{FS: NewFS()} }

// Checksum computes the FSP-style packet checksum: the byte sum of the
// packet with the sum field zeroed, truncated to one byte.
func Checksum(pkt []byte) byte {
	var s int
	for i, b := range pkt {
		if i == 1 {
			continue
		}
		s += int(b)
	}
	s += len(pkt)
	return byte(s)
}

// Encode builds a wire packet from a command, path payload and extra bytes.
func Encode(cmd byte, buf []byte) []byte {
	pkt := make([]byte, wireHeader+len(buf))
	pkt[0] = cmd
	pkt[6] = byte(len(buf))
	pkt[7] = byte(len(buf) >> 8)
	copy(pkt[wireHeader:], buf)
	pkt[1] = Checksum(pkt)
	return pkt
}

// EncodeFields converts an Achilles field-vector message (the analysis
// representation) into a wire packet. The annotated sum field is replaced
// with the real checksum — the injection harness restores what the analysis
// masked (§5.2).
func EncodeFields(msg []int64) ([]byte, error) {
	if len(msg) != NumFields {
		return nil, fmt.Errorf("%w: %d fields", ErrBadPacket, len(msg))
	}
	l := msg[FieldLen]
	if l < 0 || l > MaxPath {
		return nil, fmt.Errorf("%w: bb_len %d", ErrBadPacket, l)
	}
	buf := make([]byte, l)
	for i := int64(0); i < l; i++ {
		buf[i] = byte(msg[FieldBuf+i])
	}
	return Encode(byte(msg[FieldCmd]), buf), nil
}

// DecodeFields converts a wire packet back to the analysis field vector.
func DecodeFields(pkt []byte) ([]int64, error) {
	if len(pkt) < wireHeader {
		return nil, ErrBadPacket
	}
	l := int(pkt[6]) | int(pkt[7])<<8
	if l != len(pkt)-wireHeader || l > MaxPath {
		return nil, fmt.Errorf("%w: bb_len %d vs payload %d", ErrBadPacket, l, len(pkt)-wireHeader)
	}
	msg := make([]int64, NumFields)
	msg[FieldCmd] = int64(pkt[0])
	msg[FieldLen] = int64(l)
	for i := 0; i < l; i++ {
		msg[FieldBuf+i] = int64(pkt[wireHeader+i])
	}
	return msg, nil
}

// Handle processes one packet and returns the reply payload.
func (s *Server) Handle(pkt []byte) ([]byte, error) {
	if len(pkt) < wireHeader {
		return nil, ErrBadPacket
	}
	if pkt[1] != Checksum(pkt) {
		return nil, ErrBadPacket
	}
	l := int(pkt[6]) | int(pkt[7])<<8
	if l != len(pkt)-wireHeader {
		return nil, ErrBadPacket
	}
	buf := pkt[wireHeader:]
	// C-string parse: the path ends at the first NUL; anything after it is
	// silently ignored (the smuggling channel Achilles exposed).
	path := string(buf)
	if i := strings.IndexByte(path, 0); i >= 0 {
		s.SmuggledBytes += len(path) - i - 1
		path = path[:i]
	}
	for i := 0; i < len(path); i++ {
		if path[i] < CharMin || path[i] > CharMax {
			return nil, ErrBadPacket
		}
	}
	return s.dispatch(pkt[0], path)
}

func (s *Server) dispatch(cmd byte, path string) ([]byte, error) {
	s.Log = append(s.Log, fmt.Sprintf("%d %q", cmd, path))
	fs := s.FS
	switch int64(cmd) {
	case cmdCode("get_dir"):
		return []byte(strings.Join(fs.List(), "\n")), nil
	case cmdCode("get_file"), cmdCode("grab_file"):
		d, ok := fs.Get(path)
		if !ok {
			return nil, ErrNotFound
		}
		if int64(cmd) == cmdCode("grab_file") {
			fs.mu.Lock()
			delete(fs.files, path)
			fs.mu.Unlock()
		}
		return d, nil
	case cmdCode("del_file"):
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if _, ok := fs.files[path]; !ok {
			return nil, ErrNotFound
		}
		delete(fs.files, path)
		return []byte("ok"), nil
	case cmdCode("del_dir"):
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if !fs.dirs[path] {
			return nil, ErrNotFound
		}
		delete(fs.dirs, path)
		return []byte("ok"), nil
	case cmdCode("make_dir"):
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if fs.dirs[path] {
			return nil, ErrExists
		}
		fs.dirs[path] = true
		return []byte("ok"), nil
	case cmdCode("get_pro"):
		return []byte("rw"), nil
	case cmdCode("stat"):
		if _, ok := fs.Get(path); ok {
			return []byte("file"), nil
		}
		fs.mu.Lock()
		isDir := fs.dirs[path]
		fs.mu.Unlock()
		if isDir {
			return []byte("dir"), nil
		}
		return nil, ErrNotFound
	}
	return nil, ErrBadCommand
}

func cmdCode(name string) int64 {
	for _, c := range Commands {
		if c.Name == name {
			return c.Code
		}
	}
	panic("fsp: unknown command " + name)
}

// ImplAccepts replays an analysis field-vector message through a fresh
// concrete server over the real wire format. The annotated header fields
// must sit at the constants the analysis masked (EncodeFields restores the
// real checksum in their place). A reply — or a failed filesystem action
// such as "not found" — counts as accepted: the packet passed every
// validation check and the server attempted the operation, which is the
// model's accept marker.
func ImplAccepts(msg []int64) bool {
	if len(msg) != NumFields {
		return false
	}
	if msg[FieldSum] != 0 || msg[FieldKey] != 0 || msg[FieldSeq] != 0 || msg[FieldPos] != 0 {
		return false
	}
	pkt, err := EncodeFields(msg)
	if err != nil {
		return false
	}
	_, err = NewServer().Handle(pkt)
	return err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrExists)
}

// Client is the concrete glob-expanding FSP client.
type Client struct {
	// Send delivers a packet to the server and returns the reply (UDP in
	// deployment; direct in tests).
	Send func(pkt []byte) ([]byte, error)
}

// globMatch implements FSP's simple globbing: '*' matches any character
// sequence. There is no escape character (the root cause of §6.3's
// wildcard bug).
func globMatch(pattern, name string) bool {
	if pattern == "" {
		return name == ""
	}
	if pattern[0] == '*' {
		for i := 0; i <= len(name); i++ {
			if globMatch(pattern[1:], name[i:]) {
				return true
			}
		}
		return false
	}
	return name != "" && pattern[0] == name[0] && globMatch(pattern[1:], name[1:])
}

// Expand glob-expands a source argument against the server's listing. A
// pattern with no matches expands to nothing: a correct client never sends
// a literal '*'.
func (c *Client) Expand(arg string) ([]string, error) {
	if !strings.ContainsRune(arg, '*') {
		return []string{arg}, nil
	}
	reply, err := c.Send(Encode(byte(cmdCode("get_dir")), nil))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, name := range strings.Split(string(reply), "\n") {
		if name != "" && globMatch(arg, name) {
			out = append(out, name)
		}
	}
	return out, nil
}

// Run executes one client utility: glob-expands the argument and issues one
// command per expansion. It returns the paths that were operated on.
func (c *Client) Run(utility string, arg string) ([]string, error) {
	code := cmdCode(utility)
	targets, err := c.Expand(arg)
	if err != nil {
		return nil, err
	}
	for _, tgt := range targets {
		// bb_len counts the path characters; no NUL terminator is sent
		// (matching the NL client models: a correct client's payload never
		// contains a NUL).
		if _, err := c.Send(Encode(byte(code), []byte(tgt))); err != nil {
			return targets, err
		}
	}
	return targets, nil
}

// DirectClient wires a Client straight into a Server (no network).
func DirectClient(s *Server) *Client {
	return &Client{Send: s.Handle}
}
