package fsp

import (
	"fmt"
	"net"
	"strings"
	"time"
)

// UDPServer serves a concrete FSP Server over a real UDP socket, so that
// Trojan messages can be injected into a live deployment exactly as the
// paper's fire-drill scenario prescribes.
type UDPServer struct {
	Server *Server
	conn   *net.UDPConn
	done   chan struct{}
}

// ListenUDP starts an FSP server on the given address ("127.0.0.1:0" picks
// a free port).
func ListenUDP(addr string, s *Server) (*UDPServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	us := &UDPServer{Server: s, conn: conn, done: make(chan struct{})}
	go us.loop()
	return us, nil
}

// Addr returns the bound address.
func (us *UDPServer) Addr() string { return us.conn.LocalAddr().String() }

// Close stops the server.
func (us *UDPServer) Close() error {
	err := us.conn.Close()
	<-us.done
	return err
}

func (us *UDPServer) loop() {
	defer close(us.done)
	buf := make([]byte, 4096)
	for {
		n, peer, err := us.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		reply, herr := us.Server.Handle(append([]byte{}, buf[:n]...))
		if herr != nil {
			reply = []byte("ERR " + herr.Error())
		} else {
			reply = append([]byte("OK "), reply...)
		}
		if _, err := us.conn.WriteToUDP(reply, peer); err != nil {
			return
		}
	}
}

// wireError reconstructs the server-side sentinel from the message text of
// an "ERR <msg>" wire reply. Handle returns its sentinels bare or wrapped
// with the sentinel first ("fsp: malformed packet: bb_len 9"), so the wire
// text always starts with the sentinel's message; mapping it back lets
// callers on the far side of the UDP transport still match the typed errors
// with errors.Is instead of grepping reply strings.
func wireError(msg string) error {
	for _, sentinel := range []error{ErrNotFound, ErrExists, ErrBadPacket, ErrBadCommand} {
		if rest, ok := strings.CutPrefix(msg, sentinel.Error()); ok {
			return fmt.Errorf("fsp: server error: %w%s", sentinel, rest)
		}
	}
	return fmt.Errorf("fsp: server error: %s", msg)
}

// UDPClient returns a Client that talks to a UDP FSP server.
func UDPClient(addr string) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{Send: func(pkt []byte) ([]byte, error) {
		conn, err := net.DialUDP("udp", nil, ua)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
			return nil, err
		}
		if _, err := conn.Write(pkt); err != nil {
			return nil, err
		}
		buf := make([]byte, 4096)
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		reply := buf[:n]
		if len(reply) >= 4 && string(reply[:4]) == "ERR " {
			return nil, wireError(string(reply[4:]))
		}
		if len(reply) >= 3 && string(reply[:3]) == "OK " {
			return reply[3:], nil
		}
		return reply, nil
	}}, nil
}
