package fsp

import (
	"fmt"
	"math/rand"

	"achilles/internal/core"
	"achilles/internal/protocols/registry"
)

// Generator fuzzes the same fields Achilles analyses: cmd, bb_len and the
// path bytes; the annotated fields stay at their expected constants
// (fuzzing them too only makes the baseline worse — §6.2).
func Generator(r *rand.Rand) []int64 {
	msg := make([]int64, NumFields)
	msg[FieldCmd] = int64(r.Intn(256))
	msg[FieldLen] = int64(r.Intn(256))
	for i := 0; i < MaxPath; i++ {
		msg[FieldBuf+i] = int64(r.Intn(256))
	}
	return msg
}

// ClassKey buckets a Trojan by its (cmd, reportedLen, trueLen) class — the
// §6.2 ground-truth classes.
func ClassKey(msg []int64) string {
	cmd, rep, act, _ := ClassOf(msg)
	return fmt.Sprintf("%d/%d/%d", cmd, rep, act)
}

func implAccepts(msg []int64, _ registry.State) bool { return ImplAccepts(msg) }

func init() {
	registry.Register(registry.Descriptor{
		Name:          "fsp",
		Aliases:       []string{"fsp-accuracy"},
		Summary:       "FSP file server: 80 mismatched-length Trojan classes (§6.2)",
		Target:        func() core.Target { return NewTarget(false) },
		ExpectTrojans: true,
		IsTrojan:      func(msg []int64, _ registry.State) bool { return IsTrojan(msg, false) },
		ClassKey:      ClassKey,
		ImplAccepts:   implAccepts,
		Fuzz:          &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
	registry.Register(registry.Descriptor{
		Name:          "fsp-glob",
		Summary:       "FSP with glob-aware clients: adds the wildcard Trojan family (§6.3)",
		Target:        func() core.Target { return NewTarget(true) },
		ExpectTrojans: true,
		IsTrojan:      func(msg []int64, _ registry.State) bool { return IsTrojan(msg, true) },
		ClassKey:      ClassKey,
		ImplAccepts:   implAccepts,
		Fuzz:          &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
}
