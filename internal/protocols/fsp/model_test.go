package fsp

import (
	"math/rand"
	"testing"

	"achilles/internal/core"
	"achilles/internal/expr"
	"achilles/internal/solver"
	"achilles/internal/symexec"
)

func TestClientPathCount(t *testing.T) {
	pc, err := core.ExtractClientPredicate(Clients(false), core.ExtractOptions{
		FieldNames:     FieldNames,
		SkipPreprocess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 utilities x path lengths 1..4.
	if len(pc.Paths) != 32 {
		t.Fatalf("client paths = %d, want 32", len(pc.Paths))
	}
	if pc.NumFields != NumFields {
		t.Fatalf("fields = %d, want %d", pc.NumFields, NumFields)
	}
	// Every path: cmd and bb_len are constants; annotated fields are 0.
	lenHist := map[int64]int{}
	for _, p := range pc.Paths {
		if !p.Fields[FieldCmd].IsConst() {
			t.Fatalf("cmd not constant: %s", p.Fields[FieldCmd])
		}
		if !p.Fields[FieldLen].IsConst() {
			t.Fatalf("bb_len not constant: %s", p.Fields[FieldLen])
		}
		for _, f := range []int{FieldSum, FieldKey, FieldSeq, FieldPos} {
			if !p.Fields[f].IsConst() || p.Fields[f].Val != 0 {
				t.Fatalf("annotated field %d = %s", f, p.Fields[f])
			}
		}
		lenHist[p.Fields[FieldLen].Val]++
	}
	for l := int64(1); l <= MaxLen; l++ {
		if lenHist[l] != 8 {
			t.Fatalf("paths with bb_len=%d: %d, want 8", l, lenHist[l])
		}
	}
}

func TestServerAcceptingPathCount(t *testing.T) {
	res, err := symexec.Run(ServerUnit(), symexec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc := res.ByStatus(symexec.StatusAccepted)
	// (L, t) combos: sum over L=1..4 of (L+1) = 14, times 8 commands.
	if len(acc) != 112 {
		t.Fatalf("accepting server paths = %d, want 112", len(acc))
	}
	for _, st := range res.States {
		if st.Status == symexec.StatusError {
			t.Fatalf("server model error: %v", st.Err)
		}
	}
}

func TestKnownTrojanCount(t *testing.T) {
	if KnownTrojanClasses() != 80 {
		t.Fatalf("known classes = %d, want 80", KnownTrojanClasses())
	}
}

// TestAcceptsAgreesWithModel cross-validates the fast Go oracle against the
// NL server model on random messages: the two implementations must agree on
// every input, which is what makes the fuzzing baseline trustworthy.
func TestAcceptsAgreesWithModel(t *testing.T) {
	unit := ServerUnit()
	rnd := rand.New(rand.NewSource(1))
	agree := 0
	for i := 0; i < 2000; i++ {
		msg := randomMessage(rnd, i%3 == 0)
		res, err := symexec.Run(unit, symexec.Options{Concrete: true, Message: msg})
		if err != nil {
			t.Fatal(err)
		}
		got := res.States[0].Status == symexec.StatusAccepted
		if res.States[0].Status == symexec.StatusError {
			t.Fatalf("model error on %v: %v", msg, res.States[0].Err)
		}
		want := Accepts(msg)
		if got != want {
			t.Fatalf("disagreement on %v: model=%v oracle=%v", msg, got, want)
		}
		if got {
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("no random message was accepted; the biased generator is broken")
	}
}

// randomMessage generates a message; biased=true makes acceptance likely.
func randomMessage(rnd *rand.Rand, biased bool) []int64 {
	msg := make([]int64, NumFields)
	if biased {
		msg[FieldCmd] = Commands[rnd.Intn(len(Commands))].Code
		l := int64(rnd.Intn(MaxLen) + 1)
		msg[FieldLen] = l
		for i := int64(0); i < l; i++ {
			if rnd.Intn(8) == 0 {
				break // early NUL: a Trojan shape
			}
			msg[FieldBuf+i] = int64(CharMin + rnd.Intn(CharMax-CharMin+1))
		}
		return msg
	}
	for i := range msg {
		msg[i] = int64(rnd.Intn(256))
	}
	return msg
}

func TestIsTrojanOracle(t *testing.T) {
	valid := make([]int64, NumFields)
	valid[FieldCmd] = 10
	valid[FieldLen] = 2
	valid[FieldBuf] = 'a'
	valid[FieldBuf+1] = 'b'
	if !Accepts(valid) {
		t.Fatal("valid message rejected")
	}
	if IsTrojan(valid, false) || IsTrojan(valid, true) {
		t.Fatal("valid message misclassified as Trojan")
	}
	// Early NUL => mismatched-length Trojan.
	mism := append([]int64{}, valid...)
	mism[FieldBuf+1] = 0
	mism[FieldLen] = 2
	if !Accepts(mism) {
		t.Fatal("mismatched-length message should be accepted by the server")
	}
	if !IsTrojan(mism, false) {
		t.Fatal("mismatched-length message not classified as Trojan")
	}
	// Wildcard: Trojan only under the globbing client model.
	wild := append([]int64{}, valid...)
	wild[FieldBuf] = Wildcard
	if !Accepts(wild) {
		t.Fatal("wildcard message should be accepted")
	}
	if IsTrojan(wild, false) {
		t.Fatal("wildcard is client-generatable in the no-glob variant")
	}
	if !IsTrojan(wild, true) {
		t.Fatal("wildcard must be Trojan under globbing clients")
	}
	// Rejected messages are never Trojan.
	bad := append([]int64{}, valid...)
	bad[FieldSum] = 1
	if IsTrojan(bad, true) {
		t.Fatal("rejected message misclassified")
	}
}

// TestAccuracyExperiment is the §6.2 core result: Achilles discovers all 80
// known Trojan classes in the bounded FSP setup with zero false positives.
func TestAccuracyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full FSP analysis in -short mode")
	}
	run, err := core.Run(NewTarget(false), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := run.Analysis
	if len(res.Trojans) != KnownTrojanClasses() {
		t.Fatalf("trojans = %d, want %d", len(res.Trojans), KnownTrojanClasses())
	}
	// No false positives: every report verified both ways.
	classes := map[[3]int64]bool{}
	for _, tr := range res.Trojans {
		if !tr.VerifiedAccept {
			t.Errorf("trojan %d: example %v not accepted concretely", tr.Index, tr.Concrete)
		}
		if !tr.VerifiedNotClient {
			t.Errorf("trojan %d: example %v generatable by a client", tr.Index, tr.Concrete)
		}
		if !IsTrojan(tr.Concrete, false) {
			t.Errorf("trojan %d: example %v fails the ground-truth oracle", tr.Index, tr.Concrete)
		}
		cmd, rep, act, _ := ClassOf(tr.Concrete)
		if act >= rep {
			t.Errorf("trojan %d: example %v has no early NUL", tr.Index, tr.Concrete)
		}
		classes[[3]int64{cmd, rep, act}] = true
	}
	if len(classes) != KnownTrojanClasses() {
		t.Errorf("distinct classes covered = %d, want %d", len(classes), KnownTrojanClasses())
	}
	// Figure 10 shape: discovery is incremental (strictly increasing).
	if len(res.Timeline) != len(res.Trojans) {
		t.Errorf("timeline entries = %d", len(res.Timeline))
	}
}

// TestWildcardExperiment reproduces the §6.3 wildcard finding: with glob-
// aware clients, Achilles additionally reports Trojan classes on the
// valid-length paths that admit a literal '*'.
func TestWildcardExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full FSP analysis in -short mode")
	}
	run, err := core.Run(NewTarget(true), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := run.Analysis
	// 80 length classes + 32 wildcard classes (8 cmds x lengths 1..4).
	want := KnownTrojanClasses() + 8*MaxLen
	if len(res.Trojans) != want {
		t.Fatalf("trojans = %d, want %d", len(res.Trojans), want)
	}
	s := solver.Default()
	wildcardClasses := 0
	for _, tr := range res.Trojans {
		_, rep, act, _ := ClassOf(tr.Concrete)
		if act == rep {
			wildcardClasses++
			// The witness must admit a literal '*' somewhere in the path.
			star := expr.False()
			for i := 0; i < MaxPath; i++ {
				star = expr.Or(star, expr.Eq(expr.Var(run.Clients.MsgVarName(FieldBuf+i)), expr.Const(Wildcard)))
			}
			if r, _ := s.Check([]*expr.Expr{tr.Witness, star}); r != solver.Sat {
				t.Errorf("valid-length trojan %d does not admit '*': %v", tr.Index, tr.Concrete)
			}
		}
		if !IsTrojan(tr.Concrete, true) {
			t.Errorf("trojan %d example %v fails oracle", tr.Index, tr.Concrete)
		}
	}
	if wildcardClasses != 8*MaxLen {
		t.Errorf("wildcard classes = %d, want %d", wildcardClasses, 8*MaxLen)
	}
}
