package fsp

import (
	"errors"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	pkt := Encode(10, []byte("abc"))
	msg, err := DecodeFields(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if msg[FieldCmd] != 10 || msg[FieldLen] != 3 || msg[FieldBuf] != 'a' || msg[FieldBuf+2] != 'c' {
		t.Fatalf("decoded %v", msg)
	}
	back, err := EncodeFields(msg)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(pkt) {
		t.Fatalf("roundtrip mismatch: %v vs %v", back, pkt)
	}
}

func TestChecksumRejected(t *testing.T) {
	s := NewServer()
	pkt := Encode(10, []byte("a"))
	pkt[1]++ // corrupt checksum
	if _, err := s.Handle(pkt); err == nil {
		t.Fatal("bad checksum accepted")
	}
}

func TestBasicOperations(t *testing.T) {
	s := NewServer()
	s.FS.Put("hello", []byte("world"))
	c := DirectClient(s)

	if _, err := c.Run("make_dir", "docs"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run("stat", "docs"); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Send(Encode(byte(cmdCode("get_file")), []byte("hello")))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "world" {
		t.Fatalf("got %q", reply)
	}
	if _, err := c.Run("del_file", "hello"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.FS.Get("hello"); ok {
		t.Fatal("file not deleted")
	}
	if _, err := c.Run("del_file", "hello"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestGlobExpansion(t *testing.T) {
	s := NewServer()
	s.FS.Put("file1", nil)
	s.FS.Put("file2", nil)
	s.FS.Put("other", nil)
	c := DirectClient(s)
	targets, err := c.Expand("file*")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 {
		t.Fatalf("expanded to %v", targets)
	}
	// A pattern with no match expands to nothing: '*' is never sent.
	targets, err = c.Expand("zzz*")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 0 {
		t.Fatalf("no-match pattern expanded to %v", targets)
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"file*", "file1", true},
		{"file*", "file", true},
		{"file*", "afile", false},
		{"*", "anything", true},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "ab", false},
		{"f*l*e", "fle", true},
	}
	for _, c := range cases {
		if got := globMatch(c.pat, c.name); got != c.want {
			t.Errorf("globMatch(%q,%q)=%v want %v", c.pat, c.name, got, c.want)
		}
	}
}

// TestWildcardTrojanImpact replays the §6.3 story end to end: a Trojan
// message creates a directory with a literal '*' in its name; removing it
// with a correct client then destroys sibling directories too, because the
// client cannot escape the wildcard.
func TestWildcardTrojanImpact(t *testing.T) {
	s := NewServer()
	c := DirectClient(s)

	// Normal state: a valuable directory exists. (Path lengths respect the
	// analysis bound of 4 characters; the name stands in for the paper's
	// 'fileWithAllMyBankAccounts'.)
	if _, err := c.Run("make_dir", "fil1"); err != nil {
		t.Fatal(err)
	}

	// Inject the Trojan discovered by Achilles: a MAKE_DIR whose path
	// contains a literal '*'. No correct client can produce this packet
	// (glob expansion would have replaced the '*').
	trojan := make([]int64, NumFields)
	trojan[FieldCmd] = cmdCode("make_dir")
	trojan[FieldLen] = 4
	for i, ch := range []byte("fil*") {
		trojan[FieldBuf+i] = int64(ch)
	}
	if !IsTrojan(trojan, true) {
		t.Fatal("injection vector is not a Trojan under globbing clients")
	}
	pkt, err := EncodeFields(trojan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Handle(pkt); err != nil {
		t.Fatalf("server rejected the Trojan: %v", err)
	}
	if !s.FS.dirs["fil*"] {
		t.Fatal("trojan directory not created")
	}

	// The victim now tries to delete 'fil*' with a correct client: the
	// glob matches BOTH directories, destroying the valuable one.
	deleted, err := c.Run("del_dir", "fil*")
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("glob deleted %v", deleted)
	}
	if s.FS.dirs["fil1"] {
		t.Fatal("collateral directory survived — expected the bug to destroy it")
	}
}

// TestMismatchedLengthSmuggling demonstrates the second §6.3 finding: an
// early NUL lets arbitrary payload ride along unnoticed.
func TestMismatchedLengthSmuggling(t *testing.T) {
	s := NewServer()
	s.FS.Put("a", []byte("data"))

	trojan := make([]int64, NumFields)
	trojan[FieldCmd] = cmdCode("del_file")
	trojan[FieldLen] = 4
	trojan[FieldBuf] = 'a'
	// buf[1] = 0 (early NUL), then smuggled payload.
	trojan[FieldBuf+2] = 0x41
	trojan[FieldBuf+3] = 0x42
	if !IsTrojan(trojan, false) {
		t.Fatal("vector is not a mismatched-length Trojan")
	}
	pkt, err := EncodeFields(trojan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Handle(pkt); err != nil {
		t.Fatalf("server rejected the Trojan: %v", err)
	}
	if _, ok := s.FS.Get("a"); ok {
		t.Fatal("the C-string prefix was not acted on")
	}
	if s.SmuggledBytes != 2 {
		t.Fatalf("smuggled bytes = %d, want 2", s.SmuggledBytes)
	}
}

func TestUDPTransport(t *testing.T) {
	s := NewServer()
	s.FS.Put("net", []byte("payload"))
	us, err := ListenUDP("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()

	c, err := UDPClient(us.Addr())
	if err != nil {
		t.Fatal(err)
	}
	reply, err := c.Send(Encode(byte(cmdCode("get_file")), []byte("net")))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "payload" {
		t.Fatalf("got %q", reply)
	}
	// Errors travel back too, and keep their sentinel identity across the
	// wire: the client maps "ERR <msg>" replies back to the typed errors.
	if _, err := c.Send(Encode(byte(cmdCode("get_file")), []byte("missing"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, err := c.Send([]byte{1, 2, 3}); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("want ErrBadPacket, got %v", err)
	}
}
