// Package fsp models the File Service Protocol (FSP 2.8.1b26), the UDP file
// transfer system that is the main evaluation target of the Achilles paper
// (§6.1–§6.3).
//
// The analysed message is the FSP command packet:
//
//	cmd(1B) sum(1B) bb_key(2B) bb_seq(2B) bb_len(2B) bb_pos(4B) buf(path)
//
// represented as a field vector: one slot per header field plus one slot per
// path byte (MaxPath bytes). Exactly as in the paper's evaluation, the sum,
// bb_key, bb_seq and bb_pos fields are "annotated away": clients write a
// predefined constant (0) and the server checks for that constant, which
// sidesteps checksum reasoning and keeps the remaining fields independent.
//
// Two real FSP bugs are planted faithfully:
//
//   - Mismatched string lengths (§6.3): the server derives the path with
//     C-string semantics (stops at the first NUL) and never checks that the
//     actual length matches bb_len, so messages with an early NUL followed
//     by arbitrary payload are accepted. No client generates them: for a
//     path of k characters clients always send bb_len = k with no embedded
//     NUL. With path length bounded to MaxLen = 4 this yields exactly
//     (1+2+3+4) × 8 utilities = 80 Trojan classes (§6.2's known set).
//
//   - The wildcard character (§6.3): FSP clients glob-expand '*' before
//     sending and offer no escape, so no correct client ever sends a literal
//     '*' in a source path — yet the server accepts any printable character.
//     The glob-aware client models therefore exclude '*' and Achilles finds
//     the extra Trojan classes on the otherwise-valid paths.
//
// The package also provides a concrete Go FSP implementation (UDP server
// with an in-memory filesystem and globbing clients) used for live Trojan
// injection; see impl.go and udp.go.
package fsp

import (
	"fmt"

	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/symexec"
)

// Message geometry.
const (
	FieldCmd = 0 // command byte
	FieldSum = 1 // checksum (annotated to constant 0)
	FieldKey = 2 // bb_key (annotated)
	FieldSeq = 3 // bb_seq (annotated)
	FieldPos = 4 // bb_pos (annotated)
	FieldLen = 5 // bb_len: reported path length
	FieldBuf = 6 // first path byte

	MaxPath   = 5 // path buffer slots
	MaxLen    = 4 // maximum reported path length (the paper's bound of 5 exclusive)
	NumFields = FieldBuf + MaxPath
)

// The eight single-path-argument FSP client utilities analysed in §6.2.
var Commands = []struct {
	Name string
	Code int64
}{
	{"get_dir", 10},
	{"get_file", 11},
	{"del_file", 12},
	{"del_dir", 13},
	{"make_dir", 14},
	{"get_pro", 15},
	{"stat", 16},
	{"grab_file", 17},
}

// CharMin and CharMax bound the printable characters the server accepts.
const (
	CharMin  = 33
	CharMax  = 126
	Wildcard = 42 // '*'
)

// FieldNames names the message layout for reports.
var FieldNames = []string{
	"cmd", "sum", "bb_key", "bb_seq", "bb_pos", "bb_len",
	"buf0", "buf1", "buf2", "buf3", "buf4",
}

// ServerSrc is the NL model of the FSP server. The trailing-byte loop models
// the UDP datagram length (bytes beyond bb_len are absent, i.e. zero); the
// missing t == bb_len check is the planted mismatched-length bug.
const ServerSrc = `
const MAXLEN = 4;
const MAXPATH = 5;
var msg [11]int;

func main() {
	recv(msg);
	// Annotated header fields: client writes constant 0, server checks it.
	if msg[1] != 0 { reject(); }
	if msg[2] != 0 { reject(); }
	if msg[3] != 0 { reject(); }
	if msg[4] != 0 { reject(); }
	var L int = msg[5];
	if L < 1 { reject(); }
	if L > MAXLEN { reject(); }
	// C-string scan of the path: stops at the first NUL.
	var t int = 0;
	var stop int = 0;
	while t < L && stop == 0 {
		var ch int = msg[6 + t];
		if ch == 0 {
			stop = 1;
		} else {
			if ch < 33 { reject(); }
			if ch > 126 { reject(); }
			t = t + 1;
		}
	}
	// BUG (mismatched string lengths): the server never checks t == L, so
	// an early NUL with arbitrary payload behind it is accepted.
	// Datagram length: bytes beyond the declared length are absent (zero).
	var j int = 0;
	while j < MAXPATH {
		if j >= L {
			if msg[6 + j] != 0 { reject(); }
		}
		j = j + 1;
	}
	// Command dispatch: the server performs the file-system action here
	// (accept markers sit where the model invokes local system calls).
	if msg[0] == 10 { accept(); }
	if msg[0] == 11 { accept(); }
	if msg[0] == 12 { accept(); }
	if msg[0] == 13 { accept(); }
	if msg[0] == 14 { accept(); }
	if msg[0] == 15 { accept(); }
	if msg[0] == 16 { accept(); }
	if msg[0] == 17 { accept(); }
	reject();
}`

// clientTemplate is the per-utility NL client model. The %d is the command
// code; the %s slot holds the globbing guard (empty for the no-glob
// variant used in the §6.2 accuracy experiment, where the paper's setup
// bypasses glob expansion with annotations).
const clientTemplate = `
const CMD = %d;
var msg [11]int;

func main() {
	var arg [4]int;
	var i int = 0;
	var done int = 0;
	while i < 4 && done == 0 {
		var ch int = input();
		if ch == 0 {
			done = 1;
		} else {
			if ch < 33 { exit(); }
			if ch > 126 { exit(); }
%s			arg[i] = ch;
			i = i + 1;
		}
	}
	if i == 0 { exit(); }
	msg[0] = CMD;
	// msg[1..4] stay 0: the annotated checksum/key/seq/pos constants.
	msg[5] = i;
	var j int = 0;
	while j < i {
		msg[6 + j] = arg[j];
		j = j + 1;
	}
	send(msg);
	exit();
}`

// globGuard models FSP's glob expansion: a literal '*' never survives into
// a sent source path (there is no escape character in FSP globbing).
const globGuard = "\t\t\tif ch == 42 { exit(); }\n"

// richClientTemplate is a closer model of the real FSP utilities' argv
// handling: boolean flags and path normalisation (an optional leading '/'
// that the client strips, since FSP paths are sent relative to the root).
// Flags and normalisation do not change the message space, but they explode
// the number of client path predicates — the regime Figure 11 studies,
// where the differentFrom machinery pays off.
const richClientTemplate = `
const CMD = %d;
var msg [11]int;

var attempts int;
var localEcho int;

func main() {
	// Command-line flags (e.g. -v, -f): parsed before the path argument.
	// Each flag changes local behaviour, so the client forks per flag
	// combination exactly as real argv parsing does.
	var verbose int = input();
	if verbose != 0 && verbose != 1 { exit(); }
	if verbose == 1 {
		localEcho = 1;
	}
	var force int = input();
	if force != 0 && force != 1 { exit(); }
	if force == 1 {
		attempts = 3;
	} else {
		attempts = 1;
	}
	// Optional leading '/' stripped during path normalisation.
	var lead int = input();
	if lead != 0 && lead != 47 { exit(); }
	if lead == 47 {
		localEcho = localEcho + 1;
	}
	var arg [4]int;
	var i int = 0;
	var done int = 0;
	while i < 4 && done == 0 {
		var ch int = input();
		if ch == 0 {
			done = 1;
		} else {
			if ch < 33 { exit(); }
			if ch > 126 { exit(); }
%s			arg[i] = ch;
			i = i + 1;
		}
	}
	if i == 0 { exit(); }
	msg[0] = CMD;
	msg[5] = i;
	var j int = 0;
	while j < i {
		msg[6 + j] = arg[j];
		j = j + 1;
	}
	send(msg);
	exit();
}`

// RichClientSrc renders one rich client utility model.
func RichClientSrc(code int64, glob bool) string {
	guard := ""
	if glob {
		guard = globGuard
	}
	return fmt.Sprintf(richClientTemplate, code, guard)
}

// RichClients compiles the eight rich client models (8 flag/normalisation
// variants per utility and path length => 8×4×8 = 256 client paths).
func RichClients(glob bool) []core.ClientProgram {
	out := make([]core.ClientProgram, 0, len(Commands))
	for _, c := range Commands {
		out = append(out, core.ClientProgram{
			Name: c.Name + "-rich",
			Unit: lang.MustCompile(RichClientSrc(c.Code, glob)),
		})
	}
	return out
}

// NewRichTarget is NewTarget with the rich client corpus; the Trojan
// classes are identical (flags do not change the message space) but the
// client predicate is 8x larger.
func NewRichTarget(glob bool) core.Target {
	t := NewTarget(glob)
	t.Name += "-rich"
	t.Clients = RichClients(glob)
	return t
}

// ClientSrc renders one client utility model.
func ClientSrc(code int64, glob bool) string {
	guard := ""
	if glob {
		guard = globGuard
	}
	return fmt.Sprintf(clientTemplate, code, guard)
}

// Clients compiles the eight client utility models.
func Clients(glob bool) []core.ClientProgram {
	out := make([]core.ClientProgram, 0, len(Commands))
	for _, c := range Commands {
		out = append(out, core.ClientProgram{
			Name: c.Name,
			Unit: lang.MustCompile(ClientSrc(c.Code, glob)),
		})
	}
	return out
}

// ServerUnit compiles the server model.
func ServerUnit() *lang.Unit { return lang.MustCompile(ServerSrc) }

// NewTarget builds the Achilles target. glob selects the client variant:
// false reproduces the §6.2 accuracy experiment (80 known Trojan classes);
// true additionally exposes the wildcard bug on the valid-length paths.
func NewTarget(glob bool) core.Target {
	name := "fsp-accuracy"
	if glob {
		name = "fsp-glob"
	}
	return core.Target{
		Name:       name,
		Server:     ServerUnit(),
		Clients:    Clients(glob),
		FieldNames: FieldNames,
		ServerExec: symexec.Options{},
		ClientExec: symexec.Options{},
	}
}

// KnownTrojanClasses is the §6.2 ground truth: one class per (utility,
// reported length L, true length t) with t < L — (1+2+3+4)×8 = 80.
func KnownTrojanClasses() int {
	perCmd := 0
	for l := 1; l <= MaxLen; l++ {
		perCmd += l
	}
	return perCmd * len(Commands)
}

// ClassOf maps a concrete message to its Trojan class identifier
// (cmd, reportedLen, trueLen), or ok=false if the message is not an
// accepted-shape message.
func ClassOf(msg []int64) (cmd, reported, actual int64, ok bool) {
	if len(msg) != NumFields {
		return 0, 0, 0, false
	}
	cmd = msg[FieldCmd]
	reported = msg[FieldLen]
	actual = int64(0)
	for i := 0; i < MaxPath; i++ {
		if msg[FieldBuf+i] == 0 {
			break
		}
		actual++
	}
	return cmd, reported, actual, true
}

// IsTrojan is the ground-truth oracle for the FSP experiments: a message is
// Trojan iff the server accepts it and no correct client can generate it.
// glob selects which client variant defines "correct".
func IsTrojan(msg []int64, glob bool) bool {
	if !Accepts(msg) {
		return false
	}
	cmd, reported, actual, _ := ClassOf(msg)
	_ = cmd
	if actual < reported {
		return true // mismatched-length Trojan
	}
	if glob {
		for i := int64(0); i < reported; i++ {
			if msg[FieldBuf+i] == Wildcard {
				return true // wildcard Trojan
			}
		}
	}
	return false
}

// Accepts is a direct Go re-implementation of the server model's accept
// condition, used as a fast oracle by the fuzzing baseline (the NL
// interpreter agrees with it; see the cross-validation test).
func Accepts(msg []int64) bool {
	if len(msg) != NumFields {
		return false
	}
	if msg[FieldSum] != 0 || msg[FieldKey] != 0 || msg[FieldSeq] != 0 || msg[FieldPos] != 0 {
		return false
	}
	l := msg[FieldLen]
	if l < 1 || l > MaxLen {
		return false
	}
	for t := int64(0); t < l; t++ {
		ch := msg[FieldBuf+t]
		if ch == 0 {
			break
		}
		if ch < CharMin || ch > CharMax {
			return false
		}
	}
	for j := l; j < MaxPath; j++ {
		if msg[FieldBuf+j] != 0 {
			return false
		}
	}
	validCmd := false
	for _, c := range Commands {
		if msg[FieldCmd] == c.Code {
			validCmd = true
			break
		}
	}
	return validCmd
}
