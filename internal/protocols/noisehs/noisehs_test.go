package noisehs

import (
	"bytes"
	"errors"
	"testing"

	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/symexec"
	"achilles/internal/wire"
)

// TestAnalysisFindsReplayTrojan pins the seeded vulnerability end to end:
// the analysis yields verified Trojans, every report satisfies the oracle,
// every report is a legacy-version handshake replaying a stale nonce, and —
// the byte-level guarantee no NL-only target can give — every report
// lowers to real frame bytes the vulnerable responder accepts and the
// fixed responder refuses.
func TestAnalysisFindsReplayTrojan(t *testing.T) {
	run, err := core.Run(NewTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Analysis.Trojans) == 0 {
		t.Fatal("no Trojans found on the vulnerable responder")
	}
	for _, tr := range run.Analysis.Trojans {
		if !tr.VerifiedAccept || !tr.VerifiedNotClient {
			t.Errorf("trojan %v not fully verified", tr.Concrete)
		}
		if !IsTrojan(tr.Concrete, StateLastNonce, StateCookieKey) {
			t.Errorf("reported Trojan %v rejected by the oracle", tr.Concrete)
		}
		if tr.Concrete[FieldVersion] != VersionLegacy || tr.Concrete[FieldType] != MsgHandshake {
			t.Errorf("trojan %v is not a legacy handshake (the seeded class)", tr.Concrete)
		}
		if tr.Concrete[FieldNonce] > StateLastNonce {
			t.Errorf("trojan %v carries a fresh nonce", tr.Concrete)
		}
		frame, err := Lifted.Lower(tr.Concrete)
		if err != nil {
			t.Fatalf("trojan %v does not lower to frame bytes: %v", tr.Concrete, err)
		}
		if ok, err := NewResponder(StateLastNonce, StateCookieKey, false).HandleFrame(frame); err != nil || !ok {
			t.Errorf("vulnerable responder rejected trojan bytes % x (%v)", frame, err)
		}
		if ok, _ := NewResponder(StateLastNonce, StateCookieKey, true).HandleFrame(frame); ok {
			t.Errorf("fixed responder accepted trojan bytes % x", frame)
		}
	}
}

// TestFixedResponderHasNoTrojans pins the patched model.
func TestFixedResponderHasNoTrojans(t *testing.T) {
	run, err := core.Run(NewFixedTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(run.Analysis.Trojans); n != 0 {
		t.Fatalf("fixed responder reported %d Trojans: %v", n, run.Analysis.Trojans[0].Concrete)
	}
}

// TestModelMatchesGoOracle cross-checks the NL responder model's concrete
// interpretation against the Go Accepts oracle over a sweep that straddles
// every branch: wire-status classes, both versions plus invalid ones, both
// message types, keys and nonces on both sides of their bounds, and cookies
// valid and not.
func TestModelMatchesGoOracle(t *testing.T) {
	unit := lang.MustCompile(ServerSrc)
	for _, w := range []int64{0, int64(wire.OutcomeShort), int64(wire.OutcomeBadMagic)} {
		for v := int64(0); v <= 3; v++ {
			for ty := int64(0); ty <= 3; ty++ {
				for k := int64(-1); k <= MaxKey+1; k++ {
					for n := int64(0); n <= NonceBound+1; n++ {
						for _, c := range []int64{0, Cookie(StateCookieKey, k), 12} {
							msg := []int64{w, v, ty, k, n, c}
							res, err := symexec.Run(unit, symexec.Options{
								Concrete:       true,
								Message:        msg,
								GlobalConcrete: DefaultState(),
							})
							if err != nil {
								t.Fatal(err)
							}
							got := res.States[0].Status == symexec.StatusAccepted
							want := Accepts(msg, StateLastNonce, StateCookieKey)
							if got != want {
								t.Fatalf("model accept=%v, oracle=%v for %v", got, want, msg)
							}
						}
					}
				}
			}
		}
	}
}

// TestImplMatchesOracleOverBytes replays the representable message domain
// through the byte-level responder: every clean vector is encoded to real
// frame bytes, decoded and handled, and the accept decision must match the
// oracle. A fresh responder per message keeps the stateful replay window at
// the canonical world.
func TestImplMatchesOracleOverBytes(t *testing.T) {
	for v := int64(0); v <= 3; v++ {
		for ty := int64(0); ty <= 3; ty++ {
			for k := int64(0); k <= MaxKey+1; k++ {
				for n := int64(0); n <= NonceBound+1; n++ {
					for _, c := range []int64{0, Cookie(StateCookieKey, k), 12} {
						msg := []int64{int64(wire.OutcomeOK), v, ty, k, n, c}
						frame, err := Lifted.Lower(msg)
						if err != nil {
							t.Fatalf("Lower(%v): %v", msg, err)
						}
						got, err := NewResponder(StateLastNonce, StateCookieKey, false).HandleFrame(frame)
						if err != nil {
							t.Fatalf("HandleFrame(%v): %v", msg, err)
						}
						want := Accepts(msg, StateLastNonce, StateCookieKey)
						if got != want {
							t.Fatalf("impl accept=%v, oracle=%v for %v", got, want, msg)
						}
					}
				}
			}
		}
	}
}

// TestMalformedFramesRejected: every decode-error class the schema can
// produce, materialised as exemplar bytes, is refused by the responder with
// a typed error before the handshake logic runs — the behaviour the NL
// model mirrors with its wire-status guard.
func TestMalformedFramesRejected(t *testing.T) {
	for _, c := range Lifted.Outcomes() {
		vec := ReplayedHandshake(1, StateLastNonce, StateCookieKey)
		vec[FieldWire] = int64(c)
		frame, err := Lifted.Lower(vec)
		if err != nil {
			t.Fatalf("Lower class %s: %v", c, err)
		}
		r := NewResponder(StateLastNonce, StateCookieKey, false)
		ok, err := r.HandleFrame(frame)
		if ok {
			t.Errorf("responder accepted a %s frame", c)
		}
		var de *wire.DecodeError
		if !errors.As(err, &de) || de.Outcome != c {
			t.Errorf("class %s frame: got error %v", c, err)
		}
		if r.DecodeFailures != 1 {
			t.Errorf("class %s frame: DecodeFailures = %d", c, r.DecodeFailures)
		}
	}
}

// TestInitiatorFrameRoundTrip: real initiator bytes decode back to the
// lifted vector the analysis reasons about.
func TestInitiatorFrameRoundTrip(t *testing.T) {
	frame, err := InitiatorFrame(VersionCurrent, 2, StateLastNonce+1, StateCookieKey)
	if err != nil {
		t.Fatal(err)
	}
	got := Lifted.LiftFrame(frame)
	want := []int64{int64(wire.OutcomeOK), VersionCurrent, MsgHandshake,
		2, StateLastNonce + 1, Cookie(StateCookieKey, 2)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lifted initiator frame %v, want %v", got, want)
		}
	}
}

// TestServeStream drives the responder over a byte stream: two good frames
// accepted, then a mid-frame connection cut rejected without an error
// escaping the serve loop.
func TestServeStream(t *testing.T) {
	hello, err := Lifted.S.Encode([]int64{VersionCurrent, MsgHello, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := InitiatorFrame(VersionCurrent, 1, StateLastNonce+1, StateCookieKey)
	if err != nil {
		t.Fatal(err)
	}
	stream := append(append(append([]byte(nil), hello...), hs...), hs[:3]...)
	r := NewResponder(StateLastNonce, StateCookieKey, false)
	accepted, err := r.ServeStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 2 {
		t.Fatalf("stream accepted %d frames, want 2", accepted)
	}
	if r.DecodeFailures != 1 {
		t.Fatalf("stream DecodeFailures = %d, want 1 (the cut frame)", r.DecodeFailures)
	}
	if len(r.Sessions) != 1 || r.Sessions[0].Nonce != StateLastNonce+1 {
		t.Fatalf("sessions after stream: %+v", r.Sessions)
	}
}

// TestReplayDemo demonstrates the Trojan's impact over real bytes: the
// captured legacy handshake establishes two sessions on the vulnerable
// responder, one on the fixed one.
func TestReplayDemo(t *testing.T) {
	vulnerable, fixed, err := ReplayDemo()
	if err != nil {
		t.Fatal(err)
	}
	if vulnerable != 2 {
		t.Fatalf("vulnerable responder established %d sessions, want 2 (the replay)", vulnerable)
	}
	if fixed != 1 {
		t.Fatalf("fixed responder established %d sessions, want 1", fixed)
	}
}

// TestOracleSanity pins hand-picked points of the oracle.
func TestOracleSanity(t *testing.T) {
	stale := ReplayedHandshake(2, StateLastNonce, StateCookieKey)
	if !IsTrojan(stale, StateLastNonce, StateCookieKey) {
		t.Error("legacy stale-nonce handshake is the seeded Trojan")
	}
	fresh := []int64{0, VersionCurrent, MsgHandshake, 2, StateLastNonce + 1, Cookie(StateCookieKey, 2)}
	if !Accepts(fresh, StateLastNonce, StateCookieKey) || IsTrojan(fresh, StateLastNonce, StateCookieKey) {
		t.Error("fresh v2 handshake is accepted and not a Trojan")
	}
	staleV2 := []int64{0, VersionCurrent, MsgHandshake, 2, StateLastNonce, Cookie(StateCookieKey, 2)}
	if Accepts(staleV2, StateLastNonce, StateCookieKey) {
		t.Error("v2 path must enforce the replay window")
	}
	badWire := append([]int64(nil), stale...)
	badWire[FieldWire] = int64(wire.OutcomeBadMagic)
	if Accepts(badWire, StateLastNonce, StateCookieKey) {
		t.Error("malformed frames are never accepted")
	}
}
