package noisehs

// This file is the concrete Go implementation matching the NL models — and,
// unlike every NL-only target, it really speaks the wire format: frames go
// in as length-prefixed bytes, are decoded by the same internal/wire schema
// the models were lifted from, and only then reach the handshake state
// machine. Its role is the §4 soundness guard (trojan reports replay
// through HandleFrame over real bytes) and the impact demonstration: a
// captured legacy handshake frame, delivered twice, establishes two
// sessions on the vulnerable responder — the replay/session-hijack finding
// of the toxcore audit, reproduced end to end.

import (
	"errors"
	"fmt"
	"io"

	"achilles/internal/wire"
)

// Session is one established handshake on a responder.
type Session struct {
	Version int64
	KeyID   int64
	Nonce   int64
}

// Responder is the byte-level handshake responder. State matches the
// analysis world: LastNonce is the session replay window, CookieKey the
// cookie secret. Fixed enables the hardened handler (FixedServerSrc).
type Responder struct {
	LastNonce int64
	CookieKey int64
	Fixed     bool
	// Sessions records every established handshake, in arrival order —
	// a replayed handshake shows up as a duplicate entry.
	Sessions []Session
	// Rejected counts frames that failed wire decoding — the structural
	// failures the model explores through the wire-status field.
	DecodeFailures int
}

// NewResponder builds a responder in the given session world.
func NewResponder(lastNonce, cookieKey int64, fixed bool) *Responder {
	return &Responder{LastNonce: lastNonce, CookieKey: cookieKey, Fixed: fixed}
}

// HandleFrame decodes one length-prefixed frame and runs the handshake
// handler. It reports whether the message was accepted; a frame that fails
// wire decoding is rejected with the typed *wire.DecodeError (and never
// reaches the handler — the structural failure the NL model mirrors with
// its msg[0] != WIRE_OK guard).
func (r *Responder) HandleFrame(frame []byte) (bool, error) {
	fields, err := Lifted.S.Decode(frame)
	if err != nil {
		r.DecodeFailures++
		return false, err
	}
	return r.handle(fields), nil
}

// handle is the handshake state machine over decoded wire fields (schema
// order, no wire-status slot). It mirrors the NL responder models line for
// line; the replay-window bug is gated on Fixed exactly like the models.
func (r *Responder) handle(f []int64) bool {
	version := f[0]
	msgType := f[1]
	keyID := f[2]
	nonce := f[3]
	cookie := f[4]
	if version < VersionLegacy || version > VersionCurrent {
		return false
	}
	switch msgType {
	case MsgHello:
		return keyID == 0 && cookie == 0 && nonce >= 1 && nonce <= NonceBound
	case MsgHandshake:
		if keyID < 1 || keyID > MaxKey {
			return false
		}
		if cookie != Cookie(r.CookieKey, keyID) {
			return false
		}
		if nonce > NonceBound {
			return false
		}
		if version == VersionCurrent || r.Fixed {
			// Replay window — the fixed responder enforces it on every
			// version, the vulnerable one on v2 only.
			if nonce <= r.LastNonce {
				return false
			}
		}
		if nonce > r.LastNonce {
			r.LastNonce = nonce
		}
		r.Sessions = append(r.Sessions, Session{Version: version, KeyID: keyID, Nonce: nonce})
		return true
	}
	return false
}

// ServeStream reads length-prefixed frames from rd until EOF, handling
// each, and returns how many were accepted. Decode failures (including a
// connection cut mid-frame) reject the frame but keep the responder alive;
// only transport-level errors other than a typed decode failure stop the
// loop.
func (r *Responder) ServeStream(rd io.Reader) (accepted int, err error) {
	for {
		frame, err := wire.ReadFrame(rd, Lifted.S.MaxFrame)
		if err == io.EOF {
			return accepted, nil
		}
		var de *wire.DecodeError
		if errors.As(err, &de) {
			r.DecodeFailures++
			// A short read means the stream ended mid-frame: nothing more
			// can follow.
			if de.Outcome == wire.OutcomeShort {
				return accepted, nil
			}
			continue
		}
		if err != nil {
			return accepted, err
		}
		if ok, _ := r.HandleFrame(frame); ok {
			accepted++
		}
	}
}

// InitiatorFrame builds the real frame bytes a correct initiator sends for
// a keyed handshake: fresh nonce, valid key, matching cookie.
func InitiatorFrame(version, keyID, nonce, cookieKey int64) ([]byte, error) {
	return Lifted.S.Encode([]int64{version, MsgHandshake, keyID, nonce, Cookie(cookieKey, keyID)})
}

// ReplayDemo demonstrates the Trojan's impact over real bytes: a correct
// legacy-version handshake frame is captured off the wire and delivered to
// the responder twice. The vulnerable responder establishes a session both
// times — the second is the attacker's replayed session, sharing the
// victim's nonce — while the fixed responder accepts exactly one. It
// returns the session counts of both responders and an error if the
// demonstration could not run.
func ReplayDemo() (vulnerable, fixed int, err error) {
	captured, err := InitiatorFrame(VersionLegacy, 2, StateLastNonce+1, StateCookieKey)
	if err != nil {
		return 0, 0, fmt.Errorf("noisehs: building the captured frame: %w", err)
	}
	for _, resp := range []*Responder{
		NewResponder(StateLastNonce, StateCookieKey, false),
		NewResponder(StateLastNonce, StateCookieKey, true),
	} {
		for i := 0; i < 2; i++ {
			resp.HandleFrame(captured)
		}
		if resp.Fixed {
			fixed = len(resp.Sessions)
		} else {
			vulnerable = len(resp.Sessions)
		}
	}
	return vulnerable, fixed, nil
}
