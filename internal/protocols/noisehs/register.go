package noisehs

import (
	"fmt"
	"math/rand"

	"achilles/internal/protocols/registry"
)

// Generator fuzzes the lifted wire vector over domains that straddle every
// branch: mostly clean frames (wire status 0) across both versions, both
// message types and the key/nonce/cookie boundaries, with an occasional
// malformed-frame class so the wire guard is exercised too.
func Generator(r *rand.Rand) []int64 {
	w := int64(0)
	if r.Intn(8) == 0 {
		w = int64(1 + r.Intn(5)) // one of the decode-error classes
	}
	k := int64(r.Intn(5)) - 1 // keyid: -1..3 (valid keys are 1..3)
	cookie := int64(r.Intn(16))
	if r.Intn(2) == 0 {
		cookie = Cookie(StateCookieKey, k) // often the valid cookie for k
	}
	return []int64{
		w,
		int64(r.Intn(4)), // version: 0..3 (legacy 1, current 2)
		int64(r.Intn(4)), // type: 0..3 (HELLO=1, HS=2)
		k,
		int64(r.Intn(11)), // nonce: 0..10 (window floor 5, bound 8)
		cookie,
	}
}

// ClassKey buckets Trojans by (version, type, hijacked key): the class
// structure is which session key a replayed handshake steals, under which
// negotiated version.
func ClassKey(msg []int64) string {
	return fmt.Sprintf("v%d/t%d/key%d/stale-nonce", msg[FieldVersion], msg[FieldType], msg[FieldKeyID])
}

func world(st registry.State) (lastNonce, cookieKey int64) {
	return st["lastNonce"], st["cookieKey"]
}

// implAccepts replays an analysis vector through the byte-level responder:
// the vector is lowered to real frame bytes (malformed-class vectors become
// exemplar malformed frames) and delivered to HandleFrame, so the replay
// exercises the wire decoder as well as the handshake logic.
func implAccepts(fixed bool) func(msg []int64, st registry.State) bool {
	return func(msg []int64, st registry.State) bool {
		frame, err := Lifted.Lower(msg)
		if err != nil {
			return false
		}
		n, k := world(st)
		ok, _ := NewResponder(n, k, fixed).HandleFrame(frame)
		return ok
	}
}

func oracle(msg []int64, st registry.State) bool {
	n, k := world(st)
	return IsTrojan(msg, n, k)
}

func init() {
	registry.Register(registry.Descriptor{
		Name:          "noisehs",
		Summary:       "noise-style secure handshake: legacy-version downgrade replays a stale nonce",
		Target:        NewTarget,
		DefaultState:  DefaultState(),
		ExpectTrojans: true,
		IsTrojan:      oracle,
		ClassKey:      ClassKey,
		ImplAccepts:   implAccepts(false),
		Wire:          Lifted,
		Fuzz:          &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
	registry.Register(registry.Descriptor{
		Name:         "noisehs-fixed",
		Summary:      "noise-style secure handshake with the replay window on every version: no Trojans",
		Target:       NewFixedTarget,
		DefaultState: DefaultState(),
		IsTrojan:     oracle,
		ClassKey:     ClassKey,
		ImplAccepts:  implAccepts(true),
		Wire:         Lifted,
		Fuzz:         &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
}
