// Package noisehs is the first byte-level Achilles target: a noise-style
// secure-handshake responder modelled on the toxcore transport/noise
// surfaces whose audit findings (handshake replay, incomplete-handshake
// cipher-state corruption) read like Achilles target specs. Unlike every
// NL-only target, its messages live on a real wire format — a magic-tagged,
// length-prefixed binary frame with big-endian integer fields and a
// fixed-size static-key byte array — defined once as an internal/wire
// schema and lifted from there into the NL models, the concrete Go
// implementation and the replay oracles, so none of them can drift apart.
//
// The protocol is a bounded slice of a cookie-based secure handshake:
//
//	hello     (type 1): version negotiation + opening nonce; precedes
//	                    keying, so key and cookie fields must be zero.
//	handshake (type 2): keyed handshake under a known static key, carrying
//	                    a cookie bound to that key and a nonce that must
//	                    advance past the responder's replay window.
//
// The responder speaks two protocol versions: legacy v1 and current v2.
// The seeded vulnerability is a replay-acceptance Trojan: the v2 handshake
// path enforces the replay window (nonce > lastNonce), but the legacy
// compatibility path skips the check — so a captured v1 handshake, or a v2
// handshake replayed with its version field downgraded to 1, is accepted
// with a stale nonce forever. Correct initiators always send a fresh nonce
// whatever version they negotiate, which makes every stale-nonce acceptance
// a Trojan: a message correct servers accept that no correct client
// generates. This is exactly the class of the toxcore CRIT-1 finding
// ("Missing Noise Handshake Replay Protection").
//
// The wire dimension is analysed too: the lifted message vector carries the
// decode outcome in msg[0], so the symbolic engine explores truncated
// frames, oversized length prefixes, trailing bytes, wrong magic and
// corrupt key padding as first-class message values — and proves the
// responder model rejects them all (a real decoder fails structurally
// before the handler runs).
package noisehs

import (
	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/symexec"
	"achilles/internal/wire"
)

// Lifted message field indices (msg[0] is the wire-status slot the lift
// layer prepends to the schema's fields).
const (
	FieldWire    = 0
	FieldVersion = 1
	FieldType    = 2
	FieldKeyID   = 3
	FieldNonce   = 4
	FieldCookie  = 5
	NumFields    = 6
)

// Message types.
const (
	MsgHello     = 1
	MsgHandshake = 2
)

// Protocol versions: the responder negotiates legacy v1 or current v2.
const (
	VersionLegacy  = 1
	VersionCurrent = 2
)

// Bounded handshake world: static keys 1..MaxKey are known to the
// responder, and nonces live in [0, NonceBound] — the same bounded-world
// idiom the Raft models use for terms, which keeps the replay-window
// comparison a single-field constraint the §3.2 negate operator handles
// exactly.
const (
	MaxKey     = 3
	NonceBound = 8
)

// The canonical responder world used by the bundled targets, the fuzz
// baseline and the oracles: a session whose replay window has advanced to
// nonce 5, with cookie secret 9.
const (
	StateLastNonce = 5
	StateCookieKey = 9
)

// Schema is the wire format: a 0xA7-tagged payload in a length-prefixed
// frame — version and type bytes, 16 bytes of static-key material, and
// big-endian u32 nonce and cookie. MaxFrame leaves room above the exact
// payload size so over-long payloads are a live decode outcome.
func Schema() *wire.Schema {
	return wire.NewSchema("noisehs", 0xA7, 48,
		wire.U8("version"),
		wire.U8("type"),
		wire.Bytes("keyid", 16),
		wire.U32("nonce"),
		wire.U32("cookie"),
	)
}

// Lifted is the lift layer every consumer shares: NL models derive their
// preamble and wire guards from it, the concrete implementation decodes
// through it, and trojan replay lowers analysis vectors back to frame
// bytes with it.
var Lifted = wire.NewLift(Schema())

// FieldNames names the lifted message layout for reports.
var FieldNames = Lifted.FieldNames()

// protocolConsts is the handshake-level preamble shared by every model:
// message types, negotiated versions, the bounded key/nonce world, and the
// session state globals (pinned concretely per analysis, §3.4).
const protocolConsts = `
const HELLO = 1;
const HS = 2;
const V_LEGACY = 1;
const V_CURRENT = 2;
const MAXKEY = 3;
const NONCEBOUND = 8;
var lastNonce int;
var cookieKey int;
`

// serverBody assembles the responder model around the handshake handler:
// the schema-derived prelude and wire guards come from the lift layer, so
// the model's message layout and field domains cannot drift from the codec.
func serverBody(handshakePath string) string {
	return Lifted.Prelude() + protocolConsts + `
func main() {
	recv(msg);
` + Lifted.Guards() + `	// Version negotiation: the responder speaks legacy v1 and current v2.
	if msg[1] < V_LEGACY { reject(); }
	if msg[1] > V_CURRENT { reject(); }
	if msg[2] == HELLO {
		// A hello precedes keying: no static key, no cookie yet, and an
		// opening nonce inside the bounded window.
		if msg[3] != 0 { reject(); }
		if msg[5] != 0 { reject(); }
		if msg[4] < 1 { reject(); }
		if msg[4] > NONCEBOUND { reject(); }
		accept();
	}
	if msg[2] == HS {
		// Keyed handshake: a known static key and the cookie bound to it.
		if msg[3] < 1 { reject(); }
		if msg[3] > MAXKEY { reject(); }
		if msg[5] != cookieKey + msg[3] { reject(); }
		if msg[4] > NONCEBOUND { reject(); }
` + handshakePath + `	}
	reject();
}`
}

// ServerSrc is the NL model of the vulnerable responder: the v2 handshake
// path enforces the replay window, the legacy path forgets it.
var ServerSrc = serverBody(`		if msg[1] == V_CURRENT {
			// Replay window: the nonce must advance past the session floor.
			if msg[4] <= lastNonce { reject(); }
			accept();
		}
		// BUG (replay Trojan): the legacy compatibility path skips the
		// replay-window check — a captured v1 handshake, or a replayed v2
		// handshake with its version byte downgraded, is accepted with a
		// stale nonce forever.
		accept();
`)

// FixedServerSrc enforces the replay window before the version split —
// "servers should do what correct clients require them to do and not one
// bit more": correct initiators send fresh nonces on every version, so the
// window binds every version. Achilles must find no Trojans in it.
var FixedServerSrc = serverBody(`		// Fixed: the replay window binds every negotiated version.
		if msg[4] <= lastNonce { reject(); }
		accept();
`)

// InitiatorSrc is the NL model of a correct initiator. It negotiates
// either version, opens with a hello whose unused fields are zero, and —
// the invariant the vulnerable responder fails to enforce — sends
// handshake nonces strictly ahead of the session's replay window, which
// both ends of an established session track (lastNonce is shared session
// state, pinned to the same concrete world as the responder).
var InitiatorSrc = Lifted.Prelude() + protocolConsts + `
func main() {
	var v int = input();
	assume(v >= V_LEGACY);
	assume(v <= V_CURRENT);
	var kind int = input();
	if kind == HELLO {
		var n int = input();
		assume(n >= 1);
		assume(n <= NONCEBOUND);
		msg[0] = WIRE_OK;
		msg[1] = v;
		msg[2] = HELLO;
		msg[3] = 0;
		msg[4] = n;
		msg[5] = 0;
		send(msg);
		exit();
	}
	if kind == HS {
		var k int = input();
		assume(k >= 1);
		assume(k <= MAXKEY);
		var n int = input();
		// Freshness: the initiator's session counter is strictly ahead of
		// the responder's replay window, whatever version it negotiates.
		assume(n > lastNonce);
		assume(n <= NONCEBOUND);
		msg[0] = WIRE_OK;
		msg[1] = v;
		msg[2] = HS;
		msg[3] = k;
		msg[4] = n;
		msg[5] = cookieKey + k;
		send(msg);
		exit();
	}
	exit();
}`

// DefaultState is the canonical concrete session world.
func DefaultState() map[string]int64 {
	return map[string]int64{
		"lastNonce": StateLastNonce,
		"cookieKey": StateCookieKey,
	}
}

// NewTarget builds the Achilles target for the vulnerable responder in the
// canonical concrete world. The initiator references the shared session
// state (lastNonce, cookieKey), so both engine runs pin the same world.
func NewTarget() core.Target {
	return core.Target{
		Name:       "noisehs",
		Server:     lang.MustCompile(ServerSrc),
		Clients:    []core.ClientProgram{{Name: "initiator", Unit: lang.MustCompile(InitiatorSrc)}},
		FieldNames: FieldNames,
		ServerExec: symexec.Options{GlobalConcrete: DefaultState()},
		ClientExec: symexec.Options{GlobalConcrete: DefaultState()},
	}
}

// NewFixedTarget builds the target for the hardened responder.
func NewFixedTarget() core.Target {
	t := NewTarget()
	t.Name = "noisehs-fixed"
	t.Server = lang.MustCompile(FixedServerSrc)
	return t
}

// Cookie computes the keyed cookie a responder with the given secret
// issues for a static key.
func Cookie(cookieKey, keyID int64) int64 { return cookieKey + keyID }

// Accepts mirrors the vulnerable responder model's accept condition in the
// session world (lastNonce, cookieKey) — the fast oracle used by the
// fuzzing baseline; the NL interpreter and the concrete byte-level
// implementation both agree with it (see the package tests and the
// cross-validation suite).
func Accepts(msg []int64, lastNonce, cookieKey int64) bool {
	if len(msg) != NumFields {
		return false
	}
	if msg[FieldWire] != int64(wire.OutcomeOK) {
		return false
	}
	if msg[FieldVersion] < VersionLegacy || msg[FieldVersion] > VersionCurrent {
		return false
	}
	if msg[FieldNonce] < 0 || msg[FieldNonce] > 1<<32-1 {
		return false
	}
	if msg[FieldCookie] < 0 || msg[FieldCookie] > 1<<32-1 {
		return false
	}
	switch msg[FieldType] {
	case MsgHello:
		return msg[FieldKeyID] == 0 && msg[FieldCookie] == 0 &&
			msg[FieldNonce] >= 1 && msg[FieldNonce] <= NonceBound
	case MsgHandshake:
		if msg[FieldKeyID] < 1 || msg[FieldKeyID] > MaxKey {
			return false
		}
		if msg[FieldCookie] != Cookie(cookieKey, msg[FieldKeyID]) {
			return false
		}
		if msg[FieldNonce] > NonceBound {
			return false
		}
		// The vulnerable responder checks freshness on v2 only.
		return msg[FieldVersion] != VersionCurrent || msg[FieldNonce] > lastNonce
	}
	return false
}

// IsTrojan is the ground-truth oracle in the session world: an accepted
// handshake whose nonce does not advance past the replay window — which
// the legacy path lets through — is a replayed handshake no correct
// initiator generates.
func IsTrojan(msg []int64, lastNonce, cookieKey int64) bool {
	return Accepts(msg, lastNonce, cookieKey) &&
		msg[FieldType] == MsgHandshake &&
		msg[FieldNonce] <= lastNonce
}

// ReplayedHandshake builds the canonical Trojan example: a legacy-version
// handshake frame replaying a stale nonce under a valid key and cookie.
func ReplayedHandshake(keyID, staleNonce, cookieKey int64) []int64 {
	return []int64{int64(wire.OutcomeOK), VersionLegacy, MsgHandshake,
		keyID, staleNonce, Cookie(cookieKey, keyID)}
}
