package paxos

import (
	"math/rand"

	"achilles/internal/core"
	"achilles/internal/protocols/registry"
)

// The canonical phase-2 world analysed by the bundled targets and pinned
// for the fuzz baseline: ballot 3, proposed value 7.
const (
	StateBallot = 3
	StateValue  = 7
)

// DefaultState is the canonical concrete world.
func DefaultState() map[string]int64 {
	return map[string]int64{"ballot": StateBallot, "proposedValue": StateValue}
}

// Generator fuzzes the phase-2 message over small domains straddling the
// analysed world.
func Generator(r *rand.Rand) []int64 {
	return []int64{
		int64(1 + r.Intn(2)), // type: PREPARE or ACCEPT
		int64(r.Intn(6)),     // ballot: straddles the promise
		int64(r.Intn(10)),    // value: sometimes the proposed one
	}
}

// IsTrojan is the ground-truth oracle in a given world: an Accept the
// acceptor takes (ballot matches its promise) carrying a value the ballot's
// proposer never chose.
func IsTrojan(msg []int64, ballot, proposedValue int64) bool {
	if len(msg) != NumFields {
		return false
	}
	return msg[FieldType] == MsgAccept && msg[FieldBallot] == ballot &&
		msg[FieldValue] != proposedValue
}

// ClassKey: a single Trojan type — a foreign value under a valid ballot.
func ClassKey(msg []int64) string { return "accept-foreign-value" }

func oracle(msg []int64, st registry.State) bool {
	return IsTrojan(msg, st["ballot"], st["proposedValue"])
}

func implAccepts(msg []int64, st registry.State) bool {
	return ImplAccepts(msg, st["ballot"])
}

func init() {
	registry.Register(registry.Descriptor{
		Name:          "paxos",
		Aliases:       []string{"paxos-symbolic"},
		Summary:       "Paxos acceptor, symbolic local state (§3.4): unvalidated Accept value",
		Target:        SymbolicStateTarget,
		DefaultState:  DefaultState(),
		ExpectTrojans: true,
		IsTrojan:      oracle,
		ClassKey:      ClassKey,
		ImplAccepts:   implAccepts,
		Fuzz:          &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
	registry.Register(registry.Descriptor{
		Name:          "paxos-concrete",
		Summary:       "Paxos acceptor, concrete local state (§3.4): ballot 3, value 7",
		Target:        func() core.Target { return ConcreteStateTarget(StateBallot, StateValue) },
		DefaultState:  DefaultState(),
		ExpectTrojans: true,
		IsTrojan:      oracle,
		ClassKey:      ClassKey,
		ImplAccepts:   implAccepts,
		Fuzz:          &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
	registry.Register(registry.Descriptor{
		Name:         "paxos-fixed",
		Summary:      "Paxos acceptor validating the value: no Trojans",
		Target:       FixedSymbolicTarget,
		DefaultState: DefaultState(),
		IsTrojan:     oracle,
		ClassKey:     ClassKey,
		ImplAccepts:  implAccepts,
		Fuzz:         &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
}
