// Package paxos provides the single-decree Paxos substrate used in §3.4 of
// the Achilles paper to illustrate the three local-state analysis modes:
//
//   - Concrete Local State: run the protocol concretely up to a point
//     (e.g. an acceptor that has entered phase 2 with proposed value 7) and
//     analyse from there — any Accept for a different value is Trojan.
//   - Constructed Symbolic Local State: run once with a *symbolic* proposed
//     value shared by proposer and acceptor, covering every concrete world
//     in one analysis.
//   - Over-approximate Symbolic Local State: annotate the state-handling
//     code to return unconstrained symbolic values (the symbolic()
//     intrinsic), trading precision for solver load.
//
// The package contains the NL models for those analyses and a concrete Go
// single-decree Paxos implementation used to show that the phase-2 Trojan
// (an Accept carrying a value nobody proposed) breaks agreement when
// injected.
package paxos

import (
	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/symexec"
)

// Message field indices for the phase-2 (Accept) analysis.
const (
	FieldType   = 0
	FieldBallot = 1
	FieldValue  = 2
	NumFields   = 3
)

// Message types.
const (
	MsgPrepare = 1
	MsgAccept  = 2
)

// FieldNames names the analysed message layout.
var FieldNames = []string{"type", "ballot", "value"}

// ProposerSrc models the correct proposer in phase 2: it sends Accept
// messages carrying exactly its current ballot and the proposed value from
// its local state.
const ProposerSrc = `
const ACCEPT = 2;
var ballot int;
var proposedValue int;
var msg [3]int;

func main() {
	msg[0] = ACCEPT;
	msg[1] = ballot;
	msg[2] = proposedValue;
	send(msg);
	exit();
}`

// AcceptorSrc models an acceptor handling phase-2 messages. It checks the
// ballot against its promise but — the §3.4 scenario — accepts ANY value,
// although in this phase the only correct Accept carries the proposed
// value.
const AcceptorSrc = `
const ACCEPT = 2;
var ballot int;
var proposedValue int;
var msg [3]int;

func main() {
	recv(msg);
	if msg[0] != ACCEPT { reject(); }
	if msg[1] != ballot { reject(); }
	// Scenario vulnerability: the value is not validated against the
	// ballot's proposal.
	accept();
}`

// FixedAcceptorSrc validates the value too; no Trojans remain.
const FixedAcceptorSrc = `
const ACCEPT = 2;
var ballot int;
var proposedValue int;
var msg [3]int;

func main() {
	recv(msg);
	if msg[0] != ACCEPT { reject(); }
	if msg[1] != ballot { reject(); }
	if msg[2] != proposedValue { reject(); }
	accept();
}`

// ConcreteStateTarget builds the Concrete Local State analysis: both nodes
// are pinned to a specific world (ballot b, proposed value v) before the
// run, as if the protocol had executed concretely up to phase 2.
func ConcreteStateTarget(b, v int64) core.Target {
	state := map[string]int64{"ballot": b, "proposedValue": v}
	return core.Target{
		Name:       "paxos-concrete",
		Server:     lang.MustCompile(AcceptorSrc),
		Clients:    []core.ClientProgram{{Name: "proposer", Unit: lang.MustCompile(ProposerSrc)}},
		FieldNames: FieldNames,
		ServerExec: symexec.Options{GlobalConcrete: state},
		ClientExec: symexec.Options{GlobalConcrete: state},
	}
}

// SymbolicStateTarget builds the Constructed Symbolic Local State analysis:
// ballot and proposed value are shared symbolic state, so one run covers
// every concrete world.
func SymbolicStateTarget() core.Target {
	sym := []string{"ballot", "proposedValue"}
	return core.Target{
		Name:       "paxos-symbolic",
		Server:     lang.MustCompile(AcceptorSrc),
		Clients:    []core.ClientProgram{{Name: "proposer", Unit: lang.MustCompile(ProposerSrc)}},
		FieldNames: FieldNames,
		ServerExec: symexec.Options{GlobalSymbolic: sym},
		ClientExec: symexec.Options{GlobalSymbolic: sym},
	}
}

// FixedSymbolicTarget is the symbolic-state analysis of the fixed acceptor.
func FixedSymbolicTarget() core.Target {
	t := SymbolicStateTarget()
	t.Name = "paxos-fixed"
	t.Server = lang.MustCompile(FixedAcceptorSrc)
	return t
}
