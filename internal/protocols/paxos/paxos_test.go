package paxos

import (
	"testing"

	"achilles/internal/core"
	"achilles/internal/expr"
	"achilles/internal/solver"
)

// TestConcreteLocalStateMode: the §3.4 scenario — an acceptor in phase 2
// with proposed value 7 should only validate Accepts for 7; any other value
// is a Trojan message.
func TestConcreteLocalStateMode(t *testing.T) {
	run, err := core.Run(ConcreteStateTarget(3, 7), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := run.Analysis
	if len(res.Trojans) != 1 {
		t.Fatalf("trojans = %d, want 1", len(res.Trojans))
	}
	tr := res.Trojans[0]
	if tr.Concrete[FieldValue] == 7 {
		t.Fatalf("trojan example %v carries the proposed value", tr.Concrete)
	}
	if tr.Concrete[FieldBallot] != 3 {
		t.Fatalf("trojan example %v must use the promised ballot", tr.Concrete)
	}
	if !tr.VerifiedAccept || !tr.VerifiedNotClient {
		t.Fatalf("verification failed: %+v", tr)
	}
}

// TestConstructedSymbolicStateMode: one analysis with shared symbolic state
// covers every concrete world (the paper: "developers can run Paxos once,
// with a symbolic proposed value").
func TestConstructedSymbolicStateMode(t *testing.T) {
	run, err := core.Run(SymbolicStateTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := run.Analysis
	if len(res.Trojans) != 1 {
		t.Fatalf("trojans = %d, want 1", len(res.Trojans))
	}
	tr := res.Trojans[0]
	// The Trojan class is value != proposedValue, for ALL worlds: check the
	// witness forbids value == proposedValue.
	s := solver.Default()
	q := []*expr.Expr{tr.Witness, expr.Eq(expr.Var("m2"), expr.Var("state_proposedValue"))}
	if r, _ := s.Check(q); r != solver.Unsat {
		t.Errorf("witness admits the proposed value: not the phase-2 Trojan")
	}
	// The concrete example instantiates a world and must verify in it.
	if tr.Concrete[FieldValue] == tr.StateEnv["state_proposedValue"] {
		t.Errorf("example %v equals the world's proposed value %v", tr.Concrete, tr.StateEnv)
	}
	if !tr.VerifiedAccept || !tr.VerifiedNotClient {
		t.Fatalf("verification failed: %+v", tr)
	}
}

// TestFixedAcceptorClean: validating the value closes the hole in every
// world at once.
func TestFixedAcceptorClean(t *testing.T) {
	run, err := core.Run(FixedSymbolicTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(run.Analysis.Trojans); n != 0 {
		t.Fatalf("fixed acceptor reported %d Trojans", n)
	}
}

func TestConcretePaxosNormalRun(t *testing.T) {
	g := NewGroup(3)
	v, err := g.Propose(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("chose %d", v)
	}
	got, ok := g.Learn([]int{0, 1, 2})
	if !ok || got != 7 {
		t.Fatalf("learned %d ok=%v", got, ok)
	}
}

func TestPaxosAdoptsEarlierValue(t *testing.T) {
	g := NewGroup(3)
	if _, err := g.Propose(1, 7); err != nil {
		t.Fatal(err)
	}
	// A later proposer must adopt 7, not its own 9.
	v, err := g.Propose(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("ballot 2 chose %d, want adopted 7", v)
	}
}

func TestStaleBallotRejected(t *testing.T) {
	g := NewGroup(3)
	if _, err := g.Propose(5, 1); err != nil {
		t.Fatal(err)
	}
	if p := g.Acceptors[0].Prepare(4); p.OK {
		t.Fatal("stale prepare accepted")
	}
	if g.Acceptors[0].Accept(4, 9) {
		t.Fatal("stale accept accepted")
	}
}

// TestTrojanAcceptBreaksAgreement injects the Trojan found on the model
// into the concrete group and shows two learners disagreeing — the impact
// a fire drill would observe.
func TestTrojanAcceptBreaksAgreement(t *testing.T) {
	g := NewGroup(3)
	if _, err := g.Propose(1, 7); err != nil {
		t.Fatal(err)
	}
	before, ok := g.Learn([]int{0, 1, 2})
	if !ok || before != 7 {
		t.Fatalf("pre-attack learn: %d ok=%v", before, ok)
	}
	// Inject Accept(ballot=1, value=9) — never sent by a correct proposer
	// for ballot 1 — into two acceptors.
	if !g.InjectAccept(1, 1, 9) || !g.InjectAccept(2, 1, 9) {
		t.Fatal("injection rejected")
	}
	after, ok := g.Learn([]int{0, 1, 2})
	if !ok {
		t.Fatal("post-attack learner found no quorum")
	}
	if after == before {
		t.Fatalf("agreement survived: learned %d twice — injection had no effect", after)
	}
}
