package paxos

import "fmt"

// This file is a concrete single-decree Paxos implementation. Its role in
// the reproduction is the §3.4/§6.3 impact demonstration: the phase-2
// Trojan that Achilles finds on the acceptor model (an Accept message whose
// value was never proposed under its ballot) violates agreement when
// injected into a live group, because learners may observe a quorum for a
// value no correct proposer chose.

// Promise is an acceptor's phase-1 answer.
type Promise struct {
	OK            bool
	AcceptedBal   int64
	AcceptedValue int64
	HasAccepted   bool
}

// Acceptor is one Paxos acceptor.
type Acceptor struct {
	promised    int64
	acceptedBal int64
	acceptedVal int64
	hasAccepted bool
}

// Prepare handles a phase-1 request.
func (a *Acceptor) Prepare(ballot int64) Promise {
	if ballot <= a.promised {
		return Promise{}
	}
	a.promised = ballot
	return Promise{
		OK:            true,
		AcceptedBal:   a.acceptedBal,
		AcceptedValue: a.acceptedVal,
		HasAccepted:   a.hasAccepted,
	}
}

// Accept handles a phase-2 request. Note that Paxos acceptors have no way
// to validate the VALUE against the ballot owner's choice — that binding is
// a promise of correct proposers only, which is exactly why a forged Accept
// is a Trojan message rather than a protocol violation the receiver could
// detect.
func (a *Acceptor) Accept(ballot, value int64) bool {
	if ballot < a.promised {
		return false
	}
	a.promised = ballot
	a.acceptedBal = ballot
	a.acceptedVal = value
	a.hasAccepted = true
	return true
}

// Accepted reports the acceptor's current accepted pair.
func (a *Acceptor) Accepted() (ballot, value int64, ok bool) {
	return a.acceptedBal, a.acceptedVal, a.hasAccepted
}

// Group is a set of acceptors.
type Group struct {
	Acceptors []*Acceptor
}

// NewGroup creates n acceptors.
func NewGroup(n int) *Group {
	g := &Group{}
	for i := 0; i < n; i++ {
		g.Acceptors = append(g.Acceptors, &Acceptor{})
	}
	return g
}

// Quorum size.
func (g *Group) Quorum() int { return len(g.Acceptors)/2 + 1 }

// Propose runs both phases for (ballot, value) against the whole group and
// returns the value actually chosen (phase 1 may force an earlier value).
func (g *Group) Propose(ballot, value int64) (int64, error) {
	var promises []Promise
	for _, a := range g.Acceptors {
		p := a.Prepare(ballot)
		if p.OK {
			promises = append(promises, p)
		}
	}
	if len(promises) < g.Quorum() {
		return 0, fmt.Errorf("paxos: no phase-1 quorum for ballot %d", ballot)
	}
	// Adopt the highest previously accepted value, if any.
	chosen := value
	best := int64(-1)
	for _, p := range promises {
		if p.HasAccepted && p.AcceptedBal > best {
			best = p.AcceptedBal
			chosen = p.AcceptedValue
		}
	}
	acks := 0
	for _, a := range g.Acceptors {
		if a.Accept(ballot, chosen) {
			acks++
		}
	}
	if acks < g.Quorum() {
		return 0, fmt.Errorf("paxos: no phase-2 quorum for ballot %d", ballot)
	}
	return chosen, nil
}

// Learn inspects a subset of acceptors and returns a value with a quorum of
// identical (ballot, value) accepts, if any.
func (g *Group) Learn(indices []int) (int64, bool) {
	counts := map[[2]int64]int{}
	for _, i := range indices {
		if b, v, ok := g.Acceptors[i].Accepted(); ok {
			counts[[2]int64{b, v}]++
		}
	}
	for bv, n := range counts {
		if n >= g.Quorum() {
			return bv[1], true
		}
	}
	return 0, false
}

// InjectAccept delivers a raw phase-2 message to one acceptor, bypassing
// any proposer — the concrete injection vector for the Trojan Achilles
// reports on the acceptor model.
func (g *Group) InjectAccept(acceptor int, ballot, value int64) bool {
	return g.Acceptors[acceptor].Accept(ballot, value)
}

// ImplAccepts replays an analysis field-vector message through a concrete
// acceptor that has promised the given ballot (the analysed phase-2 world).
func ImplAccepts(msg []int64, promised int64) bool {
	if len(msg) != NumFields || msg[FieldType] != MsgAccept {
		return false
	}
	a := &Acceptor{}
	a.Prepare(promised)
	return a.Accept(msg[FieldBallot], msg[FieldValue])
}
