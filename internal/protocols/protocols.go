// Package protocols assembles the full catalog of bundled workloads: it
// pulls in every protocol package for its registry registration (the same
// blank-import idiom as database/sql drivers) and attaches the capabilities
// that live above the individual protocol packages, such as the FSP live
// fire drill (which depends on internal/inject and therefore cannot be
// registered from the fsp package itself).
//
// Importing this package — as cmd/achilles, cmd/benchtab, cmd/trojan-inject
// and internal/experiments do — is all it takes to resolve any bundled
// target by name via internal/protocols/registry. A new workload is a
// one-package drop-in: write the models, oracles and generator, call
// registry.Register from an init function, and add the blank import here.
package protocols

import (
	"fmt"
	"io"

	"achilles/internal/inject"
	"achilles/internal/protocols/fsp"
	"achilles/internal/protocols/registry"

	_ "achilles/internal/protocols/kv"
	_ "achilles/internal/protocols/noisehs"
	_ "achilles/internal/protocols/paxos"
	_ "achilles/internal/protocols/pbft"
	_ "achilles/internal/protocols/raft"
)

func init() {
	registry.RegisterFireDrill("fsp", fspFireDrill)
}

// fspFireDrill runs the paper's §4.1 scenario end to end: a live concrete
// FSP server on a UDP socket, the glob-aware analysis, and every discovered
// Trojan example injected over the wire.
func fspFireDrill(addr string, out io.Writer) error {
	server := fsp.NewServer()
	server.FS.Put("fil1", []byte("precious data"))
	us, err := fsp.ListenUDP(addr, server)
	if err != nil {
		return err
	}
	defer us.Close()
	fmt.Fprintf(out, "live FSP server on %s\n", us.Addr())

	client, err := fsp.UDPClient(us.Addr())
	if err != nil {
		return err
	}
	outcomes, err := inject.FSPFireDrill(client.Send)
	if err != nil {
		return err
	}
	for _, o := range outcomes {
		status := "REJECTED"
		if o.Accepted {
			status = "ACCEPTED"
		}
		fmt.Fprintf(out, "  trojan #%-3d %v -> %s (%s)\n", o.Trojan.Index, o.Trojan.Concrete, status, o.Effect)
	}
	s := inject.Summarize(outcomes)
	fmt.Fprintf(out, "fire drill complete: %d/%d Trojans accepted by the live server, %d smuggled-byte events\n",
		s.Accepted, s.Total, server.SmuggledBytes)
	return nil
}
