// Package raft models Raft leader election (Ongaro-Ousterhout §5.2/§5.4) as
// an Achilles target: a follower handling RequestVote and AppendEntries
// messages, plus the correct candidate and leader clients that generate
// them.
//
// The analysed message is the five-field election RPC header:
//
//	type(1) term(1) nodeId(1) lastLogIndex(1) lastLogTerm(1)
//
// shared by both RPCs (for AppendEntries the last two fields are
// prevLogIndex/prevLogTerm of the heartbeat consistency check).
//
// The seeded vulnerability is a log-invariant Trojan in the vote handler:
// the follower grants votes using the §5.4.1 up-to-date comparison
// (lastLogTerm/lastLogIndex against its own log) and checks that the
// candidate's term is current — but never validates the candidate's log
// claim against its term. Correct candidates cannot violate that binding:
// a node's log never contains entries from a term beyond its currentTerm,
// and a candidate campaigns at currentTerm+1, so every real RequestVote has
// lastLogTerm < term (and an empty log claims lastLogTerm == 0). A forged
// RequestVote with a stale term but a fresh log claim (lastLogTerm >= term,
// e.g. term=3 with lastLogTerm=9) — or an empty log claiming a non-zero
// last term — wins the up-to-date comparison against every honest log and
// steals votes no correct candidate could collect, electing a leader whose
// log may miss committed entries (an election-safety violation demonstrated
// concretely in impl.go). Consensus protocols are exactly where such
// unintended accepted-message space hides (Jaskolka, "Evaluating the
// Exploitability of Implicit Interactions in Distributed Systems").
package raft

import (
	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/symexec"
)

// Message field indices.
const (
	FieldType    = 0
	FieldTerm    = 1
	FieldNode    = 2 // candidateId (RequestVote) / leaderId (AppendEntries)
	FieldLogIdx  = 3 // lastLogIndex / prevLogIndex
	FieldLogTerm = 4 // lastLogTerm / prevLogTerm
	NumFields    = 5
)

// Message types.
const (
	MsgRequestVote   = 1
	MsgAppendEntries = 2
)

// NumPeers matches NPEERS in the models.
const NumPeers = 5

// TermBound matches MAXTERM in the models: the analysis explores the
// bounded election world of terms 1..TermBound, one client path per
// campaign term — the same bounded-world idiom the FSP models use for path
// lengths (the paper's bound of 5). Concrete per-path terms are what make
// the term/log-term coupling expressible to the §3.2 per-field negate
// operator: `lastLogTerm < term` is relational and would be abandoned, but
// `lastLogTerm < 4` on the term-4 path is an exact single-field negation.
// LogBound likewise bounds the advertised log index (MAXLOG).
const (
	TermBound = 4
	LogBound  = 4
)

// The canonical follower world used by the bundled target, the fuzz
// baseline and the oracles: a follower at term 2 whose log ends at
// index 2 with an entry from term 1.
const (
	StateTerm    = 2
	StateLogIdx  = 2
	StateLogTerm = 1
)

// FieldNames names the message layout for reports.
var FieldNames = []string{"type", "term", "node", "lastLogIndex", "lastLogTerm"}

// ServerSrc is the NL model of a follower handling election RPCs. The
// follower's own state (currentTerm, lastLogIndex, lastLogTerm) is
// protocol-local state, pinned concretely per analysis (§3.4 Concrete Local
// State mode).
const ServerSrc = `
const VOTE = 1;
const APPEND = 2;
const NPEERS = 5;
const MAXTERM = 4;
const MAXLOG = 4;
var currentTerm int;
var lastLogIndex int;
var lastLogTerm int;
var msg [5]int;

func main() {
	recv(msg);
	if msg[2] < 0 { reject(); }
	if msg[2] >= NPEERS { reject(); }
	if msg[1] < currentTerm { reject(); }
	// Bounded election world: terms and log indices beyond the bounds are
	// outside the analysed corpus (the FSP models bound path length the
	// same way).
	if msg[1] > MAXTERM { reject(); }
	if msg[3] < 0 { reject(); }
	if msg[3] > MAXLOG { reject(); }
	if msg[4] < 0 { reject(); }
	if msg[4] > MAXTERM { reject(); }
	if msg[0] == VOTE {
		// BUG (log-invariant Trojan): the up-to-date comparison below trusts
		// the candidate's log claim without checking it against the
		// candidate's own term — no correct candidate sends
		// lastLogTerm >= term, nor an empty log with a non-zero last term.
		if msg[4] > lastLogTerm { accept(); }
		if msg[4] == lastLogTerm {
			if msg[3] >= lastLogIndex { accept(); }
		}
		reject();
	}
	if msg[0] == APPEND {
		// Heartbeat consistency check: prev entry must match our log tail.
		if msg[3] != lastLogIndex { reject(); }
		if msg[4] != lastLogTerm { reject(); }
		accept();
	}
	reject();
}`

// FixedServerSrc enforces the candidate/leader log invariants before the
// up-to-date comparison — "do what correct clients require and not one bit
// more". Achilles must find no Trojans in it.
const FixedServerSrc = `
const VOTE = 1;
const APPEND = 2;
const NPEERS = 5;
const MAXTERM = 4;
const MAXLOG = 4;
var currentTerm int;
var lastLogIndex int;
var lastLogTerm int;
var msg [5]int;

func main() {
	recv(msg);
	if msg[2] < 0 { reject(); }
	if msg[2] >= NPEERS { reject(); }
	if msg[1] < currentTerm { reject(); }
	if msg[1] > MAXTERM { reject(); }
	if msg[3] < 0 { reject(); }
	if msg[3] > MAXLOG { reject(); }
	if msg[4] < 0 { reject(); }
	if msg[4] > MAXTERM { reject(); }
	if msg[0] == VOTE {
		// Fixed: a candidate's log cannot contain entries from its own
		// campaign term or beyond, and an empty log has last term 0.
		if msg[4] >= msg[1] { reject(); }
		if msg[3] == 0 {
			if msg[4] != 0 { reject(); }
		}
		if msg[4] > lastLogTerm { accept(); }
		if msg[4] == lastLogTerm {
			if msg[3] >= lastLogIndex { accept(); }
		}
		reject();
	}
	if msg[0] == APPEND {
		// Fixed: a leader's log may contain current-term entries but none
		// beyond, and an empty log has last term 0.
		if msg[4] > msg[1] { reject(); }
		if msg[3] == 0 {
			if msg[4] != 0 { reject(); }
		}
		if msg[3] != lastLogIndex { reject(); }
		if msg[4] != lastLogTerm { reject(); }
		accept();
	}
	reject();
}`

// CandidateSrc is the NL model of a correct candidate starting an election.
// The campaign term is enumerated concretely (one execution path per term
// in 1..MAXTERM, via the input-driven loop — the bounded-world idiom of the
// FSP models), so the log invariants every candidate maintains become
// single-field constraints the negate operator keeps exactly: the log tail
// never reaches the campaign term (lastLogTerm < term), and an empty log
// claims last term 0.
const CandidateSrc = `
const VOTE = 1;
const NPEERS = 5;
const MAXTERM = 4;
const MAXLOG = 4;
var msg [5]int;

func main() {
	var candId int = input();
	assume(candId >= 0);
	assume(candId < NPEERS);
	// One path per campaign term in 1..MAXTERM.
	var term int = 1;
	var more int = input();
	while term < MAXTERM && more == 1 {
		term = term + 1;
		more = input();
	}
	var lastIdx int = input();
	assume(lastIdx >= 0);
	assume(lastIdx <= MAXLOG);
	var lastTm int = input();
	assume(lastTm >= 0);
	// Log invariant: a candidate campaigns beyond every entry in its log.
	assume(lastTm < term);
	if lastIdx == 0 {
		if lastTm != 0 { exit(); }
	}
	msg[0] = VOTE;
	msg[1] = term;
	msg[2] = candId;
	msg[3] = lastIdx;
	msg[4] = lastTm;
	send(msg);
	exit();
}`

// LeaderSrc is the NL model of a correct leader sending a heartbeat, with
// the same per-term path enumeration. A leader's log may contain entries
// from its current term, so prevLogTerm <= term rather than strictly less.
const LeaderSrc = `
const APPEND = 2;
const NPEERS = 5;
const MAXTERM = 4;
const MAXLOG = 4;
var msg [5]int;

func main() {
	var leadId int = input();
	assume(leadId >= 0);
	assume(leadId < NPEERS);
	var term int = 1;
	var more int = input();
	while term < MAXTERM && more == 1 {
		term = term + 1;
		more = input();
	}
	var prevIdx int = input();
	assume(prevIdx >= 0);
	assume(prevIdx <= MAXLOG);
	var prevTm int = input();
	assume(prevTm >= 0);
	assume(prevTm <= term);
	if prevIdx == 0 {
		if prevTm != 0 { exit(); }
	}
	msg[0] = APPEND;
	msg[1] = term;
	msg[2] = leadId;
	msg[3] = prevIdx;
	msg[4] = prevTm;
	send(msg);
	exit();
}`

// DefaultState is the canonical concrete follower world.
func DefaultState() map[string]int64 {
	return map[string]int64{
		"currentTerm":  StateTerm,
		"lastLogIndex": StateLogIdx,
		"lastLogTerm":  StateLogTerm,
	}
}

// ServerUnit compiles the vulnerable follower model.
func ServerUnit() *lang.Unit { return lang.MustCompile(ServerSrc) }

// Clients compiles the candidate and leader client models.
func Clients() []core.ClientProgram {
	return []core.ClientProgram{
		{Name: "candidate", Unit: lang.MustCompile(CandidateSrc)},
		{Name: "leader", Unit: lang.MustCompile(LeaderSrc)},
	}
}

// NewTarget builds the Achilles target for the vulnerable follower in the
// canonical concrete world.
func NewTarget() core.Target {
	return core.Target{
		Name:       "raft",
		Server:     ServerUnit(),
		Clients:    Clients(),
		FieldNames: FieldNames,
		ServerExec: symexec.Options{GlobalConcrete: DefaultState()},
	}
}

// NewFixedTarget builds the target for the hardened follower.
func NewFixedTarget() core.Target {
	t := NewTarget()
	t.Name = "raft-fixed"
	t.Server = lang.MustCompile(FixedServerSrc)
	return t
}

// Accepts mirrors the vulnerable follower model's accept condition for a
// follower in the world (currentTerm, lastLogIndex, lastLogTerm) — the fast
// oracle used by the fuzzing baseline; the NL interpreter agrees with it
// (see the cross-validation test).
func Accepts(msg []int64, currentTerm, lastLogIndex, lastLogTerm int64) bool {
	if len(msg) != NumFields {
		return false
	}
	if msg[FieldNode] < 0 || msg[FieldNode] >= NumPeers {
		return false
	}
	if msg[FieldTerm] < currentTerm || msg[FieldTerm] > TermBound {
		return false
	}
	if msg[FieldLogIdx] < 0 || msg[FieldLogIdx] > LogBound {
		return false
	}
	if msg[FieldLogTerm] < 0 || msg[FieldLogTerm] > TermBound {
		return false
	}
	switch msg[FieldType] {
	case MsgRequestVote:
		if msg[FieldLogTerm] > lastLogTerm {
			return true
		}
		return msg[FieldLogTerm] == lastLogTerm && msg[FieldLogIdx] >= lastLogIndex
	case MsgAppendEntries:
		return msg[FieldLogIdx] == lastLogIndex && msg[FieldLogTerm] == lastLogTerm
	}
	return false
}

// IsTrojan is the ground-truth oracle in the follower world (currentTerm,
// lastLogIndex, lastLogTerm): an accepted message that violates the log
// invariants every correct candidate/leader maintains.
func IsTrojan(msg []int64, currentTerm, lastLogIndex, lastLogTerm int64) bool {
	if !Accepts(msg, currentTerm, lastLogIndex, lastLogTerm) {
		return false
	}
	switch msg[FieldType] {
	case MsgRequestVote:
		// Candidates campaign beyond every entry in their log.
		return msg[FieldLogTerm] >= msg[FieldTerm] ||
			(msg[FieldLogIdx] == 0 && msg[FieldLogTerm] != 0)
	case MsgAppendEntries:
		// Leaders may replicate current-term entries but none beyond.
		return msg[FieldLogTerm] > msg[FieldTerm] ||
			(msg[FieldLogIdx] == 0 && msg[FieldLogTerm] != 0)
	}
	return false
}

// ForgedVote builds the canonical Trojan example: a RequestVote whose log
// claim (lastLogTerm) outruns its own term — unbeatable in the §5.4.1
// comparison, impossible from a correct candidate.
func ForgedVote(candidate, term, claimedLogTerm int64) []int64 {
	return []int64{MsgRequestVote, term, candidate, 0, claimedLogTerm}
}
