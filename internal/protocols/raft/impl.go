package raft

import "fmt"

// This file is the concrete Go Raft leader-election implementation matching
// the NL models. Its role is the impact demonstration: injecting the forged
// RequestVote Trojan (a log claim outrunning its own term) into a live
// cluster elects a candidate with an empty log over candidates holding
// committed entries — the election-safety violation behind the modelled
// vulnerability.

// Entry is one log entry (only the term matters for election safety).
type Entry struct {
	Term int64
}

// None marks an empty votedFor slot.
const None int64 = -1

// Node is one Raft node, reduced to the election-relevant state.
type Node struct {
	ID          int64
	CurrentTerm int64
	VotedFor    int64
	Log         []Entry
	// Fixed enables the hardened vote handler (the FixedServerSrc checks).
	Fixed bool
}

// NewNode builds a follower with the given log.
func NewNode(id int64, logTerms ...int64) *Node {
	n := &Node{ID: id, VotedFor: None}
	for _, t := range logTerms {
		n.Log = append(n.Log, Entry{Term: t})
	}
	return n
}

// LastLog returns the node's log tail (index is 1-based; 0,0 for empty).
func (n *Node) LastLog() (index, term int64) {
	if len(n.Log) == 0 {
		return 0, 0
	}
	return int64(len(n.Log)), n.Log[len(n.Log)-1].Term
}

// bump adopts a higher term, clearing the vote (Raft §5.1).
func (n *Node) bump(term int64) {
	if term > n.CurrentTerm {
		n.CurrentTerm = term
		n.VotedFor = None
	}
}

// HandleRequestVote processes a RequestVote RPC and reports whether the
// vote was granted. The vulnerable handler performs the §5.4.1 up-to-date
// comparison but — like the NL model — never validates the candidate's log
// claim against the candidate's term.
func (n *Node) HandleRequestVote(term, candidate, lastLogIndex, lastLogTerm int64) bool {
	if candidate < 0 || candidate >= NumPeers {
		return false
	}
	if term < n.CurrentTerm {
		return false
	}
	if lastLogIndex < 0 || lastLogTerm < 0 {
		return false
	}
	if n.Fixed {
		// The FixedServerSrc invariants: candidate logs cannot reach their
		// campaign term, and an empty log has last term 0.
		if lastLogTerm >= term {
			return false
		}
		if lastLogIndex == 0 && lastLogTerm != 0 {
			return false
		}
	}
	n.bump(term)
	if n.VotedFor != None && n.VotedFor != candidate {
		return false
	}
	myIdx, myTerm := n.LastLog()
	// §5.4.1 up-to-date comparison — trusting the claim is the bug.
	if lastLogTerm > myTerm || (lastLogTerm == myTerm && lastLogIndex >= myIdx) {
		n.VotedFor = candidate
		return true
	}
	return false
}

// HandleAppendEntries processes a heartbeat and reports whether the
// follower accepted it (prev entry consistency check only).
func (n *Node) HandleAppendEntries(term, leader, prevLogIndex, prevLogTerm int64) bool {
	if leader < 0 || leader >= NumPeers {
		return false
	}
	if term < n.CurrentTerm {
		return false
	}
	if prevLogIndex < 0 || prevLogTerm < 0 {
		return false
	}
	if n.Fixed {
		if prevLogTerm > term {
			return false
		}
		if prevLogIndex == 0 && prevLogTerm != 0 {
			return false
		}
	}
	n.bump(term)
	myIdx, myTerm := n.LastLog()
	return prevLogIndex == myIdx && prevLogTerm == myTerm
}

// Handle dispatches an analysis field-vector message to the node, mirroring
// the NL server model; it reports whether the message was accepted (vote
// granted / heartbeat acknowledged).
func (n *Node) Handle(msg []int64) (bool, error) {
	if len(msg) != NumFields {
		return false, fmt.Errorf("raft: bad message size %d", len(msg))
	}
	switch msg[FieldType] {
	case MsgRequestVote:
		return n.HandleRequestVote(msg[FieldTerm], msg[FieldNode], msg[FieldLogIdx], msg[FieldLogTerm]), nil
	case MsgAppendEntries:
		return n.HandleAppendEntries(msg[FieldTerm], msg[FieldNode], msg[FieldLogIdx], msg[FieldLogTerm]), nil
	}
	return false, nil
}

// NodeInWorld builds a fresh follower matching an analysis state world: at
// currentTerm with a log of lastLogIndex entries ending in lastLogTerm.
func NodeInWorld(currentTerm, lastLogIndex, lastLogTerm int64, fixed bool) *Node {
	n := NewNode(0)
	n.CurrentTerm = currentTerm
	n.Fixed = fixed
	for i := int64(1); i < lastLogIndex; i++ {
		term := min(int64(1), lastLogTerm)
		n.Log = append(n.Log, Entry{Term: term})
	}
	if lastLogIndex > 0 {
		n.Log = append(n.Log, Entry{Term: lastLogTerm})
	}
	return n
}

// Cluster is a set of nodes for the election demonstration.
type Cluster struct {
	Nodes []*Node
}

// NewCluster builds n followers; node i's log is seeded by logs[i] (nil
// entries mean an empty log).
func NewCluster(logs ...[]int64) *Cluster {
	c := &Cluster{}
	for i, terms := range logs {
		c.Nodes = append(c.Nodes, NewNode(int64(i), terms...))
	}
	return c
}

// Quorum size.
func (c *Cluster) Quorum() int { return len(c.Nodes)/2 + 1 }

// Campaign runs a legitimate election: candidate idx increments its term
// and requests votes with its real log tail. It returns whether the
// candidate won.
func (c *Cluster) Campaign(idx int) bool {
	cand := c.Nodes[idx]
	cand.CurrentTerm++
	cand.VotedFor = cand.ID
	lastIdx, lastTm := cand.LastLog()
	votes := 1
	for i, n := range c.Nodes {
		if i == idx {
			continue
		}
		if n.HandleRequestVote(cand.CurrentTerm, cand.ID, lastIdx, lastTm) {
			votes++
		}
	}
	return votes >= c.Quorum()
}

// InjectVote delivers a raw RequestVote message to every other node on
// behalf of candidate idx — the concrete injection vector for the Trojan
// Achilles reports on the follower model — and returns the votes gathered
// (including the candidate's own).
func (c *Cluster) InjectVote(idx int, msg []int64) int {
	votes := 1
	for i, n := range c.Nodes {
		if i == idx {
			continue
		}
		if granted, _ := n.Handle(msg); granted {
			votes++
		}
	}
	return votes
}

// StolenElection demonstrates the Trojan's impact on a 3-node cluster
// where nodes 1 and 2 hold committed entries and node 0 has an empty log:
// a legitimate campaign by node 0 loses (its log is not up to date), but
// the forged RequestVote — same term, log claim outrunning it — wins a
// quorum, electing a leader that would erase the committed entries. It
// returns the legitimate and forged vote counts and the quorum size.
func StolenElection() (legit, forged, quorum int) {
	logs := [][]int64{nil, {1, 2, 2}, {1, 2, 2}}
	c := NewCluster(logs...)
	for _, n := range c.Nodes {
		n.CurrentTerm = 2
	}
	legit = 1
	cand := c.Nodes[0]
	cand.CurrentTerm++
	cand.VotedFor = cand.ID
	lastIdx, lastTm := cand.LastLog()
	for i, n := range c.Nodes {
		if i != 0 && n.HandleRequestVote(cand.CurrentTerm, cand.ID, lastIdx, lastTm) {
			legit++
		}
	}

	c2 := NewCluster(logs...)
	for _, n := range c2.Nodes {
		n.CurrentTerm = 2
	}
	c2.Nodes[0].CurrentTerm++
	c2.Nodes[0].VotedFor = 0
	forged = c2.InjectVote(0, ForgedVote(0, c2.Nodes[0].CurrentTerm, 9))
	return legit, forged, c2.Quorum()
}
