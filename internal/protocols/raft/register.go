package raft

import (
	"fmt"
	"math/rand"

	"achilles/internal/protocols/registry"
)

// Generator fuzzes the election RPC fields over small domains that
// straddle every model branch (invalid types, stale terms, out-of-range
// node ids, log claims on both sides of the follower's tail).
func Generator(r *rand.Rand) []int64 {
	return []int64{
		int64(r.Intn(4)),     // type: 0..3 (VOTE=1, APPEND=2)
		int64(r.Intn(7)),     // term: 0..6 (follower at StateTerm=2, bound 4)
		int64(r.Intn(7)) - 1, // node: -1..5 (valid ids are 0..4)
		int64(r.Intn(6)),     // lastLogIndex: 0..5 (follower tail index 2, bound 4)
		int64(r.Intn(7)),     // lastLogTerm: 0..6 (follower tail term 1)
	}
}

// ClassKey buckets Trojans by (type, invariant violated): the class
// structure is which log invariant the message breaks, not its exact
// field values.
func ClassKey(msg []int64) string {
	kind := "future-log-term"
	if msg[FieldLogIdx] == 0 && msg[FieldLogTerm] != 0 {
		kind = "phantom-empty-log"
	}
	return fmt.Sprintf("%d/%s", msg[FieldType], kind)
}

func world(st registry.State) (term, idx, logTerm int64) {
	return st["currentTerm"], st["lastLogIndex"], st["lastLogTerm"]
}

func oracle(msg []int64, st registry.State) bool {
	t, i, lt := world(st)
	return IsTrojan(msg, t, i, lt)
}

func init() {
	registry.Register(registry.Descriptor{
		Name:          "raft",
		Summary:       "Raft leader election: forged RequestVote log claim steals votes",
		Target:        NewTarget,
		DefaultState:  DefaultState(),
		ExpectTrojans: true,
		IsTrojan:      oracle,
		ClassKey:      ClassKey,
		ImplAccepts: func(msg []int64, st registry.State) bool {
			t, i, lt := world(st)
			ok, _ := NodeInWorld(t, i, lt, false).Handle(msg)
			return ok
		},
		Fuzz: &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
	registry.Register(registry.Descriptor{
		Name:         "raft-fixed",
		Summary:      "Raft leader election with the log-invariant checks: no Trojans",
		Target:       NewFixedTarget,
		DefaultState: DefaultState(),
		IsTrojan:     oracle,
		ClassKey:     ClassKey,
		ImplAccepts: func(msg []int64, st registry.State) bool {
			t, i, lt := world(st)
			ok, _ := NodeInWorld(t, i, lt, true).Handle(msg)
			return ok
		},
		Fuzz: &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
}
