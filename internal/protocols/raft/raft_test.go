package raft

import (
	"testing"

	"achilles/internal/core"
	"achilles/internal/symexec"
)

// TestAnalysisFindsLogInvariantTrojan pins the seeded vulnerability: the
// vulnerable follower yields at least one verified Trojan class, and every
// reported example satisfies the ground-truth oracle.
func TestAnalysisFindsLogInvariantTrojan(t *testing.T) {
	run, err := core.Run(NewTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Analysis.Trojans) == 0 {
		t.Fatal("no Trojans found on the vulnerable follower")
	}
	for _, tr := range run.Analysis.Trojans {
		if !tr.VerifiedAccept || !tr.VerifiedNotClient {
			t.Errorf("trojan %v not fully verified", tr.Concrete)
		}
		if !IsTrojan(tr.Concrete, StateTerm, StateLogIdx, StateLogTerm) {
			t.Errorf("reported Trojan %v rejected by the oracle", tr.Concrete)
		}
		if tr.Concrete[FieldType] != MsgRequestVote {
			t.Errorf("trojan %v is not a RequestVote (the seeded class)", tr.Concrete)
		}
	}
}

// TestFixedFollowerHasNoTrojans pins the patched model.
func TestFixedFollowerHasNoTrojans(t *testing.T) {
	run, err := core.Run(NewFixedTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(run.Analysis.Trojans); n != 0 {
		t.Fatalf("fixed follower reported %d Trojans: %v", n, run.Analysis.Trojans[0].Concrete)
	}
}

// TestModelMatchesGoOracle cross-checks the NL model's concrete
// interpretation against the Go Accepts oracle over the fuzz domain.
func TestModelMatchesGoOracle(t *testing.T) {
	unit := ServerUnit()
	for ty := int64(0); ty <= 3; ty++ {
		for term := int64(1); term <= TermBound+1; term++ {
			for node := int64(-1); node <= 5; node += 3 {
				for idx := int64(0); idx <= LogBound+1; idx += 2 {
					for lt := int64(0); lt <= TermBound+1; lt++ {
						msg := []int64{ty, term, node, idx, lt}
						res, err := symexec.Run(unit, symexec.Options{
							Concrete:       true,
							Message:        msg,
							GlobalConcrete: DefaultState(),
						})
						if err != nil {
							t.Fatal(err)
						}
						got := res.States[0].Status == symexec.StatusAccepted
						want := Accepts(msg, StateTerm, StateLogIdx, StateLogTerm)
						if got != want {
							t.Fatalf("model accept=%v, oracle=%v for %v", got, want, msg)
						}
					}
				}
			}
		}
	}
}

// TestImplMatchesModelOnFreshFollower checks the concrete implementation's
// accept decision against the Go oracle for a fresh follower (no vote
// cast), over the bounded analysis world — the implementation itself does
// not enforce the world bounds (a real deployment has no MAXTERM).
func TestImplMatchesModelOnFreshFollower(t *testing.T) {
	for ty := int64(1); ty <= 2; ty++ {
		for term := int64(StateTerm); term <= TermBound; term++ {
			for idx := int64(0); idx <= LogBound; idx++ {
				for lt := int64(0); lt <= TermBound; lt++ {
					msg := []int64{ty, term, 1, idx, lt}
					n := NodeInWorld(StateTerm, StateLogIdx, StateLogTerm, false)
					got, err := n.Handle(msg)
					if err != nil {
						t.Fatal(err)
					}
					want := Accepts(msg, StateTerm, StateLogIdx, StateLogTerm)
					if got != want {
						t.Fatalf("impl accept=%v, oracle=%v for %v", got, want, msg)
					}
				}
			}
		}
	}
}

// TestVotedForBlocksSecondGrant covers the implementation detail the
// election model abstracts away: one vote per term.
func TestVotedForBlocksSecondGrant(t *testing.T) {
	n := NodeInWorld(StateTerm, StateLogIdx, StateLogTerm, false)
	if !n.HandleRequestVote(4, 1, 5, 3) {
		t.Fatal("first up-to-date vote not granted")
	}
	if n.HandleRequestVote(4, 2, 5, 3) {
		t.Fatal("second vote in the same term granted to a different candidate")
	}
}

// TestStolenElection demonstrates the Trojan's impact: a legitimate
// campaign by the empty-log node loses, the forged vote request wins.
func TestStolenElection(t *testing.T) {
	legit, forged, quorum := StolenElection()
	if legit >= quorum {
		t.Fatalf("legitimate campaign with an empty log won %d/%d votes", legit, quorum)
	}
	if forged < quorum {
		t.Fatalf("forged campaign only won %d votes, quorum %d", forged, quorum)
	}
}

// TestFixedNodeRejectsForgedVote: the hardened implementation refuses the
// Trojan but keeps granting legitimate votes.
func TestFixedNodeRejectsForgedVote(t *testing.T) {
	fixed := NodeInWorld(StateTerm, StateLogIdx, StateLogTerm, true)
	if ok, _ := fixed.Handle(ForgedVote(1, 3, 9)); ok {
		t.Fatal("fixed node granted the forged vote")
	}
	if !fixed.HandleRequestVote(4, 1, 5, 3) {
		t.Fatal("fixed node rejected a legitimate up-to-date vote")
	}
}
