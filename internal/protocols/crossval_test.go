package protocols

// The §4 soundness guard as a standing test: every Trojan report of every
// registry target is replayed through the protocol's concrete Go
// implementation (which must accept it) and through the ground-truth fuzz
// oracle (which must label it Trojan). Targets whose descriptor expects no
// Trojans (the -fixed variants) must report none.
import (
	"strings"
	"testing"

	"achilles/internal/protocols/registry"
)

// reportState converts a report's engine-facing state world ("state_x"
// variables) into the descriptor's State form, or nil when the target ran
// without symbolic local state (the descriptor then falls back to its
// canonical DefaultState).
func reportState(env map[string]int64) registry.State {
	if len(env) == 0 {
		return nil
	}
	st := registry.State{}
	for k, v := range env {
		st[strings.TrimPrefix(k, "state_")] = v
	}
	return st
}

func TestCrossValidation(t *testing.T) {
	for _, d := range registry.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			run := runTarget(t, d, 4)
			if got := len(run.Analysis.Trojans) > 0; got != d.ExpectTrojans {
				t.Fatalf("trojans found=%v, descriptor expects %v (%d reports)",
					got, d.ExpectTrojans, len(run.Analysis.Trojans))
			}
			for _, tr := range run.Analysis.Trojans {
				st := reportState(tr.StateEnv)

				if !tr.VerifiedNotClient {
					t.Errorf("trojan %v: not verified non-client", tr.Concrete)
				}
				if d.IsTrojan != nil && !d.Trojan(tr.Concrete, st) {
					t.Errorf("trojan %v (state %v): rejected by the ground-truth oracle",
						tr.Concrete, st)
				}
				if accepted, ok := d.Replay(tr.Concrete, st); ok && !accepted {
					t.Errorf("trojan %v (state %v): rejected by the concrete implementation",
						tr.Concrete, st)
				}
			}
		})
	}
}

// TestRegistryDescriptorsComplete pins the registry's shape: the six
// canonical protocol families are present, and every entry carries the
// pieces all drivers rely on. The oracle, implementation replay and fuzz
// spec are optional per the Descriptor contract — the suites above simply
// skip what is absent — so only the universally required pieces are
// checked here.
func TestRegistryDescriptorsComplete(t *testing.T) {
	for _, name := range []string{"fsp", "pbft", "paxos", "kv", "raft", "noisehs"} {
		if _, ok := registry.Lookup(name); !ok {
			t.Errorf("canonical target %q missing from the registry", name)
		}
	}
	for _, d := range registry.All() {
		if d.Summary == "" {
			t.Errorf("%s: missing summary", d.Name)
		}
		if tgt := d.Target(); tgt.Server == nil || len(tgt.Clients) == 0 || len(tgt.FieldNames) == 0 {
			t.Errorf("%s: incomplete target", d.Name)
		}
	}
}
