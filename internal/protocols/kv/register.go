package kv

import (
	"errors"
	"math/rand"

	"achilles/internal/protocols/registry"
)

// Generator fuzzes the fields Achilles analyses with the checksum held at
// its correct value (fuzzing it too only makes the baseline astronomically
// worse — the paper's §6.2 convention): senders in range, both operations,
// addresses straddling the missing lower-bound check.
func Generator(r *rand.Rand) []int64 {
	sender := int64(r.Intn(NumPeers))
	request := int64(1 + r.Intn(2))
	address := int64(r.Intn(2*DataSize+20)) - DataSize - 10
	value := int64(r.Intn(4))
	return ValidMessage(sender, request, address, value)
}

// ClassKey buckets Trojans by which client invariant the READ violates.
func ClassKey(msg []int64) string {
	if msg[FieldAddress] < 0 {
		return "read-negative-address"
	}
	return "read-nonzero-value"
}

// implAccepts replays the message through the concrete server. An
// out-of-bounds crash still counts as accepted: the message passed every
// validation check and reached the data access — the Trojan's worst-case
// impact, not a rejection.
func implAccepts(msg []int64, _ registry.State) bool {
	_, err := NewConcreteServer([]int64{41, 42, 43}).Handle(msg)
	return err == nil || errors.Is(err, ErrCrash)
}

func init() {
	registry.Register(registry.Descriptor{
		Name:          "kv",
		Summary:       "§2 read/write KV server: READ misses the negative-address check",
		Target:        NewTarget,
		ExpectTrojans: true,
		IsTrojan:      func(msg []int64, _ registry.State) bool { return IsTrojan(msg) },
		ClassKey:      ClassKey,
		ImplAccepts:   implAccepts,
		Fuzz:          &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
	registry.Register(registry.Descriptor{
		Name:        "kv-fixed",
		Summary:     "KV server hardened per the paper's prescription: no Trojans",
		Target:      NewFixedTarget,
		IsTrojan:    func(msg []int64, _ registry.State) bool { return IsTrojan(msg) },
		ClassKey:    ClassKey,
		ImplAccepts: implAccepts,
		Fuzz:        &registry.FuzzSpec{Generator: Generator, Tests: 20000},
	})
}
