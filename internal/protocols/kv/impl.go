package kv

import (
	"errors"
	"fmt"
)

// This file is the concrete Go KV server matching the NL model, used to
// demonstrate the §2 privacy leak end to end: a READ with a negative
// address returns bytes from the server's internal memory that precede the
// data array.

// Concrete server errors.
var (
	ErrBadSender = errors.New("kv: unknown sender")
	ErrBadCRC    = errors.New("kv: checksum mismatch")
	ErrBadReq    = errors.New("kv: unknown request")
	ErrRange     = errors.New("kv: address out of range")
	// ErrCrash models the segfault a sufficiently negative Trojan address
	// causes once it runs past the mapped memory below the data array.
	ErrCrash = errors.New("kv: server crashed (out-of-bounds read)")
)

// ConcreteServer lays out its "memory" the way the paper's example implies:
// a secrets region (e.g. the peer list) directly below the data array, so
// an unchecked negative index reads it.
type ConcreteServer struct {
	// memory = secrets ++ data; data starts at offset len(secrets).
	memory  []int64
	dataOff int
}

// NewConcreteServer builds a server whose secret region precedes its data.
func NewConcreteServer(secrets []int64) *ConcreteServer {
	s := &ConcreteServer{dataOff: len(secrets)}
	s.memory = append(append([]int64{}, secrets...), make([]int64, DataSize)...)
	return s
}

// Handle processes one field-vector message, mirroring the NL model exactly
// — including the missing lower-bound check on READ. Addresses negative
// enough to leave the secrets region crash the server (ErrCrash), the
// Trojan's worst-case impact.
func (s *ConcreteServer) Handle(msg []int64) (v int64, err error) {
	defer func() {
		if recover() != nil {
			v, err = 0, ErrCrash
		}
	}()
	return s.handle(msg)
}

func (s *ConcreteServer) handle(msg []int64) (int64, error) {
	if len(msg) != NumFields {
		return 0, fmt.Errorf("kv: bad message size %d", len(msg))
	}
	if msg[FieldSender] < 0 || msg[FieldSender] >= NumPeers {
		return 0, ErrBadSender
	}
	if msg[FieldCRC] != CRC(msg[FieldSender], msg[FieldRequest], msg[FieldAddress], msg[FieldValue]) {
		return 0, ErrBadCRC
	}
	addr := msg[FieldAddress]
	switch msg[FieldRequest] {
	case OpRead:
		if addr >= DataSize {
			return 0, ErrRange
		}
		// BUG: no addr < 0 check — negative addresses read the secrets.
		return s.memory[int64(s.dataOff)+addr], nil
	case OpWrite:
		if addr >= DataSize || addr < 0 {
			return 0, ErrRange
		}
		s.memory[int64(s.dataOff)+addr] = msg[FieldValue]
		return msg[FieldValue], nil
	}
	return 0, ErrBadReq
}

// Data reads the server's data array (test helper).
func (s *ConcreteServer) Data(i int) int64 { return s.memory[s.dataOff+i] }
