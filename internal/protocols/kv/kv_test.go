package kv

import (
	"testing"

	"achilles/internal/core"
	"achilles/internal/symexec"
)

func TestValidMessageRoundTrip(t *testing.T) {
	s := NewConcreteServer([]int64{111, 222})
	msg := ValidMessage(1, OpWrite, 5, 42)
	if _, err := s.Handle(msg); err != nil {
		t.Fatal(err)
	}
	if s.Data(5) != 42 {
		t.Fatalf("data[5] = %d", s.Data(5))
	}
	got, err := s.Handle(ValidMessage(1, OpRead, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("read %d", got)
	}
}

func TestConcreteServerValidation(t *testing.T) {
	s := NewConcreteServer([]int64{7})
	if _, err := s.Handle(ValidMessage(99, OpRead, 0, 0)); err != ErrBadSender {
		t.Fatalf("sender check: %v", err)
	}
	bad := ValidMessage(1, OpRead, 0, 0)
	bad[FieldCRC]++
	if _, err := s.Handle(bad); err != ErrBadCRC {
		t.Fatalf("crc check: %v", err)
	}
	if _, err := s.Handle(ValidMessage(1, 9, 0, 0)); err != ErrBadReq {
		t.Fatalf("req check: %v", err)
	}
	if _, err := s.Handle(ValidMessage(1, OpRead, DataSize, 0)); err != ErrRange {
		t.Fatalf("range check: %v", err)
	}
	if _, err := s.Handle(ValidMessage(1, OpWrite, -1, 0)); err != ErrRange {
		t.Fatalf("write lower bound: %v", err)
	}
}

// TestTrojanLeaksSecrets wires the analysis output into the concrete
// server: the discovered Trojan (negative READ address) leaks the secret
// region below the data array — the §2 privacy leak, end to end.
func TestTrojanLeaksSecrets(t *testing.T) {
	run, err := core.Run(NewTarget(), core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var trojan []int64
	for _, tr := range run.Analysis.Trojans {
		if tr.Concrete[FieldAddress] < 0 {
			trojan = tr.Concrete
			break
		}
	}
	if trojan == nil {
		t.Fatal("no negative-address Trojan reported")
	}
	secrets := []int64{1001, 1002, 1003, 1004}
	s := NewConcreteServer(secrets)
	leaked, err := s.Handle(trojan)
	if err != nil {
		t.Fatalf("concrete server rejected the Trojan: %v", err)
	}
	idx := int64(len(secrets)) + trojan[FieldAddress]
	if idx < 0 || leaked != secrets[idx] {
		t.Fatalf("leak mismatch: got %d, memory[%d] = %d", leaked, idx, secrets[idx])
	}
}

// TestModelAgreesWithConcrete cross-validates the NL model against the Go
// server on a grid of messages. Model "accept" corresponds to the concrete
// server performing the action — successfully or by crashing (the Trojan's
// impact); rejections must agree exactly.
func TestModelAgreesWithConcrete(t *testing.T) {
	server, _, _ := Units()
	s := NewConcreteServer([]int64{1001})
	for sender := int64(-1); sender <= 4; sender++ {
		for _, req := range []int64{0, OpRead, OpWrite, 3} {
			for _, addr := range []int64{-2, -1, 0, 50, 99, 100} {
				msg := ValidMessage(sender, req, addr, 1)
				res, err := symexec.Run(server, symexec.Options{Concrete: true, Message: msg})
				if err != nil {
					t.Fatal(err)
				}
				modelAccepts := res.States[0].Status == symexec.StatusAccepted
				_, cerr := s.Handle(msg)
				concreteActed := cerr == nil || cerr == ErrCrash
				if modelAccepts != concreteActed {
					t.Fatalf("disagreement on %v: model=%v concrete=%v (%v)",
						msg, modelAccepts, concreteActed, cerr)
				}
			}
		}
	}
}

// TestCrashOnDeepNegativeAddress: the worst-case Trojan impact.
func TestCrashOnDeepNegativeAddress(t *testing.T) {
	s := NewConcreteServer([]int64{1})
	if _, err := s.Handle(ValidMessage(0, OpRead, -2, 0)); err != ErrCrash {
		t.Fatalf("want crash, got %v", err)
	}
}
