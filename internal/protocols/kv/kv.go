// Package kv models the working example of §2 of the Achilles paper: a
// small read/write key-value server whose READ handler forgets to validate
// that the address is non-negative, while correct clients always send
// addresses in [0, DATASIZE). Any READ message with a negative address is a
// Trojan message (a potential privacy leak: it reads memory before the data
// array).
//
// The package provides the NL models used by the analysis and a concrete Go
// server implementation used by the injection harness to demonstrate the
// leak end-to-end.
package kv

import (
	"achilles/internal/core"
	"achilles/internal/lang"
)

// Message field indices.
const (
	FieldSender  = 0
	FieldRequest = 1
	FieldAddress = 2
	FieldValue   = 3
	FieldCRC     = 4
	NumFields    = 5
)

// Request types.
const (
	OpRead  = 1
	OpWrite = 2
)

// DataSize matches DATASIZE in the models.
const DataSize = 100

// NumPeers matches NPEERS in the models.
const NumPeers = 4

// FieldNames names the message layout for reports.
var FieldNames = []string{"sender", "request", "address", "value", "crc"}

// ServerSrc is the NL model of the vulnerable server (Figure 2 of the
// paper). The CRC is modelled as the plain field sum, matching the client.
const ServerSrc = `
// KV server model (paper Figure 2). Fields:
// 0 sender, 1 request, 2 address, 3 value, 4 crc
const DATASIZE = 100;
const READ = 1;
const WRITE = 2;
const NPEERS = 4;
var msg [5]int;

func main() {
	recv(msg);
	if msg[0] < 0 || msg[0] >= NPEERS { reject(); }
	if msg[4] != msg[0] + msg[1] + msg[2] + msg[3] { reject(); }
	if msg[1] == READ {
		if msg[2] >= DATASIZE { reject(); }
		// Security vulnerability: forgot to check msg[2] < 0.
		accept();
	}
	if msg[1] == WRITE {
		if msg[2] >= DATASIZE { reject(); }
		if msg[2] < 0 { reject(); }
		accept();
	}
	reject();
}`

// FixedServerSrc is the server hardened per the paper's prescription —
// "servers should do what correct clients require them to do and not one bit
// more": the READ bounds check is added AND the unused value field of READ
// requests must be zero, exactly mirroring what correct clients send.
// Achilles must find no Trojans in it.
const FixedServerSrc = `
const DATASIZE = 100;
const READ = 1;
const WRITE = 2;
const NPEERS = 4;
var msg [5]int;

func main() {
	recv(msg);
	if msg[0] < 0 || msg[0] >= NPEERS { reject(); }
	if msg[4] != msg[0] + msg[1] + msg[2] + msg[3] { reject(); }
	if msg[1] == READ {
		if msg[2] >= DATASIZE { reject(); }
		if msg[2] < 0 { reject(); }
		if msg[3] != 0 { reject(); }
		accept();
	}
	if msg[1] == WRITE {
		if msg[2] >= DATASIZE { reject(); }
		if msg[2] < 0 { reject(); }
		accept();
	}
	reject();
}`

// ClientSrc is the NL model of the correct client (Figure 3 of the paper).
// getPeerID() is over-approximated to [0, NPEERS) exactly like the paper's
// Figure 9 annotation.
const ClientSrc = `
const DATASIZE = 100;
const READ = 1;
const WRITE = 2;
const NPEERS = 4;
var msg [5]int;

func main() {
	var peerID int = input();
	assume(peerID >= 0);
	assume(peerID < NPEERS);
	var operationType int = input();
	var address int = input();
	if address >= DATASIZE { exit(); }
	if address < 0 { exit(); }
	// Client only sends addresses in [0, 100).
	if operationType == READ {
		msg[0] = peerID;
		msg[1] = READ;
		msg[2] = address;
		msg[3] = 0;
		msg[4] = msg[0] + msg[1] + msg[2] + msg[3];
		send(msg);
		exit();
	}
	if operationType == WRITE {
		var value int = input();
		msg[0] = peerID;
		msg[1] = WRITE;
		msg[2] = address;
		msg[3] = value;
		msg[4] = msg[0] + msg[1] + msg[2] + msg[3];
		send(msg);
		exit();
	}
	exit();
}`

// Units returns freshly compiled models.
func Units() (server, fixedServer, client *lang.Unit) {
	return lang.MustCompile(ServerSrc), lang.MustCompile(FixedServerSrc), lang.MustCompile(ClientSrc)
}

// NewTarget builds the Achilles target for the vulnerable server.
func NewTarget() core.Target {
	server, _, client := Units()
	return core.Target{
		Name:       "kv",
		Server:     server,
		Clients:    []core.ClientProgram{{Name: "kv-client", Unit: client}},
		FieldNames: FieldNames,
	}
}

// NewFixedTarget builds the target for the patched server.
func NewFixedTarget() core.Target {
	_, fixed, client := Units()
	return core.Target{
		Name:       "kv-fixed",
		Server:     fixed,
		Clients:    []core.ClientProgram{{Name: "kv-client", Unit: client}},
		FieldNames: FieldNames,
	}
}

// CRC computes the model checksum of a message (plain field sum).
func CRC(sender, request, address, value int64) int64 {
	return sender + request + address + value
}

// Accepts mirrors the vulnerable server model's accept condition — the fast
// oracle for the fuzzing baseline; the NL interpreter agrees with it (see
// the cross-validation test).
func Accepts(msg []int64) bool {
	if len(msg) != NumFields {
		return false
	}
	if msg[FieldSender] < 0 || msg[FieldSender] >= NumPeers {
		return false
	}
	if msg[FieldCRC] != CRC(msg[FieldSender], msg[FieldRequest], msg[FieldAddress], msg[FieldValue]) {
		return false
	}
	switch msg[FieldRequest] {
	case OpRead:
		return msg[FieldAddress] < DataSize
	case OpWrite:
		return msg[FieldAddress] >= 0 && msg[FieldAddress] < DataSize
	}
	return false
}

// IsTrojan is the ground-truth oracle: an accepted READ that no correct
// client generates — a negative address (the §2 privacy leak) or a nonzero
// value field (clients zero it on READs; the paper's fix checks both).
func IsTrojan(msg []int64) bool {
	return Accepts(msg) && msg[FieldRequest] == OpRead &&
		(msg[FieldAddress] < 0 || msg[FieldValue] != 0)
}

// ValidMessage builds a correct client message.
func ValidMessage(sender, request, address, value int64) []int64 {
	return []int64{sender, request, address, value, CRC(sender, request, address, value)}
}
