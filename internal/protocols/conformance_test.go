package protocols

// The golden-corpus conformance suite: for every registry target, the full
// pipeline runs at -j 1 and -j 8 and the reported Trojan class set must
// match the checked-in golden file testdata/<name>.golden exactly. The
// goldens pin the discovered Trojan classes against regression — a model
// edit, a solver change or a parallelism bug that alters any target's class
// set fails here first. Regenerate after an intentional change with:
//
//	go test ./internal/protocols -run TestGoldenCorpus -update
import (
	"flag"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"achilles/internal/core"
	"achilles/internal/protocols/registry"
)

var update = flag.Bool("update", false, "regenerate the golden corpus files")

// classLines renders a run's Trojan class set as sorted, stable lines. The
// canonical rendering lives in core (TrojanReport.ClassLine) and is shared
// with the audit bundles written by internal/campaign, so golden files,
// in-process runs and persisted bundles are all byte-comparable.
func classLines(run *core.RunResult) []string {
	return core.ClassLines(run)
}

// runTarget executes the full two-phase pipeline for a registry target.
func runTarget(t *testing.T, d registry.Descriptor, jobs int) *core.RunResult {
	t.Helper()
	run, err := d.Run(core.ModeOptimized, jobs)
	if err != nil {
		t.Fatalf("%s (-j %d): %v", d.Name, jobs, err)
	}
	return run
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden")
}

func TestGoldenCorpus(t *testing.T) {
	for _, d := range registry.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			seq := classLines(runTarget(t, d, 1))
			par := classLines(runTarget(t, d, 8))
			if !slices.Equal(seq, par) {
				t.Fatalf("-j 1 and -j 8 disagree:\n-j1:\n%s\n-j8:\n%s",
					strings.Join(seq, "\n"), strings.Join(par, "\n"))
			}

			content := strings.Join(seq, "\n") + "\n"
			if len(seq) == 0 {
				content = ""
			}
			path := goldenPath(d.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
			}
			if string(want) != content {
				t.Errorf("Trojan class set diverged from %s\n--- golden ---\n%s--- got ---\n%s",
					path, want, content)
			}
		})
	}
}
