package registry_test

// Input-fingerprint semantics: stable for unchanged inputs, sensitive to
// every input that can change an analysis result — the NL sources, the
// mode, the exec options and the salt versions — since campaign baseline
// reuse is exactly as sound as these properties.

import (
	"testing"

	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/protocols/registry"
	"achilles/internal/symexec"

	// Populate the registry with the real catalog.
	_ "achilles/internal/protocols"
)

// synthetic builds an unregistered descriptor around one server source —
// fingerprinting must not require registration.
func synthetic(serverSrc string, opts symexec.Options) registry.Descriptor {
	return registry.Descriptor{
		Name: "synthetic",
		Target: func() core.Target {
			return core.Target{
				Name:       "synthetic",
				Server:     lang.MustCompile(serverSrc),
				FieldNames: []string{"a"},
				ServerExec: opts,
			}
		},
	}
}

const syntheticSrc = `
var msg [1]int;
func main() {
	recv(msg);
	if msg[0] > 7 { reject(); }
	accept();
}`

func TestFingerprintDeterministic(t *testing.T) {
	for _, d := range registry.All() {
		fp1 := d.InputFingerprint(core.ModeOptimized)
		fp2 := d.InputFingerprint(core.ModeOptimized)
		if fp1 == "" || fp1 != fp2 {
			t.Errorf("%s: fingerprint not stable: %q vs %q", d.Name, fp1, fp2)
		}
		if d.InputSignature(core.ModeOptimized) != d.InputSignature(core.ModeOptimized) {
			t.Errorf("%s: signature not deterministic", d.Name)
		}
	}
}

func TestFingerprintDistinguishesTargetsAndModes(t *testing.T) {
	seen := map[string]string{}
	for _, d := range registry.All() {
		for _, mode := range []core.Mode{core.ModeOptimized, core.ModeAPosteriori} {
			fp := d.InputFingerprint(mode)
			if prev, dup := seen[fp]; dup {
				t.Errorf("fingerprint collision: %s/%s and %s", d.Name, mode, prev)
			}
			seen[fp] = d.Name + "/" + mode.String()
		}
	}
}

func TestFingerprintTracksModelEdit(t *testing.T) {
	base := synthetic(syntheticSrc, symexec.Options{})
	// A one-token model edit (the seeded Trojan scenario: a bound moves).
	edited := synthetic(
		"\nvar msg [1]int;\nfunc main() {\n\trecv(msg);\n\tif msg[0] > 8 { reject(); }\n\taccept();\n}",
		symexec.Options{})
	if base.InputFingerprint(core.ModeOptimized) == edited.InputFingerprint(core.ModeOptimized) {
		t.Error("model edit did not change the fingerprint")
	}
	// Formatting noise does NOT change it: the signature prints the checked
	// AST, not the source literal.
	reformatted := synthetic(
		"\nvar msg [1]int;\n\n\nfunc main() {\n\trecv(msg);\n\tif msg[0] > 7 {  reject();  }\n\taccept();\n}",
		symexec.Options{})
	if base.InputFingerprint(core.ModeOptimized) != reformatted.InputFingerprint(core.ModeOptimized) {
		t.Error("formatting-only edit changed the fingerprint")
	}
}

func TestFingerprintTracksExecOptionsAndSalt(t *testing.T) {
	base := synthetic(syntheticSrc, symexec.Options{})
	budgeted := synthetic(syntheticSrc, symexec.Options{MaxStates: 3})
	if base.InputFingerprint(core.ModeOptimized) == budgeted.InputFingerprint(core.ModeOptimized) {
		t.Error("MaxStates change did not change the fingerprint")
	}
	world := synthetic(syntheticSrc, symexec.Options{GlobalConcrete: map[string]int64{"ballot": 3}})
	if base.InputFingerprint(core.ModeOptimized) == world.InputFingerprint(core.ModeOptimized) {
		t.Error("local-state world change did not change the fingerprint")
	}
	if base.InputFingerprint(core.ModeOptimized) == base.InputFingerprint(core.ModeAPosteriori) {
		t.Error("mode change did not change the fingerprint")
	}
	if base.InputFingerprint(core.ModeOptimized) == base.InputFingerprint(core.ModeOptimized, "campaign/2") {
		t.Error("salt did not change the fingerprint")
	}
	if base.InputFingerprint(core.ModeOptimized, "a") == base.InputFingerprint(core.ModeOptimized, "b") {
		t.Error("different salts collide")
	}
}
