package registry

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"achilles/internal/core"
	"achilles/internal/lang"
)

const testServerSrc = `
var msg [2]int;
func main() {
	recv(msg);
	if msg[0] != 1 { reject(); }
	accept();
}`

const testClientSrc = `
var msg [2]int;
func main() {
	msg[0] = 1;
	msg[1] = 0;
	send(msg);
	exit();
}`

func testDescriptor(name string) Descriptor {
	return Descriptor{
		Name:    name,
		Summary: "test target",
		Target: func() core.Target {
			return core.Target{
				Name:       name,
				Server:     lang.MustCompile(testServerSrc),
				Clients:    []core.ClientProgram{{Name: "c", Unit: lang.MustCompile(testClientSrc)}},
				FieldNames: []string{"a", "b"},
			}
		},
		ExpectTrojans: true,
		IsTrojan:      func(msg []int64, st State) bool { return msg[0] == 1 && msg[1] != 0 },
		ImplAccepts:   func(msg []int64, st State) bool { return msg[0] == 1 },
		Fuzz: &FuzzSpec{
			Tests: 64,
			Generator: func(r *rand.Rand) []int64 {
				return []int64{int64(r.Intn(3)), int64(r.Intn(3))}
			},
		},
	}
}

func TestRegisterLookupAll(t *testing.T) {
	Register(testDescriptor("zz-test"))
	Register(Descriptor{
		Name:    "aa-test",
		Aliases: []string{"aa-alias"},
		Target:  testDescriptor("aa-test").Target,
	})

	if _, ok := Lookup("zz-test"); !ok {
		t.Fatal("zz-test not found")
	}
	if d, ok := Lookup("aa-alias"); !ok || d.Name != "aa-test" {
		t.Fatalf("alias lookup = %v, %v; want aa-test", d.Name, ok)
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("lookup of unknown name succeeded")
	}

	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	found := 0
	for _, d := range All() {
		if d.Name == "zz-test" || d.Name == "aa-test" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("All() missing test descriptors (found %d)", found)
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	Register(testDescriptor("dup-test"))
	mustPanic("duplicate", func() { Register(testDescriptor("dup-test")) })
	mustPanic("empty name", func() { Register(Descriptor{Target: testDescriptor("x").Target}) })
	mustPanic("nil target", func() { Register(Descriptor{Name: "no-target-test"}) })
	mustPanic("fire drill for unknown", func() {
		RegisterFireDrill("never-registered", func(addr string, out io.Writer) error { return nil })
	})
}

func TestDescriptorHelpers(t *testing.T) {
	d := testDescriptor("helpers-test")
	if !d.Trojan([]int64{1, 5}, nil) || d.Trojan([]int64{1, 0}, nil) {
		t.Fatal("Trojan oracle mis-wired")
	}
	if acc, ok := d.Replay([]int64{1, 0}, nil); !ok || !acc {
		t.Fatal("Replay mis-wired")
	}
	if _, ok := (Descriptor{}).Replay([]int64{1}, nil); ok {
		t.Fatal("Replay reported ok without an implementation")
	}
	if d.Class([]int64{1, 2}) != "[1 2]" {
		t.Fatalf("default Class = %q", d.Class([]int64{1, 2}))
	}

	res, err := d.FuzzCampaign(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tests != 64 {
		t.Fatalf("campaign size %d, want spec default 64", res.Tests)
	}
	if res.Accepted == 0 || res.Trojans == 0 {
		t.Fatalf("campaign found no accepts/trojans: %+v", res)
	}
	if _, err := (Descriptor{Name: "nofuzz"}).FuzzCampaign(10, 1); err == nil {
		t.Fatal("FuzzCampaign without a spec should error")
	}
}

func TestDescriptorRun(t *testing.T) {
	d := testDescriptor("run-test")
	run, err := d.Run(core.ModeOptimized, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Analysis.Trojans) == 0 {
		t.Fatal("analysis found no Trojans on the seeded test target")
	}
	for _, tr := range run.Analysis.Trojans {
		if !d.Trojan(tr.Concrete, nil) {
			t.Errorf("reported Trojan %v rejected by the oracle", tr.Concrete)
		}
	}
}

func TestMustLookupPanicsWithNames(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(string), "unknown target") {
			t.Fatalf("panic message %q", r)
		}
	}()
	MustLookup("definitely-not-registered")
}

func TestDerive(t *testing.T) {
	base := testDescriptor("derive-base")
	const mutSrc = `
var msg [2]int;
func main() {
	recv(msg);
	accept();
}`
	d := base.Derive("derive-base+m1", "mutant", func(t core.Target) core.Target {
		t.Server = lang.MustCompile(mutSrc)
		t.ServerExec.MaxSteps = 128
		return t
	})
	if d.Name != "derive-base+m1" || d.Summary != "mutant" {
		t.Fatalf("identity not applied: %+v", d)
	}
	tgt := d.Target()
	if tgt.Name != "derive-base+m1" {
		t.Errorf("target name %q, want derived name", tgt.Name)
	}
	if tgt.ServerExec.MaxSteps != 128 {
		t.Errorf("transform not applied: MaxSteps = %d", tgt.ServerExec.MaxSteps)
	}
	// The base oracle, replay and fuzz spec describe the unmutated protocol
	// and must not survive derivation.
	if d.IsTrojan != nil || d.ImplAccepts != nil || d.Fuzz != nil || d.ExpectTrojans {
		t.Error("derived descriptor kept base oracle/replay/fuzz surface")
	}
	// Derived identity is synthetic: a changed model changes the
	// fingerprint, and an identity derivation (same name, no transform)
	// keeps it byte for byte.
	same := base.Derive("derive-base", "no-op", nil)
	if got, want := same.InputFingerprint(core.ModeOptimized), base.InputFingerprint(core.ModeOptimized); got != want {
		t.Errorf("identity transform changed fingerprint: %s vs %s", got, want)
	}
	if got := d.InputFingerprint(core.ModeOptimized); got == base.InputFingerprint(core.ModeOptimized) {
		t.Error("mutated model kept the base fingerprint")
	}
	// The base target is rebuilt per call — deriving must not leak the
	// transform back into the base.
	if base.Target().ServerExec.MaxSteps == 128 {
		t.Error("transform leaked into the base target")
	}
}
