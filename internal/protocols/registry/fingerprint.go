package registry

// Input fingerprints give every target×mode job a stable identity derived
// from what actually goes INTO the analysis — the NL model sources and the
// options that shape the result — plus the revisions of the engine and
// solver that interpret them. Two runs with equal fingerprints are
// guaranteed to face the same inputs under the same semantics, which is what
// lets an incremental campaign reuse a baseline report verbatim instead of
// re-exploring the target (see internal/campaign).
//
// The fingerprint is deliberately conservative: anything that *could* change
// the class set is folded in, so a mismatch at worst re-runs a job that
// would have produced the same result — never the other way around.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"achilles/internal/core"
	"achilles/internal/lang"
	"achilles/internal/solver"
	"achilles/internal/symexec"
)

// signatureVersion versions the signature rendering itself.
const signatureVersion = "achilles-input/1"

// InputSignature renders everything that determines the target's analysis
// result in the given mode as canonical text: the signature layout version,
// the engine and solver revisions, the mode, the canonical NL sources of the
// server and every client model, the message layout (field names, mask,
// shared state), both engines' execution options and the analysis defaults.
// The rendering is deterministic — maps are sorted, model sources are
// printed from the checked AST — so equal inputs produce equal signatures
// byte for byte.
func (d Descriptor) InputSignature(mode core.Mode) string {
	t := d.Target()
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", signatureVersion)
	fmt.Fprintf(&b, "engine %s\n", symexec.Version)
	fmt.Fprintf(&b, "solver %s\n", solver.Version)
	fmt.Fprintf(&b, "mode %s\n", mode)
	fmt.Fprintf(&b, "target %s\n", t.Name)
	fmt.Fprintf(&b, "fields %s\n", strings.Join(t.FieldNames, ","))
	fmt.Fprintf(&b, "mask %v\n", t.Mask)
	fmt.Fprintf(&b, "shared-state %v\n", t.SharedState)
	if d.Wire != nil {
		// Byte-level targets fold the wire schema in: a codec change moves
		// the representable message space even when the NL sources are
		// untouched. NL-only targets render exactly as before, so existing
		// fingerprints (and cached campaign baselines) stay valid.
		fmt.Fprintf(&b, "wire %s\n", d.Wire.Signature())
	}
	fmt.Fprintf(&b, "analysis skip-concrete-verification=%v\n", d.Analysis.SkipConcreteVerification)
	execSignature(&b, "server-exec", t.ServerExec)
	execSignature(&b, "client-exec", t.ClientExec)
	fmt.Fprintf(&b, "server-model:\n%s", unitSource(t.Server))
	for _, cl := range t.Clients {
		fmt.Fprintf(&b, "client-model %s:\n%s", cl.Name, unitSource(cl.Unit))
	}
	return b.String()
}

// InputFingerprint is the stable hash of the input signature, optionally
// salted with extra version strings (the campaign engine adds its own
// revision so that bundle-layout changes also invalidate reuse).
func (d Descriptor) InputFingerprint(mode core.Mode, extra ...string) string {
	h := sha256.New()
	h.Write([]byte(d.InputSignature(mode)))
	for _, e := range extra {
		h.Write([]byte{0})
		h.Write([]byte(e))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// unitSource renders a compiled unit's canonical NL source (the checked AST
// printed back to text, so formatting noise in the original literal does not
// perturb the fingerprint).
func unitSource(u *lang.Unit) string {
	if u == nil || u.Source == nil {
		return "<no source>\n"
	}
	return lang.Print(u.Source)
}

// execSignature renders the engine options that shape an exploration:
// budgets, entry point, variable naming and the §3.4 local-state world.
func execSignature(b *strings.Builder, label string, o symexec.Options) {
	fmt.Fprintf(b, "%s entry=%q max-states=%d max-steps=%d msg-prefix=%q input-prefix=%q concrete=%v inputs=%v message=%v\n",
		label, o.Entry, o.MaxStates, o.MaxSteps, o.MsgPrefix, o.InputPrefix, o.Concrete, o.Inputs, o.Message)
	if len(o.GlobalConcrete) > 0 {
		keys := make([]string, 0, len(o.GlobalConcrete))
		for k := range o.GlobalConcrete {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(b, "%s global-concrete", label)
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%d", k, o.GlobalConcrete[k])
		}
		b.WriteByte('\n')
	}
	if len(o.GlobalSymbolic) > 0 {
		fmt.Fprintf(b, "%s global-symbolic %v\n", label, o.GlobalSymbolic)
	}
}
